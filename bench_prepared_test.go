package repro

// Prepared-statement micro-benchmarks: the compile-once/execute-many
// contract of the prepared API must show up as a measurable speedup over
// the unprepared path (which re-parses and — without the plan cache —
// recompiles per call). scripts/bench.sh runs these and emits
// BENCH_query.json.

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/deepdb"
)

var (
	prepOnce sync.Once
	// prepDB has the default plan cache; prepColdDB has the cache
	// disabled, isolating the per-call compile cost.
	prepDB     *deepdb.DB
	prepColdDB *deepdb.DB
)

func preparedFixture(b *testing.B) (*deepdb.DB, *deepdb.DB) {
	b.Helper()
	prepOnce.Do(func() {
		ctx := context.Background()
		s := &deepdb.Schema{Tables: []*deepdb.TableDef{
			{
				Name:       "customer",
				PrimaryKey: "c_id",
				Columns: []deepdb.ColumnDef{
					{Name: "c_id", Kind: deepdb.IntKind},
					{Name: "c_age", Kind: deepdb.IntKind},
					{Name: "c_region", Kind: deepdb.CategoricalKind},
				},
			},
			{
				Name:       "orders",
				PrimaryKey: "o_id",
				Columns: []deepdb.ColumnDef{
					{Name: "o_id", Kind: deepdb.IntKind},
					{Name: "o_c_id", Kind: deepdb.IntKind},
					{Name: "o_amount", Kind: deepdb.FloatKind},
				},
				ForeignKeys: []deepdb.ForeignKey{{Column: "o_c_id", RefTable: "customer", RefColumn: "c_id"}},
			},
		}}
		cust := deepdb.NewTable(s.Table("customer"))
		ord := deepdb.NewTable(s.Table("orders"))
		region := cust.Column("c_region")
		regions := []string{"EU", "ASIA", "US"}
		oid := 0
		for i := 0; i < 4000; i++ {
			cust.AppendRow(deepdb.Int(i), deepdb.Int(18+(i*7)%60),
				deepdb.Float(float64(region.Encode(regions[i%3]))))
			for k := 0; k <= i%3; k++ {
				ord.AppendRow(deepdb.Int(oid), deepdb.Int(i), deepdb.Float(float64(10+(oid*13)%90)))
				oid++
			}
		}
		db, err := deepdb.LearnDataset(ctx, s, deepdb.Dataset{"customer": cust, "orders": ord},
			deepdb.WithMaxSamples(8000))
		if err != nil {
			panic(err)
		}
		// Serve model-only like production: save once, open twice with
		// different cache configurations.
		dir, err := filepath.Abs(b.TempDir())
		if err != nil {
			panic(err)
		}
		path := filepath.Join(dir, "bench.deepdb")
		if err := db.Save(path); err != nil {
			panic(err)
		}
		if prepDB, err = deepdb.Open(ctx, path); err != nil {
			panic(err)
		}
		if prepColdDB, err = deepdb.Open(ctx, path, deepdb.WithPlanCacheSize(0)); err != nil {
			panic(err)
		}
	})
	return prepDB, prepColdDB
}

const benchTemplate = "SELECT COUNT(*) FROM customer JOIN orders WHERE c_age < ? AND o_amount >= ?"

func benchLiteral(i int) string {
	return fmt.Sprintf("SELECT COUNT(*) FROM customer JOIN orders WHERE c_age < %d AND o_amount >= %d",
		25+i%40, 10+i%80)
}

// BenchmarkPreparedExec: bind parameters into a pre-compiled plan — no
// parsing, no shape hashing, no compilation per call.
func BenchmarkPreparedExec(b *testing.B) {
	db, _ := preparedFixture(b)
	ctx := context.Background()
	stmt, err := db.Prepare(benchTemplate)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Estimate(ctx, 25+i%40, 10+i%80); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnpreparedCached: one-shot SQL with the plan cache on — pays
// parse + shape key per call, reuses the compiled plan.
func BenchmarkUnpreparedCached(b *testing.B) {
	db, _ := preparedFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.EstimateCardinality(ctx, benchLiteral(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnpreparedUncached: one-shot SQL with the plan cache disabled —
// pays parse + validation + full plan compilation per call, the pre-split
// cost model.
func BenchmarkUnpreparedUncached(b *testing.B) {
	_, db := preparedFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.EstimateCardinality(ctx, benchLiteral(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupByBatched: one grouped query — the batched executor
// collects every group key's expectation requests and answers them in one
// pass per model.
func BenchmarkGroupByBatched(b *testing.B) {
	db, _ := preparedFixture(b)
	ctx := context.Background()
	stmt, err := db.Prepare("SELECT COUNT(*) FROM customer JOIN orders WHERE o_amount >= ? GROUP BY c_region")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := stmt.Exec(ctx, 10+i%80)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Groups) == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkGroupByPerGroup: the same answer computed the pre-batching way
// — one independent query per group key (each paying its own full
// evaluation), the shape the old executor's per-group fan-out had.
func BenchmarkGroupByPerGroup(b *testing.B) {
	db, _ := preparedFixture(b)
	ctx := context.Background()
	stmt, err := db.Prepare("SELECT COUNT(*) FROM customer JOIN orders WHERE o_amount >= ? AND c_region = ?")
	if err != nil {
		b.Fatal(err)
	}
	regions := []string{"EU", "ASIA", "US"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, region := range regions {
			if _, err := stmt.Exec(ctx, 10+i%80, region); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPreparedExecBatch: many bindings under one lock and one plan
// lookup.
func BenchmarkPreparedExecBatch(b *testing.B) {
	db, _ := preparedFixture(b)
	ctx := context.Background()
	stmt, err := db.Prepare(benchTemplate)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([][]any, 16)
	for i := range batch {
		batch[i] = []any{25 + i*2, 10 + i*5}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.ExecBatch(ctx, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(batch)), "queries/op")
}
