#!/bin/sh
# bench.sh — run the serving micro-benchmarks and emit the results as JSON
# in the repo root:
#
#   BENCH_query.json — query-path benches: prepared vs unprepared
#       estimation, batch execution, GROUP BY (batched vs per-group),
#       result-cache hit vs uncached execution, streamed vs materialized
#       GROUP BY rows/s, and the HTTP serve endpoint.
#   BENCH_spn.json   — SPN inference micro-benches: the reference tree
#       walk vs the compiled flat evaluator, single-request and batched.
#   BENCH_update.json — update-pipeline benches: apply throughput
#       (rows/s) of the synchronous vs the batched asynchronous path, the
#       batch-size sweep, and reader p50/p99 latency idle vs while a
#       writer streams mutations (the flat-reader-latency claim of
#       snapshot-isolated serving).
#   BENCH_wal.json   — durability benches: WAL append throughput per
#       fsync policy (sync/batched/off), log scan and end-to-end crash
#       recovery speed, and reader p50/p99 while drift-triggered
#       re-learning hot-swaps ensemble members under a write stream.
#   BENCH_serve.json — sharded-serving benches: concurrent reader qps and
#       p50/p99 against the fan-out router at shard counts 1/2/4/8 (the
#       partitioner clamps to the ensemble's member count; the effective
#       count is reported as the `shards` metric), and the hot-reload
#       blip — reader p50/p99 while a background loop keeps swapping the
#       model through the snapshot-publication path.
#
#   BENCHTIME=500x ./scripts/bench.sh     # override iteration count
set -eu

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-200x}"

# parse_bench turns `go test -bench` output on stdin into a JSON array.
parse_bench() {
    awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = ""
    bytes = ""
    allocs = ""
    nextra = 0
    for (i = 3; i < NF; i++) {
        unit = $(i + 1)
        if (unit == "ns/op") { ns = $i; i++ }
        else if (unit == "B/op") { bytes = $i; i++ }
        else if (unit == "allocs/op") { allocs = $i; i++ }
        else if (unit ~ /^[A-Za-z][A-Za-z0-9_\/-]*$/ && $i ~ /^[0-9.eE+-]+$/) {
            # custom b.ReportMetric units (rows/s, p50-ns, ...)
            ek[nextra] = unit; ev[nextra] = $i; nextra++; i++
        }
    }
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, (ns == "" ? "null" : ns)
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    for (e = 0; e < nextra; e++) {
        u = ek[e]
        gsub(/[^A-Za-z0-9]/, "_", u)
        printf ", \"%s\": %s", u, ev[e]
    }
    printf "}"
}
END { print "\n]" }
'
}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'Prepared|Unprepared|GroupByBatched|GroupByPerGroup|ResultCache|GroupStream|GroupMaterialized|ServeEstimate' -benchmem \
    -benchtime "$benchtime" . ./cmd/deepdb | tee "$tmp"
parse_bench < "$tmp" > BENCH_query.json
echo "wrote BENCH_query.json"

go test -run '^$' -bench 'SPNEval' -benchmem \
    -benchtime "$benchtime" ./internal/spn | tee "$tmp"
parse_bench < "$tmp" > BENCH_spn.json
echo "wrote BENCH_spn.json"

# The reader-latency percentiles need enough iterations to be meaningful;
# keep at least 2000 unless the caller explicitly asked for more.
update_benchtime="$benchtime"
case "$update_benchtime" in
*x)
    if [ "${update_benchtime%x}" -lt 2000 ] 2>/dev/null; then
        update_benchtime=2000x
    fi
    ;;
esac
go test -run '^$' -bench 'UpdateApply|ReaderLatency' -benchmem \
    -benchtime "$update_benchtime" . | tee "$tmp"
parse_bench < "$tmp" > BENCH_update.json
echo "wrote BENCH_update.json"

# RelearnHotSwapReader iterations are observed hot-swaps (readers sample
# continuously until b.N swaps complete), so the default benchtime already
# yields thousands of latency samples.
go test -run '^$' -bench 'WALAppend|WALScan|WALRecovery|RelearnHotSwapReader' -benchmem \
    -benchtime "$benchtime" . | tee "$tmp"
parse_bench < "$tmp" > BENCH_wal.json
echo "wrote BENCH_wal.json"

# Sharded-serving percentiles need the same sample floor as the update
# benches.
go test -run '^$' -bench 'ShardedServeQuery|ShardedHotReloadReader' -benchmem \
    -benchtime "$update_benchtime" . | tee "$tmp"
parse_bench < "$tmp" > BENCH_serve.json
echo "wrote BENCH_serve.json"
