#!/bin/sh
# bench.sh — run the serving micro-benchmarks and emit the results as JSON
# in the repo root:
#
#   BENCH_query.json — query-path benches: prepared vs unprepared
#       estimation, batch execution, GROUP BY (batched vs per-group), and
#       the HTTP serve endpoint.
#   BENCH_spn.json   — SPN inference micro-benches: the reference tree
#       walk vs the compiled flat evaluator, single-request and batched.
#
#   BENCHTIME=500x ./scripts/bench.sh     # override iteration count
set -eu

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-200x}"

# parse_bench turns `go test -bench` output on stdin into a JSON array.
parse_bench() {
    awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = ""
    bytes = ""
    allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, (ns == "" ? "null" : ns)
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
'
}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'Prepared|Unprepared|GroupByBatched|GroupByPerGroup|ServeEstimate' -benchmem \
    -benchtime "$benchtime" . ./cmd/deepdb | tee "$tmp"
parse_bench < "$tmp" > BENCH_query.json
echo "wrote BENCH_query.json"

go test -run '^$' -bench 'SPNEval' -benchmem \
    -benchtime "$benchtime" ./internal/spn | tee "$tmp"
parse_bench < "$tmp" > BENCH_spn.json
echo "wrote BENCH_spn.json"
