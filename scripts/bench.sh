#!/bin/sh
# bench.sh — run the query-serving micro-benchmarks (prepared vs
# unprepared estimation, batch execution, and the HTTP serve endpoint) and
# emit the results as BENCH_query.json in the repo root.
#
#   BENCHTIME=500x ./scripts/bench.sh     # override iteration count
set -eu

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-200x}"
out="BENCH_query.json"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'Prepared|Unprepared|ServeEstimate' -benchmem \
    -benchtime "$benchtime" . ./cmd/deepdb | tee "$tmp"

# Parse `BenchmarkName-8  N  T ns/op ...` lines into a JSON array.
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = ""
    bytes = ""
    allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, (ns == "" ? "null" : ns)
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "$tmp" > "$out"

echo "wrote $out"
