#!/bin/sh
# check.sh — the repo's full verification gate: formatting, vet, build,
# the test suite under the race detector, and a one-iteration benchmark
# smoke (catches bit-rot in the bench suite without timing anything).
# CI and `make check` run this.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== crash-recovery smoke =="
# The SIGKILL subprocess test is the durability gate: a child is killed
# mid-stream and recovery must be bit-identical. It runs as part of the
# suite above too; this dedicated invocation keeps it from being filtered
# out and reruns it without the cache.
go test -run 'TestCrashRecoverySIGKILL' -count=1 ./deepdb

echo "== benchmark smoke (1 iteration each) =="
# The root package includes the update-pipeline benches (UpdateApply*,
# ReaderLatency*), so the smoke also exercises the async applier.
go test -run '^$' -bench . -benchtime 1x . ./cmd/deepdb

echo "OK"
