#!/bin/sh
# check.sh — the repo's full verification gate: formatting, vet, build,
# and the test suite under the race detector. CI and `make check` run this.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "OK"
