#!/bin/sh
# check.sh — the repo's full verification gate: formatting, vet, build,
# the project invariant suite (deepdb-lint), pinned third-party static
# analysis, the test suite under the race detector (shuffled), and a
# one-iteration benchmark smoke (catches bit-rot in the bench suite
# without timing anything). CI and `make check` run this.
set -eu

cd "$(dirname "$0")/.."

# Pinned third-party analyzer versions. Bump deliberately: a version bump
# can introduce new checks, so run `make lint-fix-report` style triage and
# fix or suppress before landing the bump.
STATICCHECK_VERSION=2025.1.1
GOVULNCHECK_VERSION=v1.1.4

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== deepdb-lint (invariant suite) =="
# Project-specific analyzers (determinism, snapshot discipline, WAL
# ordering, ctx propagation, hard-coded timeouts, directive grammar) run
# through the vet driver so per-package results are cached by the go
# build cache.
mkdir -p bin
go build -o bin/deepdb-lint ./cmd/deepdb-lint
go vet -vettool="$(pwd)/bin/deepdb-lint" ./...

echo "== staticcheck (pinned $STATICCHECK_VERSION) =="
# Version-pinned via `go run`; the probe run fetches and builds the tool.
# When the module proxy is unreachable (offline dev container) the stage
# is skipped with a notice rather than failing the gate — CI always has
# network, so the check is still enforced where it matters. Baseline:
# the tree is staticcheck-clean at the pinned version; new findings must
# be fixed or suppressed with //lint:ignore and a justification.
if go run "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" -version >/dev/null 2>&1; then
    go run "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" ./...
else
    echo "staticcheck $STATICCHECK_VERSION unavailable (no module network?); skipping"
fi

echo "== govulncheck (pinned $GOVULNCHECK_VERSION) =="
# Same offline-skip contract as staticcheck. Baseline: no known vulns
# reachable from this module (stdlib-only dependency graph).
if go run "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION" -version >/dev/null 2>&1; then
    go run "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION" ./...
else
    echo "govulncheck $GOVULNCHECK_VERSION unavailable (no module network?); skipping"
fi

echo "== go test -race -shuffle=on =="
# -shuffle=on randomizes test and subtest order so inter-test state
# dependencies surface; -count=1 defeats the test cache so the shuffled
# order actually runs.
go test -race -shuffle=on -count=1 ./...

echo "== crash-recovery smoke =="
# The SIGKILL subprocess test is the durability gate: a child is killed
# mid-stream and recovery must be bit-identical; its SIGTERM counterpart
# gates the graceful drain (zero acked rows lost under batched
# durability). Both run as part of the suite above too; this dedicated
# invocation keeps them from being filtered out and reruns them without
# the cache.
go test -run 'TestCrashRecoverySIGKILL|TestGracefulShutdownSIGTERM' -count=1 ./deepdb

echo "== router-vs-single equivalence smoke =="
# The sharded serving tier's correctness bar: the fan-out router must
# answer bit-identically to a single process across every query class,
# both at the facade (after a broadcast mutation stream) and over HTTP.
go test -run 'TestShardedMatchesSingleBitwise' -count=1 ./deepdb
go test -run 'TestShardedServeEquivalence' -count=1 ./cmd/deepdb

echo "== chaos (seeded fault injection) =="
# The fault-injection suite: deterministic, seeded schedules drive the WAL
# append/fsync path, the async applier and the shard RPC client through
# injected EIO/ENOSPC, torn writes, partitions, timeouts and latency, and
# assert the hardening invariants — no acked-write loss, bit-identical
# estimates to a fault-free run, breaker open-then-reconverge after heal.
# These run inside the full suite above too; the dedicated invocation
# keeps the chaos bar visible and uncached even when the suite is filtered.
go test -race -short -count=1 -run '^TestChaos' ./internal/wal ./internal/pipeline ./deepdb

echo "== SPN kernel regression guard =="
# BenchmarkSPNEvalFlatGrouped16 carries the vectorized binned-leaf kernel
# speedup; fail the gate if it regresses more than 20% against the
# committed baseline in BENCH_spn.json. The guard measures with a fixed
# iteration count large enough to smooth scheduler noise.
baseline=$(awk -F'"ns_per_op": ' '/SPNEvalFlatGrouped16/ {split($2, a, /[,}]/); print a[1]}' BENCH_spn.json)
current=$(go test -run '^$' -bench 'SPNEvalFlatGrouped16$' -benchtime 20000x ./internal/spn \
    | awk '$1 ~ /^BenchmarkSPNEvalFlatGrouped16/ {for (i = 2; i < NF; i++) if ($(i + 1) == "ns/op") print $i}')
awk -v base="$baseline" -v cur="$current" 'BEGIN {
    if (base == "" || cur == "") { print "kernel guard: missing measurement (baseline=" base ", current=" cur ")"; exit 1 }
    if (cur + 0 > (base + 0) * 1.2) {
        printf "SPNEvalFlatGrouped16 regressed: %.0f ns/op vs committed baseline %.0f (+%.0f%%, budget 20%%)\n", cur, base, (cur / base - 1) * 100
        exit 1
    }
    printf "SPNEvalFlatGrouped16: %.0f ns/op (committed baseline %.0f, within 20%%)\n", cur, base
}'

echo "== benchmark smoke (1 iteration each) =="
# The root package includes the update-pipeline benches (UpdateApply*,
# ReaderLatency*), so the smoke also exercises the async applier.
go test -run '^$' -bench . -benchtime 1x . ./cmd/deepdb

echo "OK"
