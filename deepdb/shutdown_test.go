package deepdb_test

// shutdown_test.go is the graceful-shutdown counterpart of crash_test.go:
// a child process streams mutations into a WAL-backed DB under *batched*
// durability and receives SIGTERM mid-stream. Batched mode makes the test
// sharp — a SIGKILL here could legally lose the un-synced tail, so zero
// loss is exactly the property the drain path must add: the handler stops
// admitting writes, Close() drains the update pipeline and syncs the log,
// and every acknowledged mutation must be durable. The parent then proves
// it by replaying the log into a fresh DB and requiring bit-identical
// answers to a reference that applied the acked prefix without any
// process lifecycle at all.

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/deepdb"
	"repro/internal/wal"
)

const (
	termChildEnv    = "DEEPDB_TERM_CHILD"
	termWALDirEnv   = "DEEPDB_TERM_WALDIR"
	termStreamLen   = 200
	termSignalAfter = 60 // acks the parent waits for before SIGTERM
)

// TestGracefulShutdownChild is the subprocess body; without the env gate
// it is skipped, so a plain `go test` never runs it directly.
func TestGracefulShutdownChild(t *testing.T) {
	if os.Getenv(termChildEnv) != "1" {
		t.Skip("subprocess of TestGracefulShutdownSIGTERM")
	}
	dir := os.Getenv(termWALDirEnv)
	ctx := context.Background()
	s, data := fixture(1200, 78)
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(8000),
		deepdb.WithWAL(dir),
		deepdb.WithDurability(deepdb.DurabilityBatched))
	if err != nil {
		fmt.Println("child error:", err)
		os.Exit(1)
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	fmt.Println("ready")
	acked := 0
stream:
	for i, m := range mutationStream(termStreamLen) {
		select {
		case <-sigc:
			break stream
		default:
		}
		if m.del {
			err = db.Delete(m.table, m.pk)
		} else {
			err = db.Insert(m.table, m.values)
		}
		if err != nil {
			fmt.Println("child error:", err)
			os.Exit(1)
		}
		acked++
		fmt.Println("acked", i)
		// Pace the stream so the signal lands mid-flight.
		time.Sleep(time.Millisecond)
	}
	// The drain under test: stop admitting, apply everything queued, sync
	// the log. After this returns, every ack above is a durability promise.
	if err := db.Close(); err != nil {
		fmt.Println("child error:", err)
		os.Exit(1)
	}
	fmt.Println("closed", acked)
	os.Exit(0)
}

func TestGracefulShutdownSIGTERM(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("needs SIGTERM")
	}
	ctx := context.Background()
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=TestGracefulShutdownChild$", "-test.v")
	cmd.Env = append(os.Environ(), termChildEnv+"=1", termWALDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Wait()                                                          //nolint:errcheck
	deadline := time.AfterFunc(60*time.Second, func() { cmd.Process.Kill() }) //nolint:errcheck
	defer deadline.Stop()

	// Count acks until the signal point, then keep scanning for the
	// child's own final tally — it may legitimately ack a few more between
	// our SIGTERM and its loop noticing.
	acks, closed := 0, -1
	signalled := false
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "child error:"):
			t.Fatalf("child failed: %s", line)
		case strings.HasPrefix(line, "acked "):
			acks++
			if !signalled && acks >= termSignalAfter {
				if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
					t.Fatal(err)
				}
				signalled = true
			}
		case strings.HasPrefix(line, "closed "):
			n, err := strconv.Atoi(strings.TrimPrefix(line, "closed "))
			if err != nil {
				t.Fatalf("bad tally line %q: %v", line, err)
			}
			closed = n
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("child did not exit cleanly after SIGTERM: %v", err)
	}
	if !signalled {
		t.Fatalf("child finished all %d mutations before the parent could signal", termStreamLen)
	}
	if closed < termSignalAfter || closed >= termStreamLen {
		t.Fatalf("child reported %d acked mutations, want a mid-stream tally in [%d, %d)",
			closed, termSignalAfter, termStreamLen)
	}

	// Zero loss, zero invention: the log holds exactly the acked prefix.
	durable := 0
	err = wal.Dump(dir, 0, func(lsn uint64, payload []byte) error {
		if _, derr := wal.DecodeMutations(payload); derr != nil {
			return fmt.Errorf("lsn %d: %w", lsn, derr)
		}
		durable++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if durable != closed {
		t.Fatalf("graceful drain lost acks: child acked %d, log holds %d", closed, durable)
	}

	muts := mutationStream(termStreamLen)
	s, data := fixture(1200, 78)
	ref, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(8000), deepdb.WithSyncUpdates())
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, ref, muts[:closed])

	s2, data2 := fixture(1200, 78)
	rec, err := deepdb.LearnDataset(ctx, s2, data2,
		deepdb.WithMaxSamples(8000), deepdb.WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.UpdateStats().WAL.Replayed; got != uint64(closed) {
		t.Fatalf("recovery replayed %d records, want %d", got, closed)
	}
	for i, q := range equivalenceWorkload {
		a, err := ref.ExecuteQuery(ctx, q)
		if err != nil {
			t.Fatalf("query %d ref: %v", i, err)
		}
		b, err := rec.ExecuteQuery(ctx, q)
		if err != nil {
			t.Fatalf("query %d recovered: %v", i, err)
		}
		if normResult(a) != normResult(b) {
			t.Fatalf("query %d diverged after graceful shutdown\n  ref:       %v\n  recovered: %v", i, a, b)
		}
	}
}
