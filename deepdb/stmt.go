package deepdb

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/query"
)

// Stmt is a prepared statement: a SQL template, parsed and validated once,
// whose `?` placeholders are bound per execution. The compiled plan is
// shared with the DB's plan cache (a one-shot query of the same shape hits
// the same entry) and additionally pinned on the statement itself, so
// repeated executions skip parsing, validation, shape hashing and plan
// compilation entirely. A Stmt is safe for concurrent use.
//
//	stmt, err := db.Prepare("SELECT COUNT(*) FROM orders JOIN customer WHERE c_age < ? AND c_region = ?")
//	res, err := stmt.Exec(ctx, 40, "EU")
//
// Every execution runs against the snapshot published at its start: the
// pinned plan is revalidated against the snapshot's generation (and
// transparently recompiled after an update batch published a newer one),
// and the whole call — plan, parameter resolution, evaluation — sees that
// one consistent model state, never a half-applied update.
//
// Parameters may be numbers (any int/uint/float type) or strings; strings
// are resolved through the dictionary of the placeholder's column at
// execution time, which works model-only via the dictionaries persisted in
// the model file.
type Stmt struct {
	db      stmtHost
	q       query.Query
	shape   string
	nparams int
	// paramCols[i] is the column of placeholder i+1, for string binding.
	paramCols []string

	mu   sync.Mutex
	plan *core.Plan
	gen  uint64
}

// stmtHost is the part of a database handle the read path needs: a
// snapshot to run against, a (cached) plan for it, and the default
// confidence level. Both *DB and *ShardedDB implement it, so prepared
// statements — and the shared query helpers in deepdb.go — work unchanged
// over either.
type stmtHost interface {
	snapshotNow() *snapshot
	planFor(s *snapshot, shape string, q query.Query) (*core.Plan, error)
	defaultConfidence() float64
	// results returns the cross-query result cache (nil when disabled).
	results() *resultCache
}

// Prepare parses the SQL template (which may contain `?` placeholders as
// comparison values), validates it and compiles its plan eagerly, so shape
// errors surface here rather than at execution.
func (db *DB) Prepare(sql string) (*Stmt, error) { return prepareOn(db, sql) }

func prepareOn(h stmtHost, sql string) (*Stmt, error) {
	snap := h.snapshotNow()
	q, err := query.Parse(sql, resolver(snap.ens))
	if err != nil {
		return nil, err
	}
	s := &Stmt{db: h, q: q, shape: q.ShapeKey(), nparams: q.NumParams(),
		paramCols: paramColumns(q)}
	p, err := s.planOn(snap)
	if err != nil {
		return nil, err
	}
	// Force the execution-side compilation (group keys, aggregate member
	// selection) too: a statement that can never execute must fail here,
	// not on its first Exec.
	if err := p.ExecErr(); err != nil {
		return nil, err
	}
	return s, nil
}

// paramColumns maps placeholder ordinals to their predicate columns.
func paramColumns(q query.Query) []string {
	out := make([]string, q.NumParams())
	for _, preds := range [][]query.Predicate{q.Filters, q.Disjunction} {
		for _, p := range preds {
			if p.Param > 0 {
				out[p.Param-1] = p.Column
			}
		}
	}
	return out
}

// NumParams returns the number of `?` placeholders in the statement.
func (s *Stmt) NumParams() int { return s.nparams }

// SQL returns the parsed template rendered back to SQL-ish form.
func (s *Stmt) SQL() string { return s.q.String() }

// planOn returns the statement's compiled plan for the given snapshot,
// recompiling when the pinned plan was compiled at a different generation
// (an update batch or staleness check published since).
func (s *Stmt) planOn(snap *snapshot) (*core.Plan, error) {
	s.mu.Lock()
	if s.plan != nil && s.gen == snap.gen {
		p := s.plan
		s.mu.Unlock()
		return p, nil
	}
	s.mu.Unlock()
	p, err := s.db.planFor(snap, s.shape, s.q)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	// Keep the newest generation's plan pinned: a concurrent execution on
	// a fresher snapshot must not be overwritten by ours.
	if s.plan == nil || snap.gen >= s.gen {
		s.plan, s.gen = p, snap.gen
	}
	s.mu.Unlock()
	return p, nil
}

// Exec runs the statement with the given parameter values. Arguments of
// type ExecOption (e.g. AtConfidence(0.99)) are applied as per-call
// options; every other argument binds the next placeholder.
func (s *Stmt) Exec(ctx context.Context, params ...any) (Result, error) {
	vals, opts := splitArgs(params)
	return s.execOn(ctx, s.db.snapshotNow(), vals, opts)
}

func (s *Stmt) execOn(ctx context.Context, snap *snapshot, vals []any, opts []ExecOption) (Result, error) {
	eo := resolveExec(opts)
	q, err := s.bindOn(snap, vals)
	if err != nil {
		return Result{}, err
	}
	// Result-cache hit: skip the plan lookup and the evaluation entirely
	// (the cached value is a previous execution's, bit-identical).
	rc := s.db.results()
	var key []byte
	if rc != nil {
		key = resultKey(nsQuery, s.shape, q, eo.levelOr(s.db.defaultConfidence()))
		if res, ok := rc.getResult(key, snap.gen); ok {
			return res, nil
		}
	}
	p, err := s.planOn(snap)
	if err != nil {
		return Result{}, err
	}
	res, err := p.ExecuteQuery(ctx, eo.core(), q)
	if err != nil {
		return Result{}, err
	}
	out := wrapResult(snap.ens, q, res)
	if rc != nil {
		rc.putResult(key, snap.gen, out)
	}
	return out, nil
}

// ExecBatch runs the statement once per parameter set against one
// snapshot and one plan lookup. All bindings flow through the plan's
// batched evaluator: every binding's expectation requests (including
// per-group requests of a GROUP BY template) are evaluated together on
// each model's flattened arrays, chunked over the DB's configured
// parallelism — one pass per chunk instead of one model traversal per
// binding per moment. The results are returned in batch order,
// bit-identical to calling Exec once per set against the same snapshot;
// the first error aborts the batch.
func (s *Stmt) ExecBatch(ctx context.Context, batch [][]any, opts ...ExecOption) ([]Result, error) {
	eo := resolveExec(opts)
	snap := s.db.snapshotNow()
	// Bind everything up front so an arity or type error in any set
	// surfaces before work starts.
	queries := make([]query.Query, len(batch))
	for i, params := range batch {
		q, err := s.bindOn(snap, params)
		if err != nil {
			return nil, fmt.Errorf("deepdb: batch entry %d: %w", i, err)
		}
		queries[i] = q
	}
	// Resolve cache hits per entry and batch-execute only the misses:
	// ExecuteBatch is bit-identical to one-at-a-time execution, so the
	// subset batch produces exactly the values the full batch would.
	out := make([]Result, len(batch))
	missIdx := make([]int, 0, len(batch))
	rc := s.db.results()
	var keys [][]byte
	if rc != nil {
		level := eo.levelOr(s.db.defaultConfidence())
		keys = make([][]byte, len(batch))
		for i := range queries {
			keys[i] = resultKey(nsQuery, s.shape, queries[i], level)
			if res, ok := rc.getResult(keys[i], snap.gen); ok {
				out[i] = res
				continue
			}
			missIdx = append(missIdx, i)
		}
		if len(missIdx) == 0 {
			return out, nil
		}
	} else {
		for i := range queries {
			missIdx = append(missIdx, i)
		}
	}
	p, err := s.planOn(snap)
	if err != nil {
		return nil, err
	}
	missQs := make([]query.Query, len(missIdx))
	for j, i := range missIdx {
		missQs[j] = queries[i]
	}
	ress, err := p.ExecuteBatch(ctx, eo.core(), missQs)
	if err != nil {
		return nil, fmt.Errorf("deepdb: %w", err)
	}
	for j, i := range missIdx {
		out[i] = wrapResult(snap.ens, queries[i], ress[j])
		if rc != nil {
			rc.putResult(keys[i], snap.gen, out[i])
		}
	}
	return out, nil
}

// Estimate runs the statement's cardinality-estimation view (COUNT(*)
// over the join with the bound filters; aggregate and GROUP BY settings
// are ignored). Arguments follow the Exec convention.
func (s *Stmt) Estimate(ctx context.Context, params ...any) (Estimate, error) {
	vals, opts := splitArgs(params)
	eo := resolveExec(opts)
	snap := s.db.snapshotNow()
	q, err := s.bindOn(snap, vals)
	if err != nil {
		return Estimate{}, err
	}
	level := eo.levelOr(s.db.defaultConfidence())
	rc := s.db.results()
	var key []byte
	if rc != nil {
		key = resultKey(nsEstimate, s.shape, q, level)
		if est, ok := rc.getEstimate(key, snap.gen); ok {
			return est, nil
		}
	}
	p, err := s.planOn(snap)
	if err != nil {
		return Estimate{}, err
	}
	est, err := p.EstimateCardinalityQuery(ctx, q)
	if err != nil {
		return Estimate{}, err
	}
	out := wrapEstimate(est, level)
	if rc != nil {
		rc.putEstimate(key, snap.gen, out)
	}
	return out, nil
}

// Explain renders the plan the statement executes.
func (s *Stmt) Explain(ctx context.Context) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	p, err := s.planOn(s.db.snapshotNow())
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// splitArgs separates ExecOption arguments from parameter values.
func splitArgs(args []any) ([]any, []ExecOption) {
	vals := make([]any, 0, len(args))
	var opts []ExecOption
	for _, a := range args {
		if o, ok := a.(ExecOption); ok {
			opts = append(opts, o)
			continue
		}
		vals = append(vals, a)
	}
	return vals, opts
}

// bindOn converts the parameter values and binds them into the template,
// resolving string parameters through the given snapshot's dictionaries.
func (s *Stmt) bindOn(snap *snapshot, vals []any) (query.Query, error) {
	if len(vals) != s.nparams {
		return query.Query{}, fmt.Errorf("deepdb: statement has %d placeholder(s), got %d parameter(s)", s.nparams, len(vals))
	}
	bound := make([]float64, len(vals))
	for i, v := range vals {
		f, err := s.paramValue(snap, i, v)
		if err != nil {
			return query.Query{}, err
		}
		bound[i] = f
	}
	return s.q.Bind(bound...)
}

// paramValue encodes one parameter: numbers pass through, strings resolve
// through the dictionary of the placeholder's column.
func (s *Stmt) paramValue(snap *snapshot, i int, v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case float32:
		return float64(x), nil
	case int:
		return float64(x), nil
	case int8:
		return float64(x), nil
	case int16:
		return float64(x), nil
	case int32:
		return float64(x), nil
	case int64:
		return float64(x), nil
	case uint:
		return float64(x), nil
	case uint8:
		return float64(x), nil
	case uint16:
		return float64(x), nil
	case uint32:
		return float64(x), nil
	case uint64:
		return float64(x), nil
	case string:
		col := s.paramCols[i]
		code, found, known := snap.ens.ResolveLabel(col, x)
		if !known {
			return 0, fmt.Errorf("deepdb: parameter %d: unknown column %s", i+1, col)
		}
		if !found {
			return 0, fmt.Errorf("deepdb: parameter %d: value %q not found in column %s", i+1, x, col)
		}
		return code, nil
	default:
		return 0, fmt.Errorf("deepdb: parameter %d: unsupported type %T (use a number or string)", i+1, v)
	}
}
