package deepdb_test

// crash_test.go is the end-to-end durability proof: a child process
// streams mutations into a WAL-backed DB under DurabilitySync and is
// killed with SIGKILL mid-stream — no defers, no flushes, no goodbye. The
// parent then determines the durable prefix from the log itself, rebuilds
// a reference DB that applied exactly that prefix without ever crashing,
// recovers a DB from the WAL, and requires bit-identical answers across
// the full query-class matrix. Acknowledged-before-kill mutations must all
// be in the durable prefix (that is what sync durability promises).

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/deepdb"
	"repro/internal/wal"
)

const (
	crashChildEnv  = "DEEPDB_CRASH_CHILD"
	crashWALDirEnv = "DEEPDB_CRASH_WALDIR"
	crashStreamLen = 200
	crashKillAfter = 60 // acks the parent waits for before SIGKILL
)

// TestCrashRecoveryChild is the subprocess body; without the env gate it
// is skipped, so a plain `go test` never runs it directly.
func TestCrashRecoveryChild(t *testing.T) {
	if os.Getenv(crashChildEnv) != "1" {
		t.Skip("subprocess of TestCrashRecoverySIGKILL")
	}
	dir := os.Getenv(crashWALDirEnv)
	ctx := context.Background()
	s, data := fixture(1200, 77)
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(8000),
		deepdb.WithWAL(dir),
		deepdb.WithDurability(deepdb.DurabilitySync))
	if err != nil {
		fmt.Println("child error:", err)
		os.Exit(1)
	}
	fmt.Println("ready")
	for i, m := range mutationStream(crashStreamLen) {
		if m.del {
			err = db.Delete(m.table, m.pk)
		} else {
			err = db.Insert(m.table, m.values)
		}
		if err != nil {
			fmt.Println("child error:", err)
			os.Exit(1)
		}
		// Under DurabilitySync the mutation is on disk once the call
		// returns, even though the background applier may not have applied
		// it yet — that is exactly what the parent verifies.
		fmt.Println("acked", i)
	}
	fmt.Println("done")
	select {} // hold the WAL open until the parent kills us
}

func TestCrashRecoverySIGKILL(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("needs SIGKILL")
	}
	ctx := context.Background()
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=TestCrashRecoveryChild$", "-test.v")
	cmd.Env = append(os.Environ(), crashChildEnv+"=1", crashWALDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill() //nolint:errcheck
		}
		cmd.Wait() //nolint:errcheck
	}()

	acked := -1
	sc := bufio.NewScanner(stdout)
	deadline := time.AfterFunc(60*time.Second, func() { cmd.Process.Kill() }) //nolint:errcheck
	defer deadline.Stop()
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "child error:"):
			t.Fatalf("child failed: %s", line)
		case strings.HasPrefix(line, "acked "):
			acked++
			if acked+1 >= crashKillAfter {
				if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
					t.Fatal(err)
				}
				killed = true
			}
		case line == "done":
			t.Fatal("child finished the whole stream before the kill")
		}
		if killed {
			break
		}
	}
	cmd.Wait() //nolint:errcheck // the kill makes this an error by design
	if !killed {
		t.Fatalf("child exited early after %d acks", acked+1)
	}

	// The durable prefix is whatever survived in the log — every record,
	// in LSN order, one mutation group per Insert/Delete call.
	durable := 0
	err = wal.Dump(dir, 0, func(lsn uint64, payload []byte) error {
		if _, derr := wal.DecodeMutations(payload); derr != nil {
			return fmt.Errorf("lsn %d: %w", lsn, derr)
		}
		durable++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if durable < acked+1 {
		t.Fatalf("sync durability violated: %d mutations acked, only %d durable", acked+1, durable)
	}
	muts := mutationStream(crashStreamLen)
	if durable > len(muts) {
		t.Fatalf("log holds %d records for a %d-mutation stream", durable, len(muts))
	}

	// Reference: the same durable prefix applied synchronously, no crash.
	s, data := fixture(1200, 77)
	ref, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(8000), deepdb.WithSyncUpdates())
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, ref, muts[:durable])

	// Recovery: rebuild over the original data and replay the log.
	s2, data2 := fixture(1200, 77)
	rec, err := deepdb.LearnDataset(ctx, s2, data2,
		deepdb.WithMaxSamples(8000), deepdb.WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.UpdateStats().WAL.Replayed; got != uint64(durable) {
		t.Fatalf("recovery replayed %d records, want %d", got, durable)
	}

	for i, q := range equivalenceWorkload {
		a, err := ref.ExecuteQuery(ctx, q)
		if err != nil {
			t.Fatalf("query %d ref: %v", i, err)
		}
		b, err := rec.ExecuteQuery(ctx, q)
		if err != nil {
			t.Fatalf("query %d recovered: %v", i, err)
		}
		if normResult(a) != normResult(b) {
			t.Fatalf("query %d diverged after crash recovery\n  ref:       %v\n  recovered: %v", i, a, b)
		}
	}
}
