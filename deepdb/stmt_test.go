package deepdb_test

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/deepdb"
)

// TestPreparedMatchesOneShot: Stmt.Exec on a cached plan returns estimates
// bit-identical to the equivalent one-shot call, across parameter values
// and classes (numeric comparison, string equality, join + Theorem 2).
func TestPreparedMatchesOneShot(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(2000, 41)
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(4000), deepdb.WithSingleTableOnly())
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare(
		"SELECT COUNT(*) FROM customer JOIN orders WHERE c_age < ? AND c_region = ? AND o_amount >= ?")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 3 {
		t.Fatalf("NumParams = %d, want 3", stmt.NumParams())
	}
	for _, tc := range []struct {
		age    int
		region string
		amount float64
	}{{30, "EU", 20}, {50, "ASIA", 50}, {70, "EU", 80}} {
		prepared, err := stmt.Estimate(ctx, tc.age, tc.region, tc.amount)
		if err != nil {
			t.Fatal(err)
		}
		sql := fmt.Sprintf(
			"SELECT COUNT(*) FROM customer JOIN orders WHERE c_age < %d AND c_region = '%s' AND o_amount >= %g",
			tc.age, tc.region, tc.amount)
		oneShot, err := db.EstimateCardinality(ctx, sql)
		if err != nil {
			t.Fatal(err)
		}
		if prepared != oneShot {
			t.Fatalf("%+v: prepared %+v != one-shot %+v", tc, prepared, oneShot)
		}
		// Exec (the AQP view of the COUNT) must agree with Query too.
		execRes, err := stmt.Exec(ctx, tc.age, tc.region, tc.amount)
		if err != nil {
			t.Fatal(err)
		}
		queryRes, err := db.Query(ctx, sql)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(execRes) != fmt.Sprint(queryRes) {
			t.Fatalf("%+v: Exec %v != Query %v", tc, execRes, queryRes)
		}
	}
}

// TestExecBatch runs one statement over many parameter sets and must agree
// with individual Execs, order-preserved.
func TestExecBatch(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1500, 42)
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(3000), deepdb.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_amount >= ?")
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]any{{10.0}, {30.0}, {50.0}, {70.0}, {90.0}}
	results, err := stmt.ExecBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(batch) {
		t.Fatalf("got %d results for %d sets", len(results), len(batch))
	}
	for i, params := range batch {
		single, err := stmt.Exec(ctx, params...)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(results[i]) != fmt.Sprint(single) {
			t.Fatalf("batch[%d] %v != single %v", i, results[i], single)
		}
	}
	if _, err := stmt.ExecBatch(ctx, [][]any{{1.0}, {}}); err == nil ||
		!strings.Contains(err.Error(), "batch entry 1") {
		t.Fatalf("bad batch entry: err = %v, want entry-indexed arity error", err)
	}
}

// TestPrepareAndExecErrors covers the error paths of the prepared API:
// malformed SQL, unknown columns and tables, wrong placeholder arity,
// unsupported parameter types and unresolvable string parameters.
func TestPrepareAndExecErrors(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(800, 43)
	db, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(1500))
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"SELECT",
		"SELECT COUNT(*) FROM",
		"SELECT COUNT(*) FROM nowhere",
		"SELECT COUNT(*) FROM customer WHERE c_age ~ 1",
		"SELECT COUNT(*) FROM customer WHERE no_such_col = 'EU'",
		"SELECT COUNT(*) FROM customer WHERE c_age IN (1, ?)",
	} {
		if _, err := db.Prepare(sql); err == nil {
			t.Errorf("Prepare(%q) should fail", sql)
		}
	}
	// An aggregate no RSPN can resolve compiles as a plan whose execution
	// can never succeed; Prepare must fail eagerly, not on first Exec.
	if _, err := db.Prepare("SELECT AVG(c_id2) FROM customer"); err == nil {
		t.Error("Prepare with unresolvable aggregate column should fail")
	}
	stmt, err := db.Prepare("SELECT COUNT(*) FROM customer WHERE c_age < ? AND c_region = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Exec(ctx, 40); err == nil || !strings.Contains(err.Error(), "placeholder") {
		t.Fatalf("arity error = %v, want placeholder-count message", err)
	}
	if _, err := stmt.Exec(ctx, 40, "EU", 7); err == nil {
		t.Fatal("too many parameters must fail")
	}
	if _, err := stmt.Exec(ctx, 40, []byte("EU")); err == nil ||
		!strings.Contains(err.Error(), "unsupported type") {
		t.Fatalf("type error = %v, want unsupported-type message", err)
	}
	if _, err := stmt.Exec(ctx, 40, "ATLANTIS"); err == nil ||
		!strings.Contains(err.Error(), "not found") {
		t.Fatalf("unknown literal = %v, want not-found message", err)
	}
	// A numeric parameter for a string column is allowed (it is the code);
	// a string parameter for a numeric column must fail cleanly.
	if _, err := stmt.Exec(ctx, "forty", "EU"); err == nil {
		t.Fatal("string parameter on numeric column must fail")
	}
}

// TestPlanCacheReuseAndInvalidation: repeated one-shot queries of one
// shape share a cache entry; Insert/Delete invalidate it (visible through
// a GROUP BY whose key set changes with the data).
func TestPlanCacheReuseAndInvalidation(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1200, 44)
	db, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(2500))
	if err != nil {
		t.Fatal(err)
	}
	// Same shape, different literals: one plan.
	for _, v := range []int{20, 30, 40, 50} {
		sql := fmt.Sprintf("SELECT COUNT(*) FROM customer WHERE c_age < %d", v)
		if _, err := db.EstimateCardinality(ctx, sql); err != nil {
			t.Fatal(err)
		}
	}
	if n := db.PlanCacheLen(); n != 1 {
		t.Fatalf("plan cache holds %d plans after 4 same-shape queries, want 1", n)
	}
	const groupSQL = "SELECT COUNT(*) FROM customer GROUP BY c_region"
	before, err := db.Query(ctx, groupSQL)
	if err != nil {
		t.Fatal(err)
	}
	// Insert rows with a brand-new region value. The group keys were
	// enumerated at compile time, so a stale cached plan would keep
	// answering with the old group set.
	region := db.Data()["customer"].Column("c_region")
	newCode := region.Encode("OCEANIA")
	for i := 0; i < 50; i++ {
		err := db.Insert("customer", map[string]deepdb.Value{
			"c_id":     deepdb.Int(1_000_000 + i),
			"c_age":    deepdb.Int(30),
			"c_region": deepdb.Int(newCode),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Updates are asynchronous by default; Flush publishes them (and any
	// apply error) before we look.
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	after, err := db.Query(ctx, groupSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Groups) != len(before.Groups)+1 {
		t.Fatalf("after insert: %d groups, want %d (stale cached plan?)",
			len(after.Groups), len(before.Groups)+1)
	}
	found := false
	for _, g := range after.Groups {
		for _, l := range g.Labels {
			if l == "OCEANIA" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("new group label missing: %v", after.Groups)
	}
}

// TestPreparedStmtSurvivesUpdates: a Stmt prepared before an Insert keeps
// answering (its pinned plan is recompiled on the next Exec) and reflects
// the new data.
func TestPreparedStmtSurvivesUpdates(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1000, 45)
	db, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(2000))
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_amount >= ?")
	if err != nil {
		t.Fatal(err)
	}
	before, err := stmt.Estimate(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		err := db.Insert("orders", map[string]deepdb.Value{
			"o_id":     deepdb.Int(2_000_000 + i),
			"o_c_id":   deepdb.Int(i % 100),
			"o_amount": deepdb.Float(55),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	after, err := stmt.Estimate(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after.Value <= before.Value {
		t.Fatalf("estimate did not grow after 200 inserts: %v -> %v", before.Value, after.Value)
	}
}

// TestConcurrentPrepareExecUpdate: many goroutines prepare, execute
// (single and batch) and update one *DB concurrently under -race; all
// operations must succeed.
func TestConcurrentPrepareExecUpdate(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	s, data := fixture(1500, 46)
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(3000), deepdb.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	shared, err := db.Prepare("SELECT COUNT(*) FROM customer JOIN orders WHERE c_age < ? AND o_amount >= ?")
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 3
		readers = 6
		iters   = 20
	)
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := db.Update(deepdb.Row{Table: "orders", Values: map[string]deepdb.Value{
					"o_id":     deepdb.Int(3_000_000 + w*iters + i),
					"o_c_id":   deepdb.Int(i % 50),
					"o_amount": deepdb.Float(42),
				}})
				if err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0:
					if _, err := shared.Exec(ctx, 30+i, float64(i)); err != nil {
						errc <- fmt.Errorf("reader %d shared exec: %w", r, err)
						return
					}
				case 1:
					own, err := db.Prepare("SELECT AVG(o_amount) FROM orders WHERE o_amount >= ?")
					if err != nil {
						errc <- fmt.Errorf("reader %d prepare: %w", r, err)
						return
					}
					if _, err := own.ExecBatch(ctx, [][]any{{10.0}, {60.0}}); err != nil {
						errc <- fmt.Errorf("reader %d batch: %w", r, err)
						return
					}
				default:
					if _, err := db.Query(ctx, "SELECT COUNT(*) FROM customer GROUP BY c_region"); err != nil {
						errc <- fmt.Errorf("reader %d query: %w", r, err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestModelOnlyDictionaries: a model saved with format v3 serves string
// predicates, string parameters and decoded GROUP BY labels without any
// data attached — closing the serving gap of earlier formats.
func TestModelOnlyDictionaries(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1500, 47)
	db, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(3000))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.deepdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	attachedEst, err := db.EstimateCardinality(ctx, "SELECT COUNT(*) FROM customer WHERE c_region = 'EU'")
	if err != nil {
		t.Fatal(err)
	}
	attachedGroups, err := db.Query(ctx, "SELECT COUNT(*) FROM customer GROUP BY c_region")
	if err != nil {
		t.Fatal(err)
	}

	modelOnly, err := deepdb.Open(ctx, path) // no data
	if err != nil {
		t.Fatal(err)
	}
	est, err := modelOnly.EstimateCardinality(ctx, "SELECT COUNT(*) FROM customer WHERE c_region = 'EU'")
	if err != nil {
		t.Fatalf("model-only string predicate: %v", err)
	}
	if est != attachedEst {
		t.Fatalf("model-only estimate %+v != attached %+v", est, attachedEst)
	}
	stmt, err := modelOnly.Prepare("SELECT COUNT(*) FROM customer WHERE c_region = ?")
	if err != nil {
		t.Fatal(err)
	}
	if pEst, err := stmt.Estimate(ctx, "EU"); err != nil || pEst != attachedEst {
		t.Fatalf("model-only string parameter: est %+v err %v, want %+v", pEst, err, attachedEst)
	}
	groups, err := modelOnly.Query(ctx, "SELECT COUNT(*) FROM customer GROUP BY c_region")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(groups) != fmt.Sprint(attachedGroups) {
		t.Fatalf("model-only grouped result (incl. labels) differs:\n  attached:   %v\n  model-only: %v",
			attachedGroups, groups)
	}
	labels := map[string]bool{}
	for _, g := range groups.Groups {
		for _, l := range g.Labels {
			labels[l] = true
		}
	}
	if !labels["EU"] || !labels["ASIA"] {
		t.Fatalf("model-only labels not decoded: %v", labels)
	}
	if _, err := modelOnly.Query(ctx, "SELECT COUNT(*) FROM customer WHERE c_region = 'ATLANTIS'"); err == nil {
		t.Fatal("unknown literal must fail model-only too")
	}
}

// TestAtConfidenceOption: the per-call confidence level changes interval
// width only.
func TestAtConfidenceOption(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1200, 48)
	db, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(2500))
	if err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT COUNT(*) FROM customer JOIN orders WHERE c_age < 40"
	def, err := db.EstimateCardinality(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := db.EstimateCardinality(ctx, sql, deepdb.AtConfidence(0.999))
	if err != nil {
		t.Fatal(err)
	}
	if def.Value != wide.Value || def.Variance != wide.Variance {
		t.Fatalf("AtConfidence changed the estimate: %+v vs %+v", def, wide)
	}
	if def.Variance > 0 && (wide.CIHigh-wide.CILow) <= (def.CIHigh-def.CILow) {
		t.Fatalf("0.999 interval not wider: %+v vs %+v", wide, def)
	}
}
