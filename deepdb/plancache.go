package deepdb

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// planCache is a bounded LRU of compiled query plans keyed on normalized
// query shape (query.ShapeKey). Entries are tagged with the snapshot
// generation they were compiled at: every published update batch (and
// CheckStaleness) bumps the generation, so a stale plan (compiled against
// different statistics, group-by keys or dependency scores) is recompiled
// on its next use instead of served. Because readers on an older snapshot
// can race readers on a newer one, generations are ordered: a newer
// cached entry is never evicted or overwritten on behalf of an older
// reader (the older reader just compiles privately and moves on).
//
// The cache has its own mutex because it is read and written by many
// concurrent lock-free queries.
type planCache struct {
	// hits/misses count lookups (a stale-generation entry is a miss);
	// observability only — see UpdateStats and /healthz.
	hits   atomic.Uint64
	misses atomic.Uint64

	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recently used
}

type planEntry struct {
	key  string
	gen  uint64
	plan *core.Plan
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return nil
	}
	return &planCache{cap: capacity, m: make(map[string]*list.Element), lru: list.New()}
}

// get returns the cached plan for the shape key if it was compiled at the
// given generation. An entry from an older generation is evicted; an
// entry from a newer generation (a concurrent reader already recompiled
// for a fresher snapshot) is left in place and the caller misses.
func (c *planCache) get(key string, gen uint64) *core.Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses.Add(1)
		return nil
	}
	en := el.Value.(*planEntry)
	if en.gen != gen {
		if en.gen < gen {
			c.lru.Remove(el)
			delete(c.m, key)
		}
		c.misses.Add(1)
		return nil
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	return en.plan
}

// put inserts (or replaces) the plan for the shape key, evicting the least
// recently used entries beyond capacity. A plan compiled for an older
// generation never replaces a newer entry.
func (c *planCache) put(key string, gen uint64, p *core.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		en := el.Value.(*planEntry)
		if gen < en.gen {
			return
		}
		en.gen, en.plan = gen, p
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&planEntry{key: key, gen: gen, plan: p})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.m, back.Value.(*planEntry).key)
	}
}

// size returns the number of cached plans.
func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// stats snapshots the lookup counters.
func (c *planCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
