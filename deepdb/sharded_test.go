package deepdb_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/deepdb"
	"repro/internal/rspn"
)

// requireFullSampleRate asserts the bit-identity precondition of the
// sharded equivalence tests: every ensemble member was learned on the full
// join (SampleRate == 1). Sharding hands each shard a fresh sampling rng,
// which only matters when incremental inserts sample (SampleRate < 1) —
// under full sampling the apply path never draws from it, so broadcast
// application is exactly reproducible across process layouts.
func requireFullSampleRate(t *testing.T, db interface{ Models() []*rspn.RSPN }) {
	t.Helper()
	for i, m := range db.Models() {
		if m.SampleRate != 1 {
			t.Fatalf("member %d has sample rate %v; the equivalence fixture must learn on the full join", i, m.SampleRate)
		}
	}
}

// TestShardedMatchesSingleBitwise is the tentpole equivalence bar: a
// sharded DB fed the identical mutation stream must answer the full
// workload matrix — Case 1, Case 2, Theorem-2 combination, GROUP BY,
// disjunction, outer join, AVG/SUM — bit-identically to a single-process
// DB, for every shard count and both ensemble shapes.
func TestShardedMatchesSingleBitwise(t *testing.T) {
	ctx := context.Background()
	for _, shape := range []struct {
		name string
		opts []deepdb.Option
	}{
		{"ensemble", nil},
		{"single-table-only/theorem2", []deepdb.Option{deepdb.WithSingleTableOnly()}},
	} {
		for _, nshards := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/shards=%d", shape.name, nshards), func(t *testing.T) {
				muts := mutationStream(120)
				base := append([]deepdb.Option{deepdb.WithMaxSamples(4000)}, shape.opts...)

				s1, d1 := fixture(1500, 31)
				single, err := deepdb.LearnDataset(ctx, s1, d1, base...)
				if err != nil {
					t.Fatal(err)
				}
				defer single.Close()
				s2, d2 := fixture(1500, 31)
				shardedDB, err := deepdb.LearnDatasetSharded(ctx, s2, d2,
					append([]deepdb.Option{deepdb.WithShards(nshards)}, base...)...)
				if err != nil {
					t.Fatal(err)
				}
				defer shardedDB.Close()
				requireFullSampleRate(t, single)
				requireFullSampleRate(t, shardedDB)

				applyStream(t, single, muts)
				applyStream(t, shardedDB, muts)
				if err := single.Flush(ctx); err != nil {
					t.Fatal(err)
				}
				if err := shardedDB.Flush(ctx); err != nil {
					t.Fatal(err)
				}
				for i, st := range shardedDB.ShardStats() {
					if st.QueueDepth != 0 || st.Errors != 0 {
						t.Fatalf("shard %d not drained cleanly: %+v", i, st)
					}
					if st.Ops != shardedDB.ShardStats()[0].Ops {
						t.Fatalf("shards misaligned after Flush: %+v", shardedDB.ShardStats())
					}
				}

				for i, q := range equivalenceWorkload {
					a, err := single.ExecuteQuery(ctx, q)
					if err != nil {
						t.Fatalf("query %d single: %v", i, err)
					}
					b, err := shardedDB.ExecuteQuery(ctx, q)
					if err != nil {
						t.Fatalf("query %d sharded: %v", i, err)
					}
					if normResult(a) != normResult(b) {
						t.Fatalf("query %d mismatch\n  single:  %v\n  sharded: %v", i, a, b)
					}
					ea, err := single.EstimateCardinalityQuery(ctx, q)
					if err != nil {
						t.Fatalf("estimate %d single: %v", i, err)
					}
					eb, err := shardedDB.EstimateCardinalityQuery(ctx, q)
					if err != nil {
						t.Fatalf("estimate %d sharded: %v", i, err)
					}
					if ea != eb {
						t.Fatalf("estimate %d mismatch: %+v != %+v", i, ea, eb)
					}
				}
				// Prepared statements share the read path too.
				sa, err := single.Prepare("SELECT COUNT(*) FROM customer JOIN orders WHERE o_amount >= ? AND c_age < ?")
				if err != nil {
					t.Fatal(err)
				}
				sb, err := shardedDB.Prepare("SELECT COUNT(*) FROM customer JOIN orders WHERE o_amount >= ? AND c_age < ?")
				if err != nil {
					t.Fatal(err)
				}
				ra, err := sa.Exec(ctx, 40, 50)
				if err != nil {
					t.Fatal(err)
				}
				rb, err := sb.Exec(ctx, 40, 50)
				if err != nil {
					t.Fatal(err)
				}
				if normResult(ra) != normResult(rb) {
					t.Fatalf("prepared exec mismatch: %v != %v", ra, rb)
				}
				// Exact execution sees the same broadcast-maintained tables.
				ea, err := single.Exact(ctx, "SELECT COUNT(*) FROM customer JOIN orders WHERE o_amount >= 50")
				if err != nil {
					t.Fatal(err)
				}
				eb, err := shardedDB.Exact(ctx, "SELECT COUNT(*) FROM customer JOIN orders WHERE o_amount >= 50")
				if err != nil {
					t.Fatal(err)
				}
				if normResult(ea) != normResult(eb) {
					t.Fatalf("exact mismatch: %v != %v", ea, eb)
				}
			})
		}
	}
}

// TestShardedHotReload: swapping the model file under a running sharded DB
// keeps reads available throughout, lands on results bit-identical to a DB
// that served the new model all along, and never exposes a mixed
// old/new-generation view.
func TestShardedHotReload(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	// v2 model: the same fixture with extra rows squashed in, saved to disk.
	s2, d2 := fixture(1200, 41)
	v2ref, err := deepdb.LearnDataset(ctx, s2, d2,
		deepdb.WithMaxSamples(4000), deepdb.WithSyncUpdates())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := v2ref.Insert("orders", map[string]deepdb.Value{
			"o_id":     deepdb.Int(14_000_000 + i),
			"o_c_id":   deepdb.Int(i % 100),
			"o_amount": deepdb.Float(77),
		}); err != nil {
			t.Fatal(err)
		}
	}
	v2path := filepath.Join(dir, "v2.deepdb")
	if err := v2ref.Save(v2path); err != nil {
		t.Fatal(err)
	}

	s1, d1 := fixture(1200, 41)
	sdb, err := deepdb.LearnDatasetSharded(ctx, s1, d1,
		deepdb.WithMaxSamples(4000), deepdb.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()

	const sql = "SELECT COUNT(*) FROM customer JOIN orders WHERE o_amount >= 50"
	oldRes, err := sdb.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	wantNew, err := v2ref.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if normResult(oldRes) == normResult(wantNew) {
		t.Fatal("fixture broken: v2 model indistinguishable from v1")
	}

	// Readers hammer the DB across the swap: every observation must be
	// exactly the old result or exactly the new one.
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				res, err := sdb.Query(ctx, sql)
				if err != nil {
					errc <- fmt.Errorf("read during reload: %w", err)
					return
				}
				if n := normResult(res); n != normResult(oldRes) && n != normResult(wantNew) {
					errc <- fmt.Errorf("mixed-generation read: %v", res)
					return
				}
			}
		}()
	}
	genBefore := sdb.Generation()
	if err := sdb.Reload(v2path); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if sdb.Generation() <= genBefore {
		t.Fatalf("reload did not publish: generation %d -> %d", genBefore, sdb.Generation())
	}
	for i, q := range equivalenceWorkload {
		a, err := v2ref.ExecuteQuery(ctx, q)
		if err != nil {
			t.Fatalf("query %d ref: %v", i, err)
		}
		b, err := sdb.ExecuteQuery(ctx, q)
		if err != nil {
			t.Fatalf("query %d reloaded: %v", i, err)
		}
		if normResult(a) != normResult(b) {
			t.Fatalf("query %d after reload\n  want: %v\n  got:  %v", i, a, b)
		}
	}
	// The reloaded DB keeps accepting and applying updates.
	if err := sdb.Insert("orders", map[string]deepdb.Value{
		"o_id": deepdb.Int(15_000_000), "o_c_id": deepdb.Int(1), "o_amount": deepdb.Float(60),
	}); err != nil {
		t.Fatal(err)
	}
	if err := sdb.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSingleReloadServesNewModel: the single-process DB.Reload path swaps
// the serving model with zero read downtime too.
func TestSingleReloadServesNewModel(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s2, d2 := fixture(900, 43)
	ref, err := deepdb.LearnDataset(ctx, s2, d2, deepdb.WithMaxSamples(2000), deepdb.WithSyncUpdates())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := ref.Insert("orders", map[string]deepdb.Value{
			"o_id": deepdb.Int(16_000_000 + i), "o_c_id": deepdb.Int(i % 50), "o_amount": deepdb.Float(88),
		}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "next.deepdb")
	if err := ref.Save(path); err != nil {
		t.Fatal(err)
	}
	s1, d1 := fixture(900, 43)
	db, err := deepdb.LearnDataset(ctx, s1, d1, deepdb.WithMaxSamples(2000))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Reload(path); err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT COUNT(*) FROM orders WHERE o_amount >= 80"
	a, err := ref.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if normResult(a) != normResult(b) {
		t.Fatalf("after reload: %v != %v", a, b)
	}
}

// TestShardedBackpressureSheds: with a tiny queue, a write burst sheds with
// ErrQueueFull instead of blocking, a shed group leaves no trace on any
// shard, and the final state reflects exactly the accepted writes.
func TestShardedBackpressureSheds(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1000, 44)
	db, err := deepdb.LearnDatasetSharded(ctx, s, data,
		deepdb.WithMaxSamples(2000), deepdb.WithShards(2), deepdb.WithUpdateQueueSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	initial, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	accepted, shed := 0, 0
	for i := 0; i < 400; i++ {
		err := db.Insert("orders", map[string]deepdb.Value{
			"o_id": deepdb.Int(17_000_000 + i), "o_c_id": deepdb.Int(i % 100), "o_amount": deepdb.Float(5),
		})
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, deepdb.ErrQueueFull):
			// Shed: not logged, not enqueued anywhere.
			shed++
		default:
			t.Fatal(err)
		}
	}
	if shed == 0 {
		t.Fatal("400 tight-loop inserts against a 1-slot queue never shed")
	}
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	final, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if got := final.Scalar() - initial.Scalar(); math.Abs(got-float64(accepted)) > 1e-6 {
		t.Fatalf("count moved by %v, but %d writes were accepted", got, accepted)
	}
	st := db.UpdateStats()
	if st.Enqueued != uint64(accepted)*2 { // broadcast: one enqueue per shard
		t.Fatalf("enqueued %d operations for %d accepted broadcasts to 2 shards", st.Enqueued, accepted)
	}
}

// TestNonBlockingUpdatesOnPlainDB: WithNonBlockingUpdates gives the
// single-process DB the same shed-don't-block contract, including under a
// WAL (where a shed group must not linger in the log: replay after reopen
// reproduces exactly the accepted writes).
func TestNonBlockingUpdatesOnPlainDB(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, data := fixture(800, 45)
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(1600), deepdb.WithNonBlockingUpdates(),
		deepdb.WithUpdateQueueSize(1), deepdb.WithWAL(filepath.Join(dir, "wal")))
	if err != nil {
		t.Fatal(err)
	}
	initial, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for i := 0; i < 300; i++ {
		err := db.Insert("orders", map[string]deepdb.Value{
			"o_id": deepdb.Int(18_000_000 + i), "o_c_id": deepdb.Int(i % 100), "o_amount": deepdb.Float(9),
		})
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, deepdb.ErrQueueFull):
		default:
			t.Fatal(err)
		}
	}
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	final, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if got := final.Scalar() - initial.Scalar(); math.Abs(got-float64(accepted)) > 1e-6 {
		t.Fatalf("count moved by %v, but %d writes were accepted", got, accepted)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen over the same WAL: replay must reproduce the accepted writes
	// only — a 429'd group that left a record behind would apply here.
	s2, data2 := fixture(800, 45)
	re, err := deepdb.LearnDataset(ctx, s2, data2,
		deepdb.WithMaxSamples(1600), deepdb.WithWAL(filepath.Join(dir, "wal")))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	reFinal, err := re.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if got := reFinal.Scalar() - initial.Scalar(); math.Abs(got-float64(accepted)) > 1e-6 {
		t.Fatalf("replayed count moved by %v, want %d (shed groups must not replay)", got, accepted)
	}
}

// TestShardedWALRecovery: a sharded DB with per-shard WALs, closed and
// reopened, replays every accepted mutation on every shard and realigns.
func TestShardedWALRecovery(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	s, data := fixture(1000, 46)
	db, err := deepdb.LearnDatasetSharded(ctx, s, data,
		deepdb.WithMaxSamples(2000), deepdb.WithShards(2), deepdb.WithWAL(walDir))
	if err != nil {
		t.Fatal(err)
	}
	muts := mutationStream(60)
	applyStream(t, db, muts)
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	want, err := db.Query(ctx, "SELECT COUNT(*) FROM customer JOIN orders WHERE o_amount >= 50")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if entries, err := os.ReadDir(walDir); err != nil || len(entries) != 2 {
		t.Fatalf("want one WAL subdirectory per shard, got %v (err %v)", entries, err)
	}

	s2, data2 := fixture(1000, 46)
	re, err := deepdb.LearnDatasetSharded(ctx, s2, data2,
		deepdb.WithMaxSamples(2000), deepdb.WithShards(2), deepdb.WithWAL(walDir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Query(ctx, "SELECT COUNT(*) FROM customer JOIN orders WHERE o_amount >= 50")
	if err != nil {
		t.Fatal(err)
	}
	if normResult(want) != normResult(got) {
		t.Fatalf("after per-shard replay: %v != %v", want, got)
	}
}
