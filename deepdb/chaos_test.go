package deepdb_test

// chaos_test.go is the fault-injection suite of PR 9: it drives the public
// surface (sharded router with replica peers, WAL-backed single DB, async
// applier) under seeded fault schedules and asserts the three hardening
// invariants end to end — estimates stay bit-identical to a fault-free
// run, no acknowledged write is ever lost, and the per-peer circuit
// breaker opens under outage and converges back to closed after heal.
//
// Fault-enabling tests share the process-global fault registry, so none
// of them call t.Parallel (the suite runs shuffled, not parallel).

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/deepdb"
	"repro/internal/ensemble"
	"repro/internal/fault"
	"repro/internal/shard"
)

// enableChaos activates a fault schedule for one (sub)test.
func enableChaos(t *testing.T, spec string) *fault.Schedule {
	t.Helper()
	s, err := fault.Parse(spec)
	if err != nil {
		t.Fatalf("fault.Parse(%q): %v", spec, err)
	}
	fault.Enable(s)
	t.Cleanup(fault.Disable)
	return s
}

// chaosReplicas loads the saved model, derives the same deterministic
// partition the router will, and serves each shard over HTTP behind a
// kill switch: flipping downs[i] turns replica i into a hard 503 outage
// (probes included) without tearing down the listener.
func chaosReplicas(t *testing.T, modelPath string, n int) (urls []string, downs []*atomic.Bool) {
	t.Helper()
	ens, err := ensemble.LoadFile(modelPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	members := shard.Partition(ens, n)
	for i := 0; i < n; i++ {
		sh, err := shard.New(i, members[i], ens, shard.Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sh.Close() }) //nolint:errcheck // test teardown
		inner := shard.NewServer(sh)
		down := &atomic.Bool{}
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if down.Load() {
				http.Error(w, "injected outage", http.StatusServiceUnavailable)
				return
			}
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
		downs = append(downs, down)
	}
	return urls, downs
}

// TestChaosPeerFaults is the router-side chaos bar: under injected
// transport latency, partitions and timeouts, under a hard replica
// outage, and after heal, every query must answer bit-identically to a
// peerless router over the same model — remote evaluation is a pure
// offload, never a correctness input. The phases also pin the breaker
// lifecycle: open under outage, closed again after the prober sees the
// replica heal, with no query traffic required in between.
func TestChaosPeerFaults(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1500, 31)
	learned, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(4000))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.deepdb")
	if err := learned.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := learned.Close(); err != nil {
		t.Fatal(err)
	}

	ref, err := deepdb.OpenSharded(ctx, path, deepdb.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := make([]string, len(equivalenceWorkload))
	for i, q := range equivalenceWorkload {
		r, err := ref.ExecuteQuery(ctx, q)
		if err != nil {
			t.Fatalf("query %d reference: %v", i, err)
		}
		want[i] = normResult(r)
	}

	urls, downs := chaosReplicas(t, path, 2)
	db, err := deepdb.OpenSharded(ctx, path,
		deepdb.WithShards(2),
		deepdb.WithShardPeers(urls...),
		deepdb.WithPeerRetries(2, time.Millisecond),
		deepdb.WithPeerBreaker(3, 50*time.Millisecond),
		deepdb.WithPeerProbeInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	checkWorkload := func(t *testing.T, phase string) {
		t.Helper()
		for i, q := range equivalenceWorkload {
			got, err := db.ExecuteQuery(ctx, q)
			if err != nil {
				t.Fatalf("%s: query %d: %v", phase, i, err)
			}
			if normResult(got) != want[i] {
				t.Fatalf("%s: query %d diverged from fault-free reference\n  want: %s\n  got:  %s",
					phase, i, want[i], normResult(got))
			}
		}
	}
	// waitPeer polls shard 0's peer binding until cond holds; the prober
	// (5ms interval) is what moves the breaker with no query traffic.
	waitPeer := func(t *testing.T, desc string, cond func(deepdb.ShardStat) bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond(db.ShardStats()[0]) {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s: %+v", desc, db.ShardStats()[0])
	}

	// Phase 1 — healthy: the offload actually offloads.
	checkWorkload(t, "healthy")
	if hits, _ := db.PeerStats(); hits == 0 {
		t.Fatal("healthy phase answered no chunks remotely — peers not wired")
	}

	// Phase 2 — flaky transport: seeded latency, partitions and timeouts
	// on the /eval path. Retries absorb some failures, fallback the rest;
	// either way the answers must not move.
	enableChaos(t, "point=shard.eval;kind=latency;d=2ms;every=5"+
		"|point=shard.eval;kind=partition;prob=0.4;seed=11"+
		"|point=shard.eval;kind=error;errno=ETIMEDOUT;every=7")
	checkWorkload(t, "flaky transport")
	fault.Disable()

	// Phase 3 — hard outage: replica 0 serves only 503s. Every chunk bound
	// to it falls back locally, the failed probes/requests trip its
	// breaker, and health reporting flips.
	downs[0].Store(true)
	checkWorkload(t, "outage")
	if _, falls := db.PeerStats(); falls == 0 {
		t.Fatal("outage produced no local fallbacks")
	}
	waitPeer(t, "breaker to open", func(st deepdb.ShardStat) bool {
		return st.PeerState == "open" && !st.PeerHealthy
	})
	if st := db.ShardStats()[0]; st.PeerLastError == "" {
		t.Fatalf("open breaker with empty PeerLastError: %+v", st)
	}
	// Queries keep answering, and keep answering identically, while open.
	checkWorkload(t, "breaker open")

	// Phase 4 — heal: the prober's next successful probe must re-close the
	// breaker without any query traffic, and the offload resumes.
	downs[0].Store(false)
	waitPeer(t, "breaker to re-close after heal", func(st deepdb.ShardStat) bool {
		return st.PeerState == "closed" && st.PeerHealthy
	})
	hitsBefore, _ := db.PeerStats()
	checkWorkload(t, "healed")
	if hitsAfter, _ := db.PeerStats(); hitsAfter == hitsBefore {
		t.Fatal("no remote hits after heal — offload did not resume")
	}
}

// TestChaosWALErrorPolicy pins the two WAL failure policies. Fail-stop
// (the default): the first append failure latches, the write and every
// later one is refused with ErrDurabilityLost, reads keep serving.
// Degrade-to-volatile: writes keep succeeding in memory, loudly flagged
// as non-crash-safe in UpdateStats until restart.
func TestChaosWALErrorPolicy(t *testing.T) {
	ctx := context.Background()
	ins := func(i int) (string, map[string]deepdb.Value) {
		return "orders", map[string]deepdb.Value{
			"o_id":     deepdb.Int(7_000_000 + i),
			"o_c_id":   deepdb.Int(i % 100),
			"o_amount": deepdb.Float(42),
		}
	}

	t.Run("fail-stop", func(t *testing.T) {
		db := learnWAL(t, t.TempDir(), 600, 5)
		defer db.Close()
		enableChaos(t, "point=wal.append.write;kind=disk-full;count=1")

		table, values := ins(0)
		err := db.Insert(table, values)
		if !errors.Is(err, deepdb.ErrDurabilityLost) {
			t.Fatalf("insert after injected ENOSPC: err = %v, want ErrDurabilityLost", err)
		}
		if !strings.Contains(err.Error(), "disk full") {
			t.Fatalf("error does not carry the root cause: %v", err)
		}
		// The failure latches: the WAL itself would work again (the rule is
		// exhausted) but accepting writes now would silently fork durable
		// history, so every later write is refused too.
		table, values = ins(1)
		if err := db.Insert(table, values); !errors.Is(err, deepdb.ErrDurabilityLost) {
			t.Fatalf("second insert: err = %v, want ErrDurabilityLost (latched)", err)
		}
		st := db.UpdateStats()
		if !st.DurabilityLost || st.LastWALError == "" {
			t.Fatalf("stats hide the latched failure: %+v", st)
		}
		// The read path is untouched: the model keeps answering.
		if _, err := db.ExecuteQuery(ctx, equivalenceWorkload[0]); err != nil {
			t.Fatalf("query while fail-stopped: %v", err)
		}
	})

	t.Run("fail-stop-sharded", func(t *testing.T) {
		s, data := fixture(800, 13)
		db, err := deepdb.LearnDatasetSharded(ctx, s, data,
			deepdb.WithShards(2), deepdb.WithMaxSamples(4000),
			deepdb.WithWAL(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		enableChaos(t, "point=wal.append.write;kind=error;errno=EIO;count=1")

		table, values := ins(0)
		if err := db.Insert(table, values); !errors.Is(err, deepdb.ErrDurabilityLost) {
			t.Fatalf("sharded insert after injected EIO: err = %v, want ErrDurabilityLost", err)
		}
		table, values = ins(1)
		if err := db.Insert(table, values); !errors.Is(err, deepdb.ErrDurabilityLost) {
			t.Fatalf("second sharded insert: err = %v, want ErrDurabilityLost (latched)", err)
		}
		st := db.UpdateStats()
		if !st.DurabilityLost || st.LastWALError == "" {
			t.Fatalf("sharded stats hide the latched failure: %+v", st)
		}
		if _, err := db.ExecuteQuery(ctx, equivalenceWorkload[0]); err != nil {
			t.Fatalf("sharded query while fail-stopped: %v", err)
		}
	})

	t.Run("degrade-volatile", func(t *testing.T) {
		db := learnWAL(t, t.TempDir(), 600, 5,
			deepdb.WithDurability(deepdb.DurabilitySync),
			deepdb.WithWALErrorPolicy(deepdb.WALDegradeVolatile))
		defer db.Close()
		enableChaos(t, "point=wal.append.sync;kind=error;errno=EIO;count=1")

		// The append whose fsync fails is accepted anyway — in memory only.
		for i := 0; i < 5; i++ {
			table, values := ins(i)
			if err := db.Insert(table, values); err != nil {
				t.Fatalf("degraded insert %d: %v", i, err)
			}
		}
		if err := db.Flush(ctx); err != nil {
			t.Fatalf("flush while degraded: %v", err)
		}
		st := db.UpdateStats()
		if !st.DurabilityLost || st.LastWALError == "" {
			t.Fatalf("degraded mode not flagged: %+v", st)
		}
		if _, err := db.ExecuteQuery(ctx, equivalenceWorkload[0]); err != nil {
			t.Fatalf("query while degraded: %v", err)
		}
	})
}

// TestChaosApplierRecovery is the no-acked-write-loss bar for the async
// path: a batch whose in-memory apply fails was still WAL-logged before it
// was acknowledged, so the error surfaces at Flush and a restart replays
// the full stream — the rebuilt DB answers the whole workload matrix
// bit-identically to a DB that never saw the fault.
func TestChaosApplierRecovery(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	muts := mutationStream(40)

	faulted := learnWAL(t, dir, 1200, 77, deepdb.WithDurability(deepdb.DurabilitySync))
	enableChaos(t, "point=pipeline.apply;kind=error;errno=EIO;count=1")
	applyStream(t, faulted, muts)
	if err := faulted.Flush(ctx); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("flush after injected apply failure: err = %v, want ErrInjected to surface", err)
	}
	fault.Disable()
	// "Crash" without checkpointing: the checkpoint stays 0, every
	// acknowledged record — including the batch that never applied — is
	// still live in the log.
	faulted.Close() //nolint:errcheck // simulated crash; the WAL is the contract

	recovered := learnWAL(t, dir, 1200, 77)
	defer recovered.Close()
	st := recovered.UpdateStats()
	if st.WAL == nil || st.WAL.Replayed != uint64(len(muts)) {
		t.Fatalf("recovery replayed %+v, want all %d acknowledged groups", st.WAL, len(muts))
	}

	s, data := fixture(1200, 77)
	ref, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(8000), deepdb.WithSyncUpdates())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	applyStream(t, ref, muts)

	for i, q := range equivalenceWorkload {
		a, err := ref.ExecuteQuery(ctx, q)
		if err != nil {
			t.Fatalf("query %d ref: %v", i, err)
		}
		b, err := recovered.ExecuteQuery(ctx, q)
		if err != nil {
			t.Fatalf("query %d recovered: %v", i, err)
		}
		if normResult(a) != normResult(b) {
			t.Fatalf("query %d: the failed batch was lost\n  ref:       %v\n  recovered: %v", i, a, b)
		}
	}
}
