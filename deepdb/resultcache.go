package deepdb

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/query"
)

// resultCache is a cross-query semantic cache of finished results, sitting
// in front of plan execution: a repeated query — same shape, same bound
// literal values, same effective confidence level — against the same
// published snapshot generation is answered from the cache without touching
// the models at all. The cached value IS the value execution produced, so a
// hit is bit-identical to a miss.
//
// Correctness rides on the same invalidation token as the plan cache: every
// published snapshot (update batch, Reload, background re-learn hot-swap,
// CheckStaleness, sharded recomposition) bumps the generation, and an entry
// only ever serves the generation it was stored at. Entries from older
// generations are evicted on their next lookup; an entry a concurrent
// reader stored for a newer generation is never clobbered on behalf of an
// older snapshot's reader (that reader just executes and moves on — the
// same ordering discipline planCache uses).
//
// The cache is hash-sharded to keep the hot serve path from serializing on
// one mutex; the capacity bound is split across the shards, so it is
// enforced approximately (per shard, not globally).
type resultCache struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	shards    []resultCacheShard
}

// resultCacheShard is one independently locked LRU slice of the cache.
type resultCacheShard struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recently used
}

// resultEntry is one cached execution result. Exactly one of res/est is
// meaningful; the key's namespace byte decides which, so a query result is
// never handed back as a cardinality estimate or vice versa.
type resultEntry struct {
	key string
	gen uint64
	res Result
	est Estimate
}

// Result-key namespaces: query executions and cardinality estimates answer
// different things for the same SQL, so they never share an entry.
const (
	nsQuery    = 'q'
	nsEstimate = 'e'
)

// resultCacheWays bounds lock contention, not capacity.
const resultCacheWays = 8

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	ways := resultCacheWays
	if capacity < ways {
		ways = capacity
	}
	c := &resultCache{shards: make([]resultCacheShard, ways)}
	per := (capacity + ways - 1) / ways
	for i := range c.shards {
		c.shards[i] = resultCacheShard{cap: per, m: make(map[string]*list.Element), lru: list.New()}
	}
	return c
}

// shardOf picks the key's shard (FNV-1a). Generic over the key encoding so
// the lookup path hashes the scratch []byte key without converting it to a
// string first.
func shardOf[T ~string | ~[]byte](c *resultCache, key T) *resultCacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h%uint64(len(c.shards))]
}

// get returns the entry cached for the key at the given generation. A
// stale (older-generation) entry is evicted; a newer one is left in place
// and the lookup misses. The key arrives as the caller's scratch []byte:
// the map index below compiles to an allocation-free lookup, so a cache
// hit never converts the key to a string.
func (c *resultCache) get(key []byte, gen uint64) (*resultEntry, bool) {
	s := shardOf(c, key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[string(key)]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	en := el.Value.(*resultEntry)
	if en.gen != gen {
		if en.gen < gen {
			s.lru.Remove(el)
			delete(s.m, string(key))
			c.evictions.Add(1)
		}
		c.misses.Add(1)
		return nil, false
	}
	s.lru.MoveToFront(el)
	c.hits.Add(1)
	return en, true
}

// put stores an entry, evicting least-recently-used ones beyond the
// shard's capacity. An entry stored for an older generation never replaces
// a newer one.
func (c *resultCache) put(en *resultEntry) {
	s := shardOf(c, en.key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[en.key]; ok {
		if en.gen < el.Value.(*resultEntry).gen {
			return
		}
		el.Value = en
		s.lru.MoveToFront(el)
		return
	}
	s.m[en.key] = s.lru.PushFront(en)
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.m, back.Value.(*resultEntry).key)
		c.evictions.Add(1)
	}
}

// getResult looks up a cached query result, returning a private copy (the
// caller may mutate its result freely without corrupting the cache).
func (c *resultCache) getResult(key []byte, gen uint64) (Result, bool) {
	en, ok := c.get(key, gen)
	if !ok {
		return Result{}, false
	}
	return copyResult(en.res), true
}

// putResult stores a query result (as a private copy, so later caller
// mutations of the returned result cannot poison the cache).
func (c *resultCache) putResult(key []byte, gen uint64, res Result) {
	c.put(&resultEntry{key: string(key), gen: gen, res: copyResult(res)})
}

// getEstimate looks up a cached cardinality estimate.
func (c *resultCache) getEstimate(key []byte, gen uint64) (Estimate, bool) {
	en, ok := c.get(key, gen)
	if !ok {
		return Estimate{}, false
	}
	return en.est, true
}

// putEstimate stores a cardinality estimate.
func (c *resultCache) putEstimate(key []byte, gen uint64, est Estimate) {
	c.put(&resultEntry{key: string(key), gen: gen, est: est})
}

// size returns the cached entry count across all shards.
func (c *resultCache) size() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// stats snapshots the counters.
func (c *resultCache) stats() (hits, misses, evictions uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// copyResult deep-copies a result: the groups slice and each group's key
// and label slices, so cache and caller never alias.
func copyResult(res Result) Result {
	if res.Groups == nil {
		return res
	}
	groups := make([]Group, len(res.Groups))
	for i, g := range res.Groups {
		if g.Key != nil {
			g.Key = append([]float64(nil), g.Key...)
		}
		if g.Labels != nil {
			g.Labels = append([]string(nil), g.Labels...)
		}
		groups[i] = g
	}
	return Result{Groups: groups}
}

// resultKey builds the cache key of one execution: namespace (query vs
// estimate), the plan-cache shape key, every bound literal value in
// predicate order (bit-exact, Float64bits), and the effective confidence
// level. The shape key fixes the filter columns and operators positionally,
// so appending the values in the same positional order identifies the
// bound query uniquely; IN-lists are length-prefixed because their value
// count is collapsed in the shape. AtConfidence variants get distinct keys
// via the level — a hit never serves an interval computed at a different
// level.
func resultKey(ns byte, shape string, q query.Query, level float64) []byte {
	b := make([]byte, 0, len(shape)+18+8*(len(q.Filters)+len(q.Disjunction)))
	b = append(b, ns)
	b = append(b, shape...)
	b = append(b, 0)
	b = appendPredValues(b, q.Filters)
	b = append(b, 1)
	b = appendPredValues(b, q.Disjunction)
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(level))
}

// appendPredValues appends each predicate's bound literal bits.
func appendPredValues(b []byte, preds []query.Predicate) []byte {
	for _, p := range preds {
		if p.Op == query.In {
			b = binary.LittleEndian.AppendUint64(b, uint64(len(p.Values)))
			for _, v := range p.Values {
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
			}
			continue
		}
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.Value))
	}
	return b
}
