package deepdb_test

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/deepdb"
	"repro/internal/query"
)

// mutation streams shared by the equivalence tests: inserts on both
// tables plus deletes of pre-existing orders, interleaved.
type mut struct {
	del    bool
	table  string
	pk     float64
	values map[string]deepdb.Value
}

func mutationStream(n int) []mut {
	var muts []mut
	for i := 0; i < n; i++ {
		muts = append(muts, mut{table: "orders", values: map[string]deepdb.Value{
			"o_id":     deepdb.Int(5_000_000 + i),
			"o_c_id":   deepdb.Int(i % 200),
			"o_amount": deepdb.Float(float64(5 + i%90)),
		}})
		if i%3 == 0 {
			muts = append(muts, mut{table: "customer", values: map[string]deepdb.Value{
				"c_id":     deepdb.Int(6_000_000 + i),
				"c_age":    deepdb.Int(18 + i%60),
				"c_region": deepdb.Int(i % 2),
			}})
		}
		if i%4 == 0 {
			muts = append(muts, mut{del: true, table: "orders", pk: float64(i)})
		}
	}
	return muts
}

// mutator is the write surface shared by *DB and *ShardedDB; the
// equivalence tests drive both through it.
type mutator interface {
	Insert(table string, values map[string]deepdb.Value) error
	Delete(table string, pk float64) error
}

func applyStream(t *testing.T, db mutator, muts []mut) {
	t.Helper()
	for _, m := range muts {
		var err error
		if m.del {
			err = db.Delete(m.table, m.pk)
		} else {
			err = db.Insert(m.table, m.values)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// normResult renders a result including variance and interval bounds, so
// comparing strings compares every bit that reaches a caller.
func normResult(r deepdb.Result) string {
	var b strings.Builder
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "%v %v %v %v %v %v; ", g.Key, g.Labels, g.Value, g.Variance, g.CILow, g.CIHigh)
	}
	return b.String()
}

// equivalenceWorkload spans the full compilation matrix: Case 1 (exact
// RSPN), Case 2 (superset RSPN), Case 3 (Theorem-2 combination under
// single-table-only), GROUP BY, disjunction and outer join, plus AVG/SUM.
var equivalenceWorkload = []query.Query{
	{Aggregate: query.Count, Tables: []string{"customer"},
		Filters: []query.Predicate{{Column: "c_age", Op: query.Lt, Value: 40}}},
	{Aggregate: query.Count, Tables: []string{"customer", "orders"},
		Filters: []query.Predicate{
			{Column: "c_age", Op: query.Lt, Value: 40},
			{Column: "o_amount", Op: query.Ge, Value: 50},
		}},
	{Aggregate: query.Count, Tables: []string{"customer"}, GroupBy: []string{"c_region"}},
	{Aggregate: query.Count, Tables: []string{"customer", "orders"},
		Disjunction: []query.Predicate{
			{Column: "c_age", Op: query.Lt, Value: 25},
			{Column: "o_amount", Op: query.Gt, Value: 80},
		}},
	{Aggregate: query.Count, Tables: []string{"customer", "orders"},
		OuterTables: []string{"orders"},
		Filters:     []query.Predicate{{Column: "c_age", Op: query.Lt, Value: 40}}},
	{Aggregate: query.Avg, AggColumn: "o_amount", Tables: []string{"orders"},
		Filters: []query.Predicate{{Column: "o_amount", Op: query.Ge, Value: 30}}},
	{Aggregate: query.Sum, AggColumn: "o_amount", Tables: []string{"customer", "orders"},
		Filters: []query.Predicate{{Column: "c_age", Op: query.Lt, Value: 40}}},
}

// TestFlushMatchesSyncBitwise is the equivalence bar of the async
// pipeline: after the same mutation stream, flushed-async and synchronous
// DBs must answer the full workload matrix bit-identically — across both
// ensemble shapes (Case 1/2 and the Theorem-2-only configuration).
func TestFlushMatchesSyncBitwise(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		opts []deepdb.Option
	}{
		{"ensemble", nil},
		{"single-table-only/theorem2", []deepdb.Option{deepdb.WithSingleTableOnly()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			muts := mutationStream(120)
			base := append([]deepdb.Option{deepdb.WithMaxSamples(4000)}, tc.opts...)

			s1, d1 := fixture(1500, 31)
			syncDB, err := deepdb.LearnDataset(ctx, s1, d1,
				append([]deepdb.Option{deepdb.WithSyncUpdates()}, base...)...)
			if err != nil {
				t.Fatal(err)
			}
			s2, d2 := fixture(1500, 31)
			asyncDB, err := deepdb.LearnDataset(ctx, s2, d2, base...)
			if err != nil {
				t.Fatal(err)
			}
			defer asyncDB.Close()

			applyStream(t, syncDB, muts)
			applyStream(t, asyncDB, muts)
			if err := asyncDB.Flush(ctx); err != nil {
				t.Fatal(err)
			}
			if g := asyncDB.Generation(); g == 0 {
				t.Fatal("no snapshot was published")
			}
			st := asyncDB.UpdateStats()
			if st.Applied != st.Enqueued || st.QueueDepth != 0 || st.Errors != 0 {
				t.Fatalf("pipeline not drained cleanly: %+v", st)
			}

			for i, q := range equivalenceWorkload {
				a, err := syncDB.ExecuteQuery(ctx, q)
				if err != nil {
					t.Fatalf("query %d sync: %v", i, err)
				}
				b, err := asyncDB.ExecuteQuery(ctx, q)
				if err != nil {
					t.Fatalf("query %d async: %v", i, err)
				}
				if normResult(a) != normResult(b) {
					t.Fatalf("query %d mismatch\n  sync:  %v\n  async: %v", i, a, b)
				}
				ea, err := syncDB.EstimateCardinalityQuery(ctx, q)
				if err != nil {
					t.Fatalf("estimate %d sync: %v", i, err)
				}
				eb, err := asyncDB.EstimateCardinalityQuery(ctx, q)
				if err != nil {
					t.Fatalf("estimate %d async: %v", i, err)
				}
				if ea != eb {
					t.Fatalf("estimate %d mismatch: %+v != %+v", i, ea, eb)
				}
			}
			// Exact execution over the (flushed) snapshot tables agrees too:
			// the copy-on-write base tables carry the same rows.
			for _, sql := range []string{
				"SELECT COUNT(*) FROM orders",
				"SELECT COUNT(*) FROM customer JOIN orders WHERE o_amount >= 50",
			} {
				a, err := syncDB.Exact(ctx, sql)
				if err != nil {
					t.Fatal(err)
				}
				b, err := asyncDB.Exact(ctx, sql)
				if err != nil {
					t.Fatal(err)
				}
				if normResult(a) != normResult(b) {
					t.Fatalf("exact %s mismatch: %v != %v", sql, a, b)
				}
			}
		})
	}
}

// TestSnapshotIsolationUnderMutationStream: readers running Query,
// prepared Exec and ExecBatch while a writer streams mutations must never
// observe a torn state. Two assertions: (a) the two halves of an ExecBatch
// with identical bindings are bit-identical (one snapshot per execution);
// (b) every observed COUNT(*) equals the initial count plus a whole number
// of applied inserts (snapshots contain whole batches only).
func TestSnapshotIsolationUnderMutationStream(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	s, data := fixture(1500, 33)
	// Single-table models keep an unfiltered COUNT(*) exactly equal to the
	// maintained join size, which makes torn states detectable as
	// non-integer offsets.
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(3000), deepdb.WithSingleTableOnly(), deepdb.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	initial, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	n0 := initial.Scalar()

	const inserts = 300
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < inserts; i++ {
			err := db.Insert("orders", map[string]deepdb.Value{
				"o_id":     deepdb.Int(7_000_000 + i),
				"o_c_id":   deepdb.Int(i % 100),
				"o_amount": deepdb.Float(50),
			})
			if err != nil {
				errc <- fmt.Errorf("writer: %w", err)
				return
			}
			if i%50 == 49 {
				if err := db.Flush(ctx); err != nil {
					errc <- fmt.Errorf("writer flush: %w", err)
					return
				}
			}
		}
	}()

	stmt, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_amount >= ?")
	if err != nil {
		t.Fatal(err)
	}
	checkCount := func(c float64) error {
		k := math.Round(c - n0)
		if k < 0 || k > inserts {
			return fmt.Errorf("count %v implies %v inserts (want 0..%d)", c, k, inserts)
		}
		if math.Abs(c-(n0+k)) > 1e-6 {
			return fmt.Errorf("count %v is not initial+whole-batches (n0=%v)", c, n0)
		}
		return nil
	}
	const readers = 6
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				res, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
				if err != nil {
					errc <- fmt.Errorf("reader %d query: %w", r, err)
					return
				}
				if err := checkCount(res.Scalar()); err != nil {
					errc <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				// Identical bindings inside one batch execute against one
				// snapshot: any divergence is a torn read.
				pair, err := stmt.ExecBatch(ctx, [][]any{{0}, {0}})
				if err != nil {
					errc <- fmt.Errorf("reader %d batch: %w", r, err)
					return
				}
				if normResult(pair[0]) != normResult(pair[1]) {
					errc <- fmt.Errorf("reader %d: torn ExecBatch: %v != %v", r, pair[0], pair[1])
					return
				}
				if _, err := stmt.Exec(ctx, 25); err != nil {
					errc <- fmt.Errorf("reader %d exec: %w", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	final, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if got := final.Scalar(); math.Abs(got-(n0+inserts)) > 1e-6 {
		t.Fatalf("final count %v, want %v", got, n0+inserts)
	}
}

// TestGenerationAndStmtInvalidationOnPublish: the generation moves per
// published batch (not per row), cached plans and pinned statement plans
// recompile on the next use, and UpdateStats reflects the pipeline.
func TestGenerationAndStmtInvalidationOnPublish(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1000, 34)
	db, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(2000))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	stmt, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_amount >= ?")
	if err != nil {
		t.Fatal(err)
	}
	before, err := stmt.Estimate(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	gen0 := db.Generation()
	const rows = 150
	for i := 0; i < rows; i++ {
		err := db.Insert("orders", map[string]deepdb.Value{
			"o_id": deepdb.Int(8_000_000 + i), "o_c_id": deepdb.Int(i % 100), "o_amount": deepdb.Float(70),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := db.UpdateStats()
	if st.Applied != rows || st.Batches == 0 {
		t.Fatalf("stats = %+v", st)
	}
	genDelta := db.Generation() - gen0
	if genDelta != st.Batches {
		t.Fatalf("generation moved %d times for %d batches", genDelta, st.Batches)
	}
	if genDelta > rows {
		t.Fatalf("generation moved per row (%d times for %d rows)", genDelta, rows)
	}
	after, err := stmt.Estimate(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after.Value <= before.Value {
		t.Fatalf("pinned statement served a stale snapshot: %v -> %v", before.Value, after.Value)
	}
}

// TestFlushDeliversApplyErrors: an asynchronous mutation that fails at
// apply time (unknown primary key) surfaces on the next Flush — once —
// while later mutations still apply.
func TestFlushDeliversApplyErrors(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(800, 35)
	db, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(1600))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Delete("orders", 987654321); err != nil {
		t.Fatalf("async delete reported eagerly: %v", err)
	}
	if err := db.Insert("orders", map[string]deepdb.Value{
		"o_id": deepdb.Int(9_000_000), "o_c_id": deepdb.Int(1), "o_amount": deepdb.Float(10),
	}); err != nil {
		t.Fatal(err)
	}
	err = db.Flush(ctx)
	if err == nil || !strings.Contains(err.Error(), "no row with pk") {
		t.Fatalf("Flush = %v, want pk-not-found apply error", err)
	}
	if err := db.Flush(ctx); err != nil {
		t.Fatalf("second Flush = %v, want nil (error already delivered)", err)
	}
	st := db.UpdateStats()
	if st.Errors != 1 || st.LastError == "" {
		t.Fatalf("stats = %+v", st)
	}
	// The insert enqueued after the failing delete still landed.
	if err := db.Delete("orders", 9_000_000); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(ctx); err != nil {
		t.Fatalf("deleting the previously inserted row: %v", err)
	}
}

// TestSyncUpdatesReadYourWrites: WithSyncUpdates applies before returning
// — no Flush needed — and Close still works as a no-op.
func TestSyncUpdatesReadYourWrites(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(800, 36)
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(1600), deepdb.WithSyncUpdates(), deepdb.WithSingleTableOnly())
	if err != nil {
		t.Fatal(err)
	}
	before, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	gen0 := db.Generation()
	if err := db.Insert("orders", map[string]deepdb.Value{
		"o_id": deepdb.Int(10_000_000), "o_c_id": deepdb.Int(0), "o_amount": deepdb.Float(5),
	}); err != nil {
		t.Fatal(err)
	}
	after, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after.Scalar()-before.Scalar()-1) > 1e-6 {
		t.Fatalf("sync insert not immediately visible: %v -> %v", before.Scalar(), after.Scalar())
	}
	if db.Generation() != gen0+1 {
		t.Fatalf("generation %d -> %d, want +1", gen0, db.Generation())
	}
	st := db.UpdateStats()
	if !st.SyncUpdates || st.Enqueued != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// A batch in which nothing applied must not publish a new (identical)
	// snapshot — that would only thrash plan caches.
	genBefore := db.Generation()
	if err := db.Delete("orders", 987654321); err == nil {
		t.Fatal("sync delete of unknown pk succeeded")
	}
	if db.Generation() != genBefore {
		t.Fatalf("fully-failed batch published a snapshot: gen %d -> %d", genBefore, db.Generation())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Close fences synchronous writers too.
	if err := db.Insert("orders", map[string]deepdb.Value{
		"o_id": deepdb.Int(10_000_001), "o_c_id": deepdb.Int(0), "o_amount": deepdb.Float(5),
	}); err == nil {
		t.Fatal("sync insert after Close succeeded")
	}
}

// TestUpdateGroupAtomicity: the rows of one Update call are never split
// across published snapshots, even with a batch cap of 1 operation —
// concurrent readers only ever see whole multiples of the group size.
func TestUpdateGroupAtomicity(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	s, data := fixture(1200, 38)
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(2400), deepdb.WithSingleTableOnly(), deepdb.WithUpdateBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	initial, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	n0 := initial.Scalar()
	const (
		groups    = 20
		groupSize = 20
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for g := 0; g < groups; g++ {
			rows := make([]deepdb.Row, groupSize)
			for i := range rows {
				rows[i] = deepdb.Row{Table: "orders", Values: map[string]deepdb.Value{
					"o_id":     deepdb.Int(12_000_000 + g*groupSize + i),
					"o_c_id":   deepdb.Int(i % 100),
					"o_amount": deepdb.Float(42),
				}}
			}
			if err := db.Update(rows...); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			res, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
			if err != nil {
				errc <- err
				return
			}
			k := res.Scalar() - n0
			if rem := math.Mod(math.Round(k), groupSize); rem != 0 {
				errc <- fmt.Errorf("observed a torn Update: count offset %v is not a multiple of %d", k, groupSize)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	final, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if got := final.Scalar(); math.Abs(got-(n0+groups*groupSize)) > 1e-6 {
		t.Fatalf("final count %v, want %v", got, n0+groups*groupSize)
	}
}

// TestUpdatesAfterCloseFail: Close drains the pipeline; later mutations
// are rejected while queries keep serving the last snapshot.
func TestUpdatesAfterCloseFail(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(800, 37)
	db, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(1600))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("orders", map[string]deepdb.Value{
		"o_id": deepdb.Int(11_000_000), "o_c_id": deepdb.Int(0), "o_amount": deepdb.Float(5),
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	st := db.UpdateStats()
	if st.Applied != 1 {
		t.Fatalf("Close did not drain: %+v", st)
	}
	if err := db.Insert("orders", map[string]deepdb.Value{
		"o_id": deepdb.Int(11_000_001), "o_c_id": deepdb.Int(0), "o_amount": deepdb.Float(5),
	}); err == nil {
		t.Fatal("insert after Close succeeded")
	}
	if _, err := db.Query(ctx, "SELECT COUNT(*) FROM orders"); err != nil {
		t.Fatalf("query after Close: %v", err)
	}
}
