package deepdb

// sharded.go is the fan-out serving tier: the ensemble partitioned into
// table-group shards (internal/shard), each with its own snapshot pipeline
// and WAL, behind a router that presents the exact same read API as *DB.
//
// Correctness model, in brief:
//
//   - Mutations are broadcast to every shard. A shard only re-learns and
//     re-weights the members it owns, but incremental updates touch the
//     base tables and per-member structures of whichever members cover the
//     mutated table — and cross-shard FK tuple-factor bumps mean a write
//     routed to "its" shard only would desynchronize the others. Broadcast
//     keeps every shard's sub-ensemble bit-identical to the corresponding
//     slice of a single-process DB fed the same stream.
//   - Each shard snapshot carries an ops token: the cumulative count of
//     mutations it has processed (applied or deterministically failed).
//     Equal tokens across shards mean equal progress — ops is monotonic,
//     so equality can never be an ABA coincidence.
//   - The router serves from a composed view (every shard's members merged
//     back into full ensemble shape) and only recomposes when all shards
//     agree on ops; otherwise it keeps serving the previous consistent
//     view. Queries therefore always see a state some single-process DB
//     could have been in — never a torn mix.
//   - Query execution on the composed view runs the unchanged compile +
//     Theorem-2/inclusion-exclusion machinery of internal/core, so results
//     are bit-identical to single-process execution by construction; the
//     equivalence tests in sharded_test.go prove it per query class.
//   - Hot reload publishes new sub-ensembles through each shard's normal
//     snapshot-publication path with ops preserved; since recomposition
//     triggers only on ops *change*, readers see all-old until the final
//     composed publish, then all-new — zero read downtime.
//
// Replica processes (started with `deepdb shard`, bound with
// WithShardPeers) are a pure offload: evaluation chunks of members owned
// by a bound shard go over HTTP, and any failure — connection, ops skew,
// framing — falls back to the local model, keeping bit-identity
// unconditional.

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/query"
	"repro/internal/rspn"
	"repro/internal/shard"
)

// ShardedDB is the partitioned serving tier: the same read API as DB, with
// updates broadcast to per-partition shards and queries answered from a
// composed snapshot that is only ever republished at shard-aligned points.
type ShardedDB struct {
	cfg     config
	total   int
	members [][]int
	shards  []*shard.Shard
	// peers[i] is the replica client bound to shard i (nil when none).
	peers []*shard.Client

	// snap is the composed serving view; stored only by publishLocked
	// (same discipline deepdb-lint enforces on DB.snap).
	snap atomic.Pointer[snapshot]
	// viewMu serializes recomposition (snapshotNow's slow path, Reload's
	// final publish).
	viewMu sync.Mutex

	plans *planCache
	// resCache is the cross-query result cache (nil unless enabled);
	// coherence rides on the composed snapshot's generation, which moves
	// whenever the shards recompose at a new aligned ops token.
	resCache *resultCache

	// mutMu serializes broadcasts so every shard — and every replica —
	// observes the identical mutation stream in the identical order.
	mutMu  sync.Mutex
	closed bool

	// Cumulative remote-evaluation counters, folded in from each retired
	// composed view's evaluator.
	peerHits  atomic.Uint64
	peerFalls atomic.Uint64

	// probeStop/probeWG control the background peer health prober.
	probeStop chan struct{}
	probeWG   sync.WaitGroup

	// durabilityLost latches once any shard's WAL failed; walErrMu/walErr
	// record the first cause (see WithWALErrorPolicy).
	durabilityLost atomic.Bool
	walErrMu       sync.Mutex
	walErr         string
}

// LearnDatasetSharded is LearnDataset with the resulting ensemble
// partitioned into WithShards(n) shards.
func LearnDatasetSharded(ctx context.Context, s *Schema, data Dataset, opts ...Option) (*ShardedDB, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	ens, err := ensemble.Build(ctx, s, data, cfg.ens)
	if err != nil {
		return nil, err
	}
	return newShardedDB(ens, cfg)
}

// OpenSharded is Open with the loaded ensemble partitioned into
// WithShards(n) shards. With WithWAL, each shard replays its own log
// (subdirectory shard-<i> of the WAL dir) before serving.
func OpenSharded(ctx context.Context, modelPath string, opts ...Option) (*ShardedDB, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ens, err := ensemble.LoadFile(modelPath, nil)
	if err != nil {
		return nil, err
	}
	data := cfg.dataset
	if data == nil && cfg.dataDir != "" {
		data, err = LoadCSVDir(ens.Schema, cfg.dataDir)
		if err != nil {
			return nil, err
		}
	}
	if data != nil {
		if err := ens.AttachTables(data); err != nil {
			return nil, err
		}
	}
	return newShardedDB(ens, cfg)
}

func newShardedDB(ens *ensemble.Ensemble, cfg config) (*ShardedDB, error) {
	n := cfg.shards
	if n < 1 {
		n = 1
	}
	members := shard.Partition(ens, n)
	db := &ShardedDB{
		cfg:      cfg,
		total:    len(ens.RSPNs),
		members:  members,
		plans:    newPlanCache(cfg.planCache),
		resCache: newResultCache(cfg.resultCache),
	}
	for i, m := range members {
		scfg := shard.Config{
			QueueSize:    cfg.queueSize,
			MaxBatch:     cfg.maxBatch,
			Durability:   cfg.durability.wal(),
			CloseTimeout: cfg.closeTimeout,
		}
		if cfg.walDir != "" {
			scfg.WALDir = filepath.Join(cfg.walDir, fmt.Sprintf("shard-%d", i))
		}
		sh, err := shard.New(i, m, ens, scfg)
		if err != nil {
			for _, prev := range db.shards {
				prev.Close() //nolint:errcheck // construction already failed
			}
			return nil, err
		}
		db.shards = append(db.shards, sh)
	}
	if len(cfg.shardPeers) > 0 {
		db.peers = make([]*shard.Client, len(db.shards))
		var copts []shard.ClientOption
		if cfg.peerAttempts > 0 || cfg.peerBackoff > 0 {
			copts = append(copts, shard.WithRetry(cfg.peerAttempts, cfg.peerBackoff))
		}
		if cfg.peerBreakThresh > 0 || cfg.peerBreakCooldown > 0 {
			copts = append(copts, shard.WithBreaker(cfg.peerBreakThresh, cfg.peerBreakCooldown))
		}
		for i := range db.shards {
			if i < len(cfg.shardPeers) && cfg.shardPeers[i] != "" {
				db.peers[i] = shard.NewClient(cfg.shardPeers[i], copts...)
			}
		}
	}
	composed, ops, ok := shard.Compose(db.shards, db.total)
	if !ok {
		// Shards disagree on stream progress straight out of construction.
		// That means their WALs recorded different prefixes of the same
		// broadcast stream — a crash landed between the per-shard appends of
		// one group. The divergence is at most the unacknowledged tail, but
		// composing across it would serve a torn state, so refuse and let
		// the operator reconcile (see the sharded-serving runbook in the
		// README: keep the longest log, reset the others' directories).
		for _, sh := range db.shards {
			sh.Close() //nolint:errcheck // construction already failed
		}
		return nil, fmt.Errorf("deepdb: shard WALs replay to different positions (crash between per-shard appends); reconcile the shard-<i> WAL directories before reopening")
	}
	db.publishLocked(composed, ops)
	db.startProber()
	return db, nil
}

// startProber launches the background peer health prober: every probe
// interval each bound replica's /healthz is checked and the outcome feeds
// its circuit breaker and health flag, so a dead peer's breaker opens (and
// re-closes after heal) even when no query traffic flows. No-op without
// peers or under WithPeerProbeInterval(<= 0).
func (db *ShardedDB) startProber() {
	if db.peers == nil || db.cfg.peerProbeDisabled {
		return
	}
	interval := db.cfg.peerProbeInterval
	if interval <= 0 {
		interval = defaultPeerProbeInterval
	}
	db.probeStop = make(chan struct{})
	db.probeWG.Add(1)
	go func() {
		defer db.probeWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-db.probeStop:
				return
			case <-t.C:
				for _, c := range db.peers {
					if c == nil {
						continue
					}
					c.Probe(context.Background()) //nolint:errcheck // outcome lands in the breaker and health surfaces
				}
			}
		}
	}()
}

// publishLocked publishes ens as the next composed snapshot generation,
// wiring the remote evaluator (when peers are bound) with bindings valid
// exactly for this ops token. Callers are single-threaded at construction
// or hold viewMu.
func (db *ShardedDB) publishLocked(ens *ensemble.Ensemble, ops uint64) {
	cur := db.snap.Load()
	var gen uint64
	if cur != nil {
		gen = cur.gen + 1
		// Retire the outgoing view's evaluator counters into the running
		// totals (a chunk in flight right now may be lost to the count;
		// these are observability numbers, not accounting).
		if re, ok := cur.eng.Eval.(*shard.RemoteEvaluator); ok {
			db.peerHits.Add(re.Hits())
			db.peerFalls.Add(re.Fallbacks())
		}
	}
	eng := core.New(ens)
	eng.Strategy = db.cfg.coreStrategy()
	eng.ConfidenceLevel = db.cfg.confidence
	eng.Parallelism = db.cfg.parallelism
	if db.peers != nil {
		re := shard.NewRemoteEvaluator()
		for i, m := range db.members {
			c := db.peers[i]
			if c == nil {
				continue
			}
			for j, global := range m {
				re.Bind(ens.RSPNs[global], c, j, ops)
			}
		}
		eng.Eval = re
	}
	db.snap.Store(&snapshot{ens: ens, eng: eng, gen: gen, ops: ops})
}

// snapshotNow returns the current composed serving view, recomposing first
// when every shard has advanced to a common newer ops token. The fast path
// is two atomic loads per shard; the recompose path is taken once per
// aligned point, not per query.
func (db *ShardedDB) snapshotNow() *snapshot {
	cur := db.snap.Load()
	ops, ok := shard.Aligned(db.shards)
	if !ok || ops == cur.ops {
		return cur
	}
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	cur = db.snap.Load()
	ens, ops, ok := shard.Compose(db.shards, db.total)
	if !ok || ops == cur.ops {
		// A shard moved between the pre-check and the compose (or another
		// reader already published this alignment point).
		return cur
	}
	db.publishLocked(ens, ops)
	return db.snap.Load()
}

// defaultConfidence returns the DB-wide confidence-interval level.
func (db *ShardedDB) defaultConfidence() float64 { return db.cfg.confidence }

// results returns the cross-query result cache (nil when disabled).
func (db *ShardedDB) results() *resultCache { return db.resCache }

// planFor consults the plan cache under the composed snapshot's generation,
// exactly like DB.planFor — shard count is invisible to compilation.
func (db *ShardedDB) planFor(s *snapshot, shape string, q query.Query) (*core.Plan, error) {
	if db.plans == nil {
		return s.eng.Compile(q)
	}
	if shape == "" {
		shape = q.ShapeKey()
	}
	if p := db.plans.get(shape, s.gen); p != nil {
		return p, nil
	}
	p, err := s.eng.Compile(q)
	if err != nil {
		return nil, err
	}
	db.plans.put(shape, s.gen, p)
	return p, nil
}

// ---- read API (mirrors *DB) ----

// Schema returns the relational metadata the DB was learned over.
func (db *ShardedDB) Schema() *Schema { return db.snapshotNow().ens.Schema }

// Data returns the base tables of the current composed snapshot (nil when
// opened without data). Read-only; mutate only through Insert/Delete/Update.
func (db *ShardedDB) Data() Dataset { return db.snapshotNow().ens.Tables }

// Describe returns a human-readable summary of the composed ensemble.
func (db *ShardedDB) Describe() string { return db.snapshotNow().ens.Describe() }

// Models returns the composed snapshot's ensemble members.
func (db *ShardedDB) Models() []*rspn.RSPN { return db.snapshotNow().ens.RSPNs }

// Model returns some RSPN covering the named table (preferring the
// smallest), or nil.
func (db *ShardedDB) Model(table string) *rspn.RSPN { return db.snapshotNow().ens.RSPNFor(table) }

// Generation returns the composed snapshot's publication counter.
func (db *ShardedDB) Generation() uint64 { return db.snapshotNow().gen }

// Shards returns the number of partitions serving this DB.
func (db *ShardedDB) Shards() int { return len(db.shards) }

// ResultCacheLen reports how many query results and cardinality estimates
// are currently cached (0 unless WithResultCacheSize enabled the cache).
func (db *ShardedDB) ResultCacheLen() int {
	if db.resCache == nil {
		return 0
	}
	return db.resCache.size()
}

// PlanCacheLen reports how many compiled plans are currently cached.
func (db *ShardedDB) PlanCacheLen() int {
	if db.plans == nil {
		return 0
	}
	return db.plans.size()
}

// Parse compiles SQL into a structured query against the composed view.
func (db *ShardedDB) Parse(sql string) (query.Query, error) {
	return query.Parse(sql, resolver(db.snapshotNow().ens))
}

// ResolveLabel maps a string literal to its dictionary code on the column.
func (db *ShardedDB) ResolveLabel(column, literal string) (float64, error) {
	return resolver(db.snapshotNow().ens)(column, literal)
}

// Query answers an aggregate SQL query approximately — identical semantics
// (and bit-identical results) to DB.Query over the same model and stream.
func (db *ShardedDB) Query(ctx context.Context, sql string, opts ...ExecOption) (Result, error) {
	s := db.snapshotNow()
	q, err := query.Parse(sql, resolver(s.ens))
	if err != nil {
		return Result{}, err
	}
	return executeQueryOn(ctx, db, s, q, opts)
}

// ExecuteQuery is Query for an already-parsed structured query.
func (db *ShardedDB) ExecuteQuery(ctx context.Context, q query.Query, opts ...ExecOption) (Result, error) {
	return executeQueryOn(ctx, db, db.snapshotNow(), q, opts)
}

// EstimateCardinality estimates COUNT(*) over the query's join with its
// filters.
func (db *ShardedDB) EstimateCardinality(ctx context.Context, sql string, opts ...ExecOption) (Estimate, error) {
	s := db.snapshotNow()
	q, err := query.Parse(sql, resolver(s.ens))
	if err != nil {
		return Estimate{}, err
	}
	return estimateCardinalityOn(ctx, db, s, q, opts)
}

// EstimateCardinalityQuery is EstimateCardinality for a structured query.
func (db *ShardedDB) EstimateCardinalityQuery(ctx context.Context, q query.Query, opts ...ExecOption) (Estimate, error) {
	return estimateCardinalityOn(ctx, db, db.snapshotNow(), q, opts)
}

// Explain renders the execution plan without evaluating it.
func (db *ShardedDB) Explain(ctx context.Context, sql string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	s := db.snapshotNow()
	q, err := query.Parse(sql, resolver(s.ens))
	if err != nil {
		return "", err
	}
	p, err := db.planFor(s, "", q)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Prepare parses and compiles a statement against the composed view.
func (db *ShardedDB) Prepare(sql string) (*Stmt, error) { return prepareOn(db, sql) }

// Exact executes the SQL query exactly against the attached base tables.
func (db *ShardedDB) Exact(ctx context.Context, sql string) (Result, error) {
	s := db.snapshotNow()
	q, err := query.Parse(sql, resolver(s.ens))
	if err != nil {
		return Result{}, err
	}
	return exactOn(ctx, s, q)
}

// ExactQuery is Exact for a structured query.
func (db *ShardedDB) ExactQuery(ctx context.Context, q query.Query) (Result, error) {
	return exactOn(ctx, db.snapshotNow(), q)
}

// ---- updates ----

// Insert broadcasts one new row to every shard. Sharded DBs always shed
// instead of blocking: when any shard's queue is full the call returns
// ErrQueueFull without logging or enqueueing anywhere.
func (db *ShardedDB) Insert(table string, values map[string]Value) error {
	return db.mutateAll([]ensemble.Mutation{{Op: ensemble.OpInsert, Table: table, Values: values}})
}

// Delete broadcasts the removal of the row with the given primary key.
func (db *ShardedDB) Delete(table string, pk float64) error {
	return db.mutateAll([]ensemble.Mutation{{Op: ensemble.OpDelete, Table: table, PK: pk}})
}

// Update broadcasts a batch of row inserts as one indivisible group.
func (db *ShardedDB) Update(rows ...Row) error {
	muts := make([]ensemble.Mutation, len(rows))
	for i, r := range rows {
		muts[i] = ensemble.Mutation{Op: ensemble.OpInsert, Table: r.Table, Values: r.Values}
	}
	return db.mutateAll(muts)
}

func (db *ShardedDB) mutateAll(muts []ensemble.Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	if db.snapshotNow().ens.Tables == nil {
		return errNoData()
	}
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	if db.closed {
		return errClosed()
	}
	// Admission is all-or-nothing: only broadcast (and only log) when every
	// shard has a free slot, so a shed group leaves no trace anywhere and
	// the shards' streams stay identical. Under mutMu no other producer can
	// steal the checked slots; a concurrent Flush barrier can, which makes
	// the EnqueueLogged below block for at most one apply cycle — never shed.
	for _, sh := range db.shards {
		if !sh.HasCapacity() {
			return ErrQueueFull
		}
	}
	// The broadcast is split into a log-everywhere phase and an
	// enqueue-everywhere phase so a WAL failure on shard k surfaces before
	// ANY shard has been mutated: under WALFailStop the group is rejected
	// with no shard applying it (shards 0..k-1 carry a logged-but-never-
	// acked tail record, which the compose-or-refuse check catches on the
	// next open — see the runbook); under WALDegradeVolatile the group is
	// admitted everywhere without an LSN and serving continues in memory.
	lsns := make([]uint64, len(db.shards))
	if db.durabilityLost.Load() {
		if db.cfg.walPolicy != WALDegradeVolatile {
			return fmt.Errorf("%w: %s", ErrDurabilityLost, db.lastWALError())
		}
	} else {
		for i, sh := range db.shards {
			lsn, err := sh.Log(muts)
			if err != nil {
				db.latchWALError(i, err)
				if db.cfg.walPolicy != WALDegradeVolatile {
					return fmt.Errorf("%w: %w", ErrDurabilityLost, err)
				}
				clear(lsns) // the group is volatile on every shard
				break
			}
			lsns[i] = lsn
		}
	}
	for i, sh := range db.shards {
		if err := sh.EnqueueLogged(muts, lsns[i]); err != nil {
			return err
		}
	}
	db.forwardPeers(muts)
	return nil
}

// latchWALError records shard i's WAL failure and flips the router into
// its degraded-durability state.
func (db *ShardedDB) latchWALError(i int, err error) {
	db.walErrMu.Lock()
	if db.walErr == "" {
		db.walErr = fmt.Sprintf("shard %d: %s", i, err.Error())
	}
	db.walErrMu.Unlock()
	db.durabilityLost.Store(true)
}

// lastWALError renders the latched WAL failure ("" while healthy).
func (db *ShardedDB) lastWALError() string {
	db.walErrMu.Lock()
	defer db.walErrMu.Unlock()
	return db.walErr
}

// forwardPeers replicates the group to every bound replica, best-effort: a
// failed or slow replica simply falls out of ops sync, its /eval calls
// start answering 409, and the router serves those members locally until
// the operator catches the replica up. Called under mutMu so replicas see
// broadcasts in stream order. Each forward is bounded (the client caps an
// attempt at its per-attempt timeout) and breaker-gated, so a dead replica
// costs the write path nothing once its breaker opens — before this, a
// hung replica could stall every broadcast for the full client timeout.
func (db *ShardedDB) forwardPeers(muts []ensemble.Mutation) {
	if db.peers == nil {
		return
	}
	for _, c := range db.peers {
		if c == nil {
			continue
		}
		c.Apply(context.Background(), muts) //nolint:errcheck // best-effort offload
	}
}

// Flush blocks until every mutation enqueued before the call has been
// applied on every shard, recomposes the serving view at the resulting
// aligned point, and reports the first deferred apply error.
func (db *ShardedDB) Flush(ctx context.Context) error {
	var first error
	for _, sh := range db.shards {
		if err := sh.Flush(ctx); err != nil && first == nil {
			first = err
		}
	}
	db.snapshotNow()
	return first
}

// Save serializes the composed model to path, like (*DB).Save: pending
// updates are flushed first, so the file reflects every mutation accepted
// before the call, and each shard's WAL (when configured) is checkpointed
// at the watermark the save covers.
func (db *ShardedDB) Save(path string) error {
	if err := db.Flush(context.Background()); err != nil {
		return err
	}
	// Read the watermarks before serializing: the composed snapshot saved
	// below contains at least everything applied up to them.
	lsns := make([]uint64, len(db.shards))
	for i, sh := range db.shards {
		lsns[i] = sh.AppliedLSN()
	}
	if err := db.snapshotNow().ens.SaveFile(path); err != nil {
		return err
	}
	for i, sh := range db.shards {
		if err := sh.Checkpoint(lsns[i]); err != nil {
			return err
		}
	}
	return nil
}

// Reload hot-swaps the serving model with the one in modelPath, with zero
// read downtime and generation consistency across shards: every shard's
// new sub-ensemble is published with its ops token preserved, and because
// the router only recomposes on an ops *change*, readers keep the old
// composed view until the final all-shards publish below — all-old or
// all-new, never a mix. The new model must have the same member count as
// the serving one (the partition is kept); pending updates are flushed
// into the old model first, and the current base tables are carried over.
func (db *ShardedDB) Reload(modelPath string) error {
	ens, err := ensemble.LoadFile(modelPath, nil)
	if err != nil {
		return err
	}
	if len(ens.RSPNs) != db.total {
		return fmt.Errorf("deepdb: reload model has %d members, serving ensemble has %d (re-partition requires a restart)", len(ens.RSPNs), db.total)
	}
	db.mutMu.Lock()
	defer db.mutMu.Unlock()
	if db.closed {
		return errClosed()
	}
	for _, sh := range db.shards {
		if err := sh.Flush(context.Background()); err != nil {
			return err
		}
	}
	if tabs := db.snap.Load().ens.Tables; tabs != nil {
		if err := ens.AttachTables(tabs); err != nil {
			return err
		}
	}
	// Build every sub-ensemble before publishing any: a failure here must
	// leave all shards on the old model, not some.
	subs := make([]*ensemble.Ensemble, len(db.shards))
	for i, sh := range db.shards {
		sub, err := ens.Subset(sh.Members())
		if err != nil {
			return err
		}
		subs[i] = sub
	}
	for i, sh := range db.shards {
		sh.Publish(subs[i])
	}
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	composed, ops, ok := shard.Compose(db.shards, db.total)
	if !ok {
		// Unreachable: mutMu excludes broadcasts and shards were flushed,
		// so no ops movement can interleave with the publishes above.
		return fmt.Errorf("deepdb: shards misaligned after reload")
	}
	db.publishLocked(composed, ops)
	return nil
}

// Close drains and stops every shard (each bounded by WithCloseTimeout)
// and closes their WALs. The composed snapshot stays queryable; further
// updates fail. Idempotent.
func (db *ShardedDB) Close() error {
	db.mutMu.Lock()
	if db.closed {
		db.mutMu.Unlock()
		return nil
	}
	db.closed = true
	db.mutMu.Unlock()
	if db.probeStop != nil {
		close(db.probeStop)
		db.probeWG.Wait()
	}
	var first error
	for _, sh := range db.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---- observability ----

// ShardStat is one shard's health inside ShardStats.
type ShardStat struct {
	// ID is the shard index, Members its global ensemble-member indices.
	ID      int
	Members []int
	// Generation counts the shard's own snapshot publications, Ops the
	// mutations it has processed (the router's alignment token).
	Generation uint64
	Ops        uint64
	// QueueDepth/Enqueued/Applied/Batches/Errors describe the shard's
	// update pipeline; LastError renders its most recent apply failure.
	QueueDepth int
	Enqueued   uint64
	Applied    uint64
	Batches    uint64
	Errors     uint64
	LastError  string
	// WALAppliedLSN is the shard log's apply watermark (0 without a WAL);
	// WAL carries the log's counters when one is attached.
	WALAppliedLSN uint64
	WAL           *WALStats
	// Peer is the bound replica's base URL ("" when none). The fields
	// below describe that binding's health: PeerHealthy is the outcome of
	// the most recent request or probe, PeerState the circuit breaker's
	// position ("closed", "open", "half-open"), PeerOK/PeerFailed count
	// completed requests and probes by outcome, and PeerLastError renders
	// the most recent failure.
	Peer          string
	PeerHealthy   bool
	PeerState     string
	PeerOK        uint64
	PeerFailed    uint64
	PeerLastError string
}

// ShardStats reports per-shard health, in shard order.
func (db *ShardedDB) ShardStats() []ShardStat {
	out := make([]ShardStat, len(db.shards))
	for i, sh := range db.shards {
		st := sh.Stats()
		out[i] = ShardStat{
			ID:            st.ID,
			Members:       st.Members,
			Generation:    st.Gen,
			Ops:           st.Ops,
			QueueDepth:    st.Queue.QueueDepth,
			Enqueued:      st.Queue.Enqueued,
			Applied:       st.Queue.Applied,
			Batches:       st.Queue.Batches,
			Errors:        st.Queue.Errors,
			LastError:     st.Queue.LastError,
			WALAppliedLSN: st.WALAppliedLSN,
		}
		if st.WAL != nil {
			out[i].WAL = &WALStats{
				Dir:               filepath.Join(db.cfg.walDir, fmt.Sprintf("shard-%d", i)),
				Durability:        db.cfg.durability.String(),
				LastLSN:           st.WAL.LastLSN,
				AppliedLSN:        st.WALAppliedLSN,
				CheckpointLSN:     st.WAL.CheckpointLSN,
				Appended:          st.WAL.Appended,
				Synced:            st.WAL.Synced,
				Replayed:          st.WAL.Replayed,
				TruncatedSegments: st.WAL.TruncatedSegments,
				Segments:          st.WAL.Segments,
				SizeBytes:         st.WAL.SizeBytes,
			}
		}
		if db.peers != nil && db.peers[i] != nil {
			c := db.peers[i]
			out[i].Peer = c.Base()
			out[i].PeerHealthy = c.Healthy()
			out[i].PeerState = c.BreakerState().String()
			out[i].PeerOK = c.OK()
			out[i].PeerFailed = c.Failed()
			out[i].PeerLastError = c.LastError()
		}
	}
	return out
}

// PeerStats reports how many evaluation chunks were answered by replica
// processes and how many fell back to the local model.
func (db *ShardedDB) PeerStats() (hits, fallbacks uint64) {
	hits, fallbacks = db.peerHits.Load(), db.peerFalls.Load()
	if re, ok := db.snap.Load().eng.Eval.(*shard.RemoteEvaluator); ok {
		hits += re.Hits()
		fallbacks += re.Fallbacks()
	}
	return hits, fallbacks
}

// UpdateStats aggregates the shards' pipeline counters into the facade
// shape /healthz reports (per-shard detail is in ShardStats).
func (db *ShardedDB) UpdateStats() UpdateStats {
	out := UpdateStats{Generation: db.Generation()}
	fillCacheStats(&out, db.plans, db.resCache)
	for _, st := range db.ShardStats() {
		out.QueueDepth += st.QueueDepth
		out.Enqueued += st.Enqueued
		out.Applied += st.Applied
		out.Batches += st.Batches
		out.Errors += st.Errors
		if out.LastError == "" {
			out.LastError = st.LastError
		}
	}
	out.DurabilityLost = db.durabilityLost.Load()
	out.LastWALError = db.lastWALError()
	return out
}
