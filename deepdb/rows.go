package deepdb

// rows.go is the streaming read path: QueryRows answers a GROUP BY query
// row by row through core's chunked group iterator instead of
// materializing every group up front, so a grouped result with millions of
// keys is served in O(chunk) memory. The rows come out in the exact order
// — and with the exact bits — of the materializing Query path; only the
// memory profile differs. Ungrouped queries yield their single row (and
// still benefit from the result cache; grouped streams bypass it — caching
// a million-row result would defeat the point of streaming it).

import (
	"context"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/query"
)

// Rows streams the result rows of one query execution:
//
//	rows, err := db.QueryRows(ctx, "SELECT COUNT(*) FROM orders GROUP BY o_channel")
//	for rows.Next() {
//		g := rows.Row()
//		...
//	}
//	if err := rows.Err(); err != nil { ... }
//
// The whole iteration runs against the snapshot published when QueryRows
// was called — a consistent view even while updates publish newer
// generations. A Rows is single-use and not safe for concurrent use.
type Rows struct {
	it   *core.GroupIter
	ens  *ensemble.Ensemble
	cols []string
	// pre holds an eagerly executed (ungrouped) result instead of it.
	pre  []Group
	pos  int
	cur  Group
	done bool
}

// QueryRows answers an aggregate SQL query approximately like Query, but
// streams the result rows instead of materializing them: group keys are
// enumerated lazily and estimated in bounded chunks (WithGroupChunk sets
// the chunk size), so GROUP BY results of any size run in constant memory.
// Rows arrive in group-key order, bit-identical to Query's.
func (db *DB) QueryRows(ctx context.Context, sql string, opts ...ExecOption) (*Rows, error) {
	s := db.snapshotNow()
	q, err := query.Parse(sql, resolver(s.ens))
	if err != nil {
		return nil, err
	}
	return queryRowsOn(ctx, db, s, q, opts)
}

// ExecuteQueryRows is QueryRows for an already-parsed structured query.
func (db *DB) ExecuteQueryRows(ctx context.Context, q query.Query, opts ...ExecOption) (*Rows, error) {
	return queryRowsOn(ctx, db, db.snapshotNow(), q, opts)
}

// QueryRows streams a grouped result from the sharded tier — same
// contract as DB.QueryRows, over the composed snapshot.
func (db *ShardedDB) QueryRows(ctx context.Context, sql string, opts ...ExecOption) (*Rows, error) {
	s := db.snapshotNow()
	q, err := query.Parse(sql, resolver(s.ens))
	if err != nil {
		return nil, err
	}
	return queryRowsOn(ctx, db, s, q, opts)
}

// ExecuteQueryRows is QueryRows for a structured query.
func (db *ShardedDB) ExecuteQueryRows(ctx context.Context, q query.Query, opts ...ExecOption) (*Rows, error) {
	return queryRowsOn(ctx, db, db.snapshotNow(), q, opts)
}

// queryRowsOn builds the streaming iterator on one snapshot. Ungrouped
// queries route through the regular (result-cached) execution path and
// replay its single row; grouped queries get a live chunked iterator.
func queryRowsOn(ctx context.Context, h stmtHost, s *snapshot, q query.Query, opts []ExecOption) (*Rows, error) {
	eo := resolveExec(opts)
	if len(q.GroupBy) == 0 {
		res, err := executeQueryShaped(ctx, h, s, "", q, eo)
		if err != nil {
			return nil, err
		}
		return &Rows{pre: res.Groups, ens: s.ens}, nil
	}
	p, err := h.planFor(s, "", q)
	if err != nil {
		return nil, err
	}
	it, err := p.ExecuteGroupsIter(ctx, eo.core(), q, eo.groupChunk)
	if err != nil {
		return nil, err
	}
	return &Rows{it: it, ens: s.ens, cols: q.GroupBy}, nil
}

// Next advances to the next result row, evaluating the next group-key
// chunk when the current one is drained. It returns false at the end of
// the result or on an execution error (check Err).
func (r *Rows) Next() bool {
	if r.done {
		return false
	}
	if r.it == nil {
		if r.pos >= len(r.pre) {
			r.done = true
			return false
		}
		r.cur = r.pre[r.pos]
		r.pos++
		return true
	}
	if !r.it.Next() {
		r.done = true
		return false
	}
	g := r.it.Group()
	r.cur = Group{
		Key:    g.Key,
		Labels: decodeKey(r.ens, r.cols, g.Key),
		Estimate: Estimate{
			Value:    g.Estimate.Value,
			Variance: g.Estimate.Variance,
			CILow:    g.CILow,
			CIHigh:   g.CIHigh,
		},
	}
	return true
}

// Row returns the current result row. Valid after a true Next; the row
// stays valid after further Next calls.
func (r *Rows) Row() Group { return r.cur }

// Err returns the first execution error, if any.
func (r *Rows) Err() error {
	if r.it == nil {
		return nil
	}
	return r.it.Err()
}

// Grouped reports whether the underlying query had a GROUP BY clause.
func (r *Rows) Grouped() bool { return r.it != nil }
