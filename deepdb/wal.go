package deepdb

// wal.go wires the durable write-ahead log (internal/wal) and the
// drift-triggered background re-learner into the facade.
//
// Durability: mutateAll appends every accepted mutation group to the log
// before it enters the pipeline queue, so a crash — even kill -9 — loses
// nothing that was acknowledged under DurabilitySync (and at most the
// configured batching window otherwise). newDB replays the unapplied
// suffix on open; replay followed by Flush is bit-identical to a run that
// never crashed, because the applier's batch==sequential equivalence makes
// group boundaries irrelevant to the final state.
//
// Re-learning: the paper's incremental updates (Section 5.2) keep models
// exact for in-distribution streams but accumulate approximation error
// under drift. The applier checks the drift trigger after every batch;
// when a member trips, a background goroutine re-learns just that member
// from the current base tables (tombstones compacted away) and hot-swaps
// it into the serving snapshot via the normal publication path — readers
// never block, generations stay monotonic, and cached plans recompile
// exactly as they do for an update batch.

import (
	"context"
	"fmt"

	"repro/internal/ensemble"
	"repro/internal/wal"
)

// openWAL opens (or creates) the log in cfg.walDir and replays every
// record past the checkpoint into the model, batching groups like the
// background applier would. Per-mutation apply errors are dropped — on the
// asynchronous path they would only have surfaced through a Flush that
// never ran — but decode failures and replaying without attached base
// tables abort the open.
func (db *DB) openWAL() error {
	l, err := wal.Open(db.cfg.walDir, wal.Options{Durability: db.cfg.durability.wal()})
	if err != nil {
		return err
	}
	var pending []ensemble.Mutation
	groups := 0
	var last uint64
	flush := func() {
		if len(pending) == 0 {
			return
		}
		db.applyMu.Lock()
		db.applyLocked(pending) //nolint:errcheck // deferred-async semantics
		db.storeApplyLSN(last)
		db.applyMu.Unlock()
		pending, groups = pending[:0], 0
	}
	rerr := l.Replay(func(lsn uint64, payload []byte) error {
		muts, err := wal.DecodeMutations(payload)
		if err != nil {
			return err
		}
		if db.snapshotNow().ens.Tables == nil {
			return fmt.Errorf("deepdb: WAL %s has unapplied records but no base tables are attached (open with WithDataDir or WithDataset)", db.cfg.walDir)
		}
		pending = append(pending, muts...)
		groups++
		last = lsn
		if groups >= db.cfg.maxBatch {
			flush()
		}
		return nil
	})
	if rerr != nil {
		l.Close() //nolint:errcheck // the open itself failed
		return rerr
	}
	flush()
	db.wal = l
	return nil
}

// maybeRelearn checks the drift trigger and, when a member trips, spawns
// (at most one at a time) the background re-learner. Called by the applier
// after every batch, outside applyMu.
func (db *DB) maybeRelearn() {
	th := db.cfg.driftThresholds()
	if !th.Enabled() {
		return
	}
	ens := db.snapshotNow().ens
	if ens.Drift == nil {
		return
	}
	i, _, ok := ens.Drift.Trip(th)
	if !ok {
		return
	}
	if !db.relearnBusy.CompareAndSwap(false, true) {
		return
	}
	// Register with the close barrier under pipeMu: either this runs
	// before Close flips the flag (Close then waits for it), or it sees
	// closed and backs off.
	db.pipeMu.Lock()
	if db.closed {
		db.pipeMu.Unlock()
		db.relearnBusy.Store(false)
		return
	}
	db.relearnWG.Add(1)
	db.pipeMu.Unlock()
	go func() {
		defer db.relearnWG.Done()
		defer db.relearnBusy.Store(false)
		db.relearnMember(i)
	}()
}

// relearnMember re-learns member i and hot-swaps it into the serving
// snapshot. Two optimistic attempts learn from a published snapshot
// without blocking writers and publish only if the member's tables saw no
// mutation meanwhile (per-table version counters — drift's own counters
// would miss FK tuple-factor bumps on One-side tables, which change the
// data a re-learn sees). Under sustained writes both attempts can lose the
// race; the fallback then learns while holding applyMu — writers wait,
// readers still never block.
func (db *DB) relearnMember(i int) {
	ctx := context.Background()
	for attempt := 0; attempt < 2; attempt++ {
		db.applyMu.Lock()
		cur := db.snap.Load().ens
		if i >= len(cur.RSPNs) {
			db.applyMu.Unlock()
			return
		}
		tables := cur.RSPNs[i].Tables
		ver := db.versionsOf(tables)
		dead := cur.DeadRows()
		db.applyMu.Unlock()

		nr, err := cur.RelearnMember(ctx, i, dead)
		if err != nil {
			db.recordRelearnErr(err)
			return
		}

		db.applyMu.Lock()
		stale := false
		for j, v := range db.versionsOf(tables) {
			if v != ver[j] {
				stale = true
				break
			}
		}
		if !stale {
			live := db.snap.Load().ens
			db.publishLocked(live.SwapMember(i, nr))
			live.Drift.ResetMember(i)
			db.applyMu.Unlock()
			return
		}
		db.applyMu.Unlock()
	}
	// Locked fallback: no writer can move the tables under us.
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	live := db.snap.Load().ens
	if i >= len(live.RSPNs) {
		return
	}
	nr, err := live.RelearnMember(ctx, i, live.DeadRows())
	if err != nil {
		db.recordRelearnErr(err)
		return
	}
	db.publishLocked(live.SwapMember(i, nr))
	live.Drift.ResetMember(i)
}

func (db *DB) recordRelearnErr(err error) {
	db.relearnFails.Add(1)
	db.relearnErrMu.Lock()
	db.relearnErr = err.Error()
	db.relearnErrMu.Unlock()
}
