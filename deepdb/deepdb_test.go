package deepdb_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/deepdb"
	"repro/internal/query"
)

// fixture builds a two-table customer/orders dataset with planted
// correlations (EU customers buy more) and returns its schema and data.
func fixture(rows int, seed int64) (*deepdb.Schema, deepdb.Dataset) {
	s := &deepdb.Schema{Tables: []*deepdb.TableDef{
		{
			Name:       "customer",
			PrimaryKey: "c_id",
			Columns: []deepdb.ColumnDef{
				{Name: "c_id", Kind: deepdb.IntKind},
				{Name: "c_age", Kind: deepdb.IntKind},
				{Name: "c_region", Kind: deepdb.CategoricalKind},
			},
		},
		{
			Name:       "orders",
			PrimaryKey: "o_id",
			Columns: []deepdb.ColumnDef{
				{Name: "o_id", Kind: deepdb.IntKind},
				{Name: "o_c_id", Kind: deepdb.IntKind},
				{Name: "o_amount", Kind: deepdb.FloatKind},
			},
			ForeignKeys: []deepdb.ForeignKey{{Column: "o_c_id", RefTable: "customer", RefColumn: "c_id"}},
		},
	}}
	cust := deepdb.NewTable(s.Table("customer"))
	ord := deepdb.NewTable(s.Table("orders"))
	region := cust.Column("c_region")
	rng := rand.New(rand.NewSource(seed))
	oid := 0
	for i := 0; i < rows; i++ {
		r := "ASIA"
		norders := 1
		if rng.Float64() < 0.4 {
			r = "EU"
			norders = 3
		}
		cust.AppendRow(deepdb.Int(i), deepdb.Int(18+rng.Intn(60)),
			deepdb.Float(float64(region.Encode(r))))
		for k := 0; k < norders; k++ {
			ord.AppendRow(deepdb.Int(oid), deepdb.Int(i), deepdb.Float(10+rng.Float64()*90))
			oid++
		}
	}
	return s, deepdb.Dataset{"customer": cust, "orders": ord}
}

// TestRoundTrip checks learn -> save -> open -> query equality: the
// reopened model must produce byte-identical estimates.
func TestRoundTrip(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(3000, 1)
	db, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(5000))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.deepdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := deepdb.Open(ctx, path, deepdb.WithDataset(data))
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT COUNT(*) FROM customer WHERE c_region = 'EU'",
		"SELECT COUNT(*) FROM customer JOIN orders WHERE c_age >= 40",
		"SELECT AVG(o_amount) FROM orders",
		"SELECT COUNT(*) FROM customer GROUP BY c_region",
	}
	for _, sql := range queries {
		a, err := db.Query(ctx, sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		b, err := db2.Query(ctx, sql)
		if err != nil {
			t.Fatalf("%s (reopened): %v", sql, err)
		}
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("%s: round-trip mismatch\n  learned:  %v\n  reopened: %v", sql, a, b)
		}
	}
	// The estimates must also be sane vs ground truth.
	est, err := db2.EstimateCardinality(ctx, "SELECT COUNT(*) FROM customer JOIN orders")
	if err != nil {
		t.Fatal(err)
	}
	truth, err := db2.Exact(ctx, "SELECT COUNT(*) FROM customer JOIN orders")
	if err != nil {
		t.Fatal(err)
	}
	if qe := deepdb.QError(est.Value, truth.Scalar()); qe > 2 {
		t.Fatalf("join cardinality q-error %.2f (est %.1f true %.1f)", qe, est.Value, truth.Scalar())
	}
}

// TestOpenWithoutData: a model opened with no dataset serves every query
// class from the persisted statistics — including multi-table Theorem-2
// queries with filters on several tables — but still refuses updates and
// exact execution.
func TestOpenWithoutData(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1000, 2)
	// Single-table RSPNs only, so the join query below must combine two
	// models via Theorem 2 (the path that used to need live tables).
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(2000), deepdb.WithSingleTableOnly())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.deepdb")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := deepdb.Open(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Query(ctx, "SELECT COUNT(*) FROM customer WHERE c_age < 30"); err != nil {
		t.Fatalf("model-only query: %v", err)
	}
	est, err := db2.EstimateCardinality(ctx,
		"SELECT COUNT(*) FROM customer JOIN orders WHERE c_age < 40 AND o_amount >= 50")
	if err != nil {
		t.Fatalf("model-only Theorem-2 query with filters on both tables: %v", err)
	}
	// The filters must actually bite (they used to be dropped silently
	// when column ownership could not be resolved without tables).
	all, err := db2.EstimateCardinality(ctx, "SELECT COUNT(*) FROM customer JOIN orders")
	if err != nil {
		t.Fatal(err)
	}
	if est.Value >= all.Value {
		t.Fatalf("filtered join estimate %v not below unfiltered %v", est.Value, all.Value)
	}
	if d := db2.Describe(); !strings.Contains(d, "table statistics") {
		t.Fatalf("Describe missing persisted statistics:\n%s", d)
	}
	if err := db2.Insert("orders", map[string]deepdb.Value{"o_id": deepdb.Int(1 << 20)}); err == nil {
		t.Fatal("expected insert to fail without data")
	}
	if _, err := db2.Exact(ctx, "SELECT COUNT(*) FROM customer"); err == nil {
		t.Fatal("expected exact execution to fail without data")
	}
}

// TestOpenRejectsOldModelFile: a model file without the versioned header
// fails with a clear error instead of an opaque gob mismatch.
func TestOpenRejectsOldModelFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.deepdb")
	if err := os.WriteFile(path, []byte("pre-versioning payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := deepdb.Open(context.Background(), path)
	if err == nil || !strings.Contains(err.Error(), "older") {
		t.Fatalf("err = %v, want mention of an older model format", err)
	}
}

// TestModelOnlyMatchesAttached is the data-free serving contract: on a
// fixed-seed workload spanning every compilation case (single-RSPN,
// superset, Theorem-2 combination), GROUP BY, disjunctions and outer
// joins, a model opened without data — with the parallel query path on —
// must produce estimates identical to the data-attached DB it was saved
// from.
func TestModelOnlyMatchesAttached(t *testing.T) {
	ctx := context.Background()
	workload := []query.Query{
		{Aggregate: query.Count, Tables: []string{"customer"},
			Filters: []query.Predicate{{Column: "c_age", Op: query.Lt, Value: 40}}},
		{Aggregate: query.Count, Tables: []string{"customer", "orders"},
			Filters: []query.Predicate{
				{Column: "c_age", Op: query.Lt, Value: 40},
				{Column: "o_amount", Op: query.Ge, Value: 50},
			}},
		{Aggregate: query.Count, Tables: []string{"customer"}, GroupBy: []string{"c_region"}},
		{Aggregate: query.Count, Tables: []string{"customer", "orders"},
			Disjunction: []query.Predicate{
				{Column: "c_age", Op: query.Lt, Value: 25},
				{Column: "o_amount", Op: query.Gt, Value: 80},
			}},
		{Aggregate: query.Count, Tables: []string{"customer", "orders"},
			OuterTables: []string{"orders"},
			Filters:     []query.Predicate{{Column: "c_age", Op: query.Lt, Value: 40}}},
		{Aggregate: query.Avg, AggColumn: "o_amount", Tables: []string{"orders"},
			Filters: []query.Predicate{{Column: "o_amount", Op: query.Ge, Value: 30}}},
		{Aggregate: query.Sum, AggColumn: "o_amount", Tables: []string{"customer", "orders"},
			Filters: []query.Predicate{{Column: "c_age", Op: query.Lt, Value: 40}}},
	}
	for _, tc := range []struct {
		name string
		opts []deepdb.Option
	}{
		{"ensemble", nil},
		{"single-table-only/theorem2", []deepdb.Option{deepdb.WithSingleTableOnly()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, data := fixture(2000, 11)
			opts := append([]deepdb.Option{deepdb.WithMaxSamples(4000)}, tc.opts...)
			db, err := deepdb.LearnDataset(ctx, s, data, opts...)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "model.deepdb")
			if err := db.Save(path); err != nil {
				t.Fatal(err)
			}
			modelOnly, err := deepdb.Open(ctx, path, deepdb.WithParallelism(4))
			if err != nil {
				t.Fatal(err)
			}
			// Group-key labels are decoded through the base-table
			// dictionaries, which only exist with data attached; compare
			// keys and estimates, not display labels.
			norm := func(r deepdb.Result) string {
				var b strings.Builder
				for _, g := range r.Groups {
					fmt.Fprintf(&b, "%v %v %v %v %v; ", g.Key, g.Value, g.Variance, g.CILow, g.CIHigh)
				}
				return b.String()
			}
			for i, q := range workload {
				a, err := db.ExecuteQuery(ctx, q)
				if err != nil {
					t.Fatalf("query %d attached: %v", i, err)
				}
				b, err := modelOnly.ExecuteQuery(ctx, q)
				if err != nil {
					t.Fatalf("query %d model-only: %v", i, err)
				}
				if norm(a) != norm(b) {
					t.Fatalf("query %d mismatch\n  attached:   %v\n  model-only: %v", i, a, b)
				}
			}
		})
	}
}

// TestLearnCancellation: a cancelled context aborts learning with
// ctx.Err(), both when cancelled up front and mid-learn.
func TestLearnCancellation(t *testing.T) {
	s, data := fixture(2000, 3)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := deepdb.LearnDataset(cancelled, s, data); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled learn: err = %v, want context.Canceled", err)
	}
	// A deadline far shorter than learning time must interrupt the SPN
	// structure-learning loop itself.
	s2, data2 := fixture(30000, 4)
	ctx, cancel2 := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err := deepdb.LearnDataset(ctx, s2, data2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-learn cancel: err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, expected fast unwind", elapsed)
	}
}

// TestQueryCancellation: a cancelled context aborts query evaluation.
func TestQueryCancellation(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1000, 5)
	db, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(2000))
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := db.Query(cancelled, "SELECT COUNT(*) FROM customer"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query: err = %v, want context.Canceled", err)
	}
}

// TestParallelismMatchesSequential: WithParallelism must not change the
// result of a GROUP BY query, only how it is computed.
func TestParallelismMatchesSequential(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(3000, 6)
	seq, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(5000))
	if err != nil {
		t.Fatal(err)
	}
	s2, data2 := fixture(3000, 6)
	par, err := deepdb.LearnDataset(ctx, s2, data2, deepdb.WithMaxSamples(5000), deepdb.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT AVG(o_amount) FROM customer JOIN orders GROUP BY c_region"
	a, err := seq.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("parallel result differs:\n  seq: %v\n  par: %v", a, b)
	}
}

// TestConcurrentQueryUpdate is the facade's concurrency contract under
// -race: many goroutines query while others insert; every operation must
// succeed and the final count must reflect all inserts.
func TestConcurrentQueryUpdate(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	s, data := fixture(2000, 7)
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(4000), deepdb.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	const (
		readers = 8
		writers = 4
		inserts = 25
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers+writers)
	queries := []string{
		"SELECT COUNT(*) FROM customer WHERE c_age < 40",
		"SELECT COUNT(*) FROM customer JOIN orders",
		"SELECT AVG(o_amount) FROM customer JOIN orders GROUP BY c_region",
		"SELECT COUNT(*) FROM customer GROUP BY c_region",
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < inserts; i++ {
				id := 1_000_000 + w*inserts + i
				err := db.Update(deepdb.Row{Table: "orders", Values: map[string]deepdb.Value{
					"o_id":     deepdb.Int(id),
					"o_c_id":   deepdb.Int(i % 100),
					"o_amount": deepdb.Float(50),
				}})
				if err != nil {
					errc <- fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sql := queries[(r+i)%len(queries)]
				if _, err := db.Query(ctx, sql); err != nil {
					errc <- fmt.Errorf("reader %d %q: %w", r, sql, err)
					return
				}
				if _, err := db.EstimateCardinality(ctx, "SELECT COUNT(*) FROM orders WHERE o_amount >= 50"); err != nil {
					errc <- fmt.Errorf("reader %d estimate: %w", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// Updates are asynchronous: flush so every enqueued write is published
	// (and any apply error surfaces) before the final accounting.
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// All writes must be visible in the base table afterwards.
	got := db.Data()["orders"].NumRows()
	truth, err := db.Exact(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if want := int(truth.Scalar()); got != want {
		t.Fatalf("orders rows = %d, exact count = %d", got, want)
	}
}

// TestExplain renders plans for the three compilation cases.
func TestExplain(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(2000, 8)
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(4000), deepdb.WithSingleTableOnly())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.Explain(ctx, "SELECT COUNT(*) FROM customer WHERE c_age < 30")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "case 1") {
		t.Fatalf("single-table plan missing case 1:\n%s", plan)
	}
	// With single-table RSPNs only, a join query needs Theorem 2.
	plan, err = db.Explain(ctx, "SELECT COUNT(*) FROM customer JOIN orders WHERE c_age < 30")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Theorem 2") {
		t.Fatalf("join plan missing Theorem 2:\n%s", plan)
	}
}

// TestDescribeAndModels covers the introspection surface.
func TestDescribeAndModels(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1000, 9)
	db, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(2000))
	if err != nil {
		t.Fatal(err)
	}
	if d := db.Describe(); !strings.Contains(d, "RSPN") {
		t.Fatalf("describe output: %q", d)
	}
	if len(db.Models()) == 0 {
		t.Fatal("no models")
	}
	if db.Model("customer") == nil {
		t.Fatal("no model covers customer")
	}
	if db.Schema().Table("orders") == nil {
		t.Fatal("schema lost")
	}
}
