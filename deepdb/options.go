package deepdb

import (
	"repro/internal/core"
	"repro/internal/ensemble"
)

// Strategy selects how the engine picks RSPNs for a query.
type Strategy int

const (
	// StrategyRDCGreedy picks the RSPN handling the filter predicates with
	// the highest sum of pairwise RDC values (the paper's choice).
	StrategyRDCGreedy Strategy = iota
	// StrategyMedian uses the median prediction over all covering RSPNs.
	StrategyMedian
)

// config is the resolved option set of one DB.
type config struct {
	ens         ensemble.Config
	strategy    Strategy
	confidence  float64
	parallelism int
	dataDir     string
	dataset     Dataset
}

func defaultConfig() config {
	return config{
		ens:        ensemble.DefaultConfig(),
		strategy:   StrategyRDCGreedy,
		confidence: 0.95,
	}
}

func (c *config) apply(opts []Option) {
	for _, o := range opts {
		o(c)
	}
}

func (c *config) coreStrategy() core.Strategy {
	if c.strategy == StrategyMedian {
		return core.StrategyMedian
	}
	return core.StrategyRDCGreedy
}

// Option customizes Learn/LearnDataset/Open.
type Option func(*config)

// WithBudget sets the ensemble budget factor B of Section 5.3: additional
// multi-table RSPNs are admitted until their accumulated relative cost
// exceeds B times the base ensemble's cost. 0 disables them.
func WithBudget(b float64) Option {
	return func(c *config) { c.ens.BudgetFactor = b }
}

// WithMaxSamples caps the training rows per RSPN.
func WithMaxSamples(n int) Option {
	return func(c *config) { c.ens.MaxSamples = n }
}

// WithRDCThreshold sets the dependency threshold above which two adjacent
// tables get a joint RSPN.
func WithRDCThreshold(v float64) Option {
	return func(c *config) { c.ens.RDCThreshold = v }
}

// WithSeed drives sampling and learning for reproducible models.
func WithSeed(seed int64) Option {
	return func(c *config) { c.ens.Seed = seed }
}

// WithStrategy selects the RSPN-picking strategy at query time.
func WithStrategy(s Strategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithParallelism bounds the worker count for learning ensemble members
// and for each fan-out of a query's independent sub-estimates: GROUP BY
// per-group estimates, Theorem-2 branch sub-estimates, and disjunction
// inclusion-exclusion terms. The bound applies per fan-out (nested
// fan-outs each get their own workers, so deeply compiled queries may run
// more goroutines in total). Values <= 1 run sequentially (the default).
// Results are identical either way; only wall-clock time changes.
func WithParallelism(n int) Option {
	return func(c *config) {
		c.parallelism = n
		c.ens.Parallelism = n
	}
}

// WithSingleTableOnly learns one RSPN per table and no join RSPNs — the
// paper's cheap fallback configuration.
func WithSingleTableOnly() Option {
	return func(c *config) { c.ens.SingleTableOnly = true }
}

// WithExactLearner builds memorizing models instead of running structure
// learning; intended for tiny data sets and tests.
func WithExactLearner() Option {
	return func(c *config) { c.ens.Exact = true }
}

// WithConfidenceLevel sets the level of the confidence intervals attached
// to every estimate (default 0.95).
func WithConfidenceLevel(level float64) Option {
	return func(c *config) { c.confidence = level }
}

// WithDataDir tells Open where the base-table CSVs live; they are loaded
// with the schema persisted inside the model file. Learn ignores it (its
// data dir is a positional argument).
func WithDataDir(dir string) Option {
	return func(c *config) { c.dataDir = dir }
}

// WithDataset attaches already-loaded base tables to Open, instead of
// reading CSVs from a directory.
func WithDataset(ds Dataset) Option {
	return func(c *config) { c.dataset = ds }
}
