package deepdb

import (
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/ensemble"
	"repro/internal/wal"
)

// Strategy selects how the engine picks RSPNs for a query.
type Strategy int

const (
	// StrategyRDCGreedy picks the RSPN handling the filter predicates with
	// the highest sum of pairwise RDC values (the paper's choice).
	StrategyRDCGreedy Strategy = iota
	// StrategyMedian uses the median prediction over all covering RSPNs.
	StrategyMedian
)

// Durability selects how eagerly WAL appends reach stable storage — see
// WithDurability.
type Durability int

const (
	// DurabilityBatched fsyncs the WAL every few appends or milliseconds
	// (group commit): bounded loss window, near-Off throughput. The default.
	DurabilityBatched Durability = iota
	// DurabilitySync fsyncs after every append: no acknowledged mutation is
	// ever lost, at per-append fsync cost.
	DurabilitySync
	// DurabilityOff never fsyncs from the append path; the OS decides when
	// pages reach disk. Torn or missing tail records are still detected and
	// truncated on recovery.
	DurabilityOff
)

// String renders the mode like the wal package does ("sync", "batched",
// "off").
func (d Durability) String() string { return d.wal().String() }

// wal maps to the internal WAL mode.
func (d Durability) wal() wal.Durability {
	switch d {
	case DurabilitySync:
		return wal.Sync
	case DurabilityOff:
		return wal.Off
	default:
		return wal.Batched
	}
}

// ParseDurability reads a mode name ("sync", "batched", "off"),
// case-sensitively; the CLI flags use it.
func ParseDurability(s string) (Durability, bool) {
	switch s {
	case "sync":
		return DurabilitySync, true
	case "batched":
		return DurabilityBatched, true
	case "off":
		return DurabilityOff, true
	}
	return DurabilityBatched, false
}

// defaultCloseTimeout bounds how long Close waits for the update pipeline
// to drain before giving up with an error.
const defaultCloseTimeout = 30 * time.Second

// WALErrorPolicy decides what happens to writes after the write-ahead log
// fails (disk full, I/O error on append or fsync) — see WithWALErrorPolicy.
type WALErrorPolicy int

const (
	// WALFailStop rejects every write once the WAL cannot persist it:
	// mutations return ErrDurabilityLost (the serving tier turns that into
	// 503) until the process is restarted against a healthy disk. No
	// acknowledged write is ever less durable than the configured mode
	// promises. The default.
	WALFailStop WALErrorPolicy = iota
	// WALDegradeVolatile keeps accepting writes into the in-memory pipeline
	// after a WAL failure, sacrificing crash-durability for availability.
	// The DB latches a loud health flag (UpdateStats.DurabilityLost, and
	// "degraded" on /healthz) so operators see the trade the moment it is
	// taken; a restart recovers only up to the last durable record.
	WALDegradeVolatile
)

func (p WALErrorPolicy) String() string {
	if p == WALDegradeVolatile {
		return "degrade-volatile"
	}
	return "fail-stop"
}

// Defaults for the sharded tier's peer hardening knobs. The zero values
// in config mean "use these"; the With* options override per DB.
const (
	defaultPeerProbeInterval = 2 * time.Second
)

// config is the resolved option set of one DB.
type config struct {
	ens          ensemble.Config
	strategy     Strategy
	confidence   float64
	parallelism  int
	dataDir      string
	dataset      Dataset
	planCache    int
	resultCache  int
	syncUpdates  bool
	queueSize    int
	maxBatch     int
	walDir       string
	durability   Durability
	closeTimeout time.Duration
	driftFrac    float64
	driftShift   float64
	shards       int
	shardPeers   []string
	nonBlocking  bool
	walPolicy    WALErrorPolicy

	// Peer hardening knobs (sharded tier with replicas). Zero = default.
	peerAttempts      int
	peerBackoff       time.Duration
	peerBreakThresh   int
	peerBreakCooldown time.Duration
	peerProbeInterval time.Duration
	peerProbeDisabled bool
}

// driftThresholds assembles the re-learn trigger configuration.
func (c *config) driftThresholds() drift.Thresholds {
	return drift.Thresholds{MutatedFraction: c.driftFrac, MeanShift: c.driftShift}
}

// defaultPlanCacheSize bounds the plan cache when WithPlanCacheSize is not
// given: generous for realistic workloads (shapes are per query template,
// not per literal), small enough to keep eviction cheap.
const defaultPlanCacheSize = 128

// Default bounds of the asynchronous update pipeline: the queue absorbs
// write bursts without blocking callers, the batch cap bounds how much
// work (and copy-on-write cloning) a single snapshot publication amortizes.
const (
	defaultUpdateQueueSize = 1024
	defaultUpdateBatchSize = 256
)

func defaultConfig() config {
	return config{
		ens:        ensemble.DefaultConfig(),
		strategy:   StrategyRDCGreedy,
		confidence: 0.95,
		planCache:  defaultPlanCacheSize,
		queueSize:  defaultUpdateQueueSize,
		maxBatch:   defaultUpdateBatchSize,

		closeTimeout: defaultCloseTimeout,
	}
}

func (c *config) apply(opts []Option) {
	for _, o := range opts {
		o(c)
	}
}

func (c *config) coreStrategy() core.Strategy {
	if c.strategy == StrategyMedian {
		return core.StrategyMedian
	}
	return core.StrategyRDCGreedy
}

// Option customizes Learn/LearnDataset/Open.
type Option func(*config)

// WithBudget sets the ensemble budget factor B of Section 5.3: additional
// multi-table RSPNs are admitted until their accumulated relative cost
// exceeds B times the base ensemble's cost. 0 disables them.
func WithBudget(b float64) Option {
	return func(c *config) { c.ens.BudgetFactor = b }
}

// WithMaxSamples caps the training rows per RSPN.
func WithMaxSamples(n int) Option {
	return func(c *config) { c.ens.MaxSamples = n }
}

// WithRDCThreshold sets the dependency threshold above which two adjacent
// tables get a joint RSPN.
func WithRDCThreshold(v float64) Option {
	return func(c *config) { c.ens.RDCThreshold = v }
}

// WithSeed drives sampling and learning for reproducible models.
func WithSeed(seed int64) Option {
	return func(c *config) { c.ens.Seed = seed }
}

// WithStrategy selects the RSPN-picking strategy at query time.
func WithStrategy(s Strategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithParallelism bounds the worker count for learning ensemble members
// and for each fan-out of a query's independent sub-estimates: GROUP BY
// per-group estimates, Theorem-2 branch sub-estimates, and disjunction
// inclusion-exclusion terms. The bound applies per fan-out (nested
// fan-outs each get their own workers, so deeply compiled queries may run
// more goroutines in total). Values <= 1 run sequentially (the default).
// Results are identical either way; only wall-clock time changes.
func WithParallelism(n int) Option {
	return func(c *config) {
		c.parallelism = n
		c.ens.Parallelism = n
	}
}

// WithSingleTableOnly learns one RSPN per table and no join RSPNs — the
// paper's cheap fallback configuration.
func WithSingleTableOnly() Option {
	return func(c *config) { c.ens.SingleTableOnly = true }
}

// WithExactLearner builds memorizing models instead of running structure
// learning; intended for tiny data sets and tests.
func WithExactLearner() Option {
	return func(c *config) { c.ens.Exact = true }
}

// WithConfidenceLevel sets the DB-wide default level of the confidence
// intervals attached to every estimate (default 0.95). Individual calls
// can override it with the AtConfidence exec option.
func WithConfidenceLevel(level float64) Option {
	return func(c *config) { c.confidence = level }
}

// WithPlanCacheSize bounds the LRU cache of compiled query plans, keyed on
// normalized query shape (default 128 entries). Cached plans make repeated
// Query/EstimateCardinality calls of the same shape skip recompilation;
// prepared statements pin their plan regardless. 0 disables the cache
// (every unprepared call compiles from scratch).
func WithPlanCacheSize(n int) Option {
	return func(c *config) { c.planCache = n }
}

// WithResultCacheSize enables the cross-query result cache and bounds it
// to roughly n entries (LRU, hash-sharded; default 0 = disabled). The
// cache sits in front of plan execution: a repeated Query,
// EstimateCardinality or Stmt.Exec/ExecBatch/Estimate call with the same
// query shape, the same bound literal values and the same effective
// confidence level is answered from the cache, bit-identical to executing
// it. Entries are tagged with the snapshot generation, so any published
// snapshot — an update batch, Reload, a background re-learn hot-swap,
// CheckStaleness — invalidates them wholesale; a hit never serves an
// estimate computed against a superseded model state. Streaming reads
// (QueryRows) bypass the cache.
func WithResultCacheSize(n int) Option {
	return func(c *config) { c.resultCache = n }
}

// WithSyncUpdates makes Insert/Delete/Update apply and publish their
// mutations before returning — the pre-pipeline semantics: the caller sees
// its own write on the very next query without calling Flush, at the cost
// of paying the copy-on-write apply inline (writers wait on each other;
// readers still never block). The asynchronous default enqueues instead
// and applies in coalesced batches in the background.
func WithSyncUpdates() Option {
	return func(c *config) { c.syncUpdates = true }
}

// WithUpdateQueueSize bounds the asynchronous update queue (default
// 1024 operations; an Update(rows...) call occupies one slot). When the
// queue is full, Insert/Delete/Update block until the background applier
// catches up — backpressure instead of unbounded memory. Ignored under
// WithSyncUpdates.
func WithUpdateQueueSize(n int) Option {
	return func(c *config) { c.queueSize = n }
}

// WithUpdateBatchSize caps how many queued update operations the
// background applier coalesces into one copy-on-write batch and snapshot
// publication (default 256; the rows of one Update call count as one
// operation and are never split across snapshots). Larger batches
// amortize cloning and evaluator recompiles over more rows; smaller ones
// publish fresher snapshots.
func WithUpdateBatchSize(n int) Option {
	return func(c *config) { c.maxBatch = n }
}

// WithWAL enables the durable write-ahead log in dir (created if missing).
// Every Insert/Delete/Update call appends its mutation group to the log
// before it enters the pipeline queue, and opening a DB with the same WAL
// directory replays whatever a previous process accepted but had not saved
// — after a crash (even kill -9), replay followed by Flush reproduces the
// pre-crash state bit-identically. Save checkpoints the log (the applied
// watermark is persisted and fully-saved segments are deleted). Requires
// attached base tables when the log has records to replay.
func WithWAL(dir string) Option {
	return func(c *config) { c.walDir = dir }
}

// WithDurability selects the WAL fsync policy (default DurabilityBatched).
// Only meaningful together with WithWAL.
func WithDurability(d Durability) Option {
	return func(c *config) { c.durability = d }
}

// WithCloseTimeout bounds how long Close waits for the background pipeline
// to drain (default 30s). On timeout Close returns an error; the remaining
// queue keeps applying in the background but is not guaranteed durable in
// the model file (with a WAL it is still recoverable). d <= 0 waits
// without bound.
func WithCloseTimeout(d time.Duration) Option {
	return func(c *config) { c.closeTimeout = d }
}

// WithDriftThreshold arms background re-learning on update volume: when
// the fraction of an ensemble member's rows mutated since it was learned
// exceeds frac (e.g. 0.2 = 20%), the member is re-learned from the current
// base tables in the background and hot-swapped into the serving snapshot
// — readers never block, and the paper's incremental-update approximations
// are periodically squashed out. <= 0 (the default) disables the trigger.
func WithDriftThreshold(frac float64) Option {
	return func(c *config) { c.driftFrac = frac }
}

// WithDriftMeanShift arms background re-learning on distribution drift:
// re-learn a member when any of its attribute columns' mean moved more
// than sigma baseline standard deviations since it was learned. <= 0 (the
// default) disables the signal. Combines with WithDriftThreshold —
// whichever trips first wins.
func WithDriftMeanShift(sigma float64) Option {
	return func(c *config) { c.driftShift = sigma }
}

// WithDataDir tells Open where the base-table CSVs live; they are loaded
// with the schema persisted inside the model file. Learn ignores it (its
// data dir is a positional argument).
func WithDataDir(dir string) Option {
	return func(c *config) { c.dataDir = dir }
}

// WithDataset attaches already-loaded base tables to Open, instead of
// reading CSVs from a directory.
func WithDataset(ds Dataset) Option {
	return func(c *config) { c.dataset = ds }
}

// WithShards asks OpenSharded/LearnDatasetSharded for n partitions
// (default 1). The effective count may be lower when the ensemble has
// fewer members than n. Other constructors ignore it.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithShardPeers binds shard replica processes (one base URL per shard, in
// shard order — e.g. started with `deepdb shard -index i`) to a sharded
// DB: evaluation chunks of members owned by shard i are offloaded to
// peers[i], and mutations are forwarded so replicas stay in lockstep. Any
// replica failure falls back to the local model, so results are
// bit-identical with or without peers.
func WithShardPeers(urls ...string) Option {
	return func(c *config) { c.shardPeers = append([]string(nil), urls...) }
}

// WithWALErrorPolicy decides how the DB behaves once the WAL fails
// (default WALFailStop: reject writes with ErrDurabilityLost;
// WALDegradeVolatile: keep serving writes in memory under a loud health
// flag). Only meaningful together with WithWAL.
func WithWALErrorPolicy(p WALErrorPolicy) Option {
	return func(c *config) { c.walPolicy = p }
}

// WithPeerRetries sets the per-request attempt budget and base backoff for
// replica /eval calls (defaults live in internal/shard: 3 attempts, 25ms
// jittered exponential backoff). Non-positive values keep the defaults.
func WithPeerRetries(attempts int, backoff time.Duration) Option {
	return func(c *config) {
		c.peerAttempts = attempts
		c.peerBackoff = backoff
	}
}

// WithPeerBreaker configures the per-peer circuit breaker: `threshold`
// consecutive failures open it for `cooldown`, during which requests to
// that replica fail fast to the local model; a health probe (or half-open
// trial) re-closes it after the peer heals. Non-positive values keep the
// defaults (5 failures, 2s cooldown).
func WithPeerBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *config) {
		c.peerBreakThresh = threshold
		c.peerBreakCooldown = cooldown
	}
}

// WithPeerProbeInterval sets how often the router actively probes each
// replica's /healthz (default 2s), feeding the per-peer breaker and the
// health surfaces even when no query traffic flows. d <= 0 disables
// active probing (the breaker then relies on query traffic alone).
func WithPeerProbeInterval(d time.Duration) Option {
	return func(c *config) {
		if d <= 0 {
			c.peerProbeDisabled = true
			return
		}
		c.peerProbeDisabled = false
		c.peerProbeInterval = d
	}
}

// WithNonBlockingUpdates makes Insert/Delete/Update shed with ErrQueueFull
// when the update queue is full, instead of blocking until the applier
// catches up. Serving front-ends use this to turn backpressure into
// 429 + Retry-After rather than pinning handler goroutines. Ignored under
// WithSyncUpdates; sharded DBs always behave this way.
func WithNonBlockingUpdates() Option {
	return func(c *config) { c.nonBlocking = true }
}

// ---- per-call execution options ----

// execOpts is the resolved per-call option set.
type execOpts struct {
	confidence float64 // 0 = DB default
	groupChunk int     // 0 = core.DefaultGroupChunk (streaming reads only)
}

// ExecOption customizes a single query execution (Query, ExecuteQuery,
// EstimateCardinality, Stmt.Exec/ExecBatch/Estimate) without touching the
// DB-wide configuration.
type ExecOption func(*execOpts)

// AtConfidence overrides the confidence-interval level for one call.
func AtConfidence(level float64) ExecOption {
	return func(o *execOpts) { o.confidence = level }
}

// WithGroupChunk sets how many group keys a streaming read (QueryRows)
// gates and aggregates per evaluation round (default 256). Larger chunks
// amortize model passes; smaller ones bound memory tighter and yield first
// rows sooner. Ignored by non-streaming calls.
func WithGroupChunk(n int) ExecOption {
	return func(o *execOpts) { o.groupChunk = n }
}

// resolveExec folds the per-call options into one set.
func resolveExec(opts []ExecOption) execOpts {
	var o execOpts
	for _, f := range opts {
		f(&o)
	}
	return o
}

// core converts to the engine's per-execution options.
func (o execOpts) core() core.ExecOpts {
	return core.ExecOpts{ConfidenceLevel: o.confidence}
}

// levelOr resolves the effective confidence level for facade-side interval
// computation, falling back to the host's default.
func (o execOpts) levelOr(def float64) float64 {
	if o.confidence > 0 && o.confidence < 1 {
		return o.confidence
	}
	if def <= 0 || def >= 1 {
		def = 0.95
	}
	return def
}
