package deepdb

import (
	"repro/internal/core"
	"repro/internal/ensemble"
)

// Strategy selects how the engine picks RSPNs for a query.
type Strategy int

const (
	// StrategyRDCGreedy picks the RSPN handling the filter predicates with
	// the highest sum of pairwise RDC values (the paper's choice).
	StrategyRDCGreedy Strategy = iota
	// StrategyMedian uses the median prediction over all covering RSPNs.
	StrategyMedian
)

// config is the resolved option set of one DB.
type config struct {
	ens         ensemble.Config
	strategy    Strategy
	confidence  float64
	parallelism int
	dataDir     string
	dataset     Dataset
	planCache   int
	syncUpdates bool
	queueSize   int
	maxBatch    int
}

// defaultPlanCacheSize bounds the plan cache when WithPlanCacheSize is not
// given: generous for realistic workloads (shapes are per query template,
// not per literal), small enough to keep eviction cheap.
const defaultPlanCacheSize = 128

// Default bounds of the asynchronous update pipeline: the queue absorbs
// write bursts without blocking callers, the batch cap bounds how much
// work (and copy-on-write cloning) a single snapshot publication amortizes.
const (
	defaultUpdateQueueSize = 1024
	defaultUpdateBatchSize = 256
)

func defaultConfig() config {
	return config{
		ens:        ensemble.DefaultConfig(),
		strategy:   StrategyRDCGreedy,
		confidence: 0.95,
		planCache:  defaultPlanCacheSize,
		queueSize:  defaultUpdateQueueSize,
		maxBatch:   defaultUpdateBatchSize,
	}
}

func (c *config) apply(opts []Option) {
	for _, o := range opts {
		o(c)
	}
}

func (c *config) coreStrategy() core.Strategy {
	if c.strategy == StrategyMedian {
		return core.StrategyMedian
	}
	return core.StrategyRDCGreedy
}

// Option customizes Learn/LearnDataset/Open.
type Option func(*config)

// WithBudget sets the ensemble budget factor B of Section 5.3: additional
// multi-table RSPNs are admitted until their accumulated relative cost
// exceeds B times the base ensemble's cost. 0 disables them.
func WithBudget(b float64) Option {
	return func(c *config) { c.ens.BudgetFactor = b }
}

// WithMaxSamples caps the training rows per RSPN.
func WithMaxSamples(n int) Option {
	return func(c *config) { c.ens.MaxSamples = n }
}

// WithRDCThreshold sets the dependency threshold above which two adjacent
// tables get a joint RSPN.
func WithRDCThreshold(v float64) Option {
	return func(c *config) { c.ens.RDCThreshold = v }
}

// WithSeed drives sampling and learning for reproducible models.
func WithSeed(seed int64) Option {
	return func(c *config) { c.ens.Seed = seed }
}

// WithStrategy selects the RSPN-picking strategy at query time.
func WithStrategy(s Strategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithParallelism bounds the worker count for learning ensemble members
// and for each fan-out of a query's independent sub-estimates: GROUP BY
// per-group estimates, Theorem-2 branch sub-estimates, and disjunction
// inclusion-exclusion terms. The bound applies per fan-out (nested
// fan-outs each get their own workers, so deeply compiled queries may run
// more goroutines in total). Values <= 1 run sequentially (the default).
// Results are identical either way; only wall-clock time changes.
func WithParallelism(n int) Option {
	return func(c *config) {
		c.parallelism = n
		c.ens.Parallelism = n
	}
}

// WithSingleTableOnly learns one RSPN per table and no join RSPNs — the
// paper's cheap fallback configuration.
func WithSingleTableOnly() Option {
	return func(c *config) { c.ens.SingleTableOnly = true }
}

// WithExactLearner builds memorizing models instead of running structure
// learning; intended for tiny data sets and tests.
func WithExactLearner() Option {
	return func(c *config) { c.ens.Exact = true }
}

// WithConfidenceLevel sets the DB-wide default level of the confidence
// intervals attached to every estimate (default 0.95). Individual calls
// can override it with the AtConfidence exec option.
func WithConfidenceLevel(level float64) Option {
	return func(c *config) { c.confidence = level }
}

// WithPlanCacheSize bounds the LRU cache of compiled query plans, keyed on
// normalized query shape (default 128 entries). Cached plans make repeated
// Query/EstimateCardinality calls of the same shape skip recompilation;
// prepared statements pin their plan regardless. 0 disables the cache
// (every unprepared call compiles from scratch).
func WithPlanCacheSize(n int) Option {
	return func(c *config) { c.planCache = n }
}

// WithSyncUpdates makes Insert/Delete/Update apply and publish their
// mutations before returning — the pre-pipeline semantics: the caller sees
// its own write on the very next query without calling Flush, at the cost
// of paying the copy-on-write apply inline (writers wait on each other;
// readers still never block). The asynchronous default enqueues instead
// and applies in coalesced batches in the background.
func WithSyncUpdates() Option {
	return func(c *config) { c.syncUpdates = true }
}

// WithUpdateQueueSize bounds the asynchronous update queue (default
// 1024 operations; an Update(rows...) call occupies one slot). When the
// queue is full, Insert/Delete/Update block until the background applier
// catches up — backpressure instead of unbounded memory. Ignored under
// WithSyncUpdates.
func WithUpdateQueueSize(n int) Option {
	return func(c *config) { c.queueSize = n }
}

// WithUpdateBatchSize caps how many queued update operations the
// background applier coalesces into one copy-on-write batch and snapshot
// publication (default 256; the rows of one Update call count as one
// operation and are never split across snapshots). Larger batches
// amortize cloning and evaluator recompiles over more rows; smaller ones
// publish fresher snapshots.
func WithUpdateBatchSize(n int) Option {
	return func(c *config) { c.maxBatch = n }
}

// WithDataDir tells Open where the base-table CSVs live; they are loaded
// with the schema persisted inside the model file. Learn ignores it (its
// data dir is a positional argument).
func WithDataDir(dir string) Option {
	return func(c *config) { c.dataDir = dir }
}

// WithDataset attaches already-loaded base tables to Open, instead of
// reading CSVs from a directory.
func WithDataset(ds Dataset) Option {
	return func(c *config) { c.dataset = ds }
}

// ---- per-call execution options ----

// execOpts is the resolved per-call option set.
type execOpts struct {
	confidence float64 // 0 = DB default
}

// ExecOption customizes a single query execution (Query, ExecuteQuery,
// EstimateCardinality, Stmt.Exec/ExecBatch/Estimate) without touching the
// DB-wide configuration.
type ExecOption func(*execOpts)

// AtConfidence overrides the confidence-interval level for one call.
func AtConfidence(level float64) ExecOption {
	return func(o *execOpts) { o.confidence = level }
}

// execOpts resolves the per-call options against the DB defaults.
func (db *DB) execOpts(opts []ExecOption) execOpts {
	var o execOpts
	for _, f := range opts {
		f(&o)
	}
	return o
}

// core converts to the engine's per-execution options.
func (o execOpts) core() core.ExecOpts {
	return core.ExecOpts{ConfidenceLevel: o.confidence}
}

// level resolves the effective confidence level for facade-side interval
// computation.
func (o execOpts) level(db *DB) float64 {
	if o.confidence > 0 && o.confidence < 1 {
		return o.confidence
	}
	level := db.cfg.confidence
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	return level
}
