// Package deepdb is the public facade of this DeepDB reproduction
// (Hilprecht et al., PVLDB 13(7): DeepDB — Learn from Data, not from
// Queries!). It is the one package consumers import: learn an RSPN
// ensemble once over relational data, then serve cardinality estimates and
// approximate aggregate queries from the model — without touching the data
// again — and absorb inserts/deletes incrementally without retraining.
//
//	db, err := deepdb.Learn(ctx, schema, "data/", deepdb.WithBudget(0.5))
//	res, err := db.Query(ctx, "SELECT AVG(price) FROM orders WHERE region = 'EU'")
//	est, err := db.EstimateCardinality(ctx, "SELECT COUNT(*) FROM orders JOIN customers")
//	err = db.Save("model.deepdb")
//	db, err = deepdb.Open(ctx, "model.deepdb", deepdb.WithDataDir("data/"))
//
// A *DB is safe for concurrent use: queries run under a read lock and may
// proceed in parallel; Update/Insert/Delete take the write lock.
package deepdb

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/exact"
	"repro/internal/query"
	"repro/internal/rspn"
)

// DB is a learned DeepDB instance: an RSPN ensemble, the probabilistic
// query engine compiled against it, and (when attached) the live base
// tables that power incremental updates and exact ground-truth execution.
type DB struct {
	mu  sync.RWMutex
	ens *ensemble.Ensemble
	eng *core.Engine
	cfg config
}

// Learn builds a DB over the schema's CSV files in dataDir (one
// <table>.csv per schema table, with a header row). Cancelling ctx aborts
// learning — including mid-RSPN — with ctx.Err().
func Learn(ctx context.Context, s *Schema, dataDir string, opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	data, err := LoadCSVDir(s, dataDir)
	if err != nil {
		return nil, err
	}
	return learn(ctx, s, data, cfg)
}

// LearnDataset is Learn over already-loaded base tables. The tables are
// augmented in place with synthetic tuple-factor columns.
func LearnDataset(ctx context.Context, s *Schema, data Dataset, opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	return learn(ctx, s, data, cfg)
}

func learn(ctx context.Context, s *Schema, data Dataset, cfg config) (*DB, error) {
	ens, err := ensemble.Build(ctx, s, data, cfg.ens)
	if err != nil {
		return nil, err
	}
	return newDB(ens, cfg), nil
}

// Open reads a model written by Save. The model file is a self-contained
// serving artifact: it carries per-table cardinalities and column metadata
// captured at learning time, so without any data attached the DB answers
// every query class — single-RSPN cases, multi-RSPN Theorem-2 combination,
// GROUP BY, disjunctions, outer joins — entirely from statistics. Base
// tables may still be reattached from WithDataDir (CSVs located with the
// schema persisted in the model) or WithDataset; they are needed only for
// updates, string-literal predicates (dictionary lookup) and exact
// execution. Model files written before the versioned format are rejected
// with a clear error; re-learn and re-save them.
func Open(ctx context.Context, modelPath string, opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ens, err := ensemble.LoadFile(modelPath, nil)
	if err != nil {
		return nil, err
	}
	data := cfg.dataset
	if data == nil && cfg.dataDir != "" {
		data, err = LoadCSVDir(ens.Schema, cfg.dataDir)
		if err != nil {
			return nil, err
		}
	}
	if data != nil {
		if err := ens.AttachTables(data); err != nil {
			return nil, err
		}
	}
	return newDB(ens, cfg), nil
}

func newDB(ens *ensemble.Ensemble, cfg config) *DB {
	eng := core.New(ens)
	eng.Strategy = cfg.coreStrategy()
	eng.ConfidenceLevel = cfg.confidence
	eng.Parallelism = cfg.parallelism
	return &DB{ens: ens, eng: eng, cfg: cfg}
}

// Save writes the model (ensemble, dependency and per-table statistics,
// schema) to path, atomically (temp file + rename). The base tables are
// not serialized; the persisted statistics are enough to serve queries,
// and Open can reattach the data like a database reopening its files.
func (db *DB) Save(path string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ens.SaveFile(path)
}

// Schema returns the relational metadata the DB was learned over.
func (db *DB) Schema() *Schema { return db.ens.Schema }

// Data returns the attached base tables (nil when the DB was opened
// without data). The returned tables are shared, not copied: mutate them
// only through Insert/Delete/Update.
func (db *DB) Data() Dataset { return db.ens.Tables }

// Describe returns a human-readable summary of the ensemble, including
// the per-table statistics persisted with the model.
func (db *DB) Describe() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ens.Describe()
}

// Models returns the ensemble members. Read-only companions like the
// internal/ml regressors consume these directly.
func (db *DB) Models() []*rspn.RSPN { return db.ens.RSPNs }

// Model returns some RSPN covering the named table (preferring the
// smallest), or nil.
func (db *DB) Model(table string) *rspn.RSPN { return db.ens.RSPNFor(table) }

// Parse compiles the SQL subset DeepDB supports into a structured query,
// resolving string literals through the base tables' dictionaries.
func (db *DB) Parse(sql string) (query.Query, error) {
	return query.Parse(sql, db.resolver())
}

// Query answers an aggregate SQL query approximately, from the model only.
func (db *DB) Query(ctx context.Context, sql string) (Result, error) {
	q, err := db.Parse(sql)
	if err != nil {
		return Result{}, err
	}
	return db.ExecuteQuery(ctx, q)
}

// ExecuteQuery is Query for an already-parsed (or programmatically built)
// structured query.
func (db *DB) ExecuteQuery(ctx context.Context, q query.Query) (Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	res, err := db.eng.ExecuteContext(ctx, q)
	if err != nil {
		return Result{}, err
	}
	return db.wrapResult(q, res), nil
}

// EstimateCardinality estimates COUNT(*) over the query's join with its
// filters — the paper's cardinality-estimation task. Aggregate and
// group-by clauses in the SQL are ignored.
func (db *DB) EstimateCardinality(ctx context.Context, sql string) (Estimate, error) {
	q, err := db.Parse(sql)
	if err != nil {
		return Estimate{}, err
	}
	return db.EstimateCardinalityQuery(ctx, q)
}

// EstimateCardinalityQuery is EstimateCardinality for a structured query.
func (db *DB) EstimateCardinalityQuery(ctx context.Context, q query.Query) (Estimate, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	est, err := db.eng.EstimateCardinalityContext(ctx, q)
	if err != nil {
		return Estimate{}, err
	}
	return db.wrapEstimate(est), nil
}

// Explain renders the execution plan the engine would choose for the SQL
// query — which compilation case applies and which ensemble members answer
// each part — without evaluating it.
func (db *DB) Explain(sql string) (string, error) {
	q, err := db.Parse(sql)
	if err != nil {
		return "", err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.eng.Explain(q)
}

// Exact executes the SQL query exactly against the attached base tables
// (materializing the join), for ground-truth comparison.
func (db *DB) Exact(ctx context.Context, sql string) (Result, error) {
	q, err := db.Parse(sql)
	if err != nil {
		return Result{}, err
	}
	return db.ExactQuery(ctx, q)
}

// ExactQuery is Exact for a structured query.
func (db *DB) ExactQuery(ctx context.Context, q query.Query) (Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.ens.Tables == nil {
		return Result{}, fmt.Errorf("deepdb: no base tables attached (open with WithDataDir or WithDataset)")
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res, err := exact.New(db.ens.Schema, db.ens.Tables).Execute(q)
	if err != nil {
		return Result{}, err
	}
	out := Result{}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, Group{
			Key:      g.Key,
			Labels:   db.decodeKey(q.GroupBy, g.Key),
			Estimate: Estimate{Value: g.Value, CILow: g.Value, CIHigh: g.Value},
		})
	}
	return out, nil
}

// Insert absorbs one new base-table row into the model incrementally
// (Section 5.2 of the paper): no retraining happens. Missing columns
// become NULL.
func (db *DB) Insert(table string, values map[string]Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.ens.Tables == nil {
		return fmt.Errorf("deepdb: no base tables attached (open with WithDataDir or WithDataset)")
	}
	return db.ens.Insert(table, values)
}

// Delete removes the base-table row with the given primary key from the
// model incrementally.
func (db *DB) Delete(table string, pk float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.ens.Tables == nil {
		return fmt.Errorf("deepdb: no base tables attached (open with WithDataDir or WithDataset)")
	}
	return db.ens.Delete(table, pk)
}

// Update applies a batch of row inserts under one write lock, so
// concurrent Query calls never interleave with a half-applied batch. On
// error the rows already absorbed stay applied (there is no rollback);
// the returned error names the failing row index.
func (db *DB) Update(rows ...Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.ens.Tables == nil {
		return fmt.Errorf("deepdb: no base tables attached (open with WithDataDir or WithDataset)")
	}
	for i, r := range rows {
		if err := db.ens.Insert(r.Table, r.Values); err != nil {
			return fmt.Errorf("deepdb: update row %d: %w", i, err)
		}
	}
	return nil
}

// CheckStaleness recomputes pairwise dependencies on the current base
// tables and reports ensemble members whose construction decision would
// change — the paper's trigger for background regeneration. It takes the
// write lock: the recomputation refreshes the ensemble's dependency
// statistics (and draws from its rng), which concurrent queries read.
func (db *DB) CheckStaleness() (map[int]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.ens.Tables == nil {
		return nil, fmt.Errorf("deepdb: no base tables attached (open with WithDataDir or WithDataset)")
	}
	rep, err := db.ens.CheckStaleness()
	if err != nil {
		return nil, err
	}
	return rep.Stale, nil
}

// resolver maps string literals in predicates to dictionary codes of the
// owning base table.
func (db *DB) resolver() query.Resolver {
	return func(column, literal string) (float64, error) {
		if db.ens.Tables == nil {
			return 0, fmt.Errorf("deepdb: string literal %q needs base tables for dictionary lookup", literal)
		}
		for _, t := range db.ens.Tables {
			c := t.Column(column)
			if c == nil {
				continue
			}
			if code := c.Lookup(literal); code >= 0 {
				return float64(code), nil
			}
			return 0, fmt.Errorf("deepdb: value %q not found in column %s", literal, column)
		}
		return 0, fmt.Errorf("deepdb: unknown column %s", column)
	}
}

// wrapResult converts an engine result, decoding group keys.
func (db *DB) wrapResult(q query.Query, res core.AQPResult) Result {
	out := Result{}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, Group{
			Key:    g.Key,
			Labels: db.decodeKey(q.GroupBy, g.Key),
			Estimate: Estimate{
				Value:    g.Estimate.Value,
				Variance: g.Estimate.Variance,
				CILow:    g.CILow,
				CIHigh:   g.CIHigh,
			},
		})
	}
	return out
}

func (db *DB) wrapEstimate(est core.Estimate) Estimate {
	lo, hi := est.ConfidenceInterval(db.eng.ConfidenceLevel)
	return Estimate{Value: est.Value, Variance: est.Variance, CILow: lo, CIHigh: hi}
}

// decodeKey renders each component of a group key, decoding categorical
// codes through the base-table dictionaries when available.
func (db *DB) decodeKey(cols []string, key []float64) []string {
	if len(key) == 0 {
		return nil
	}
	out := make([]string, len(key))
	for i := range key {
		out[i] = fmt.Sprintf("%g", key[i])
		if i >= len(cols) {
			continue
		}
		for _, t := range db.ens.Tables {
			if c := t.Column(cols[i]); c != nil && c.DictSize() > 0 {
				if s := c.Decode(int(key[i])); s != "" {
					out[i] = s
				}
				break
			}
		}
	}
	return out
}
