// Package deepdb is the public facade of this DeepDB reproduction
// (Hilprecht et al., PVLDB 13(7): DeepDB — Learn from Data, not from
// Queries!). It is the one package consumers import: learn an RSPN
// ensemble once over relational data, then serve cardinality estimates and
// approximate aggregate queries from the model — without touching the data
// again — and absorb inserts/deletes incrementally without retraining.
//
//	db, err := deepdb.Learn(ctx, schema, "data/", deepdb.WithBudget(0.5))
//	res, err := db.Query(ctx, "SELECT AVG(price) FROM orders WHERE region = 'EU'")
//	est, err := db.EstimateCardinality(ctx, "SELECT COUNT(*) FROM orders JOIN customers")
//	err = db.Save("model.deepdb")
//	db, err = deepdb.Open(ctx, "model.deepdb", deepdb.WithDataDir("data/"))
//
// Queries run through a compile/execute split: every call compiles (or
// fetches from a bounded LRU plan cache, keyed on normalized query shape)
// a plan that is then executed with the call's literal values. For
// high-QPS serving of a repeated query template, prepare it once:
//
//	stmt, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_amount >= ?")
//	res, err := stmt.Exec(ctx, 100)                       // binds ? = 100
//	batch, err := stmt.ExecBatch(ctx, [][]any{{50}, {90}}) // many bindings, one lock
//
// A *DB is safe for concurrent use: queries run under a read lock and may
// proceed in parallel; Update/Insert/Delete take the write lock and
// invalidate cached plans.
package deepdb

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/exact"
	"repro/internal/query"
	"repro/internal/rspn"
)

// DB is a learned DeepDB instance: an RSPN ensemble, the probabilistic
// query engine compiled against it, and (when attached) the live base
// tables that power incremental updates and exact ground-truth execution.
type DB struct {
	mu  sync.RWMutex
	ens *ensemble.Ensemble
	eng *core.Engine
	cfg config
	// plans caches compiled query plans by normalized shape (nil when
	// disabled via WithPlanCacheSize(0)).
	plans *planCache
	// gen counts model mutations (Insert/Delete/Update/CheckStaleness);
	// cached plans are tagged with it and recompiled when it moves.
	// Written under mu's write lock, read under its read lock.
	gen uint64
}

// Learn builds a DB over the schema's CSV files in dataDir (one
// <table>.csv per schema table, with a header row). Cancelling ctx aborts
// learning — including mid-RSPN — with ctx.Err().
func Learn(ctx context.Context, s *Schema, dataDir string, opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	data, err := LoadCSVDir(s, dataDir)
	if err != nil {
		return nil, err
	}
	return learn(ctx, s, data, cfg)
}

// LearnDataset is Learn over already-loaded base tables. The tables are
// augmented in place with synthetic tuple-factor columns.
func LearnDataset(ctx context.Context, s *Schema, data Dataset, opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	return learn(ctx, s, data, cfg)
}

func learn(ctx context.Context, s *Schema, data Dataset, cfg config) (*DB, error) {
	ens, err := ensemble.Build(ctx, s, data, cfg.ens)
	if err != nil {
		return nil, err
	}
	return newDB(ens, cfg), nil
}

// Open reads a model written by Save. The model file is a self-contained
// serving artifact: it carries per-table cardinalities, column metadata
// and categorical dictionaries captured at learning time, so without any
// data attached the DB answers every query class — single-RSPN cases,
// multi-RSPN Theorem-2 combination, GROUP BY (with decoded labels),
// disjunctions, outer joins, string-literal predicates — entirely from the
// model. Base tables may still be reattached from WithDataDir (CSVs
// located with the schema persisted in the model) or WithDataset; they are
// needed only for updates and exact execution. Model files written in an
// older format version are rejected with a clear error; re-learn and
// re-save them.
func Open(ctx context.Context, modelPath string, opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ens, err := ensemble.LoadFile(modelPath, nil)
	if err != nil {
		return nil, err
	}
	data := cfg.dataset
	if data == nil && cfg.dataDir != "" {
		data, err = LoadCSVDir(ens.Schema, cfg.dataDir)
		if err != nil {
			return nil, err
		}
	}
	if data != nil {
		if err := ens.AttachTables(data); err != nil {
			return nil, err
		}
	}
	return newDB(ens, cfg), nil
}

func newDB(ens *ensemble.Ensemble, cfg config) *DB {
	eng := core.New(ens)
	eng.Strategy = cfg.coreStrategy()
	eng.ConfidenceLevel = cfg.confidence
	eng.Parallelism = cfg.parallelism
	return &DB{ens: ens, eng: eng, cfg: cfg, plans: newPlanCache(cfg.planCache)}
}

// planFor returns the compiled plan for the query, consulting the plan
// cache under the current model generation. shape may be "" (computed on
// demand); prepared statements pass their precomputed key. Callers must
// hold the read lock.
func (db *DB) planFor(shape string, q query.Query) (*core.Plan, error) {
	if db.plans == nil {
		return db.eng.Compile(q)
	}
	if shape == "" {
		shape = q.ShapeKey()
	}
	if p := db.plans.get(shape, db.gen); p != nil {
		return p, nil
	}
	p, err := db.eng.Compile(q)
	if err != nil {
		return nil, err
	}
	db.plans.put(shape, db.gen, p)
	return p, nil
}

// PlanCacheLen reports how many compiled plans are currently cached.
func (db *DB) PlanCacheLen() int {
	if db.plans == nil {
		return 0
	}
	return db.plans.size()
}

// Save writes the model (ensemble, dependency and per-table statistics,
// schema) to path, atomically (temp file + rename). The base tables are
// not serialized; the persisted statistics are enough to serve queries,
// and Open can reattach the data like a database reopening its files.
func (db *DB) Save(path string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ens.SaveFile(path)
}

// Schema returns the relational metadata the DB was learned over.
func (db *DB) Schema() *Schema { return db.ens.Schema }

// Data returns the attached base tables (nil when the DB was opened
// without data). The returned tables are shared, not copied: mutate them
// only through Insert/Delete/Update.
func (db *DB) Data() Dataset { return db.ens.Tables }

// Describe returns a human-readable summary of the ensemble, including
// the per-table statistics persisted with the model.
func (db *DB) Describe() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ens.Describe()
}

// Models returns the ensemble members. Read-only companions like the
// internal/ml regressors consume these directly.
func (db *DB) Models() []*rspn.RSPN { return db.ens.RSPNs }

// Model returns some RSPN covering the named table (preferring the
// smallest), or nil.
func (db *DB) Model(table string) *rspn.RSPN { return db.ens.RSPNFor(table) }

// Parse compiles the SQL subset DeepDB supports into a structured query,
// resolving string literals through the dictionaries (live base tables
// when attached, the dictionaries persisted in the model otherwise). `?`
// placeholders parse into parameter markers — see Prepare.
func (db *DB) Parse(sql string) (query.Query, error) {
	// The resolver reads dictionaries that Insert may extend; take the
	// read lock for the parse so it never races a concurrent update.
	db.mu.RLock()
	defer db.mu.RUnlock()
	return query.Parse(sql, db.resolver())
}

// Query answers an aggregate SQL query approximately, from the model only.
// Plans are transparently reused across calls sharing a query shape (same
// tables, filter columns and operators — literal values may differ); pay
// the parse too only once by preparing the statement with Prepare.
func (db *DB) Query(ctx context.Context, sql string, opts ...ExecOption) (Result, error) {
	q, err := db.Parse(sql)
	if err != nil {
		return Result{}, err
	}
	return db.ExecuteQuery(ctx, q, opts...)
}

// ExecuteQuery is Query for an already-parsed (or programmatically built)
// structured query.
func (db *DB) ExecuteQuery(ctx context.Context, q query.Query, opts ...ExecOption) (Result, error) {
	eo := db.execOpts(opts)
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, err := db.planFor("", q)
	if err != nil {
		return Result{}, err
	}
	res, err := p.ExecuteQuery(ctx, eo.core(), q)
	if err != nil {
		return Result{}, err
	}
	return db.wrapResult(q, res), nil
}

// EstimateCardinality estimates COUNT(*) over the query's join with its
// filters — the paper's cardinality-estimation task. Aggregate and
// group-by clauses in the SQL are ignored. Plans are reused like in Query.
func (db *DB) EstimateCardinality(ctx context.Context, sql string, opts ...ExecOption) (Estimate, error) {
	q, err := db.Parse(sql)
	if err != nil {
		return Estimate{}, err
	}
	return db.EstimateCardinalityQuery(ctx, q, opts...)
}

// EstimateCardinalityQuery is EstimateCardinality for a structured query.
func (db *DB) EstimateCardinalityQuery(ctx context.Context, q query.Query, opts ...ExecOption) (Estimate, error) {
	eo := db.execOpts(opts)
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, err := db.planFor("", q)
	if err != nil {
		return Estimate{}, err
	}
	est, err := p.EstimateCardinalityQuery(ctx, q)
	if err != nil {
		return Estimate{}, err
	}
	return wrapEstimate(est, eo.level(db)), nil
}

// Explain renders the execution plan for the SQL query — which compilation
// case applies and which ensemble members answer each part — without
// evaluating it. The output is produced from the same compiled (and
// cached) plan that Query/EstimateCardinality execute.
func (db *DB) Explain(ctx context.Context, sql string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	q, err := db.Parse(sql)
	if err != nil {
		return "", err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, err := db.planFor("", q)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Exact executes the SQL query exactly against the attached base tables
// (materializing the join), for ground-truth comparison.
func (db *DB) Exact(ctx context.Context, sql string) (Result, error) {
	q, err := db.Parse(sql)
	if err != nil {
		return Result{}, err
	}
	return db.ExactQuery(ctx, q)
}

// ExactQuery is Exact for a structured query.
func (db *DB) ExactQuery(ctx context.Context, q query.Query) (Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.ens.Tables == nil {
		return Result{}, fmt.Errorf("deepdb: no base tables attached (open with WithDataDir or WithDataset)")
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res, err := exact.New(db.ens.Schema, db.ens.Tables).Execute(q)
	if err != nil {
		return Result{}, err
	}
	out := Result{}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, Group{
			Key:      g.Key,
			Labels:   db.decodeKey(q.GroupBy, g.Key),
			Estimate: Estimate{Value: g.Value, CILow: g.Value, CIHigh: g.Value},
		})
	}
	return out, nil
}

// Insert absorbs one new base-table row into the model incrementally
// (Section 5.2 of the paper): no retraining happens. Missing columns
// become NULL.
func (db *DB) Insert(table string, values map[string]Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.ens.Tables == nil {
		return fmt.Errorf("deepdb: no base tables attached (open with WithDataDir or WithDataset)")
	}
	db.gen++
	return db.ens.Insert(table, values)
}

// Delete removes the base-table row with the given primary key from the
// model incrementally.
func (db *DB) Delete(table string, pk float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.ens.Tables == nil {
		return fmt.Errorf("deepdb: no base tables attached (open with WithDataDir or WithDataset)")
	}
	db.gen++
	return db.ens.Delete(table, pk)
}

// Update applies a batch of row inserts under one write lock, so
// concurrent Query calls never interleave with a half-applied batch. On
// error the rows already absorbed stay applied (there is no rollback);
// the returned error names the failing row index.
func (db *DB) Update(rows ...Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.ens.Tables == nil {
		return fmt.Errorf("deepdb: no base tables attached (open with WithDataDir or WithDataset)")
	}
	db.gen++
	for i, r := range rows {
		if err := db.ens.Insert(r.Table, r.Values); err != nil {
			return fmt.Errorf("deepdb: update row %d: %w", i, err)
		}
	}
	return nil
}

// CheckStaleness recomputes pairwise dependencies on the current base
// tables and reports ensemble members whose construction decision would
// change — the paper's trigger for background regeneration. It takes the
// write lock: the recomputation refreshes the ensemble's dependency
// statistics (and draws from its rng), which concurrent queries read.
func (db *DB) CheckStaleness() (map[int]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.ens.Tables == nil {
		return nil, fmt.Errorf("deepdb: no base tables attached (open with WithDataDir or WithDataset)")
	}
	// The recomputation refreshes dependency statistics that plan choice
	// reads; invalidate cached plans.
	db.gen++
	rep, err := db.ens.CheckStaleness()
	if err != nil {
		return nil, err
	}
	return rep.Stale, nil
}

// resolver maps string literals in predicates to dictionary codes —
// through the live base tables when attached, through the dictionaries
// persisted in the model (format v3) otherwise, so string predicates work
// in model-only serving.
func (db *DB) resolver() query.Resolver {
	return func(column, literal string) (float64, error) {
		code, found, known := db.ens.ResolveLabel(column, literal)
		if !known {
			return 0, fmt.Errorf("deepdb: unknown column %s", column)
		}
		if !found {
			return 0, fmt.Errorf("deepdb: value %q not found in column %s", literal, column)
		}
		return code, nil
	}
}

// wrapResult converts an engine result, decoding group keys.
func (db *DB) wrapResult(q query.Query, res core.AQPResult) Result {
	out := Result{}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, Group{
			Key:    g.Key,
			Labels: db.decodeKey(q.GroupBy, g.Key),
			Estimate: Estimate{
				Value:    g.Estimate.Value,
				Variance: g.Estimate.Variance,
				CILow:    g.CILow,
				CIHigh:   g.CIHigh,
			},
		})
	}
	return out
}

func wrapEstimate(est core.Estimate, level float64) Estimate {
	lo, hi := est.ConfidenceInterval(level)
	return Estimate{Value: est.Value, Variance: est.Variance, CILow: lo, CIHigh: hi}
}

// decodeKey renders each component of a group key, decoding categorical
// codes through the dictionaries (live base tables when attached, the
// model's persisted dictionaries otherwise).
func (db *DB) decodeKey(cols []string, key []float64) []string {
	if len(key) == 0 {
		return nil
	}
	out := make([]string, len(key))
	for i := range key {
		out[i] = fmt.Sprintf("%g", key[i])
		if i >= len(cols) {
			continue
		}
		if s := db.ens.DecodeLabel(cols[i], int(key[i])); s != "" {
			out[i] = s
		}
	}
	return out
}
