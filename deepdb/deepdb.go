// Package deepdb is the public facade of this DeepDB reproduction
// (Hilprecht et al., PVLDB 13(7): DeepDB — Learn from Data, not from
// Queries!). It is the one package consumers import: learn an RSPN
// ensemble once over relational data, then serve cardinality estimates and
// approximate aggregate queries from the model — without touching the data
// again — and absorb inserts/deletes incrementally without retraining.
//
//	db, err := deepdb.Learn(ctx, schema, "data/", deepdb.WithBudget(0.5))
//	res, err := db.Query(ctx, "SELECT AVG(price) FROM orders WHERE region = 'EU'")
//	est, err := db.EstimateCardinality(ctx, "SELECT COUNT(*) FROM orders JOIN customers")
//	err = db.Save("model.deepdb")
//	db, err = deepdb.Open(ctx, "model.deepdb", deepdb.WithDataDir("data/"))
//
// Queries run through a compile/execute split: every call compiles (or
// fetches from a bounded LRU plan cache, keyed on normalized query shape)
// a plan that is then executed with the call's literal values. For
// high-QPS serving of a repeated query template, prepare it once:
//
//	stmt, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_amount >= ?")
//	res, err := stmt.Exec(ctx, 100)                       // binds ? = 100
//	batch, err := stmt.ExecBatch(ctx, [][]any{{50}, {90}}) // many bindings, one snapshot
//
// # Snapshot isolation and updates
//
// A *DB serves queries from immutable published snapshots: every
// Query/EstimateCardinality/Prepare/Exec loads the current snapshot with
// one atomic pointer read and runs entirely against it, so reads never
// block — not on each other and not on writes. Insert/Delete/Update
// enqueue their mutations by default; a background applier coalesces the
// queue into batches, applies each batch to a private copy-on-write clone
// (only the touched tables and models are copied) and atomically publishes
// the result as the next snapshot. Mutations are applied in submission
// order; Flush blocks until everything enqueued before it is published
// (read-your-writes) and reports apply errors the asynchronous path
// deferred. WithSyncUpdates restores the old blocking-write semantics, and
// after a Flush the two are bit-identical. UpdateStats exposes queue
// depth, apply lag and batch counters; Close drains the pipeline.
package deepdb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/exact"
	"repro/internal/pipeline"
	"repro/internal/query"
	"repro/internal/rspn"
	"repro/internal/wal"
)

// snapshot is one immutable published serving view: an ensemble state, the
// engine compiled against it, and the generation it was published at.
// Snapshots are never mutated after publication — updates clone and
// publish a successor — so any number of readers can use one concurrently
// without coordination, and a reader holding an old snapshot keeps a
// consistent view while newer generations are published.
type snapshot struct {
	ens *ensemble.Ensemble
	eng *core.Engine
	// gen counts publications (update batches, CheckStaleness); cached
	// plans and prepared statements are tagged with it and recompiled when
	// it moves.
	gen uint64
	// ops is the shard-alignment token of a ShardedDB's composed view (the
	// cumulative mutation count of the shards the view was composed at);
	// always 0 on a plain DB's snapshots.
	ops uint64
}

// DB is a learned DeepDB instance: an RSPN ensemble, the probabilistic
// query engine compiled against it, and (when attached) the live base
// tables that power incremental updates and exact ground-truth execution.
// All methods are safe for concurrent use; queries never block on updates.
type DB struct {
	// snap is the current published snapshot; the read path loads it once
	// per call and never takes a lock.
	snap atomic.Pointer[snapshot]
	cfg  config
	// plans caches compiled query plans by normalized shape (nil when
	// disabled via WithPlanCacheSize(0)), tagged with the snapshot
	// generation they were compiled at.
	plans *planCache
	// resCache caches finished query results and cardinality estimates
	// across calls (nil unless WithResultCacheSize enabled it), keyed on
	// (shape, bound literal values, confidence level) and tagged with the
	// snapshot generation like cached plans.
	resCache *resultCache

	// applyMu serializes everything that mutates model state and
	// publishes snapshots: the background applier, synchronous updates,
	// and CheckStaleness. The read path never touches it.
	applyMu sync.Mutex

	// pipeMu guards lazy creation and shutdown of the update pipeline.
	// Queue items are mutation groups: the rows of one Update call travel
	// as one indivisible item, so the applier may coalesce groups but
	// never splits one across published snapshots.
	pipeMu sync.Mutex
	pipe   *pipeline.Pipeline[updateGroup]
	closed bool

	// wal is the durable write-ahead log (nil without WithWAL). walMu
	// serializes append+enqueue so LSN order equals apply order; applyLSN
	// tracks the highest LSN whose group has been applied and published —
	// the watermark Save checkpoints the log at.
	walMu    sync.Mutex
	wal      *wal.Log
	applyLSN atomic.Uint64

	// verMu guards tableVer, the per-table applied-mutation counters the
	// optimistic re-learn path uses as its consistency token (drift's own
	// counters miss FK factor bumps on One-side tables).
	verMu    sync.Mutex
	tableVer map[string]uint64

	// relearnBusy admits one background re-learn at a time; relearnWG lets
	// Close wait for it. relearnFails/relearnLast record failed attempts
	// for UpdateStats.
	relearnBusy  atomic.Bool
	relearnWG    sync.WaitGroup
	relearnFails atomic.Uint64
	relearnErrMu sync.Mutex
	relearnErr   string

	// durabilityLost latches once a WAL append or fsync has failed; what
	// happens to writes after that is the WithWALErrorPolicy decision.
	// walErrMu/walErr record the cause for UpdateStats and /healthz.
	durabilityLost atomic.Bool
	walErrMu       sync.Mutex
	walErr         string
}

// updateGroup is one pipeline queue item: the mutations of one
// Insert/Delete/Update call plus the WAL position they were logged at
// (0 without a WAL).
type updateGroup struct {
	muts []ensemble.Mutation
	lsn  uint64
}

// ErrQueueFull is returned by Insert/Delete/Update under
// WithNonBlockingUpdates (and by a ShardedDB unconditionally) when the
// update queue has no free slot: the mutation was NOT accepted — not
// logged, not enqueued — and the caller should retry later. Serving
// front-ends map it to 429 + Retry-After. Test with errors.Is.
var ErrQueueFull = pipeline.ErrQueueFull

// ErrDurabilityLost is returned by Insert/Delete/Update once the WAL has
// failed (disk full, I/O error) and the DB runs the default WALFailStop
// policy: the mutation was NOT accepted anywhere and writes stay rejected
// until the process restarts on a healthy disk. Serving front-ends map it
// to 503. Under WALDegradeVolatile writes keep succeeding instead, and
// UpdateStats.DurabilityLost / a "degraded" /healthz carry the warning.
// Test with errors.Is.
var ErrDurabilityLost = errors.New("deepdb: WAL durability lost, writes are not crash-safe")

// Learn builds a DB over the schema's CSV files in dataDir (one
// <table>.csv per schema table, with a header row). Cancelling ctx aborts
// learning — including mid-RSPN — with ctx.Err().
func Learn(ctx context.Context, s *Schema, dataDir string, opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	data, err := LoadCSVDir(s, dataDir)
	if err != nil {
		return nil, err
	}
	return learn(ctx, s, data, cfg)
}

// LearnDataset is Learn over already-loaded base tables. The tables are
// augmented in place with synthetic tuple-factor columns.
func LearnDataset(ctx context.Context, s *Schema, data Dataset, opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	return learn(ctx, s, data, cfg)
}

func learn(ctx context.Context, s *Schema, data Dataset, cfg config) (*DB, error) {
	ens, err := ensemble.Build(ctx, s, data, cfg.ens)
	if err != nil {
		return nil, err
	}
	return newDB(ens, cfg)
}

// Open reads a model written by Save. The model file is a self-contained
// serving artifact: it carries per-table cardinalities, column metadata
// and categorical dictionaries captured at learning time, so without any
// data attached the DB answers every query class — single-RSPN cases,
// multi-RSPN Theorem-2 combination, GROUP BY (with decoded labels),
// disjunctions, outer joins, string-literal predicates — entirely from the
// model. Base tables may still be reattached from WithDataDir (CSVs
// located with the schema persisted in the model) or WithDataset; they are
// needed only for updates and exact execution. Model files written in an
// older format version are rejected with a clear error; re-learn and
// re-save them.
func Open(ctx context.Context, modelPath string, opts ...Option) (*DB, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ens, err := ensemble.LoadFile(modelPath, nil)
	if err != nil {
		return nil, err
	}
	data := cfg.dataset
	if data == nil && cfg.dataDir != "" {
		data, err = LoadCSVDir(ens.Schema, cfg.dataDir)
		if err != nil {
			return nil, err
		}
	}
	if data != nil {
		if err := ens.AttachTables(data); err != nil {
			return nil, err
		}
	}
	return newDB(ens, cfg)
}

func newDB(ens *ensemble.Ensemble, cfg config) (*DB, error) {
	db := &DB{cfg: cfg, plans: newPlanCache(cfg.planCache),
		resCache: newResultCache(cfg.resultCache), tableVer: map[string]uint64{}}
	if ens.Tables != nil {
		// Drift tracking baselines against the pre-replay state, so
		// mutations recovered from the WAL count toward staleness exactly
		// like they did before the crash.
		ens.EnableDrift()
	}
	db.snap.Store(&snapshot{ens: ens, eng: db.newEngine(ens), gen: 0})
	if cfg.walDir != "" {
		if err := db.openWAL(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// newEngine compiles a query engine over one ensemble state with the DB's
// configured strategy and parallelism. Engines are cheap (configuration
// plus a pointer), so every snapshot carries its own.
func (db *DB) newEngine(ens *ensemble.Ensemble) *core.Engine {
	eng := core.New(ens)
	eng.Strategy = db.cfg.coreStrategy()
	eng.ConfidenceLevel = db.cfg.confidence
	eng.Parallelism = db.cfg.parallelism
	return eng
}

// snapshotNow returns the current published serving view.
func (db *DB) snapshotNow() *snapshot { return db.snap.Load() }

// defaultConfidence returns the DB-wide confidence-interval level.
func (db *DB) defaultConfidence() float64 { return db.cfg.confidence }

// results returns the cross-query result cache (nil when disabled).
func (db *DB) results() *resultCache { return db.resCache }

// publishLocked atomically publishes ens as the next snapshot generation.
// Callers must hold applyMu.
func (db *DB) publishLocked(ens *ensemble.Ensemble) {
	cur := db.snap.Load()
	db.snap.Store(&snapshot{ens: ens, eng: db.newEngine(ens), gen: cur.gen + 1})
}

// planFor returns the compiled plan for the query against the given
// snapshot, consulting the plan cache under the snapshot's generation.
// shape may be "" (computed on demand); prepared statements pass their
// precomputed key.
func (db *DB) planFor(s *snapshot, shape string, q query.Query) (*core.Plan, error) {
	if db.plans == nil {
		return s.eng.Compile(q)
	}
	if shape == "" {
		shape = q.ShapeKey()
	}
	if p := db.plans.get(shape, s.gen); p != nil {
		return p, nil
	}
	p, err := s.eng.Compile(q)
	if err != nil {
		return nil, err
	}
	db.plans.put(shape, s.gen, p)
	return p, nil
}

// PlanCacheLen reports how many compiled plans are currently cached.
func (db *DB) PlanCacheLen() int {
	if db.plans == nil {
		return 0
	}
	return db.plans.size()
}

// ResultCacheLen reports how many query results and cardinality estimates
// are currently cached (0 unless WithResultCacheSize enabled the cache).
func (db *DB) ResultCacheLen() int {
	if db.resCache == nil {
		return 0
	}
	return db.resCache.size()
}

// Save writes the model (ensemble, dependency and per-table statistics,
// schema) to path, atomically (temp file + rename). Pending asynchronous
// updates are flushed first, so the file reflects every mutation enqueued
// before the call. The base tables are not serialized; the persisted
// statistics are enough to serve queries, and Open can reattach the data
// like a database reopening its files.
// With a WAL attached, a successful Save also checkpoints the log at the
// applied watermark: the save covers everything up to that LSN, so replay
// skips those records from now on and segments they fully occupy are
// deleted.
func (db *DB) Save(path string) error {
	if err := db.Flush(context.Background()); err != nil {
		return err
	}
	// Read the watermark before serializing: the snapshot saved below
	// contains at least everything applied up to it.
	lsn := db.applyLSN.Load()
	if err := db.snapshotNow().ens.SaveFile(path); err != nil {
		return err
	}
	if db.wal != nil {
		return db.wal.Checkpoint(lsn)
	}
	return nil
}

// Reload hot-swaps the serving model with the one in modelPath — e.g. a
// re-learned artifact produced offline — without any read downtime: the
// new model travels through the same snapshot-publication path as update
// batches, so in-flight queries finish on the old snapshot and later ones
// see the new generation atomically. Pending asynchronous updates are
// flushed into the old model first (they were acked against it); the
// current base tables, if any, are carried over so updates and exact
// execution keep working. On any error the old model keeps serving.
func (db *DB) Reload(modelPath string) error {
	ens, err := ensemble.LoadFile(modelPath, nil)
	if err != nil {
		return err
	}
	if err := db.Flush(context.Background()); err != nil {
		return err
	}
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	if tabs := db.snap.Load().ens.Tables; tabs != nil {
		if err := ens.AttachTables(tabs); err != nil {
			return err
		}
		// Drift restarts from the fresh model's state: it IS the re-learned
		// baseline staleness is measured against.
		ens.EnableDrift()
	}
	db.publishLocked(ens)
	return nil
}

// Schema returns the relational metadata the DB was learned over.
func (db *DB) Schema() *Schema { return db.snapshotNow().ens.Schema }

// Data returns the base tables of the current snapshot (nil when the DB
// was opened without data). The returned tables are shared with the
// serving path and must be treated as read-only: mutate the database only
// through Insert/Delete/Update.
func (db *DB) Data() Dataset { return db.snapshotNow().ens.Tables }

// Describe returns a human-readable summary of the ensemble, including
// the per-table statistics persisted with the model.
func (db *DB) Describe() string {
	return db.snapshotNow().ens.Describe()
}

// Models returns the current snapshot's ensemble members. Read-only
// companions like the internal/ml regressors consume these directly; they
// are immutable (updates publish fresh members instead of mutating).
func (db *DB) Models() []*rspn.RSPN { return db.snapshotNow().ens.RSPNs }

// Model returns some RSPN covering the named table (preferring the
// smallest), or nil.
func (db *DB) Model(table string) *rspn.RSPN { return db.snapshotNow().ens.RSPNFor(table) }

// Generation returns the current snapshot's publication counter. It moves
// once per applied update batch (not per row) and on CheckStaleness.
func (db *DB) Generation() uint64 { return db.snapshotNow().gen }

// Parse compiles the SQL subset DeepDB supports into a structured query,
// resolving string literals through the dictionaries (live base tables
// when attached, the dictionaries persisted in the model otherwise). `?`
// placeholders parse into parameter markers — see Prepare.
func (db *DB) Parse(sql string) (query.Query, error) {
	return query.Parse(sql, resolver(db.snapshotNow().ens))
}

// ResolveLabel maps a string literal to its dictionary code on the given
// column — the encoding Insert values and bound string parameters use.
func (db *DB) ResolveLabel(column, literal string) (float64, error) {
	return resolver(db.snapshotNow().ens)(column, literal)
}

// Query answers an aggregate SQL query approximately, from the model only.
// Plans are transparently reused across calls sharing a query shape (same
// tables, filter columns and operators — literal values may differ); pay
// the parse too only once by preparing the statement with Prepare.
func (db *DB) Query(ctx context.Context, sql string, opts ...ExecOption) (Result, error) {
	s := db.snapshotNow()
	q, err := query.Parse(sql, resolver(s.ens))
	if err != nil {
		return Result{}, err
	}
	return executeQueryOn(ctx, db, s, q, opts)
}

// ExecuteQuery is Query for an already-parsed (or programmatically built)
// structured query.
func (db *DB) ExecuteQuery(ctx context.Context, q query.Query, opts ...ExecOption) (Result, error) {
	return executeQueryOn(ctx, db, db.snapshotNow(), q, opts)
}

func executeQueryOn(ctx context.Context, h stmtHost, s *snapshot, q query.Query, opts []ExecOption) (Result, error) {
	return executeQueryShaped(ctx, h, s, "", q, resolveExec(opts))
}

// executeQueryShaped is the shared execution path of Query/ExecuteQuery and
// Stmt.Exec: result-cache lookup, plan lookup, execution, store. shape may
// be "" (computed on demand); prepared statements pass their precomputed
// key. Cache hits return without touching the models and are bit-identical
// to executing (the cached value IS an execution's value).
func executeQueryShaped(ctx context.Context, h stmtHost, s *snapshot, shape string, q query.Query, eo execOpts) (Result, error) {
	rc := h.results()
	var key []byte
	if rc != nil {
		if shape == "" {
			shape = q.ShapeKey()
		}
		key = resultKey(nsQuery, shape, q, eo.levelOr(h.defaultConfidence()))
		if res, ok := rc.getResult(key, s.gen); ok {
			return res, nil
		}
	}
	p, err := h.planFor(s, shape, q)
	if err != nil {
		return Result{}, err
	}
	res, err := p.ExecuteQuery(ctx, eo.core(), q)
	if err != nil {
		return Result{}, err
	}
	out := wrapResult(s.ens, q, res)
	if rc != nil {
		rc.putResult(key, s.gen, out)
	}
	return out, nil
}

// EstimateCardinality estimates COUNT(*) over the query's join with its
// filters — the paper's cardinality-estimation task. Aggregate and
// group-by clauses in the SQL are ignored. Plans are reused like in Query.
func (db *DB) EstimateCardinality(ctx context.Context, sql string, opts ...ExecOption) (Estimate, error) {
	s := db.snapshotNow()
	q, err := query.Parse(sql, resolver(s.ens))
	if err != nil {
		return Estimate{}, err
	}
	return estimateCardinalityOn(ctx, db, s, q, opts)
}

// EstimateCardinalityQuery is EstimateCardinality for a structured query.
func (db *DB) EstimateCardinalityQuery(ctx context.Context, q query.Query, opts ...ExecOption) (Estimate, error) {
	return estimateCardinalityOn(ctx, db, db.snapshotNow(), q, opts)
}

func estimateCardinalityOn(ctx context.Context, h stmtHost, s *snapshot, q query.Query, opts []ExecOption) (Estimate, error) {
	return estimateCardinalityShaped(ctx, h, s, "", q, resolveExec(opts))
}

// estimateCardinalityShaped is the shared cardinality path of
// EstimateCardinality and Stmt.Estimate, with the same result-cache
// protocol as executeQueryShaped under the estimate namespace.
func estimateCardinalityShaped(ctx context.Context, h stmtHost, s *snapshot, shape string, q query.Query, eo execOpts) (Estimate, error) {
	level := eo.levelOr(h.defaultConfidence())
	rc := h.results()
	var key []byte
	if rc != nil {
		if shape == "" {
			shape = q.ShapeKey()
		}
		key = resultKey(nsEstimate, shape, q, level)
		if est, ok := rc.getEstimate(key, s.gen); ok {
			return est, nil
		}
	}
	p, err := h.planFor(s, shape, q)
	if err != nil {
		return Estimate{}, err
	}
	est, err := p.EstimateCardinalityQuery(ctx, q)
	if err != nil {
		return Estimate{}, err
	}
	out := wrapEstimate(est, level)
	if rc != nil {
		rc.putEstimate(key, s.gen, out)
	}
	return out, nil
}

// Explain renders the execution plan for the SQL query — which compilation
// case applies and which ensemble members answer each part — without
// evaluating it. The output is produced from the same compiled (and
// cached) plan that Query/EstimateCardinality execute.
func (db *DB) Explain(ctx context.Context, sql string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	s := db.snapshotNow()
	q, err := query.Parse(sql, resolver(s.ens))
	if err != nil {
		return "", err
	}
	p, err := db.planFor(s, "", q)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Exact executes the SQL query exactly against the attached base tables
// (materializing the join), for ground-truth comparison. It sees the
// current snapshot's tables; Flush first for read-your-writes.
func (db *DB) Exact(ctx context.Context, sql string) (Result, error) {
	s := db.snapshotNow()
	q, err := query.Parse(sql, resolver(s.ens))
	if err != nil {
		return Result{}, err
	}
	return exactOn(ctx, s, q)
}

// ExactQuery is Exact for a structured query.
func (db *DB) ExactQuery(ctx context.Context, q query.Query) (Result, error) {
	return exactOn(ctx, db.snapshotNow(), q)
}

func exactOn(ctx context.Context, s *snapshot, q query.Query) (Result, error) {
	if s.ens.Tables == nil {
		return Result{}, errNoData()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res, err := exact.New(s.ens.Schema, s.ens.Tables).ExecuteContext(ctx, q)
	if err != nil {
		return Result{}, err
	}
	out := Result{}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, Group{
			Key:      g.Key,
			Labels:   decodeKey(s.ens, q.GroupBy, g.Key),
			Estimate: Estimate{Value: g.Value, CILow: g.Value, CIHigh: g.Value},
		})
	}
	return out, nil
}

// ---- updates ----

// Insert absorbs one new base-table row into the model incrementally
// (Section 5.2 of the paper): no retraining happens. Missing columns
// become NULL. By default the mutation is enqueued and applied by the
// background pipeline — it becomes visible to queries when its batch's
// snapshot is published, and apply errors are reported by the next Flush.
// Under WithSyncUpdates it is applied and published before returning.
func (db *DB) Insert(table string, values map[string]Value) error {
	return db.mutate(ensemble.Mutation{Op: ensemble.OpInsert, Table: table, Values: values})
}

// Delete removes the base-table row with the given primary key from the
// model incrementally. Asynchronous like Insert: a missing row is an apply
// error reported by the next Flush (or immediately under WithSyncUpdates).
func (db *DB) Delete(table string, pk float64) error {
	return db.mutate(ensemble.Mutation{Op: ensemble.OpDelete, Table: table, PK: pk})
}

// Update applies a batch of row inserts. The rows travel through the
// pipeline as one indivisible group (or apply under one lock with
// WithSyncUpdates): queries never observe a half-applied Update — every
// published snapshot contains the whole group or none of it. A failing
// row does not block the others and there is no rollback; under
// WithSyncUpdates the returned error indexes the failing row, on the
// asynchronous path Flush reports it with its position in the applied
// batch (which may include coalesced neighbors) and the underlying
// cause.
func (db *DB) Update(rows ...Row) error {
	muts := make([]ensemble.Mutation, len(rows))
	for i, r := range rows {
		muts[i] = ensemble.Mutation{Op: ensemble.OpInsert, Table: r.Table, Values: r.Values}
	}
	return db.mutateAll(muts)
}

func (db *DB) mutate(m ensemble.Mutation) error {
	return db.mutateAll([]ensemble.Mutation{m})
}

func (db *DB) mutateAll(muts []ensemble.Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	if db.snapshotNow().ens.Tables == nil {
		return errNoData()
	}
	db.pipeMu.Lock()
	closed := db.closed
	db.pipeMu.Unlock()
	if closed {
		return errClosed()
	}
	if db.cfg.syncUpdates {
		return db.mutateSync(muts)
	}
	pipe, err := db.pipeline()
	if err != nil {
		return err
	}
	if db.wal == nil {
		// One group per call: the applier never splits it across snapshots.
		if db.cfg.nonBlocking {
			return pipe.TryEnqueue(updateGroup{muts: muts})
		}
		return pipe.Enqueue(updateGroup{muts: muts})
	}
	// Log, then enqueue, under one lock: LSN order must equal apply order
	// or replay would reproduce a different state. Enqueue may block on a
	// full queue; the applier drains without walMu, so this cannot deadlock.
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if db.cfg.nonBlocking && !pipe.HasCapacity() {
		// Shed BEFORE the append: a record logged but rejected with
		// ErrQueueFull would still replay after a restart, silently
		// re-applying a write the caller was told to retry. Checking under
		// walMu keeps the decision ordered with concurrent writers; the
		// reserved slot can only be taken by the applier draining (fine) or
		// a Flush barrier (blocks briefly, never sheds spuriously).
		return ErrQueueFull
	}
	if db.durabilityLost.Load() {
		return db.mutateDegradedLocked(pipe, muts)
	}
	lsn, err := db.wal.Append(wal.EncodeMutations(muts))
	if err != nil {
		db.latchWALError(err)
		return db.mutateDegradedLocked(pipe, muts)
	}
	return pipe.Enqueue(updateGroup{muts: muts, lsn: lsn})
}

// mutateDegradedLocked is the write path once WAL durability is lost
// (walMu held, capacity already checked). WALFailStop rejects the write;
// WALDegradeVolatile admits it to the in-memory pipeline only — the
// health surfaces already latched the loss loudly, and the group carries
// no LSN so a post-restart replay stops at the last durable record.
func (db *DB) mutateDegradedLocked(pipe *pipeline.Pipeline[updateGroup], muts []ensemble.Mutation) error {
	if db.cfg.walPolicy != WALDegradeVolatile {
		return fmt.Errorf("%w: %s", ErrDurabilityLost, db.lastWALError())
	}
	//deepdb:walordered durability already lost and latched; volatile-by-policy groups get no LSN, so replay order is unaffected
	return pipe.Enqueue(updateGroup{muts: muts})
}

// latchWALError records the first WAL failure and flips the DB into its
// degraded-durability state.
func (db *DB) latchWALError(err error) {
	db.walErrMu.Lock()
	if db.walErr == "" {
		db.walErr = err.Error()
	}
	db.walErrMu.Unlock()
	db.durabilityLost.Store(true)
}

// lastWALError renders the latched WAL failure ("" while healthy).
func (db *DB) lastWALError() string {
	db.walErrMu.Lock()
	defer db.walErrMu.Unlock()
	return db.walErr
}

// mutateSync is the WithSyncUpdates write path: log (when a WAL is
// attached), apply, publish, then check the re-learn trigger — all before
// returning. walMu is held across append+apply so concurrent synchronous
// writers reach the log and the model in the same order.
func (db *DB) mutateSync(muts []ensemble.Mutation) error {
	var lsn uint64
	if db.wal != nil {
		db.walMu.Lock()
		defer db.walMu.Unlock()
		if db.durabilityLost.Load() {
			if db.cfg.walPolicy != WALDegradeVolatile {
				return fmt.Errorf("%w: %s", ErrDurabilityLost, db.lastWALError())
			}
		} else {
			var err error
			lsn, err = db.wal.Append(wal.EncodeMutations(muts))
			if err != nil {
				db.latchWALError(err)
				if db.cfg.walPolicy != WALDegradeVolatile {
					return fmt.Errorf("%w: %w", ErrDurabilityLost, err)
				}
				lsn = 0 // volatile by policy: apply without a durable record
			}
		}
	}
	db.applyMu.Lock()
	err := db.applyLocked(muts)
	db.storeApplyLSN(lsn)
	db.applyMu.Unlock()
	db.maybeRelearn()
	return err
}

// applyLocked clones the touched part of the current snapshot, applies the
// batch to the clone and publishes it. A partially failed batch is still
// published — the mutations that succeeded stay applied — but a batch in
// which nothing applied leaves the current snapshot (and its generation,
// and with it every cached plan) in place: the clone would be
// bit-identical, so publishing it would only thrash plan caches. Callers
// must hold applyMu.
func (db *DB) applyLocked(muts []ensemble.Mutation) error {
	cur := db.snap.Load()
	next := cur.ens.CloneForUpdate(muts)
	applied, err := next.Apply(muts)
	if applied > 0 {
		db.publishLocked(next)
		db.bumpVersions(next.TouchedTables(muts))
	}
	return err
}

// bumpVersions advances the per-table applied-mutation counters; the
// optimistic re-learn path compares them before hot-swapping a member.
func (db *DB) bumpVersions(tables map[string]bool) {
	db.verMu.Lock()
	for t := range tables {
		db.tableVer[t]++
	}
	db.verMu.Unlock()
}

// versionsOf snapshots the counters of the given tables, in order.
func (db *DB) versionsOf(tables []string) []uint64 {
	out := make([]uint64, len(tables))
	db.verMu.Lock()
	for i, t := range tables {
		out[i] = db.tableVer[t]
	}
	db.verMu.Unlock()
	return out
}

// storeApplyLSN advances applyLSN monotonically (concurrent synchronous
// writers may apply out of LSN order; the watermark must never move back —
// a checkpoint at a too-high LSN would drop unapplied records).
func (db *DB) storeApplyLSN(lsn uint64) {
	for {
		cur := db.applyLSN.Load()
		if lsn <= cur || db.applyLSN.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// pipeline lazily starts the background applier.
func (db *DB) pipeline() (*pipeline.Pipeline[updateGroup], error) {
	db.pipeMu.Lock()
	defer db.pipeMu.Unlock()
	if db.closed {
		return nil, errClosed()
	}
	if db.pipe == nil {
		db.pipe = pipeline.New(db.cfg.queueSize, db.cfg.maxBatch, func(groups []updateGroup) error {
			n := 0
			var last uint64
			for _, g := range groups {
				n += len(g.muts)
				if g.lsn > last {
					last = g.lsn
				}
			}
			muts := make([]ensemble.Mutation, 0, n)
			for _, g := range groups {
				muts = append(muts, g.muts...)
			}
			db.applyMu.Lock()
			err := db.applyLocked(muts)
			db.storeApplyLSN(last)
			db.applyMu.Unlock()
			db.maybeRelearn()
			return err
		})
	}
	return db.pipe, nil
}

// Flush blocks until every mutation enqueued before the call has been
// applied and published — after Flush returns, queries (and Save, Exact,
// Data) observe those writes, with results bit-identical to the
// WithSyncUpdates path. It returns the first apply error deferred by the
// asynchronous path since the previous Flush. A no-op under
// WithSyncUpdates or when nothing was ever enqueued.
func (db *DB) Flush(ctx context.Context) error {
	db.pipeMu.Lock()
	pipe := db.pipe
	db.pipeMu.Unlock()
	if pipe == nil {
		return nil
	}
	return pipe.Flush(ctx)
}

// Close drains and stops the background update pipeline (waiting at most
// the WithCloseTimeout bound, 30s by default), waits for any in-flight
// background re-learn, syncs and closes the WAL, and returns the first
// undelivered apply error (or the drain-timeout error; with a WAL the
// undrained queue remains recoverable by the next Open). The DB remains
// queryable afterwards (the published snapshot stays valid); further
// updates fail. Close is idempotent — the second and later calls are
// no-ops returning nil.
func (db *DB) Close() error {
	db.pipeMu.Lock()
	if db.closed {
		db.pipeMu.Unlock()
		return nil
	}
	db.closed = true
	pipe := db.pipe
	db.pipeMu.Unlock()
	var err error
	if pipe != nil {
		err = pipe.CloseTimeout(db.cfg.closeTimeout)
	}
	db.relearnWG.Wait()
	if db.wal != nil {
		if werr := db.wal.Close(); err == nil {
			err = werr
		}
	}
	return err
}

// UpdateStats is a point-in-time view of the update pipeline, for
// observability (the serve front-end reports it in /healthz).
type UpdateStats struct {
	// Generation is the current snapshot's publication counter.
	Generation uint64
	// SyncUpdates reports whether the DB applies updates synchronously
	// (WithSyncUpdates); the queue fields below stay zero then.
	SyncUpdates bool
	// QueueDepth is the number of update operations waiting in the queue.
	QueueDepth int
	// Enqueued/Applied count update operations accepted/applied — each
	// Insert/Delete is one operation, an Update(rows...) call is one
	// operation regardless of row count. Batches counts published update
	// batches (Applied/Batches = realized coalescing).
	Enqueued uint64
	Applied  uint64
	Batches  uint64
	// Errors counts failed apply batches; LastError renders the most
	// recent failure.
	Errors    uint64
	LastError string
	// LastBatch is the size of the most recently applied batch,
	// LastApplyDuration how long applying it took, and ApplyLag the
	// enqueue-to-publish latency of that batch's oldest mutation.
	LastBatch         int
	LastApplyDuration time.Duration
	ApplyLag          time.Duration
	// WAL describes the write-ahead log (nil without WithWAL).
	WAL *WALStats
	// DurabilityLost reports that the WAL has failed: under WALFailStop
	// writes are being rejected, under WALDegradeVolatile they are accepted
	// into memory only. LastWALError renders the failure that tripped it.
	DurabilityLost bool
	LastWALError   string
	// PlanCacheHits/PlanCacheMisses count plan-cache lookups (a
	// stale-generation entry counts as a miss); PlanCacheSize is the
	// current entry count. All zero with WithPlanCacheSize(0).
	PlanCacheHits   uint64
	PlanCacheMisses uint64
	PlanCacheSize   int
	// ResultCacheHits/ResultCacheMisses/ResultCacheEvictions count
	// result-cache lookups and LRU/stale-generation evictions;
	// ResultCacheSize is the current entry count. All zero unless
	// WithResultCacheSize enabled the cache.
	ResultCacheHits      uint64
	ResultCacheMisses    uint64
	ResultCacheEvictions uint64
	ResultCacheSize      int
	// Drift lists per-member staleness (nil when drift tracking is off —
	// i.e. no base tables attached); Relearns counts completed background
	// re-learn hot-swaps, RelearnErrors failed attempts (LastRelearnError
	// renders the most recent failure).
	Drift            []DriftStat
	Relearns         uint64
	RelearnErrors    uint64
	LastRelearnError string
}

// WALStats describes the write-ahead log inside UpdateStats.
type WALStats struct {
	// Dir is the log directory, Durability the fsync policy.
	Dir        string
	Durability string
	// LastLSN is the highest logged position, AppliedLSN the highest
	// applied-and-published one (their gap is the recovery backlog), and
	// CheckpointLSN the persisted save watermark.
	LastLSN       uint64
	AppliedLSN    uint64
	CheckpointLSN uint64
	// Appended/Synced/Replayed/TruncatedSegments count this session's log
	// activity; Segments and SizeBytes are the on-disk footprint.
	Appended          uint64
	Synced            uint64
	Replayed          uint64
	TruncatedSegments uint64
	Segments          int
	SizeBytes         int64
}

// DriftStat is one ensemble member's staleness reading inside UpdateStats.
type DriftStat struct {
	// Tables is the member's table set.
	Tables []string
	// Mutated counts mutations on those tables since the member's baseline;
	// MutatedFraction normalizes by the baseline row count.
	Mutated         uint64
	MutatedFraction float64
	// MaxShift is the largest σ-normalized column-mean shift since the
	// baseline, attained on ShiftColumn.
	MaxShift    float64
	ShiftColumn string
	// Relearns counts completed re-learns of this member.
	Relearns uint64
}

// fillCacheStats copies the plan- and result-cache counters into a stats
// snapshot (shared by DB.UpdateStats and ShardedDB.UpdateStats).
func fillCacheStats(out *UpdateStats, plans *planCache, results *resultCache) {
	if plans != nil {
		out.PlanCacheHits, out.PlanCacheMisses = plans.stats()
		out.PlanCacheSize = plans.size()
	}
	if results != nil {
		out.ResultCacheHits, out.ResultCacheMisses, out.ResultCacheEvictions = results.stats()
		out.ResultCacheSize = results.size()
	}
}

// UpdateStats reports the update pipeline's counters.
func (db *DB) UpdateStats() UpdateStats {
	out := UpdateStats{Generation: db.Generation(), SyncUpdates: db.cfg.syncUpdates}
	fillCacheStats(&out, db.plans, db.resCache)
	if db.wal != nil {
		ws := db.wal.Stats()
		out.WAL = &WALStats{
			Dir:               db.cfg.walDir,
			Durability:        db.cfg.durability.String(),
			LastLSN:           ws.LastLSN,
			AppliedLSN:        db.applyLSN.Load(),
			CheckpointLSN:     ws.CheckpointLSN,
			Appended:          ws.Appended,
			Synced:            ws.Synced,
			Replayed:          ws.Replayed,
			TruncatedSegments: ws.TruncatedSegments,
			Segments:          ws.Segments,
			SizeBytes:         ws.SizeBytes,
		}
		out.DurabilityLost = db.durabilityLost.Load()
		out.LastWALError = db.lastWALError()
	}
	if d := db.snapshotNow().ens.Drift; d != nil {
		for _, sc := range d.Scores() {
			out.Drift = append(out.Drift, DriftStat{
				Tables:          sc.Tables,
				Mutated:         sc.Mutated,
				MutatedFraction: sc.MutatedFraction,
				MaxShift:        sc.MaxShift,
				ShiftColumn:     sc.ShiftColumn,
				Relearns:        sc.Relearns,
			})
		}
		out.Relearns = d.Relearns()
	}
	out.RelearnErrors = db.relearnFails.Load()
	db.relearnErrMu.Lock()
	out.LastRelearnError = db.relearnErr
	db.relearnErrMu.Unlock()
	db.pipeMu.Lock()
	pipe := db.pipe
	db.pipeMu.Unlock()
	if pipe == nil {
		return out
	}
	st := pipe.Stats()
	out.QueueDepth = st.QueueDepth
	out.Enqueued = st.Enqueued
	out.Applied = st.Applied
	out.Batches = st.Batches
	out.Errors = st.Errors
	out.LastError = st.LastError
	out.LastBatch = st.LastBatch
	out.LastApplyDuration = st.LastApplyDuration
	out.ApplyLag = st.ApplyLag
	return out
}

// CheckStaleness recomputes pairwise dependencies on the current base
// tables and reports ensemble members whose construction decision would
// change — the paper's trigger for background regeneration. Pending
// updates are flushed first; the refreshed dependency statistics are
// published as a new snapshot (invalidating cached plans, which read
// them for RSPN selection).
func (db *DB) CheckStaleness() (map[int]string, error) {
	if err := db.Flush(context.Background()); err != nil {
		return nil, err
	}
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	cur := db.snap.Load()
	if cur.ens.Tables == nil {
		return nil, errNoData()
	}
	next := cur.ens.CloneForStaleness()
	rep, err := next.CheckStaleness()
	db.publishLocked(next)
	if err != nil {
		return nil, err
	}
	return rep.Stale, nil
}

func errNoData() error {
	return fmt.Errorf("deepdb: no base tables attached (open with WithDataDir or WithDataset)")
}

func errClosed() error {
	return fmt.Errorf("deepdb: database closed")
}

// resolver maps string literals in predicates to dictionary codes —
// through the live base tables when attached, through the dictionaries
// persisted in the model (format v3) otherwise, so string predicates work
// in model-only serving. Bound to one snapshot's ensemble: safe without
// locks.
func resolver(ens *ensemble.Ensemble) query.Resolver {
	return func(column, literal string) (float64, error) {
		code, found, known := ens.ResolveLabel(column, literal)
		if !known {
			return 0, fmt.Errorf("deepdb: unknown column %s", column)
		}
		if !found {
			return 0, fmt.Errorf("deepdb: value %q not found in column %s", literal, column)
		}
		return code, nil
	}
}

// wrapResult converts an engine result, decoding group keys through the
// given snapshot ensemble.
func wrapResult(ens *ensemble.Ensemble, q query.Query, res core.AQPResult) Result {
	out := Result{}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, Group{
			Key:    g.Key,
			Labels: decodeKey(ens, q.GroupBy, g.Key),
			Estimate: Estimate{
				Value:    g.Estimate.Value,
				Variance: g.Estimate.Variance,
				CILow:    g.CILow,
				CIHigh:   g.CIHigh,
			},
		})
	}
	return out
}

func wrapEstimate(est core.Estimate, level float64) Estimate {
	lo, hi := est.ConfidenceInterval(level)
	return Estimate{Value: est.Value, Variance: est.Variance, CILow: lo, CIHigh: hi}
}

// decodeKey renders each component of a group key, decoding categorical
// codes through the dictionaries (live base tables when attached, the
// model's persisted dictionaries otherwise).
func decodeKey(ens *ensemble.Ensemble, cols []string, key []float64) []string {
	if len(key) == 0 {
		return nil
	}
	out := make([]string, len(key))
	for i := range key {
		out[i] = fmt.Sprintf("%g", key[i])
		if i >= len(cols) {
			continue
		}
		if s := ens.DecodeLabel(cols[i], int(key[i])); s != "" {
			out[i] = s
		}
	}
	return out
}
