package deepdb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
)

// The facade re-exports the vocabulary types consumers need to declare a
// schema and feed data, so importing the deepdb package alone is enough to
// define, learn, query and update a database.
type (
	// Schema is the relational metadata of a database: tables, typed
	// columns, keys and functional dependencies.
	Schema = schema.Schema
	// TableDef is the metadata of one relation.
	TableDef = schema.Table
	// ColumnDef describes one attribute of a table.
	ColumnDef = schema.Column
	// ForeignKey declares a many-to-one FK edge.
	ForeignKey = schema.ForeignKey
	// FunctionalDependency declares Determinant -> Dependent.
	FunctionalDependency = schema.FunctionalDependency
	// Kind is the logical type of a column.
	Kind = schema.Kind
	// Table is one in-memory base table (columnar, dictionary-encoded).
	Table = table.Table
	// Value is one cell value.
	Value = table.Value
	// Dataset maps table name to its base table.
	Dataset = map[string]*table.Table
)

// Column kinds, re-exported from the schema package.
const (
	IntKind         = schema.IntKind
	FloatKind       = schema.FloatKind
	CategoricalKind = schema.CategoricalKind
)

// Int wraps an integer cell value.
func Int(i int) Value { return table.Int(i) }

// Float wraps a float cell value.
func Float(f float64) Value { return table.Float(f) }

// Null is the NULL cell value.
func Null() Value { return table.Null() }

// NewTable allocates an empty base table for the given definition.
func NewTable(def *TableDef) *Table { return table.New(def) }

// LoadSchema reads and validates a schema JSON file (the shape of Schema).
func LoadSchema(path string) (*Schema, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Schema
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("deepdb: parsing %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadCSVDir reads <table>.csv for every schema table from dir.
func LoadCSVDir(s *Schema, dir string) (Dataset, error) {
	out := make(Dataset, len(s.Tables))
	for _, meta := range s.Tables {
		path := filepath.Join(dir, meta.Name+".csv")
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		t, err := table.LoadCSV(meta, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("deepdb: loading %s: %w", path, err)
		}
		out[meta.Name] = t
	}
	return out, nil
}

// Estimate is one approximate scalar with its variance and the two-sided
// confidence interval at the DB's confidence level.
type Estimate struct {
	Value    float64
	Variance float64
	CILow    float64
	CIHigh   float64
}

// Group is one result row of a (possibly grouped) query: the encoded group
// key, its decoded labels (dictionary strings where the column is
// categorical, numeric renderings otherwise), and the estimate.
type Group struct {
	Key    []float64
	Labels []string
	Estimate
}

// Result is the outcome of a query: one Group per group-by combination the
// model considers non-empty (exactly one, with an empty Key, when the query
// has no GROUP BY).
type Result struct {
	Groups []Group
}

// Scalar returns the single value of an ungrouped result (0 when empty).
func (r Result) Scalar() float64 {
	if len(r.Groups) == 0 {
		return 0
	}
	return r.Groups[0].Value
}

// Plain converts to the internal query.Result shape, the common currency of
// the exact executor and the error metrics.
func (r Result) Plain() query.Result {
	var out query.Result
	for _, g := range r.Groups {
		out.Groups = append(out.Groups, query.Group{Key: g.Key, Value: g.Value})
	}
	return out
}

// Row is one base-table row for DB.Update: missing columns become NULL.
type Row struct {
	Table  string
	Values map[string]Value
}

// QError is the paper's q-error metric: max(est/true, true/est) with both
// clamped to at least one tuple.
func QError(estimate, truth float64) float64 { return query.QError(estimate, truth) }

// AvgRelativeError matches estimated groups to true groups by key and
// averages the per-group relative errors (the paper's AQP metric).
func AvgRelativeError(estimate, truth Result) float64 {
	return query.AvgRelativeError(estimate.Plain(), truth.Plain())
}
