package deepdb_test

// resultcache_test.go is the correctness suite of the cross-query result
// cache: a cache hit must be bit-identical to the evaluation it skipped, a
// published snapshot (update batch, Reload, re-learn hot-swap) must
// invalidate every earlier entry, confidence-level variants must never
// share entries, and the sharded tier must stay coherent through the same
// generation protocol. Everything compares Float64bits, not approximate
// equality: the cache's contract is "the same bits, faster".

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"repro/deepdb"
)

// cachedWorkload exercises every query class the cache key must
// distinguish: point and range filters, joins, IN lists (whose value count
// is invisible in the plan shape), disjunctions, GROUP BY and AVG/SUM.
var cachedWorkload = []string{
	"SELECT COUNT(*) FROM customer WHERE c_region = 'EU'",
	"SELECT COUNT(*) FROM customer WHERE c_age >= 30 AND c_age < 50",
	"SELECT COUNT(*) FROM customer JOIN orders WHERE c_age >= 40",
	"SELECT COUNT(*) FROM customer WHERE c_region IN ('EU')",
	"SELECT COUNT(*) FROM customer WHERE c_region IN ('EU', 'ASIA')",
	"SELECT COUNT(*) FROM customer WHERE (c_age < 25 OR c_age >= 60)",
	"SELECT AVG(o_amount) FROM orders",
	"SELECT SUM(o_amount) FROM customer JOIN orders WHERE c_region = 'EU'",
	"SELECT COUNT(*) FROM customer GROUP BY c_region",
	"SELECT AVG(o_amount) FROM customer JOIN orders GROUP BY c_region",
}

// bitsOfResult renders a Result to an exact, comparison-stable string:
// every float64 by its bit pattern, keys and labels verbatim.
func bitsOfResult(r deepdb.Result) string {
	out := ""
	for _, g := range r.Groups {
		out += fmt.Sprintf("key=%v labels=%v v=%x var=%x lo=%x hi=%x\n",
			g.Key, g.Labels,
			math.Float64bits(g.Value), math.Float64bits(g.Variance),
			math.Float64bits(g.CILow), math.Float64bits(g.CIHigh))
	}
	return out
}

func bitsOfEstimate(e deepdb.Estimate) string {
	return fmt.Sprintf("v=%x var=%x lo=%x hi=%x",
		math.Float64bits(e.Value), math.Float64bits(e.Variance),
		math.Float64bits(e.CILow), math.Float64bits(e.CIHigh))
}

// TestResultCacheHitBitwise: with the cache on, the second execution of
// every workload query (a hit) returns exactly the bits of the first (the
// miss that populated it) — and exactly the bits an uncached DB over the
// same model produces. Covers Query, prepared Exec, and Estimate.
func TestResultCacheHitBitwise(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(2000, 7)
	plain, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(4000))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.deepdb")
	if err := plain.Save(path); err != nil {
		t.Fatal(err)
	}
	cached, err := deepdb.Open(ctx, path, deepdb.WithResultCacheSize(128))
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := deepdb.Open(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range cachedWorkload {
		miss, err := cached.Query(ctx, sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		hit, err := cached.Query(ctx, sql)
		if err != nil {
			t.Fatalf("%s (hit): %v", sql, err)
		}
		ref, err := uncached.Query(ctx, sql)
		if err != nil {
			t.Fatalf("%s (uncached): %v", sql, err)
		}
		if bitsOfResult(hit) != bitsOfResult(miss) {
			t.Fatalf("%s: hit differs from populating miss\n  miss: %v\n  hit:  %v", sql, miss, hit)
		}
		if bitsOfResult(hit) != bitsOfResult(ref) {
			t.Fatalf("%s: cached differs from uncached\n  uncached: %v\n  cached:   %v", sql, ref, hit)
		}
	}
	// Prepared-statement executions share the same cache (and the same
	// entries as the equivalent literal SQL would, keyed by shape+values).
	stmt, err := cached.Prepare("SELECT COUNT(*) FROM customer JOIN orders WHERE c_age < ? AND c_region = ?")
	if err != nil {
		t.Fatal(err)
	}
	miss, err := stmt.Exec(ctx, 40, "EU")
	if err != nil {
		t.Fatal(err)
	}
	hit, err := stmt.Exec(ctx, 40, "EU")
	if err != nil {
		t.Fatal(err)
	}
	if bitsOfResult(miss) != bitsOfResult(hit) {
		t.Fatalf("prepared hit differs from miss: %v != %v", miss, hit)
	}
	// Different bound values must not collide.
	other, err := stmt.Exec(ctx, 41, "EU")
	if err != nil {
		t.Fatal(err)
	}
	if bitsOfResult(other) == bitsOfResult(miss) {
		t.Fatalf("distinct bindings returned identical result: %v", other)
	}
	// Cardinality estimates cache in their own namespace.
	const estSQL = "SELECT COUNT(*) FROM customer JOIN orders WHERE c_age < 40"
	e1, err := cached.EstimateCardinality(ctx, estSQL)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := cached.EstimateCardinality(ctx, estSQL)
	if err != nil {
		t.Fatal(err)
	}
	eRef, err := uncached.EstimateCardinality(ctx, estSQL)
	if err != nil {
		t.Fatal(err)
	}
	if bitsOfEstimate(e1) != bitsOfEstimate(e2) || bitsOfEstimate(e1) != bitsOfEstimate(eRef) {
		t.Fatalf("estimate caching not bit-identical: %v / %v / %v", e1, e2, eRef)
	}
}

// TestResultCacheCounters: hits, misses, evictions and entry counts are
// observable through UpdateStats and ResultCacheLen, and the LRU bound
// holds under overflow.
func TestResultCacheCounters(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1200, 8)
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(3000), deepdb.WithResultCacheSize(4))
	if err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT COUNT(*) FROM customer WHERE c_region = 'EU'"
	if _, err := db.Query(ctx, sql); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(ctx, sql); err != nil {
		t.Fatal(err)
	}
	st := db.UpdateStats()
	if st.ResultCacheMisses == 0 || st.ResultCacheHits == 0 {
		t.Fatalf("counters not moving: %+v", st)
	}
	if st.ResultCacheSize != db.ResultCacheLen() || st.ResultCacheSize == 0 {
		t.Fatalf("size mismatch: stats %d, len %d", st.ResultCacheSize, db.ResultCacheLen())
	}
	// Overflow the 4-entry bound with distinct queries; the cache must
	// evict (counted) and stay bounded.
	stmt, err := db.Prepare("SELECT COUNT(*) FROM customer WHERE c_age < ?")
	if err != nil {
		t.Fatal(err)
	}
	for age := 20; age < 40; age++ {
		if _, err := stmt.Exec(ctx, age); err != nil {
			t.Fatal(err)
		}
	}
	st = db.UpdateStats()
	if st.ResultCacheEvictions == 0 {
		t.Fatalf("no evictions after overflow: %+v", st)
	}
	if n := db.ResultCacheLen(); n > 4+7 {
		// Per-shard capacity is the ceiling of cap/ways, so the bound may
		// round up by at most ways-1 entries across shards.
		t.Fatalf("cache size %d exceeds configured bound", n)
	}
	// Plan-cache counters move on the same workload (observability parity).
	if st.PlanCacheMisses == 0 || st.PlanCacheSize == 0 {
		t.Fatalf("plan cache counters not populated: %+v", st)
	}
}

// TestResultCacheInvalidation: a published snapshot — asynchronous
// Insert/Delete batches and a hot Reload — must invalidate earlier
// entries, so post-publish queries return exactly what an uncached DB
// returns (never the pre-publish bits).
func TestResultCacheInvalidation(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1500, 9)
	cached, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(3000), deepdb.WithResultCacheSize(64))
	if err != nil {
		t.Fatal(err)
	}
	s2, data2 := fixture(1500, 9)
	uncached, err := deepdb.LearnDataset(ctx, s2, data2, deepdb.WithMaxSamples(3000))
	if err != nil {
		t.Fatal(err)
	}
	// Single-table so the inserted row below provably moves the estimate.
	const sql = "SELECT COUNT(*) FROM customer WHERE c_age >= 40"
	before, err := cached.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cached.Query(ctx, sql); err != nil { // seed a hit
		t.Fatal(err)
	}
	mutate := func(db *deepdb.DB, pk int) {
		t.Helper()
		err := db.Insert("customer", map[string]deepdb.Value{
			"c_id": deepdb.Int(pk), "c_age": deepdb.Int(45), "c_region": deepdb.Int(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	mutate(cached, 1<<20)
	mutate(uncached, 1<<20)
	after, err := cached.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := uncached.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if bitsOfResult(after) != bitsOfResult(ref) {
		t.Fatalf("post-insert cached result is stale\n  cached:   %v\n  uncached: %v", after, ref)
	}
	if bitsOfResult(after) == bitsOfResult(before) {
		t.Fatalf("insert of a matching row did not change the estimate: %v", after)
	}
	// Deletes publish through the same pipeline and must invalidate too.
	if err := cached.Delete("customer", float64(1<<20)); err != nil {
		t.Fatal(err)
	}
	if err := uncached.Delete("customer", float64(1<<20)); err != nil {
		t.Fatal(err)
	}
	if err := cached.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := uncached.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	afterDel, err := cached.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	refDel, err := uncached.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if bitsOfResult(afterDel) != bitsOfResult(refDel) {
		t.Fatalf("post-delete cached result is stale\n  cached:   %v\n  uncached: %v", afterDel, refDel)
	}
}

// TestResultCacheReloadInvalidation: a hot model swap via Reload publishes
// a new generation, so queries after the swap serve the new model's bits,
// never a cached result of the old one.
func TestResultCacheReloadInvalidation(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sA, dataA := fixture(1200, 10)
	dbA, err := deepdb.LearnDataset(ctx, sA, dataA, deepdb.WithMaxSamples(3000))
	if err != nil {
		t.Fatal(err)
	}
	pathA := filepath.Join(dir, "a.deepdb")
	if err := dbA.Save(pathA); err != nil {
		t.Fatal(err)
	}
	sB, dataB := fixture(2400, 11) // different data -> different estimates
	dbB, err := deepdb.LearnDataset(ctx, sB, dataB, deepdb.WithMaxSamples(3000))
	if err != nil {
		t.Fatal(err)
	}
	pathB := filepath.Join(dir, "b.deepdb")
	if err := dbB.Save(pathB); err != nil {
		t.Fatal(err)
	}

	db, err := deepdb.Open(ctx, pathA, deepdb.WithResultCacheSize(64))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := deepdb.Open(ctx, pathB)
	if err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT COUNT(*) FROM customer WHERE c_region = 'EU'"
	if _, err := db.Query(ctx, sql); err != nil { // populate under model A
		t.Fatal(err)
	}
	if err := db.Reload(pathB); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if bitsOfResult(got) != bitsOfResult(want) {
		t.Fatalf("post-reload result not the new model's\n  got:  %v\n  want: %v", got, want)
	}
}

// TestResultCacheConfidenceVariants: the effective confidence level is part
// of the cache key, so an AtConfidence variant never reads an entry written
// at another level — its interval bounds must match an uncached execution
// at that level exactly.
func TestResultCacheConfidenceVariants(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1500, 12)
	cached, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(3000), deepdb.WithResultCacheSize(64))
	if err != nil {
		t.Fatal(err)
	}
	s2, data2 := fixture(1500, 12)
	plain, err := deepdb.LearnDataset(ctx, s2, data2, deepdb.WithMaxSamples(3000))
	if err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT COUNT(*) FROM customer JOIN orders WHERE c_age >= 40"
	// Populate at the default level, then query at 0.8: the cached default
	// entry must not answer it.
	defFirst, err := cached.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cached.Query(ctx, sql, deepdb.AtConfidence(0.8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Query(ctx, sql, deepdb.AtConfidence(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if bitsOfResult(got) != bitsOfResult(want) {
		t.Fatalf("AtConfidence(0.8) served another level's entry\n  got:  %v\n  want: %v", got, want)
	}
	// Sensitivity check: the two levels really produce different interval
	// bits, so the assertion above cannot pass vacuously.
	if math.Float64bits(got.Groups[0].CILow) == math.Float64bits(defFirst.Groups[0].CILow) {
		t.Fatalf("degenerate fixture: 0.8 and default level share CI bits")
	}
	// And back at the default level the original bits still come out.
	def, err := cached.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	refDef, err := plain.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if bitsOfResult(def) != bitsOfResult(refDef) {
		t.Fatalf("default level polluted by AtConfidence variant\n  got:  %v\n  want: %v", def, refDef)
	}
}

// TestResultCacheExecBatchPartialHits: a batch whose entries are partly
// cached executes only the misses, and the merged output is bit-identical
// to the same batch on an uncached DB.
func TestResultCacheExecBatchPartialHits(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1500, 13)
	plainDB, err := deepdb.LearnDataset(ctx, s, data, deepdb.WithMaxSamples(3000))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.deepdb")
	if err := plainDB.Save(path); err != nil {
		t.Fatal(err)
	}
	cached, err := deepdb.Open(ctx, path, deepdb.WithResultCacheSize(64))
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := deepdb.Open(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	const tmpl = "SELECT COUNT(*) FROM customer JOIN orders WHERE c_age < ?"
	sc, err := cached.Prepare(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	su, err := uncached.Prepare(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-warm half the batch through single executions.
	for _, age := range []int{30, 50} {
		if _, err := sc.Exec(ctx, age); err != nil {
			t.Fatal(err)
		}
	}
	batch := [][]any{{25}, {30}, {40}, {50}, {60}}
	got, err := sc.ExecBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := su.ExecBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if bitsOfResult(got[i]) != bitsOfResult(want[i]) {
			t.Fatalf("batch entry %d mismatch\n  cached:   %v\n  uncached: %v", i, got[i], want[i])
		}
	}
	// A fully-hot batch must match too.
	again, err := sc.ExecBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if bitsOfResult(again[i]) != bitsOfResult(want[i]) {
			t.Fatalf("hot batch entry %d mismatch", i)
		}
	}
}

// TestShardedResultCacheCoherence: the sharded tier tags entries with the
// composed snapshot's generation, which moves when the shards align on a
// new ops token — so hits are bit-identical and mutations invalidate,
// exactly as in the single-process tier.
func TestShardedResultCacheCoherence(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(1500, 14)
	db, err := deepdb.LearnDatasetSharded(ctx, s, data,
		deepdb.WithShards(2), deepdb.WithMaxSamples(3000),
		deepdb.WithResultCacheSize(64))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s2, data2 := fixture(1500, 14)
	plain, err := deepdb.LearnDatasetSharded(ctx, s2, data2,
		deepdb.WithShards(2), deepdb.WithMaxSamples(3000))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	const sql = "SELECT COUNT(*) FROM customer WHERE c_age >= 40"
	miss, err := db.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := db.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if bitsOfResult(miss) != bitsOfResult(hit) {
		t.Fatalf("sharded hit differs from miss: %v != %v", miss, hit)
	}
	if st := db.UpdateStats(); st.ResultCacheHits == 0 {
		t.Fatalf("sharded cache did not register the hit: %+v", st)
	}
	mutate := func(h interface {
		Insert(string, map[string]deepdb.Value) error
		Flush(context.Context) error
	}) {
		t.Helper()
		err := h.Insert("customer", map[string]deepdb.Value{
			"c_id": deepdb.Int(1 << 21), "c_age": deepdb.Int(45), "c_region": deepdb.Int(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	mutate(db)
	mutate(plain)
	after, err := db.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := plain.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if bitsOfResult(after) != bitsOfResult(ref) {
		t.Fatalf("sharded post-insert result is stale\n  cached: %v\n  plain:  %v", after, ref)
	}
}
