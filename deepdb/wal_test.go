package deepdb_test

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/deepdb"
	"repro/internal/wal"
)

// learnWAL builds a DB over the deterministic fixture with a WAL attached.
func learnWAL(t *testing.T, dir string, rows int, seed int64, extra ...deepdb.Option) *deepdb.DB {
	t.Helper()
	s, data := fixture(rows, seed)
	opts := append([]deepdb.Option{
		// SampleRate 1 on this fixture: applying mutations draws nothing
		// from the shared rng, so recovery equivalence is exact regardless
		// of how groups were batched.
		deepdb.WithMaxSamples(8000),
		deepdb.WithWAL(dir),
	}, extra...)
	db, err := deepdb.LearnDataset(context.Background(), s, data, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestWALReplayMatchesSyncBitwise: a DB that logged a mutation stream but
// never saved, "crashed" (closed without checkpoint) and was rebuilt over
// the original data replays the log on open — and then answers the full
// workload matrix bit-identically to a DB that applied the same stream
// synchronously and never crashed.
func TestWALReplayMatchesSyncBitwise(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	muts := mutationStream(80)

	crashed := learnWAL(t, dir, 1200, 77, deepdb.WithDurability(deepdb.DurabilitySync))
	applyStream(t, crashed, muts)
	if err := crashed.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// No Save: the checkpoint stays at 0 and every record remains live.
	if err := crashed.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := learnWAL(t, dir, 1200, 77)
	defer recovered.Close()
	st := recovered.UpdateStats()
	if st.WAL == nil || st.WAL.Replayed != uint64(len(muts)) {
		t.Fatalf("WAL stats after recovery = %+v, want %d replayed", st.WAL, len(muts))
	}
	if st.WAL.AppliedLSN != st.WAL.LastLSN || st.WAL.LastLSN == 0 {
		t.Fatalf("watermarks after recovery: %+v", st.WAL)
	}

	s, data := fixture(1200, 77)
	ref, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(8000), deepdb.WithSyncUpdates())
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, ref, muts)

	for i, q := range equivalenceWorkload {
		a, err := ref.ExecuteQuery(ctx, q)
		if err != nil {
			t.Fatalf("query %d ref: %v", i, err)
		}
		b, err := recovered.ExecuteQuery(ctx, q)
		if err != nil {
			t.Fatalf("query %d recovered: %v", i, err)
		}
		if normResult(a) != normResult(b) {
			t.Fatalf("query %d mismatch\n  ref:       %v\n  recovered: %v", i, a, b)
		}
		ea, err := ref.EstimateCardinalityQuery(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		eb, err := recovered.EstimateCardinalityQuery(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if ea != eb {
			t.Fatalf("estimate %d mismatch: %+v != %+v", i, ea, eb)
		}
	}
}

// TestWALCheckpointSkipsSavedRecords: Save checkpoints the log at the
// applied watermark; the next open replays only what came after, and a
// fully-saved log replays nothing.
func TestWALCheckpointSkipsSavedRecords(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	model := t.TempDir() + "/m.deepdb"

	db := learnWAL(t, dir, 800, 51)
	for i := 0; i < 10; i++ {
		if err := db.Insert("orders", map[string]deepdb.Value{
			"o_id": deepdb.Int(20_000_000 + i), "o_c_id": deepdb.Int(i), "o_amount": deepdb.Float(30),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(model); err != nil {
		t.Fatal(err)
	}
	info, err := wal.Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointLSN != 10 || info.LastLSN != 10 {
		t.Fatalf("after Save: checkpoint %d last %d, want 10/10", info.CheckpointLSN, info.LastLSN)
	}
	// Five more mutations after the save are the only live records.
	for i := 0; i < 5; i++ {
		if err := db.Insert("orders", map[string]deepdb.Value{
			"o_id": deepdb.Int(21_000_000 + i), "o_c_id": deepdb.Int(i), "o_amount": deepdb.Float(40),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	before, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	s, data := fixture(800, 51)
	re, err := deepdb.Open(ctx, model, deepdb.WithDataset(data), deepdb.WithWAL(dir))
	_ = s
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.UpdateStats()
	if st.WAL.Replayed != 5 {
		t.Fatalf("replayed %d records, want 5 (checkpointed ones must be skipped)", st.WAL.Replayed)
	}
	after, err := re.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after.Scalar()-before.Scalar()) > 1e-6 {
		t.Fatalf("recovered count %v, want %v", after.Scalar(), before.Scalar())
	}
	// Saving the recovered DB checkpoints everything; a third open replays
	// nothing.
	if err := re.Save(model); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	_, data3 := fixture(800, 51)
	re3, err := deepdb.Open(ctx, model, deepdb.WithDataset(data3), deepdb.WithWAL(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re3.Close()
	if got := re3.UpdateStats().WAL.Replayed; got != 0 {
		t.Fatalf("fully-saved log replayed %d records, want 0", got)
	}
}

// TestWALReplayWithoutTablesFails: a log with live records cannot replay
// into a model-only open — that must be a clear error, not silent loss.
func TestWALReplayWithoutTablesFails(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	model := t.TempDir() + "/m.deepdb"
	db := learnWAL(t, dir, 600, 52)
	if err := db.Save(model); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("orders", map[string]deepdb.Value{
		"o_id": deepdb.Int(22_000_000), "o_c_id": deepdb.Int(1), "o_amount": deepdb.Float(10),
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := deepdb.Open(ctx, model, deepdb.WithWAL(dir))
	if err == nil || !strings.Contains(err.Error(), "no base tables") {
		t.Fatalf("model-only open with live WAL records = %v, want base-tables error", err)
	}
}

// TestDriftTriggersBackgroundRelearn: pushing a member past the mutation
// threshold re-learns it in the background and hot-swaps it into the
// serving snapshot — queries keep working throughout, the member's
// staleness resets, and the re-learned model serves the exact
// post-mutation count.
func TestDriftTriggersBackgroundRelearn(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(600, 41)
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(8000), deepdb.WithSingleTableOnly(),
		deepdb.WithDriftThreshold(0.2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	initial, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	n0 := initial.Scalar()
	const inserts = 300 // >20% of the ~1100-row orders baseline
	for i := 0; i < inserts; i++ {
		if err := db.Insert("orders", map[string]deepdb.Value{
			"o_id": deepdb.Int(23_000_000 + i), "o_c_id": deepdb.Int(i % 100), "o_amount": deepdb.Float(60),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for db.UpdateStats().Relearns == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no background re-learn within deadline: %+v", db.UpdateStats())
		}
		if _, err := db.Query(ctx, "SELECT COUNT(*) FROM orders"); err != nil {
			t.Fatalf("query during re-learn: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := db.UpdateStats()
	if st.RelearnErrors != 0 {
		t.Fatalf("re-learn errors: %+v", st)
	}
	var ordersStat *deepdb.DriftStat
	for i := range st.Drift {
		if len(st.Drift[i].Tables) == 1 && st.Drift[i].Tables[0] == "orders" {
			ordersStat = &st.Drift[i]
		}
	}
	if ordersStat == nil {
		t.Fatalf("no drift stat for orders: %+v", st.Drift)
	}
	if ordersStat.Relearns != 1 || ordersStat.MutatedFraction > 0.2 {
		t.Fatalf("orders member not re-baselined: %+v", *ordersStat)
	}
	// The hot-swapped member serves the exact post-mutation count (a fresh
	// single-table model's unfiltered COUNT equals its training row count).
	res, err := db.Query(ctx, "SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Scalar()-(n0+inserts)) > 1e-6 {
		t.Fatalf("count after re-learn = %v, want %v", res.Scalar(), n0+inserts)
	}
}

// TestCloseTimeoutBounded: Close gives up after WithCloseTimeout and
// reports it; a second Close is a safe no-op.
func TestCloseTimeoutBounded(t *testing.T) {
	ctx := context.Background()
	s, data := fixture(800, 43)
	// Batch size 1 makes the drain pay one clone+publish per queued
	// mutation, so a late Close cannot finish within a millisecond.
	db, err := deepdb.LearnDataset(ctx, s, data,
		deepdb.WithMaxSamples(1600), deepdb.WithUpdateBatchSize(1),
		deepdb.WithCloseTimeout(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := db.Insert("orders", map[string]deepdb.Value{
			"o_id": deepdb.Int(24_000_000 + i), "o_c_id": deepdb.Int(i % 100), "o_amount": deepdb.Float(5),
		}); err != nil {
			t.Fatal(err)
		}
	}
	err = db.Close()
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("Close = %v, want drain-timeout error", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	// The snapshot stays serveable after a timed-out Close.
	if _, err := db.Query(ctx, "SELECT COUNT(*) FROM orders"); err != nil {
		t.Fatal(err)
	}
}
