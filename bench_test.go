// Package repro's root bench suite: one testing.B benchmark per table and
// figure of the paper (regenerating the exhibit via internal/bench), plus
// micro-benchmarks for the latencies and throughputs the paper quotes in
// prose (µs-ms cardinality estimates, 55k updates/s) and ablation benches
// for the design choices called out in DESIGN.md.
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ensemble"
	"repro/internal/query"
	"repro/internal/spn"
	"repro/internal/table"
	"repro/internal/workload"
)

var (
	suiteOnce sync.Once
	suite     *bench.Suite
)

func sharedSuite() *bench.Suite {
	suiteOnce.Do(func() { suite = bench.NewSuite(bench.SmallScale()) })
	return suite
}

// runReport standardizes exhibit-regenerating benchmarks: the report is
// produced once per iteration and its first metric is reported.
func runReport(b *testing.B, run func() (*bench.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for k, v := range rep.Metrics {
				b.ReportMetric(v, k)
				break
			}
		}
	}
}

func BenchmarkFigure1(b *testing.B)  { runReport(b, sharedSuite().RunFigure1) }
func BenchmarkTable1(b *testing.B)   { runReport(b, sharedSuite().RunTable1) }
func BenchmarkFigure7(b *testing.B)  { runReport(b, sharedSuite().RunFigure7) }
func BenchmarkTable2(b *testing.B)   { runReport(b, sharedSuite().RunTable2) }
func BenchmarkFigure8(b *testing.B)  { runReport(b, sharedSuite().RunFigure8) }
func BenchmarkFigure9(b *testing.B)  { runReport(b, sharedSuite().RunFigure9) }
func BenchmarkFigure10(b *testing.B) { runReport(b, sharedSuite().RunFigure10) }
func BenchmarkFigure11(b *testing.B) { runReport(b, sharedSuite().RunFigure11) }
func BenchmarkFigure12(b *testing.B) { runReport(b, sharedSuite().RunFigure12) }
func BenchmarkFigure13(b *testing.B) { runReport(b, sharedSuite().RunFigure13) }
func BenchmarkTrainingTime(b *testing.B) {
	runReport(b, sharedSuite().RunTrainingTime)
}

// ---- micro-benchmarks ----

var (
	microOnce   sync.Once
	microEng    *core.Engine
	microEns    *ensemble.Ensemble
	microTables map[string]*table.Table
	microQs     []workload.Named
)

func microFixture(b *testing.B) (*core.Engine, *ensemble.Ensemble, map[string]*table.Table, []workload.Named) {
	b.Helper()
	microOnce.Do(func() {
		s, tabs := datagen.IMDb(datagen.IMDbConfig{Titles: 3000, Seed: 9})
		cfg := ensemble.DefaultConfig()
		cfg.MaxSamples = 20000
		ens, err := ensemble.Build(context.Background(), s, tabs, cfg)
		if err != nil {
			panic(err)
		}
		microEns = ens
		microEng = core.New(ens)
		microTables = tabs
		microQs = workload.JOBLight(tabs, 13)
	})
	return microEng, microEns, microTables, microQs
}

// BenchmarkCardinalityLatency measures one cardinality estimate — the
// paper quotes µs-to-ms latencies (Section 6.1).
func BenchmarkCardinalityLatency(b *testing.B) {
	eng, _, _, qs := microFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EstimateCardinality(qs[i%len(qs)].Query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAQPGroupByLatency measures a grouped AVG — the paper quotes
// <=31ms on Flights and <=293ms on SSB (Section 6.2).
func BenchmarkAQPGroupByLatency(b *testing.B) {
	eng, _, _, _ := microFixture(b)
	q := query.Query{Aggregate: query.Avg, AggColumn: "t_production_year",
		Tables: []string{"title", "cast_info"}, GroupBy: []string{"ci_role_id"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateThroughput measures ensemble inserts per second — the
// paper reports 55k updates/s at a 1% model sample rate (Section 6.1).
func BenchmarkUpdateThroughput(b *testing.B) {
	_, ens, _, _ := microFixture(b)
	rng := rand.New(rand.NewSource(99))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := ens.Insert("cast_info", map[string]table.Value{
			"ci_id":      table.Int(10000000 + i),
			"ci_t_id":    table.Int(rng.Intn(3000)),
			"ci_role_id": table.Int(1 + rng.Intn(11)),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSPNInference measures one raw SPN probability evaluation.
func BenchmarkSPNInference(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	data := make([][]float64, 20000)
	for i := range data {
		x := rng.NormFloat64() * 10
		data[i] = []float64{x, x*2 + rng.NormFloat64(), float64(rng.Intn(5))}
	}
	model, err := spn.Learn(data, []string{"a", "b", "c"}, spn.DefaultLearnConfig())
	if err != nil {
		b.Fatal(err)
	}
	cols := []spn.ColQuery{
		{Col: 0, Ranges: []spn.Range{{Lo: -5, Hi: 5, LoIncl: true, HiIncl: true}}},
		{Col: 2, Ranges: []spn.Range{spn.PointRange(3)}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Probability(cols); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnsembleLearning measures offline ensemble construction.
func BenchmarkEnsembleLearning(b *testing.B) {
	s, tabs := datagen.IMDb(datagen.IMDbConfig{Titles: 1500, Seed: 17})
	cfg := ensemble.DefaultConfig()
	cfg.MaxSamples = 10000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ensemble.Build(context.Background(), s, tabs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablations (design choices in DESIGN.md) ----

// BenchmarkAblationRDCThreshold sweeps the column-split threshold: lower
// thresholds produce deeper models (slower, usually more accurate).
func BenchmarkAblationRDCThreshold(b *testing.B) {
	s, tabs := datagen.IMDb(datagen.IMDbConfig{Titles: 1500, Seed: 19})
	for _, thr := range []float64{0.1, 0.3, 0.6} {
		b.Run(fmt.Sprintf("thr=%.1f", thr), func(b *testing.B) {
			cfg := ensemble.DefaultConfig()
			cfg.MaxSamples = 10000
			cfg.SPN.RDCThreshold = thr
			for i := 0; i < b.N; i++ {
				ens, err := ensemble.Build(context.Background(), s, tabs, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					nodes := 0
					for _, r := range ens.RSPNs {
						nodes += r.Model.Root.NumNodes()
					}
					b.ReportMetric(float64(nodes), "model_nodes")
				}
			}
		})
	}
}

// BenchmarkAblationMinSlice sweeps the minimum instance slice (row-cluster
// granularity).
func BenchmarkAblationMinSlice(b *testing.B) {
	s, tabs := datagen.IMDb(datagen.IMDbConfig{Titles: 1500, Seed: 23})
	for _, frac := range []float64{0.005, 0.01, 0.05} {
		b.Run(fmt.Sprintf("slice=%.3f", frac), func(b *testing.B) {
			cfg := ensemble.DefaultConfig()
			cfg.MaxSamples = 10000
			cfg.SPN.MinInstanceFrac = frac
			for i := 0; i < b.N; i++ {
				if _, err := ensemble.Build(context.Background(), s, tabs, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStrategy compares the paper's RDC-greedy RSPN selection
// with the rejected median-of-candidates strategy.
func BenchmarkAblationStrategy(b *testing.B) {
	eng, _, _, qs := microFixture(b)
	for _, strat := range []struct {
		name string
		s    core.Strategy
	}{{"greedy", core.StrategyRDCGreedy}, {"median", core.StrategyMedian}} {
		b.Run(strat.name, func(b *testing.B) {
			engCopy := *eng
			engCopy.Strategy = strat.s
			for i := 0; i < b.N; i++ {
				if _, err := engCopy.EstimateCardinality(qs[i%len(qs)].Query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
