# DeepDB reproduction — build and verification targets.

.PHONY: all build test race check fmt vet lint lint-fix-report bench bench-json

all: build

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

fmt:
	gofmt -l -w .

vet:
	go vet ./...

# Project invariant suite (detmap, snapdiscipline, walorder, ctxloop,
# directive) run as a vet tool so results are cached per package.
lint:
	mkdir -p bin
	go build -o bin/deepdb-lint ./cmd/deepdb-lint
	go vet -vettool=$(CURDIR)/bin/deepdb-lint ./...

# Per-analyzer findings summary for triage; never fails, so it works on a
# tree with known violations you are about to fix or suppress.
lint-fix-report:
	go run ./cmd/deepdb-lint -report ./...

# The full gate CI runs: gofmt + vet + build + test -race.
check:
	./scripts/check.sh

bench:
	go test -bench=. -benchmem -run=^$$ .

# Serving micro-benchmarks (prepared vs unprepared, HTTP endpoint),
# emitted as BENCH_query.json.
bench-json:
	./scripts/bench.sh
