# DeepDB reproduction — build and verification targets.

.PHONY: all build test race check fmt vet bench

all: build

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

fmt:
	gofmt -l -w .

vet:
	go vet ./...

# The full gate CI runs: gofmt + vet + build + test -race.
check:
	./scripts/check.sh

bench:
	go test -bench=. -benchmem -run=^$$ .
