# DeepDB reproduction — build and verification targets.

.PHONY: all build test race check fmt vet bench bench-json

all: build

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

fmt:
	gofmt -l -w .

vet:
	go vet ./...

# The full gate CI runs: gofmt + vet + build + test -race.
check:
	./scripts/check.sh

bench:
	go test -bench=. -benchmem -run=^$$ .

# Serving micro-benchmarks (prepared vs unprepared, HTTP endpoint),
# emitted as BENCH_query.json.
bench-json:
	./scripts/bench.sh
