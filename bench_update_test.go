// Update-pipeline benchmarks: apply throughput of the synchronous vs the
// batched asynchronous path, and reader latency while a writer streams
// mutations — the flat-reader-latency claim of the snapshot-isolated
// serving design. scripts/bench.sh parses these into BENCH_update.json.
//
// Run with: go test -bench 'UpdateApply|ReaderLatency' -benchmem
package repro

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/deepdb"
)

// updateFixture learns a small facade DB over the deterministic
// customer/orders shape used across the deepdb tests.
func updateFixture(b *testing.B, opts ...deepdb.Option) *deepdb.DB {
	b.Helper()
	s, data := updateDataset()
	db, err := deepdb.LearnDataset(context.Background(), s, data,
		append([]deepdb.Option{deepdb.WithMaxSamples(4000)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// updateDataset builds the deterministic customer/orders shape shared by
// the update and serving benchmarks.
func updateDataset() (*deepdb.Schema, deepdb.Dataset) {
	s := &deepdb.Schema{Tables: []*deepdb.TableDef{
		{
			Name:       "customer",
			PrimaryKey: "c_id",
			Columns: []deepdb.ColumnDef{
				{Name: "c_id", Kind: deepdb.IntKind},
				{Name: "c_age", Kind: deepdb.IntKind},
			},
		},
		{
			Name:       "orders",
			PrimaryKey: "o_id",
			Columns: []deepdb.ColumnDef{
				{Name: "o_id", Kind: deepdb.IntKind},
				{Name: "o_c_id", Kind: deepdb.IntKind},
				{Name: "o_amount", Kind: deepdb.FloatKind},
			},
			ForeignKeys: []deepdb.ForeignKey{{Column: "o_c_id", RefTable: "customer", RefColumn: "c_id"}},
		},
	}}
	cust := deepdb.NewTable(s.Table("customer"))
	ord := deepdb.NewTable(s.Table("orders"))
	oid := 0
	for i := 0; i < 2000; i++ {
		cust.AppendRow(deepdb.Int(i), deepdb.Int(18+(i*7)%60))
		for k := 0; k <= i%2; k++ {
			ord.AppendRow(deepdb.Int(oid), deepdb.Int(i), deepdb.Float(float64(10+(oid*13)%90)))
			oid++
		}
	}
	return s, deepdb.Dataset{"customer": cust, "orders": ord}
}

func orderRow(i int) map[string]deepdb.Value {
	return map[string]deepdb.Value{
		"o_id":     deepdb.Int(10_000_000 + i),
		"o_c_id":   deepdb.Int(i % 2000),
		"o_amount": deepdb.Float(float64(i % 100)),
	}
}

// BenchmarkUpdateApplySync measures per-row apply+publish cost of the
// synchronous path (one copy-on-write batch per call).
func BenchmarkUpdateApplySync(b *testing.B) {
	db := updateFixture(b, deepdb.WithSyncUpdates())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Insert("orders", orderRow(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportRowsPerSec(b)
}

// BenchmarkUpdateApplyAsync measures per-row cost of the batched
// asynchronous pipeline: enqueue b.N rows, flush once — cloning and
// evaluator recompiles amortize across coalesced batches.
func BenchmarkUpdateApplyAsync(b *testing.B) {
	db := updateFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Insert("orders", orderRow(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(ctx); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	reportRowsPerSec(b)
	st := db.UpdateStats()
	if st.Batches > 0 {
		b.ReportMetric(float64(st.Applied)/float64(st.Batches), "rows/batch")
	}
}

func reportRowsPerSec(b *testing.B) {
	if d := b.Elapsed(); d > 0 {
		b.ReportMetric(float64(b.N)/d.Seconds(), "rows/s")
	}
}

// readerLatency runs b.N reader queries (a prepared estimate, the serving
// hot path) and reports p50/p99 alongside ns/op.
func readerLatency(b *testing.B, db *deepdb.DB) {
	ctx := context.Background()
	stmt, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_amount >= ?")
	if err != nil {
		b.Fatal(err)
	}
	lats := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := stmt.Estimate(ctx, i%100); err != nil {
			b.Fatal(err)
		}
		lats = append(lats, time.Since(start))
	}
	b.StopTimer()
	reportLatencyPercentiles(b, lats)
}

// reportLatencyPercentiles attaches p50/p99 of the sampled latencies as
// benchmark metrics.
func reportLatencyPercentiles(b *testing.B, lats []time.Duration) {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	quantile := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		idx := int(q * float64(len(lats)-1))
		return float64(lats[idx].Nanoseconds())
	}
	b.ReportMetric(quantile(0.50), "p50-ns")
	b.ReportMetric(quantile(0.99), "p99-ns")
}

// BenchmarkReaderLatencyIdle is the baseline: reader latency with no
// concurrent writer.
func BenchmarkReaderLatencyIdle(b *testing.B) {
	db := updateFixture(b)
	readerLatency(b, db)
}

// BenchmarkReaderLatencyDuringUpdates measures the same reader while a
// background writer streams inserts through the pipeline as fast as it
// can. Snapshot isolation's claim is that this stays flat vs Idle —
// readers never block on the write path.
func BenchmarkReaderLatencyDuringUpdates(b *testing.B) {
	db := updateFixture(b)
	var stop atomic.Bool
	writerDone := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		for i := 0; !stop.Load(); i++ {
			if err := db.Insert("orders", orderRow(i)); err != nil {
				writerDone <- err
				return
			}
			if i == 0 {
				close(started)
			}
		}
		writerDone <- nil
	}()
	// Only measure with the write stream actually flowing.
	<-started
	readerLatency(b, db)
	stop.Store(true)
	if err := <-writerDone; err != nil {
		b.Fatal(err)
	}
	if err := db.Flush(context.Background()); err != nil {
		b.Fatal(err)
	}
	st := db.UpdateStats()
	b.ReportMetric(float64(st.Applied), "writer-rows")
}

// BenchmarkReaderLatencyDuringSyncUpdates is the contrast case: the same
// writer stream under WithSyncUpdates (writers pay apply inline). Readers
// still never block — only writer throughput changes — so this documents
// the trade instead of proving a stall.
func BenchmarkReaderLatencyDuringSyncUpdates(b *testing.B) {
	db := updateFixture(b, deepdb.WithSyncUpdates())
	var stop atomic.Bool
	writerDone := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		for i := 0; !stop.Load(); i++ {
			if err := db.Insert("orders", orderRow(i)); err != nil {
				writerDone <- err
				return
			}
			if i == 0 {
				close(started)
			}
		}
		writerDone <- nil
	}()
	<-started
	readerLatency(b, db)
	stop.Store(true)
	if err := <-writerDone; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkUpdateApplyBatchSizes sweeps the pipeline batch cap, showing
// how coalescing amortizes the per-publication copy-on-write cost.
func BenchmarkUpdateApplyBatchSizes(b *testing.B) {
	for _, size := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			db := updateFixture(b, deepdb.WithUpdateBatchSize(size))
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Insert("orders", orderRow(i)); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Flush(ctx); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			reportRowsPerSec(b)
		})
	}
}
