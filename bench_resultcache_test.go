package repro

// Result-cache and streaming GROUP BY micro-benchmarks. The cache-hit
// bench against its uncached twin quantifies the serve-hot-path win of the
// cross-query result cache (a hit skips binding-independent work: plan
// lookup, evaluation, CI computation); the stream benches compare the
// chunked row iterator against the materializing path in rows/s.
// scripts/bench.sh runs these into BENCH_query.json.

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"repro/deepdb"
)

var (
	rcOnce sync.Once
	// rcDB serves with the result cache on; rcPlainDB is the same model
	// with the cache off — the uncached baseline.
	rcDB      *deepdb.DB
	rcPlainDB *deepdb.DB
)

func resultCacheFixture(b *testing.B) (*deepdb.DB, *deepdb.DB) {
	b.Helper()
	rcOnce.Do(func() {
		ctx := context.Background()
		s := &deepdb.Schema{Tables: []*deepdb.TableDef{
			{
				Name:       "customer",
				PrimaryKey: "c_id",
				Columns: []deepdb.ColumnDef{
					{Name: "c_id", Kind: deepdb.IntKind},
					{Name: "c_age", Kind: deepdb.IntKind},
					{Name: "c_region", Kind: deepdb.CategoricalKind},
				},
			},
			{
				Name:       "orders",
				PrimaryKey: "o_id",
				Columns: []deepdb.ColumnDef{
					{Name: "o_id", Kind: deepdb.IntKind},
					{Name: "o_c_id", Kind: deepdb.IntKind},
					{Name: "o_amount", Kind: deepdb.FloatKind},
				},
				ForeignKeys: []deepdb.ForeignKey{{Column: "o_c_id", RefTable: "customer", RefColumn: "c_id"}},
			},
		}}
		cust := deepdb.NewTable(s.Table("customer"))
		ord := deepdb.NewTable(s.Table("orders"))
		region := cust.Column("c_region")
		regions := []string{"EU", "ASIA", "US"}
		oid := 0
		for i := 0; i < 3000; i++ {
			cust.AppendRow(deepdb.Int(i), deepdb.Int(18+(i*7)%60),
				deepdb.Float(float64(region.Encode(regions[i%3]))))
			for k := 0; k <= i%3; k++ {
				ord.AppendRow(deepdb.Int(oid), deepdb.Int(i), deepdb.Float(float64(10+(oid*13)%90)))
				oid++
			}
		}
		db, err := deepdb.LearnDataset(ctx, s, deepdb.Dataset{"customer": cust, "orders": ord},
			deepdb.WithMaxSamples(6000))
		if err != nil {
			panic(err)
		}
		path := filepath.Join(b.TempDir(), "rc.deepdb")
		if err := db.Save(path); err != nil {
			panic(err)
		}
		if rcDB, err = deepdb.Open(ctx, path, deepdb.WithResultCacheSize(1024)); err != nil {
			panic(err)
		}
		if rcPlainDB, err = deepdb.Open(ctx, path); err != nil {
			panic(err)
		}
	})
	return rcDB, rcPlainDB
}

const rcTemplate = "SELECT COUNT(*) FROM customer JOIN orders WHERE c_age < ? AND o_amount >= ?"

// BenchmarkResultCacheHit: the same binding over and over against the
// result cache — after the first call every execution is a cache hit that
// skips plan lookup and evaluation entirely.
func BenchmarkResultCacheHit(b *testing.B) {
	db, _ := resultCacheFixture(b)
	ctx := context.Background()
	stmt, err := db.Prepare(rcTemplate)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := stmt.Exec(ctx, 40, 50); err != nil { // warm the entry
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Exec(ctx, 40, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResultCacheMissExec: the identical workload on the same model
// with the cache disabled — every call pays the full evaluation. The
// hit/miss ratio of these two benches is the cache's speedup.
func BenchmarkResultCacheMissExec(b *testing.B) {
	_, db := resultCacheFixture(b)
	ctx := context.Background()
	stmt, err := db.Prepare(rcTemplate)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Exec(ctx, 40, 50); err != nil {
			b.Fatal(err)
		}
	}
}

const rcGroupSQL = "SELECT COUNT(*) FROM customer GROUP BY c_age"

// BenchmarkGroupStreamRows: drain a grouped result through the chunked
// row iterator (O(chunk) memory) and report streamed rows/s.
func BenchmarkGroupStreamRows(b *testing.B) {
	_, db := resultCacheFixture(b)
	ctx := context.Background()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.QueryRows(ctx, rcGroupSQL)
		if err != nil {
			b.Fatal(err)
		}
		for rows.Next() {
			total++
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if total == 0 {
		b.Fatal("no rows streamed")
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkGroupMaterializedRows: the same grouped query through the
// materializing path (uncached, so each iteration really evaluates),
// reported in the same rows/s unit for direct comparison.
func BenchmarkGroupMaterializedRows(b *testing.B) {
	_, db := resultCacheFixture(b)
	ctx := context.Background()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(ctx, rcGroupSQL)
		if err != nil {
			b.Fatal(err)
		}
		total += len(res.Groups)
	}
	b.StopTimer()
	if total == 0 {
		b.Fatal("no rows materialized")
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "rows/s")
}
