// Package ensemble constructs and maintains DeepDB's ensembles of RSPNs
// (Sections 3.3 and 5.3 of the paper). The base ensemble learns one RSPN
// over the full outer join of every FK-connected table pair whose maximum
// pairwise attribute RDC exceeds a threshold, and single-table RSPNs for
// the remaining tables. A budget factor then admits additional RSPNs over
// three or more tables, chosen greedily by mean pairwise dependency value
// and relative creation cost.
package ensemble

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/drift"
	"repro/internal/parallel"
	"repro/internal/rspn"
	"repro/internal/schema"
	"repro/internal/spn"
	"repro/internal/stats"
	"repro/internal/table"
)

// Config controls ensemble construction. Zero values fall back to the
// paper's hyperparameters (Section 6: RDC threshold 0.3, budget factor 0.5).
type Config struct {
	// RDCThreshold decides when two tables are correlated enough to learn
	// a joint RSPN.
	RDCThreshold float64
	// BudgetFactor B admits additional multi-table RSPNs until their
	// accumulated relative cost exceeds B times the base ensemble's cost.
	BudgetFactor float64
	// MaxSamples caps the training rows per RSPN.
	MaxSamples int
	// RDCSampleRows caps the rows used for pairwise dependency tests.
	RDCSampleRows int
	// MaxRSPNTables caps the table count of budget-selected RSPNs.
	MaxRSPNTables int
	// SPN holds structure-learning hyperparameters.
	SPN spn.LearnConfig
	// Seed drives sampling and learning.
	Seed int64
	// Exact uses the memorizing learner (tiny data sets / tests).
	Exact bool
	// SingleTableOnly learns one RSPN per table and no joins at all — the
	// paper's cheap fallback strategy evaluated at the end of Section 6.1.
	SingleTableOnly bool
	// Parallelism caps the number of base-ensemble RSPNs learned
	// concurrently. Values <= 1 learn sequentially.
	Parallelism int
}

// DefaultConfig mirrors the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{
		RDCThreshold:  0.3,
		BudgetFactor:  0.5,
		MaxSamples:    100000,
		RDCSampleRows: 1000,
		MaxRSPNTables: 4,
		SPN:           spn.DefaultLearnConfig(),
		Seed:          1,
	}
}

// TableStats is the per-table statistics snapshot captured at Build time
// and persisted with the model, so query serving (column ownership and
// Theorem-2 branch denominators) never needs the live base tables. Rows is
// maintained exactly under Insert/Delete.
type TableStats struct {
	// Rows is the table's cardinality, including the synthetic
	// tuple-factor columns' host rows; unlike the live table's NumRows it
	// shrinks on Delete (deleted rows are only tombstoned in the table).
	Rows float64
	// Columns lists every column the table owns, including the synthetic
	// tuple-factor columns added during construction.
	Columns []string
	// Dicts maps each categorical column to its dictionary (strings
	// indexed by code), so string-literal predicates resolve and group-by
	// labels decode without the base tables attached. Refreshed from the
	// live dictionaries on every Save (inserts can extend them).
	Dicts map[string][]string
}

// HasColumn reports whether the snapshot lists the named column.
func (st TableStats) HasColumn(col string) bool {
	for _, c := range st.Columns {
		if c == col {
			return true
		}
	}
	return false
}

// Ensemble is a set of RSPNs plus the dependency statistics used both for
// construction and for the runtime execution strategy (Section 4.1).
type Ensemble struct {
	Schema *schema.Schema
	RSPNs  []*rspn.RSPN
	// AttrRDC maps "colA|colB" (sorted) to the measured RDC between the
	// two attributes. The greedy execution strategy scores candidate
	// RSPNs with it.
	AttrRDC map[string]float64
	// PairDep maps "tableA|tableB" (sorted) to the dependency value (max
	// attribute RDC) between the two tables.
	PairDep map[string]float64
	// Stats holds per-table cardinalities and column sets, captured at
	// construction, persisted with the model and maintained under
	// updates. It is the query engine's source of truth for table sizes
	// and column ownership, so serving works without base tables.
	Stats map[string]TableStats
	// BuildTime records how long construction took.
	BuildTime time.Duration

	// Tables holds the live base tables (with tuple-factor columns),
	// needed for updates. Not serialized.
	Tables map[string]*table.Table

	// Drift tracks per-member staleness for background re-learning when
	// enabled via EnableDrift. Shared by pointer across copy-on-write
	// clones, like the write index. Not serialized.
	Drift *drift.Set

	cfg Config
	rng *rand.Rand
	// idx is the write-path primary-key index plus delete tombstones
	// (update.go). Shared by pointer across copy-on-write clones; the
	// query path never reads it.
	idx *writeIndex
}

// NewManual assembles an ensemble from pre-learned RSPNs, bypassing
// construction. Dependency statistics may be nil; the execution strategy
// then treats all attribute pairs as uncorrelated. Intended for tests and
// for callers that manage learning themselves.
func NewManual(s *schema.Schema, tables map[string]*table.Table, rspns []*rspn.RSPN, cfg Config) *Ensemble {
	if cfg.RDCThreshold == 0 {
		cfg = DefaultConfig()
	}
	e := &Ensemble{
		Schema:  s,
		RSPNs:   rspns,
		AttrRDC: make(map[string]float64),
		PairDep: make(map[string]float64),
		Tables:  tables,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		idx:     newWriteIndex(),
	}
	e.captureStats()
	return e
}

// AttrKey builds the canonical sorted key for an attribute pair; the same
// canonical form keys table pairs in PairDep.
func AttrKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Build constructs an ensemble for the schema over the given base tables.
// The tables are augmented in place with tuple-factor columns. Cancelling
// ctx aborts construction (including mid-RSPN) with ctx.Err().
func Build(ctx context.Context, s *schema.Schema, tables map[string]*table.Table, cfg Config) (*Ensemble, error) {
	start := time.Now()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if cfg.RDCThreshold == 0 {
		cfg.RDCThreshold = 0.3
	}
	if cfg.MaxSamples == 0 {
		cfg.MaxSamples = 100000
	}
	if cfg.RDCSampleRows == 0 {
		cfg.RDCSampleRows = 1000
	}
	if cfg.MaxRSPNTables == 0 {
		cfg.MaxRSPNTables = 4
	}
	if cfg.SPN.RDCThreshold == 0 {
		cfg.SPN = spn.DefaultLearnConfig()
	}
	e := &Ensemble{
		Schema:  s,
		AttrRDC: make(map[string]float64),
		PairDep: make(map[string]float64),
		Tables:  tables,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		idx:     newWriteIndex(),
	}
	// Tuple factors for every relationship (idempotent).
	for _, rel := range s.Relationships() {
		one, many := tables[rel.One], tables[rel.Many]
		if one == nil || many == nil {
			return nil, fmt.Errorf("ensemble: missing data for relationship %s", rel.ID())
		}
		if one.Column(table.TupleFactorColumn(rel)) == nil {
			if err := table.AddTupleFactor(one, many, rel); err != nil {
				return nil, err
			}
		}
	}
	// Snapshot per-table statistics now that every synthetic column
	// exists; from here on query serving never needs the tables again.
	e.captureStats()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.computeDependencies(); err != nil {
		return nil, err
	}
	if err := e.buildBase(ctx); err != nil {
		return nil, err
	}
	if !cfg.SingleTableOnly && cfg.BudgetFactor > 0 {
		if err := e.optimize(ctx); err != nil {
			return nil, err
		}
	}
	e.BuildTime = time.Since(start)
	return e, nil
}

// fds builds dictionaries for the declared FDs of one table.
func (e *Ensemble) fds(tableName string) ([]rspn.FD, error) {
	meta := e.Schema.Table(tableName)
	t := e.Tables[tableName]
	var out []rspn.FD
	for _, fd := range meta.FDs {
		d, err := rspn.BuildFD(t, fd)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// fdsFor concatenates the dictionaries of multiple tables.
func (e *Ensemble) fdsFor(tables []string) ([]rspn.FD, error) {
	var out []rspn.FD
	for _, tn := range tables {
		f, err := e.fds(tn)
		if err != nil {
			return nil, err
		}
		out = append(out, f...)
	}
	return out, nil
}

// attributeColumns lists the learnable (non-key, non-synthetic) attribute
// columns of a base table, the inputs to dependency testing.
func (e *Ensemble) attributeColumns(tableName string) []string {
	meta := e.Schema.Table(tableName)
	t := e.Tables[tableName]
	skip := map[string]bool{}
	if meta.PrimaryKey != "" {
		skip[meta.PrimaryKey] = true
	}
	for _, fk := range meta.ForeignKeys {
		skip[fk.Column] = true
	}
	var out []string
	for _, name := range t.ColumnNames() {
		if skip[name] || strings.HasPrefix(name, "__") {
			continue
		}
		out = append(out, name)
	}
	return out
}

// computeDependencies measures (a) RDC between attribute pairs within each
// table and (b) across every FK-adjacent table pair on a sample of the
// inner join, populating AttrRDC and PairDep.
func (e *Ensemble) computeDependencies() error {
	rdcCfg := stats.RDCConfig{K: 10, Scale: 1.0 / 6.0, Seed: e.cfg.Seed}
	// Within-table pairs.
	for _, meta := range e.Schema.Tables {
		t := e.Tables[meta.Name]
		cols := e.attributeColumns(meta.Name)
		rows := t.SampleRows(e.cfg.RDCSampleRows, e.rng)
		data, err := t.Matrix(cols, rows)
		if err != nil {
			return err
		}
		for i := 0; i < len(cols); i++ {
			for j := i + 1; j < len(cols); j++ {
				xi, xj := columnOf(data, i), columnOf(data, j)
				e.AttrRDC[AttrKey(cols[i], cols[j])] = stats.RDC(xi, xj, rdcCfg)
			}
		}
	}
	// Cross-table pairs for adjacent tables.
	for _, rel := range e.Schema.Relationships() {
		dep, err := e.crossTableDependency([]string{rel.One, rel.Many}, rel.One, rel.Many, rdcCfg)
		if err != nil {
			return err
		}
		e.PairDep[AttrKey(rel.One, rel.Many)] = dep
	}
	return nil
}

// crossTableDependency computes the dependency value (max attribute-pair
// RDC) between attributes of tables a and b over a sample of the inner join
// of joinTables, caching the individual attribute RDCs.
func (e *Ensemble) crossTableDependency(joinTables []string, a, b string, rdcCfg stats.RDCConfig) (float64, error) {
	edges, err := e.Schema.JoinTree(joinTables)
	if err != nil {
		return 0, err
	}
	j, err := table.InnerJoin(e.Tables, table.JoinSpec{Tables: joinTables, Edges: edges})
	if err != nil {
		return 0, err
	}
	if j.NumRows() == 0 {
		return 0, nil
	}
	rows := j.SampleRows(e.cfg.RDCSampleRows, e.rng)
	colsA := e.attributeColumns(a)
	colsB := e.attributeColumns(b)
	max := 0.0
	for _, ca := range colsA {
		da, err := j.Matrix([]string{ca}, rows)
		if err != nil {
			return 0, err
		}
		for _, cb := range colsB {
			db, err := j.Matrix([]string{cb}, rows)
			if err != nil {
				return 0, err
			}
			v := stats.RDC(columnOf(da, 0), columnOf(db, 0), rdcCfg)
			key := AttrKey(ca, cb)
			if v > e.AttrRDC[key] {
				e.AttrRDC[key] = v
			}
			if v > max {
				max = v
			}
		}
	}
	return max, nil
}

func columnOf(data [][]float64, j int) []float64 {
	out := make([]float64, len(data))
	for i := range data {
		out[i] = data[i][j]
	}
	return out
}

// buildBase learns the base ensemble: joint RSPNs for correlated adjacent
// pairs, single-table RSPNs elsewhere (every table ends up covered). With
// Parallelism > 1 the (independent) members are learned concurrently; the
// ensemble order stays deterministic regardless.
func (e *Ensemble) buildBase(ctx context.Context) error {
	var jobs [][]string
	covered := map[string]bool{}
	if !e.cfg.SingleTableOnly {
		for _, rel := range e.Schema.Relationships() {
			if e.PairDep[AttrKey(rel.One, rel.Many)] <= e.cfg.RDCThreshold {
				continue
			}
			jobs = append(jobs, []string{rel.One, rel.Many})
			covered[rel.One] = true
			covered[rel.Many] = true
		}
	}
	for _, meta := range e.Schema.Tables {
		if covered[meta.Name] {
			continue
		}
		jobs = append(jobs, []string{meta.Name})
	}
	members := make([]*rspn.RSPN, len(jobs))
	learn := func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(jobs[i]) == 1 {
			r, err := e.learnSingle(ctx, jobs[i][0])
			members[i] = r
			return err
		}
		r, err := e.learnJoin(ctx, jobs[i])
		members[i] = r
		return err
	}
	if err := parallel.ForEach(len(jobs), e.cfg.Parallelism, learn); err != nil {
		return err
	}
	e.RSPNs = append(e.RSPNs, members...)
	return nil
}

// learnSingle learns a single-table RSPN.
func (e *Ensemble) learnSingle(ctx context.Context, tableName string) (*rspn.RSPN, error) {
	t := e.Tables[tableName]
	fds, err := e.fdsFor([]string{tableName})
	if err != nil {
		return nil, err
	}
	cols := rspn.LearnColumns(e.Schema, t, []string{tableName}, fds)
	opts := e.learnOpts()
	return rspn.Learn(ctx, t, []string{tableName}, nil, cols, fds, opts)
}

// learnJoin materializes the full outer join of the tables and learns a
// joint RSPN over it.
func (e *Ensemble) learnJoin(ctx context.Context, tables []string) (*rspn.RSPN, error) {
	edges, err := e.Schema.JoinTree(tables)
	if err != nil {
		return nil, err
	}
	spec := table.JoinSpec{Tables: tables, Edges: edges}
	j, err := table.FullOuterJoin(e.Tables, spec)
	if err != nil {
		return nil, err
	}
	fds, err := e.fdsFor(tables)
	if err != nil {
		return nil, err
	}
	cols := rspn.LearnColumns(e.Schema, j, tables, fds)
	opts := e.learnOpts()
	return rspn.Learn(ctx, j, tables, edges, cols, fds, opts)
}

func (e *Ensemble) learnOpts() rspn.LearnOptions {
	return rspn.LearnOptions{
		SPN:        e.cfg.SPN,
		MaxSamples: e.cfg.MaxSamples,
		Seed:       e.cfg.Seed,
		Exact:      e.cfg.Exact,
	}
}

// Covering returns the RSPNs whose table set includes all given tables.
func (e *Ensemble) Covering(tables []string) []*rspn.RSPN {
	var out []*rspn.RSPN
	for _, r := range e.RSPNs {
		if r.CoversTables(tables) {
			out = append(out, r)
		}
	}
	return out
}

// RSPNFor returns some RSPN containing the table (preferring the smallest),
// used for Theorem 2 denominators.
func (e *Ensemble) RSPNFor(tableName string) *rspn.RSPN {
	var best *rspn.RSPN
	for _, r := range e.RSPNs {
		if !r.HasTable(tableName) {
			continue
		}
		if best == nil || len(r.Tables) < len(best.Tables) {
			best = r
		}
	}
	return best
}

// captureStats snapshots per-table cardinalities, column sets and
// categorical dictionaries from the live base tables (call after
// tuple-factor augmentation). A no-op without attached tables.
func (e *Ensemble) captureStats() {
	if e.Tables == nil {
		return
	}
	e.Stats = make(map[string]TableStats, len(e.Tables))
	//deepdb:orderinvariant builds independent per-table map entries; no cross-iteration state
	for name, t := range e.Tables {
		e.Stats[name] = TableStats{
			Rows:    float64(t.NumRows()),
			Columns: append([]string(nil), t.ColumnNames()...),
			Dicts:   captureDicts(t),
		}
	}
}

// captureDicts copies the categorical dictionaries of one table.
func captureDicts(t *table.Table) map[string][]string {
	var out map[string][]string
	for _, c := range t.Cols {
		if c.DictSize() == 0 {
			continue
		}
		if out == nil {
			out = map[string][]string{}
		}
		out[c.Meta.Name] = append([]string(nil), c.Dict()...)
	}
	return out
}

// tableNames returns the attached table names in sorted order, so lookups
// that pick "the first table owning a column" are deterministic.
func (e *Ensemble) tableNames() []string {
	names := make([]string, 0, len(e.Tables))
	for n := range e.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// statNames returns the persisted stats table names in sorted order.
func (e *Ensemble) statNames() []string {
	names := make([]string, 0, len(e.Stats))
	for n := range e.Stats {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ResolveLabel maps a string literal on a column to its dictionary code —
// through the live base table when attached, through the persisted
// dictionaries otherwise. known reports whether any table owns the column;
// found whether the literal exists in its dictionary. Tables are consulted
// in sorted name order, so when several own the column the answer is
// stable across runs.
//
//deepdb:nocancel scans one categorical dictionary per lookup, bounded by the distinct labels of a single column
func (e *Ensemble) ResolveLabel(column, literal string) (code float64, found, known bool) {
	if e.Tables != nil {
		for _, name := range e.tableNames() {
			c := e.Tables[name].Column(column)
			if c == nil {
				continue
			}
			if code := c.Lookup(literal); code >= 0 {
				return float64(code), true, true
			}
			return 0, false, true
		}
		return 0, false, false
	}
	for _, name := range e.statNames() {
		st := e.Stats[name]
		if !st.HasColumn(column) {
			continue
		}
		for code, s := range st.Dicts[column] {
			if s == literal {
				return float64(code), true, true
			}
		}
		return 0, false, true
	}
	return 0, false, false
}

// DecodeLabel renders a dictionary code of a categorical column as its
// string, preferring the live base table and falling back to the
// persisted dictionaries. Returns "" when the column has no dictionary or
// the code is out of range.
func (e *Ensemble) DecodeLabel(column string, code int) string {
	if e.Tables != nil {
		for _, name := range e.tableNames() {
			if c := e.Tables[name].Column(column); c != nil && c.DictSize() > 0 {
				return c.Decode(code)
			}
		}
		return ""
	}
	for _, name := range e.statNames() {
		if dict := e.Stats[name].Dicts[column]; len(dict) > 0 {
			if code < 0 || code >= len(dict) {
				return ""
			}
			return dict[code]
		}
	}
	return ""
}

// statsRowDelta adjusts the maintained cardinality of one table by d rows.
func (e *Ensemble) statsRowDelta(tableName string, d float64) {
	if st, ok := e.Stats[tableName]; ok {
		st.Rows += d
		e.Stats[tableName] = st
	}
}

// TableRows returns the table's current cardinality: the persisted
// statistic (maintained exactly under Insert/Delete) when present, falling
// back to the live table's row count for ensembles without a snapshot.
func (e *Ensemble) TableRows(tableName string) (float64, bool) {
	if st, ok := e.Stats[tableName]; ok {
		return st.Rows, true
	}
	if t := e.Tables[tableName]; t != nil {
		return float64(t.NumRows()), true
	}
	return 0, false
}

// TableHasColumn reports whether the named base table owns the column.
// Resolution order: the persisted statistics snapshot (complete, includes
// synthetic tuple-factor columns), then the live table, then the schema —
// declared columns plus the tuple-factor columns of relationships the
// table is the One side of. The fallbacks keep pre-stats ensembles
// (NewManual without tables) working.
func (e *Ensemble) TableHasColumn(tableName, col string) bool {
	if st, ok := e.Stats[tableName]; ok {
		return st.HasColumn(col)
	}
	if t := e.Tables[tableName]; t != nil {
		return t.Column(col) != nil
	}
	meta := e.Schema.Table(tableName)
	if meta == nil {
		return false
	}
	if _, ok := meta.Column(col); ok {
		return true
	}
	for _, rel := range e.Schema.Relationships() {
		if rel.One == tableName && table.TupleFactorColumn(rel) == col {
			return true
		}
	}
	return false
}

// Describe returns a human-readable ensemble summary, including the
// persisted per-table statistics the model serves from.
func (e *Ensemble) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ensemble: %d RSPNs (built in %v)\n", len(e.RSPNs), e.BuildTime.Round(time.Millisecond))
	for _, r := range e.RSPNs {
		fmt.Fprintf(&b, "  [%s] rows=%.0f sample=%.3f nodes=%d\n",
			strings.Join(r.Tables, " |x| "), r.FullSize, r.SampleRate, r.Model.Root.NumNodes())
	}
	if len(e.Stats) > 0 {
		fmt.Fprintf(&b, "table statistics (persisted with the model):\n")
		names := make([]string, 0, len(e.Stats))
		for name := range e.Stats {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := e.Stats[name]
			fmt.Fprintf(&b, "  %s: rows=%.0f columns=%d\n", name, st.Rows, len(st.Columns))
		}
	}
	return b.String()
}

// ---- Section 5.3: budget-constrained ensemble optimization ----

// candidate is one potential additional multi-table RSPN.
type candidate struct {
	tables  []string
	meanDep float64
	cost    float64
}

// optimize admits additional RSPNs over >2 tables by the paper's greedy
// rule: highest mean pairwise dependency first, relative cost
// cols(r)^2 * rows(r) as tie-breaker and budget meter, until the accumulated
// cost exceeds BudgetFactor times the base ensemble cost.
func (e *Ensemble) optimize(ctx context.Context) error {
	baseCost := 0.0
	for _, r := range e.RSPNs {
		baseCost += relativeCost(len(r.Model.Columns), r.FullSize)
	}
	budget := e.cfg.BudgetFactor * baseCost
	cands, err := e.candidates()
	if err != nil {
		return err
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].meanDep != cands[j].meanDep {
			return cands[i].meanDep > cands[j].meanDep
		}
		return cands[i].cost < cands[j].cost
	})
	spent := 0.0
	for _, c := range cands {
		if spent+c.cost > budget {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		r, err := e.learnJoin(ctx, c.tables)
		if err != nil {
			return err
		}
		e.RSPNs = append(e.RSPNs, r)
		spent += c.cost
	}
	return nil
}

// candidates enumerates connected table subsets of size 3..MaxRSPNTables
// that are not already covered by an ensemble member, with their mean
// pairwise dependency and estimated relative cost.
func (e *Ensemble) candidates() ([]candidate, error) {
	existing := map[string]bool{}
	for _, r := range e.RSPNs {
		existing[tableSetKey(r.Tables)] = true
	}
	subsets := e.connectedSubsets(e.cfg.MaxRSPNTables)
	var out []candidate
	for _, sub := range subsets {
		if len(sub) < 3 || existing[tableSetKey(sub)] {
			continue
		}
		dep, err := e.meanDependency(sub)
		if err != nil {
			return nil, err
		}
		cols := 0
		rows := 0.0
		for _, tn := range sub {
			cols += len(e.attributeColumns(tn))
			if r := float64(e.Tables[tn].NumRows()); r > rows {
				rows = r
			}
		}
		out = append(out, candidate{tables: sub, meanDep: dep, cost: relativeCost(cols, rows)})
	}
	return out, nil
}

// meanDependency averages the pairwise dependency values over all table
// pairs of the subset (the paper's objective). Missing pair values are
// computed on demand over the join path.
func (e *Ensemble) meanDependency(tables []string) (float64, error) {
	rdcCfg := stats.RDCConfig{K: 10, Scale: 1.0 / 6.0, Seed: e.cfg.Seed}
	total, n := 0.0, 0
	for i := 0; i < len(tables); i++ {
		for j := i + 1; j < len(tables); j++ {
			key := AttrKey(tables[i], tables[j])
			dep, ok := e.PairDep[key]
			if !ok {
				var err error
				dep, err = e.crossTableDependency(tables, tables[i], tables[j], rdcCfg)
				if err != nil {
					return 0, err
				}
				e.PairDep[key] = dep
			}
			total += dep
			n++
		}
	}
	if n == 0 {
		return 0, nil
	}
	return total / float64(n), nil
}

// connectedSubsets enumerates connected subsets of the FK graph up to the
// given size.
func (e *Ensemble) connectedSubsets(maxSize int) [][]string {
	adj := map[string][]string{}
	for _, rel := range e.Schema.Relationships() {
		adj[rel.One] = append(adj[rel.One], rel.Many)
		adj[rel.Many] = append(adj[rel.Many], rel.One)
	}
	seen := map[string]bool{}
	var out [][]string
	var grow func(set []string)
	grow = func(set []string) {
		key := tableSetKey(set)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, append([]string(nil), set...))
		if len(set) >= maxSize {
			return
		}
		inSet := map[string]bool{}
		for _, t := range set {
			inSet[t] = true
		}
		for _, t := range set {
			for _, nb := range adj[t] {
				if inSet[nb] {
					continue
				}
				grow(append(append([]string(nil), set...), nb))
			}
		}
	}
	for _, meta := range e.Schema.Tables {
		grow([]string{meta.Name})
	}
	return out
}

func tableSetKey(tables []string) string {
	s := append([]string(nil), tables...)
	sort.Strings(s)
	return strings.Join(s, ",")
}

// relativeCost models RSPN creation cost as quadratic in columns and linear
// in rows (Section 5.3).
func relativeCost(cols int, rows float64) float64 {
	return float64(cols*cols) * rows
}
