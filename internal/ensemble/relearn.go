package ensemble

// relearn.go implements drift-triggered member regeneration: re-learning a
// single RSPN from the current base tables (with tombstoned rows compacted
// away) and swapping it into a copy-on-write ensemble clone. The facade
// drives this from a background goroutine — RelearnMember only reads
// published immutable state plus a dead-row copy taken under the update
// lock, so learning runs without blocking readers or (usually) writers.

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/drift"
	"repro/internal/rspn"
	"repro/internal/table"
)

// EnableDrift initializes per-member staleness tracking over the attached
// base tables with one O(cells) scan: every member's baseline is the
// current table state. Tracked columns are the attribute columns (keys and
// synthetic tuple-factor columns drift trivially under key-sequential
// inserts and are excluded). A no-op without attached tables.
func (e *Ensemble) EnableDrift() {
	if e.Tables == nil {
		return
	}
	cols := make(map[string][]string, len(e.Tables))
	//deepdb:orderinvariant builds independent per-table map entries; no cross-iteration state
	for name := range e.Tables {
		cols[name] = e.attributeColumns(name)
	}
	members := make([][]string, len(e.RSPNs))
	for i, r := range e.RSPNs {
		members[i] = r.Tables
	}
	e.Drift = drift.New(e.Tables, cols, members)
}

// DeadRows returns a deep copy of the tombstone sets. Deleted rows stay
// physically present in the base tables, so a re-learn must know which
// rows to exclude; the copy lets learning proceed against an immutable
// snapshot while the live sets keep moving. Call under the update lock.
//
//deepdb:nocancel runs under the update lock and must complete atomically; the work is one flat map copy
func (e *Ensemble) DeadRows() map[string]map[int]bool {
	out := make(map[string]map[int]bool, len(e.idx.dead))
	//deepdb:orderinvariant map deep copy; the result is independent of visit order
	for name, d := range e.idx.dead {
		if len(d) == 0 {
			continue
		}
		cp := make(map[int]bool, len(d))
		//deepdb:orderinvariant map deep copy; the result is independent of visit order
		for ri, v := range d {
			if v {
				cp[ri] = true
			}
		}
		out[name] = cp
	}
	return out
}

// RelearnMember learns a fresh replacement for member i from the current
// base tables, compacting tombstoned rows away first (dead is the copy
// DeadRows returned; re-learning from the raw tables would resurrect every
// deleted row). The receiver is not mutated — callers swap the result in
// with SwapMember. Learning is deterministic given the table state
// (rspn.Learn seeds its own rng from the configured seed), so it can run
// outside the update lock against a published snapshot.
func (e *Ensemble) RelearnMember(ctx context.Context, i int, dead map[string]map[int]bool) (*rspn.RSPN, error) {
	if i < 0 || i >= len(e.RSPNs) {
		return nil, fmt.Errorf("ensemble: no member %d", i)
	}
	if e.Tables == nil {
		return nil, fmt.Errorf("ensemble: no base tables attached")
	}
	r := e.RSPNs[i]
	// A shallow sub-ensemble pointing at compacted views of the member's
	// tables; learnSingle/learnJoin only touch Schema, Tables and cfg.
	sub := &Ensemble{
		Schema: e.Schema,
		Tables: make(map[string]*table.Table, len(r.Tables)),
		cfg:    e.cfg,
		rng:    rand.New(rand.NewSource(e.cfg.Seed)),
	}
	for _, name := range r.Tables {
		t, ok := e.Tables[name]
		if !ok {
			return nil, fmt.Errorf("ensemble: unknown table %s", name)
		}
		d := dead[name]
		if len(d) == 0 {
			sub.Tables[name] = t
			continue
		}
		live := make([]int, 0, t.NumRows()-len(d))
		for ri := 0; ri < t.NumRows(); ri++ {
			if !d[ri] {
				live = append(live, ri)
			}
		}
		sub.Tables[name] = t.Select(live)
	}
	if len(r.Tables) == 1 {
		return sub.learnSingle(ctx, r.Tables[0])
	}
	return sub.learnJoin(ctx, r.Tables)
}

// SwapMember returns a shallow clone of the ensemble with member i
// replaced by nr: the RSPN slice is copied, everything else — tables,
// statistics, dependency maps, the shared write index and drift set — is
// shared by pointer. Publishing the clone hot-swaps the model under
// concurrent readers exactly like an update batch publication.
func (e *Ensemble) SwapMember(i int, nr *rspn.RSPN) *Ensemble {
	out := *e
	out.RSPNs = append([]*rspn.RSPN(nil), e.RSPNs...)
	out.RSPNs[i] = nr
	return &out
}
