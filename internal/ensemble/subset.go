package ensemble

// subset.go carves per-shard sub-ensembles out of a learned ensemble. A
// subset owns a slice of the members but keeps the full schema, dependency
// statistics and base tables, because incremental updates need them all:
// tuple-factor maintenance looks up partner rows in referenced tables even
// when no local member covers them, and Theorem-2 denominators come from
// the per-table statistics. Sharing the table pointers is safe — the update
// path is copy-on-write, so the first apply on a subset diverges its
// touched tables without ever mutating the parent's.

import (
	"fmt"
	"math/rand"

	"repro/internal/rspn"
	"repro/internal/table"
)

// Subset returns a new ensemble holding exactly the given members (global
// indices into RSPNs, in the given order). The subset has its own write
// index, statistics map and rng, so it can absorb the same mutation stream
// as the parent — or any other subset — independently and deterministically:
// at full sample rate, applying one stream to two subsets leaves their
// shared members bit-identical.
func (e *Ensemble) Subset(members []int) (*Ensemble, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ensemble: empty member subset")
	}
	rs := make([]*rspn.RSPN, len(members))
	seen := make(map[int]bool, len(members))
	for i, m := range members {
		if m < 0 || m >= len(e.RSPNs) {
			return nil, fmt.Errorf("ensemble: no member %d (have %d)", m, len(e.RSPNs))
		}
		if seen[m] {
			return nil, fmt.Errorf("ensemble: member %d listed twice", m)
		}
		seen[m] = true
		rs[i] = e.RSPNs[m]
	}
	out := &Ensemble{
		Schema:    e.Schema,
		RSPNs:     rs,
		AttrRDC:   e.AttrRDC,
		PairDep:   e.PairDep,
		Stats:     make(map[string]TableStats, len(e.Stats)),
		BuildTime: e.BuildTime,
		cfg:       e.cfg,
		rng:       rand.New(rand.NewSource(e.cfg.Seed)),
		idx:       newWriteIndex(),
	}
	//deepdb:orderinvariant map copy; the result is independent of visit order
	for name, st := range e.Stats {
		out.Stats[name] = st
	}
	if e.Tables != nil {
		out.Tables = make(map[string]*table.Table, len(e.Tables))
		//deepdb:orderinvariant map copy sharing immutable-until-CoW table pointers
		for name, t := range e.Tables {
			out.Tables[name] = t
		}
	}
	return out, nil
}
