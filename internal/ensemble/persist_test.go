package ensemble

import (
	"bytes"
	"context"
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/table"
)

// TestStatsCapturedAndPersisted: Build snapshots per-table cardinalities
// and column sets (including synthetic tuple factors), and Save/Load
// round-trips them so a model-only ensemble still resolves table sizes and
// column ownership.
func TestStatsCapturedAndPersisted(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 300, true, 21)
	cfg := testConfig()
	cfg.BudgetFactor = 0
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, meta := range s.Tables {
		st, ok := e.Stats[meta.Name]
		if !ok {
			t.Fatalf("no stats captured for %s", meta.Name)
		}
		if want := float64(tabs[meta.Name].NumRows()); st.Rows != want {
			t.Fatalf("%s stats rows = %v, want %v", meta.Name, st.Rows, want)
		}
	}
	// The customer snapshot must list the synthetic tuple-factor column.
	rel := s.Relationships()[0]
	if !e.Stats[rel.One].HasColumn(table.TupleFactorColumn(rel)) {
		t.Fatalf("stats of %s missing tuple-factor column %s", rel.One, table.TupleFactorColumn(rel))
	}

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Load(&buf, nil) // model-only: no tables
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range e.Stats {
		st2, ok := e2.Stats[name]
		if !ok || st2.Rows != st.Rows || len(st2.Columns) != len(st.Columns) {
			t.Fatalf("stats for %s not round-tripped: %+v vs %+v", name, st, st2)
		}
	}
	if rows, ok := e2.TableRows("orders"); !ok || rows != float64(tabs["orders"].NumRows()) {
		t.Fatalf("model-only TableRows(orders) = %v,%v", rows, ok)
	}
	if !e2.TableHasColumn("customer", "c_age") || e2.TableHasColumn("orders", "c_age") {
		t.Fatal("model-only column ownership wrong")
	}
}

// TestUpdateMaintainsStats: Insert bumps the maintained cardinality,
// Delete shrinks it even though the base row is only tombstoned.
func TestUpdateMaintainsStats(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 200, true, 22)
	cfg := testConfig()
	cfg.BudgetFactor = 0
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := e.Stats["orders"].Rows
	if err := e.Insert("orders", map[string]table.Value{
		"o_id": table.Int(900000), "o_c_id": table.Int(0), "o_channel": table.Int(1),
	}); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats["orders"].Rows; got != before+1 {
		t.Fatalf("stats rows after insert = %v, want %v", got, before+1)
	}
	if err := e.Delete("orders", 900000); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats["orders"].Rows; got != before {
		t.Fatalf("stats rows after delete = %v, want %v", got, before)
	}
	// The tombstoned base row keeps NumRows inflated; the statistic is the
	// reconciled source of truth.
	if live := float64(tabs["orders"].NumRows()); live == before {
		t.Fatalf("expected live NumRows to drift after delete, got %v", live)
	}
	if rows, _ := e.TableRows("orders"); rows != before {
		t.Fatalf("TableRows = %v, want maintained %v", rows, before)
	}
}

// TestLoadRejectsForeignAndOldFiles: files without the versioned header
// (older deepdb models, arbitrary gobs, garbage) and files with an
// unsupported version fail with a clear error.
func TestLoadRejectsForeignAndOldFiles(t *testing.T) {
	// A pre-versioning model file began directly with the persisted
	// payload; any such stream fails header validation.
	var old bytes.Buffer
	type legacy struct{ RSPNs []string }
	if err := gob.NewEncoder(&old).Encode(legacy{RSPNs: []string{"x"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&old, nil); err == nil || !strings.Contains(err.Error(), "older") {
		t.Fatalf("legacy file error = %v, want mention of older version", err)
	}
	if _, err := Load(bytes.NewReader([]byte("not a gob at all")), nil); err == nil {
		t.Fatal("garbage input must fail")
	}
	// A file with the right magic but a future version is rejected with
	// the version numbers spelled out.
	var future bytes.Buffer
	if err := gob.NewEncoder(&future).Encode(fileHeader{Magic: modelMagic, Version: modelVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&future, nil); err == nil || !strings.Contains(err.Error(), "format v") {
		t.Fatalf("future version error = %v, want version mismatch", err)
	}
}

// TestSaveFileAtomic: SaveFile replaces the destination atomically, leaves
// no temp files behind, and never clobbers an existing model on error.
func TestSaveFileAtomic(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 150, true, 23)
	cfg := testConfig()
	cfg.BudgetFactor = 0
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.deepdb")
	// Pre-existing (corrupt) file must be replaced wholesale.
	if err := os.WriteFile(path, []byte("corrupt old model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, nil); err != nil {
		t.Fatalf("reload after overwrite: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, en := range entries {
			names = append(names, en.Name())
		}
		t.Fatalf("temp files left behind: %v", names)
	}
	// A failing save (unwritable directory) must not leave anything.
	if err := e.SaveFile(filepath.Join(dir, "missing-subdir", "m.deepdb")); err == nil {
		t.Fatal("expected error saving into a missing directory")
	}
}

// TestDictionariesPersisted: format v3 carries the categorical
// dictionaries, refreshed at Save time, so a model-only ensemble resolves
// string literals and decodes labels — and a previous-version header is
// rejected cleanly.
func TestDictionariesPersisted(t *testing.T) {
	s := &schema.Schema{Tables: []*schema.Table{{
		Name:       "customer",
		PrimaryKey: "c_id",
		Columns: []schema.Column{
			{Name: "c_id", Kind: schema.IntKind},
			{Name: "c_region", Kind: schema.CategoricalKind},
		},
	}}}
	cust := table.New(s.Table("customer"))
	regions := []string{"EU", "ASIA", "US"}
	for i := 0; i < 120; i++ {
		cust.AppendRow(table.Int(i), table.Float(float64(cust.Column("c_region").Encode(regions[i%3]))))
	}
	tabs := map[string]*table.Table{"customer": cust}
	cfg := testConfig()
	cfg.BudgetFactor = 0
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	catCol, catVal := "c_region", "ASIA"
	// Extend the dictionary after Build: Save must persist the refreshed
	// dictionary, not the one captured at construction.
	newCode := cust.Column(catCol).Encode("added-after-build")

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Load(&buf, nil) // model-only
	if err != nil {
		t.Fatal(err)
	}
	code, found, known := e2.ResolveLabel(catCol, catVal)
	if !known || !found {
		t.Fatalf("model-only ResolveLabel(%s, %q) = %v,%v,%v", catCol, catVal, code, found, known)
	}
	if got := e2.DecodeLabel(catCol, int(code)); got != catVal {
		t.Fatalf("model-only DecodeLabel round-trip: %q != %q", got, catVal)
	}
	if c2, found, _ := e2.ResolveLabel(catCol, "added-after-build"); !found || int(c2) != newCode {
		t.Fatalf("post-build dictionary entry not refreshed at Save: %v,%v", c2, found)
	}
	if _, found, known := e2.ResolveLabel(catCol, "no-such-value"); found || !known {
		t.Fatal("unknown literal must be not-found on a known column")
	}
	if _, _, known := e2.ResolveLabel("no_such_column", "x"); known {
		t.Fatal("unknown column must not resolve")
	}

	// A v2 file (previous format) is rejected with the version spelled out.
	var v2 bytes.Buffer
	if err := gob.NewEncoder(&v2).Encode(fileHeader{Magic: modelMagic, Version: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&v2, nil); err == nil || !strings.Contains(err.Error(), "format v2") {
		t.Fatalf("v2 file error = %v, want format-version rejection", err)
	}
}
