package ensemble

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/rspn"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/table"
)

// MutationOp discriminates the mutation kinds of a batch.
type MutationOp int

const (
	// OpInsert appends a new base-table row.
	OpInsert MutationOp = iota
	// OpDelete removes the base-table row with the given primary key.
	OpDelete
)

// Mutation is one base-table change for Apply: an insert carrying the new
// row's values, or a delete locating its victim by primary key.
type Mutation struct {
	Op    MutationOp
	Table string
	// Values holds the inserted row (OpInsert); missing columns become
	// NULL. Cells arrive already encoded (categoricals as dictionary
	// codes), so applying a mutation never extends a dictionary.
	Values map[string]table.Value
	// PK locates the deleted row (OpDelete).
	PK float64
}

// Insert absorbs a new base-table row into the ensemble (Section 5.2): the
// base table and its tuple factors are updated exactly, and every RSPN
// covering the table receives the corresponding join rows through
// Algorithm 1, subsampled at the RSPN's training sample rate. values maps
// column names to cell values; missing columns become NULL.
func (e *Ensemble) Insert(tableName string, values map[string]table.Value) error {
	_, err := e.Apply([]Mutation{{Op: OpInsert, Table: tableName, Values: values}})
	return err
}

// Delete removes a base-table row (located by primary key) from the
// ensemble — see deleteRow.
func (e *Ensemble) Delete(tableName string, pk float64) error {
	_, err := e.Apply([]Mutation{{Op: OpDelete, Table: tableName, PK: pk}})
	return err
}

// TouchedTables returns the set of base tables a mutation batch writes:
// each mutation's target table plus the One-side tables whose tuple
// factors the target's foreign keys bump. Tables the batch merely reads
// (One-ward join partners beyond one FK hop) are not included — applying
// the batch never writes them.
//
//deepdb:nocancel bounded by one mutation batch times the schema FK count; touches no row data
func (e *Ensemble) TouchedTables(muts []Mutation) map[string]bool {
	out := targetTables(muts)
	for i := range muts {
		if meta := e.Schema.Table(muts[i].Table); meta != nil {
			for _, fk := range meta.ForeignKeys {
				out[fk.RefTable] = true
			}
		}
	}
	return out
}

// targetTables is the set of tables the batch's mutations name directly —
// the only tables whose covering RSPNs receive model updates
// (insertRow/deleteRow route join rows through RSPNs with
// HasTable(target); a One-side table's factor bump only writes its base
// table, the covering models absorb it on the target side).
func targetTables(muts []Mutation) map[string]bool {
	out := make(map[string]bool)
	for i := range muts {
		out[muts[i].Table] = true
	}
	return out
}

// rspnTouches reports whether the RSPN covers any table of the set.
func rspnTouches(r *rspn.RSPN, touched map[string]bool) bool {
	for _, t := range r.Tables {
		if touched[t] {
			return true
		}
	}
	return false
}

// Apply absorbs a batch of mutations in order, rebuilding each touched
// RSPN's flattened evaluator once per batch instead of once per tuple
// (the per-row Insert/Delete entry points are one-element batches, so even
// the synchronous path pays one recompile per call). A failing mutation is
// reported (the first failure, naming its batch index) but does not stop
// the batch: the remaining mutations still apply, exactly as they would
// have under per-call application — so a coalesced batch ends in the same
// state as the same stream applied one call at a time, which is the
// pipeline's equivalence contract. There is no rollback; applied counts
// the mutations that succeeded.
func (e *Ensemble) Apply(muts []Mutation) (applied int, err error) {
	// Only RSPNs covering a mutation's target table receive model updates;
	// batching those is enough (One-side factor bumps write base tables,
	// not models).
	targets := targetTables(muts)
	for _, r := range e.RSPNs {
		if rspnTouches(r, targets) {
			r.BeginBatch()
			defer r.EndBatch()
		}
	}
	for i := range muts {
		var merr error
		switch muts[i].Op {
		case OpInsert:
			merr = e.insertRow(muts[i].Table, muts[i].Values)
		case OpDelete:
			merr = e.deleteRow(muts[i].Table, muts[i].PK)
		default:
			merr = fmt.Errorf("ensemble: unknown mutation op %d", muts[i].Op)
		}
		if merr != nil {
			if err == nil {
				err = fmt.Errorf("ensemble: mutation %d: %w", i, merr)
			}
			continue
		}
		applied++
	}
	return applied, err
}

// CloneForUpdate returns a copy-on-write clone prepared for the given
// mutation batch: the base tables the batch writes (TouchedTables — the
// targets plus FK-bumped One-side tables) and the RSPNs it model-updates
// (those covering a target table) are deep-cloned, so mutating the clone
// leaves the receiver — a published, concurrently-read snapshot —
// bit-for-bit untouched. Everything else is shared by pointer: unwritten
// tables, unmutated RSPNs (including those covering only FK-bumped
// One-side tables, whose models never absorb the bump), the schema, the
// dependency statistics, the rng (drawn from only by the serialized
// update path, keeping sampling decisions on one sequence regardless of
// batching), and the write-path PK index, which readers never consult
// and which therefore stays incrementally maintained across batches
// instead of being rebuilt per clone.
func (e *Ensemble) CloneForUpdate(muts []Mutation) *Ensemble {
	touched := e.TouchedTables(muts)
	targets := targetTables(muts)
	out := &Ensemble{
		Schema:    e.Schema,
		RSPNs:     make([]*rspn.RSPN, len(e.RSPNs)),
		AttrRDC:   e.AttrRDC,
		PairDep:   e.PairDep,
		BuildTime: e.BuildTime,
		Drift:     e.Drift,
		cfg:       e.cfg,
		rng:       e.rng,
		idx:       e.idx,
	}
	if e.Stats != nil {
		out.Stats = make(map[string]TableStats, len(e.Stats))
		//deepdb:orderinvariant map-to-map copy; the result is independent of visit order
		for name, st := range e.Stats {
			out.Stats[name] = st
		}
	}
	if e.Tables != nil {
		out.Tables = make(map[string]*table.Table, len(e.Tables))
		//deepdb:orderinvariant per-key clone-or-share decision; independent of visit order
		for name, t := range e.Tables {
			if touched[name] {
				out.Tables[name] = t.CloneData()
			} else {
				out.Tables[name] = t
			}
		}
	}
	for i, r := range e.RSPNs {
		if rspnTouches(r, targets) {
			out.RSPNs[i] = r.Clone()
		} else {
			out.RSPNs[i] = r
		}
	}
	return out
}

// CloneForStaleness returns a clone prepared for CheckStaleness, which
// refreshes the dependency statistics (AttrRDC/PairDep) that concurrent
// queries read for RSPN selection: the two maps are copied, everything
// else — tables, models, statistics — is shared, since the staleness check
// only reads them.
func (e *Ensemble) CloneForStaleness() *Ensemble {
	out := *e
	out.AttrRDC = make(map[string]float64, len(e.AttrRDC))
	//deepdb:orderinvariant map-to-map copy; the result is independent of visit order
	for k, v := range e.AttrRDC {
		out.AttrRDC[k] = v
	}
	out.PairDep = make(map[string]float64, len(e.PairDep))
	//deepdb:orderinvariant map-to-map copy; the result is independent of visit order
	for k, v := range e.PairDep {
		out.PairDep[k] = v
	}
	return &out
}

// insertRow is the per-row insert body shared by Insert and Apply.
func (e *Ensemble) insertRow(tableName string, values map[string]table.Value) error {
	t, ok := e.Tables[tableName]
	if !ok {
		return fmt.Errorf("ensemble: unknown table %s", tableName)
	}
	meta := e.Schema.Table(tableName)

	// 1. Append to the base table (tuple factors of a brand-new row are 0).
	row := make([]table.Value, len(t.Cols))
	for i, c := range t.Cols {
		if v, ok := values[c.Meta.Name]; ok {
			row[i] = v
		} else if strings.HasPrefix(c.Meta.Name, "__fk_") {
			row[i] = table.Int(0)
		} else {
			row[i] = table.Null()
		}
	}
	t.AppendRow(row...)
	newIdx := t.NumRows() - 1
	e.indexInsert(tableName, newIdx)
	e.statsRowDelta(tableName, +1)
	if e.Drift != nil {
		e.Drift.RecordRow(tableName, t, newIdx, +1)
	}

	// 2. Bump the tuple factor of every referenced One-side row.
	var bumps []factorBump
	for _, fk := range meta.ForeignKeys {
		rel := schema.Relationship{Many: tableName, ManyColumn: fk.Column, One: fk.RefTable, OneColumn: fk.RefColumn}
		fkCol := t.Column(fk.Column)
		if fkCol.IsNull(newIdx) {
			bumps = append(bumps, factorBump{rel: rel, row: -1})
			continue
		}
		oneRow, ok := e.lookupPK(fk.RefTable, fkCol.Data[newIdx])
		if !ok {
			bumps = append(bumps, factorBump{rel: rel, row: -1})
			continue
		}
		fCol := e.Tables[fk.RefTable].Column(table.TupleFactorColumn(rel))
		old := fCol.Data[oneRow]
		fCol.Data[oneRow] = old + 1
		bumps = append(bumps, factorBump{rel: rel, row: oneRow, oldF: old})
	}

	// 3. Update every RSPN containing the table.
	for _, r := range e.RSPNs {
		if !r.HasTable(tableName) {
			continue
		}
		if err := e.applyInsert(r, tableName, newIdx, bumps); err != nil {
			return err
		}
	}
	return nil
}

// applyInsert pushes the join rows created by the new base row into one
// RSPN. For a single-table RSPN this is the row itself. For a join RSPN the
// new row is extended across the join tree: One-ward lookups are exact;
// when the referenced One-side row previously had no partner on this edge,
// its padded row is removed and replaced by the now-complete row.
func (e *Ensemble) applyInsert(r *rspn.RSPN, tableName string, rowIdx int, bumps []factorBump) error {
	apply := r.SampleRate >= 1 || e.rng.Float64() < r.SampleRate
	if len(r.Tables) == 1 {
		vec, err := e.modelRow(r, map[string]int{tableName: rowIdx})
		if err != nil {
			return err
		}
		return r.Insert(vec, apply)
	}
	// Collect the rows of every RSPN table reachable One-ward from the
	// inserted row (Many-ward sides stay NULL: a fresh row has no
	// referencing partners yet, and partner enumeration for pre-existing
	// Many branches is approximated by the padded form — see DESIGN.md).
	present := map[string]int{tableName: rowIdx}
	if err := e.extendOneWard(r, tableName, rowIdx, present); err != nil {
		return err
	}
	vec, err := e.modelRow(r, present)
	if err != nil {
		return err
	}
	// If an edge of this RSPN connects the inserted table (Many side) to a
	// One-side row that previously had factor 0, the join used to contain a
	// padded row for it; replace it.
	for _, b := range bumps {
		if b.row < 0 || b.oldF != 0 || !r.HasTable(b.rel.One) || !edgeInRSPN(r, b.rel) {
			continue
		}
		padded := map[string]int{b.rel.One: b.row}
		if err := e.extendOneWard(r, b.rel.One, b.row, padded); err != nil {
			return err
		}
		padVec, err := e.modelRow(r, padded)
		if err != nil {
			return err
		}
		// The padded row carried the pre-bump factor (0 -> clamped 1).
		if i := r.Model.ColumnIndex(table.TupleFactorColumn(b.rel)); i >= 0 {
			padVec[i] = 1
		}
		if err := r.Delete(padVec, apply); err != nil {
			return err
		}
	}
	return r.Insert(vec, apply)
}

// factorBump records a tuple-factor change on a One-side row caused by
// inserting or deleting a Many-side row.
type factorBump struct {
	rel  schema.Relationship
	row  int // row index in the One table, -1 when dangling
	oldF float64
}

// extendOneWard walks the RSPN's join edges from the given table toward
// referenced (One-side) tables, resolving the concrete partner rows.
func (e *Ensemble) extendOneWard(r *rspn.RSPN, from string, rowIdx int, present map[string]int) error {
	for _, edge := range r.Edges {
		if edge.Many != from {
			continue
		}
		if _, done := present[edge.One]; done {
			continue
		}
		fkCol := e.Tables[from].Column(edge.ManyColumn)
		if fkCol == nil || fkCol.IsNull(rowIdx) {
			continue
		}
		oneRow, ok := e.lookupPK(edge.One, fkCol.Data[rowIdx])
		if !ok {
			continue
		}
		present[edge.One] = oneRow
		if err := e.extendOneWard(r, edge.One, oneRow, present); err != nil {
			return err
		}
	}
	return nil
}

// modelRow assembles the model-column vector for a join row in which the
// given tables are present (others padded NULL with indicator 0). Tuple-
// factor columns of present tables are clamped to >= 1 for join RSPNs,
// matching the training-data convention.
func (e *Ensemble) modelRow(r *rspn.RSPN, present map[string]int) ([]float64, error) {
	vec := make([]float64, len(r.Model.Columns))
	isJoin := len(r.Tables) > 1
	for i, colName := range r.Model.Columns {
		switch {
		case strings.HasPrefix(colName, "__nt_"):
			tn := strings.TrimPrefix(colName, "__nt_")
			if _, ok := present[tn]; ok {
				vec[i] = 1
			} else {
				vec[i] = 0
			}
		default:
			owner, rowIdx, ok := e.findOwner(r, colName, present)
			if !ok {
				vec[i] = math.NaN()
				if isJoin && strings.HasPrefix(colName, "__fk_") {
					vec[i] = 1 // padded rows count themselves once
				}
				continue
			}
			col := e.Tables[owner].Column(colName)
			if col.IsNull(rowIdx) {
				vec[i] = math.NaN()
				continue
			}
			v := col.Data[rowIdx]
			if isJoin && strings.HasPrefix(colName, "__fk_") && v < 1 {
				v = 1
			}
			vec[i] = v
		}
	}
	return vec, nil
}

// findOwner locates which present table owns the named column. Tables are
// consulted in the RSPN's declared order so a column owned by several
// present tables resolves the same way on every run.
func (e *Ensemble) findOwner(r *rspn.RSPN, colName string, present map[string]int) (string, int, bool) {
	for _, tn := range r.Tables {
		rowIdx, ok := present[tn]
		if !ok {
			continue
		}
		if e.Tables[tn].Column(colName) != nil {
			return tn, rowIdx, true
		}
	}
	return "", 0, false
}

func edgeInRSPN(r *rspn.RSPN, rel schema.Relationship) bool {
	for _, edge := range r.Edges {
		if edge.ID() == rel.ID() {
			return true
		}
	}
	return false
}

// deleteRow removes a base-table row (located by primary key) from the
// ensemble: base table rows are kept but tombstoned out of indexes, tuple
// factors are decremented, and covering RSPNs receive the inverse update.
// Only single-table RSPNs and 2-table join RSPNs delete their join rows
// exactly; larger joins apply the single-row approximation.
func (e *Ensemble) deleteRow(tableName string, pk float64) error {
	t, ok := e.Tables[tableName]
	if !ok {
		return fmt.Errorf("ensemble: unknown table %s", tableName)
	}
	meta := e.Schema.Table(tableName)
	if meta.PrimaryKey == "" {
		return fmt.Errorf("ensemble: table %s has no primary key", tableName)
	}
	rowIdx, ok := e.lookupPK(tableName, pk)
	if !ok {
		return fmt.Errorf("ensemble: %s: no row with pk %v", tableName, pk)
	}
	// Reverse the tuple-factor bumps.
	var bumps []factorBump
	for _, fk := range meta.ForeignKeys {
		rel := schema.Relationship{Many: tableName, ManyColumn: fk.Column, One: fk.RefTable, OneColumn: fk.RefColumn}
		fkCol := t.Column(fk.Column)
		if fkCol.IsNull(rowIdx) {
			continue
		}
		oneRow, ok := e.lookupPK(fk.RefTable, fkCol.Data[rowIdx])
		if !ok {
			continue
		}
		fCol := e.Tables[fk.RefTable].Column(table.TupleFactorColumn(rel))
		fCol.Data[oneRow]--
		bumps = append(bumps, factorBump{rel: rel, row: oneRow, oldF: fCol.Data[oneRow] + 1})
	}
	for _, r := range e.RSPNs {
		if !r.HasTable(tableName) {
			continue
		}
		apply := r.SampleRate >= 1 || e.rng.Float64() < r.SampleRate
		present := map[string]int{tableName: rowIdx}
		if len(r.Tables) > 1 {
			if err := e.extendOneWard(r, tableName, rowIdx, present); err != nil {
				return err
			}
		}
		vec, err := e.modelRow(r, present)
		if err != nil {
			return err
		}
		// The join row being deleted carried the pre-decrement factor.
		for _, b := range bumps {
			if r.HasTable(b.rel.One) && edgeInRSPN(r, b.rel) {
				if i := r.Model.ColumnIndex(table.TupleFactorColumn(b.rel)); i >= 0 {
					vec[i] = math.Max(1, b.oldF)
				}
			}
		}
		if err := r.Delete(vec, apply); err != nil {
			return err
		}
		// A One-side partner left without any Many partner regains its
		// padded row.
		for _, b := range bumps {
			if b.oldF != 1 || !r.HasTable(b.rel.One) || !edgeInRSPN(r, b.rel) {
				continue
			}
			padded := map[string]int{b.rel.One: b.row}
			if err := e.extendOneWard(r, b.rel.One, b.row, padded); err != nil {
				return err
			}
			padVec, err := e.modelRow(r, padded)
			if err != nil {
				return err
			}
			if err := r.Insert(padVec, apply); err != nil {
				return err
			}
		}
	}
	// Fold the row out of the drift moments while its values are still
	// addressable, then tombstone it.
	if e.Drift != nil {
		e.Drift.RecordRow(tableName, t, rowIdx, -1)
	}
	e.indexDelete(tableName, rowIdx)
	// The base row is only tombstoned, so the live NumRows() no longer
	// reflects the cardinality; the maintained statistic does.
	e.statsRowDelta(tableName, -1)
	return nil
}

// ---- primary-key indexes (write path) ----

// writeIndex is the write-path lookup state: per-table primary-key indexes
// plus the tombstone sets of deleted rows. It is shared by pointer across
// copy-on-write ensemble clones — the query path never consults it, and
// the update path is serialized — so a sustained insert/delete stream
// maintains one index incrementally across batches instead of rebuilding
// it on every clone.
type writeIndex struct {
	// pk maps table -> primary-key value -> row index.
	pk map[string]map[float64]int
	// dead maps table -> tombstoned row indexes. Deleted rows are kept in
	// the base table (only the model and statistics forget them), so an
	// index rebuild must skip them or deleted primary keys would
	// resurrect.
	dead map[string]map[int]bool
}

func newWriteIndex() *writeIndex {
	return &writeIndex{pk: make(map[string]map[float64]int), dead: make(map[string]map[int]bool)}
}

func (e *Ensemble) lookupPK(tableName string, pk float64) (int, bool) {
	idx, ok := e.idx.pk[tableName]
	if !ok {
		idx = e.buildPKIndex(tableName)
	}
	row, ok := idx[pk]
	return row, ok
}

// buildPKIndex scans the base table once, skipping tombstoned rows. It
// runs at most once per table per ensemble lifetime (attach/load); from
// then on indexInsert/indexDelete maintain the map incrementally.
func (e *Ensemble) buildPKIndex(tableName string) map[float64]int {
	t := e.Tables[tableName]
	meta := e.Schema.Table(tableName)
	idx := make(map[float64]int, t.NumRows())
	if meta.PrimaryKey != "" {
		pkCol := t.Column(meta.PrimaryKey)
		dead := e.idx.dead[tableName]
		for i := 0; i < t.NumRows(); i++ {
			if !pkCol.IsNull(i) && !dead[i] {
				idx[pkCol.Data[i]] = i
			}
		}
	}
	e.idx.pk[tableName] = idx
	return idx
}

func (e *Ensemble) indexInsert(tableName string, rowIdx int) {
	meta := e.Schema.Table(tableName)
	if meta.PrimaryKey == "" {
		return
	}
	idx, ok := e.idx.pk[tableName]
	if !ok {
		e.buildPKIndex(tableName)
		return
	}
	pkCol := e.Tables[tableName].Column(meta.PrimaryKey)
	if !pkCol.IsNull(rowIdx) {
		idx[pkCol.Data[rowIdx]] = rowIdx
	}
}

func (e *Ensemble) indexDelete(tableName string, rowIdx int) {
	meta := e.Schema.Table(tableName)
	if meta.PrimaryKey == "" {
		return
	}
	dead := e.idx.dead[tableName]
	if dead == nil {
		dead = make(map[int]bool)
		e.idx.dead[tableName] = dead
	}
	dead[rowIdx] = true
	if idx, ok := e.idx.pk[tableName]; ok {
		pkCol := e.Tables[tableName].Column(meta.PrimaryKey)
		if !pkCol.IsNull(rowIdx) {
			delete(idx, pkCol.Data[rowIdx])
		}
	}
}

// ---- Section 5.2: cyclic staleness check ----

// StalenessReport lists RSPNs whose underlying dependency structure has
// drifted: a table pair whose correlation crossed the RDC threshold in
// either direction since construction.
type StalenessReport struct {
	// Stale maps the RSPN index in the ensemble to a description of the
	// drifted dependency.
	Stale map[int]string
}

// CheckStaleness recomputes the pairwise dependency values on the current
// base tables and flags RSPNs whose construction decision would change —
// the trigger the paper uses to schedule background regeneration.
//
//deepdb:nocancel the pair loop is schema-bounded and each RDC runs on a fixed-K sample, not the full tables
func (e *Ensemble) CheckStaleness() (StalenessReport, error) {
	rdcCfg := stats.RDCConfig{K: 10, Scale: 1.0 / 6.0, Seed: e.cfg.Seed}
	rep := StalenessReport{Stale: map[int]string{}}
	for i, r := range e.RSPNs {
		if len(r.Tables) < 2 {
			// A single-table RSPN becomes stale when its table is now
			// strongly correlated with an FK neighbor.
			for _, rel := range e.Schema.NeighborEdges(r.Tables[0]) {
				dep, err := e.crossTableDependency([]string{rel.One, rel.Many}, rel.One, rel.Many, rdcCfg)
				if err != nil {
					return rep, err
				}
				if dep > e.cfg.RDCThreshold {
					rep.Stale[i] = fmt.Sprintf("new dependency %s (%0.2f > %0.2f)", rel.ID(), dep, e.cfg.RDCThreshold)
					break
				}
			}
			continue
		}
		for ai := 0; ai < len(r.Tables); ai++ {
			for bi := ai + 1; bi < len(r.Tables); bi++ {
				a, b := r.Tables[ai], r.Tables[bi]
				if _, adjacent := e.Schema.RelationshipBetween(a, b); !adjacent {
					continue
				}
				dep, err := e.crossTableDependency([]string{a, b}, a, b, rdcCfg)
				if err != nil {
					return rep, err
				}
				if dep <= e.cfg.RDCThreshold {
					rep.Stale[i] = fmt.Sprintf("dependency %s dropped (%0.2f <= %0.2f)", AttrKey(a, b), dep, e.cfg.RDCThreshold)
				}
			}
		}
	}
	return rep, nil
}
