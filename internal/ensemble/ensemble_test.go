package ensemble

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/query"
	"repro/internal/rspn"
	"repro/internal/schema"
	"repro/internal/spn"
	"repro/internal/table"
)

// testSchema builds a 3-table chain: customer <- orders <- orderline.
func testSchema() *schema.Schema {
	return &schema.Schema{Tables: []*schema.Table{
		{
			Name: "customer",
			Columns: []schema.Column{
				{Name: "c_id", Kind: schema.IntKind},
				{Name: "c_age", Kind: schema.IntKind},
				{Name: "c_region", Kind: schema.IntKind},
			},
			PrimaryKey: "c_id",
		},
		{
			Name: "orders",
			Columns: []schema.Column{
				{Name: "o_id", Kind: schema.IntKind},
				{Name: "o_c_id", Kind: schema.IntKind},
				{Name: "o_channel", Kind: schema.IntKind},
			},
			PrimaryKey: "o_id",
			ForeignKeys: []schema.ForeignKey{
				{Column: "o_c_id", RefTable: "customer", RefColumn: "c_id"},
			},
		},
		{
			Name: "orderline",
			Columns: []schema.Column{
				{Name: "l_id", Kind: schema.IntKind},
				{Name: "l_o_id", Kind: schema.IntKind},
				{Name: "l_qty", Kind: schema.IntKind},
			},
			PrimaryKey: "l_id",
			ForeignKeys: []schema.ForeignKey{
				{Column: "l_o_id", RefTable: "orders", RefColumn: "o_id"},
			},
		},
	}}
}

// genData generates correlated data: channel depends strongly on region,
// qty depends on channel. correlated=false breaks the dependencies.
func genData(s *schema.Schema, nCust int, correlated bool, seed int64) map[string]*table.Table {
	rng := rand.New(rand.NewSource(seed))
	cust := table.New(s.Table("customer"))
	ord := table.New(s.Table("orders"))
	line := table.New(s.Table("orderline"))
	oid := 0
	lid := 0
	for c := 0; c < nCust; c++ {
		region := float64(rng.Intn(3))
		age := float64(20 + rng.Intn(60))
		cust.AppendRow(table.Int(c), table.Float(age), table.Float(region))
		nOrders := rng.Intn(4) // 0..3 orders
		for o := 0; o < nOrders; o++ {
			var channel float64
			if correlated {
				// Channel tracks region with 90% probability.
				channel = region
				if rng.Float64() < 0.1 {
					channel = float64(rng.Intn(3))
				}
			} else {
				channel = float64(rng.Intn(3))
			}
			ord.AppendRow(table.Int(oid), table.Int(c), table.Float(channel))
			nLines := 1 + rng.Intn(3)
			for l := 0; l < nLines; l++ {
				var qty float64
				if correlated {
					qty = channel*10 + float64(rng.Intn(3))
				} else {
					qty = float64(rng.Intn(30))
				}
				line.AppendRow(table.Int(lid), table.Int(oid), table.Float(qty))
				lid++
			}
			oid++
		}
	}
	return map[string]*table.Table{"customer": cust, "orders": ord, "orderline": line}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxSamples = 20000
	cfg.SPN.RDCSample = 500
	return cfg
}

func TestBuildBaseEnsembleDetectsCorrelation(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 800, true, 1)
	cfg := testConfig()
	cfg.BudgetFactor = 0 // base only
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Correlated data: both FK pairs should become join RSPNs.
	var joins, singles int
	for _, r := range e.RSPNs {
		if len(r.Tables) == 2 {
			joins++
		} else if len(r.Tables) == 1 {
			singles++
		}
	}
	if joins < 1 {
		t.Fatalf("expected at least one join RSPN for correlated data, got %d (deps: %v)", joins, e.PairDep)
	}
	// Every table covered.
	for _, meta := range s.Tables {
		if e.RSPNFor(meta.Name) == nil {
			t.Fatalf("table %s not covered", meta.Name)
		}
	}
}

func TestBuildIndependentDataYieldsSingles(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 800, false, 2)
	cfg := testConfig()
	cfg.BudgetFactor = 0
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range e.RSPNs {
		if len(r.Tables) != 1 {
			t.Fatalf("independent data should produce single-table RSPNs, got %v (deps %v)", r.Tables, e.PairDep)
		}
	}
	if len(e.RSPNs) != 3 {
		t.Fatalf("expected 3 single-table RSPNs, got %d", len(e.RSPNs))
	}
}

func TestBudgetFactorAddsLargerRSPN(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 600, true, 3)
	cfg := testConfig()
	cfg.BudgetFactor = 3
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range e.RSPNs {
		if len(r.Tables) >= 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("budget factor 3 should add a 3-table RSPN; got %s", e.Describe())
	}
}

func TestSingleTableOnlyMode(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 300, true, 4)
	cfg := testConfig()
	cfg.SingleTableOnly = true
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.RSPNs) != 3 {
		t.Fatalf("single-table mode: got %d RSPNs, want 3", len(e.RSPNs))
	}
	for _, r := range e.RSPNs {
		if len(r.Tables) != 1 {
			t.Fatalf("unexpected join RSPN %v", r.Tables)
		}
	}
}

func TestCoveringAndRSPNFor(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 400, true, 5)
	cfg := testConfig()
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Covering([]string{"nonexistent"}); len(got) != 0 {
		t.Fatal("covering unknown table should be empty")
	}
	r := e.RSPNFor("customer")
	if r == nil || !r.HasTable("customer") {
		t.Fatal("RSPNFor(customer) wrong")
	}
}

// estimateCount runs the Theorem-1 count template against one RSPN.
func estimateCount(t *testing.T, r *rspn.RSPN, tables []string, filters []query.Predicate) float64 {
	t.Helper()
	fns := map[string]spn.Fn{}
	for _, c := range r.InverseFactorColumns(tables) {
		fns[c] = spn.FnInv
	}
	e, err := r.Expectation(rspn.Term{Fns: fns, Filters: filters, InnerTables: tables})
	if err != nil {
		t.Fatal(err)
	}
	return r.FullSize * e
}

func TestEnsembleCountAccuracy(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 1000, true, 6)
	oracle := exact.New(s, tabs)
	cfg := testConfig()
	cfg.BudgetFactor = 0
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// COUNT orders WHERE channel = 1, via whichever RSPN covers orders.
	q := query.Query{Aggregate: query.Count, Tables: []string{"orders"},
		Filters: []query.Predicate{{Column: "o_channel", Op: query.Eq, Value: 1}}}
	truth, err := oracle.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	r := e.RSPNFor("orders")
	est := estimateCount(t, r, q.Tables, q.Filters)
	if qe := query.QError(est, truth); qe > 2 {
		t.Fatalf("q-error %v too high (est %v, true %v)", qe, est, truth)
	}
}

func TestInsertUpdatesBaseAndModel(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 500, true, 7)
	cfg := testConfig()
	cfg.BudgetFactor = 0
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	custRows := tabs["customer"].NumRows()
	// Insert a new customer.
	if err := e.Insert("customer", map[string]table.Value{
		"c_id": table.Int(100000), "c_age": table.Int(30), "c_region": table.Int(1),
	}); err != nil {
		t.Fatal(err)
	}
	if tabs["customer"].NumRows() != custRows+1 {
		t.Fatal("base table did not grow")
	}
	// Insert an order referencing the new customer (previously 0 orders:
	// triggers padded-row replacement in a join RSPN covering both).
	if err := e.Insert("orders", map[string]table.Value{
		"o_id": table.Int(200000), "o_c_id": table.Int(100000), "o_channel": table.Int(1),
	}); err != nil {
		t.Fatal(err)
	}
	// The customer's tuple factor must now be 1.
	rel, _ := s.RelationshipBetween("customer", "orders")
	idx, ok := e.lookupPK("customer", 100000)
	if !ok {
		t.Fatal("pk index lost the new customer")
	}
	f := tabs["customer"].Column(table.TupleFactorColumn(rel)).Data[idx]
	if f != 1 {
		t.Fatalf("tuple factor after insert = %v, want 1", f)
	}
}

func TestInsertShiftsEstimates(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 500, true, 8)
	cfg := testConfig()
	cfg.BudgetFactor = 0
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := e.RSPNFor("customer")
	filt := []query.Predicate{{Column: "c_age", Op: query.Ge, Value: 95}}
	before := estimateCount(t, r, []string{"customer"}, filt)
	// Insert 200 customers aged 99.
	for i := 0; i < 200; i++ {
		if err := e.Insert("customer", map[string]table.Value{
			"c_id": table.Int(500000 + i), "c_age": table.Int(99), "c_region": table.Int(0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	after := estimateCount(t, r, []string{"customer"}, filt)
	if after < before+100 {
		t.Fatalf("estimate should grow by ~200: before %v after %v", before, after)
	}
}

func TestDeleteReversesInsert(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 300, true, 9)
	cfg := testConfig()
	cfg.BudgetFactor = 0
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := e.RSPNFor("customer")
	filt := []query.Predicate{{Column: "c_age", Op: query.Ge, Value: 90}}
	before := estimateCount(t, r, []string{"customer"}, filt)
	sizeBefore := r.FullSize
	if err := e.Insert("customer", map[string]table.Value{
		"c_id": table.Int(900000), "c_age": table.Int(95), "c_region": table.Int(2),
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("customer", 900000); err != nil {
		t.Fatal(err)
	}
	after := estimateCount(t, r, []string{"customer"}, filt)
	if math.Abs(after-before) > 1.01 {
		t.Fatalf("insert+delete should restore estimate: before %v after %v", before, after)
	}
	if r.FullSize != sizeBefore {
		t.Fatalf("FullSize = %v, want %v", r.FullSize, sizeBefore)
	}
	// Deleting again must fail (row gone from the index).
	if err := e.Delete("customer", 900000); err == nil {
		t.Fatal("expected error deleting a removed pk")
	}
}

func TestInsertUnknownTable(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 100, true, 10)
	e, err := Build(context.Background(), s, tabs, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Insert("nope", nil); err == nil {
		t.Fatal("expected error for unknown table")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 400, true, 11)
	cfg := testConfig()
	cfg.BudgetFactor = 0
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Load(&buf, tabs)
	if err != nil {
		t.Fatal(err)
	}
	if len(e2.RSPNs) != len(e.RSPNs) {
		t.Fatalf("round trip RSPN count %d != %d", len(e2.RSPNs), len(e.RSPNs))
	}
	// Estimates identical after round trip.
	filt := []query.Predicate{{Column: "c_age", Op: query.Lt, Value: 40}}
	a := estimateCount(t, e.RSPNFor("customer"), []string{"customer"}, filt)
	b := estimateCount(t, e2.RSPNFor("customer"), []string{"customer"}, filt)
	if a != b {
		t.Fatalf("round trip changed estimate: %v vs %v", a, b)
	}
	// Updates still work on the loaded ensemble.
	if err := e2.Insert("customer", map[string]table.Value{
		"c_id": table.Int(777777), "c_age": table.Int(25), "c_region": table.Int(0),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckStaleness(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 500, false, 12) // independent: singles ensemble
	cfg := testConfig()
	cfg.BudgetFactor = 0
	e, err := Build(context.Background(), s, tabs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.CheckStaleness()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stale) != 0 {
		t.Fatalf("fresh ensemble should not be stale: %v", rep.Stale)
	}
	// Now insert strongly correlated orders: channel == region of customer.
	custRegion := tabs["customer"].Column("c_region")
	n := tabs["customer"].NumRows()
	for i := 0; i < 2000; i++ {
		c := i % n
		if err := e.Insert("orders", map[string]table.Value{
			"o_id":      table.Int(700000 + i),
			"o_c_id":    table.Float(tabs["customer"].Column("c_id").Data[c]),
			"o_channel": table.Float(custRegion.Data[c]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err = e.CheckStaleness()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stale) == 0 {
		t.Fatal("expected staleness after injecting cross-table correlation")
	}
}

func TestDescribe(t *testing.T) {
	s := testSchema()
	tabs := genData(s, 200, true, 13)
	e, err := Build(context.Background(), s, tabs, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d := e.Describe(); len(d) == 0 {
		t.Fatal("empty description")
	}
}
