package ensemble

import (
	"context"
	"testing"

	"repro/internal/query"
	"repro/internal/rspn"
	"repro/internal/spn"
	"repro/internal/table"
)

// buildPair learns two bit-identical ensembles over the same generated
// data (construction is deterministic per seed).
func buildPair(t *testing.T) (*Ensemble, *Ensemble) {
	t.Helper()
	s := testSchema()
	cfg := testConfig()
	cfg.BudgetFactor = 0
	a, err := Build(context.Background(), s, genData(s, 400, true, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(context.Background(), testSchema(), genData(testSchema(), 400, true, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// testMutations is a mixed stream over the 3-table chain: inserts on every
// table plus deletes of pre-existing rows.
func testMutations() []Mutation {
	var muts []Mutation
	for i := 0; i < 25; i++ {
		muts = append(muts,
			Mutation{Op: OpInsert, Table: "orders", Values: map[string]table.Value{
				"o_id": table.Int(500000 + i), "o_c_id": table.Int(i % 100), "o_channel": table.Int(i % 3),
			}},
			Mutation{Op: OpInsert, Table: "orderline", Values: map[string]table.Value{
				"l_id": table.Int(600000 + i), "l_o_id": table.Int(i % 50), "l_qty": table.Int(i % 7),
			}},
		)
		if i%5 == 0 {
			muts = append(muts, Mutation{Op: OpDelete, Table: "orderline", PK: float64(i)})
		}
	}
	return muts
}

// probes evaluates a set of expectations spanning filters and moments on
// every RSPN, for bitwise model-state comparison.
func probes(t *testing.T, e *Ensemble) []float64 {
	t.Helper()
	var out []float64
	for _, r := range e.RSPNs {
		out = append(out, r.FullSize, r.Model.RowCount)
		terms := []rspn.Term{
			{InnerTables: r.Tables},
			{InnerTables: r.Tables, Filters: []query.Predicate{{Column: "o_channel", Op: query.Le, Value: 1}}},
			{InnerTables: r.Tables, Fns: map[string]spn.Fn{"l_qty": spn.FnIdent}},
		}
		for _, term := range terms {
			v, err := r.Expectation(term)
			if err != nil {
				continue // RSPN does not resolve the probe's column
			}
			out = append(out, v)
		}
	}
	return out
}

// TestApplyBatchMatchesSequential: one Apply of N mutations leaves the
// ensemble bit-identical to N per-row Insert/Delete calls — batching only
// defers the evaluator recompile.
func TestApplyBatchMatchesSequential(t *testing.T) {
	seq, bat := buildPair(t)
	muts := testMutations()
	for _, m := range muts {
		var err error
		switch m.Op {
		case OpInsert:
			err = seq.Insert(m.Table, m.Values)
		case OpDelete:
			err = seq.Delete(m.Table, m.PK)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if n, err := bat.Apply(muts); err != nil || n != len(muts) {
		t.Fatalf("Apply = %d, %v", n, err)
	}
	a, b := probes(t, seq), probes(t, bat)
	if len(a) != len(b) {
		t.Fatalf("probe count %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d: sequential %v != batched %v", i, a[i], b[i])
		}
	}
}

// TestCloneForUpdateIsolation: applying a batch to a CloneForUpdate clone
// leaves the original — tables, models, statistics — bit-for-bit
// untouched, while untouched members stay shared by pointer.
func TestCloneForUpdateIsolation(t *testing.T) {
	orig, want := buildPair(t)
	muts := []Mutation{{Op: OpInsert, Table: "customer", Values: map[string]table.Value{
		"c_id": table.Int(900001), "c_age": table.Int(30), "c_region": table.Int(1),
	}}}
	touched := orig.TouchedTables(muts)
	if !touched["customer"] || touched["orderline"] {
		t.Fatalf("touched = %v", touched)
	}
	clone := orig.CloneForUpdate(muts)
	// Members not covering a touched table must be shared, covering ones
	// must be fresh copies.
	for i, r := range orig.RSPNs {
		covers := r.HasTable("customer")
		if covers && clone.RSPNs[i] == r {
			t.Fatalf("RSPN %d covers customer but is shared", i)
		}
		if !covers && clone.RSPNs[i] != r {
			t.Fatalf("RSPN %d does not cover customer but was cloned", i)
		}
	}
	if clone.Tables["orderline"] != orig.Tables["orderline"] {
		t.Fatal("untouched table was cloned")
	}
	if clone.Tables["customer"] == orig.Tables["customer"] {
		t.Fatal("touched table is shared")
	}
	if _, err := clone.Apply(muts); err != nil {
		t.Fatal(err)
	}
	// The original must still match its twin exactly.
	a, b := probes(t, orig), probes(t, want)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d: original drifted after clone mutation: %v != %v", i, a[i], b[i])
		}
	}
	if got, want := orig.Tables["customer"].NumRows()+1, clone.Tables["customer"].NumRows(); got != want {
		t.Fatalf("clone rows = %d, want %d", want, got)
	}
	// The clone must see its write through the maintained statistics.
	or, _ := orig.TableRows("customer")
	cr, _ := clone.TableRows("customer")
	if cr != or+1 {
		t.Fatalf("clone stats rows = %v, orig = %v", cr, or)
	}
}

// TestPKIndexAcrossClonesAndRebuild: the write-path PK index is shared
// across CoW clones (no rebuild per batch) and an index rebuild after
// deletes must not resurrect tombstoned rows.
func TestPKIndexAcrossClonesAndRebuild(t *testing.T) {
	e, _ := buildPair(t)
	// Prime the index, then delete a row through a clone chain.
	if _, ok := e.lookupPK("customer", 5); !ok {
		t.Fatal("pk 5 missing before delete")
	}
	c1 := e.CloneForUpdate([]Mutation{{Op: OpDelete, Table: "customer", PK: 5}})
	if c1.idx != e.idx {
		t.Fatal("write index not shared across clones")
	}
	if err := c1.Delete("customer", 5); err != nil {
		t.Fatal(err)
	}
	// The shared index reflects the delete without any rebuild.
	if _, ok := c1.lookupPK("customer", 5); ok {
		t.Fatal("deleted pk still indexed")
	}
	// Force a rebuild (as AttachTables after a reopen would): the
	// tombstoned row must stay gone even though it is physically present.
	delete(c1.idx.pk, "customer")
	if _, ok := c1.lookupPK("customer", 5); ok {
		t.Fatal("index rebuild resurrected a deleted row")
	}
	if _, ok := c1.lookupPK("customer", 6); !ok {
		t.Fatal("rebuild lost a live row")
	}
	// Deleting an already-deleted pk fails cleanly post-rebuild.
	if err := c1.Delete("customer", 5); err == nil {
		t.Fatal("double delete succeeded")
	}
}

// TestCloneForUpdateSharesFKOnlyRSPNs: a fact-table insert bumps the
// One-side table's tuple factor (that table is cloned) but never mutates
// models that do not cover the fact table — those RSPNs must be shared,
// not deep-copied, or a sustained insert stream clones the whole
// dimension model on every batch.
func TestCloneForUpdateSharesFKOnlyRSPNs(t *testing.T) {
	s := testSchema()
	cfg := testConfig()
	cfg.BudgetFactor = 0
	cfg.SingleTableOnly = true // one RSPN per table: clean target/FK split
	e, err := Build(context.Background(), s, genData(s, 300, true, 9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	muts := []Mutation{{Op: OpInsert, Table: "orderline", Values: map[string]table.Value{
		"l_id": table.Int(700001), "l_o_id": table.Int(3), "l_qty": table.Int(2),
	}}}
	touched := e.TouchedTables(muts)
	if !touched["orderline"] || !touched["orders"] {
		t.Fatalf("touched = %v", touched)
	}
	clone := e.CloneForUpdate(muts)
	for i, r := range e.RSPNs {
		isTarget := r.HasTable("orderline")
		if isTarget && clone.RSPNs[i] == r {
			t.Fatalf("RSPN %d (%v) is the mutation target but shared", i, r.Tables)
		}
		if !isTarget && clone.RSPNs[i] != r {
			t.Fatalf("RSPN %d (%v) is never model-mutated but was cloned", i, r.Tables)
		}
	}
	// The FK-bumped orders table itself is cloned (its factor column is
	// written), the unrelated customer table shared.
	if clone.Tables["orders"] == e.Tables["orders"] {
		t.Fatal("FK-bumped table shared")
	}
	if clone.Tables["customer"] != e.Tables["customer"] {
		t.Fatal("unrelated table cloned")
	}
	if _, err := clone.Apply(muts); err != nil {
		t.Fatal(err)
	}
}
