package ensemble

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/rspn"
	"repro/internal/schema"
	"repro/internal/table"
)

// persisted is the serializable subset of an ensemble: models and
// statistics, but not the live base tables (those are reattached on load,
// like a database reopening its files).
type persisted struct {
	Schema  *schema.Schema
	RSPNs   []*rspn.RSPN
	AttrRDC map[string]float64
	PairDep map[string]float64
	Config  Config
}

// Save writes the ensemble's models and statistics to w in gob format.
func (e *Ensemble) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(persisted{
		Schema:  e.Schema,
		RSPNs:   e.RSPNs,
		AttrRDC: e.AttrRDC,
		PairDep: e.PairDep,
		Config:  e.cfg,
	})
}

// Load reads an ensemble written by Save and reattaches the live base
// tables (which must already carry their tuple-factor columns; pass the
// same tables that Build produced, or freshly loaded ones). tables may be
// nil: the ensemble then answers model-only queries and AttachTables can
// supply the data later (e.g. once the model's own schema has been used to
// locate the CSV files).
func Load(r io.Reader, tables map[string]*table.Table) (*Ensemble, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("ensemble: decoding: %w", err)
	}
	for _, m := range p.RSPNs {
		if err := m.Model.Root.Validate(); err != nil {
			return nil, fmt.Errorf("ensemble: invalid model after load: %w", err)
		}
	}
	e := &Ensemble{
		Schema:  p.Schema,
		RSPNs:   p.RSPNs,
		AttrRDC: p.AttrRDC,
		PairDep: p.PairDep,
		cfg:     p.Config,
		rng:     rand.New(rand.NewSource(p.Config.Seed)),
		pkIndex: make(map[string]map[float64]int),
		fkIndex: make(map[string]map[float64][]int),
	}
	if tables != nil {
		if err := e.AttachTables(tables); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// AttachTables (re)attaches live base tables to a loaded ensemble. Freshly
// loaded base tables (e.g. from CSV) lack the synthetic tuple-factor
// columns Build added; they are re-derived here so updates keep working
// after a load.
func (e *Ensemble) AttachTables(tables map[string]*table.Table) error {
	for _, meta := range e.Schema.Tables {
		if tables[meta.Name] == nil {
			return fmt.Errorf("ensemble: missing base table %s", meta.Name)
		}
	}
	for _, rel := range e.Schema.Relationships() {
		one, many := tables[rel.One], tables[rel.Many]
		if one == nil || many == nil {
			return fmt.Errorf("ensemble: missing base table for relationship %s", rel.ID())
		}
		if one.Column(table.TupleFactorColumn(rel)) == nil {
			if err := table.AddTupleFactor(one, many, rel); err != nil {
				return err
			}
		}
	}
	e.Tables = tables
	e.pkIndex = make(map[string]map[float64]int)
	e.fkIndex = make(map[string]map[float64][]int)
	return nil
}

// SaveFile writes the ensemble to a file.
func (e *Ensemble) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := e.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads an ensemble from a file.
func LoadFile(path string, tables map[string]*table.Table) (*Ensemble, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, tables)
}
