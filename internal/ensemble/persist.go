package ensemble

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/rspn"
	"repro/internal/schema"
	"repro/internal/table"
)

const (
	// modelMagic identifies a deepdb model file. It is written (inside the
	// gob stream) before the payload so foreign files and models from
	// before the versioned format fail with a clear error instead of an
	// opaque gob type mismatch.
	modelMagic = "deepdb-model"
	// modelVersion is the persistence format version. Version 2 added the
	// header itself and the per-table statistics that make query serving
	// fully data-free; version 3 added the categorical dictionaries to
	// those statistics, so string-literal predicates and group-by label
	// decoding work model-only too. Bump it whenever the payload changes
	// incompatibly.
	modelVersion = 3
)

// fileHeader prefixes every model file.
type fileHeader struct {
	Magic   string
	Version int
}

// persisted is the serializable subset of an ensemble: models and
// statistics, but not the live base tables (those are reattached on load,
// like a database reopening its files).
type persisted struct {
	Schema  *schema.Schema
	RSPNs   []*rspn.RSPN
	AttrRDC map[string]float64
	PairDep map[string]float64
	Stats   map[string]TableStats
	Config  Config
}

// Save writes the ensemble's models and statistics to w in gob format,
// prefixed by a versioned header. The persisted statistics carry the
// current categorical dictionaries: when base tables are attached, the
// snapshot is refreshed from the live dictionaries (inserts can have
// extended them since the last capture) without mutating e.Stats — the
// facade calls Save under a read lock shared with concurrent queries.
func (e *Ensemble) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(fileHeader{Magic: modelMagic, Version: modelVersion}); err != nil {
		return fmt.Errorf("ensemble: encoding header: %w", err)
	}
	return enc.Encode(persisted{
		Schema:  e.Schema,
		RSPNs:   e.RSPNs,
		AttrRDC: e.AttrRDC,
		PairDep: e.PairDep,
		Stats:   e.persistStats(),
		Config:  e.cfg,
	})
}

// persistStats returns the statistics to serialize: the maintained
// snapshot, with dictionaries re-captured from the live tables when
// attached.
func (e *Ensemble) persistStats() map[string]TableStats {
	if e.Tables == nil {
		return e.Stats
	}
	out := make(map[string]TableStats, len(e.Stats))
	//deepdb:orderinvariant map-to-map copy with per-key rewrites; independent of visit order
	for name, st := range e.Stats {
		if t := e.Tables[name]; t != nil {
			st.Dicts = captureDicts(t)
		}
		out[name] = st
	}
	return out
}

// Load reads an ensemble written by Save and reattaches the live base
// tables (which must already carry their tuple-factor columns; pass the
// same tables that Build produced, or freshly loaded ones). tables may be
// nil: the persisted per-table statistics then stand in for the data —
// every query class keeps working — and AttachTables can supply the data
// later (e.g. once the model's own schema has been used to locate the CSV
// files) to re-enable updates and exact execution.
func Load(r io.Reader, tables map[string]*table.Table) (*Ensemble, error) {
	dec := gob.NewDecoder(r)
	var hdr fileHeader
	if err := dec.Decode(&hdr); err != nil {
		// Models from before the versioned format start straight with the
		// payload and fail here with a gob type mismatch; keep the
		// underlying error visible so read failures stay diagnosable.
		return nil, fmt.Errorf("ensemble: reading model header (not a deepdb model file, or one written by a deepdb version older than the versioned model format v%d; re-learn and re-save the model): %w", modelVersion, err)
	}
	if hdr.Magic != modelMagic {
		return nil, fmt.Errorf("ensemble: not a deepdb model file (magic %q)", hdr.Magic)
	}
	if hdr.Version != modelVersion {
		return nil, fmt.Errorf("ensemble: model file format v%d, this build reads v%d; re-learn the model with a matching deepdb version", hdr.Version, modelVersion)
	}
	var p persisted
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("ensemble: decoding: %w", err)
	}
	for _, m := range p.RSPNs {
		if err := m.Model.Root.Validate(); err != nil {
			return nil, fmt.Errorf("ensemble: invalid model after load: %w", err)
		}
		// gob skips the unexported evaluation caches (sum totals, the
		// compiled flat evaluator, indicator indices); rebuild them
		// before serving.
		m.Refresh()
	}
	e := &Ensemble{
		Schema:  p.Schema,
		RSPNs:   p.RSPNs,
		AttrRDC: p.AttrRDC,
		PairDep: p.PairDep,
		Stats:   p.Stats,
		cfg:     p.Config,
		rng:     rand.New(rand.NewSource(p.Config.Seed)),
		idx:     newWriteIndex(),
	}
	if tables != nil {
		if err := e.AttachTables(tables); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// AttachTables (re)attaches live base tables to a loaded ensemble. Freshly
// loaded base tables (e.g. from CSV) lack the synthetic tuple-factor
// columns Build added; they are re-derived here so updates keep working
// after a load. The persisted statistics stay authoritative for query
// serving; they are only (re)captured when the ensemble has none.
func (e *Ensemble) AttachTables(tables map[string]*table.Table) error {
	for _, meta := range e.Schema.Tables {
		if tables[meta.Name] == nil {
			return fmt.Errorf("ensemble: missing base table %s", meta.Name)
		}
	}
	for _, rel := range e.Schema.Relationships() {
		one, many := tables[rel.One], tables[rel.Many]
		if one == nil || many == nil {
			return fmt.Errorf("ensemble: missing base table for relationship %s", rel.ID())
		}
		if one.Column(table.TupleFactorColumn(rel)) == nil {
			if err := table.AddTupleFactor(one, many, rel); err != nil {
				return err
			}
		}
	}
	e.Tables = tables
	e.idx = newWriteIndex()
	if len(e.Stats) == 0 {
		e.captureStats()
	}
	return nil
}

// SaveFile writes the ensemble to a file atomically: the model is written
// to a temporary file in the same directory, synced, and renamed into
// place, so a crash mid-save never leaves a truncated model behind.
func (e *Ensemble) SaveFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// CreateTemp's 0600 would survive the rename; keep the mode of the
	// model being replaced, defaulting to the conventional 0644 (models
	// are read by separate serving processes).
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(path); err == nil {
		mode = fi.Mode().Perm()
	}
	if err := f.Chmod(mode); err != nil {
		return cleanup(err)
	}
	if err := e.Save(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFile reads an ensemble from a file.
func LoadFile(path string, tables map[string]*table.Table) (*Ensemble, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, tables)
}
