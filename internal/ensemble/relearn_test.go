package ensemble

import (
	"context"
	"testing"

	"repro/internal/drift"
	"repro/internal/table"
)

// singleTableEnsemble builds a one-RSPN-per-table ensemble (deterministic
// member order is irrelevant; members are located by table set).
func singleTableEnsemble(t *testing.T, nCust int, seed int64) *Ensemble {
	t.Helper()
	s := testSchema()
	cfg := testConfig()
	cfg.BudgetFactor = 0
	cfg.SingleTableOnly = true
	e, err := Build(context.Background(), s, genData(s, nCust, true, seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// memberFor finds the index of the member whose table set is exactly the
// given single table.
func memberFor(t *testing.T, e *Ensemble, name string) int {
	t.Helper()
	for i, r := range e.RSPNs {
		if len(r.Tables) == 1 && r.Tables[0] == name {
			return i
		}
	}
	t.Fatalf("no single-table member for %s", name)
	return -1
}

// TestRelearnReproducesMember: with no mutations since build, a re-learn
// regenerates each member with the same shape (learning is deterministic
// given the table state and seed).
func TestRelearnReproducesMember(t *testing.T) {
	e, _ := buildPair(t)
	for i, r := range e.RSPNs {
		nr, err := e.RelearnMember(context.Background(), i, nil)
		if err != nil {
			t.Fatalf("member %d (%v): %v", i, r.Tables, err)
		}
		if nr.FullSize != r.FullSize {
			t.Fatalf("member %d: relearned FullSize %v != %v", i, nr.FullSize, r.FullSize)
		}
		if got, want := len(nr.Model.Columns), len(r.Model.Columns); got != want {
			t.Fatalf("member %d: relearned columns %d != %d", i, got, want)
		}
		if nr.Model.RowCount != r.Model.RowCount {
			t.Fatalf("member %d: relearned RowCount %v != %v", i, nr.Model.RowCount, r.Model.RowCount)
		}
	}
}

// TestRelearnMemberCompactsTombstones: deleted rows are physically present
// in the base tables but must not reappear in a re-learned member.
func TestRelearnMemberCompactsTombstones(t *testing.T) {
	e := singleTableEnsemble(t, 300, 11)
	e.EnableDrift()
	for i := 0; i < 30; i++ {
		if err := e.Delete("customer", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ci := memberFor(t, e, "customer")
	dead := e.DeadRows()
	if len(dead["customer"]) != 30 {
		t.Fatalf("DeadRows customer = %d, want 30", len(dead["customer"]))
	}
	nr, err := e.RelearnMember(context.Background(), ci, dead)
	if err != nil {
		t.Fatal(err)
	}
	if nr.FullSize != 270 {
		t.Fatalf("relearned FullSize = %v, want 270 (tombstones resurrected?)", nr.FullSize)
	}
	// Without the dead-row set the deleted rows would come back.
	raw, err := e.RelearnMember(context.Background(), ci, nil)
	if err != nil {
		t.Fatal(err)
	}
	if raw.FullSize != 300 {
		t.Fatalf("uncompacted FullSize = %v, want 300", raw.FullSize)
	}
}

// TestSwapMemberSharesRest: SwapMember replaces exactly one member; the
// others, the base tables, statistics and drift set stay shared.
func TestSwapMemberSharesRest(t *testing.T) {
	e := singleTableEnsemble(t, 200, 13)
	e.EnableDrift()
	ci := memberFor(t, e, "customer")
	nr, err := e.RelearnMember(context.Background(), ci, nil)
	if err != nil {
		t.Fatal(err)
	}
	sw := e.SwapMember(ci, nr)
	if sw.RSPNs[ci] != nr {
		t.Fatal("swapped member not installed")
	}
	for i, r := range e.RSPNs {
		if i != ci && sw.RSPNs[i] != r {
			t.Fatalf("member %d was not shared", i)
		}
	}
	if e.RSPNs[ci] == nr {
		t.Fatal("SwapMember mutated the receiver")
	}
	if sw.Tables["orders"] != e.Tables["orders"] || sw.Drift != e.Drift || sw.idx != e.idx {
		t.Fatal("tables/drift/index not shared across swap")
	}
}

// TestDriftHooksAndTrip: applied mutations feed the drift set through the
// insert/delete hooks, the trigger picks the mutated member, and a reset
// re-baselines it.
func TestDriftHooksAndTrip(t *testing.T) {
	e := singleTableEnsemble(t, 100, 17)
	e.EnableDrift()
	th := drift.Thresholds{MutatedFraction: 0.1}
	if _, _, ok := e.Drift.Trip(th); ok {
		t.Fatal("Trip fired on a fresh ensemble")
	}
	// Mutations through a CoW clone hit the shared drift set.
	muts := make([]Mutation, 0, 20)
	for i := 0; i < 20; i++ {
		muts = append(muts, Mutation{Op: OpInsert, Table: "customer", Values: map[string]table.Value{
			"c_id": table.Int(800000 + i), "c_age": table.Int(95), "c_region": table.Int(1),
		}})
	}
	clone := e.CloneForUpdate(muts)
	if clone.Drift != e.Drift {
		t.Fatal("drift set not shared across CloneForUpdate")
	}
	if _, err := clone.Apply(muts); err != nil {
		t.Fatal(err)
	}
	ci := memberFor(t, e, "customer")
	i, sc, ok := e.Drift.Trip(th)
	if !ok || i != ci {
		t.Fatalf("Trip = (%d, %v, %v), want member %d", i, sc, ok, ci)
	}
	if sc.Mutated != 20 || sc.MutatedFraction < 0.19 {
		t.Fatalf("score = %+v", sc)
	}
	// Deletes count too, and the delete hook reads values pre-tombstone.
	if err := clone.Delete("customer", 800000); err != nil {
		t.Fatal(err)
	}
	if got := e.Drift.MutationCount(ci); got != 21 {
		t.Fatalf("MutationCount = %d, want 21", got)
	}
	e.Drift.ResetMember(ci)
	if _, _, ok := e.Drift.Trip(th); ok {
		t.Fatal("Trip fired after reset")
	}
	if e.Drift.Relearns() != 1 {
		t.Fatalf("Relearns = %d, want 1", e.Drift.Relearns())
	}
}
