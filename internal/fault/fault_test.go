package fault

import (
	"context"
	"errors"
	"syscall"
	"testing"
	"time"
)

// enable activates a schedule for one test and restores the zero-cost path
// on cleanup. Tests that use it must not run in parallel: the registry is
// process-global.
func enable(t *testing.T, s *Schedule) {
	t.Helper()
	Enable(s)
	t.Cleanup(Disable)
}

func TestDisabledIsZero(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() = true with no schedule")
	}
	if r := Check(WALAppendWrite); r.Err != nil || r.Torn != 0 || r.Delay != 0 {
		t.Fatalf("Check on disabled registry = %+v, want zero", r)
	}
	if err := CheckCtx(context.Background(), ShardEval); err != nil {
		t.Fatalf("CheckCtx on disabled registry = %v, want nil", err)
	}
}

func TestParseAndSelectors(t *testing.T) {
	s, err := Parse("point=wal.append.sync;kind=error;errno=ENOSPC;after=2;count=1")
	if err != nil {
		t.Fatal(err)
	}
	enable(t, s)

	for i := 0; i < 2; i++ {
		if r := Check(WALAppendSync); r.Err != nil {
			t.Fatalf("hit %d fired before after=2: %v", i+1, r.Err)
		}
	}
	r := Check(WALAppendSync)
	if r.Err == nil {
		t.Fatal("hit 3 did not fire")
	}
	if !errors.Is(r.Err, ErrInjected) || !errors.Is(r.Err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ErrInjected wrapping ENOSPC", r.Err)
	}
	for i := 0; i < 5; i++ {
		if r := Check(WALAppendSync); r.Err != nil {
			t.Fatalf("fired past count=1: %v", r.Err)
		}
	}
	if got := s.Fired(WALAppendSync); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestEverySelector(t *testing.T) {
	s, err := Parse("point=pipeline.apply;kind=error;every=3")
	if err != nil {
		t.Fatal(err)
	}
	enable(t, s)

	var fired []int
	for i := 1; i <= 9; i++ {
		if r := Check(PipelineApply); r.Err != nil {
			fired = append(fired, i)
		}
	}
	want := []int{1, 4, 7}
	if len(fired) != len(want) {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on hits %v, want %v", fired, want)
		}
	}
}

func TestProbIsSeededDeterministic(t *testing.T) {
	run := func() []bool {
		s, err := Parse("point=shard.eval;kind=partition;prob=0.5;seed=42")
		if err != nil {
			t.Fatal(err)
		}
		enable(t, s)
		out := make([]bool, 64)
		for i := range out {
			out[i] = Check(ShardEval).Err != nil
		}
		return out
	}
	a, b := run(), run()
	var hits int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at hit %d: same seed must replay identically", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("prob=0.5 fired %d/%d times; stream looks degenerate", hits, len(a))
	}
}

func TestKinds(t *testing.T) {
	s, err := Parse("point=wal.append.write;kind=torn;bytes=7;count=1" +
		"|point=shard.eval;kind=partition;count=1" +
		"|point=shard.apply;kind=disk-full;count=1")
	if err != nil {
		t.Fatal(err)
	}
	enable(t, s)

	if r := Check(WALAppendWrite); r.Torn != 7 || !errors.Is(r.Err, syscall.EIO) {
		t.Fatalf("torn rule = %+v, want Torn=7 wrapping EIO", r)
	}
	if r := Check(ShardEval); !errors.Is(r.Err, syscall.ECONNREFUSED) {
		t.Fatalf("partition rule = %v, want ECONNREFUSED", r.Err)
	}
	if r := Check(ShardApply); !errors.Is(r.Err, syscall.ENOSPC) {
		t.Fatalf("disk-full rule = %v, want ENOSPC", r.Err)
	}
}

func TestLatencyAndCtxCancel(t *testing.T) {
	s, err := Parse("point=shard.eval;kind=latency;d=50ms")
	if err != nil {
		t.Fatal(err)
	}
	enable(t, s)

	start := time.Now()
	if err := CheckCtx(context.Background(), ShardEval); err != nil {
		t.Fatalf("latency injection errored: %v", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("latency injection slept %v, want >= 50ms", d)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := CheckCtx(ctx, ShardEval); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx during delay = %v, want context.Canceled", err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"kind=error",                      // no point
		"point=x;kind=bogus",              // unknown kind
		"point=x;errno=ENOENT",            // unsupported errno
		"point=x;kind=latency",            // latency without d=
		"point=x;frobnicate=1",            // unknown field
		"point=x;after",                   // malformed field
		"point=x;kind=error;after=banana", // bad int
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
	if s, err := Parse("  "); err != nil || s == nil {
		t.Errorf("Parse(blank) = (%v, %v), want empty schedule", s, err)
	}
}

func TestEnableResetsRuleState(t *testing.T) {
	s, err := Parse("point=pipeline.apply;kind=error;count=1")
	if err != nil {
		t.Fatal(err)
	}
	enable(t, s)
	if Check(PipelineApply).Err == nil {
		t.Fatal("first activation did not fire")
	}
	// Note: re-Enabling the same schedule resets RNG streams but not hit
	// caps; fresh runs should Parse a fresh schedule. This guards the
	// documented behavior that a fresh Parse always starts clean.
	s2, err := Parse("point=pipeline.apply;kind=error;count=1")
	if err != nil {
		t.Fatal(err)
	}
	enable(t, s2)
	if Check(PipelineApply).Err == nil {
		t.Fatal("fresh schedule did not fire")
	}
}

func BenchmarkCheckDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := Check(ShardEval); r.Err != nil {
			b.Fatal("fired while disabled")
		}
	}
}
