// Package fault is the repository's fault-injection framework: named
// injection points compiled into the I/O and transport paths (WAL append
// and fsync, the update-pipeline applier, the shard /eval and /apply
// transports, peer health probes) that are inert until a Schedule is
// activated — one atomic pointer load per check, no allocation, no locks —
// and then fire deterministic, seeded fault decisions.
//
// A schedule is a set of rules, each bound to one point:
//
//	point=wal.append.sync;kind=error;errno=EIO;after=3;count=1
//	point=shard.eval;kind=latency;d=5ms;every=3
//	point=shard.eval;kind=partition;prob=0.2;seed=42
//	point=wal.append.write;kind=torn;bytes=7;count=1
//	point=wal.append.write;kind=disk-full;count=2
//
// Rules are joined with '|'. Selectors compose: a rule skips its first
// `after` eligible hits, then fires on every `every`-th hit (default every
// hit) with probability `prob` (default 1), at most `count` times (default
// unlimited). Probabilistic rules draw from a per-rule splitmix64 stream
// seeded by `seed`, so a schedule replays identically across runs — chaos
// tests are reproducible, never flaky-by-randomness.
//
// Activation is process-global (the points are reached from deep inside
// library code that cannot thread a handle through): tests Enable a
// schedule and register Disable as cleanup, and `deepdb serve -fault-spec`
// activates one for chaos runs. Tests that enable schedules must not run
// in parallel with each other.
package fault

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// Point names one injection site. Checks against points no schedule
// mentions cost one atomic load and a map lookup.
type Point string

// The compiled-in injection points.
const (
	// WALAppendWrite fires before the record bytes reach the segment file;
	// torn-write rules emit a partial record here.
	WALAppendWrite Point = "wal.append.write"
	// WALAppendSync fires before the append-path fsync (Sync durability and
	// the Batched inline sync).
	WALAppendSync Point = "wal.append.sync"
	// PipelineApply fires in the background applier before the apply
	// callback runs; an injected error fails the batch without applying it.
	PipelineApply Point = "pipeline.apply"
	// ShardEval fires in the replica client before each /eval attempt.
	ShardEval Point = "shard.eval"
	// ShardApply fires in the replica client before each /apply attempt.
	ShardApply Point = "shard.apply"
	// ShardProbe fires in the replica client before each health probe.
	ShardProbe Point = "shard.probe"
)

// Kind is the failure mode a rule injects.
type Kind int

const (
	// KindError fails the operation with the rule's error (an errno-flavored
	// I/O failure by default).
	KindError Kind = iota
	// KindLatency delays the operation without failing it.
	KindLatency
	// KindPartition fails the operation like an unreachable peer
	// (connection-refused flavor) — the transport face of a network split.
	KindPartition
	// KindDiskFull is KindError sugar wrapping ENOSPC.
	KindDiskFull
	// KindTorn fails a write after a prefix of the bytes reached the file —
	// the on-disk aftermath of a crash mid-write, without the crash.
	KindTorn
)

// ErrInjected is the sentinel every injected failure wraps; errors.Is
// distinguishes injected faults from organic ones in assertions and logs.
var ErrInjected = errors.New("fault: injected")

// Result is one fault decision. The zero Result means "no fault".
type Result struct {
	// Err is non-nil when the operation must fail; it wraps ErrInjected and,
	// for I/O kinds, the scheduled errno.
	Err error
	// Torn, when > 0, instructs the write site to persist only this many
	// bytes of the record before failing.
	Torn int
	// Delay is a latency injection (Err is nil then); Check sites sleep it
	// inline, CheckCtx sites sleep it cancellably.
	Delay time.Duration
}

// Rule is one scheduled fault at one point. Fields are fixed after Parse /
// NewRule; the hit counters and the random stream advance atomically.
type Rule struct {
	Point Point
	Kind  Kind
	// Errno flavors KindError (syscall.EIO when zero).
	Errno syscall.Errno
	// Delay is the KindLatency duration.
	Delay time.Duration
	// Bytes is the KindTorn prefix length.
	Bytes int
	// After skips the first N eligible hits; Every fires on every K-th hit
	// past that (0/1 = every one); Count caps total firings (0 = unlimited);
	// Prob in (0,1) gates each candidate firing on the seeded stream.
	After int
	Every int
	Count int
	Prob  float64
	Seed  uint64

	hits  atomic.Uint64
	fired atomic.Uint64
	rng   atomic.Uint64
}

// Schedule is an activatable set of rules, indexed by point.
type Schedule struct {
	rules map[Point][]*Rule
}

// active is the process-global schedule; nil (the steady state) makes every
// Check a single atomic load returning the zero Result.
var active atomic.Pointer[Schedule]

// Enable activates the schedule process-wide, replacing any previous one.
func Enable(s *Schedule) {
	if s != nil {
		for _, rules := range s.rules {
			for _, r := range rules {
				r.rng.Store(r.Seed)
			}
		}
	}
	active.Store(s)
}

// Disable deactivates fault injection, restoring the zero-cost path.
func Disable() { active.Store(nil) }

// Enabled reports whether a schedule is active.
func Enabled() bool { return active.Load() != nil }

// Check consults the active schedule at pt. Disabled, it is one atomic
// load. Latency rules sleep inline here; use CheckCtx where a context is
// available.
func Check(pt Point) Result {
	s := active.Load()
	if s == nil {
		return Result{}
	}
	res := s.decide(pt)
	if res.Delay > 0 {
		time.Sleep(res.Delay)
		res.Delay = 0
	}
	return res
}

// CheckCtx is Check with cancellable latency: an injected delay waits on a
// timer or the context, whichever ends first, and an injected failure (or
// the context's own error) is returned. Nil means proceed.
func CheckCtx(ctx context.Context, pt Point) error {
	s := active.Load()
	if s == nil {
		return nil
	}
	res := s.decide(pt)
	if res.Delay > 0 {
		t := time.NewTimer(res.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	return res.Err
}

// decide evaluates every rule bound to pt in declaration order and returns
// the first firing rule's Result.
func (s *Schedule) decide(pt Point) Result {
	for _, r := range s.rules[pt] {
		if res, ok := r.check(); ok {
			return res
		}
	}
	return Result{}
}

// Fired reports how many times rules bound to pt have fired — chaos tests
// assert the schedule actually exercised the path under test.
func (s *Schedule) Fired(pt Point) uint64 {
	var n uint64
	for _, r := range s.rules[pt] {
		n += r.fired.Load()
	}
	return n
}

// Add appends a rule to the schedule (and initializes its random stream,
// so schedules can also be built in code rather than parsed).
func (s *Schedule) Add(r *Rule) *Schedule {
	if s.rules == nil {
		s.rules = map[Point][]*Rule{}
	}
	if r.Every < 1 {
		r.Every = 1
	}
	r.rng.Store(r.Seed)
	s.rules[r.Point] = append(s.rules[r.Point], r)
	return s
}

// check advances the rule's hit counter and decides whether it fires.
func (r *Rule) check() (Result, bool) {
	n := r.hits.Add(1)
	if n <= uint64(r.After) {
		return Result{}, false
	}
	if r.Every > 1 && (n-uint64(r.After)-1)%uint64(r.Every) != 0 {
		return Result{}, false
	}
	if r.Prob > 0 && r.Prob < 1 && r.rand() >= r.Prob {
		return Result{}, false
	}
	if r.Count > 0 {
		if r.fired.Add(1) > uint64(r.Count) {
			r.fired.Add(^uint64(0)) // undo; the cap is permanent
			return Result{}, false
		}
	} else {
		r.fired.Add(1)
	}
	return r.result(), true
}

// rand draws the next [0,1) value from the rule's seeded splitmix64 stream.
func (r *Rule) rand() float64 {
	x := r.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

func (r *Rule) result() Result {
	switch r.Kind {
	case KindLatency:
		return Result{Delay: r.Delay}
	case KindPartition:
		return Result{Err: fmt.Errorf("%w: dial tcp: %w (partition at %s)", ErrInjected, syscall.ECONNREFUSED, r.Point)}
	case KindDiskFull:
		return Result{Err: fmt.Errorf("%w: %w (disk full at %s)", ErrInjected, syscall.ENOSPC, r.Point)}
	case KindTorn:
		return Result{
			Err:  fmt.Errorf("%w: %w (torn write at %s, %d bytes persisted)", ErrInjected, syscall.EIO, r.Point, r.Bytes),
			Torn: r.Bytes,
		}
	default:
		errno := r.Errno
		if errno == 0 {
			errno = syscall.EIO
		}
		return Result{Err: fmt.Errorf("%w: %w (at %s)", ErrInjected, errno, r.Point)}
	}
}

// Parse compiles a schedule spec: rules joined by '|', each rule a
// ';'-separated list of key=value fields (see the package comment for the
// grammar). An empty spec yields an empty (but non-nil) schedule.
func Parse(spec string) (*Schedule, error) {
	s := &Schedule{rules: map[Point][]*Rule{}}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, rs := range strings.Split(spec, "|") {
		r, err := parseRule(strings.TrimSpace(rs))
		if err != nil {
			return nil, err
		}
		s.Add(r)
	}
	return s, nil
}

func parseRule(rs string) (*Rule, error) {
	r := &Rule{Kind: KindError, Every: 1}
	for _, field := range strings.Split(rs, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("fault: malformed field %q in rule %q (want key=value)", field, rs)
		}
		var err error
		switch key {
		case "point":
			r.Point = Point(val)
		case "kind":
			r.Kind, err = parseKind(val)
		case "errno":
			r.Errno, err = parseErrno(val)
		case "d":
			r.Delay, err = time.ParseDuration(val)
		case "bytes":
			r.Bytes, err = strconv.Atoi(val)
		case "after":
			r.After, err = strconv.Atoi(val)
		case "every":
			r.Every, err = strconv.Atoi(val)
		case "count":
			r.Count, err = strconv.Atoi(val)
		case "prob":
			r.Prob, err = strconv.ParseFloat(val, 64)
		case "seed":
			var seed uint64
			seed, err = strconv.ParseUint(val, 10, 64)
			r.Seed = seed
		default:
			return nil, fmt.Errorf("fault: unknown field %q in rule %q", key, rs)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: field %q in rule %q: %w", field, rs, err)
		}
	}
	if r.Point == "" {
		return nil, fmt.Errorf("fault: rule %q has no point=", rs)
	}
	if r.Kind == KindLatency && r.Delay <= 0 {
		return nil, fmt.Errorf("fault: latency rule %q needs d=<duration>", rs)
	}
	if r.Every < 1 {
		r.Every = 1
	}
	return r, nil
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "error":
		return KindError, nil
	case "latency":
		return KindLatency, nil
	case "partition":
		return KindPartition, nil
	case "disk-full":
		return KindDiskFull, nil
	case "torn":
		return KindTorn, nil
	}
	return 0, fmt.Errorf("unknown kind %q (want error, latency, partition, disk-full or torn)", s)
}

func parseErrno(s string) (syscall.Errno, error) {
	switch s {
	case "EIO":
		return syscall.EIO, nil
	case "ENOSPC":
		return syscall.ENOSPC, nil
	case "ECONNREFUSED":
		return syscall.ECONNREFUSED, nil
	case "ETIMEDOUT":
		return syscall.ETIMEDOUT, nil
	}
	return 0, fmt.Errorf("unknown errno %q (want EIO, ENOSPC, ECONNREFUSED or ETIMEDOUT)", s)
}
