package rspn

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/schema"
	"repro/internal/spn"
	"repro/internal/table"
)

// LearnOptions controls how an RSPN is learned from a materialized table
// (a base table or a full outer join).
type LearnOptions struct {
	// SPN holds the structure-learning hyperparameters.
	SPN spn.LearnConfig
	// MaxSamples caps the training rows; larger inputs are sampled
	// uniformly (the paper's "samples per RSPN" knob, Figure 8 right).
	MaxSamples int
	// Seed drives sampling.
	Seed int64
	// Exact builds a memorizing model (one sum child per distinct row)
	// instead of running structure learning. Useful for small dimension
	// tables where exactness beats generalization.
	Exact bool
}

// DefaultLearnOptions mirrors the paper's setup.
func DefaultLearnOptions() LearnOptions {
	return LearnOptions{SPN: spn.DefaultLearnConfig(), MaxSamples: 100000, Seed: 1}
}

// LearnColumns selects which columns of a materialized table an RSPN
// should learn: every attribute except primary/foreign keys and
// FD-dependent columns, plus all tuple-factor and indicator columns. The
// exclusion sets are derived from the schema.
//
//deepdb:nocancel iterates schema metadata and column names only, never row data
func LearnColumns(s *schema.Schema, tbl *table.Table, tables []string, fds []FD) []string {
	exclude := make(map[string]bool)
	for _, tn := range tables {
		meta := s.Table(tn)
		if meta == nil {
			continue
		}
		if meta.PrimaryKey != "" {
			exclude[meta.PrimaryKey] = true
		}
		for _, fk := range meta.ForeignKeys {
			exclude[fk.Column] = true
		}
	}
	for _, fd := range fds {
		exclude[fd.Dependent] = true
	}
	var out []string
	for _, name := range tbl.ColumnNames() {
		if exclude[name] {
			continue
		}
		out = append(out, name)
	}
	return out
}

// Learn builds an RSPN from a materialized table. tables and edges describe
// what the materialized table is (base table or full outer join); columns
// lists the attributes to learn (LearnColumns provides the default).
// Structure learning honors ctx: cancellation aborts with ctx.Err().
func Learn(ctx context.Context, tbl *table.Table, tables []string, edges []schema.Relationship,
	columns []string, fds []FD, opts LearnOptions) (*RSPN, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("rspn: no columns to learn for %s", strings.Join(tables, ","))
	}
	rows := tbl.NumRows()
	if rows == 0 {
		return nil, fmt.Errorf("rspn: empty training table for %s", strings.Join(tables, ","))
	}
	var rowIdx []int
	sampleRate := 1.0
	if opts.MaxSamples > 0 && rows > opts.MaxSamples {
		rng := rand.New(rand.NewSource(opts.Seed))
		rowIdx = tbl.SampleRows(opts.MaxSamples, rng)
		sampleRate = float64(opts.MaxSamples) / float64(rows)
	}
	data, err := tbl.Matrix(columns, rowIdx)
	if err != nil {
		return nil, err
	}
	clampFactorColumns(data, columns, len(tables) > 1)
	var model *spn.SPN
	if opts.Exact {
		model, err = spn.LearnExact(data, columns)
	} else {
		model, err = spn.LearnContext(ctx, data, columns, opts.SPN)
	}
	if err != nil {
		return nil, err
	}
	r := &RSPN{
		Model:      model,
		Tables:     append([]string(nil), tables...),
		Edges:      append([]schema.Relationship(nil), edges...),
		FullSize:   float64(rows),
		SampleRate: sampleRate,
		FDs:        fds,
	}
	r.Refresh()
	return r, nil
}

// clampFactorColumns lifts tuple-factor values to at least 1 in join
// training data, implementing the paper's "the value of F' is at least 1"
// invariant for full outer joins: a row with no join partner still appears
// once, and a padded side (NULL factor) likewise counts itself once, so the
// 1/F' correction of Theorem 1 sums padded rows at full weight. Single-
// table RSPNs keep raw factors, including 0, which Theorem 2 needs.
func clampFactorColumns(data [][]float64, columns []string, isJoin bool) {
	if !isJoin {
		return
	}
	for j, name := range columns {
		if !strings.HasPrefix(name, "__fk_") {
			continue
		}
		for i := range data {
			if v := data[i][j]; v != v /* NaN */ || v < 1 {
				data[i][j] = 1
			}
		}
	}
}
