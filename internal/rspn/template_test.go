package rspn

// template_test.go pins the contract that makes TermTemplate safe: for
// any term shape, binding the template must produce exactly the request
// the generic buildConstraints path builds — same columns, same order,
// same merged ranges, same moment functions. A divergence here would
// silently change served results, because plan execution prefers the
// template path.

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/query"
	"repro/internal/spn"
	"repro/internal/table"
)

// templateFixture builds an RSPN over a hand-made exact SPN whose columns
// include an attribute, an FD determinant, a join indicator and a tuple
// factor, plus an FD dictionary for a column the model does not learn.
func templateFixture(t *testing.T) *RSPN {
	t.Helper()
	cols := []string{"a", "city", table.IndicatorColumn("t1"), "__fk_t1<-t2"}
	data := [][]float64{
		{1, 10, 1, 1},
		{2, 11, 1, 2},
		{3, 12, 0, 1},
		{2, 10, 1, 3},
	}
	model, err := spn.LearnExact(data, cols)
	if err != nil {
		t.Fatal(err)
	}
	r := &RSPN{
		Model:    model,
		Tables:   []string{"t1", "t2"},
		FullSize: 4,
		FDs: []FD{{
			Table:       "t1",
			Determinant: "city",
			Dependent:   "region",
			Inverse:     map[float64][]float64{100: {10, 11}, 200: {12}},
			Forward:     map[float64]float64{10: 100, 11: 100, 12: 200},
		}},
	}
	r.Refresh()
	return r
}

func templateTerms() []Term {
	return []Term{
		// Plain filters.
		{Filters: []query.Predicate{{Column: "a", Op: query.Lt, Value: 3}}},
		// Two filters on the same column intersect their ranges.
		{Filters: []query.Predicate{
			{Column: "a", Op: query.Ge, Value: 1},
			{Column: "a", Op: query.Le, Value: 2},
		}},
		// Contradictory constraints encode the impossible range.
		{Filters: []query.Predicate{
			{Column: "a", Op: query.Gt, Value: 5},
			{Column: "a", Op: query.Lt, Value: 1},
		}},
		// FD-translated filter on a column the model does not learn.
		{Filters: []query.Predicate{{Column: "region", Op: query.Eq, Value: 100}}},
		// Indicators, moment functions and not-null constraints, with a
		// filter colliding with the moment column.
		{
			Filters:     []query.Predicate{{Column: "a", Op: query.Ge, Value: 2}},
			InnerTables: []string{"t1"},
			Fns:         map[string]spn.Fn{"a": spn.FnIdent, "__fk_t1<-t2": spn.FnInv},
			NotNull:     []string{"a"},
		},
		// In-list filter plus an indicator on the same model.
		{
			Filters:     []query.Predicate{{Column: "city", Op: query.In, Values: []float64{10, 12}}},
			InnerTables: []string{"t1"},
		},
	}
}

func TestTemplateMatchesGenericBuild(t *testing.T) {
	r := templateFixture(t)
	for ti, term := range templateTerms() {
		tmpl, err := r.CompileTerm(term)
		if err != nil {
			t.Fatalf("term %d: CompileTerm: %v", ti, err)
		}
		bound, ok, err := tmpl.BindRequest(term.Filters)
		if err != nil {
			t.Fatalf("term %d: BindRequest: %v", ti, err)
		}
		if !ok {
			t.Fatalf("term %d: BindRequest rejected the compiled shape", ti)
		}
		generic, err := r.BuildRequest(term)
		if err != nil {
			t.Fatalf("term %d: BuildRequest: %v", ti, err)
		}
		if !reflect.DeepEqual(bound, generic) {
			t.Fatalf("term %d: template request %+v != generic request %+v", ti, bound, generic)
		}
		// Rebinding with different literal values must track the generic
		// path too (the template is compiled once per shape).
		shifted := make([]query.Predicate, len(term.Filters))
		for i, p := range term.Filters {
			p.Value++
			shifted[i] = p
		}
		term2 := term
		term2.Filters = shifted
		bound2, ok, err := tmpl.BindRequest(shifted)
		if err != nil || !ok {
			t.Fatalf("term %d: rebind failed (ok=%v err=%v)", ti, ok, err)
		}
		generic2, err := r.BuildRequest(term2)
		if err != nil {
			t.Fatalf("term %d: BuildRequest rebind: %v", ti, err)
		}
		if !reflect.DeepEqual(bound2, generic2) {
			t.Fatalf("term %d rebind: template %+v != generic %+v", ti, bound2, generic2)
		}
	}
}

// TestTemplateBindIndexed: binding through kept ordinals against the full
// predicate list equals binding the filtered copy.
func TestTemplateBindIndexed(t *testing.T) {
	r := templateFixture(t)
	full := []query.Predicate{
		{Column: "other_table_col", Op: query.Eq, Value: 9}, // not kept
		{Column: "a", Op: query.Lt, Value: 3},
		{Column: "city", Op: query.Eq, Value: 11},
	}
	kept := full[1:]
	term := Term{Filters: kept}
	tmpl, err := r.CompileTerm(term)
	if err != nil {
		t.Fatal(err)
	}
	direct, ok, err := tmpl.BindRequest(kept)
	if err != nil || !ok {
		t.Fatalf("direct bind failed (ok=%v err=%v)", ok, err)
	}
	indexed, ok, err := tmpl.BindIndexed(full, []int{1, 2})
	if err != nil || !ok {
		t.Fatalf("indexed bind failed (ok=%v err=%v)", ok, err)
	}
	if !reflect.DeepEqual(direct, indexed) {
		t.Fatalf("indexed %+v != direct %+v", indexed, direct)
	}
	// Shape mismatches fall back instead of mis-binding.
	if _, ok, _ := tmpl.BindIndexed(full, []int{0, 2}); ok {
		t.Fatal("expected shape-mismatch rejection for wrong column")
	}
	if _, ok, _ := tmpl.BindIndexed(full, []int{1}); ok {
		t.Fatal("expected shape-mismatch rejection for wrong arity")
	}
	if _, ok, _ := tmpl.BindIndexed(full, []int{1, 99}); ok {
		t.Fatal("expected shape-mismatch rejection for out-of-range ordinal")
	}
}

// TestTemplateValuesFinite guards the fixture itself: the bound requests
// must evaluate to finite values on the model.
func TestTemplateValuesFinite(t *testing.T) {
	r := templateFixture(t)
	for ti, term := range templateTerms() {
		v, err := r.Expectation(term)
		if err != nil {
			t.Fatalf("term %d: %v", ti, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("term %d: non-finite expectation %v", ti, v)
		}
	}
}
