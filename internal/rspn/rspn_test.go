package rspn

import (
	"context"
	"math"
	"testing"

	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/spn"
	"repro/internal/table"
)

// paperData builds the Figure 5 schema and tables with tuple factors.
func paperData(t *testing.T) (*schema.Schema, map[string]*table.Table, schema.Relationship) {
	t.Helper()
	s := &schema.Schema{Tables: []*schema.Table{
		{
			Name: "customer",
			Columns: []schema.Column{
				{Name: "c_id", Kind: schema.IntKind},
				{Name: "c_age", Kind: schema.IntKind},
				{Name: "c_region", Kind: schema.CategoricalKind},
			},
			PrimaryKey: "c_id",
		},
		{
			Name: "orders",
			Columns: []schema.Column{
				{Name: "o_id", Kind: schema.IntKind},
				{Name: "o_c_id", Kind: schema.IntKind},
				{Name: "o_channel", Kind: schema.CategoricalKind},
			},
			PrimaryKey: "o_id",
			ForeignKeys: []schema.ForeignKey{
				{Column: "o_c_id", RefTable: "customer", RefColumn: "c_id"},
			},
		},
	}}
	cust := table.New(s.Table("customer"))
	reg := cust.Column("c_region")
	eu := float64(reg.Encode("EUROPE"))
	asia := float64(reg.Encode("ASIA"))
	cust.AppendRow(table.Int(1), table.Int(20), table.Float(eu))
	cust.AppendRow(table.Int(2), table.Int(50), table.Float(eu))
	cust.AppendRow(table.Int(3), table.Int(80), table.Float(asia))
	ord := table.New(s.Table("orders"))
	ch := ord.Column("o_channel")
	online := float64(ch.Encode("ONLINE"))
	store := float64(ch.Encode("STORE"))
	ord.AppendRow(table.Int(1), table.Int(1), table.Float(online))
	ord.AppendRow(table.Int(2), table.Int(1), table.Float(store))
	ord.AppendRow(table.Int(3), table.Int(3), table.Float(online))
	ord.AppendRow(table.Int(4), table.Int(3), table.Float(store))
	tabs := map[string]*table.Table{"customer": cust, "orders": ord}
	rel := s.Relationships()[0]
	if err := table.AddTupleFactor(tabs["customer"], tabs["orders"], rel); err != nil {
		t.Fatal(err)
	}
	return s, tabs, rel
}

// exactOpts uses the memorizing learner so the model represents the 3-5 row
// paper tables exactly, as the worked examples in Figures 3-5 assume.
func exactOpts() LearnOptions {
	o := DefaultLearnOptions()
	o.Exact = true
	return o
}

// learnJoint learns the Figure 5b joint RSPN over the full outer join.
func learnJoint(t *testing.T, s *schema.Schema, tabs map[string]*table.Table, rel schema.Relationship) *RSPN {
	t.Helper()
	spec := table.JoinSpec{Tables: []string{"customer", "orders"}, Edges: []schema.Relationship{rel}}
	j, err := table.FullOuterJoin(tabs, spec)
	if err != nil {
		t.Fatal(err)
	}
	cols := LearnColumns(s, j, spec.Tables, nil)
	r, err := Learn(context.Background(), j, spec.Tables, spec.Edges, cols, nil, exactOpts())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLearnColumnsExcludesKeys(t *testing.T) {
	s, tabs, _ := paperData(t)
	cols := LearnColumns(s, tabs["customer"], []string{"customer"}, nil)
	for _, c := range cols {
		if c == "c_id" {
			t.Fatal("primary key should be excluded from learning")
		}
	}
	found := map[string]bool{}
	for _, c := range cols {
		found[c] = true
	}
	if !found["c_age"] || !found["c_region"] || !found["__fk_customer<-orders"] {
		t.Fatalf("learn columns = %v", cols)
	}
}

func TestCase1SingleTableCount(t *testing.T) {
	s, tabs, _ := paperData(t)
	cols := LearnColumns(s, tabs["customer"], []string{"customer"}, nil)
	r, err := Learn(context.Background(), tabs["customer"], []string{"customer"}, nil, cols, nil, exactOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Q1: COUNT customers WHERE region=EUROPE -> 2.
	eu := float64(tabs["customer"].Column("c_region").Lookup("EUROPE"))
	e, err := r.Expectation(Term{
		Filters:     []query.Predicate{{Column: "c_region", Op: query.Eq, Value: eu}},
		InnerTables: []string{"customer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.FullSize * e; math.Abs(got-2) > 1e-9 {
		t.Fatalf("Q1 estimate = %v, want 2", got)
	}
}

func TestCase1JoinCount(t *testing.T) {
	s, tabs, rel := paperData(t)
	r := learnJoint(t, s, tabs, rel)
	if r.FullSize != 5 {
		t.Fatalf("full outer join size = %v, want 5", r.FullSize)
	}
	eu := float64(tabs["customer"].Column("c_region").Lookup("EUROPE"))
	online := float64(tabs["orders"].Column("o_channel").Lookup("ONLINE"))
	// Q2 via the joint RSPN: |J| * P(EU, ONLINE, N_C=1, N_O=1) = 5 * 1/5 = 1.
	e, err := r.Expectation(Term{
		Filters: []query.Predicate{
			{Column: "c_region", Op: query.Eq, Value: eu},
			{Column: "o_channel", Op: query.Eq, Value: online},
		},
		InnerTables: []string{"customer", "orders"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.FullSize * e; math.Abs(got-1) > 1e-9 {
		t.Fatalf("Q2 estimate = %v, want 1", got)
	}
}

func TestCase2LargerRSPNWithTupleFactorNormalization(t *testing.T) {
	s, tabs, rel := paperData(t)
	r := learnJoint(t, s, tabs, rel)
	eu := float64(tabs["customer"].Column("c_region").Lookup("EUROPE"))
	// Count of European customers from the join RSPN (paper Section 4.1
	// Case 2): |J| * E(1/F' * 1_EU * N_C) = 5 * (1/2 + 1/2 + 1)/5 = 2.
	invCols := r.InverseFactorColumns([]string{"customer"})
	if len(invCols) != 1 || invCols[0] != table.TupleFactorColumn(rel) {
		t.Fatalf("inverse factor columns = %v", invCols)
	}
	fns := map[string]spn.Fn{invCols[0]: spn.FnInv}
	e, err := r.Expectation(Term{
		Fns:         fns,
		Filters:     []query.Predicate{{Column: "c_region", Op: query.Eq, Value: eu}},
		InnerTables: []string{"customer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.FullSize * e; math.Abs(got-2) > 1e-9 {
		t.Fatalf("Case 2 estimate = %v, want 2 (paper)", got)
	}
}

func TestCase2AvgWithNormalization(t *testing.T) {
	s, tabs, rel := paperData(t)
	r := learnJoint(t, s, tabs, rel)
	eu := float64(tabs["customer"].Column("c_region").Lookup("EUROPE"))
	fcol := table.TupleFactorColumn(rel)
	// Paper Section 4.2: AVG(c_age | EU) on the join RSPN is
	// E(age/F' | EU) / E(1/F' | EU) = (20/2+20/2+50) / (1/2+1/2+1) = 35.
	num, err := r.Expectation(Term{
		Fns:         map[string]spn.Fn{fcol: spn.FnInv, "c_age": spn.FnIdent},
		Filters:     []query.Predicate{{Column: "c_region", Op: query.Eq, Value: eu}},
		InnerTables: []string{"customer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	den, err := r.Expectation(Term{
		Fns:         map[string]spn.Fn{fcol: spn.FnInv},
		Filters:     []query.Predicate{{Column: "c_region", Op: query.Eq, Value: eu}},
		InnerTables: []string{"customer"},
		NotNull:     []string{"c_age"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := num / den; math.Abs(got-35) > 1e-9 {
		t.Fatalf("AVG estimate = %v, want 35 (paper)", got)
	}
}

func TestCase3SingleTableFactors(t *testing.T) {
	s, tabs, rel := paperData(t)
	// Single-table customer RSPN keeps raw factors including 0.
	cols := LearnColumns(s, tabs["customer"], []string{"customer"}, nil)
	rc, err := Learn(context.Background(), tabs["customer"], []string{"customer"}, nil, cols, nil, exactOpts())
	if err != nil {
		t.Fatal(err)
	}
	eu := float64(tabs["customer"].Column("c_region").Lookup("EUROPE"))
	// Paper Case 3, QL part: |C| * E(1_EU * F_C<-O) = 3 * (2+0)/3 = 2.
	ql, err := rc.Expectation(Term{
		Fns:     map[string]spn.Fn{table.TupleFactorColumn(rel): spn.FnIdent},
		Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: eu}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rc.FullSize * ql; math.Abs(got-2) > 1e-9 {
		t.Fatalf("QL estimate = %v, want 2 (paper)", got)
	}
	// QR part on the orders RSPN: E(1_ONLINE) = 1/2.
	ocols := LearnColumns(s, tabs["orders"], []string{"orders"}, nil)
	ro, err := Learn(context.Background(), tabs["orders"], []string{"orders"}, nil, ocols, nil, exactOpts())
	if err != nil {
		t.Fatal(err)
	}
	online := float64(tabs["orders"].Column("o_channel").Lookup("ONLINE"))
	qr, err := ro.Expectation(Term{
		Filters: []query.Predicate{{Column: "o_channel", Op: query.Eq, Value: online}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qr-0.5) > 1e-9 {
		t.Fatalf("QR selectivity = %v, want 0.5", qr)
	}
	// Combined Theorem 2 estimate: 2 * 0.5 / 1 = 1 = true Q2 result.
	if got := rc.FullSize * ql * qr; math.Abs(got-1) > 1e-9 {
		t.Fatalf("Case 3 estimate = %v, want 1", got)
	}
}

func TestFunctionalDependencyTranslation(t *testing.T) {
	// Table with FD: zip -> city.
	meta := &schema.Table{Name: "addr", Columns: []schema.Column{
		{Name: "zip", Kind: schema.IntKind},
		{Name: "city", Kind: schema.CategoricalKind},
	}, FDs: []schema.FunctionalDependency{{Determinant: "zip", Dependent: "city"}}}
	tb := table.New(meta)
	city := tb.Column("city")
	a := float64(city.Encode("A"))
	b := float64(city.Encode("B"))
	tb.AppendRow(table.Int(10), table.Float(a))
	tb.AppendRow(table.Int(10), table.Float(a))
	tb.AppendRow(table.Int(20), table.Float(a))
	tb.AppendRow(table.Int(30), table.Float(b))
	fd, err := BuildFD(tb, meta.FDs[0])
	if err != nil {
		t.Fatal(err)
	}
	s := &schema.Schema{Tables: []*schema.Table{meta}}
	cols := LearnColumns(s, tb, []string{"addr"}, []FD{fd})
	for _, c := range cols {
		if c == "city" {
			t.Fatal("FD-dependent column must be excluded from learning")
		}
	}
	r, err := Learn(context.Background(), tb, []string{"addr"}, nil, cols, []FD{fd}, exactOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Query on the dependent column: city = 'A' -> zip IN (10, 20) -> 3 rows.
	e, err := r.Expectation(Term{
		Filters: []query.Predicate{{Column: "city", Op: query.Eq, Value: a}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.FullSize * e; math.Abs(got-3) > 1e-9 {
		t.Fatalf("FD-translated count = %v, want 3", got)
	}
	if !r.ResolvesColumn("city") || r.HasColumn("city") {
		t.Fatal("city should resolve via FD but not be a model column")
	}
}

func TestBuildFDViolation(t *testing.T) {
	meta := &schema.Table{Name: "t", Columns: []schema.Column{
		{Name: "a", Kind: schema.IntKind},
		{Name: "b", Kind: schema.IntKind},
	}}
	tb := table.New(meta)
	tb.AppendRow(table.Int(1), table.Int(10))
	tb.AppendRow(table.Int(1), table.Int(20)) // violates a -> b
	if _, err := BuildFD(tb, schema.FunctionalDependency{Determinant: "a", Dependent: "b"}); err == nil {
		t.Fatal("expected FD violation error")
	}
}

func TestIntersectRanges(t *testing.T) {
	inf := math.Inf(1)
	a := []spn.Range{{Lo: -inf, Hi: 50, LoIncl: true, HiIncl: false}} // x < 50
	b := []spn.Range{{Lo: 30, Hi: inf, LoIncl: true, HiIncl: true}}   // x >= 30
	got := IntersectRanges(a, b)
	if len(got) != 1 || got[0].Lo != 30 || got[0].Hi != 50 || !got[0].LoIncl || got[0].HiIncl {
		t.Fatalf("intersection = %+v", got)
	}
	// Disjoint: empty.
	c := []spn.Range{spn.PointRange(100)}
	if out := IntersectRanges(a, c); len(out) != 0 {
		t.Fatalf("disjoint intersection = %+v", out)
	}
	// Point boundary: x <= 50 intersect x >= 50 = {50}.
	d := []spn.Range{{Lo: -inf, Hi: 50, LoIncl: true, HiIncl: true}}
	e := []spn.Range{{Lo: 50, Hi: inf, LoIncl: true, HiIncl: true}}
	out := IntersectRanges(d, e)
	if len(out) != 1 || out[0].Lo != 50 || out[0].Hi != 50 {
		t.Fatalf("point intersection = %+v", out)
	}
}

func TestConflictingPredicatesGiveZero(t *testing.T) {
	s, tabs, _ := paperData(t)
	cols := LearnColumns(s, tabs["customer"], []string{"customer"}, nil)
	r, err := Learn(context.Background(), tabs["customer"], []string{"customer"}, nil, cols, nil, exactOpts())
	if err != nil {
		t.Fatal(err)
	}
	e, err := r.Expectation(Term{Filters: []query.Predicate{
		{Column: "c_age", Op: query.Lt, Value: 30},
		{Column: "c_age", Op: query.Gt, Value: 60},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("contradictory predicates: expectation = %v, want 0", e)
	}
}

func TestPredicateRanges(t *testing.T) {
	rs := PredicateRanges(query.Predicate{Column: "x", Op: query.Ne, Value: 5})
	if len(rs) != 2 {
		t.Fatalf("Ne ranges = %+v", rs)
	}
	if rs[0].HiIncl || rs[1].LoIncl {
		t.Fatal("Ne ranges must exclude the boundary value")
	}
	in := PredicateRanges(query.Predicate{Column: "x", Op: query.In, Values: []float64{1, 2}})
	if len(in) != 2 {
		t.Fatalf("In ranges = %+v", in)
	}
}

func TestExpectationUnknownColumn(t *testing.T) {
	s, tabs, _ := paperData(t)
	cols := LearnColumns(s, tabs["customer"], []string{"customer"}, nil)
	r, err := Learn(context.Background(), tabs["customer"], []string{"customer"}, nil, cols, nil, exactOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Expectation(Term{Filters: []query.Predicate{{Column: "nope", Op: query.Eq}}}); err == nil {
		t.Fatal("expected error for unknown column")
	}
	if _, err := r.Expectation(Term{Fns: map[string]spn.Fn{"nope": spn.FnIdent}}); err == nil {
		t.Fatal("expected error for unknown moment column")
	}
}

func TestRSPNUpdateTracksSize(t *testing.T) {
	s, tabs, rel := paperData(t)
	r := learnJoint(t, s, tabs, rel)
	before := r.FullSize
	row := make([]float64, len(r.Model.Columns))
	for i, c := range r.Model.Columns {
		switch c {
		case "c_age":
			row[i] = 25
		case "c_region":
			row[i] = float64(tabs["customer"].Column("c_region").Lookup("EUROPE"))
		case "o_channel":
			row[i] = float64(tabs["orders"].Column("o_channel").Lookup("ONLINE"))
		default:
			row[i] = 1
		}
	}
	if err := r.Insert(row, true); err != nil {
		t.Fatal(err)
	}
	if r.FullSize != before+1 {
		t.Fatalf("FullSize = %v, want %v", r.FullSize, before+1)
	}
	// Sampled-out insert: size grows, model untouched.
	n := r.Model.RowCount
	if err := r.Insert(row, false); err != nil {
		t.Fatal(err)
	}
	if r.Model.RowCount != n || r.FullSize != before+2 {
		t.Fatal("sampled-out insert should only grow FullSize")
	}
	if err := r.Delete(row, true); err != nil {
		t.Fatal(err)
	}
	if r.FullSize != before+1 {
		t.Fatalf("FullSize after delete = %v", r.FullSize)
	}
}

func TestCoversAndResolve(t *testing.T) {
	s, tabs, rel := paperData(t)
	r := learnJoint(t, s, tabs, rel)
	if !r.CoversTables([]string{"customer"}) || !r.CoversTables([]string{"customer", "orders"}) {
		t.Fatal("join RSPN should cover both tables")
	}
	if r.CoversTables([]string{"customer", "lineitem"}) {
		t.Fatal("should not cover unknown table")
	}
	if !r.HasColumn("c_age") || r.HasColumn("c_id") {
		t.Fatal("column visibility wrong")
	}
}
