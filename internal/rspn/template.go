package rspn

// template.go precompiles the value-independent structure of a Term. A
// compiled query plan evaluates the same term shape over and over with
// only the predicate *values* changing (per prepared-statement binding,
// per GROUP BY key, per inclusion-exclusion mask), yet the generic
// BuildRequest path re-derives column routing, FD-translation decisions,
// moment-function placement and indicator constraints on every call. A
// TermTemplate performs that derivation once: binding a concrete
// predicate list reduces to filling range values into a prebuilt slot
// layout.

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/spn"
)

// ttSlot is one output column of the template's request: which model
// column, its fixed moment function and not-null flag, which filter
// ordinals merge into it (in order), and whether the N_t = 1 indicator
// range merges in after them — the exact merge sequence buildConstraints
// performs, so bound requests are bit-identical to generically built ones.
type ttSlot struct {
	col       int
	fn        spn.Fn
	hasFn     bool
	notNull   bool
	indicator bool
	filters   []int
}

// TermTemplate is a Term with its constraint structure resolved against
// one RSPN. It is immutable after CompileTerm and safe for concurrent
// BindRequest calls.
type TermTemplate struct {
	r     *RSPN
	slots []ttSlot
	// Per filter ordinal: the expected column (a defensive shape check at
	// bind time) and whether the predicate needs FD translation.
	cols []string
	fd   []bool
}

// CompileTerm resolves the term's structure — column routing, FD
// decisions, indicator and moment placement — against the model. The
// term's filter values are ignored; only their columns and order matter,
// and BindRequest expects the same filter shape (as query.SameShape
// guarantees for plan executions).
func (r *RSPN) CompileTerm(term Term) (*TermTemplate, error) {
	t := &TermTemplate{
		r:    r,
		cols: make([]string, len(term.Filters)),
		fd:   make([]bool, len(term.Filters)),
	}
	slotOf := func(col int) *ttSlot {
		for i := range t.slots {
			if t.slots[i].col == col {
				return &t.slots[i]
			}
		}
		t.slots = append(t.slots, ttSlot{col: col})
		return &t.slots[len(t.slots)-1]
	}
	for k, p := range term.Filters {
		t.cols[k] = p.Column
		pred := p
		if !r.HasColumn(pred.Column) {
			translated, err := r.translateFD(pred)
			if err != nil {
				return nil, err
			}
			t.fd[k] = true
			pred = translated
		}
		idx := r.Model.ColumnIndex(pred.Column)
		if idx < 0 {
			return nil, fmt.Errorf("rspn: column %s not in model", pred.Column)
		}
		s := slotOf(idx)
		s.filters = append(s.filters, k)
	}
	for _, tbl := range term.InnerTables {
		idx := r.indicatorIndex(tbl)
		if idx < 0 {
			if len(r.Tables) == 1 && r.Tables[0] == tbl {
				continue // single-table RSPN: every row is a real row
			}
			return nil, fmt.Errorf("rspn: missing indicator column for table %s", tbl)
		}
		slotOf(idx).indicator = true
	}
	//deepdb:orderinvariant each column writes its own state slot; duplicate assignment is an error either way
	for col, fn := range term.Fns {
		idx := r.Model.ColumnIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("rspn: moment column %s not in model", col)
		}
		s := slotOf(idx)
		if s.hasFn {
			return nil, fmt.Errorf("rspn: column %s assigned two moment functions", col)
		}
		s.fn, s.hasFn = fn, true
	}
	for _, col := range term.NotNull {
		idx := r.Model.ColumnIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("rspn: not-null column %s not in model", col)
		}
		slotOf(idx).notNull = true
	}
	return t, nil
}

// BindRequest builds the template's request for one concrete predicate
// list. ok is false when the filter shape differs from the compiled one
// (the caller then falls back to the generic BuildRequest path); errors
// only arise from value-dependent FD translation.
func (t *TermTemplate) BindRequest(filters []query.Predicate) (req spn.Request, ok bool, err error) {
	return t.BindIndexed(filters, nil)
}

// BindIndexed is BindRequest through an ordinal indirection: template
// filter k reads filters[idx[k]] (idx nil means identity). A plan whose
// term keeps only a subset of the query's predicates stores the kept
// ordinals once at compile time and binds against the full predicate list
// directly, instead of materializing the filtered copy per evaluation.
//
//deepdb:nocancel slot loops are column-count bounded; this per-evaluation hot path is cheaper than a ctx check
func (t *TermTemplate) BindIndexed(filters []query.Predicate, idx []int) (req spn.Request, ok bool, err error) {
	if idx == nil {
		if len(filters) != len(t.cols) {
			return spn.Request{}, false, nil
		}
		for k := range filters {
			if filters[k].Column != t.cols[k] {
				return spn.Request{}, false, nil
			}
		}
	} else {
		if len(idx) != len(t.cols) {
			return spn.Request{}, false, nil
		}
		for k, j := range idx {
			if j < 0 || j >= len(filters) || filters[j].Column != t.cols[k] {
				return spn.Request{}, false, nil
			}
		}
	}
	cols := make([]spn.ColQuery, len(t.slots))
	for i := range t.slots {
		sl := &t.slots[i]
		cq := spn.ColQuery{Col: sl.col, Fn: sl.fn, ExcludeNull: sl.notNull}
		var ranges []spn.Range
		hasRange := false
		for _, k := range sl.filters {
			j := k
			if idx != nil {
				j = idx[k]
			}
			pred := filters[j]
			if t.fd[k] {
				pred, err = t.r.translateFD(pred)
				if err != nil {
					return spn.Request{}, false, err
				}
			}
			rs := PredicateRanges(pred)
			if !hasRange {
				ranges, hasRange = rs, true
			} else {
				ranges = IntersectRanges(ranges, rs)
			}
		}
		if sl.indicator {
			ind := t.r.ntRange
			if ind == nil {
				ind = []spn.Range{spn.PointRange(1)}
			}
			if !hasRange {
				ranges, hasRange = ind, true
			} else {
				ranges = IntersectRanges(ranges, ind)
			}
		}
		if hasRange {
			cq.Ranges = ranges
			if len(cq.Ranges) == 0 {
				// Contradictory constraints: probability zero. Encode as an
				// impossible range.
				cq.Ranges = []spn.Range{{Lo: 1, Hi: 0}}
			}
		}
		cols[i] = cq
	}
	return spn.Request{Cols: cols}, true, nil
}
