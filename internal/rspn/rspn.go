// Package rspn implements Relational Sum-Product Networks: SPNs extended
// with the database-specific machinery of Sections 3.2 and 4 of the DeepDB
// paper. An RSPN wraps an SPN learned over a single table or over the full
// outer join of FK-connected tables, and adds:
//
//   - NULL-aware predicate semantics (NULL never satisfies a comparison),
//   - tuple-factor columns F_{S<-T} and join-indicator columns N_T,
//   - functional-dependency dictionaries that translate predicates on a
//     dependent column into predicates on its determinant,
//   - a Term abstraction that assembles the per-column moment requests the
//     probabilistic query compiler needs (Theorems 1 and 2),
//   - direct updates routed through the underlying SPN (Algorithm 1).
package rspn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/spn"
	"repro/internal/table"
)

// FD is a learned functional-dependency dictionary for A -> B: the model
// omits column B and queries filtering B are rewritten to filter A through
// the inverse mapping (Section 3.2).
type FD struct {
	Table       string
	Determinant string
	Dependent   string
	// Inverse maps each dependent value to the determinant values that
	// produce it.
	Inverse map[float64][]float64
	// Forward maps determinant values to the dependent value, used to
	// answer aggregate queries on the dependent column.
	Forward map[float64]float64
}

// RSPN is one ensemble member: an SPN over a table or a full outer join.
type RSPN struct {
	Model *spn.SPN
	// Tables are the base tables covered, in join order.
	Tables []string
	// Edges are the FK edges of the underlying full outer join (empty for
	// single-table RSPNs).
	Edges []schema.Relationship
	// FullSize is |J|: the current row count of the underlying full outer
	// join (or table). Maintained exactly under updates even when the
	// model was learned on a sample.
	FullSize float64
	// SampleRate is the fraction of join rows the model was learned on;
	// updates are applied to the model at this rate (Section 6.1).
	SampleRate float64
	// FDs are the functional-dependency dictionaries attached to this
	// model's tables.
	FDs []FD

	// ntIdx caches the model column index of each covered table's join
	// indicator N_t, so constraint building does not concatenate the
	// indicator column name per request. Unexported (gob skips it) and
	// precomputed by Refresh; hand-built RSPNs fall back to a direct
	// lookup.
	ntIdx map[string]int
	// ntRange is the shared, read-only N_t = 1 range every indicator
	// constraint uses (one allocation per RSPN instead of one per
	// request).
	ntRange []spn.Range
}

// Refresh rebuilds the RSPN's derived lookup state — the model's compiled
// flat evaluator and caches (spn.SPN.Refresh) plus the per-table join
// indicator column indices. Learning and deserialization call it.
func (r *RSPN) Refresh() {
	r.Model.Refresh()
	r.refreshDerived()
}

// refreshDerived rebuilds the RSPN-level caches (indicator indices, the
// shared N_t range) without recompiling the model.
func (r *RSPN) refreshDerived() {
	r.ntIdx = make(map[string]int, len(r.Tables))
	for _, t := range r.Tables {
		r.ntIdx[t] = r.Model.ColumnIndex(table.IndicatorColumn(t))
	}
	r.ntRange = []spn.Range{spn.PointRange(1)}
}

// Clone returns a copy that shares no mutable state with the receiver:
// Insert/Delete on the clone leave the original's model and FullSize
// untouched, which is what lets the update pipeline mutate a private copy
// while published snapshots keep serving. Immutable metadata (table list,
// join edges, FD dictionaries) is shared by pointer.
func (r *RSPN) Clone() *RSPN {
	out := &RSPN{
		Model:      r.Model.Clone(),
		Tables:     r.Tables,
		Edges:      r.Edges,
		FullSize:   r.FullSize,
		SampleRate: r.SampleRate,
		FDs:        r.FDs,
	}
	out.refreshDerived()
	return out
}

// indicatorIndex returns the model column index of table t's join
// indicator, or -1.
func (r *RSPN) indicatorIndex(t string) int {
	if r.ntIdx != nil {
		if idx, ok := r.ntIdx[t]; ok {
			return idx
		}
		return -1
	}
	return r.Model.ColumnIndex(table.IndicatorColumn(t))
}

// CoversTables reports whether the RSPN's table set includes every one of
// the given tables.
func (r *RSPN) CoversTables(tables []string) bool {
	for _, t := range tables {
		if !r.HasTable(t) {
			return false
		}
	}
	return true
}

// HasTable reports whether the RSPN covers the named base table.
func (r *RSPN) HasTable(name string) bool {
	for _, t := range r.Tables {
		if t == name {
			return true
		}
	}
	return false
}

// HasColumn reports whether the model learned the named column directly.
func (r *RSPN) HasColumn(name string) bool {
	return r.Model.ColumnIndex(name) >= 0
}

// ResolvesColumn reports whether the named column is either learned
// directly or reachable through a functional dependency.
func (r *RSPN) ResolvesColumn(name string) bool {
	if r.HasColumn(name) {
		return true
	}
	for _, fd := range r.FDs {
		if fd.Dependent == name && r.HasColumn(fd.Determinant) {
			return true
		}
	}
	return false
}

// Term describes one expectation of the form
//
//	E[ prod(aggregate fns) * prod(1/F' inverse factors) * prod(F mult
//	   factors) * 1(filters) * 1(indicators) * 1(not-null) ]
//
// over the RSPN's joint distribution. Multiplied by FullSize this yields
// the count/sum estimates of Theorems 1 and 2.
type Term struct {
	// Fns assigns a moment function to a column (e.g. the aggregate
	// column of a SUM gets FnIdent, tuple factors get FnInv).
	Fns map[string]spn.Fn
	// Filters are the query's predicates relevant to this RSPN.
	Filters []query.Predicate
	// InnerTables lists tables whose indicator N_T must equal 1 (inner
	// join semantics for the query's tables).
	InnerTables []string
	// NotNull lists columns required to be non-NULL (AVG denominators).
	NotNull []string
}

// Expectation evaluates the term against the model. Filters on FD-dependent
// columns are translated through the dictionary; filters on unknown columns
// produce an error so the caller can pick a different RSPN or drop them
// explicitly.
func (r *RSPN) Expectation(term Term) (float64, error) {
	req, err := r.BuildRequest(term)
	if err != nil {
		return 0, err
	}
	return r.Model.Evaluate(req)
}

// BuildRequest compiles a term into the single SPN inference request its
// evaluation needs. Callers that evaluate many terms should build their
// requests up front and hand them to EvaluateRequests in one batch, so the
// model's flat arrays are walked once for all of them.
func (r *RSPN) BuildRequest(term Term) (spn.Request, error) {
	cons, err := r.buildConstraints(term)
	if err != nil {
		return spn.Request{}, err
	}
	return spn.Request{Cols: cons}, nil
}

// EvaluateRequests evaluates a batch of prebuilt requests in one pass over
// the model's compiled flat form, writing request i's value into out[i]
// (len(out) >= len(reqs)). Results are bit-identical to evaluating each
// request alone.
func (r *RSPN) EvaluateRequests(reqs []spn.Request, out []float64) error {
	return r.Model.EvaluateBatch(reqs, out)
}

// buildConstraints merges the term's parts into one ColQuery per column,
// in deterministic first-touch order.
func (r *RSPN) buildConstraints(term Term) ([]spn.ColQuery, error) {
	type colState struct {
		col      int
		fn       spn.Fn
		hasFn    bool
		ranges   []spn.Range // nil means unconstrained so far
		hasRange bool
		notNull  bool
	}
	// A term touches a handful of columns; a linear scan over a small
	// slice beats the map the per-call path used to allocate.
	states := make([]colState, 0, 8)
	state := func(col int) *colState {
		for i := range states {
			if states[i].col == col {
				return &states[i]
			}
		}
		states = append(states, colState{col: col})
		return &states[len(states)-1]
	}

	// Filters, with FD translation.
	for _, p := range term.Filters {
		pred := p
		if !r.HasColumn(pred.Column) {
			translated, err := r.translateFD(pred)
			if err != nil {
				return nil, err
			}
			pred = translated
		}
		idx := r.Model.ColumnIndex(pred.Column)
		if idx < 0 {
			return nil, fmt.Errorf("rspn: column %s not in model", pred.Column)
		}
		rs := PredicateRanges(pred)
		s := state(idx)
		if !s.hasRange {
			s.ranges, s.hasRange = rs, true
		} else {
			s.ranges = IntersectRanges(s.ranges, rs)
		}
	}
	// Indicator columns.
	for _, t := range term.InnerTables {
		idx := r.indicatorIndex(t)
		if idx < 0 {
			if len(r.Tables) == 1 && r.Tables[0] == t {
				continue // single-table RSPN: every row is a real row
			}
			return nil, fmt.Errorf("rspn: missing indicator column %s", table.IndicatorColumn(t))
		}
		s := state(idx)
		ind := r.ntRange
		if ind == nil {
			ind = []spn.Range{spn.PointRange(1)}
		}
		if !s.hasRange {
			// Shared read-only slice: never mutated downstream.
			s.ranges, s.hasRange = ind, true
		} else {
			s.ranges = IntersectRanges(s.ranges, ind)
		}
	}
	// Moment functions.
	//deepdb:orderinvariant each column writes its own state slot; duplicate assignment is an error either way
	for col, fn := range term.Fns {
		idx := r.Model.ColumnIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("rspn: moment column %s not in model", col)
		}
		s := state(idx)
		if s.hasFn {
			return nil, fmt.Errorf("rspn: column %s assigned two moment functions", col)
		}
		s.fn, s.hasFn = fn, true
	}
	// Not-null constraints.
	for _, col := range term.NotNull {
		idx := r.Model.ColumnIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("rspn: not-null column %s not in model", col)
		}
		state(idx).notNull = true
	}

	out := make([]spn.ColQuery, 0, len(states))
	for i := range states {
		s := &states[i]
		cq := spn.ColQuery{Col: s.col, Fn: s.fn, ExcludeNull: s.notNull}
		if s.hasRange {
			cq.Ranges = s.ranges
			if len(cq.Ranges) == 0 {
				// Contradictory constraints: probability zero. Encode as an
				// impossible range.
				cq.Ranges = []spn.Range{{Lo: 1, Hi: 0}}
			}
		}
		out = append(out, cq)
	}
	return out, nil
}

// translateFD rewrites a predicate on an FD-dependent column into one on
// its determinant using the inverse dictionary.
func (r *RSPN) translateFD(p query.Predicate) (query.Predicate, error) {
	for _, fd := range r.FDs {
		if fd.Dependent != p.Column || !r.HasColumn(fd.Determinant) {
			continue
		}
		// Collect determinant values whose dependent value satisfies p, in
		// sorted order so downstream float summation is deterministic.
		var allowed []float64
		if p.Op == query.Eq {
			// Point lookup instead of a dictionary scan: equality is the
			// hot case (group-by gating binds one Eq per group column per
			// candidate key). Map lookup and p.Matches agree exactly —
			// float keys hash by ==, so ±0 unify and NaN matches neither
			// way — and a single key can never produce duplicates.
			allowed = append(allowed, fd.Inverse[p.Value]...)
		} else {
			//deepdb:orderinvariant allowed is fully sorted below before use
			for depVal, dets := range fd.Inverse {
				if p.Matches(depVal) {
					allowed = append(allowed, dets...)
				}
			}
		}
		sort.Float64s(allowed)
		return query.Predicate{Column: fd.Determinant, Op: query.In, Values: allowed}, nil
	}
	return p, fmt.Errorf("rspn: column %s not in model and no FD resolves it", p.Column)
}

// PredicateRanges converts a predicate into a union of value ranges with
// SQL semantics (NULL never qualifies; range endpoints respect operator
// strictness).
func PredicateRanges(p query.Predicate) []spn.Range {
	inf := math.Inf(1)
	switch p.Op {
	case query.Eq:
		return []spn.Range{spn.PointRange(p.Value)}
	case query.Ne:
		return []spn.Range{
			{Lo: -inf, Hi: p.Value, LoIncl: true, HiIncl: false},
			{Lo: p.Value, Hi: inf, LoIncl: false, HiIncl: true},
		}
	case query.Lt:
		return []spn.Range{{Lo: -inf, Hi: p.Value, LoIncl: true, HiIncl: false}}
	case query.Le:
		return []spn.Range{{Lo: -inf, Hi: p.Value, LoIncl: true, HiIncl: true}}
	case query.Gt:
		return []spn.Range{{Lo: p.Value, Hi: inf, LoIncl: false, HiIncl: true}}
	case query.Ge:
		return []spn.Range{{Lo: p.Value, Hi: inf, LoIncl: true, HiIncl: true}}
	case query.In:
		out := make([]spn.Range, 0, len(p.Values))
		for _, v := range p.Values {
			out = append(out, spn.PointRange(v))
		}
		return out
	default:
		return nil
	}
}

// IntersectRanges intersects two unions of ranges, returning the (possibly
// empty) union of pairwise intersections.
//
//deepdb:nocancel range unions are predicate-sized (a handful per column), not data-sized
func IntersectRanges(a, b []spn.Range) []spn.Range {
	var out []spn.Range
	for _, ra := range a {
		for _, rb := range b {
			lo, loIncl := ra.Lo, ra.LoIncl
			if rb.Lo > lo || (rb.Lo == lo && !rb.LoIncl) {
				lo, loIncl = rb.Lo, rb.LoIncl
			}
			hi, hiIncl := ra.Hi, ra.HiIncl
			if rb.Hi < hi || (rb.Hi == hi && !rb.HiIncl) {
				hi, hiIncl = rb.Hi, rb.HiIncl
			}
			if lo > hi {
				continue
			}
			if lo == hi && !(loIncl && hiIncl) {
				continue
			}
			out = append(out, spn.Range{Lo: lo, Hi: hi, LoIncl: loIncl, HiIncl: hiIncl})
		}
	}
	return out
}

// InverseFactorColumns returns the tuple-factor columns 1/F' must range
// over for a query touching only queryTables (Theorem 1): the factors of
// every join edge whose Many side is not part of the query. Rows reached by
// joining those extra Many-side tables are duplicates of the query's result
// tuples and the inverse factors cancel them.
func (r *RSPN) InverseFactorColumns(queryTables []string) []string {
	inQuery := make(map[string]bool, len(queryTables))
	for _, t := range queryTables {
		inQuery[t] = true
	}
	var out []string
	for _, e := range r.Edges {
		if !inQuery[e.Many] {
			out = append(out, table.TupleFactorColumn(e))
		}
	}
	return out
}

// BeginBatch suspends the model's per-mutation evaluator refresh until
// EndBatch, so a batch of Insert/Delete calls recompiles the flattened
// form once (spn.SPN.BeginBatch).
func (r *RSPN) BeginBatch() { r.Model.BeginBatch() }

// EndBatch closes a BeginBatch window and recompiles once.
func (r *RSPN) EndBatch() { r.Model.EndBatch() }

// Insert absorbs one join-row (indexed like the model's columns, NaN for
// NULL) and increments FullSize. applyToModel should be false when the
// row is skipped by sampling (the size still changes).
func (r *RSPN) Insert(row []float64, applyToModel bool) error {
	r.FullSize++
	if !applyToModel {
		return nil
	}
	return r.Model.Insert(row)
}

// Delete removes one join-row, the inverse of Insert.
func (r *RSPN) Delete(row []float64, applyToModel bool) error {
	if r.FullSize > 0 {
		r.FullSize--
	}
	if !applyToModel {
		return nil
	}
	return r.Model.Delete(row)
}

// BuildFD constructs the dictionary for a declared functional dependency
// from base-table data. It fails when the data violates the dependency.
func BuildFD(t *table.Table, fd schema.FunctionalDependency) (FD, error) {
	det := t.Column(fd.Determinant)
	dep := t.Column(fd.Dependent)
	if det == nil || dep == nil {
		return FD{}, fmt.Errorf("rspn: FD %s->%s names missing columns in %s",
			fd.Determinant, fd.Dependent, t.Meta.Name)
	}
	forward := make(map[float64]float64)
	inverse := make(map[float64][]float64)
	for i := 0; i < t.NumRows(); i++ {
		if det.IsNull(i) || dep.IsNull(i) {
			continue
		}
		a, b := det.Data[i], dep.Data[i]
		if prev, seen := forward[a]; seen {
			if prev != b {
				return FD{}, fmt.Errorf("rspn: FD %s->%s violated: %v maps to both %v and %v",
					fd.Determinant, fd.Dependent, a, prev, b)
			}
			continue
		}
		forward[a] = b
		inverse[b] = append(inverse[b], a)
	}
	return FD{
		Table:       t.Meta.Name,
		Determinant: fd.Determinant,
		Dependent:   fd.Dependent,
		Inverse:     inverse,
		Forward:     forward,
	}, nil
}
