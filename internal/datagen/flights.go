package datagen

import (
	"math"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/table"
)

// FlightsConfig scales the Flights generator.
type FlightsConfig struct {
	Rows int
	Seed int64
}

// DefaultFlightsConfig is laptop-scale.
func DefaultFlightsConfig() FlightsConfig { return FlightsConfig{Rows: 100000, Seed: 1} }

// FlightsSchema is the single-table flight-delays schema the paper's AQP
// and ML experiments use (Kaggle US DoT flight delays).
func FlightsSchema() *schema.Schema {
	return &schema.Schema{Tables: []*schema.Table{
		{Name: "flights", PrimaryKey: "f_id", Columns: []schema.Column{
			{Name: "f_id", Kind: schema.IntKind},
			{Name: "f_month", Kind: schema.IntKind},
			{Name: "f_day_of_week", Kind: schema.IntKind},
			{Name: "f_carrier", Kind: schema.IntKind},
			{Name: "f_origin", Kind: schema.IntKind},
			{Name: "f_dest", Kind: schema.IntKind},
			{Name: "f_distance", Kind: schema.FloatKind},
			{Name: "f_dep_delay", Kind: schema.FloatKind},
			{Name: "f_taxi_out", Kind: schema.FloatKind},
			{Name: "f_taxi_in", Kind: schema.FloatKind},
			{Name: "f_air_time", Kind: schema.FloatKind},
			{Name: "f_arr_delay", Kind: schema.FloatKind},
		}},
	}}
}

// Flights generates the delay table with the structure the real data is
// known for:
//   - 14 carriers and ~300 airports, both zipf-skewed;
//   - departure delay is heavy-tailed and depends on carrier, origin
//     congestion and month (winter/summer peaks);
//   - air time is distance/speed plus noise; taxi times depend on airport
//     congestion;
//   - arrival delay = departure delay + taxi and airtime deviations —
//     strongly correlated columns, which is what makes the ML and AQP
//     tasks non-trivial.
func Flights(cfg FlightsConfig) (*schema.Schema, map[string]*table.Table) {
	if cfg.Rows <= 0 {
		cfg = DefaultFlightsConfig()
	}
	s := FlightsSchema()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := table.New(s.Table("flights"))
	const nCarriers, nAirports = 14, 300
	// Per-carrier delay propensity and per-airport congestion.
	carrierDelay := make([]float64, nCarriers+1)
	for i := range carrierDelay {
		carrierDelay[i] = rng.Float64() * 12
	}
	airportCongestion := make([]float64, nAirports+1)
	for i := range airportCongestion {
		airportCongestion[i] = rng.Float64()
	}
	for i := 0; i < cfg.Rows; i++ {
		month := 1 + rng.Intn(12)
		dow := 1 + rng.Intn(7)
		carrier := zipfInt(rng, nCarriers, 1.8)
		origin := zipfInt(rng, nAirports, 2.2)
		dest := zipfInt(rng, nAirports, 2.2)
		for dest == origin {
			dest = zipfInt(rng, nAirports, 2.2)
		}
		distance := 150 + 2500*math.Pow(rng.Float64(), 1.7)
		seasonal := 0.0
		if month == 12 || month == 1 || month == 6 || month == 7 {
			seasonal = 6
		}
		congestion := airportCongestion[origin]
		// Heavy-tailed departure delay: mostly near zero, occasional big.
		depDelay := carrierDelay[carrier]*0.5 + seasonal + congestion*10 - 5 + rng.NormFloat64()*5
		if rng.Float64() < 0.08 {
			depDelay += rng.ExpFloat64() * 60 // tail
		}
		taxiOut := 8 + congestion*25 + rng.NormFloat64()*3
		if taxiOut < 1 {
			taxiOut = 1
		}
		taxiIn := 4 + airportCongestion[dest]*12 + rng.NormFloat64()*2
		if taxiIn < 1 {
			taxiIn = 1
		}
		airTime := distance/7.5 + 15 + rng.NormFloat64()*8
		// Arrival delay: departure delay propagates, taxi adds, en-route
		// makes up a little.
		arrDelay := depDelay + (taxiOut-15)*0.8 + (taxiIn-8)*0.5 - 4 + rng.NormFloat64()*8
		t.AppendRow(
			table.Int(i), table.Int(month), table.Int(dow), table.Int(carrier),
			table.Int(origin), table.Int(dest),
			table.Float(math.Round(distance)),
			table.Float(math.Round(depDelay)),
			table.Float(math.Round(taxiOut)),
			table.Float(math.Round(taxiIn)),
			table.Float(math.Round(airTime)),
			table.Float(math.Round(arrDelay)),
		)
	}
	return s, map[string]*table.Table{"flights": t}
}
