package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/table"
)

// SSBConfig scales the Star Schema Benchmark generator. ScaleFactor 1
// corresponds to the official 6M-lineorder SSB; the experiments use small
// fractions (e.g. 0.02) to stay laptop-scale while preserving the
// selectivity structure of the standard queries.
type SSBConfig struct {
	ScaleFactor float64
	Seed        int64
}

// DefaultSSBConfig is laptop-scale.
func DefaultSSBConfig() SSBConfig { return SSBConfig{ScaleFactor: 0.02, Seed: 1} }

// SSBSchema returns the star schema: the lineorder fact table referencing
// customer, supplier, part and date dimensions. The official benchmark's
// derived measures (revenue, profit) are materialized as columns so that
// the paper's SUM queries map onto DeepDB's single-column aggregates (see
// EXPERIMENTS.md for this documented substitution).
func SSBSchema() *schema.Schema {
	return &schema.Schema{Tables: []*schema.Table{
		{Name: "dates", PrimaryKey: "d_datekey", Columns: []schema.Column{
			{Name: "d_datekey", Kind: schema.IntKind},
			{Name: "d_year", Kind: schema.IntKind},
			{Name: "d_yearmonthnum", Kind: schema.IntKind},
			{Name: "d_weeknuminyear", Kind: schema.IntKind},
		}},
		{Name: "customer", PrimaryKey: "c_custkey", Columns: []schema.Column{
			{Name: "c_custkey", Kind: schema.IntKind},
			{Name: "c_region", Kind: schema.IntKind},
			{Name: "c_nation", Kind: schema.IntKind},
			{Name: "c_city", Kind: schema.IntKind},
		}, FDs: []schema.FunctionalDependency{
			// The dimension hierarchy is a functional dependency chain;
			// declaring nation -> region lets the RSPN omit the region
			// column and answer region predicates through the dictionary
			// (Section 3.2 of the paper).
			{Determinant: "c_nation", Dependent: "c_region"},
		}},
		{Name: "supplier", PrimaryKey: "s_suppkey", Columns: []schema.Column{
			{Name: "s_suppkey", Kind: schema.IntKind},
			{Name: "s_region", Kind: schema.IntKind},
			{Name: "s_nation", Kind: schema.IntKind},
			{Name: "s_city", Kind: schema.IntKind},
		}, FDs: []schema.FunctionalDependency{
			{Determinant: "s_nation", Dependent: "s_region"},
		}},
		{Name: "part", PrimaryKey: "p_partkey", Columns: []schema.Column{
			{Name: "p_partkey", Kind: schema.IntKind},
			{Name: "p_mfgr", Kind: schema.IntKind},
			{Name: "p_category", Kind: schema.IntKind},
			{Name: "p_brand1", Kind: schema.IntKind},
		}, FDs: []schema.FunctionalDependency{
			{Determinant: "p_category", Dependent: "p_mfgr"},
		}},
		{Name: "lineorder", PrimaryKey: "lo_id", Columns: []schema.Column{
			{Name: "lo_id", Kind: schema.IntKind},
			{Name: "lo_custkey", Kind: schema.IntKind},
			{Name: "lo_suppkey", Kind: schema.IntKind},
			{Name: "lo_partkey", Kind: schema.IntKind},
			{Name: "lo_orderdate", Kind: schema.IntKind},
			{Name: "lo_quantity", Kind: schema.IntKind},
			{Name: "lo_discount", Kind: schema.IntKind},
			{Name: "lo_extendedprice", Kind: schema.FloatKind},
			{Name: "lo_revenue", Kind: schema.FloatKind},
			{Name: "lo_supplycost", Kind: schema.FloatKind},
			{Name: "lo_profit", Kind: schema.FloatKind},
		}, ForeignKeys: []schema.ForeignKey{
			{Column: "lo_custkey", RefTable: "customer", RefColumn: "c_custkey"},
			{Column: "lo_suppkey", RefTable: "supplier", RefColumn: "s_suppkey"},
			{Column: "lo_partkey", RefTable: "part", RefColumn: "p_partkey"},
			{Column: "lo_orderdate", RefTable: "dates", RefColumn: "d_datekey"},
		}},
	}}
}

// SSB generates the benchmark data. Dimension hierarchies follow the spec:
// 5 regions x 5 nations x 10 cities; 5 mfgrs x 5 categories x ~40 brands.
// The fact table's measures follow the spec's value ranges, with revenue
// and profit materialized. Foreign keys are uniform like the official
// generator, and lineorder quantity/discount are negatively correlated,
// giving the low-selectivity behaviour the AQP experiment stresses.
func SSB(cfg SSBConfig) (*schema.Schema, map[string]*table.Table) {
	if cfg.ScaleFactor <= 0 {
		cfg = DefaultSSBConfig()
	}
	s := SSBSchema()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nLine := int(cfg.ScaleFactor * 6000000)
	nCust := maxInt(100, int(cfg.ScaleFactor*30000))
	nSupp := maxInt(50, int(cfg.ScaleFactor*2000))
	nPart := maxInt(100, int(cfg.ScaleFactor*200000))

	dates := table.New(s.Table("dates"))
	var dateKeys []int
	for year := 1992; year <= 1998; year++ {
		for day := 0; day < 365; day++ {
			key := year*1000 + day
			month := day/31 + 1
			if month > 12 {
				month = 12
			}
			dates.AppendRow(table.Int(key), table.Int(year),
				table.Int(year*100+month), table.Int(day/7+1))
			dateKeys = append(dateKeys, key)
		}
	}

	cust := table.New(s.Table("customer"))
	for i := 0; i < nCust; i++ {
		region := rng.Intn(5)
		nation := region*5 + rng.Intn(5)
		city := nation*10 + rng.Intn(10)
		cust.AppendRow(table.Int(i), table.Int(region), table.Int(nation), table.Int(city))
	}
	supp := table.New(s.Table("supplier"))
	for i := 0; i < nSupp; i++ {
		region := rng.Intn(5)
		nation := region*5 + rng.Intn(5)
		city := nation*10 + rng.Intn(10)
		supp.AppendRow(table.Int(i), table.Int(region), table.Int(nation), table.Int(city))
	}
	part := table.New(s.Table("part"))
	for i := 0; i < nPart; i++ {
		mfgr := 1 + rng.Intn(5)
		category := mfgr*10 + rng.Intn(5)
		brand := category*100 + rng.Intn(40)
		part.AppendRow(table.Int(i), table.Int(mfgr), table.Int(category), table.Int(brand))
	}

	line := table.New(s.Table("lineorder"))
	for i := 0; i < nLine; i++ {
		custkey := rng.Intn(nCust)
		suppkey := rng.Intn(nSupp)
		partkey := rng.Intn(nPart)
		orderdate := dateKeys[rng.Intn(len(dateKeys))]
		quantity := 1 + rng.Intn(50)
		// Discount 0..10, negatively correlated with quantity: bulk orders
		// come pre-negotiated.
		discount := rng.Intn(11)
		if quantity > 30 && rng.Float64() < 0.6 {
			discount = rng.Intn(4)
		}
		extended := float64(quantity) * (900 + rng.Float64()*200)
		revenue := extended * (1 - float64(discount)/100)
		supplycost := extended * (0.5 + rng.Float64()*0.2)
		line.AppendRow(
			table.Int(i), table.Int(custkey), table.Int(suppkey), table.Int(partkey),
			table.Int(orderdate), table.Int(quantity), table.Int(discount),
			table.Float(extended), table.Float(revenue), table.Float(supplycost),
			table.Float(revenue-supplycost),
		)
	}
	return s, map[string]*table.Table{
		"dates": dates, "customer": cust, "supplier": supp, "part": part, "lineorder": line,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Validate asserts generated data matches its schema (all generators).
func Validate(s *schema.Schema, tables map[string]*table.Table) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, meta := range s.Tables {
		t, ok := tables[meta.Name]
		if !ok {
			return fmt.Errorf("datagen: missing table %s", meta.Name)
		}
		if t.NumRows() == 0 {
			return fmt.Errorf("datagen: table %s is empty", meta.Name)
		}
	}
	return nil
}
