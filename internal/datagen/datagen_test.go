package datagen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/query"
	"repro/internal/stats"
)

func TestIMDbShape(t *testing.T) {
	s, tabs := IMDb(IMDbConfig{Titles: 1000, Seed: 1})
	if err := Validate(s, tabs); err != nil {
		t.Fatal(err)
	}
	if got := tabs["title"].NumRows(); got != 1000 {
		t.Fatalf("titles = %d, want 1000", got)
	}
	// Referencing tables must be non-trivially populated.
	for _, name := range []string{"movie_companies", "cast_info", "movie_info", "movie_keyword"} {
		if tabs[name].NumRows() < 500 {
			t.Fatalf("%s has only %d rows", name, tabs[name].NumRows())
		}
	}
	// FK integrity: every referencing row joins a real title.
	oracle := exact.New(s, tabs)
	ci := float64(tabs["cast_info"].NumRows())
	joined, err := oracle.JoinSize([]string{"title", "cast_info"})
	if err != nil {
		t.Fatal(err)
	}
	if joined != ci {
		t.Fatalf("join size %v != cast_info rows %v (dangling FKs?)", joined, ci)
	}
}

func TestIMDbDeterministic(t *testing.T) {
	_, a := IMDb(IMDbConfig{Titles: 200, Seed: 5})
	_, b := IMDb(IMDbConfig{Titles: 200, Seed: 5})
	if a["cast_info"].NumRows() != b["cast_info"].NumRows() {
		t.Fatal("same seed must reproduce the same data")
	}
	va := a["title"].Column("t_kind_id").Data
	vb := b["title"].Column("t_kind_id").Data
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("same seed must reproduce identical values")
		}
	}
}

func TestIMDbPlantedCorrelations(t *testing.T) {
	_, tabs := IMDb(IMDbConfig{Titles: 4000, Seed: 2})
	title := tabs["title"]
	years := title.Column("t_production_year")
	kinds := title.Column("t_kind_id")
	var ys, ks []float64
	for i := 0; i < title.NumRows(); i++ {
		if years.IsNull(i) {
			continue
		}
		ys = append(ys, years.Data[i])
		ks = append(ks, kinds.Data[i])
	}
	rdc := stats.RDC(ys, ks, stats.DefaultRDCConfig())
	if rdc < 0.15 {
		t.Fatalf("year-kind RDC %v: planted correlation missing", rdc)
	}
	// NULL years should be roughly 5%.
	nulls := 0
	for i := 0; i < title.NumRows(); i++ {
		if years.IsNull(i) {
			nulls++
		}
	}
	frac := float64(nulls) / float64(title.NumRows())
	if frac < 0.02 || frac > 0.1 {
		t.Fatalf("NULL year fraction %v, want ~0.05", frac)
	}
}

func TestIMDbFanoutGrowsWithYear(t *testing.T) {
	s, tabs := IMDb(IMDbConfig{Titles: 4000, Seed: 3})
	oracle := exact.New(s, tabs)
	old, err := oracle.Cardinality(query.Query{Aggregate: query.Count,
		Tables:  []string{"title", "cast_info"},
		Filters: []query.Predicate{{Column: "t_production_year", Op: query.Lt, Value: 1960}}})
	if err != nil {
		t.Fatal(err)
	}
	oldTitles, _ := oracle.Cardinality(query.Query{Aggregate: query.Count, Tables: []string{"title"},
		Filters: []query.Predicate{{Column: "t_production_year", Op: query.Lt, Value: 1960}}})
	recent, _ := oracle.Cardinality(query.Query{Aggregate: query.Count,
		Tables:  []string{"title", "cast_info"},
		Filters: []query.Predicate{{Column: "t_production_year", Op: query.Ge, Value: 2000}}})
	recentTitles, _ := oracle.Cardinality(query.Query{Aggregate: query.Count, Tables: []string{"title"},
		Filters: []query.Predicate{{Column: "t_production_year", Op: query.Ge, Value: 2000}}})
	if oldTitles == 0 || recentTitles == 0 {
		t.Skip("degenerate split")
	}
	if recent/recentTitles <= old/oldTitles {
		t.Fatalf("fanout should grow with year: old %.2f recent %.2f",
			old/oldTitles, recent/recentTitles)
	}
}

func TestFlightsShape(t *testing.T) {
	s, tabs := Flights(FlightsConfig{Rows: 5000, Seed: 1})
	if err := Validate(s, tabs); err != nil {
		t.Fatal(err)
	}
	f := tabs["flights"]
	if f.NumRows() != 5000 {
		t.Fatalf("rows = %d", f.NumRows())
	}
	// Planted physics: air time correlates with distance strongly; arrival
	// delay with departure delay.
	at := f.Column("f_air_time").Data
	di := f.Column("f_distance").Data
	if p := stats.Pearson(at, di); p < 0.9 {
		t.Fatalf("air_time-distance correlation %v, want > 0.9", p)
	}
	ad := f.Column("f_arr_delay").Data
	dd := f.Column("f_dep_delay").Data
	if p := stats.Pearson(ad, dd); p < 0.7 {
		t.Fatalf("arr-dep delay correlation %v, want > 0.7", p)
	}
}

func TestFlightsDelayTail(t *testing.T) {
	_, tabs := Flights(FlightsConfig{Rows: 20000, Seed: 4})
	dd := tabs["flights"].Column("f_dep_delay").Data
	mean := stats.Mean(dd)
	p99 := stats.Quantile(dd, 0.99)
	// Heavy tail: the 99th percentile should be far above the mean.
	if p99 < mean+40 {
		t.Fatalf("departure delay lacks a heavy tail: mean %.1f p99 %.1f", mean, p99)
	}
}

func TestSSBShape(t *testing.T) {
	s, tabs := SSB(SSBConfig{ScaleFactor: 0.002, Seed: 1})
	if err := Validate(s, tabs); err != nil {
		t.Fatal(err)
	}
	lo := tabs["lineorder"]
	if lo.NumRows() != 12000 {
		t.Fatalf("lineorders = %d, want 12000 (SF 0.002)", lo.NumRows())
	}
	// Dimension hierarchy: city encodes nation encodes region.
	cust := tabs["customer"]
	for i := 0; i < cust.NumRows(); i++ {
		region := cust.Column("c_region").Data[i]
		nation := cust.Column("c_nation").Data[i]
		city := cust.Column("c_city").Data[i]
		if math.Floor(nation/5) != region {
			t.Fatalf("nation %v not in region %v", nation, region)
		}
		if math.Floor(city/10) != nation {
			t.Fatalf("city %v not in nation %v", city, nation)
		}
	}
	// Revenue = extendedprice * (1 - discount/100) must hold per row.
	for i := 0; i < 100; i++ {
		ext := lo.Column("lo_extendedprice").Data[i]
		disc := lo.Column("lo_discount").Data[i]
		rev := lo.Column("lo_revenue").Data[i]
		want := ext * (1 - disc/100)
		if math.Abs(rev-want) > 1e-6 {
			t.Fatalf("row %d: revenue %v != %v", i, rev, want)
		}
		profit := lo.Column("lo_profit").Data[i]
		cost := lo.Column("lo_supplycost").Data[i]
		if math.Abs(profit-(rev-cost)) > 1e-6 {
			t.Fatalf("row %d: profit %v != revenue-cost %v", i, profit, rev-cost)
		}
	}
}

func TestSSBQuantityDiscountCorrelation(t *testing.T) {
	_, tabs := SSB(SSBConfig{ScaleFactor: 0.005, Seed: 2})
	lo := tabs["lineorder"]
	q := lo.Column("lo_quantity").Data
	d := lo.Column("lo_discount").Data
	if p := stats.Pearson(q, d); p > -0.05 {
		t.Fatalf("quantity-discount correlation %v, want negative", p)
	}
}

func TestValidateCatchesMissingTable(t *testing.T) {
	s, tabs := SSB(SSBConfig{ScaleFactor: 0.002, Seed: 3})
	delete(tabs, "part")
	if err := Validate(s, tabs); err == nil {
		t.Fatal("expected error for missing table")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := newTestRand()
	counts := map[int]int{}
	n := 50000
	for i := 0; i < n; i++ {
		counts[zipfInt(rng, 100, 2.5)]++
	}
	// Value 1 must be far more frequent than value 50.
	if counts[1] < 5*counts[50] {
		t.Fatalf("zipf skew too weak: c1=%d c50=%d", counts[1], counts[50])
	}
	for v := range counts {
		if v < 1 || v > 100 {
			t.Fatalf("zipf value %d out of range", v)
		}
	}
}

func TestPoissonish(t *testing.T) {
	rng := newTestRand()
	total := 0
	n := 20000
	for i := 0; i < n; i++ {
		k := poissonish(rng, 3)
		if k < 0 {
			t.Fatal("negative count")
		}
		total += k
	}
	mean := float64(total) / float64(n)
	if math.Abs(mean-3) > 0.2 {
		t.Fatalf("poisson mean %v, want ~3", mean)
	}
	if poissonish(rng, 0) != 0 {
		t.Fatal("zero mean should give zero")
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(1)) }
