// Package datagen generates the three data sets of the paper's evaluation
// as seeded synthetic equivalents: an IMDb-style movie schema with the
// JOB-light join structure, the Flights delay table, and the Star Schema
// Benchmark. Each generator plants the correlations and skew the original
// data is known for, so the estimation problems have the same character
// even though the tuples are synthetic (see DESIGN.md for the substitution
// rationale).
package datagen

import (
	"math"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/table"
)

// IMDbConfig scales the IMDb-style generator.
type IMDbConfig struct {
	// Titles is the number of movies; referencing tables grow with their
	// per-title fanouts (roughly 12x in total).
	Titles int
	Seed   int64
}

// DefaultIMDbConfig is laptop-scale but large enough for stable statistics.
func DefaultIMDbConfig() IMDbConfig { return IMDbConfig{Titles: 10000, Seed: 1} }

// IMDbSchema returns the JOB-light schema: title plus five referencing
// tables, each FK-joined to title (a star), matching the join structure the
// benchmark exercises.
func IMDbSchema() *schema.Schema {
	fk := func(col string) []schema.ForeignKey {
		return []schema.ForeignKey{{Column: col, RefTable: "title", RefColumn: "t_id"}}
	}
	return &schema.Schema{Tables: []*schema.Table{
		{Name: "title", PrimaryKey: "t_id", Columns: []schema.Column{
			{Name: "t_id", Kind: schema.IntKind},
			{Name: "t_kind_id", Kind: schema.IntKind},
			{Name: "t_production_year", Kind: schema.IntKind, Nullable: true},
		}},
		{Name: "movie_companies", PrimaryKey: "mc_id", ForeignKeys: fk("mc_t_id"), Columns: []schema.Column{
			{Name: "mc_id", Kind: schema.IntKind},
			{Name: "mc_t_id", Kind: schema.IntKind},
			{Name: "mc_company_type_id", Kind: schema.IntKind},
			{Name: "mc_company_id", Kind: schema.IntKind},
		}},
		{Name: "cast_info", PrimaryKey: "ci_id", ForeignKeys: fk("ci_t_id"), Columns: []schema.Column{
			{Name: "ci_id", Kind: schema.IntKind},
			{Name: "ci_t_id", Kind: schema.IntKind},
			{Name: "ci_role_id", Kind: schema.IntKind},
		}},
		{Name: "movie_info", PrimaryKey: "mi_id", ForeignKeys: fk("mi_t_id"), Columns: []schema.Column{
			{Name: "mi_id", Kind: schema.IntKind},
			{Name: "mi_t_id", Kind: schema.IntKind},
			{Name: "mi_info_type_id", Kind: schema.IntKind},
		}},
		{Name: "movie_info_idx", PrimaryKey: "mix_id", ForeignKeys: fk("mix_t_id"), Columns: []schema.Column{
			{Name: "mix_id", Kind: schema.IntKind},
			{Name: "mix_t_id", Kind: schema.IntKind},
			{Name: "mix_info_type_id", Kind: schema.IntKind},
		}},
		{Name: "movie_keyword", PrimaryKey: "mk_id", ForeignKeys: fk("mk_t_id"), Columns: []schema.Column{
			{Name: "mk_id", Kind: schema.IntKind},
			{Name: "mk_t_id", Kind: schema.IntKind},
			{Name: "mk_keyword_id", Kind: schema.IntKind},
		}},
	}}
}

// zipf draws a 1-based zipf-ish value over n items with the given skew.
func zipfInt(rng *rand.Rand, n int, skew float64) int {
	u := rng.Float64()
	v := math.Pow(u, skew) * float64(n)
	i := int(v)
	if i >= n {
		i = n - 1
	}
	return i + 1
}

// IMDb generates the data set. Planted structure:
//   - production year is skewed toward recent decades; ~5% NULL years
//     (matching IMDb's missing data).
//   - kind_id correlates with year (newer titles skew toward kinds 1-2).
//   - per-title fanouts grow with the production year (modern movies carry
//     more companies, cast and keywords), making join sizes correlated
//     with year filters — the effect that breaks independence assumptions.
//   - info_type/company_type/role distributions depend on kind_id.
func IMDb(cfg IMDbConfig) (*schema.Schema, map[string]*table.Table) {
	if cfg.Titles <= 0 {
		cfg = DefaultIMDbConfig()
	}
	s := IMDbSchema()
	rng := rand.New(rand.NewSource(cfg.Seed))
	title := table.New(s.Table("title"))
	mc := table.New(s.Table("movie_companies"))
	ci := table.New(s.Table("cast_info"))
	mi := table.New(s.Table("movie_info"))
	mix := table.New(s.Table("movie_info_idx"))
	mk := table.New(s.Table("movie_keyword"))
	mcID, ciID, miID, mixID, mkID := 0, 0, 0, 0, 0
	for t := 0; t < cfg.Titles; t++ {
		// Year 1930..2019 skewed to recent; 5% NULL.
		yearF := 1930 + math.Floor(90*math.Pow(rng.Float64(), 0.4))
		recent := (yearF - 1930) / 90
		var yearVal table.Value
		if rng.Float64() < 0.05 {
			yearVal = table.Null()
		} else {
			yearVal = table.Float(yearF)
		}
		// Kind 1..7: recent titles concentrate in kinds 1-2.
		var kind int
		if rng.Float64() < 0.3+0.5*recent {
			kind = 1 + rng.Intn(2)
		} else {
			kind = 3 + rng.Intn(5)
		}
		title.AppendRow(table.Int(t), table.Int(kind), yearVal)

		fanScale := 0.5 + 1.5*recent // newer titles have larger fanouts
		nMC := poissonish(rng, 1.2*fanScale)
		for k := 0; k < nMC; k++ {
			ctype := 1
			if rng.Float64() < 0.3+0.2*recent {
				ctype = 2
			}
			mc.AppendRow(table.Int(mcID), table.Int(t), table.Int(ctype),
				table.Int(zipfInt(rng, 5000, 2.5)))
			mcID++
		}
		nCI := poissonish(rng, 3*fanScale)
		for k := 0; k < nCI; k++ {
			role := zipfInt(rng, 11, 1.5)
			if kind <= 2 && rng.Float64() < 0.4 {
				role = 1 + rng.Intn(2) // features skew to actor roles
			}
			ci.AppendRow(table.Int(ciID), table.Int(t), table.Int(role))
			ciID++
		}
		nMI := poissonish(rng, 2.5*fanScale)
		for k := 0; k < nMI; k++ {
			it := zipfInt(rng, 110, 2)
			if kind <= 2 {
				it = zipfInt(rng, 20, 1.5) // common info types for features
			}
			mi.AppendRow(table.Int(miID), table.Int(t), table.Int(it))
			miID++
		}
		nMIX := poissonish(rng, 1.0*fanScale)
		for k := 0; k < nMIX; k++ {
			mix.AppendRow(table.Int(mixID), table.Int(t), table.Int(99+zipfInt(rng, 14, 1.2)))
			mixID++
		}
		nMK := poissonish(rng, 2.5*fanScale)
		for k := 0; k < nMK; k++ {
			mk.AppendRow(table.Int(mkID), table.Int(t), table.Int(zipfInt(rng, 10000, 3)))
			mkID++
		}
	}
	return s, map[string]*table.Table{
		"title": title, "movie_companies": mc, "cast_info": ci,
		"movie_info": mi, "movie_info_idx": mix, "movie_keyword": mk,
	}
}

// poissonish draws a small non-negative count with the given mean using
// Knuth's method (fine for means < 10).
func poissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 50 {
			return k
		}
	}
}
