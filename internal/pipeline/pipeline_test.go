package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// collectingApplier records every batch it receives.
type collectingApplier struct {
	mu      sync.Mutex
	batches [][]int
	fail    func(batch []int) error
	block   chan struct{} // when non-nil, apply waits for a tick per call
}

func (c *collectingApplier) apply(batch []int) error {
	if c.block != nil {
		<-c.block
	}
	c.mu.Lock()
	c.batches = append(c.batches, append([]int(nil), batch...))
	c.mu.Unlock()
	if c.fail != nil {
		return c.fail(batch)
	}
	return nil
}

func (c *collectingApplier) all() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for _, b := range c.batches {
		out = append(out, b...)
	}
	return out
}

// TestOrderAndFlush: mutations are applied in enqueue order; Flush waits
// for everything enqueued before it.
func TestOrderAndFlush(t *testing.T) {
	c := &collectingApplier{}
	p := New(64, 8, c.apply)
	defer p.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if err := p.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := c.all()
	if len(got) != n {
		t.Fatalf("applied %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
	st := p.Stats()
	if st.Applied != n || st.Enqueued != n || st.QueueDepth != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Batches == 0 || st.Batches > n {
		t.Fatalf("batches = %d", st.Batches)
	}
}

// TestCoalescing: mutations that queue up while the applier is busy
// coalesce into batches bounded by maxBatch.
func TestCoalescing(t *testing.T) {
	// The first apply call blocks until the channel is closed; later calls
	// sail through (receive on a closed channel returns immediately).
	c := &collectingApplier{block: make(chan struct{})}
	p := New(64, 8, c.apply)
	defer p.Close()
	if err := p.Enqueue(0); err != nil {
		t.Fatal(err)
	}
	// Wait for the applier to pick item 0 up and block inside apply, then
	// queue the rest behind its back.
	for p.Stats().QueueDepth != 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < 20; i++ {
		if err := p.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	close(c.block)
	if err := p.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.batches) < 2 {
		t.Fatalf("expected >= 2 batches, got %v", c.batches)
	}
	max := 0
	total := 0
	for _, b := range c.batches {
		if len(b) > max {
			max = len(b)
		}
		total += len(b)
		if len(b) > 8 {
			t.Fatalf("batch exceeds cap: %v", b)
		}
	}
	if total != 20 {
		t.Fatalf("applied %d of 20: %v", total, c.batches)
	}
	if max < 2 {
		t.Fatalf("no coalescing happened: %v", c.batches)
	}
}

// TestErrorDelivery: apply errors surface on the next Flush exactly once,
// and are counted in Stats.
func TestErrorDelivery(t *testing.T) {
	boom := errors.New("boom")
	c := &collectingApplier{fail: func(b []int) error {
		for _, v := range b {
			if v == 3 {
				return boom
			}
		}
		return nil
	}}
	p := New(16, 1, c.apply)
	defer p.Close()
	for i := 0; i < 6; i++ {
		if err := p.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Flush = %v, want boom", err)
	}
	if err := p.Flush(context.Background()); err != nil {
		t.Fatalf("second Flush = %v, want nil (error already delivered)", err)
	}
	st := p.Stats()
	if st.Errors != 1 || st.LastError == "" {
		t.Fatalf("stats = %+v", st)
	}
	// Later mutations were still applied (no rollback, no stall).
	if got := c.all(); len(got) != 6 {
		t.Fatalf("applied %d of 6", len(got))
	}
}

// TestFlushContextCancel: a cancelled context abandons the wait, and an
// apply error pending at that moment is NOT lost — the next Flush (or
// Close) still reports it.
func TestFlushContextCancel(t *testing.T) {
	boom := errors.New("boom")
	c := &collectingApplier{block: make(chan struct{}), fail: func([]int) error { return boom }}
	p := New(16, 4, c.apply)
	if err := p.Enqueue(1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Flush(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Flush = %v, want deadline exceeded", err)
	}
	close(c.block)
	// The abandoned barrier drains harmlessly; the apply error from the
	// batch the cancelled Flush was waiting on is still deliverable.
	if err := p.Flush(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("post-cancel Flush = %v, want boom (error must survive an abandoned Flush)", err)
	}
	p.Close()
}

// TestCloseDrainsAndRejects: Close applies everything still queued, then
// Enqueue/Flush fail cleanly and Close stays idempotent.
func TestCloseDrainsAndRejects(t *testing.T) {
	c := &collectingApplier{}
	p := New(64, 8, c.apply)
	for i := 0; i < 30; i++ {
		if err := p.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.all(); len(got) != 30 {
		t.Fatalf("Close drained %d of 30", len(got))
	}
	if err := p.Enqueue(99); err == nil {
		t.Fatal("Enqueue after Close succeeded")
	}
	if err := p.Flush(context.Background()); err != nil {
		t.Fatalf("Flush after Close = %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

// TestBackpressure: a full queue blocks Enqueue until the applier drains,
// without losing or reordering anything.
func TestBackpressure(t *testing.T) {
	c := &collectingApplier{block: make(chan struct{}, 1024)}
	p := New(2, 2, c.apply)
	defer p.Close()
	for i := 0; i < 1024; i++ {
		c.block <- struct{}{} // pre-tick so apply never waits long
	}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 50; i++ {
			if err := p.Enqueue(i); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("enqueue stalled under backpressure")
	}
	if err := p.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := c.all()
	if len(got) != 50 {
		t.Fatalf("applied %d of 50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
}

// TestConcurrentProducers: many goroutines enqueue and flush concurrently
// under -race; per-producer order is preserved.
func TestConcurrentProducers(t *testing.T) {
	c := &collectingApplier{}
	p := New(32, 16, c.apply)
	defer p.Close()
	const producers, per = 8, 40
	var wg sync.WaitGroup
	errc := make(chan error, producers)
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := p.Enqueue(w*1000 + i); err != nil {
					errc <- fmt.Errorf("producer %d: %w", w, err)
					return
				}
				if i%13 == 0 {
					if err := p.Flush(context.Background()); err != nil {
						errc <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := p.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := c.all()
	if len(got) != producers*per {
		t.Fatalf("applied %d of %d", len(got), producers*per)
	}
	last := map[int]int{}
	for _, v := range got {
		w, i := v/1000, v%1000
		if prev, ok := last[w]; ok && i <= prev {
			t.Fatalf("producer %d order broken: %d after %d", w, i, prev)
		}
		last[w] = i
	}
}
