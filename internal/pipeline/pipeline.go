// Package pipeline implements the asynchronous update pipeline behind
// deepdb's snapshot-isolated serving: a bounded mutation queue drained by
// one background applier goroutine that coalesces whatever has queued up
// into batches and hands each batch to an apply callback (which, in the
// facade, mutates a private copy-on-write clone and atomically publishes
// it). Readers never touch the queue; writers block only when the queue is
// full (backpressure), never on the apply itself.
//
// The package is generic over the mutation type so it can be tested — and
// reused — without depending on the ensemble machinery.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
)

// ErrQueueFull is returned by TryEnqueue when the queue has no free slot.
// Callers that must not block (an HTTP handler shedding load with a 429)
// test for it with errors.Is and tell the producer to retry later.
var ErrQueueFull = errors.New("pipeline: queue full")

// Stats is a point-in-time snapshot of pipeline counters, the substance of
// deepdb.DB.UpdateStats.
type Stats struct {
	// QueueDepth is the number of items enqueued but not yet handed to
	// the apply callback.
	QueueDepth int
	// Enqueued / Applied count items accepted / passed to apply (the
	// latter includes items whose batch returned an error). An item is
	// one T — the facade enqueues one per update operation.
	Enqueued uint64
	Applied  uint64
	// Batches counts apply invocations; Applied/Batches is the realized
	// coalescing factor.
	Batches uint64
	// Errors counts batches whose apply returned an error; LastError
	// renders the most recent one.
	Errors    uint64
	LastError string
	// LastBatch is the size of the most recent batch.
	LastBatch int
	// LastApplyDuration is how long the most recent apply took.
	LastApplyDuration time.Duration
	// ApplyLag is the enqueue-to-applied latency of the most recently
	// applied batch's first mutation — how far behind the published state
	// trails the write stream.
	ApplyLag time.Duration
}

// item is one queue entry: a mutation, or a flush barrier when done is
// non-nil. A barrier only signals completion (the channel is closed once
// everything enqueued before it was applied); the waiting Flush then
// collects the pending error itself, so a Flush abandoned by context
// cancellation leaves the error in place for the next one.
type item[T any] struct {
	mut  T
	enq  time.Time
	done chan struct{}
}

// Pipeline is a bounded queue of T drained by one background applier.
type Pipeline[T any] struct {
	apply    func([]T) error
	ch       chan item[T]
	maxBatch int

	// sendMu lets Enqueue/Flush block on a full queue while still being
	// excludable by Close: senders hold it shared for the duration of the
	// channel send, Close takes it exclusively to flip closed and close
	// the channel. The applier drains without the lock, so blocked senders
	// always make progress and Close cannot deadlock.
	sendMu sync.RWMutex
	closed bool

	mu         sync.Mutex
	stats      Stats
	pendingErr error // first apply error not yet surfaced through Flush

	wg sync.WaitGroup
}

// New starts a pipeline with the given queue bound, maximum batch size and
// apply callback. The callback runs on the applier goroutine only, one
// invocation at a time, with batches in strict enqueue order.
func New[T any](queueSize, maxBatch int, apply func([]T) error) *Pipeline[T] {
	if queueSize < 1 {
		queueSize = 1
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	p := &Pipeline[T]{apply: apply, ch: make(chan item[T], queueSize), maxBatch: maxBatch}
	p.wg.Add(1)
	go p.run()
	return p
}

// Enqueue appends one mutation, blocking when the queue is full until the
// applier frees a slot. It fails only after Close.
func (p *Pipeline[T]) Enqueue(m T) error {
	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	if p.closed {
		return fmt.Errorf("pipeline: closed")
	}
	p.mu.Lock()
	p.stats.Enqueued++
	p.mu.Unlock()
	p.ch <- item[T]{mut: m, enq: time.Now()}
	return nil
}

// TryEnqueue is Enqueue without the blocking: when the queue is full it
// returns ErrQueueFull immediately instead of waiting for the applier.
func (p *Pipeline[T]) TryEnqueue(m T) error {
	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	if p.closed {
		return fmt.Errorf("pipeline: closed")
	}
	select {
	case p.ch <- item[T]{mut: m, enq: time.Now()}:
		// Unlike Enqueue, count only accepted items: a shed mutation was
		// never part of the stream, so Flush accounting must not see it.
		p.mu.Lock()
		p.stats.Enqueued++
		p.mu.Unlock()
		return nil
	default:
		return ErrQueueFull
	}
}

// HasCapacity reports whether at least one queue slot is currently free. A
// positive answer can go stale immediately under concurrency; it is meant
// as an admission check by callers that must do irrevocable work (a WAL
// append) before the enqueue and prefer shedding over blocking.
func (p *Pipeline[T]) HasCapacity() bool { return len(p.ch) < cap(p.ch) }

// Flush blocks until every mutation enqueued before the call has been
// applied (and, through the callback, published), then reports the first
// apply error that occurred since the previous Flush — read-your-writes
// plus deferred error delivery for the asynchronous path. A cancelled ctx
// abandons the wait (the flush barrier still drains harmlessly later).
func (p *Pipeline[T]) Flush(ctx context.Context) error {
	p.sendMu.RLock()
	if p.closed {
		p.sendMu.RUnlock()
		// Everything was drained by Close; only deliver a pending error.
		return p.takePendingErr()
	}
	done := make(chan struct{})
	p.ch <- item[T]{done: done}
	p.sendMu.RUnlock()
	select {
	case <-done:
		return p.takePendingErr()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains the queue, applies what remains, stops the applier and
// returns the first undelivered apply error. Enqueue/Flush calls racing
// Close either complete normally or report the pipeline closed. Close is
// idempotent.
func (p *Pipeline[T]) Close() error {
	return p.CloseTimeout(0)
}

// CloseTimeout is Close with a bound on the drain: if the applier has not
// finished the remaining queue within d, it reports a timeout error and
// returns — the applier keeps draining in the background (it owns no
// resources beyond the goroutine), but the pending queue may not have been
// applied when CloseTimeout returns. d <= 0 waits without bound.
func (p *Pipeline[T]) CloseTimeout(d time.Duration) error {
	p.sendMu.Lock()
	already := p.closed
	p.closed = true
	if !already {
		close(p.ch)
	}
	p.sendMu.Unlock()
	if d <= 0 {
		p.wg.Wait()
		return p.takePendingErr()
	}
	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return p.takePendingErr()
	case <-time.After(d):
		return fmt.Errorf("pipeline: close timed out after %v with the queue not fully drained", d)
	}
}

// Stats returns a snapshot of the pipeline counters.
func (p *Pipeline[T]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.QueueDepth = len(p.ch)
	return s
}

func (p *Pipeline[T]) takePendingErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	err := p.pendingErr
	p.pendingErr = nil
	return err
}

// run is the applier loop: take one item, greedily coalesce whatever else
// is immediately available (up to maxBatch mutations), apply, signal any
// flush barriers that rode along, repeat.
func (p *Pipeline[T]) run() {
	defer p.wg.Done()
	for first := range p.ch {
		muts := make([]T, 0, p.maxBatch)
		var barriers []chan struct{}
		var oldest time.Time
		add := func(it item[T]) {
			if it.done != nil {
				barriers = append(barriers, it.done)
				return
			}
			if oldest.IsZero() {
				oldest = it.enq
			}
			muts = append(muts, it.mut)
		}
		add(first)
	drain:
		for len(muts) < p.maxBatch {
			select {
			case it, ok := <-p.ch:
				if !ok {
					break drain
				}
				add(it)
			default:
				break drain
			}
		}
		var err error
		if len(muts) > 0 {
			start := time.Now()
			// Injected applier faults fail the batch without running the
			// apply callback: the facade's applyLSN never advances, so WAL
			// replay recovers the batch on restart exactly as it would
			// after an organic applier failure.
			if r := fault.Check(fault.PipelineApply); r.Err != nil {
				err = r.Err
			} else {
				err = p.apply(muts)
			}
			p.mu.Lock()
			p.stats.Applied += uint64(len(muts))
			p.stats.Batches++
			p.stats.LastBatch = len(muts)
			p.stats.LastApplyDuration = time.Since(start)
			p.stats.ApplyLag = time.Since(oldest)
			if err != nil {
				p.stats.Errors++
				p.stats.LastError = err.Error()
				if p.pendingErr == nil {
					p.pendingErr = err
				}
			}
			p.mu.Unlock()
		}
		for _, b := range barriers {
			close(b)
		}
	}
}
