package pipeline

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
)

// TestChaosApplierInjectedError: an injected fault at pipeline.apply fails
// the batch WITHOUT running the apply callback — the error reaches Flush
// and the stats, and the batch's mutations were never applied, which is
// what lets WAL replay recover them after a restart.
func TestChaosApplierInjectedError(t *testing.T) {
	s, err := fault.Parse("point=pipeline.apply;kind=error;errno=EIO;count=1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(s)
	t.Cleanup(fault.Disable)

	c := &collectingApplier{}
	p := New(16, 4, c.apply)
	defer p.Close()

	if err := p.Enqueue(1); err != nil {
		t.Fatal(err)
	}
	ferr := p.Flush(context.Background())
	if !errors.Is(ferr, fault.ErrInjected) {
		t.Fatalf("Flush = %v, want injected error", ferr)
	}
	if got := c.all(); len(got) != 0 {
		t.Fatalf("apply callback ran on injected-fault batch: %v", got)
	}
	st := p.Stats()
	if st.Errors != 1 || st.Applied != 1 {
		t.Fatalf("stats after injected fault = %+v, want Errors=1 Applied=1", st)
	}

	// The rule is exhausted: the pipeline keeps working.
	if err := p.Enqueue(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(context.Background()); err != nil {
		t.Fatalf("Flush after rule exhausted: %v", err)
	}
	if got := c.all(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("post-fault applies = %v, want [2]", got)
	}
}
