package exact

import (
	"math"
	"testing"

	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
)

// figure5 builds the paper's running example: 3 customers, 4 orders.
func figure5(t *testing.T) (*schema.Schema, map[string]*table.Table) {
	t.Helper()
	s := &schema.Schema{Tables: []*schema.Table{
		{
			Name: "customer",
			Columns: []schema.Column{
				{Name: "c_id", Kind: schema.IntKind},
				{Name: "c_age", Kind: schema.IntKind},
				{Name: "c_region", Kind: schema.CategoricalKind},
			},
			PrimaryKey: "c_id",
		},
		{
			Name: "orders",
			Columns: []schema.Column{
				{Name: "o_id", Kind: schema.IntKind},
				{Name: "o_c_id", Kind: schema.IntKind},
				{Name: "o_channel", Kind: schema.CategoricalKind},
			},
			PrimaryKey: "o_id",
			ForeignKeys: []schema.ForeignKey{
				{Column: "o_c_id", RefTable: "customer", RefColumn: "c_id"},
			},
		},
	}}
	cust := table.New(s.Table("customer"))
	reg := cust.Column("c_region")
	eu := float64(reg.Encode("EUROPE"))
	asia := float64(reg.Encode("ASIA"))
	cust.AppendRow(table.Int(1), table.Int(20), table.Float(eu))
	cust.AppendRow(table.Int(2), table.Int(50), table.Float(eu))
	cust.AppendRow(table.Int(3), table.Int(80), table.Float(asia))
	ord := table.New(s.Table("orders"))
	ch := ord.Column("o_channel")
	online := float64(ch.Encode("ONLINE"))
	store := float64(ch.Encode("STORE"))
	ord.AppendRow(table.Int(1), table.Int(1), table.Float(online))
	ord.AppendRow(table.Int(2), table.Int(1), table.Float(store))
	ord.AppendRow(table.Int(3), table.Int(3), table.Float(online))
	ord.AppendRow(table.Int(4), table.Int(3), table.Float(store))
	return s, map[string]*table.Table{"customer": cust, "orders": ord}
}

func regionCode(tabs map[string]*table.Table, name string) float64 {
	return float64(tabs["customer"].Column("c_region").Lookup(name))
}

func channelCode(tabs map[string]*table.Table, name string) float64 {
	return float64(tabs["orders"].Column("o_channel").Lookup(name))
}

func TestQ1CountEuropeanCustomers(t *testing.T) {
	s, tabs := figure5(t)
	e := New(s, tabs)
	// Paper Q1: COUNT(*) FROM customer WHERE c_region='EUROPE' = 2.
	res, err := e.Execute(query.Query{
		Aggregate: query.Count,
		Tables:    []string{"customer"},
		Filters:   []query.Predicate{{Column: "c_region", Op: query.Eq, Value: regionCode(tabs, "EUROPE")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 2 {
		t.Fatalf("Q1 = %v, want 2", res.Scalar())
	}
}

func TestQ2JoinCount(t *testing.T) {
	s, tabs := figure5(t)
	e := New(s, tabs)
	// Paper Q2: COUNT(*) FROM customer JOIN orders WHERE region=EU AND
	// channel=ONLINE = 1.
	res, err := e.Execute(query.Query{
		Aggregate: query.Count,
		Tables:    []string{"customer", "orders"},
		Filters: []query.Predicate{
			{Column: "c_region", Op: query.Eq, Value: regionCode(tabs, "EUROPE")},
			{Column: "o_channel", Op: query.Eq, Value: channelCode(tabs, "ONLINE")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 1 {
		t.Fatalf("Q2 = %v, want 1", res.Scalar())
	}
}

func TestQ3AvgAge(t *testing.T) {
	s, tabs := figure5(t)
	e := New(s, tabs)
	// Paper Q3: AVG(c_age) WHERE c_region='EUROPE' = 35.
	res, err := e.Execute(query.Query{
		Aggregate: query.Avg, AggColumn: "c_age",
		Tables:  []string{"customer"},
		Filters: []query.Predicate{{Column: "c_region", Op: query.Eq, Value: regionCode(tabs, "EUROPE")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 35 {
		t.Fatalf("Q3 = %v, want 35", res.Scalar())
	}
}

func TestSumEqualsCountTimesAvg(t *testing.T) {
	s, tabs := figure5(t)
	e := New(s, tabs)
	base := query.Query{Tables: []string{"customer"}}
	sumQ := base
	sumQ.Aggregate = query.Sum
	sumQ.AggColumn = "c_age"
	sum, err := e.Execute(sumQ)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Scalar() != 150 {
		t.Fatalf("SUM = %v, want 150", sum.Scalar())
	}
}

func TestGroupBy(t *testing.T) {
	s, tabs := figure5(t)
	e := New(s, tabs)
	res, err := e.Execute(query.Query{
		Aggregate: query.Count,
		Tables:    []string{"customer"},
		GroupBy:   []string{"c_region"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Groups))
	}
	total := 0.0
	for _, g := range res.Groups {
		total += g.Value
	}
	if total != 3 {
		t.Fatalf("group counts sum to %v, want 3", total)
	}
}

func TestGroupByJoinAvg(t *testing.T) {
	s, tabs := figure5(t)
	e := New(s, tabs)
	res, err := e.Execute(query.Query{
		Aggregate: query.Avg, AggColumn: "c_age",
		Tables:  []string{"customer", "orders"},
		GroupBy: []string{"o_channel"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Join has customers 1 (age 20) and 3 (age 80), each with one ONLINE and
	// one STORE order: both groups average 50.
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Groups))
	}
	for _, g := range res.Groups {
		if g.Value != 50 {
			t.Fatalf("group %v avg = %v, want 50", g.Key, g.Value)
		}
	}
}

func TestNullHandling(t *testing.T) {
	meta := &schema.Table{Name: "t", Columns: []schema.Column{
		{Name: "x", Kind: schema.FloatKind, Nullable: true},
		{Name: "y", Kind: schema.FloatKind, Nullable: true},
	}}
	tb := table.New(meta)
	tb.AppendRow(table.Float(1), table.Float(10))
	tb.AppendRow(table.Null(), table.Float(20))
	tb.AppendRow(table.Float(3), table.Null())
	s := &schema.Schema{Tables: []*schema.Table{meta}}
	e := New(s, map[string]*table.Table{"t": tb})

	// Predicate on x: NULL row must not match x > 0.
	res, err := e.Execute(query.Query{Aggregate: query.Count, Tables: []string{"t"},
		Filters: []query.Predicate{{Column: "x", Op: query.Gt, Value: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 2 {
		t.Fatalf("COUNT with x>0 = %v, want 2 (NULL excluded)", res.Scalar())
	}
	// AVG(y) ignores the NULL y.
	res, err = e.Execute(query.Query{Aggregate: query.Avg, AggColumn: "y", Tables: []string{"t"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 15 {
		t.Fatalf("AVG(y) = %v, want 15", res.Scalar())
	}
}

func TestCardinalityHelper(t *testing.T) {
	s, tabs := figure5(t)
	e := New(s, tabs)
	card, err := e.Cardinality(query.Query{
		Aggregate: query.Avg, AggColumn: "c_age", // aggregate should be ignored
		Tables:  []string{"customer", "orders"},
		GroupBy: []string{"o_channel"}, // group-by ignored too
	})
	if err != nil {
		t.Fatal(err)
	}
	if card != 4 {
		t.Fatalf("Cardinality = %v, want 4", card)
	}
}

func TestDistinctValuesAndJoinSize(t *testing.T) {
	s, tabs := figure5(t)
	e := New(s, tabs)
	vals, err := e.DistinctValues([]string{"customer"}, "c_region")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("distinct regions = %d, want 2", len(vals))
	}
	js, err := e.JoinSize([]string{"customer", "orders"})
	if err != nil {
		t.Fatal(err)
	}
	if js != 4 {
		t.Fatalf("join size = %v, want 4", js)
	}
}

func TestJoinCacheReuse(t *testing.T) {
	s, tabs := figure5(t)
	e := New(s, tabs)
	if _, err := e.JoinSize([]string{"customer", "orders"}); err != nil {
		t.Fatal(err)
	}
	// Same set in different order must hit the cache (one entry).
	if _, err := e.JoinSize([]string{"orders", "customer"}); err != nil {
		t.Fatal(err)
	}
	if len(e.joinCache) != 1 {
		t.Fatalf("join cache entries = %d, want 1", len(e.joinCache))
	}
}

func TestExecuteErrors(t *testing.T) {
	s, tabs := figure5(t)
	e := New(s, tabs)
	if _, err := e.Execute(query.Query{Aggregate: query.Count, Tables: []string{"nope"}}); err == nil {
		t.Fatal("expected error for unknown table")
	}
	if _, err := e.Execute(query.Query{Aggregate: query.Count, Tables: []string{"customer"},
		Filters: []query.Predicate{{Column: "nope", Op: query.Eq}}}); err == nil {
		t.Fatal("expected error for unknown filter column")
	}
	if _, err := e.Execute(query.Query{Aggregate: query.Avg, AggColumn: "nope",
		Tables: []string{"customer"}}); err == nil {
		t.Fatal("expected error for unknown aggregate column")
	}
	if _, err := e.Execute(query.Query{Aggregate: query.Count, Tables: []string{"customer"},
		GroupBy: []string{"nope"}}); err == nil {
		t.Fatal("expected error for unknown group-by column")
	}
}

func TestAvgEmptySelection(t *testing.T) {
	s, tabs := figure5(t)
	e := New(s, tabs)
	res, err := e.Execute(query.Query{Aggregate: query.Avg, AggColumn: "c_age",
		Tables:  []string{"customer"},
		Filters: []query.Predicate{{Column: "c_age", Op: query.Gt, Value: 1000}}})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Scalar() == 0 || math.IsNaN(res.Scalar())) {
		t.Fatalf("AVG over empty selection = %v, want 0", res.Scalar())
	}
}
