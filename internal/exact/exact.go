// Package exact executes aggregate queries exactly over the in-memory
// tables. It is the ground-truth oracle: every q-error and relative error in
// the experiment harness is computed against this executor's results on the
// same generated data the models were trained on.
package exact

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
)

// Engine executes queries exactly. Materialized inner joins are cached per
// table set because experiment workloads reuse the same join shapes across
// hundreds of queries.
type Engine struct {
	Schema *schema.Schema
	Tables map[string]*table.Table

	mu        sync.Mutex
	joinCache map[string]*table.Table
}

// New returns an exact engine over the given data.
func New(s *schema.Schema, tables map[string]*table.Table) *Engine {
	return &Engine{Schema: s, Tables: tables, joinCache: make(map[string]*table.Table)}
}

// materialize returns the join of the query's tables (the single base
// table for 1-table queries), cached. Tables listed in outer keep
// unmatched rows of the remaining tables (outer-join semantics).
func (e *Engine) materialize(tables, outer []string) (*table.Table, error) {
	if len(tables) == 1 {
		t, ok := e.Tables[tables[0]]
		if !ok {
			return nil, fmt.Errorf("exact: unknown table %s", tables[0])
		}
		return t, nil
	}
	sorted := append([]string(nil), tables...)
	sort.Strings(sorted)
	outerSorted := append([]string(nil), outer...)
	sort.Strings(outerSorted)
	key := strings.Join(sorted, ",") + "/" + strings.Join(outerSorted, ",")
	e.mu.Lock()
	cached, ok := e.joinCache[key]
	e.mu.Unlock()
	if ok {
		return cached, nil
	}
	edges, err := e.Schema.JoinTree(tables)
	if err != nil {
		return nil, err
	}
	spec := table.JoinSpec{Tables: tables, Edges: edges}
	var j *table.Table
	if len(outer) == 0 {
		j, err = table.InnerJoin(e.Tables, spec)
	} else {
		// Full outer join, then keep rows where every non-outer table is
		// present.
		isOuter := map[string]bool{}
		for _, t := range outer {
			isOuter[t] = true
		}
		var full *table.Table
		full, err = table.FullOuterJoin(e.Tables, spec)
		if err == nil {
			var keep []int
			for i := 0; i < full.NumRows(); i++ {
				ok := true
				for _, tn := range tables {
					if isOuter[tn] {
						continue
					}
					ind := full.Column(table.IndicatorColumn(tn))
					if ind == nil || ind.Data[i] != 1 {
						ok = false
						break
					}
				}
				if ok {
					keep = append(keep, i)
				}
			}
			j = full.Select(keep)
		}
	}
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.joinCache[key] = j
	e.mu.Unlock()
	return j, nil
}

// Materialize returns the (cached) inner join of the given tables, exposing
// the oracle's joined relation to baselines that need row-level access.
func (e *Engine) Materialize(tables []string) (*table.Table, error) {
	return e.materialize(tables, nil)
}

// Execute runs the query and returns exact results. SQL three-valued logic
// applies: rows where a filtered or aggregated column is NULL are excluded
// from that predicate/aggregate; group-by treats NULL as its own group key
// (encoded as a sentinel).
func (e *Engine) Execute(q query.Query) (query.Result, error) {
	return e.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute with cancellation: the row scans honor ctx, so
// a caller serving an RPC can abandon an expensive oracle query.
func (e *Engine) ExecuteContext(ctx context.Context, q query.Query) (query.Result, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, err
	}
	j, err := e.materialize(q.Tables, q.OuterTables)
	if err != nil {
		return query.Result{}, err
	}
	rows, err := FilterRowsContext(ctx, j, q.Filters)
	if err != nil {
		return query.Result{}, err
	}
	if len(q.Disjunction) > 0 {
		rows, err = filterDisjunction(j, rows, q.Disjunction)
		if err != nil {
			return query.Result{}, err
		}
	}
	if len(q.GroupBy) == 0 {
		v, err := aggregate(j, q, rows)
		if err != nil {
			return query.Result{}, err
		}
		return query.Result{Groups: []query.Group{{Value: v}}}, nil
	}
	// Group rows by key.
	keyCols := make([]*table.Column, len(q.GroupBy))
	for i, g := range q.GroupBy {
		c := j.Column(g)
		if c == nil {
			return query.Result{}, fmt.Errorf("exact: unknown group-by column %s", g)
		}
		keyCols[i] = c
	}
	groups := make(map[string][]int)
	keys := make(map[string][]float64)
	for i, r := range rows {
		if i%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return query.Result{}, err
			}
		}
		key := make([]float64, len(keyCols))
		skip := false
		for i, c := range keyCols {
			if c.Nul[r] {
				skip = true // NULL group keys are excluded, like the paper's queries
				break
			}
			key[i] = c.Data[r]
		}
		if skip {
			continue
		}
		ks := fmt.Sprint(key)
		groups[ks] = append(groups[ks], r)
		keys[ks] = key
	}
	var out query.Result
	for ks, grows := range groups {
		v, err := aggregate(j, q, grows)
		if err != nil {
			return query.Result{}, err
		}
		out.Groups = append(out.Groups, query.Group{Key: keys[ks], Value: v})
	}
	sortGroups(out.Groups)
	return out, nil
}

func sortGroups(gs []query.Group) {
	sort.Slice(gs, func(i, j int) bool {
		a, b := gs[i].Key, gs[j].Key
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// FilterRows returns the indices of rows satisfying every predicate. A NULL
// cell fails any comparison (SQL three-valued logic).
func FilterRows(t *table.Table, preds []query.Predicate) ([]int, error) {
	return FilterRowsContext(context.Background(), t, preds)
}

// FilterRowsContext is FilterRows with cancellation, checked every few
// thousand rows so the scan stays tight.
func FilterRowsContext(ctx context.Context, t *table.Table, preds []query.Predicate) ([]int, error) {
	cols := make([]*table.Column, len(preds))
	for i, p := range preds {
		c := t.Column(p.Column)
		if c == nil {
			return nil, fmt.Errorf("exact: unknown filter column %s", p.Column)
		}
		cols[i] = c
	}
	var rows []int
	for r := 0; r < t.NumRows(); r++ {
		if r%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ok := true
		for i, p := range preds {
			if cols[i].Nul[r] || !p.Matches(cols[i].Data[r]) {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// filterDisjunction keeps the rows satisfying at least one disjunct.
func filterDisjunction(t *table.Table, rows []int, disjuncts []query.Predicate) ([]int, error) {
	cols := make([]*table.Column, len(disjuncts))
	for i, p := range disjuncts {
		c := t.Column(p.Column)
		if c == nil {
			return nil, fmt.Errorf("exact: unknown disjunct column %s", p.Column)
		}
		cols[i] = c
	}
	var out []int
	for _, r := range rows {
		for i, p := range disjuncts {
			if !cols[i].Nul[r] && p.Matches(cols[i].Data[r]) {
				out = append(out, r)
				break
			}
		}
	}
	return out, nil
}

func aggregate(t *table.Table, q query.Query, rows []int) (float64, error) {
	switch q.Aggregate {
	case query.Count:
		return float64(len(rows)), nil
	case query.Sum, query.Avg:
		c := t.Column(q.AggColumn)
		if c == nil {
			return 0, fmt.Errorf("exact: unknown aggregate column %s", q.AggColumn)
		}
		sum, n := 0.0, 0
		for _, r := range rows {
			if c.Nul[r] {
				continue
			}
			sum += c.Data[r]
			n++
		}
		if q.Aggregate == query.Sum {
			return sum, nil
		}
		if n == 0 {
			return 0, nil
		}
		return sum / float64(n), nil
	default:
		return 0, fmt.Errorf("exact: unsupported aggregate %v", q.Aggregate)
	}
}

// Cardinality returns the exact inner-join cardinality under the query's
// filters, i.e. the COUNT(*) form of the query. It is the ground truth for
// every cardinality-estimation experiment.
func (e *Engine) Cardinality(q query.Query) (float64, error) {
	cq := q
	cq.Aggregate = query.Count
	cq.AggColumn = ""
	cq.GroupBy = nil
	res, err := e.Execute(cq)
	if err != nil {
		return 0, err
	}
	return res.Scalar(), nil
}

// DistinctValues returns the sorted distinct non-NULL values of a column in
// the inner join of the given tables. Group-by expansion and workload
// generation use it.
func (e *Engine) DistinctValues(tables []string, column string) ([]float64, error) {
	j, err := e.materialize(tables, nil)
	if err != nil {
		return nil, err
	}
	c := j.Column(column)
	if c == nil {
		return nil, fmt.Errorf("exact: unknown column %s", column)
	}
	seen := make(map[float64]bool)
	for i := 0; i < j.NumRows(); i++ {
		if !c.Nul[i] {
			seen[c.Data[i]] = true
		}
	}
	out := make([]float64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out, nil
}

// JoinSize returns the unfiltered inner-join cardinality of the table set.
func (e *Engine) JoinSize(tables []string) (float64, error) {
	j, err := e.materialize(tables, nil)
	if err != nil {
		return 0, err
	}
	return float64(j.NumRows()), nil
}
