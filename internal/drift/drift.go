// Package drift maintains per-RSPN staleness statistics for deepdb's
// background re-learning. The paper's incremental update rule (Section
// 5.2) keeps models exact for insert/delete streams drawn from the learned
// distribution, but warns that a drifting distribution degrades estimate
// quality; the fix is to regenerate the affected RSPN offline. This
// package supplies the trigger: cheap per-column moment statistics
// (count/sum/sum-of-squares) maintained on every applied mutation, diffed
// against a baseline captured when the member was (re-)learned.
//
// Two signals are tracked per ensemble member:
//
//   - the fraction of rows mutated since its baseline (volume signal), and
//   - the largest σ-normalized mean shift over its tables' attribute
//     columns (distribution signal).
//
// Either crossing its configured threshold marks the member for
// re-learning. A Set is shared by pointer across copy-on-write ensemble
// clones — like the write-path PK index — so statistics accumulate across
// snapshot publications; the applier mutates it under the facade's apply
// lock and readers (stats, the re-learn trigger) take the Set's own mutex.
package drift

import (
	"math"
	"sort"
	"sync"

	"repro/internal/table"
)

// moments are running first and second moments of one column's non-NULL
// values.
type moments struct {
	count float64
	sum   float64
	sumSq float64
}

func (m moments) mean() float64 { return m.sum / m.count }

func (m moments) std() float64 {
	v := m.sumSq/m.count - m.mean()*m.mean()
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// memberState is the per-ensemble-member staleness state.
type memberState struct {
	tables []string
	// mutated counts mutations applied to the member's tables since its
	// baseline (inserts and deletes both count one).
	mutated uint64
	// baseRows and base are the row counts and column moments captured
	// when the member was learned (or last re-learned).
	baseRows float64
	base     map[string]map[string]moments
	// relearns counts completed re-learns of this member.
	relearns uint64
}

// Set tracks staleness for every member of one ensemble.
type Set struct {
	mu sync.Mutex
	// cols fixes which columns are tracked per table (attribute columns:
	// keys and synthetic tuple-factor columns drift trivially and are
	// excluded by the caller).
	cols map[string][]string
	// cur holds the live moments, updated by RecordRow.
	cur map[string]map[string]moments
	// rows holds the live (tombstone-corrected) row count per table.
	rows map[string]float64
	// members is indexed like the ensemble's RSPN slice.
	members []memberState
}

// New builds a Set by scanning the given tables once: the scan seeds both
// the live moments and every member's baseline. cols lists the tracked
// columns per table; memberTables lists each ensemble member's table set,
// in ensemble order.
func New(tables map[string]*table.Table, cols map[string][]string, memberTables [][]string) *Set {
	s := &Set{
		cols: cols,
		cur:  make(map[string]map[string]moments, len(cols)),
		rows: make(map[string]float64, len(cols)),
	}
	//deepdb:orderinvariant builds independent per-table map entries; no cross-iteration state
	for name, colNames := range cols {
		t := tables[name]
		if t == nil {
			continue
		}
		s.rows[name] = float64(t.NumRows())
		cm := make(map[string]moments, len(colNames))
		for _, cn := range colNames {
			c := t.Column(cn)
			if c == nil {
				continue
			}
			var m moments
			for i := 0; i < c.Len(); i++ {
				if c.IsNull(i) {
					continue
				}
				v := c.Data[i]
				m.count++
				m.sum += v
				m.sumSq += v * v
			}
			cm[cn] = m
		}
		s.cur[name] = cm
	}
	s.members = make([]memberState, len(memberTables))
	for i, mt := range memberTables {
		s.members[i] = memberState{tables: append([]string(nil), mt...)}
		s.rebaseLocked(i)
	}
	return s
}

// rebaseLocked snapshots the current moments as member i's baseline.
func (s *Set) rebaseLocked(i int) {
	m := &s.members[i]
	m.mutated = 0
	m.baseRows = 0
	m.base = make(map[string]map[string]moments, len(m.tables))
	for _, tn := range m.tables {
		m.baseRows += s.rows[tn]
		cm := make(map[string]moments, len(s.cur[tn]))
		//deepdb:orderinvariant map-to-map copy; the result is independent of visit order
		for cn, mo := range s.cur[tn] {
			cm[cn] = mo
		}
		m.base[tn] = cm
	}
}

// RecordRow folds one mutated row into the statistics: sign +1 for an
// insert, -1 for a delete (called before the row is tombstoned, while its
// values are still readable). t is the table the row lives in — possibly a
// copy-on-write clone; only its cell values are read.
func (s *Set) RecordRow(tableName string, t *table.Table, rowIdx int, sign int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cm, ok := s.cur[tableName]
	if !ok {
		return
	}
	s.rows[tableName] += float64(sign)
	for _, cn := range s.cols[tableName] {
		c := t.Column(cn)
		if c == nil || c.IsNull(rowIdx) {
			continue
		}
		v := c.Data[rowIdx]
		m := cm[cn]
		m.count += float64(sign)
		m.sum += float64(sign) * v
		m.sumSq += float64(sign) * v * v
		cm[cn] = m
	}
	for i := range s.members {
		for _, tn := range s.members[i].tables {
			if tn == tableName {
				s.members[i].mutated++
				break
			}
		}
	}
}

// Score is one member's staleness reading.
type Score struct {
	// Tables is the member's table set.
	Tables []string
	// Mutated counts mutations on those tables since the baseline;
	// MutatedFraction normalizes by the baseline row count.
	Mutated         uint64
	MutatedFraction float64
	// MaxShift is the largest σ-normalized column mean shift against the
	// baseline; ShiftColumn names the column attaining it.
	MaxShift    float64
	ShiftColumn string
	// Relearns counts completed re-learns of this member.
	Relearns uint64
}

// Scores reports every member's current staleness, in ensemble order.
func (s *Set) Scores() []Score {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Score, len(s.members))
	for i := range s.members {
		out[i] = s.scoreLocked(i)
	}
	return out
}

func (s *Set) scoreLocked(i int) Score {
	m := &s.members[i]
	sc := Score{Tables: m.tables, Mutated: m.mutated, Relearns: m.relearns}
	sc.MutatedFraction = float64(m.mutated) / math.Max(m.baseRows, 1)
	for _, tn := range m.tables {
		// Sorted column order so a tie on MaxShift reports the same
		// ShiftColumn on every run.
		cols := make([]string, 0, len(m.base[tn]))
		for cn := range m.base[tn] {
			cols = append(cols, cn)
		}
		sort.Strings(cols)
		for _, cn := range cols {
			base := m.base[tn][cn]
			if base.count < 2 {
				continue
			}
			cur, ok := s.cur[tn][cn]
			if !ok || cur.count < 1 {
				continue
			}
			std := base.std()
			if std <= 0 {
				// A constant column: any new value is an infinite shift;
				// fall back to a tiny scale so the signal still fires.
				std = math.Max(math.Abs(base.mean())*1e-9, 1e-9)
			}
			shift := math.Abs(cur.mean()-base.mean()) / std
			if shift > sc.MaxShift {
				sc.MaxShift = shift
				sc.ShiftColumn = cn
			}
		}
	}
	return sc
}

// Thresholds configures the re-learn trigger; a field <= 0 disables that
// signal.
type Thresholds struct {
	// MutatedFraction trips when a member's mutated-row fraction exceeds
	// it (e.g. 0.2 = re-learn after 20% of the baseline rows changed).
	MutatedFraction float64
	// MeanShift trips when any tracked column's mean moved more than this
	// many baseline standard deviations.
	MeanShift float64
}

// Enabled reports whether any signal is armed.
func (t Thresholds) Enabled() bool { return t.MutatedFraction > 0 || t.MeanShift > 0 }

// Trip returns the most-drifted member exceeding the thresholds, or ok ==
// false when none does. "Most drifted" is the largest ratio of signal to
// its threshold, so a member far past the volume trigger outranks one
// barely past the shift trigger.
func (s *Set) Trip(th Thresholds) (int, Score, bool) {
	if !th.Enabled() {
		return 0, Score{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	best, bestRatio := -1, 0.0
	var bestScore Score
	for i := range s.members {
		sc := s.scoreLocked(i)
		ratio := 0.0
		if th.MutatedFraction > 0 {
			ratio = math.Max(ratio, sc.MutatedFraction/th.MutatedFraction)
		}
		if th.MeanShift > 0 {
			ratio = math.Max(ratio, sc.MaxShift/th.MeanShift)
		}
		if ratio >= 1 && ratio > bestRatio {
			best, bestRatio, bestScore = i, ratio, sc
		}
	}
	if best < 0 {
		return 0, Score{}, false
	}
	return best, bestScore, true
}

// MutationCount returns member i's mutation counter.
func (s *Set) MutationCount(i int) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.members[i].mutated
}

// ResetMember re-baselines member i after a completed re-learn: its
// staleness drops to zero against the state it was just learned from.
func (s *Set) ResetMember(i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rebaseLocked(i)
	s.members[i].relearns++
}

// Relearns sums the completed re-learn count over all members.
func (s *Set) Relearns() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for i := range s.members {
		n += s.members[i].relearns
	}
	return n
}
