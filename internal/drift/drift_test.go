package drift

import (
	"math"
	"testing"

	"repro/internal/schema"
	"repro/internal/table"
)

// twoTables builds a tiny customer/orders pair with known column moments.
func twoTables(rows int) map[string]*table.Table {
	cust := table.New(&schema.Table{Name: "customer", Columns: []schema.Column{
		{Name: "c_id", Kind: schema.IntKind},
		{Name: "c_age", Kind: schema.IntKind},
	}, PrimaryKey: "c_id"})
	ord := table.New(&schema.Table{Name: "orders", Columns: []schema.Column{
		{Name: "o_id", Kind: schema.IntKind},
		{Name: "o_amount", Kind: schema.IntKind},
	}, PrimaryKey: "o_id"})
	for i := 0; i < rows; i++ {
		cust.AppendRow(table.Int(i), table.Int(20+i%40))
		ord.AppendRow(table.Int(i), table.Float(100))
	}
	return map[string]*table.Table{"customer": cust, "orders": ord}
}

func testCols() map[string][]string {
	return map[string][]string{"customer": {"c_age"}, "orders": {"o_amount"}}
}

func TestScoresStartAtZero(t *testing.T) {
	tabs := twoTables(100)
	s := New(tabs, testCols(), [][]string{{"customer"}, {"orders"}, {"customer", "orders"}})
	for i, sc := range s.Scores() {
		if sc.Mutated != 0 || sc.MutatedFraction != 0 || sc.MaxShift != 0 {
			t.Fatalf("member %d: non-zero initial score %+v", i, sc)
		}
	}
}

func TestMutatedFractionAndMemberRouting(t *testing.T) {
	tabs := twoTables(100)
	s := New(tabs, testCols(), [][]string{{"customer"}, {"orders"}, {"customer", "orders"}})
	// Mutate 10 order rows (inserts with the same distribution).
	ord := tabs["orders"]
	for i := 0; i < 10; i++ {
		ord.AppendRow(table.Int(1000+i), table.Float(100))
		s.RecordRow("orders", ord, ord.NumRows()-1, +1)
	}
	scores := s.Scores()
	if scores[0].Mutated != 0 {
		t.Fatalf("customer-only member saw %d mutations, want 0", scores[0].Mutated)
	}
	if scores[1].Mutated != 10 {
		t.Fatalf("orders member saw %d mutations, want 10", scores[1].Mutated)
	}
	if scores[2].Mutated != 10 {
		t.Fatalf("join member saw %d mutations, want 10", scores[2].Mutated)
	}
	if got, want := scores[1].MutatedFraction, 0.1; math.Abs(got-want) > 1e-12 {
		t.Fatalf("orders MutatedFraction = %g, want %g", got, want)
	}
	// Join member's baseline spans both tables (200 rows).
	if got, want := scores[2].MutatedFraction, 0.05; math.Abs(got-want) > 1e-12 {
		t.Fatalf("join MutatedFraction = %g, want %g", got, want)
	}
	// Same-distribution inserts produce no mean shift.
	if scores[1].MaxShift > 1e-9 {
		t.Fatalf("orders MaxShift = %g after same-distribution inserts", scores[1].MaxShift)
	}
}

func TestMeanShiftDetected(t *testing.T) {
	tabs := twoTables(100)
	s := New(tabs, testCols(), [][]string{{"orders"}})
	ord := tabs["orders"]
	// o_amount was constant 100; shift the stream to 500.
	for i := 0; i < 50; i++ {
		ord.AppendRow(table.Int(1000+i), table.Float(500))
		s.RecordRow("orders", ord, ord.NumRows()-1, +1)
	}
	sc := s.Scores()[0]
	if sc.MaxShift <= 0 {
		t.Fatalf("MaxShift = %g after a large distribution shift", sc.MaxShift)
	}
	if sc.ShiftColumn != "o_amount" {
		t.Fatalf("ShiftColumn = %q, want o_amount", sc.ShiftColumn)
	}
}

func TestDeleteReversesMoments(t *testing.T) {
	tabs := twoTables(10)
	s := New(tabs, testCols(), [][]string{{"orders"}})
	ord := tabs["orders"]
	// Insert a wild outlier, then delete it: moments return to baseline.
	ord.AppendRow(table.Int(99), table.Float(1e6))
	s.RecordRow("orders", ord, ord.NumRows()-1, +1)
	if sc := s.Scores()[0]; sc.MaxShift == 0 {
		t.Fatal("outlier insert did not move the mean")
	}
	s.RecordRow("orders", ord, ord.NumRows()-1, -1)
	sc := s.Scores()[0]
	if sc.MaxShift > 1e-6 {
		t.Fatalf("MaxShift = %g after insert+delete of the same row, want ~0", sc.MaxShift)
	}
	if sc.Mutated != 2 {
		t.Fatalf("Mutated = %d, want 2 (both operations count)", sc.Mutated)
	}
}

func TestTripPicksWorstMember(t *testing.T) {
	tabs := twoTables(100)
	s := New(tabs, testCols(), [][]string{{"customer"}, {"orders"}})
	th := Thresholds{MutatedFraction: 0.05}
	if _, _, ok := s.Trip(th); ok {
		t.Fatal("Trip fired on a fresh set")
	}
	ord := tabs["orders"]
	for i := 0; i < 20; i++ {
		ord.AppendRow(table.Int(1000+i), table.Float(100))
		s.RecordRow("orders", ord, ord.NumRows()-1, +1)
	}
	i, sc, ok := s.Trip(th)
	if !ok {
		t.Fatal("Trip did not fire at 20% mutated vs 5% threshold")
	}
	if i != 1 {
		t.Fatalf("Trip picked member %d, want 1 (orders)", i)
	}
	if sc.MutatedFraction < 0.19 {
		t.Fatalf("Trip score %+v", sc)
	}
	// Disabled thresholds never fire.
	if _, _, ok := s.Trip(Thresholds{}); ok {
		t.Fatal("Trip fired with zero thresholds")
	}
}

func TestResetMemberRebaselines(t *testing.T) {
	tabs := twoTables(100)
	s := New(tabs, testCols(), [][]string{{"orders"}})
	ord := tabs["orders"]
	for i := 0; i < 30; i++ {
		ord.AppendRow(table.Int(1000+i), table.Float(900))
		s.RecordRow("orders", ord, ord.NumRows()-1, +1)
	}
	if sc := s.Scores()[0]; sc.MutatedFraction == 0 || sc.MaxShift == 0 {
		t.Fatalf("pre-reset score %+v", sc)
	}
	s.ResetMember(0)
	sc := s.Scores()[0]
	if sc.Mutated != 0 || sc.MutatedFraction != 0 || sc.MaxShift > 1e-12 {
		t.Fatalf("post-reset score %+v, want zeros", sc)
	}
	if sc.Relearns != 1 {
		t.Fatalf("Relearns = %d, want 1", sc.Relearns)
	}
	if s.Relearns() != 1 {
		t.Fatalf("Set.Relearns() = %d, want 1", s.Relearns())
	}
	// The new baseline includes the drifted rows: fresh mutations are
	// measured against it, not the original.
	if got, want := s.MutationCount(0), uint64(0); got != want {
		t.Fatalf("MutationCount = %d, want %d", got, want)
	}
}
