package wal

// codec.go serializes mutation groups into WAL record payloads. The format
// is deliberately tiny and deterministic (column names are sorted), so a
// group encodes to the same bytes regardless of map iteration order —
// useful for tests and for comparing dumps across runs.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/ensemble"
	"repro/internal/table"
)

const (
	opInsert = byte(0)
	opDelete = byte(1)
)

// EncodeMutations serializes one mutation group (the unit of one
// Insert/Delete/Update call) into a record payload.
func EncodeMutations(muts []ensemble.Mutation) []byte {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(muts)))
	for i := range muts {
		m := &muts[i]
		switch m.Op {
		case ensemble.OpInsert:
			out = append(out, opInsert)
			out = appendString(out, m.Table)
			cols := make([]string, 0, len(m.Values))
			for c := range m.Values {
				cols = append(cols, c)
			}
			sort.Strings(cols)
			out = binary.AppendUvarint(out, uint64(len(cols)))
			for _, c := range cols {
				out = appendString(out, c)
				v := m.Values[c]
				if v.Null {
					out = append(out, 1)
					continue
				}
				out = append(out, 0)
				out = binary.BigEndian.AppendUint64(out, math.Float64bits(v.F))
			}
		case ensemble.OpDelete:
			out = append(out, opDelete)
			out = appendString(out, m.Table)
			out = binary.BigEndian.AppendUint64(out, math.Float64bits(m.PK))
		}
	}
	return out
}

// DecodeMutations parses a record payload written by EncodeMutations.
func DecodeMutations(b []byte) ([]ensemble.Mutation, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return nil, err
	}
	// Every mutation occupies at least 2 bytes (op + empty table name), so
	// a count beyond that is a lie — reject it before preallocating.
	if n > uint64(len(b))/2+1 {
		return nil, errTruncated()
	}
	muts := make([]ensemble.Mutation, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(b) < 1 {
			return nil, errTruncated()
		}
		op := b[0]
		b = b[1:]
		var tbl string
		tbl, b, err = readString(b)
		if err != nil {
			return nil, err
		}
		switch op {
		case opInsert:
			var nc uint64
			nc, b, err = readUvarint(b)
			if err != nil {
				return nil, err
			}
			if nc > uint64(len(b))/2+1 {
				return nil, errTruncated()
			}
			values := make(map[string]table.Value, nc)
			for j := uint64(0); j < nc; j++ {
				var col string
				col, b, err = readString(b)
				if err != nil {
					return nil, err
				}
				if len(b) < 1 {
					return nil, errTruncated()
				}
				null := b[0] == 1
				b = b[1:]
				if null {
					values[col] = table.Null()
					continue
				}
				if len(b) < 8 {
					return nil, errTruncated()
				}
				values[col] = table.Float(math.Float64frombits(binary.BigEndian.Uint64(b[:8])))
				b = b[8:]
			}
			muts = append(muts, ensemble.Mutation{Op: ensemble.OpInsert, Table: tbl, Values: values})
		case opDelete:
			if len(b) < 8 {
				return nil, errTruncated()
			}
			pk := math.Float64frombits(binary.BigEndian.Uint64(b[:8]))
			b = b[8:]
			muts = append(muts, ensemble.Mutation{Op: ensemble.OpDelete, Table: tbl, PK: pk})
		default:
			return nil, fmt.Errorf("wal: unknown mutation op %d", op)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after mutation group", len(b))
	}
	return muts, nil
}

func appendString(out []byte, s string) []byte {
	out = binary.AppendUvarint(out, uint64(len(s)))
	return append(out, s...)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errTruncated()
	}
	return v, b[n:], nil
}

func readString(b []byte) (string, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(b)) < n {
		return "", nil, errTruncated()
	}
	return string(b[:n]), b[n:], nil
}

func errTruncated() error { return fmt.Errorf("wal: truncated mutation payload") }
