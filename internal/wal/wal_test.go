package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ensemble"
	"repro/internal/table"
)

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("Append(%d): lsn = %d, want %d", i, lsn, i+1)
		}
	}
}

func collect(t *testing.T, l *Log) map[uint64]string {
	t.Helper()
	out := map[uint64]string{}
	if err := l.Replay(func(lsn uint64, payload []byte) error {
		out[lsn] = string(payload)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Durability: Off})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{Durability: Off})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := collect(t, l)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for i := 0; i < 10; i++ {
		want := fmt.Sprintf("record-%04d", i)
		if got[uint64(i+1)] != want {
			t.Fatalf("lsn %d: payload %q, want %q", i+1, got[uint64(i+1)], want)
		}
	}
	// LSNs continue after reopen.
	lsn, err := l.Append([]byte("next"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 11 {
		t.Fatalf("post-reopen Append lsn = %d, want 11", lsn)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Durability: Off, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 50)
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("Segments = %d, want >= 3 with a 256-byte segment cap", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// All 50 records survive across segments.
	l, err = Open(dir, Options{Durability: Off, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := collect(t, l); len(got) != 50 {
		t.Fatalf("replayed %d records, want 50", len(got))
	}
}

func TestCheckpointTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Durability: Off, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 50)
	before := l.Stats()
	if err := l.Checkpoint(before.LastLSN); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.Segments != 1 {
		t.Fatalf("Segments after full checkpoint = %d, want 1 (the active one)", after.Segments)
	}
	if after.TruncatedSegments == 0 {
		t.Fatal("TruncatedSegments = 0, want > 0")
	}
	if after.SizeBytes >= before.SizeBytes {
		t.Fatalf("SizeBytes did not shrink: %d -> %d", before.SizeBytes, after.SizeBytes)
	}
	if after.CheckpointLSN != before.LastLSN {
		t.Fatalf("CheckpointLSN = %d, want %d", after.CheckpointLSN, before.LastLSN)
	}
}

func TestReplaySkipsCheckpointedRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Durability: Off})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.Checkpoint(4); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{Durability: Off})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := collect(t, l)
	if len(got) != 6 {
		t.Fatalf("replayed %d records, want 6 (LSNs 5..10)", len(got))
	}
	for lsn := uint64(1); lsn <= 4; lsn++ {
		if _, ok := got[lsn]; ok {
			t.Fatalf("checkpointed lsn %d was replayed", lsn)
		}
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Durability: Off})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	path := filepath.Join(dir, segs[0])

	// Cut the file mid-record at every possible offset past the header:
	// Open must recover the longest intact prefix and never fail.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(full) - 1; cut >= headerSize; cut-- {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Durability: Off})
		if err != nil {
			t.Fatalf("Open with tail cut at %d: %v", cut, err)
		}
		got := collect(t, l)
		for lsn := range got {
			if got[lsn] != fmt.Sprintf("record-%04d", lsn-1) {
				t.Fatalf("cut %d: lsn %d has wrong payload %q", cut, lsn, got[lsn])
			}
		}
		// Appending after recovery continues the sequence cleanly.
		lsn, err := l.Append([]byte("post-recovery"))
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(len(got) + 1); lsn != want {
			t.Fatalf("cut %d: post-recovery lsn = %d, want %d", cut, lsn, want)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCorruptTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Durability: Off})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the last record: its CRC fails, the first
	// four records survive.
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{Durability: Off})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := collect(t, l)
	if len(got) != 4 {
		t.Fatalf("replayed %d records after corrupt tail, want 4", len(got))
	}
}

func TestCorruptMiddleSegmentIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Durability: Off, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 50)
	if l.Stats().Segments < 3 {
		t.Fatalf("need >= 3 segments, got %d", l.Stats().Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0])
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Durability: Off, SegmentBytes: 256}); err == nil {
		t.Fatal("Open succeeded with a corrupt non-last segment; want an error (silent data loss)")
	}
}

func TestSyncModesAppend(t *testing.T) {
	for _, d := range []Durability{Sync, Batched, Off} {
		t.Run(d.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Durability: d, SyncEvery: 4})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 0, 20)
			st := l.Stats()
			switch d {
			case Sync:
				if st.Synced < 20 {
					t.Fatalf("Sync mode synced %d times for 20 appends", st.Synced)
				}
			case Batched:
				if st.Synced == 0 || st.Synced >= 20 {
					t.Fatalf("Batched mode synced %d times for 20 appends with SyncEvery=4", st.Synced)
				}
			case Off:
				if st.Synced != 0 {
					t.Fatalf("Off mode synced %d times on the append path", st.Synced)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l, err = Open(dir, Options{Durability: d})
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			if got := collect(t, l); len(got) != 20 {
				t.Fatalf("replayed %d records, want 20", len(got))
			}
		})
	}
}

func TestInspectAndDump(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Durability: Off, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 30)
	if err := l.Checkpoint(10); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointLSN != 10 {
		t.Fatalf("CheckpointLSN = %d, want 10", info.CheckpointLSN)
	}
	if info.LastLSN != 30 {
		t.Fatalf("LastLSN = %d, want 30", info.LastLSN)
	}
	if len(info.Segments) < 2 {
		t.Fatalf("Segments = %d, want >= 2", len(info.Segments))
	}
	for _, s := range info.Segments {
		if !s.HeaderOK || s.TornBytes != 0 {
			t.Fatalf("segment %s: HeaderOK=%v TornBytes=%d on a clean log", s.Name, s.HeaderOK, s.TornBytes)
		}
	}

	var lsns []uint64
	err = Dump(dir, 25, func(lsn uint64, payload []byte) error {
		lsns = append(lsns, lsn)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 5 {
		t.Fatalf("Dump(after=25) returned %d records, want 5", len(lsns))
	}
	for i, lsn := range lsns {
		if lsn != uint64(26+i) {
			t.Fatalf("Dump order: got lsn %d at position %d", lsn, i)
		}
	}
}

func TestReplayAfterAppendRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Durability: Off})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Replay(func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("Replay after Append succeeded; want an error")
	}
}

func TestMutationCodecRoundTrip(t *testing.T) {
	muts := []ensemble.Mutation{
		{Op: ensemble.OpInsert, Table: "orders", Values: map[string]table.Value{
			"o_id":     table.Int(42),
			"o_amount": table.Float(19.5),
			"o_note":   table.Null(),
		}},
		{Op: ensemble.OpDelete, Table: "customer", PK: 7},
		{Op: ensemble.OpInsert, Table: "customer", Values: nil},
	}
	payload := EncodeMutations(muts)
	// Deterministic bytes regardless of map iteration order.
	for i := 0; i < 8; i++ {
		if got := EncodeMutations(muts); string(got) != string(payload) {
			t.Fatal("EncodeMutations is not deterministic")
		}
	}
	got, err := DecodeMutations(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d mutations, want 3", len(got))
	}
	if got[0].Op != ensemble.OpInsert || got[0].Table != "orders" || len(got[0].Values) != 3 {
		t.Fatalf("mutation 0 mismatch: %+v", got[0])
	}
	if v := got[0].Values["o_amount"]; v.Null || v.F != 19.5 {
		t.Fatalf("o_amount = %+v", v)
	}
	if v := got[0].Values["o_note"]; !v.Null {
		t.Fatalf("o_note = %+v, want NULL", v)
	}
	if got[1].Op != ensemble.OpDelete || got[1].Table != "customer" || got[1].PK != 7 {
		t.Fatalf("mutation 1 mismatch: %+v", got[1])
	}
	// Truncated payloads error instead of panicking (the group count in
	// the header no longer matches the bytes present).
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeMutations(payload[:cut]); err == nil {
			t.Fatalf("DecodeMutations accepted truncated payload of %d bytes", cut)
		}
	}
}

func FuzzSegmentScan(f *testing.F) {
	// Seed with a real segment so the fuzzer starts from valid framing.
	dir := f.TempDir()
	l, err := Open(dir, Options{Durability: Off})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("seed-%d", i))); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	segs, _ := listSegments(dir)
	seed, err := os.ReadFile(filepath.Join(dir, segs[0]))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:headerSize])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segmentName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Open must never panic and, on success, replay strictly
		// increasing LSNs whose records all pass their CRC.
		l, err := Open(dir, Options{Durability: Off})
		if err != nil {
			return
		}
		var prev uint64
		if err := l.Replay(func(lsn uint64, payload []byte) error {
			if lsn <= prev {
				t.Fatalf("replay out of order: %d after %d", lsn, prev)
			}
			prev = lsn
			return nil
		}); err != nil {
			t.Fatalf("Replay on recovered log: %v", err)
		}
		if _, err := l.Append([]byte("post")); err != nil {
			t.Fatalf("Append on recovered log: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

func FuzzDecodeMutations(f *testing.F) {
	f.Add(EncodeMutations([]ensemble.Mutation{
		{Op: ensemble.OpInsert, Table: "t", Values: map[string]table.Value{"a": table.Int(1)}},
		{Op: ensemble.OpDelete, Table: "t", PK: 1},
	}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		muts, err := DecodeMutations(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same count.
		again, err := DecodeMutations(EncodeMutations(muts))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(muts) {
			t.Fatalf("re-decode count %d != %d", len(again), len(muts))
		}
	})
}
