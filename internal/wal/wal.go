// Package wal implements the durable write-ahead log behind deepdb's
// update pipeline. Mutations are appended to segmented, checksummed log
// files before they enter the in-memory queue; after a crash, Open replays
// every record past the last checkpoint and the facade re-applies it, which
// reproduces the pre-crash state bit-for-bit (the apply path is
// deterministic for a fixed mutation order).
//
// On-disk layout (one directory per log):
//
//	<dir>/00000000000000000001.wal   segment, named by its first LSN
//	<dir>/00000000000000004097.wal   next segment after rotation
//	<dir>/CHECKPOINT                 last durably-saved LSN (tmp+rename)
//
// Each segment starts with a 16-byte header (magic + first LSN) followed by
// records framed as
//
//	[8B LSN][4B payload len][4B CRC32-C over LSN|len|payload][payload]
//
// LSNs are assigned contiguously starting at 1. A torn or corrupt tail —
// the expected aftermath of kill -9 mid-write — is truncated away on the
// *last* segment only; corruption in the middle of the log is data loss and
// reported as an error. Checkpoint persists the save watermark and deletes
// every segment fully below it, bounding disk usage under a sustained
// writer stream.
//
// Durability is configurable: Sync fsyncs every append, Batched fsyncs
// every SyncEvery appends plus on a background interval, Off leaves
// flushing to the OS. Completed segments are always fsynced before
// rotation, so the only-the-tail-is-torn invariant holds in every mode.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
)

// Durability selects how aggressively appends reach stable storage.
type Durability int

const (
	// Sync fsyncs after every append: no acknowledged record is ever lost.
	Sync Durability = iota
	// Batched fsyncs every Options.SyncEvery appends and on a background
	// interval: a crash loses at most the unsynced tail.
	Batched
	// Off never fsyncs on the append path: a crash may lose everything the
	// OS had not written back yet. Close still syncs.
	Off
)

func (d Durability) String() string {
	switch d {
	case Sync:
		return "sync"
	case Batched:
		return "batched"
	case Off:
		return "off"
	}
	return fmt.Sprintf("Durability(%d)", int(d))
}

// Options configures a log.
type Options struct {
	// Durability selects the fsync policy (default Sync).
	Durability Durability
	// SegmentBytes rotates to a fresh segment once the active one exceeds
	// this size (default 4 MiB).
	SegmentBytes int64
	// SyncEvery bounds how many appends may accumulate before a Batched
	// log fsyncs inline (default 256).
	SyncEvery int
	// SyncInterval is the Batched background flush period (default 10ms).
	SyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 256
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 10 * time.Millisecond
	}
	return o
}

// Stats is a point-in-time snapshot of log counters.
type Stats struct {
	// Appended counts records accepted by Append this session; Synced
	// counts fsync calls on the append path.
	Appended uint64
	Synced   uint64
	// Replayed counts records delivered by the last Replay.
	Replayed uint64
	// TruncatedSegments counts segment files deleted by Checkpoint this
	// session.
	TruncatedSegments uint64
	// Segments and SizeBytes describe the current on-disk footprint.
	Segments  int
	SizeBytes int64
	// LastLSN is the highest LSN ever appended (0 when the log is empty);
	// CheckpointLSN is the persisted save watermark.
	LastLSN       uint64
	CheckpointLSN uint64
}

const (
	segSuffix      = ".wal"
	checkpointName = "CHECKPOINT"
	headerSize     = 16
	recHeaderSize  = 16
)

var (
	segMagic = [8]byte{'D', 'D', 'B', 'W', 'A', 'L', 0, 1}
	crcTable = crc32.MakeTable(crc32.Castagnoli)
)

// segMeta tracks one segment file.
type segMeta struct {
	name    string
	first   uint64 // first LSN (from the header; records may start later never earlier)
	last    uint64 // last LSN present, 0 when the segment holds no records
	records int
	bytes   int64
}

// Log is an append-only write-ahead log over one directory. All methods
// are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File // active (last) segment, positioned at its end
	segs    []segMeta
	nextLSN uint64
	ckpt    uint64
	stats   Stats
	dirty   bool // unsynced appends outstanding (Batched)
	sinceIn int  // appends since the last inline sync (Batched)
	started bool // any Append happened (Replay is only valid before)
	closed  bool
	ioErr   error // wedge latch: the segment file is in an unknown state

	stopc chan struct{}
	wg    sync.WaitGroup
}

// Open opens (or creates) the log in dir, validating every segment and
// truncating a torn tail on the last one. The returned log continues
// appending after the highest surviving LSN.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, stopc: make(chan struct{})}
	ckpt, err := readCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	l.ckpt = ckpt
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, name := range segs {
		path := filepath.Join(dir, name)
		m, goodOff, hdrOK, err := scanSegment(path)
		if err != nil {
			return nil, err
		}
		isLast := i == len(segs)-1
		size, err := fileSize(path)
		if err != nil {
			return nil, err
		}
		if !hdrOK {
			if !isLast {
				return nil, fmt.Errorf("wal: segment %s has a corrupt header and is not the last segment", name)
			}
			// A crash during rotation can leave a half-written header on
			// a record-free tail segment; drop it.
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			continue
		}
		if goodOff < size {
			if !isLast {
				return nil, fmt.Errorf("wal: segment %s is corrupt at offset %d but is not the last segment", name, goodOff)
			}
			if err := os.Truncate(path, goodOff); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", name, err)
			}
			m.bytes = goodOff
		}
		if n := len(l.segs); n > 0 {
			prev := l.segs[n-1]
			prevNext := prev.first
			if prev.records > 0 {
				prevNext = prev.last + 1
			}
			if m.first != prevNext {
				return nil, fmt.Errorf("wal: segment %s starts at LSN %d, expected %d (missing segment?)", name, m.first, prevNext)
			}
		}
		l.segs = append(l.segs, m)
	}
	switch {
	case len(l.segs) == 0:
		l.nextLSN = l.ckpt + 1
		if err := l.rotateLocked(); err != nil {
			return nil, err
		}
	default:
		active := l.segs[len(l.segs)-1]
		if active.records > 0 {
			l.nextLSN = active.last + 1
		} else {
			l.nextLSN = active.first
		}
		f, err := os.OpenFile(filepath.Join(dir, active.name), os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Seek(0, 2); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
	}
	l.refreshSizeLocked()
	if l.nextLSN > 1 {
		l.stats.LastLSN = l.nextLSN - 1
	}
	l.stats.CheckpointLSN = l.ckpt
	if opts.Durability == Batched {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// Append writes one record and returns its LSN, honoring the configured
// durability mode. The payload is opaque to the log.
//
// The LSN watermark, segment metadata and stats advance only after the
// record has cleared the configured durability barrier: a failed write or
// fsync rolls the segment file back to its pre-append shape and the next
// Append reuses the same LSN, so an errored Append leaves no trace and an
// LSN returned without error is never reassigned. If the file cannot be
// rolled back (or a torn write left a partial record behind) the log
// wedges: every later Append fails fast with the original error and the
// caller must reopen the log, which re-runs torn-tail repair.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: closed")
	}
	if l.ioErr != nil {
		return 0, fmt.Errorf("wal: log wedged by earlier I/O failure: %w", l.ioErr)
	}
	l.started = true
	lsn := l.nextLSN
	rec := make([]byte, recHeaderSize+len(payload))
	binary.BigEndian.PutUint64(rec[0:8], lsn)
	binary.BigEndian.PutUint32(rec[8:12], uint32(len(payload)))
	copy(rec[recHeaderSize:], payload)
	crc := crc32.Update(0, crcTable, rec[0:12])
	crc = crc32.Update(crc, crcTable, payload)
	binary.BigEndian.PutUint32(rec[12:16], crc)

	active := &l.segs[len(l.segs)-1]
	start := active.bytes // == current file size; rollback target

	if r := fault.Check(fault.WALAppendWrite); r.Err != nil {
		if r.Torn > 0 {
			// Persist a prefix of the record and wedge: the on-disk
			// aftermath of a crash mid-write. Reopen repairs via torn-tail
			// truncation.
			if n := min(r.Torn, len(rec)); n > 0 {
				_, _ = l.f.Write(rec[:n])
			}
			l.ioErr = r.Err
			return 0, fmt.Errorf("wal: %w", r.Err)
		}
		return 0, fmt.Errorf("wal: %w", r.Err)
	}
	if _, err := l.f.Write(rec); err != nil {
		l.rollbackLocked(start, err)
		return 0, fmt.Errorf("wal: %w", err)
	}

	// Durability barrier before commit.
	switch l.opts.Durability {
	case Sync:
		serr := fault.Check(fault.WALAppendSync).Err
		if serr == nil {
			serr = l.f.Sync()
		}
		if serr != nil {
			l.rollbackLocked(start, serr)
			return 0, fmt.Errorf("wal: %w", serr)
		}
		l.stats.Synced++
	case Batched:
		if l.sinceIn+1 >= l.opts.SyncEvery {
			serr := fault.Check(fault.WALAppendSync).Err
			if serr == nil {
				serr = l.f.Sync()
			}
			if serr != nil {
				l.rollbackLocked(start, serr)
				return 0, fmt.Errorf("wal: %w", serr)
			}
			l.stats.Synced++
			l.dirty = false
			l.sinceIn = 0
		} else {
			l.dirty = true
			l.sinceIn++
		}
	}

	l.nextLSN++
	active.last = lsn
	active.records++
	active.bytes += int64(len(rec))
	l.stats.Appended++
	l.stats.LastLSN = lsn
	l.stats.SizeBytes += int64(len(rec))

	if active.bytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// rollbackLocked restores the active segment to its pre-append size after
// a failed write or fsync, so the aborted record leaves no bytes behind
// and the next append lands at the same offset with the same LSN. If the
// restore itself fails the segment tail is in an unknown state and the log
// wedges with cause.
func (l *Log) rollbackLocked(start int64, cause error) {
	if err := l.f.Truncate(start); err != nil {
		l.ioErr = fmt.Errorf("%w (and rollback truncate failed: %v)", cause, err)
		return
	}
	if _, err := l.f.Seek(start, 0); err != nil {
		l.ioErr = fmt.Errorf("%w (and rollback seek failed: %v)", cause, err)
	}
}

// Sync flushes outstanding appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: closed")
	}
	if l.ioErr != nil {
		return fmt.Errorf("wal: log wedged by earlier I/O failure: %w", l.ioErr)
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.stats.Synced++
	l.dirty = false
	l.sinceIn = 0
	return nil
}

// Replay streams every record with LSN above the checkpoint, in order, to
// fn. It is only valid before the first Append (the facade replays right
// after Open); fn returning an error aborts the replay with that error.
func (l *Log) Replay(fn func(lsn uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: closed")
	}
	if l.started {
		l.mu.Unlock()
		return fmt.Errorf("wal: Replay after Append")
	}
	segs := append([]segMeta(nil), l.segs...)
	ckpt := l.ckpt
	l.mu.Unlock()

	var replayed uint64
	for _, m := range segs {
		if m.records == 0 || m.last <= ckpt {
			continue
		}
		err := iterateSegment(filepath.Join(l.dir, m.name), func(lsn uint64, payload []byte) error {
			if lsn <= ckpt {
				return nil
			}
			replayed++
			return fn(lsn, payload)
		})
		if err != nil {
			return err
		}
	}
	l.mu.Lock()
	l.stats.Replayed = replayed
	l.mu.Unlock()
	return nil
}

// Checkpoint durably records that state up to and including lsn has been
// saved elsewhere (the model file), then deletes every non-active segment
// fully at or below the watermark. Replay after the next Open skips
// checkpointed records.
func (l *Log) Checkpoint(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: closed")
	}
	if lsn < l.ckpt {
		return nil // watermarks only advance
	}
	if err := writeCheckpoint(l.dir, lsn); err != nil {
		return err
	}
	l.ckpt = lsn
	l.stats.CheckpointLSN = lsn
	keep := l.segs[:0]
	for i, m := range l.segs {
		active := i == len(l.segs)-1
		if !active && m.records > 0 && m.last <= lsn {
			if err := os.Remove(filepath.Join(l.dir, m.name)); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			l.stats.TruncatedSegments++
			continue
		}
		keep = append(keep, m)
	}
	l.segs = keep
	l.refreshSizeLocked()
	return nil
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Segments = len(l.segs)
	return s
}

// Close syncs and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.stopc)
	var err error
	if l.f != nil {
		if serr := l.f.Sync(); serr != nil && err == nil {
			err = fmt.Errorf("wal: %w", serr)
		}
		if cerr := l.f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("wal: %w", cerr)
		}
		l.f = nil
	}
	l.mu.Unlock()
	l.wg.Wait()
	return err
}

// syncLoop is the Batched-mode background flusher.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopc:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				_ = l.syncLocked() // surfaced by the next Append/Sync if persistent
			}
			l.mu.Unlock()
		}
	}
}

// rotateLocked syncs and closes the active segment and opens a fresh one
// whose first LSN is the next record's.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		// Completed segments are always durable before a successor exists,
		// preserving the only-the-last-segment-is-torn invariant.
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.f = nil
	}
	name := segmentName(l.nextLSN)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[0:8], segMagic[:])
	binary.BigEndian.PutUint64(hdr[8:16], l.nextLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if l.opts.Durability == Sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segs = append(l.segs, segMeta{name: name, first: l.nextLSN, bytes: headerSize})
	l.refreshSizeLocked()
	return nil
}

func (l *Log) refreshSizeLocked() {
	var total int64
	for _, m := range l.segs {
		total += m.bytes
	}
	l.stats.SizeBytes = total
}

// ---- segment scanning ----

// scanSegment validates one segment file: header, record framing, CRCs and
// LSN continuity. goodOff is the offset past the last intact record
// (callers truncate a torn tail to it); hdrOK reports whether the 16-byte
// segment header itself was valid. Errors are I/O only — framing damage is
// reported through goodOff, never as an error.
func scanSegment(path string) (m segMeta, goodOff int64, hdrOK bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return m, 0, false, fmt.Errorf("wal: %w", err)
	}
	m.name = filepath.Base(path)
	m.bytes = int64(len(data))
	if len(data) < headerSize || [8]byte(data[0:8]) != segMagic {
		return m, 0, false, nil
	}
	m.first = binary.BigEndian.Uint64(data[8:16])
	if nameLSN, ok := parseSegmentName(m.name); !ok || nameLSN != m.first {
		return m, 0, false, nil
	}
	off := int64(headerSize)
	expect := m.first
	for {
		rec := data[off:]
		if len(rec) < recHeaderSize {
			break
		}
		lsn := binary.BigEndian.Uint64(rec[0:8])
		n := binary.BigEndian.Uint32(rec[8:12])
		if lsn != expect || int64(recHeaderSize)+int64(n) > int64(len(rec)) {
			break
		}
		want := binary.BigEndian.Uint32(rec[12:16])
		crc := crc32.Update(0, crcTable, rec[0:12])
		crc = crc32.Update(crc, crcTable, rec[recHeaderSize:recHeaderSize+int(n)])
		if crc != want {
			break
		}
		m.last = lsn
		m.records++
		off += int64(recHeaderSize) + int64(n)
		expect++
	}
	return m, off, true, nil
}

// iterateSegment streams the intact records of a segment in order. A torn
// tail simply ends the iteration (Open already truncated it for live logs;
// the read-only Inspect/Dump paths tolerate it in place).
func iterateSegment(path string, fn func(lsn uint64, payload []byte) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if len(data) < headerSize || [8]byte(data[0:8]) != segMagic {
		return nil
	}
	off := int64(headerSize)
	expect := binary.BigEndian.Uint64(data[8:16])
	for {
		rec := data[off:]
		if len(rec) < recHeaderSize {
			return nil
		}
		lsn := binary.BigEndian.Uint64(rec[0:8])
		n := binary.BigEndian.Uint32(rec[8:12])
		if lsn != expect || int64(recHeaderSize)+int64(n) > int64(len(rec)) {
			return nil
		}
		want := binary.BigEndian.Uint32(rec[12:16])
		crc := crc32.Update(0, crcTable, rec[0:12])
		crc = crc32.Update(crc, crcTable, rec[recHeaderSize:recHeaderSize+int(n)])
		if crc != want {
			return nil
		}
		if err := fn(lsn, rec[recHeaderSize:recHeaderSize+int(n)]); err != nil {
			return err
		}
		off += int64(recHeaderSize) + int64(n)
		expect++
	}
}

// ---- directory helpers ----

func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("%020d%s", firstLSN, segSuffix)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := parseSegmentName(e.Name()); ok {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

func fileSize(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	return fi.Size(), nil
}

func readCheckpoint(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointName))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	fields := strings.Fields(string(data))
	if len(fields) != 2 || fields[0] != "deepdb-wal-checkpoint" {
		return 0, fmt.Errorf("wal: malformed checkpoint file in %s", dir)
	}
	lsn, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("wal: malformed checkpoint LSN: %w", err)
	}
	return lsn, nil
}

// writeCheckpoint persists the watermark atomically: temp file, fsync,
// rename, directory fsync — a crash leaves either the old or the new
// watermark, never a torn one.
func writeCheckpoint(dir string, lsn uint64) error {
	tmp := filepath.Join(dir, checkpointName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := fmt.Fprintf(f, "deepdb-wal-checkpoint %d\n", lsn); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, checkpointName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
