package wal

// inspect.go is the read-only surface behind `deepdb wal inspect|dump`:
// it examines a log directory without opening it for writing, so it is
// safe to point at the WAL of a running (or crashed) server. Torn tails
// are reported, not repaired.

import (
	"path/filepath"
)

// SegmentInfo describes one segment file as found on disk.
type SegmentInfo struct {
	Name      string `json:"name"`
	FirstLSN  uint64 `json:"first_lsn"`
	LastLSN   uint64 `json:"last_lsn"` // 0 when the segment holds no intact records
	Records   int    `json:"records"`
	SizeBytes int64  `json:"size_bytes"`
	// TornBytes is the length of a trailing torn/corrupt region (0 for a
	// clean segment); Open would truncate it on the last segment.
	TornBytes int64 `json:"torn_bytes,omitempty"`
	// HeaderOK reports whether the 16-byte segment header was valid.
	HeaderOK bool `json:"header_ok"`
}

// Info summarizes a log directory for `deepdb wal inspect`.
type Info struct {
	Dir           string        `json:"dir"`
	CheckpointLSN uint64        `json:"checkpoint_lsn"`
	LastLSN       uint64        `json:"last_lsn"`
	Records       int           `json:"records"`
	SizeBytes     int64         `json:"size_bytes"`
	Segments      []SegmentInfo `json:"segments"`
}

// Inspect examines the log directory read-only.
func Inspect(dir string) (Info, error) {
	info := Info{Dir: dir}
	ckpt, err := readCheckpoint(dir)
	if err != nil {
		return info, err
	}
	info.CheckpointLSN = ckpt
	names, err := listSegments(dir)
	if err != nil {
		return info, err
	}
	for _, name := range names {
		path := filepath.Join(dir, name)
		m, goodOff, hdrOK, err := scanSegment(path)
		if err != nil {
			return info, err
		}
		size, err := fileSize(path)
		if err != nil {
			return info, err
		}
		si := SegmentInfo{Name: name, FirstLSN: m.first, LastLSN: m.last,
			Records: m.records, SizeBytes: size, HeaderOK: hdrOK}
		if hdrOK && goodOff < size {
			si.TornBytes = size - goodOff
		}
		if !hdrOK {
			si.TornBytes = size
		}
		info.Records += m.records
		info.SizeBytes += size
		if m.last > info.LastLSN {
			info.LastLSN = m.last
		}
		info.Segments = append(info.Segments, si)
	}
	return info, nil
}

// Dump streams every intact record with LSN above after, in order, to fn —
// read-only, tolerating a torn tail. `deepdb wal dump` decodes the
// payloads; crash tests use it to learn which records survived a kill.
func Dump(dir string, after uint64, fn func(lsn uint64, payload []byte) error) error {
	names, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		err := iterateSegment(filepath.Join(dir, name), func(lsn uint64, payload []byte) error {
			if lsn <= after {
				return nil
			}
			return fn(lsn, payload)
		})
		if err != nil {
			return err
		}
	}
	return nil
}
