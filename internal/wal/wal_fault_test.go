package wal

import (
	"errors"
	"strings"
	"syscall"
	"testing"

	"repro/internal/fault"
)

// enableFault activates a fault schedule for one test. Fault-enabling
// tests share the process-global registry, so none of them call
// t.Parallel (the suite runs shuffled, not parallel, by default).
func enableFault(t *testing.T, spec string) *fault.Schedule {
	t.Helper()
	s, err := fault.Parse(spec)
	if err != nil {
		t.Fatalf("fault.Parse(%q): %v", spec, err)
	}
	fault.Enable(s)
	t.Cleanup(fault.Disable)
	return s
}

// TestChaosWALWriteError: an injected EIO on the record write must surface
// to the caller, never advance the LSN watermark, and leave the segment
// byte-identical to one that never saw the failed append.
func TestChaosWALWriteError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Durability: Sync})
	if err != nil {
		t.Fatal(err)
	}
	enableFault(t, "point=wal.append.write;kind=error;errno=EIO;after=3;count=1")

	appendN(t, l, 0, 3)
	_, err = l.Append([]byte("doomed"))
	if err == nil {
		t.Fatal("injected write error did not surface")
	}
	if !errors.Is(err, fault.ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want ErrInjected wrapping EIO", err)
	}
	if st := l.Stats(); st.LastLSN != 3 || st.Appended != 3 {
		t.Fatalf("watermark advanced past failure: LastLSN=%d Appended=%d, want 3/3", st.LastLSN, st.Appended)
	}

	// The failed append left no trace: the next one reuses its LSN.
	lsn, err := l.Append([]byte("record-0003"))
	if err != nil {
		t.Fatalf("append after injected failure: %v", err)
	}
	if lsn != 4 {
		t.Fatalf("post-failure lsn = %d, want 4", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{Durability: Sync})
	if err != nil {
		t.Fatalf("reopen after injected failure: %v", err)
	}
	defer l.Close()
	got := collect(t, l)
	if len(got) != 4 {
		t.Fatalf("replayed %d records, want 4", len(got))
	}
	if got[4] != "record-0003" {
		t.Fatalf("lsn 4 payload = %q, want %q", got[4], "record-0003")
	}
}

// TestChaosWALSyncENOSPC: a full disk at fsync time (Sync durability) must
// fail the append, roll the record back, and keep the log usable once
// space returns.
func TestChaosWALSyncENOSPC(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Durability: Sync})
	if err != nil {
		t.Fatal(err)
	}
	enableFault(t, "point=wal.append.sync;kind=disk-full;count=2")

	for i := 0; i < 2; i++ {
		_, err := l.Append([]byte("doomed"))
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("append %d: err = %v, want ENOSPC", i, err)
		}
	}
	if st := l.Stats(); st.LastLSN != 0 || st.Appended != 0 {
		t.Fatalf("watermark advanced on failed fsync: %+v", st)
	}

	// Disk "frees up" (rule exhausted): same LSN, clean log.
	appendN(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{Durability: Sync})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := collect(t, l); len(got) != 5 || got[1] != "record-0000" {
		t.Fatalf("replay after ENOSPC recovery = %v, want records 1..5", got)
	}
}

// TestChaosWALBatchedInlineSync: the Batched inline fsync (every SyncEvery
// appends) hits the same barrier — the append that triggers the failed
// sync is rolled back and re-appendable.
func TestChaosWALBatchedInlineSync(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Durability: Batched, SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	enableFault(t, "point=wal.append.sync;kind=error;errno=EIO;count=1")

	if _, err := l.Append([]byte("record-0000")); err != nil {
		t.Fatalf("append 1 (below SyncEvery) failed: %v", err)
	}
	_, err = l.Append([]byte("doomed"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("inline-sync append: err = %v, want EIO", err)
	}
	if st := l.Stats(); st.LastLSN != 1 {
		t.Fatalf("LastLSN = %d after failed inline sync, want 1", st.LastLSN)
	}
	lsn, err := l.Append([]byte("record-0001"))
	if err != nil || lsn != 2 {
		t.Fatalf("append after failed inline sync = (%d, %v), want (2, nil)", lsn, err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("explicit Sync after recovery: %v", err)
	}
}

// TestChaosWALTornWrite: a torn write (crash mid-record) wedges the log —
// every subsequent append fails fast — and reopening repairs the tail,
// replaying exactly the acked records.
func TestChaosWALTornWrite(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Durability: Sync})
	if err != nil {
		t.Fatal(err)
	}
	enableFault(t, "point=wal.append.write;kind=torn;bytes=9;after=2;count=1")

	appendN(t, l, 0, 2)
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn write err = %v, want ErrInjected", err)
	}
	// The log is wedged: partial bytes are on disk and only reopen repairs.
	if _, err := l.Append([]byte("after")); err == nil || !strings.Contains(err.Error(), "wedged") {
		t.Fatalf("append on wedged log = %v, want wedged error", err)
	}
	if err := l.Sync(); err == nil || !strings.Contains(err.Error(), "wedged") {
		t.Fatalf("Sync on wedged log = %v, want wedged error", err)
	}
	if st := l.Stats(); st.LastLSN != 2 {
		t.Fatalf("LastLSN = %d after torn write, want 2", st.LastLSN)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{Durability: Sync})
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer l.Close()
	got := collect(t, l)
	if len(got) != 2 || got[1] != "record-0000" || got[2] != "record-0001" {
		t.Fatalf("replay after torn-tail repair = %v, want records 1..2", got)
	}
	if lsn, err := l.Append([]byte("record-0002")); err != nil || lsn != 3 {
		t.Fatalf("append after repair = (%d, %v), want (3, nil)", lsn, err)
	}
}
