package shard

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests fail fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is in flight; its outcome decides
	// between reopening and closing.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-peer circuit breaker: `threshold` consecutive failures
// open it, fail-fasting every request for `cooldown`; after that a single
// probe request is let through (half-open) and its outcome either closes
// the breaker or re-opens it for another cooldown. A dead replica stops
// eating an RPC round-trip (or a retry ladder) per query — the router
// falls back to local evaluation immediately — while the periodic health
// prober keeps supplying probes so the breaker re-closes after heal even
// with no query traffic.
//
// A nil *Breaker is valid and never trips; all methods are nil-safe.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker (re-)opened
	probing  bool      // a half-open probe is in flight
}

// NewBreaker returns a closed breaker. Non-positive threshold or cooldown
// fall back to defaults (defaultBreakerThreshold / defaultBreakerCooldown).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. In the open state it starts
// returning true again once the cooldown has elapsed — but only for one
// request at a time (the half-open probe); a true return must be paired
// with a Success or Failure call.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful request, closing the breaker.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// Failure records a failed request. A failed half-open probe re-opens the
// breaker for a fresh cooldown; `threshold` consecutive failures while
// closed open it.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.fails = 0
		}
	default: // already open (e.g. a late in-flight failure): restamp
		b.openedAt = b.now()
	}
}

// State returns the current state (re-evaluating an elapsed cooldown as
// half-open would be a lie — the transition happens in Allow).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
