package shard

// remote.go is the process-replica face of a shard: an HTTP server over
// one Shard (evaluate, apply, flush, health) plus the client and the
// core.BatchEvaluator implementation the router plugs into its engine.
//
// The wire format is binary with IEEE-754 bit patterns for every float —
// predicate ranges routinely carry ±Inf (spn.FullRange), which JSON cannot
// represent. Correctness never depends on the replica: the router holds
// the full models locally and the evaluator falls back to the local member
// on any remote failure (connection error, replica at a different ops
// token, decode mismatch), so sharded-with-replicas execution stays
// bit-identical to single-process execution unconditionally. Replicas are
// an offload, not an availability risk.

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/ensemble"
	"repro/internal/rspn"
	"repro/internal/spn"
	"repro/internal/wal"
)

// maxEvalBody bounds /eval and /apply request bodies.
const maxEvalBody = 8 << 20

// ---- eval payload codec ----

// encodeEvalRequest frames one evaluation call: the shard-local member
// index, the ops token the caller's view was composed at, and the request
// batch.
func encodeEvalRequest(local int, ops uint64, reqs []spn.Request) []byte {
	var b bytes.Buffer
	putUvarint(&b, uint64(local))
	putUvarint(&b, ops)
	putUvarint(&b, uint64(len(reqs)))
	for _, req := range reqs {
		putUvarint(&b, uint64(len(req.Cols)))
		for _, c := range req.Cols {
			putUvarint(&b, uint64(c.Col))
			b.WriteByte(byte(c.Fn))
			var flags byte
			if c.ExcludeNull {
				flags |= 1
			}
			b.WriteByte(flags)
			putUvarint(&b, uint64(len(c.Ranges)))
			for _, r := range c.Ranges {
				putFloat(&b, r.Lo)
				putFloat(&b, r.Hi)
				var incl byte
				if r.LoIncl {
					incl |= 1
				}
				if r.HiIncl {
					incl |= 2
				}
				b.WriteByte(incl)
			}
		}
	}
	return b.Bytes()
}

func decodeEvalRequest(payload []byte) (local int, ops uint64, reqs []spn.Request, err error) {
	r := bytes.NewReader(payload)
	l, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, nil, err
	}
	ops, err = binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, nil, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, nil, err
	}
	if n > uint64(len(payload)) {
		return 0, 0, nil, fmt.Errorf("shard: eval request count %d exceeds payload", n)
	}
	reqs = make([]spn.Request, n)
	for i := range reqs {
		nc, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, 0, nil, err
		}
		if nc > uint64(len(payload)) {
			return 0, 0, nil, fmt.Errorf("shard: eval column count %d exceeds payload", nc)
		}
		cols := make([]spn.ColQuery, nc)
		for j := range cols {
			ci, err := binary.ReadUvarint(r)
			if err != nil {
				return 0, 0, nil, err
			}
			fn, err := r.ReadByte()
			if err != nil {
				return 0, 0, nil, err
			}
			flags, err := r.ReadByte()
			if err != nil {
				return 0, 0, nil, err
			}
			nr, err := binary.ReadUvarint(r)
			if err != nil {
				return 0, 0, nil, err
			}
			if nr > uint64(len(payload)) {
				return 0, 0, nil, fmt.Errorf("shard: eval range count %d exceeds payload", nr)
			}
			ranges := make([]spn.Range, nr)
			for k := range ranges {
				lo, err := getFloat(r)
				if err != nil {
					return 0, 0, nil, err
				}
				hi, err := getFloat(r)
				if err != nil {
					return 0, 0, nil, err
				}
				incl, err := r.ReadByte()
				if err != nil {
					return 0, 0, nil, err
				}
				ranges[k] = spn.Range{Lo: lo, Hi: hi, LoIncl: incl&1 != 0, HiIncl: incl&2 != 0}
			}
			if nr == 0 {
				ranges = nil
			}
			cols[j] = spn.ColQuery{Col: int(ci), Fn: spn.Fn(fn), Ranges: ranges, ExcludeNull: flags&1 != 0}
		}
		reqs[i] = spn.Request{Cols: cols}
	}
	return int(l), ops, reqs, nil
}

func putUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func putFloat(b *bytes.Buffer, f float64) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(f))
	b.Write(tmp[:])
}

func getFloat(r *bytes.Reader) (float64, error) {
	var tmp [8]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(tmp[:])), nil
}

// ---- server ----

// NewServer returns the HTTP interface of one shard replica:
//
//	POST /eval    binary request batch -> binary values (409 on ops skew)
//	POST /apply   wal-encoded mutations, applied synchronously
//	POST /flush   drain the update queue
//	GET  /healthz shard id, members, gen, ops, queue depth
func NewServer(s *Shard) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/eval", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEvalBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		local, wantOps, reqs, err := decodeEvalRequest(payload)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ens, _, ops := s.View()
		if ops != wantOps {
			// The caller's composed view and this replica disagree on
			// stream progress; answering would mix states. The router
			// falls back to its local model.
			http.Error(w, fmt.Sprintf("ops skew: have %d, want %d", ops, wantOps), http.StatusConflict)
			return
		}
		if local < 0 || local >= len(ens.RSPNs) {
			http.Error(w, fmt.Sprintf("no local member %d", local), http.StatusBadRequest)
			return
		}
		out := make([]float64, len(reqs))
		if err := ens.RSPNs[local].EvaluateRequests(reqs, out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		var b bytes.Buffer
		for _, v := range out {
			putFloat(&b, v)
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(b.Bytes()) //nolint:errcheck // best-effort response
	})
	mux.HandleFunc("/apply", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEvalBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		muts, err := wal.DecodeMutations(payload)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.ApplySync(muts); err != nil {
			// Per-mutation failures still advanced ops; report them without
			// failing the replication stream.
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintln(w, err.Error())
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/flush", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if err := s.Flush(r.Context()); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "shard %d members %v gen %d ops %d queue %d\n",
			st.ID, st.Members, st.Gen, st.Ops, st.Queue.QueueDepth)
	})
	return mux
}

// ---- client ----

// Client talks to one shard replica server.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the replica at base (e.g.
// "http://127.0.0.1:9301").
func NewClient(base string) *Client {
	return &Client{base: base, hc: &http.Client{Timeout: 10 * time.Second}}
}

// Base returns the replica's base URL.
func (c *Client) Base() string { return c.base }

// Eval answers the request batch on the replica's local member, filling
// out. Any transport, status or framing problem is an error — the caller
// falls back to its local model.
func (c *Client) Eval(ctx context.Context, local int, ops uint64, reqs []spn.Request, out []float64) error {
	body := encodeEvalRequest(local, ops, reqs)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/eval", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("shard eval: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, int64(8*len(out))+1))
	if err != nil {
		return err
	}
	if len(raw) != 8*len(out) {
		return fmt.Errorf("shard eval: got %d bytes, want %d", len(raw), 8*len(out))
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(raw[8*i:]))
	}
	return nil
}

// Apply replicates one mutation group to the replica synchronously.
func (c *Client) Apply(ctx context.Context, muts []ensemble.Mutation) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/apply",
		bytes.NewReader(wal.EncodeMutations(muts)))
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("shard apply: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// ---- router-side evaluator ----

// RemoteEvaluator implements core.BatchEvaluator over a set of replica
// bindings: members bound to a replica are evaluated there, everything
// else — and every remote failure — on the local model. Bindings are
// immutable after construction (the router builds a fresh evaluator per
// composed view), so concurrent evaluation chunks need no locking.
type RemoteEvaluator struct {
	refs map[*rspn.RSPN]remoteRef
	hits atomic.Uint64
	miss atomic.Uint64
}

type remoteRef struct {
	c     *Client
	local int
	ops   uint64
}

// NewRemoteEvaluator returns an evaluator with no bindings.
func NewRemoteEvaluator() *RemoteEvaluator {
	return &RemoteEvaluator{refs: map[*rspn.RSPN]remoteRef{}}
}

// Bind routes r to the replica at c, as that replica's local member index,
// valid for views composed at the given ops token.
func (e *RemoteEvaluator) Bind(r *rspn.RSPN, c *Client, local int, ops uint64) {
	e.refs[r] = remoteRef{c: c, local: local, ops: ops}
}

// Hits counts chunks answered remotely; Fallbacks counts chunks that fell
// back to the local model after a remote failure.
func (e *RemoteEvaluator) Hits() uint64      { return e.hits.Load() }
func (e *RemoteEvaluator) Fallbacks() uint64 { return e.miss.Load() }

// EvaluateRSPN implements core.BatchEvaluator.
func (e *RemoteEvaluator) EvaluateRSPN(ctx context.Context, r *rspn.RSPN, reqs []spn.Request, out []float64) error {
	if ref, ok := e.refs[r]; ok {
		if err := ref.c.Eval(ctx, ref.local, ref.ops, reqs, out); err == nil {
			e.hits.Add(1)
			return nil
		}
		e.miss.Add(1)
	}
	return r.EvaluateRequests(reqs, out)
}
