package shard

// remote.go is the process-replica face of a shard: an HTTP server over
// one Shard (evaluate, apply, flush, health) plus the client and the
// core.BatchEvaluator implementation the router plugs into its engine.
//
// The wire format is binary with IEEE-754 bit patterns for every float —
// predicate ranges routinely carry ±Inf (spn.FullRange), which JSON cannot
// represent. Correctness never depends on the replica: the router holds
// the full models locally and the evaluator falls back to the local member
// on any remote failure (connection error, replica at a different ops
// token, decode mismatch), so sharded-with-replicas execution stays
// bit-identical to single-process execution unconditionally. Replicas are
// an offload, not an availability risk.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ensemble"
	"repro/internal/fault"
	"repro/internal/rspn"
	"repro/internal/spn"
	"repro/internal/wal"
)

// maxEvalBody bounds /eval and /apply request bodies.
const maxEvalBody = 8 << 20

// ---- eval payload codec ----

// encodeEvalRequest frames one evaluation call: the shard-local member
// index, the ops token the caller's view was composed at, and the request
// batch.
func encodeEvalRequest(local int, ops uint64, reqs []spn.Request) []byte {
	var b bytes.Buffer
	putUvarint(&b, uint64(local))
	putUvarint(&b, ops)
	putUvarint(&b, uint64(len(reqs)))
	for _, req := range reqs {
		putUvarint(&b, uint64(len(req.Cols)))
		for _, c := range req.Cols {
			putUvarint(&b, uint64(c.Col))
			b.WriteByte(byte(c.Fn))
			var flags byte
			if c.ExcludeNull {
				flags |= 1
			}
			b.WriteByte(flags)
			putUvarint(&b, uint64(len(c.Ranges)))
			for _, r := range c.Ranges {
				putFloat(&b, r.Lo)
				putFloat(&b, r.Hi)
				var incl byte
				if r.LoIncl {
					incl |= 1
				}
				if r.HiIncl {
					incl |= 2
				}
				b.WriteByte(incl)
			}
		}
	}
	return b.Bytes()
}

func decodeEvalRequest(payload []byte) (local int, ops uint64, reqs []spn.Request, err error) {
	r := bytes.NewReader(payload)
	l, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, nil, err
	}
	ops, err = binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, nil, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, nil, err
	}
	if n > uint64(len(payload)) {
		return 0, 0, nil, fmt.Errorf("shard: eval request count %d exceeds payload", n)
	}
	reqs = make([]spn.Request, n)
	for i := range reqs {
		nc, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, 0, nil, err
		}
		if nc > uint64(len(payload)) {
			return 0, 0, nil, fmt.Errorf("shard: eval column count %d exceeds payload", nc)
		}
		cols := make([]spn.ColQuery, nc)
		for j := range cols {
			ci, err := binary.ReadUvarint(r)
			if err != nil {
				return 0, 0, nil, err
			}
			fn, err := r.ReadByte()
			if err != nil {
				return 0, 0, nil, err
			}
			flags, err := r.ReadByte()
			if err != nil {
				return 0, 0, nil, err
			}
			nr, err := binary.ReadUvarint(r)
			if err != nil {
				return 0, 0, nil, err
			}
			if nr > uint64(len(payload)) {
				return 0, 0, nil, fmt.Errorf("shard: eval range count %d exceeds payload", nr)
			}
			ranges := make([]spn.Range, nr)
			for k := range ranges {
				lo, err := getFloat(r)
				if err != nil {
					return 0, 0, nil, err
				}
				hi, err := getFloat(r)
				if err != nil {
					return 0, 0, nil, err
				}
				incl, err := r.ReadByte()
				if err != nil {
					return 0, 0, nil, err
				}
				ranges[k] = spn.Range{Lo: lo, Hi: hi, LoIncl: incl&1 != 0, HiIncl: incl&2 != 0}
			}
			if nr == 0 {
				ranges = nil
			}
			cols[j] = spn.ColQuery{Col: int(ci), Fn: spn.Fn(fn), Ranges: ranges, ExcludeNull: flags&1 != 0}
		}
		reqs[i] = spn.Request{Cols: cols}
	}
	return int(l), ops, reqs, nil
}

func putUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func putFloat(b *bytes.Buffer, f float64) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(f))
	b.Write(tmp[:])
}

func getFloat(r *bytes.Reader) (float64, error) {
	var tmp [8]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(tmp[:])), nil
}

// ---- server ----

// NewServer returns the HTTP interface of one shard replica:
//
//	POST /eval    binary request batch -> binary values (409 on ops skew)
//	POST /apply   wal-encoded mutations, applied synchronously
//	POST /flush   drain the update queue
//	GET  /healthz shard id, members, gen, ops, queue depth
func NewServer(s *Shard) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/eval", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEvalBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		local, wantOps, reqs, err := decodeEvalRequest(payload)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ens, _, ops := s.View()
		if ops != wantOps {
			// The caller's composed view and this replica disagree on
			// stream progress; answering would mix states. The router
			// falls back to its local model.
			http.Error(w, fmt.Sprintf("ops skew: have %d, want %d", ops, wantOps), http.StatusConflict)
			return
		}
		if local < 0 || local >= len(ens.RSPNs) {
			http.Error(w, fmt.Sprintf("no local member %d", local), http.StatusBadRequest)
			return
		}
		out := make([]float64, len(reqs))
		if err := ens.RSPNs[local].EvaluateRequests(reqs, out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		var b bytes.Buffer
		for _, v := range out {
			putFloat(&b, v)
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(b.Bytes()) //nolint:errcheck // best-effort response
	})
	mux.HandleFunc("/apply", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEvalBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		muts, err := wal.DecodeMutations(payload)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.ApplySync(muts); err != nil {
			// Per-mutation failures still advanced ops; report them without
			// failing the replication stream.
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintln(w, err.Error())
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/flush", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if err := s.Flush(r.Context()); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "shard %d members %v gen %d ops %d queue %d\n",
			st.ID, st.Members, st.Gen, st.Ops, st.Queue.QueueDepth)
	})
	return mux
}

// ---- client ----

// The client's retry/breaker/timeout knobs live here as named constants —
// the hardtimeout analyzer enforces that the rest of the tree derives
// timeouts from the request context or from named configuration instead
// of scattering literals.
const (
	// defaultAttemptTimeout bounds a single attempt when the request ctx
	// carries no deadline (it preserves the former hardcoded 10s client
	// timeout as the no-deadline fallback).
	defaultAttemptTimeout = 10 * time.Second
	// defaultEvalAttempts is the per-request attempt budget for /eval.
	defaultEvalAttempts = 3
	// defaultBaseBackoff / defaultMaxBackoff bound the jittered
	// exponential backoff between attempts.
	defaultBaseBackoff = 25 * time.Millisecond
	defaultMaxBackoff  = time.Second
	// defaultBreakerThreshold consecutive failures open the per-peer
	// breaker for defaultBreakerCooldown.
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 2 * time.Second
)

// errCircuitOpen fails a request fast while the peer's breaker is open.
var errCircuitOpen = errors.New("shard: peer circuit open")

// statusError carries the HTTP status of a non-2xx reply so the retry
// loop can classify it: 5xx and 429 are transient (the replica or its
// queue may recover), everything else — notably 409 ops skew and 400
// malformed request — will not change on retry.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// retryable reports whether a failed attempt is worth repeating.
// Transport-level errors (connection refused, reset, attempt timeout) are
// retryable; HTTP replies are retryable only when the status is 5xx/429.
func retryable(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500 || se.code == http.StatusTooManyRequests
	}
	return true
}

// Client talks to one shard replica server. A logical request is gated by
// a per-peer circuit breaker, retried with jittered exponential backoff,
// and each attempt runs under a timeout derived from the caller's context
// deadline (the remaining budget is split across the attempts left, so an
// early slow attempt cannot starve the retries); defaultAttemptTimeout
// applies only when the caller brought no deadline.
type Client struct {
	base string
	hc   *http.Client

	attempts       int
	baseBackoff    time.Duration
	maxBackoff     time.Duration
	attemptTimeout time.Duration
	br             *Breaker

	rng     atomic.Uint64 // backoff jitter stream
	healthy atomic.Bool
	ok      atomic.Uint64
	failed  atomic.Uint64

	errMu   sync.Mutex
	lastErr string
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithRetry sets the per-request attempt budget and the base backoff
// between attempts (non-positive values keep the defaults).
func WithRetry(attempts int, base time.Duration) ClientOption {
	return func(c *Client) {
		if attempts > 0 {
			c.attempts = attempts
		}
		if base > 0 {
			c.baseBackoff = base
		}
	}
}

// WithBreaker configures the peer's circuit breaker.
func WithBreaker(threshold int, cooldown time.Duration) ClientOption {
	return func(c *Client) { c.br = NewBreaker(threshold, cooldown) }
}

// WithAttemptTimeout sets the per-attempt timeout used when the request
// context has no deadline.
func WithAttemptTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.attemptTimeout = d
		}
	}
}

// NewClient returns a client for the replica at base (e.g.
// "http://127.0.0.1:9301").
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base:           base,
		hc:             &http.Client{},
		attempts:       defaultEvalAttempts,
		baseBackoff:    defaultBaseBackoff,
		maxBackoff:     defaultMaxBackoff,
		attemptTimeout: defaultAttemptTimeout,
		br:             NewBreaker(defaultBreakerThreshold, defaultBreakerCooldown),
	}
	for _, o := range opts {
		o(c)
	}
	c.healthy.Store(true)
	c.rng.Store(uint64(crc32.ChecksumIEEE([]byte(base))) | 1)
	return c
}

// Base returns the replica's base URL.
func (c *Client) Base() string { return c.base }

// Healthy reports the outcome of the most recent request or probe.
func (c *Client) Healthy() bool { return c.healthy.Load() }

// BreakerState returns the peer breaker's current position.
func (c *Client) BreakerState() BreakerState { return c.br.State() }

// OK and Failed count completed logical requests and probes by outcome.
func (c *Client) OK() uint64     { return c.ok.Load() }
func (c *Client) Failed() uint64 { return c.failed.Load() }

// LastError renders the most recent failure ("" if none yet).
func (c *Client) LastError() string {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.lastErr
}

// Eval answers the request batch on the replica's local member, filling
// out. Any transport, status or framing problem — after the retry budget
// is spent — is an error; the caller falls back to its local model.
func (c *Client) Eval(ctx context.Context, local int, ops uint64, reqs []spn.Request, out []float64) error {
	body := encodeEvalRequest(local, ops, reqs)
	return c.do(ctx, fault.ShardEval, "/eval", body, c.attempts, func(resp *http.Response) error {
		if resp.StatusCode != http.StatusOK {
			return statusErr("eval", resp)
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, int64(8*len(out))+1))
		if err != nil {
			return err
		}
		if len(raw) != 8*len(out) {
			return fmt.Errorf("shard eval: got %d bytes, want %d", len(raw), 8*len(out))
		}
		for i := range out {
			out[i] = math.Float64frombits(binary.BigEndian.Uint64(raw[8*i:]))
		}
		return nil
	})
}

// Apply replicates one mutation group to the replica synchronously. It is
// a single attempt (retrying a broadcast cannot repair ordering — a
// missed apply desyncs the replica's ops token, which the /eval 409 path
// and local fallback already absorb) but still breaker-gated and bounded.
func (c *Client) Apply(ctx context.Context, muts []ensemble.Mutation) error {
	return c.do(ctx, fault.ShardApply, "/apply", wal.EncodeMutations(muts), 1, func(resp *http.Response) error {
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			return statusErr("apply", resp)
		}
		return nil
	})
}

// Probe checks the replica's /healthz and feeds the outcome into the
// breaker and the health flag. It deliberately bypasses the breaker's
// Allow gate — probing a peer whose breaker is open is the point: the
// periodic prober is what re-closes the breaker after heal (and keeps it
// open while the peer stays dead) without spending query traffic on
// half-open experiments.
func (c *Client) Probe(ctx context.Context) error {
	actx, cancel := c.attemptCtx(ctx, 1)
	defer cancel()
	err := fault.CheckCtx(actx, fault.ShardProbe)
	if err == nil {
		var req *http.Request
		req, err = http.NewRequestWithContext(actx, http.MethodGet, c.base+"/healthz", nil)
		if err == nil {
			var resp *http.Response
			resp, err = c.hc.Do(req)
			if err == nil {
				_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				if resp.StatusCode != http.StatusOK {
					err = statusErr("healthz", resp)
				}
				resp.Body.Close()
			}
		}
	}
	if err != nil {
		c.br.Failure()
		c.recordFailure(err)
		return err
	}
	c.br.Success()
	c.recordSuccess()
	return nil
}

// do runs one logical request: breaker gate, up to `attempts` tries with
// jittered exponential backoff, each attempt under a context-derived
// timeout and visible to the fault registry at pt.
func (c *Client) do(ctx context.Context, pt fault.Point, path string, body []byte, attempts int, handle func(*http.Response) error) error {
	if !c.br.Allow() {
		// Fail fast without touching the breaker or the health counters:
		// nothing new was learned about the peer.
		return fmt.Errorf("%w: %s", errCircuitOpen, c.base)
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleepBackoff(ctx, attempt); err != nil {
				lastErr = err
				break
			}
		}
		err := c.attempt(ctx, pt, path, body, attempts-attempt, handle)
		if err == nil {
			c.br.Success()
			c.recordSuccess()
			return nil
		}
		lastErr = err
		if !retryable(err) || ctx.Err() != nil {
			break
		}
	}
	c.br.Failure()
	c.recordFailure(lastErr)
	return lastErr
}

func (c *Client) attempt(ctx context.Context, pt fault.Point, path string, body []byte, attemptsLeft int, handle func(*http.Response) error) error {
	actx, cancel := c.attemptCtx(ctx, attemptsLeft)
	defer cancel()
	if err := fault.CheckCtx(actx, pt); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return handle(resp)
}

// attemptCtx derives one attempt's context: the caller's remaining
// deadline budget split evenly across the attempts left, falling back to
// the configured per-attempt timeout when the caller brought no deadline.
func (c *Client) attemptCtx(ctx context.Context, attemptsLeft int) (context.Context, context.CancelFunc) {
	timeout := c.attemptTimeout
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			per := rem / time.Duration(attemptsLeft)
			if timeout <= 0 || per < timeout {
				timeout = per
			}
		}
	}
	if timeout <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, timeout)
}

// sleepBackoff waits the jittered exponential backoff before retry
// `attempt` (>= 1), respecting ctx cancellation. Full jitter — uniform in
// (0, cap] — decorrelates peers retrying after a shared failure event.
func (c *Client) sleepBackoff(ctx context.Context, attempt int) error {
	d := c.baseBackoff << (attempt - 1)
	if d <= 0 || d > c.maxBackoff {
		d = c.maxBackoff
	}
	d = time.Duration(1 + uint64(float64(d)*c.jitter()))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jitter draws the next [0,1) value from the client's splitmix64 stream.
func (c *Client) jitter() float64 {
	x := c.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

func (c *Client) recordSuccess() {
	c.ok.Add(1)
	c.healthy.Store(true)
}

func (c *Client) recordFailure(err error) {
	c.failed.Add(1)
	c.healthy.Store(false)
	if err == nil {
		return
	}
	c.errMu.Lock()
	c.lastErr = err.Error()
	c.errMu.Unlock()
}

func statusErr(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	return &statusError{code: resp.StatusCode, msg: fmt.Sprintf("shard %s: %s: %s", op, resp.Status, bytes.TrimSpace(msg))}
}

// ---- router-side evaluator ----

// RemoteEvaluator implements core.BatchEvaluator over a set of replica
// bindings: members bound to a replica are evaluated there, everything
// else — and every remote failure — on the local model. Bindings are
// immutable after construction (the router builds a fresh evaluator per
// composed view), so concurrent evaluation chunks need no locking.
type RemoteEvaluator struct {
	refs map[*rspn.RSPN]remoteRef
	hits atomic.Uint64
	miss atomic.Uint64
}

type remoteRef struct {
	c     *Client
	local int
	ops   uint64
}

// NewRemoteEvaluator returns an evaluator with no bindings.
func NewRemoteEvaluator() *RemoteEvaluator {
	return &RemoteEvaluator{refs: map[*rspn.RSPN]remoteRef{}}
}

// Bind routes r to the replica at c, as that replica's local member index,
// valid for views composed at the given ops token.
func (e *RemoteEvaluator) Bind(r *rspn.RSPN, c *Client, local int, ops uint64) {
	e.refs[r] = remoteRef{c: c, local: local, ops: ops}
}

// Hits counts chunks answered remotely; Fallbacks counts chunks that fell
// back to the local model after a remote failure.
func (e *RemoteEvaluator) Hits() uint64      { return e.hits.Load() }
func (e *RemoteEvaluator) Fallbacks() uint64 { return e.miss.Load() }

// EvaluateRSPN implements core.BatchEvaluator.
func (e *RemoteEvaluator) EvaluateRSPN(ctx context.Context, r *rspn.RSPN, reqs []spn.Request, out []float64) error {
	if ref, ok := e.refs[r]; ok {
		if err := ref.c.Eval(ctx, ref.local, ref.ops, reqs, out); err == nil {
			e.hits.Add(1)
			return nil
		}
		e.miss.Add(1)
	}
	return r.EvaluateRequests(reqs, out)
}
