package shard

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/spn"
)

// TestEvalCodecRoundTrip: the binary /eval framing must survive every
// request shape the batcher produces, including the open-ended ranges
// (±Inf bounds) that range predicates compile to — which is why the codec
// ships raw Float64bits rather than a textual float encoding.
func TestEvalCodecRoundTrip(t *testing.T) {
	reqs := []spn.Request{
		{Cols: []spn.ColQuery{
			{Col: 0, Fn: spn.FnOne, Ranges: []spn.Range{{Lo: math.Inf(-1), Hi: 40, HiIncl: true}}},
			{Col: 2, Fn: spn.FnIdent, Ranges: []spn.Range{{Lo: 50, Hi: math.Inf(1), LoIncl: true}}},
		}},
		{Cols: []spn.ColQuery{
			{Col: 1, Fn: spn.FnSquare, ExcludeNull: true,
				Ranges: []spn.Range{{Lo: 0, Hi: 1, LoIncl: true, HiIncl: false}, {Lo: 7, Hi: 7, LoIncl: true, HiIncl: true}}},
		}},
		{Cols: []spn.ColQuery{{Col: 3, Fn: spn.FnInv}}},
		{},
	}
	payload := encodeEvalRequest(5, 123456789, reqs)
	local, ops, got, err := decodeEvalRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if local != 5 || ops != 123456789 {
		t.Fatalf("header (local %d, ops %d), want (5, 123456789)", local, ops)
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d requests, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		// Normalize: an empty column list may decode as nil.
		if len(reqs[i].Cols) == 0 && len(got[i].Cols) == 0 {
			continue
		}
		if !reflect.DeepEqual(reqs[i], got[i]) {
			t.Fatalf("request %d changed over the wire:\n  sent %+v\n  got  %+v", i, reqs[i], got[i])
		}
	}
}

func TestEvalCodecRejectsCorruptPayloads(t *testing.T) {
	payload := encodeEvalRequest(0, 7, []spn.Request{
		{Cols: []spn.ColQuery{{Col: 0, Fn: spn.FnOne, Ranges: []spn.Range{{Lo: 1, Hi: 2}}}}},
	})
	for _, n := range []int{0, 1, len(payload) / 2, len(payload) - 1} {
		if _, _, _, err := decodeEvalRequest(payload[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
}
