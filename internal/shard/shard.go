package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ensemble"
	"repro/internal/pipeline"
	"repro/internal/wal"
)

// ErrQueueFull reports a shed mutation group: the shard's update queue had
// no free slot and the caller asked not to block.
var ErrQueueFull = pipeline.ErrQueueFull

// snapshot is one immutable published state of a shard: its sub-ensemble,
// a publication counter, and the cumulative mutation count. Like the
// facade's snapshots it is never mutated after publication — the applier
// clones and publishes a successor — so readers (the router's compose
// path, remote /eval handlers) use it without coordination.
type snapshot struct {
	ens *ensemble.Ensemble
	gen uint64
	// ops counts every mutation this shard has processed, applied or
	// failed. Failures are deterministic under an identical broadcast
	// stream, so equal ops across shards means equal progress — the
	// router's alignment token for composing a consistent merged view.
	ops uint64
}

// Config sizes one shard's update machinery.
type Config struct {
	// QueueSize and MaxBatch mirror the facade pipeline's bounds
	// (defaults 1024 / 256).
	QueueSize int
	MaxBatch  int
	// WALDir, when set, gives the shard a durable log of its own; existing
	// records past the checkpoint are replayed on construction.
	WALDir     string
	Durability wal.Durability
	// CloseTimeout bounds the drain on Close (<= 0 waits without bound).
	CloseTimeout time.Duration
}

// Group is one queue item: the mutations of one caller-level operation,
// applied as one indivisible unit, plus the shard-WAL position they were
// logged at (0 without a WAL).
type Group struct {
	Muts []ensemble.Mutation
	lsn  uint64
}

// Shard owns one partition of the ensemble: a sub-ensemble served through
// an atomic snapshot pointer, an update pipeline applying broadcast
// mutations to copy-on-write clones, and optionally its own WAL. It is the
// facade DB's apply machinery in miniature, minus the query path — queries
// run on the router's composed view (or reach the shard through the remote
// /eval interface).
type Shard struct {
	id      int
	members []int
	cfg     Config

	// snap is the current published snapshot; stored only by newShard and
	// publishLocked (the same discipline deepdb-lint enforces on the
	// facade).
	snap atomic.Pointer[snapshot]

	// applyMu serializes apply+publish (the applier, ApplySync, Publish).
	applyMu sync.Mutex

	pipeMu sync.Mutex
	pipe   *pipeline.Pipeline[Group]
	closed bool

	walMu    sync.Mutex
	wal      *wal.Log
	applyLSN atomic.Uint64
}

// New builds the shard over the given members (global indices into the
// full ensemble) and replays its WAL if one is configured.
func New(id int, members []int, full *ensemble.Ensemble, cfg Config) (*Shard, error) {
	return newShard(id, members, full, cfg)
}

func newShard(id int, members []int, full *ensemble.Ensemble, cfg Config) (*Shard, error) {
	sub, err := full.Subset(members)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	if cfg.QueueSize < 1 {
		cfg.QueueSize = 1024
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 256
	}
	s := &Shard{id: id, members: append([]int(nil), members...), cfg: cfg}
	s.snap.Store(&snapshot{ens: sub})
	if cfg.WALDir != "" {
		if err := s.openWAL(); err != nil {
			return nil, fmt.Errorf("shard %d: %w", id, err)
		}
	}
	return s, nil
}

// openWAL opens the shard's log and replays every record past the
// checkpoint, batching like the applier. Per-mutation apply errors are
// dropped (deferred-async semantics, as in the facade); decode failures
// abort.
func (s *Shard) openWAL() error {
	l, err := wal.Open(s.cfg.WALDir, wal.Options{Durability: s.cfg.Durability})
	if err != nil {
		return err
	}
	var pending []ensemble.Mutation
	groups := 0
	var last uint64
	flush := func() {
		if len(pending) == 0 {
			return
		}
		s.applyMu.Lock()
		s.applyLocked(pending) //nolint:errcheck // deferred-async semantics
		s.storeApplyLSN(last)
		s.applyMu.Unlock()
		pending, groups = pending[:0], 0
	}
	rerr := l.Replay(func(lsn uint64, payload []byte) error {
		muts, err := wal.DecodeMutations(payload)
		if err != nil {
			return err
		}
		pending = append(pending, muts...)
		groups++
		last = lsn
		if groups >= s.cfg.MaxBatch {
			flush()
		}
		return nil
	})
	if rerr != nil {
		l.Close() //nolint:errcheck // the open itself failed
		return rerr
	}
	flush()
	s.wal = l
	return nil
}

// ID returns the shard's index in the partition.
func (s *Shard) ID() int { return s.id }

// Members returns the shard's global member indices (sorted; do not
// mutate).
func (s *Shard) Members() []int { return s.members }

// View returns the current published state: the sub-ensemble, the
// publication counter and the alignment token.
func (s *Shard) View() (ens *ensemble.Ensemble, gen, ops uint64) {
	sn := s.snap.Load()
	return sn.ens, sn.gen, sn.ops
}

// publishLocked publishes the next snapshot. Callers hold applyMu.
func (s *Shard) publishLocked(ens *ensemble.Ensemble, ops uint64) {
	cur := s.snap.Load()
	s.snap.Store(&snapshot{ens: ens, gen: cur.gen + 1, ops: ops})
}

// applyLocked clones the touched state, applies the batch and publishes.
// The snapshot is published even when nothing applied — ops must advance
// by the processed count either way, or shards whose streams contain the
// same failing mutation would never realign. Callers hold applyMu.
func (s *Shard) applyLocked(muts []ensemble.Mutation) error {
	cur := s.snap.Load()
	next := cur.ens.CloneForUpdate(muts)
	applied, err := next.Apply(muts)
	if applied == 0 {
		// Nothing changed: keep serving the current ensemble (the clone
		// would be bit-identical) but still advance ops.
		next = cur.ens
	}
	s.publishLocked(next, cur.ops+uint64(len(muts)))
	return err
}

func (s *Shard) storeApplyLSN(lsn uint64) {
	for {
		cur := s.applyLSN.Load()
		if lsn <= cur || s.applyLSN.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// pipeline lazily starts the background applier.
func (s *Shard) pipeline() (*pipeline.Pipeline[Group], error) {
	s.pipeMu.Lock()
	defer s.pipeMu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("shard %d: closed", s.id)
	}
	if s.pipe == nil {
		s.pipe = pipeline.New(s.cfg.QueueSize, s.cfg.MaxBatch, func(groups []Group) error {
			n := 0
			var last uint64
			for _, g := range groups {
				n += len(g.Muts)
				if g.lsn > last {
					last = g.lsn
				}
			}
			muts := make([]ensemble.Mutation, 0, n)
			for _, g := range groups {
				muts = append(muts, g.Muts...)
			}
			s.applyMu.Lock()
			err := s.applyLocked(muts)
			s.storeApplyLSN(last)
			s.applyMu.Unlock()
			return err
		})
	}
	return s.pipe, nil
}

// HasCapacity reports whether the update queue has a free slot — the
// router's admission check before a broadcast.
func (s *Shard) HasCapacity() bool {
	pipe, err := s.pipeline()
	if err != nil {
		return false
	}
	return pipe.HasCapacity()
}

// Enqueue logs (when a WAL is attached) and queues one mutation group,
// blocking when the queue is full. Append and enqueue happen under one
// lock so LSN order equals apply order.
func (s *Shard) Enqueue(muts []ensemble.Mutation) error {
	pipe, err := s.pipeline()
	if err != nil {
		return err
	}
	if s.wal == nil {
		return pipe.Enqueue(Group{Muts: muts})
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	lsn, err := s.wal.Append(wal.EncodeMutations(muts))
	if err != nil {
		return err
	}
	return pipe.Enqueue(Group{Muts: muts, lsn: lsn})
}

// TryEnqueue is Enqueue that sheds with ErrQueueFull instead of blocking.
// With a WAL, capacity is checked before the append — a 429'd group must
// not linger in the log, or replay would apply a mutation the client was
// told to retry.
func (s *Shard) TryEnqueue(muts []ensemble.Mutation) error {
	pipe, err := s.pipeline()
	if err != nil {
		return err
	}
	if s.wal == nil {
		return pipe.TryEnqueue(Group{Muts: muts})
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if !pipe.HasCapacity() {
		return ErrQueueFull
	}
	lsn, err := s.wal.Append(wal.EncodeMutations(muts))
	if err != nil {
		return err
	}
	// The slot checked above can only have been taken by a Flush barrier
	// (mutation producers also hold walMu), so this blocks at most one
	// apply cycle.
	return pipe.Enqueue(Group{Muts: muts, lsn: lsn})
}

// Log durably appends one mutation group to the shard's WAL without
// queueing it, returning the assigned LSN (0 when the shard has no WAL).
// Paired with EnqueueLogged it lets the router split a broadcast into a
// log-everywhere phase and an enqueue-everywhere phase, so a WAL failure
// on shard k surfaces before any shard has been mutated. Callers must
// serialize Log/EnqueueLogged pairs across producers (the router's
// broadcast lock does) — the shard's own walMu only orders the individual
// calls.
func (s *Shard) Log(muts []ensemble.Mutation) (uint64, error) {
	if s.wal == nil {
		return 0, nil
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	return s.wal.Append(wal.EncodeMutations(muts))
}

// EnqueueLogged queues a group previously appended by Log (lsn 0 for
// WAL-less shards), blocking when the queue is full. See Log for the
// serialization contract.
func (s *Shard) EnqueueLogged(muts []ensemble.Mutation, lsn uint64) error {
	pipe, err := s.pipeline()
	if err != nil {
		return err
	}
	return pipe.Enqueue(Group{Muts: muts, lsn: lsn})
}

// ApplySync logs and applies one group before returning — the remote
// /apply path, which keeps a replica in lockstep with the router's
// broadcast order (the router serializes broadcasts, so arrival order is
// stream order).
func (s *Shard) ApplySync(muts []ensemble.Mutation) error {
	var lsn uint64
	if s.wal != nil {
		s.walMu.Lock()
		defer s.walMu.Unlock()
		l, err := s.wal.Append(wal.EncodeMutations(muts))
		if err != nil {
			return err
		}
		lsn = l
	}
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	err := s.applyLocked(muts)
	s.storeApplyLSN(lsn)
	return err
}

// Publish swaps in a reloaded sub-ensemble through the normal publication
// path. ops is preserved: a model swap is not stream progress, and keeping
// the token lets the router hold its previous composed view until every
// shard has swapped — readers see all-old or all-new, never a mix.
func (s *Shard) Publish(ens *ensemble.Ensemble) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	cur := s.snap.Load()
	s.publishLocked(ens, cur.ops)
}

// Checkpoint truncates the shard's WAL at the given LSN — records at or
// below it are covered by a persisted artifact and must not replay again.
// No-op without a WAL.
func (s *Shard) Checkpoint(lsn uint64) error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Checkpoint(lsn)
}

// AppliedLSN returns the apply watermark (0 without a WAL).
func (s *Shard) AppliedLSN() uint64 { return s.applyLSN.Load() }

// Flush blocks until every group enqueued before the call has been applied
// and published, then reports the first deferred apply error.
func (s *Shard) Flush(ctx context.Context) error {
	s.pipeMu.Lock()
	pipe := s.pipe
	s.pipeMu.Unlock()
	if pipe == nil {
		return nil
	}
	return pipe.Flush(ctx)
}

// Close drains the pipeline (bounded by Config.CloseTimeout) and closes
// the WAL. Idempotent; the published snapshot stays readable.
func (s *Shard) Close() error {
	s.pipeMu.Lock()
	if s.closed {
		s.pipeMu.Unlock()
		return nil
	}
	s.closed = true
	pipe := s.pipe
	s.pipeMu.Unlock()
	var err error
	if pipe != nil {
		err = pipe.CloseTimeout(s.cfg.CloseTimeout)
	}
	if s.wal != nil {
		if werr := s.wal.Close(); err == nil {
			err = werr
		}
	}
	return err
}

// Stats is a point-in-time health view of one shard.
type Stats struct {
	ID      int
	Members []int
	Gen     uint64
	Ops     uint64
	Queue   pipeline.Stats
	// WALAppliedLSN is the apply watermark (0 without a WAL); WAL carries
	// the log's own counters when one is attached.
	WALAppliedLSN uint64
	WAL           *wal.Stats
}

// Stats reports the shard's counters.
func (s *Shard) Stats() Stats {
	_, gen, ops := s.View()
	out := Stats{ID: s.id, Members: s.members, Gen: gen, Ops: ops}
	s.pipeMu.Lock()
	pipe := s.pipe
	s.pipeMu.Unlock()
	if pipe != nil {
		out.Queue = pipe.Stats()
	}
	if s.wal != nil {
		ws := s.wal.Stats()
		out.WAL = &ws
		out.WALAppliedLSN = s.applyLSN.Load()
	}
	return out
}
