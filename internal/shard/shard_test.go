package shard_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/query"
	"repro/internal/rspn"
	"repro/internal/schema"
	"repro/internal/shard"
	"repro/internal/table"
)

// fixture builds the paper's Customer/Order example with an exact
// (memorizing) three-member ensemble: the joint customer⋈orders RSPN plus
// one single-table RSPN per table. All three members touch the same table
// group, which exercises Partition's fall-back to singleton units.
func fixture(t *testing.T) *ensemble.Ensemble {
	t.Helper()
	s := &schema.Schema{Tables: []*schema.Table{
		{
			Name: "customer",
			Columns: []schema.Column{
				{Name: "c_id", Kind: schema.IntKind},
				{Name: "c_age", Kind: schema.IntKind},
			},
			PrimaryKey: "c_id",
		},
		{
			Name: "orders",
			Columns: []schema.Column{
				{Name: "o_id", Kind: schema.IntKind},
				{Name: "o_c_id", Kind: schema.IntKind},
				{Name: "o_amount", Kind: schema.FloatKind},
			},
			PrimaryKey: "o_id",
			ForeignKeys: []schema.ForeignKey{
				{Column: "o_c_id", RefTable: "customer", RefColumn: "c_id"},
			},
		},
	}}
	cust := table.New(s.Table("customer"))
	cust.AppendRow(table.Int(1), table.Int(20))
	cust.AppendRow(table.Int(2), table.Int(50))
	cust.AppendRow(table.Int(3), table.Int(80))
	ord := table.New(s.Table("orders"))
	ord.AppendRow(table.Int(1), table.Int(1), table.Float(10))
	ord.AppendRow(table.Int(2), table.Int(1), table.Float(60))
	ord.AppendRow(table.Int(3), table.Int(3), table.Float(30))
	ord.AppendRow(table.Int(4), table.Int(3), table.Float(90))
	tabs := map[string]*table.Table{"customer": cust, "orders": ord}
	rel := s.Relationships()[0]
	if err := table.AddTupleFactor(cust, ord, rel); err != nil {
		t.Fatal(err)
	}
	opts := rspn.DefaultLearnOptions()
	opts.Exact = true
	spec := table.JoinSpec{Tables: []string{"customer", "orders"}, Edges: []schema.Relationship{rel}}
	j, err := table.FullOuterJoin(tabs, spec)
	if err != nil {
		t.Fatal(err)
	}
	jcols := rspn.LearnColumns(s, j, spec.Tables, nil)
	joint, err := rspn.Learn(context.Background(), j, spec.Tables, spec.Edges, jcols, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	members := []*rspn.RSPN{joint}
	for _, tn := range []string{"customer", "orders"} {
		cols := rspn.LearnColumns(s, tabs[tn], []string{tn}, nil)
		r, err := rspn.Learn(context.Background(), tabs[tn], []string{tn}, nil, cols, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, r)
	}
	return ensemble.NewManual(s, tabs, members, ensemble.DefaultConfig())
}

func broadcast(t *testing.T) []ensemble.Mutation {
	t.Helper()
	return []ensemble.Mutation{
		{Op: ensemble.OpInsert, Table: "orders", Values: map[string]table.Value{
			"o_id": table.Int(5), "o_c_id": table.Int(2), "o_amount": table.Float(70),
		}},
		{Op: ensemble.OpInsert, Table: "customer", Values: map[string]table.Value{
			"c_id": table.Int(4), "c_age": table.Int(33),
		}},
		{Op: ensemble.OpDelete, Table: "orders", PK: 1},
	}
}

// shardsOf partitions the fixture into n in-process shards.
func shardsOf(t *testing.T, ens *ensemble.Ensemble, n int) []*shard.Shard {
	t.Helper()
	members := shard.Partition(ens, n)
	shards := make([]*shard.Shard, len(members))
	for i, m := range members {
		sh, err := shard.New(i, m, ens, shard.Config{})
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = sh
		t.Cleanup(func() { sh.Close() })
	}
	return shards
}

func TestPartitionDeterministicAndComplete(t *testing.T) {
	ens := fixture(t)
	total := len(ens.RSPNs)
	for _, n := range []int{1, 2, 3, 7} {
		a := shard.Partition(ens, n)
		b := shard.Partition(ens, n)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("n=%d: Partition not deterministic: %v vs %v", n, a, b)
		}
		if len(a) > total {
			t.Fatalf("n=%d: %d shards for %d members", n, len(a), total)
		}
		seen := map[int]bool{}
		for _, m := range a {
			if len(m) == 0 {
				t.Fatalf("n=%d: empty shard in %v", n, a)
			}
			for j, g := range m {
				if seen[g] {
					t.Fatalf("n=%d: member %d assigned twice in %v", n, g, a)
				}
				seen[g] = true
				if j > 0 && m[j-1] >= g {
					t.Fatalf("n=%d: members not sorted ascending: %v", n, m)
				}
			}
		}
		if len(seen) != total {
			t.Fatalf("n=%d: %d of %d members assigned: %v", n, len(seen), total, a)
		}
	}
	if got := shard.Partition(ens, 0); len(got) != 1 || len(got[0]) != total {
		t.Fatalf("n=0 should clamp to one shard owning everything, got %v", got)
	}
}

func TestBroadcastApplyKeepsShardsAligned(t *testing.T) {
	ens := fixture(t)
	shards := shardsOf(t, ens, 2)
	if len(shards) < 2 {
		t.Fatalf("fixture partitions into %d shards, want >= 2", len(shards))
	}
	muts := broadcast(t)
	for _, sh := range shards {
		if err := sh.Enqueue(muts); err != nil {
			t.Fatal(err)
		}
		if err := sh.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ops, ok := shard.Aligned(shards)
	if !ok || ops != uint64(len(muts)) {
		t.Fatalf("Aligned = (%d, %v), want (%d, true)", ops, ok, len(muts))
	}
	composed, cops, ok := shard.Compose(shards, len(ens.RSPNs))
	if !ok || cops != ops {
		t.Fatalf("Compose = (ops %d, ok %v)", cops, ok)
	}

	// The composed view must answer queries bit-identically to a
	// single-process ensemble that applied the same broadcast.
	ref := fixture(t)
	next := ref.CloneForUpdate(muts)
	if _, err := next.Apply(muts); err != nil {
		t.Fatal(err)
	}
	for _, q := range []query.Query{
		{Aggregate: query.Count, Tables: []string{"orders"},
			Filters: []query.Predicate{{Column: "o_amount", Op: query.Ge, Value: 50}}},
		{Aggregate: query.Count, Tables: []string{"customer", "orders"},
			Filters: []query.Predicate{{Column: "c_age", Op: query.Lt, Value: 60}}},
		{Aggregate: query.Avg, AggColumn: "o_amount", Tables: []string{"orders"}},
	} {
		want, err := core.New(next).EstimateCardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.New(composed).EstimateCardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("composed view diverges on %+v:\n  want %+v\n  got  %+v", q, want, got)
		}
	}
}

func TestComposeRefusesSkewAndHoles(t *testing.T) {
	ens := fixture(t)
	shards := shardsOf(t, ens, 2)
	muts := broadcast(t)
	// Skew: only shard 0 receives the broadcast.
	if err := shards[0].Enqueue(muts); err != nil {
		t.Fatal(err)
	}
	if err := shards[0].Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := shard.Aligned(shards); ok {
		t.Fatal("Aligned accepted skewed shards")
	}
	if _, _, ok := shard.Compose(shards, len(ens.RSPNs)); ok {
		t.Fatal("Compose accepted skewed shards")
	}
	// Heal the skew, then check holes.
	for _, sh := range shards[1:] {
		if err := sh.Enqueue(muts); err != nil {
			t.Fatal(err)
		}
		if err := sh.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := shard.Compose(shards, len(ens.RSPNs)); !ok {
		t.Fatal("Compose rejected aligned shards")
	}
	if _, _, ok := shard.Compose(shards[:1], len(ens.RSPNs)); ok {
		t.Fatal("Compose accepted a view with unowned member slots")
	}
}

// TestNoOpBatchStillAdvancesOps: a batch whose every mutation is a no-op
// (deleting a missing PK) must still advance the ops token — the router
// counts processed mutations, not successful ones, so a deterministic
// failure on all shards keeps them aligned.
func TestNoOpBatchStillAdvancesOps(t *testing.T) {
	ens := fixture(t)
	shards := shardsOf(t, ens, 2)
	noop := []ensemble.Mutation{{Op: ensemble.OpDelete, Table: "orders", PK: 999}}
	for _, sh := range shards {
		if err := sh.Enqueue(noop); err != nil {
			t.Fatal(err)
		}
		// Flush reports the deterministic apply failure — that is the
		// point: the mutation fails identically on every shard, and ops
		// must advance anyway.
		if err := sh.Flush(context.Background()); err == nil {
			t.Fatal("expected the no-op delete to surface an apply error")
		}
	}
	ops, ok := shard.Aligned(shards)
	if !ok || ops != 1 {
		t.Fatalf("Aligned = (%d, %v) after a no-op batch, want (1, true)", ops, ok)
	}
}

func TestTryEnqueueShedsWhenFull(t *testing.T) {
	ens := fixture(t)
	members := shard.Partition(ens, 1)
	sh, err := shard.New(0, members[0], ens, shard.Config{QueueSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	mut := []ensemble.Mutation{{Op: ensemble.OpInsert, Table: "orders", Values: map[string]table.Value{
		"o_id": table.Int(100), "o_c_id": table.Int(1), "o_amount": table.Float(1),
	}}}
	accepted, shed := 0, 0
	for i := 0; i < 200; i++ {
		m := []ensemble.Mutation{{Op: mut[0].Op, Table: mut[0].Table, Values: map[string]table.Value{
			"o_id": table.Int(100 + i), "o_c_id": table.Int(1), "o_amount": table.Float(1),
		}}}
		switch err := sh.TryEnqueue(m); {
		case err == nil:
			accepted++
		case errors.Is(err, shard.ErrQueueFull):
			shed++
		default:
			t.Fatal(err)
		}
	}
	if shed == 0 {
		t.Fatal("200 tight-loop enqueues against a 1-slot queue never shed")
	}
	if err := sh.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, _, ops := sh.View()
	if ops != uint64(accepted) {
		t.Fatalf("ops = %d after %d accepted mutations (shed writes must leave no trace)", ops, accepted)
	}
	st := sh.Stats()
	if st.Queue.Enqueued != uint64(accepted) || st.Queue.QueueDepth != 0 {
		t.Fatalf("stats disagree: %+v with %d accepted", st.Queue, accepted)
	}
}

// TestPublishPreservesOps: hot reload swaps the model through Publish,
// which must keep the ops token so the router's recompose trigger (ops
// CHANGE) cannot observe a half-reloaded shard set.
func TestPublishPreservesOps(t *testing.T) {
	ens := fixture(t)
	shards := shardsOf(t, ens, 2)
	muts := broadcast(t)
	for _, sh := range shards {
		if err := sh.Enqueue(muts); err != nil {
			t.Fatal(err)
		}
		if err := sh.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	before, ok := shard.Aligned(shards)
	if !ok {
		t.Fatal("shards misaligned before reload")
	}
	fresh := fixture(t)
	for _, sh := range shards {
		sub, err := fresh.Subset(sh.Members())
		if err != nil {
			t.Fatal(err)
		}
		_, genBefore, _ := sh.View()
		sh.Publish(sub)
		_, genAfter, opsAfter := sh.View()
		if genAfter <= genBefore {
			t.Fatalf("Publish did not bump generation: %d -> %d", genBefore, genAfter)
		}
		if opsAfter != before {
			t.Fatalf("Publish moved the ops token: %d -> %d", before, opsAfter)
		}
	}
	if ops, ok := shard.Aligned(shards); !ok || ops != before {
		t.Fatalf("shards misaligned after reload: (%d, %v)", ops, ok)
	}
}

// sanity guard used by the remote tests too: the fixture's members must
// learn on the full join so replays and broadcasts are bit-reproducible.
func TestFixtureLearnsFullJoin(t *testing.T) {
	ens := fixture(t)
	for i, r := range ens.RSPNs {
		if r.SampleRate != 1 || math.IsNaN(r.SampleRate) {
			t.Fatalf("member %d sample rate %v, want 1", i, r.SampleRate)
		}
	}
}
