// Package shard implements the sharded serving tier: the learned RSPN
// ensemble is partitioned so each shard owns a subset of the members with
// its own snapshot pipeline and write-ahead log, and a router composes the
// shards' published snapshots back into one serving view whose estimates
// are bit-identical to single-process execution.
//
// The decomposition mirrors the paper's own: the Plan layer already splits
// every query into per-RSPN sub-estimates combined with Theorem-2 /
// inclusion-exclusion arithmetic, so a member's evaluations can run
// wherever that member lives. Plan.RSPNs exposes exactly which members a
// query shape touches — the routing metadata that tells the router which
// shards a query fans out to.
//
// Mutations are broadcast: every shard applies the full mutation stream to
// its own copy of the base tables. Selective routing of writes would break
// bit-identity — an insert into one table bumps FK tuple-factor columns of
// partner tables, so every shard needs every write to keep its subset's
// models exactly where a single process would put them. Each shard's
// snapshot carries `ops`, the cumulative count of mutations it has
// processed (failed ones included — failures are deterministic under an
// identical stream); the router recomposes its merged view only when all
// shards report the same ops, so readers never observe a torn view mixing
// shards at different apply progress.
package shard

import (
	"sort"

	"repro/internal/ensemble"
)

// Partition assigns the ensemble's members to at most n shards and returns
// the member-index sets, each sorted ascending. Assignment is deterministic
// (same ensemble and n always produce the same partition — replica
// processes compute it independently and must agree) and cost-balanced,
// with each member's training-sample row count as the evaluation-cost
// proxy.
//
// Members sharing a base table are kept on the same shard when enough
// table groups exist — a query's Theorem-2 branches over one table group
// then resolve on one shard. When fewer groups than shards exist (a joint
// member often chains every table into one group), members are balanced
// individually instead: broadcast updates make any assignment correct, so
// group cohesion is a locality preference, never a correctness requirement.
// Fewer members than n yields fewer than n shards.
func Partition(ens *ensemble.Ensemble, n int) [][]int {
	m := len(ens.RSPNs)
	if n < 1 {
		n = 1
	}
	units := tableGroups(ens)
	if len(units) < n {
		units = make([][]int, m)
		for i := range units {
			units[i] = []int{i}
		}
	}
	if n > len(units) {
		n = len(units)
	}
	type unit struct {
		members []int
		cost    float64
	}
	us := make([]unit, len(units))
	for i, ms := range units {
		u := unit{members: ms}
		for _, j := range ms {
			u.cost += ens.RSPNs[j].Model.RowCount
		}
		us[i] = u
	}
	// Largest first, ties by first member index; both orders are total, so
	// the greedy assignment below is deterministic.
	sort.SliceStable(us, func(a, b int) bool {
		if us[a].cost != us[b].cost {
			return us[a].cost > us[b].cost
		}
		return us[a].members[0] < us[b].members[0]
	})
	out := make([][]int, n)
	load := make([]float64, n)
	for _, u := range us {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		out[best] = append(out[best], u.members...)
		load[best] += u.cost
	}
	for _, ms := range out {
		sort.Ints(ms)
	}
	return out
}

// tableGroups unions members that share a base table into groups, returned
// in first-member order with each group's members ascending.
func tableGroups(ens *ensemble.Ensemble) [][]int {
	m := len(ens.RSPNs)
	parent := make([]int, m)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	owner := map[string]int{}
	for i, r := range ens.RSPNs {
		for _, t := range r.Tables {
			if j, ok := owner[t]; ok {
				ra, rb := find(i), find(j)
				if ra != rb {
					if rb < ra {
						ra, rb = rb, ra
					}
					parent[rb] = ra
				}
			} else {
				owner[t] = i
			}
		}
	}
	byRoot := map[int][]int{}
	var order []int
	for i := 0; i < m; i++ {
		root := find(i)
		if _, ok := byRoot[root]; !ok {
			order = append(order, root)
		}
		byRoot[root] = append(byRoot[root], i)
	}
	out := make([][]int, 0, len(order))
	for _, root := range order {
		out = append(out, byRoot[root])
	}
	return out
}
