package shard_test

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/ensemble"
	"repro/internal/shard"
	"repro/internal/spn"
)

func evalReqs() []spn.Request {
	return []spn.Request{
		{Cols: []spn.ColQuery{{Col: 0, Fn: spn.FnOne,
			Ranges: []spn.Range{{Lo: math.Inf(-1), Hi: 2, HiIncl: true}}}}},
		{Cols: []spn.ColQuery{{Col: 1, Fn: spn.FnIdent}}},
		{},
	}
}

// replica starts one in-process shard behind its HTTP interface.
func replica(t *testing.T) (*shard.Shard, *shard.Client) {
	t.Helper()
	ens := fixture(t)
	members := shard.Partition(ens, 1)
	sh, err := shard.New(0, members[0], ens, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sh.Close() })
	srv := httptest.NewServer(shard.NewServer(sh))
	t.Cleanup(srv.Close)
	return sh, shard.NewClient(srv.URL)
}

func TestClientEvalMatchesLocal(t *testing.T) {
	sh, c := replica(t)
	ens, _, ops := sh.View()
	reqs := evalReqs()
	want := make([]float64, len(reqs))
	if err := ens.RSPNs[0].EvaluateRequests(reqs, want); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(reqs))
	if err := c.Eval(context.Background(), 0, ops, reqs, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("value %d: remote %v != local %v (must be bit-identical)", i, got[i], want[i])
		}
	}
}

func TestClientEvalRefusesOpsSkew(t *testing.T) {
	sh, c := replica(t)
	_, _, ops := sh.View()
	out := make([]float64, 1)
	err := c.Eval(context.Background(), 0, ops+1, evalReqs()[:1], out)
	if err == nil {
		t.Fatal("replica answered a request for a stream position it has not reached")
	}
	if !strings.Contains(err.Error(), "409") {
		t.Fatalf("want a 409 Conflict, got: %v", err)
	}
}

func TestClientApplyAdvancesReplica(t *testing.T) {
	sh, c := replica(t)
	_, _, before := sh.View()
	muts := broadcast(t)
	if err := c.Apply(context.Background(), muts); err != nil {
		t.Fatal(err)
	}
	_, _, after := sh.View()
	if after != before+uint64(len(muts)) {
		t.Fatalf("ops %d -> %d after applying %d mutations", before, after, len(muts))
	}
	// A batch with a deterministic per-mutation failure comes back 202,
	// not an error, and still advances the stream position.
	bad := []ensemble.Mutation{{Op: ensemble.OpDelete, Table: "orders", PK: 999}}
	if err := c.Apply(context.Background(), bad); err != nil {
		t.Fatal(err)
	}
	if _, _, got := sh.View(); got != after+1 {
		t.Fatalf("ops %d -> %d after a failing batch, want +1", after, got)
	}
}

func TestRemoteEvaluatorOffloadAndFallback(t *testing.T) {
	sh, c := replica(t)
	ens, _, ops := sh.View()
	r := ens.RSPNs[0]
	reqs := evalReqs()
	want := make([]float64, len(reqs))
	if err := r.EvaluateRequests(reqs, want); err != nil {
		t.Fatal(err)
	}
	check := func(t *testing.T, e *shard.RemoteEvaluator) {
		t.Helper()
		got := make([]float64, len(reqs))
		if err := e.EvaluateRSPN(context.Background(), r, reqs, got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("value %d: %v != %v", i, got[i], want[i])
			}
		}
	}
	t.Run("bound and aligned: served remotely", func(t *testing.T) {
		e := shard.NewRemoteEvaluator()
		e.Bind(r, c, 0, ops)
		check(t, e)
		if e.Hits() != 1 || e.Fallbacks() != 0 {
			t.Fatalf("hits %d fallbacks %d, want 1/0", e.Hits(), e.Fallbacks())
		}
	})
	t.Run("ops skew: local fallback, same bits", func(t *testing.T) {
		e := shard.NewRemoteEvaluator()
		e.Bind(r, c, 0, ops+1)
		check(t, e)
		if e.Hits() != 0 || e.Fallbacks() != 1 {
			t.Fatalf("hits %d fallbacks %d, want 0/1", e.Hits(), e.Fallbacks())
		}
	})
	t.Run("dead replica: local fallback, same bits", func(t *testing.T) {
		e := shard.NewRemoteEvaluator()
		e.Bind(r, shard.NewClient("http://127.0.0.1:1"), 0, ops)
		check(t, e)
		if e.Fallbacks() != 1 {
			t.Fatalf("fallbacks %d, want 1", e.Fallbacks())
		}
	})
	t.Run("unbound member: evaluated locally without counting", func(t *testing.T) {
		e := shard.NewRemoteEvaluator()
		check(t, e)
		if e.Hits() != 0 || e.Fallbacks() != 0 {
			t.Fatalf("hits %d fallbacks %d, want 0/0", e.Hits(), e.Fallbacks())
		}
	})
}
