package shard

import (
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after 2/3 failures, want closed", b.State())
	}
	b.Allow()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after 3/3 failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside cooldown")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}

	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe denied")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("second concurrent probe allowed in half-open")
	}

	// Failed probe: back to open for a fresh cooldown.
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("failed probe did not re-open (state %v)", b.State())
	}

	// Heal: elapsed cooldown, successful probe closes it.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe denied after fresh cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after successful probe, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker denied request after heal")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure()
	b.Allow()
	b.Success()
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v: success did not reset the consecutive-failure streak", b.State())
	}
}

func TestBreakerNilIsNoop(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker denied a request")
	}
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("nil breaker state = %v, want closed", b.State())
	}
}
