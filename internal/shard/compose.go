package shard

import (
	"repro/internal/ensemble"
	"repro/internal/rspn"
)

// Compose merges the shards' current snapshots into one read-only serving
// view: every global member slot filled with the owning shard's published
// RSPN, schema/statistics/tables taken from shard 0 (identical across
// shards under broadcast application). It returns ok=false when the shards
// are not aligned — their ops tokens differ, meaning at least one shard is
// mid-stream relative to the others — and the router then keeps serving
// its previous consistent view. ops is monotonic per shard, so equal
// tokens can never be an ABA coincidence: equal means equal progress.
//
// The returned ensemble is a view, not an updatable state: it has no write
// index or rng of its own and must never see CloneForUpdate/Apply — the
// router broadcasts mutations to the shards instead.
func Compose(shards []*Shard, total int) (ens *ensemble.Ensemble, ops uint64, ok bool) {
	if len(shards) == 0 {
		return nil, 0, false
	}
	views := make([]*ensemble.Ensemble, len(shards))
	for i, sh := range shards {
		e, _, o := sh.View()
		if i == 0 {
			ops = o
		} else if o != ops {
			return nil, 0, false
		}
		views[i] = e
	}
	base := views[0]
	out := &ensemble.Ensemble{
		Schema:    base.Schema,
		RSPNs:     make([]*rspn.RSPN, total),
		AttrRDC:   base.AttrRDC,
		PairDep:   base.PairDep,
		Stats:     base.Stats,
		Tables:    base.Tables,
		BuildTime: base.BuildTime,
	}
	for i, sh := range shards {
		for j, global := range sh.Members() {
			if global < 0 || global >= total || j >= len(views[i].RSPNs) {
				return nil, 0, false
			}
			out.RSPNs[global] = views[i].RSPNs[j]
		}
	}
	for _, r := range out.RSPNs {
		if r == nil {
			// The partition does not cover every member slot; a composed
			// view with holes would mis-plan, so refuse.
			return nil, 0, false
		}
	}
	return out, ops, true
}

// Aligned reports whether all shards currently publish the same ops token
// (a cheap pre-check before paying for Compose), and that common token.
func Aligned(shards []*Shard) (uint64, bool) {
	var ops uint64
	for i, sh := range shards {
		_, _, o := sh.View()
		if i == 0 {
			ops = o
		} else if o != ops {
			return 0, false
		}
	}
	return ops, len(shards) > 0
}
