package baselines

import (
	"fmt"
	"math/rand"

	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
)

// IBJS is Index-Based Join Sampling (Leis et al., CIDR 2017): it draws a
// uniform sample of a root table's qualifying rows and extends each sampled
// row across the query's join tree through (hash) indexes, counting the
// number of qualifying join partners per step. The Horvitz-Thompson scale-
// up of the product of partner counts estimates the join cardinality.
type IBJS struct {
	Schema  *schema.Schema
	tables  map[string]*table.Table
	indexes *indexSet
	// SampleSize is the number of root rows sampled per estimate.
	SampleSize int
	rng        *rand.Rand
}

// NewIBJS prepares the estimator (indexes build lazily, standing in for the
// secondary indexes the original assumes exist).
func NewIBJS(s *schema.Schema, tables map[string]*table.Table, sampleSize int, seed int64) *IBJS {
	if sampleSize <= 0 {
		sampleSize = 1000
	}
	return &IBJS{
		Schema: s, tables: tables, indexes: newIndexSet(tables),
		SampleSize: sampleSize, rng: rand.New(rand.NewSource(seed)),
	}
}

// Name implements CardinalityEstimator.
func (b *IBJS) Name() string { return "IBJS" }

// EstimateCardinality samples root rows and walks the join tree.
func (b *IBJS) EstimateCardinality(q query.Query) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	root := chooseRoot(b.Schema, q.Tables)
	rootTable, ok := b.tables[root]
	if !ok {
		return 0, fmt.Errorf("baselines: unknown table %s", root)
	}
	steps, err := orientEdges(b.Schema, q.Tables, root)
	if err != nil {
		return 0, err
	}
	n := rootTable.NumRows()
	if n == 0 {
		return 0, nil
	}
	sample := b.SampleSize
	if sample > n {
		sample = n
	}
	rootPreds := predsOf(rootTable, q.Filters)
	total := 0.0
	for s := 0; s < sample; s++ {
		row := b.rng.Intn(n)
		if !rowMatches(rootTable, row, rootPreds) {
			continue
		}
		contribution, err := b.extend(map[string]int{root: row}, steps, 0, q.Filters)
		if err != nil {
			return 0, err
		}
		total += contribution
	}
	return total * float64(n) / float64(sample), nil
}

// extend recursively multiplies qualifying partner counts along the steps.
// To bound work, at each step one random partner is followed for the rest
// of the walk while the full partner count scales the contribution (the
// standard index-based sampling estimator).
func (b *IBJS) extend(current map[string]int, steps []joinStep, depth int, preds []query.Predicate) (float64, error) {
	if depth == len(steps) {
		return 1, nil
	}
	st := steps[depth]
	fromTable := b.tables[st.fromTable]
	fromRow, ok := current[st.fromTable]
	if !ok {
		return 0, fmt.Errorf("baselines: walk order broken at %s", st.fromTable)
	}
	fromCol := fromTable.Column(st.fromCol)
	if fromCol.IsNull(fromRow) {
		return 0, nil
	}
	idx, err := b.indexes.get(st.toTable, st.toCol)
	if err != nil {
		return 0, err
	}
	toTable := b.tables[st.toTable]
	toPreds := predsOf(toTable, preds)
	var qualifying []int
	for _, r := range idx[fromCol.Data[fromRow]] {
		if rowMatches(toTable, r, toPreds) {
			qualifying = append(qualifying, r)
		}
	}
	if len(qualifying) == 0 {
		return 0, nil
	}
	pick := qualifying[b.rng.Intn(len(qualifying))]
	current[st.toTable] = pick
	rest, err := b.extend(current, steps, depth+1, preds)
	if err != nil {
		return 0, err
	}
	return float64(len(qualifying)) * rest, nil
}
