package baselines

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/ml"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
)

// MCSN is the workload-driven deep-learning cardinality estimator of Kipf
// et al. (CIDR 2019), rebuilt as an MLP over a fixed featurization of the
// query (table one-hots plus per-column predicate ranges) trained on
// executed queries with a log-transformed cardinality target. Like the
// original, it is only as good as its training workload: the paper trains
// it on queries with at most 3 tables, so larger joins are out of
// distribution — exactly the failure mode Figures 1 and 7 show.
type MCSN struct {
	schema  *schema.Schema
	tables  []string  // table order for one-hot
	columns []string  // filterable columns for range features
	colLo   []float64 // per-column domain bounds for normalization
	colHi   []float64
	net     *ml.MLP
	maxCard float64
	// TrainingDataTime is the measured cost of executing the training
	// workload to label it (the dominant cost the paper reports as hours).
	TrainingDataTime time.Duration
	// TrainTime is the network-fitting time.
	TrainTime time.Duration
}

// MCSNConfig controls training.
type MCSNConfig struct {
	// MaxTrainTables caps the join size of training queries (3 in the
	// paper's setup).
	MaxTrainTables int
	Epochs         int
	Seed           int64
}

// DefaultMCSNConfig mirrors the paper's description.
func DefaultMCSNConfig() MCSNConfig { return MCSNConfig{MaxTrainTables: 3, Epochs: 40, Seed: 1} }

// Oracle labels training queries with true cardinalities (in the original
// system this is "run 100k queries on Postgres for 34 hours").
type Oracle func(q query.Query) (float64, error)

// NewMCSN trains the model on the given workload, labelling each query via
// the oracle. Queries joining more than cfg.MaxTrainTables tables are
// excluded from training, like in the paper.
func NewMCSN(s *schema.Schema, tables map[string]*table.Table, train []query.Query,
	oracle Oracle, cfg MCSNConfig) (*MCSN, error) {
	if cfg.MaxTrainTables <= 0 {
		cfg = DefaultMCSNConfig()
	}
	m := &MCSN{schema: s}
	for _, meta := range s.Tables {
		m.tables = append(m.tables, meta.Name)
	}
	sort.Strings(m.tables)
	// Filterable columns: every non-key attribute of every table.
	seen := map[string]bool{}
	for _, meta := range s.Tables {
		t := tables[meta.Name]
		skip := map[string]bool{meta.PrimaryKey: true}
		for _, fk := range meta.ForeignKeys {
			skip[fk.Column] = true
		}
		for _, c := range t.Cols {
			name := c.Meta.Name
			if skip[name] || seen[name] || len(name) > 2 && name[:2] == "__" {
				continue
			}
			seen[name] = true
			m.columns = append(m.columns, name)
			lo, hi := columnBounds(c)
			m.colLo = append(m.colLo, lo)
			m.colHi = append(m.colHi, hi)
		}
	}
	// Label the training workload.
	var feats [][]float64
	var targets []float64
	labelStart := time.Now()
	for _, q := range train {
		if len(q.Tables) > cfg.MaxTrainTables {
			continue
		}
		card, err := oracle(q)
		if err != nil {
			return nil, fmt.Errorf("baselines: labelling MCSN training query: %w", err)
		}
		if card < 1 {
			card = 1
		}
		feats = append(feats, m.featurize(q))
		targets = append(targets, math.Log(card))
		if card > m.maxCard {
			m.maxCard = card
		}
	}
	m.TrainingDataTime = time.Since(labelStart)
	if len(feats) < 10 {
		return nil, fmt.Errorf("baselines: only %d usable MCSN training queries", len(feats))
	}
	mlpCfg := ml.DefaultMLPConfig()
	mlpCfg.Epochs = cfg.Epochs
	mlpCfg.Seed = cfg.Seed
	fitStart := time.Now()
	net, err := ml.FitMLP(feats, targets, mlpCfg)
	if err != nil {
		return nil, err
	}
	m.TrainTime = time.Since(fitStart)
	m.net = net
	return m, nil
}

func columnBounds(c *table.Column) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < c.Len(); i++ {
		if c.IsNull(i) {
			continue
		}
		v := c.Data[i]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	return lo, hi
}

// featurize encodes a query: [table one-hots | per-column (present, lo,
// hi)] with range bounds normalized to the column domain.
func (m *MCSN) featurize(q query.Query) []float64 {
	out := make([]float64, 0, len(m.tables)+3*len(m.columns))
	inQuery := map[string]bool{}
	for _, t := range q.Tables {
		inQuery[t] = true
	}
	for _, t := range m.tables {
		if inQuery[t] {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	for i, col := range m.columns {
		lo, hi := math.Inf(-1), math.Inf(1)
		present := 0.0
		for _, p := range q.Filters {
			if p.Column != col {
				continue
			}
			present = 1
			switch p.Op {
			case query.Eq:
				lo, hi = math.Max(lo, p.Value), math.Min(hi, p.Value)
			case query.Lt, query.Le:
				hi = math.Min(hi, p.Value)
			case query.Gt, query.Ge:
				lo = math.Max(lo, p.Value)
			case query.In:
				mn, mx := math.Inf(1), math.Inf(-1)
				for _, v := range p.Values {
					mn, mx = math.Min(mn, v), math.Max(mx, v)
				}
				lo, hi = math.Max(lo, mn), math.Min(hi, mx)
			case query.Ne:
				// Range featurization cannot express exclusion; mark
				// presence only (a limitation shared with the original).
			}
		}
		nl := normTo01(lo, m.colLo[i], m.colHi[i])
		nh := normTo01(hi, m.colLo[i], m.colHi[i])
		out = append(out, present, nl, nh)
	}
	return out
}

func normTo01(v, lo, hi float64) float64 {
	if math.IsInf(v, -1) {
		return 0
	}
	if math.IsInf(v, 1) {
		return 1
	}
	n := (v - lo) / (hi - lo)
	if n < 0 {
		return 0
	}
	if n > 1 {
		return 1
	}
	return n
}

// Name implements CardinalityEstimator.
func (m *MCSN) Name() string { return "MCSN" }

// EstimateCardinality predicts exp(net(features)), clamped to at least 1.
func (m *MCSN) EstimateCardinality(q query.Query) (float64, error) {
	if m.net == nil {
		return 0, fmt.Errorf("baselines: MCSN not trained")
	}
	logCard := m.net.Predict(m.featurize(q))
	card := math.Exp(logCard)
	if card < 1 {
		card = 1
	}
	// The network extrapolates poorly beyond its training range; clamp to
	// a generous multiple of the largest cardinality it ever saw, as the
	// original's output scaling does.
	if m.maxCard > 0 && card > 100*m.maxCard {
		card = 100 * m.maxCard
	}
	return card, nil
}
