package baselines

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/query"
	"repro/internal/workload"
)

func TestHybridAtLeastCompetitiveWithDeepDB(t *testing.T) {
	f := getFixture(t)
	cfg := ensemble.DefaultConfig()
	cfg.MaxSamples = 15000
	cfg.BudgetFactor = 0
	ens, err := ensemble.Build(context.Background(), f.schema, f.tables, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(ens)
	deepdb := func(q query.Query) (float64, error) {
		e, err := eng.EstimateCardinality(q)
		return e.Value, err
	}
	// Featurizer from an (untrained-use) MCSN built on a small workload.
	trainNamed := workload.SyntheticIMDb(f.tables, 200, 2, 4, 31)
	var train []query.Query
	for _, n := range trainNamed {
		train = append(train, n.Query)
	}
	mcsn, err := NewMCSN(f.schema, f.tables, train, f.oracle.Cardinality, DefaultMCSNConfig())
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHybrid(train, deepdb, mcsn.Featurizer(), f.oracle.Cardinality, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.TrainTime <= 0 {
		t.Fatal("train time not measured")
	}
	// On a held-out workload the hybrid must not be dramatically worse
	// than raw DeepDB (the residual correction is clamped), and both must
	// be sane.
	test := workload.SyntheticIMDb(f.tables, 40, 2, 5, 32)
	var hq, dq []float64
	for _, n := range test {
		truth, err := f.oracle.Cardinality(n.Query)
		if err != nil {
			t.Fatal(err)
		}
		he, err := h.EstimateCardinality(n.Query)
		if err != nil {
			t.Fatal(err)
		}
		de, err := deepdb(n.Query)
		if err != nil {
			t.Fatal(err)
		}
		hq = append(hq, query.QError(he, truth))
		dq = append(dq, query.QError(de, truth))
	}
	if median(hq) > 2*median(dq)+0.5 {
		t.Fatalf("hybrid median q-error %.2f much worse than DeepDB %.2f", median(hq), median(dq))
	}
	if median(hq) > 5 {
		t.Fatalf("hybrid median q-error %.2f too high", median(hq))
	}
}

func TestHybridClampsResidual(t *testing.T) {
	f := getFixture(t)
	// A degenerate "DeepDB" returning a constant, with a tiny workload:
	// the clamped residual keeps estimates within a factor 10 of the base.
	deepdb := func(q query.Query) (float64, error) { return 100, nil }
	featurize := func(q query.Query) []float64 { return []float64{float64(len(q.Tables))} }
	var train []query.Query
	for _, n := range workload.SyntheticIMDb(f.tables, 50, 2, 3, 33) {
		train = append(train, n.Query)
	}
	h, err := NewHybrid(train, deepdb, featurize, f.oracle.Cardinality, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := train[0]
	est, err := h.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if est < 10 || est > 1000 {
		t.Fatalf("clamped estimate %v outside [10, 1000]", est)
	}
}

func TestHybridNeedsTrainingData(t *testing.T) {
	deepdb := func(q query.Query) (float64, error) { return 1, nil }
	featurize := func(q query.Query) []float64 { return []float64{1} }
	oracle := func(q query.Query) (float64, error) { return 1, nil }
	if _, err := NewHybrid(nil, deepdb, featurize, oracle, 1); err == nil {
		t.Fatal("expected error for empty workload")
	}
}
