package baselines

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/exact"
	"repro/internal/ml"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
)

// DBEst mimics the model-per-query-template AQP engine of Ma &
// Triantafillou (SIGMOD 2019): for each query template (table set +
// categorical equality columns) it draws a biased sample satisfying the
// categorical predicates, then fits a density model (histogram over the
// range-filtered column) and a regression model (tree from the range column
// to the aggregate column). Templates are reused across queries that only
// change range constants; a new template pays sampling + training again —
// the cumulative-training-time behaviour Figure 12 plots.
type DBEst struct {
	schema *schema.Schema
	tables map[string]*table.Table
	oracle *exact.Engine
	// SampleSize per template model.
	SampleSize int
	models     map[string]*dbestModel
	// CumulativeTraining is the total time spent building models so far.
	CumulativeTraining time.Duration
}

type dbestModel struct {
	rows     *table.Table // biased sample of the joined template
	rangeCol string
}

// NewDBEst wraps the data; models build lazily per template.
func NewDBEst(s *schema.Schema, tables map[string]*table.Table, sampleSize int) *DBEst {
	if sampleSize <= 0 {
		sampleSize = 10000
	}
	return &DBEst{
		schema: s, tables: tables, oracle: exact.New(s, tables),
		SampleSize: sampleSize, models: map[string]*dbestModel{},
	}
}

// Name identifies the baseline.
func (d *DBEst) Name() string { return "DBEst" }

// templateKey identifies reusable models: table set plus the categorical
// (equality/IN) predicate columns and their values, which define the biased
// sample. Range predicates on numeric columns do not change the template.
func templateKey(q query.Query) string {
	tabs := append([]string(nil), q.Tables...)
	sort.Strings(tabs)
	var cats []string
	for _, p := range q.Filters {
		if p.Op == query.Eq || p.Op == query.In {
			cats = append(cats, fmt.Sprintf("%s=%v%v", p.Column, p.Value, p.Values))
		}
	}
	sort.Strings(cats)
	var group []string
	group = append(group, q.GroupBy...)
	sort.Strings(group)
	return strings.Join(tabs, ",") + "|" + strings.Join(cats, "&") + "|" + strings.Join(group, ",")
}

// Prepare builds (or reuses) the model for a query, returning how much new
// training time it cost — the quantity Figure 12 accumulates.
func (d *DBEst) Prepare(q query.Query) (time.Duration, error) {
	key := templateKey(q)
	if _, ok := d.models[key]; ok {
		return 0, nil
	}
	start := time.Now()
	// Biased sampling: materialize the join and keep rows satisfying the
	// categorical predicates, capped at SampleSize.
	j, err := d.oracle.Materialize(q.Tables)
	if err != nil {
		return 0, err
	}
	var catPreds []query.Predicate
	for _, p := range q.Filters {
		if p.Op == query.Eq || p.Op == query.In {
			catPreds = append(catPreds, p)
		}
	}
	rows, err := exact.FilterRows(j, catPreds)
	if err != nil {
		return 0, err
	}
	if len(rows) > d.SampleSize {
		rows = rows[:d.SampleSize]
	}
	sample := j.Select(rows)
	model := &dbestModel{rows: sample}
	// Fit the regression/density pair on the first numeric range column
	// (the model family of the original); the fitted tree is kept only to
	// account its cost, estimation below re-reads the sample.
	for _, p := range q.Filters {
		if p.Op != query.Eq && p.Op != query.In {
			model.rangeCol = p.Column
			break
		}
	}
	if model.rangeCol != "" && q.AggColumn != "" && sample.NumRows() > 10 {
		xs := make([][]float64, 0, sample.NumRows())
		ys := make([]float64, 0, sample.NumRows())
		xc := sample.Column(model.rangeCol)
		yc := sample.Column(q.AggColumn)
		if xc != nil && yc != nil {
			for i := 0; i < sample.NumRows(); i++ {
				if xc.IsNull(i) || yc.IsNull(i) {
					continue
				}
				xs = append(xs, []float64{xc.Data[i]})
				ys = append(ys, yc.Data[i])
			}
			if len(xs) > 10 {
				if _, err := ml.FitTree(xs, ys, ml.DefaultTreeConfig()); err != nil {
					return 0, err
				}
			}
		}
	}
	d.models[key] = model
	cost := time.Since(start)
	d.CumulativeTraining += cost
	return cost, nil
}

// Execute answers the query from its template model (building it first when
// needed). Estimation runs the remaining (range) predicates on the biased
// sample and scales counts by the sampling fraction.
func (d *DBEst) Execute(q query.Query) (query.Result, error) {
	if _, err := d.Prepare(q); err != nil {
		return query.Result{}, err
	}
	model := d.models[templateKey(q)]
	// Scale: qualifying template rows in the full data vs. sample size.
	var catPreds, rangePreds []query.Predicate
	for _, p := range q.Filters {
		if p.Op == query.Eq || p.Op == query.In {
			catPreds = append(catPreds, p)
		} else {
			rangePreds = append(rangePreds, p)
		}
	}
	fullQ := query.Query{Aggregate: query.Count, Tables: q.Tables, Filters: catPreds}
	fullCount, err := d.oracle.Cardinality(fullQ)
	if err != nil {
		return query.Result{}, err
	}
	sampleN := float64(model.rows.NumRows())
	if sampleN == 0 {
		return query.Result{}, nil
	}
	scale := fullCount / sampleN
	sub := exact.New(d.schema, map[string]*table.Table{"__sample": model.rows})
	sq := query.Query{Aggregate: q.Aggregate, AggColumn: q.AggColumn,
		Tables: []string{"__sample"}, Filters: rangePreds, GroupBy: q.GroupBy}
	res, err := sub.Execute(sq)
	if err != nil {
		return query.Result{}, err
	}
	if q.Aggregate == query.Count || q.Aggregate == query.Sum {
		for i := range res.Groups {
			res.Groups[i].Value *= scale
		}
	}
	return res, nil
}
