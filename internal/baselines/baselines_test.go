package baselines

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/exact"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
	"repro/internal/workload"
)

// fixture builds a small IMDb-style data set shared by the baseline tests.
type fixture struct {
	schema *schema.Schema
	tables map[string]*table.Table
	oracle *exact.Engine
}

var shared *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if shared == nil {
		s, tabs := datagen.IMDb(datagen.IMDbConfig{Titles: 2000, Seed: 1})
		if err := datagen.Validate(s, tabs); err != nil {
			t.Fatal(err)
		}
		shared = &fixture{schema: s, tables: tabs, oracle: exact.New(s, tabs)}
	}
	return shared
}

func TestPostgresSingleTable(t *testing.T) {
	f := getFixture(t)
	pg, err := NewPostgres(f.schema, f.tables)
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{Aggregate: query.Count, Tables: []string{"title"},
		Filters: []query.Predicate{{Column: "t_production_year", Op: query.Ge, Value: 2000}}}
	truth, err := f.oracle.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	est, err := pg.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if qe := query.QError(est, truth); qe > 2 {
		t.Fatalf("Postgres single-table q-error %.2f (est %.0f true %.0f)", qe, est, truth)
	}
}

func TestPostgresUnfilteredJoin(t *testing.T) {
	f := getFixture(t)
	pg, err := NewPostgres(f.schema, f.tables)
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{Aggregate: query.Count, Tables: []string{"title", "movie_companies"}}
	truth, _ := f.oracle.Cardinality(q)
	est, err := pg.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	// FK join size estimation should be within a small factor.
	if qe := query.QError(est, truth); qe > 3 {
		t.Fatalf("Postgres join q-error %.2f (est %.0f true %.0f)", qe, est, truth)
	}
}

func TestPostgresErrorGrowsWithJoins(t *testing.T) {
	f := getFixture(t)
	pg, err := NewPostgres(f.schema, f.tables)
	if err != nil {
		t.Fatal(err)
	}
	// Correlated filters across 4 tables: independence should misestimate
	// more than a single-table filter does. We only require the estimator
	// not to crash and to return a positive value here; the error shape is
	// exercised in the Table 1 bench.
	q := query.Query{Aggregate: query.Count,
		Tables: []string{"title", "movie_companies", "cast_info", "movie_keyword"},
		Filters: []query.Predicate{
			{Column: "t_production_year", Op: query.Ge, Value: 2010},
			{Column: "mc_company_type_id", Op: query.Eq, Value: 2},
			{Column: "ci_role_id", Op: query.Eq, Value: 1}}}
	est, err := pg.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if est < 1 {
		t.Fatalf("estimate %v < 1", est)
	}
}

func TestIBJSUnfilteredJoin(t *testing.T) {
	f := getFixture(t)
	ib := NewIBJS(f.schema, f.tables, 2000, 7)
	q := query.Query{Aggregate: query.Count, Tables: []string{"title", "cast_info"}}
	truth, _ := f.oracle.Cardinality(q)
	est, err := ib.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if qe := query.QError(est, truth); qe > 1.5 {
		t.Fatalf("IBJS q-error %.2f (est %.0f true %.0f)", qe, est, truth)
	}
}

func TestIBJSFiltered(t *testing.T) {
	f := getFixture(t)
	ib := NewIBJS(f.schema, f.tables, 2000, 7)
	q := query.Query{Aggregate: query.Count, Tables: []string{"title", "movie_info"},
		Filters: []query.Predicate{
			{Column: "t_production_year", Op: query.Ge, Value: 1990},
			{Column: "mi_info_type_id", Op: query.Le, Value: 10}}}
	truth, _ := f.oracle.Cardinality(q)
	est, err := ib.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if qe := query.QError(est, truth); qe > 2.5 {
		t.Fatalf("IBJS filtered q-error %.2f (est %.0f true %.0f)", qe, est, truth)
	}
}

func TestRandomSamplingSingleTable(t *testing.T) {
	f := getFixture(t)
	rs, err := NewRandomSampling(f.schema, f.tables, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{Aggregate: query.Count, Tables: []string{"cast_info"},
		Filters: []query.Predicate{{Column: "ci_role_id", Op: query.Le, Value: 3}}}
	truth, _ := f.oracle.Cardinality(q)
	est, err := rs.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if qe := query.QError(est, truth); qe > 2 {
		t.Fatalf("RandomSampling q-error %.2f (est %.0f true %.0f)", qe, est, truth)
	}
}

func TestMCSNInDistribution(t *testing.T) {
	f := getFixture(t)
	train := workload.SyntheticIMDb(f.tables, 400, 2, 3, 11)
	var qs []query.Query
	for _, n := range train {
		qs = append(qs, n.Query)
	}
	m, err := NewMCSN(f.schema, f.tables, qs, f.oracle.Cardinality, DefaultMCSNConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainingDataTime <= 0 {
		t.Fatal("training data time not measured")
	}
	// Median in-distribution q-error should be sane (not orders of
	// magnitude off).
	test := workload.SyntheticIMDb(f.tables, 40, 2, 3, 12)
	var qes []float64
	for _, n := range test {
		truth, err := f.oracle.Cardinality(n.Query)
		if err != nil {
			t.Fatal(err)
		}
		est, err := m.EstimateCardinality(n.Query)
		if err != nil {
			t.Fatal(err)
		}
		qes = append(qes, query.QError(est, truth))
	}
	med := median(qes)
	if med > 12 {
		t.Fatalf("MCSN in-distribution median q-error %.2f too high", med)
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}

func TestTableSampleAQP(t *testing.T) {
	f := getFixture(t)
	ts := NewTableSample(f.schema, f.tables, 0.1, 5)
	q := query.Query{Aggregate: query.Count, Tables: []string{"cast_info"},
		Filters: []query.Predicate{{Column: "ci_role_id", Op: query.Le, Value: 5}}}
	truth, _ := f.oracle.Execute(q)
	res, err := ts.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := query.RelativeError(res.Scalar(), truth.Scalar()); rel > 0.2 {
		t.Fatalf("TableSample relative error %.3f (est %.0f true %.0f)",
			rel, res.Scalar(), truth.Scalar())
	}
}

func TestTableSampleNoResultOnHyperSelective(t *testing.T) {
	f := getFixture(t)
	ts := NewTableSample(f.schema, f.tables, 0.01, 5)
	// An empty-result query: impossible keyword id.
	q := query.Query{Aggregate: query.Count, Tables: []string{"movie_keyword"},
		Filters: []query.Predicate{{Column: "mk_keyword_id", Op: query.Eq, Value: -12345}}}
	res, err := ts.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Fatalf("expected no result, got %v", res.Groups)
	}
}

func TestVerdictDB(t *testing.T) {
	f := getFixture(t)
	v := NewVerdictDB(f.schema, f.tables, 0.1, 3000, 6)
	if v.PrepTime <= 0 {
		t.Fatal("scramble prep time not measured")
	}
	q := query.Query{Aggregate: query.Avg, AggColumn: "t_production_year",
		Tables:  []string{"title", "movie_companies"},
		Filters: []query.Predicate{{Column: "mc_company_type_id", Op: query.Eq, Value: 1}}}
	truth, _ := f.oracle.Execute(q)
	res, err := v.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := query.RelativeError(res.Scalar(), truth.Scalar()); rel > 0.1 {
		t.Fatalf("VerdictDB AVG relative error %.3f", rel)
	}
}

func TestWanderJoinCount(t *testing.T) {
	f := getFixture(t)
	w := NewWanderJoin(f.schema, f.tables, 20000, 8)
	q := query.Query{Aggregate: query.Count, Tables: []string{"title", "movie_info"},
		Filters: []query.Predicate{{Column: "mi_info_type_id", Op: query.Le, Value: 5}}}
	truth, _ := f.oracle.Cardinality(q)
	est, err := w.EstimateCardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if qe := query.QError(est, truth); qe > 1.5 {
		t.Fatalf("WanderJoin q-error %.2f (est %.0f true %.0f)", qe, est, truth)
	}
}

func TestWanderJoinAvg(t *testing.T) {
	f := getFixture(t)
	w := NewWanderJoin(f.schema, f.tables, 20000, 9)
	q := query.Query{Aggregate: query.Avg, AggColumn: "t_production_year",
		Tables: []string{"title", "cast_info"}}
	truth, _ := f.oracle.Execute(q)
	res, err := w.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := query.RelativeError(res.Scalar(), truth.Scalar()); rel > 0.05 {
		t.Fatalf("WanderJoin AVG relative error %.3f", rel)
	}
}

func TestDBEstTemplateReuse(t *testing.T) {
	f := getFixture(t)
	d := NewDBEst(f.schema, f.tables, 5000)
	q1 := query.Query{Aggregate: query.Avg, AggColumn: "t_production_year",
		Tables: []string{"title"},
		Filters: []query.Predicate{{Column: "t_kind_id", Op: query.Eq, Value: 1},
			{Column: "t_production_year", Op: query.Ge, Value: 1990}}}
	c1, err := d.Prepare(q1)
	if err != nil {
		t.Fatal(err)
	}
	if c1 <= 0 {
		t.Fatal("first template should cost training time")
	}
	// Same template, different range constant: must be free.
	q2 := q1
	q2.Filters = []query.Predicate{{Column: "t_kind_id", Op: query.Eq, Value: 1},
		{Column: "t_production_year", Op: query.Ge, Value: 2005}}
	c2, err := d.Prepare(q2)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != 0 {
		t.Fatalf("template reuse should be free, cost %v", c2)
	}
	// Different categorical value: new template.
	q3 := q1
	q3.Filters = []query.Predicate{{Column: "t_kind_id", Op: query.Eq, Value: 2}}
	c3, err := d.Prepare(q3)
	if err != nil {
		t.Fatal(err)
	}
	if c3 <= 0 {
		t.Fatal("new template should cost training time")
	}
	// And the estimate itself should be usable.
	truth, _ := f.oracle.Execute(q1)
	res, err := d.Execute(q1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := query.RelativeError(res.Scalar(), truth.Scalar()); rel > 0.1 {
		t.Fatalf("DBEst AVG relative error %.3f", rel)
	}
}

func TestChooseRootPrefersOneSide(t *testing.T) {
	f := getFixture(t)
	root := chooseRoot(f.schema, []string{"movie_companies", "title", "cast_info"})
	if root != "title" {
		t.Fatalf("root = %s, want title", root)
	}
}

func TestOrientEdges(t *testing.T) {
	f := getFixture(t)
	steps, err := orientEdges(f.schema, []string{"title", "cast_info", "movie_info"}, "title")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(steps))
	}
	for _, st := range steps {
		if st.fromTable != "title" {
			t.Fatalf("star walk should start each step at title, got %+v", st)
		}
	}
}
