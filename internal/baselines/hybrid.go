package baselines

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ml"
	"repro/internal/query"
)

// Hybrid combines the data-driven and workload-driven worlds, the
// direction Section 8 of the paper proposes for future work ("a
// workload-driven model for a learned query optimizer might use the
// cardinality estimates of our model as input features"). It trains a
// small residual MLP on executed queries whose features are the MCSN-style
// query encoding *plus* DeepDB's log-estimate; the network learns the
// data-driven model's systematic residuals on the observed workload and
// falls back to the DeepDB estimate out of distribution.
type Hybrid struct {
	deepdb func(q query.Query) (float64, error)
	featur func(q query.Query) []float64
	net    *ml.MLP
	// TrainTime is the residual-model fitting time (the expensive query
	// execution is shared with whatever labelled the workload).
	TrainTime time.Duration
}

// NewHybrid trains the residual model. deepdb provides the data-driven
// estimate, featurize the query encoding (an MCSN's featurizer works), and
// oracle labels the training queries.
func NewHybrid(train []query.Query, deepdb func(query.Query) (float64, error),
	featurize func(query.Query) []float64, oracle Oracle, seed int64) (*Hybrid, error) {
	var feats [][]float64
	var targets []float64
	for _, q := range train {
		est, err := deepdb(q)
		if err != nil {
			return nil, err
		}
		truth, err := oracle(q)
		if err != nil {
			return nil, err
		}
		if est < 1 {
			est = 1
		}
		if truth < 1 {
			truth = 1
		}
		feats = append(feats, append(featurize(q), math.Log(est)))
		// The target is the log residual: log(true) - log(estimate).
		targets = append(targets, math.Log(truth)-math.Log(est))
	}
	if len(feats) < 10 {
		return nil, fmt.Errorf("baselines: only %d hybrid training queries", len(feats))
	}
	cfg := ml.DefaultMLPConfig()
	cfg.Hidden = []int{32, 32}
	cfg.Epochs = 30
	cfg.Seed = seed
	start := time.Now()
	net, err := ml.FitMLP(feats, targets, cfg)
	if err != nil {
		return nil, err
	}
	return &Hybrid{deepdb: deepdb, featur: featurize, net: net, TrainTime: time.Since(start)}, nil
}

// Name implements CardinalityEstimator.
func (h *Hybrid) Name() string { return "Hybrid" }

// EstimateCardinality returns DeepDB's estimate corrected by the learned
// residual, with the correction clamped so an out-of-distribution residual
// cannot destroy the data-driven estimate (at most one order of magnitude).
func (h *Hybrid) EstimateCardinality(q query.Query) (float64, error) {
	base, err := h.deepdb(q)
	if err != nil {
		return 0, err
	}
	if base < 1 {
		base = 1
	}
	resid := h.net.Predict(append(h.featur(q), math.Log(base)))
	const maxCorrection = 2.302585092994046 // ln(10)
	if resid > maxCorrection {
		resid = maxCorrection
	}
	if resid < -maxCorrection {
		resid = -maxCorrection
	}
	est := base * math.Exp(resid)
	if est < 1 {
		est = 1
	}
	return est, nil
}

// Featurizer exposes MCSN's query encoding for reuse by the hybrid.
func (m *MCSN) Featurizer() func(query.Query) []float64 {
	return m.featurize
}
