// Package baselines implements the comparison systems of the paper's
// evaluation, each as a from-scratch substitute for the original (see
// DESIGN.md for the substitution table):
//
//   - Postgres-style histogram estimator (non-learned cardinalities)
//   - MCSN, the workload-driven deep-set cardinality model of Kipf et al.
//   - Index-Based Join Sampling (Leis et al.)
//   - naive random sampling (cardinalities) and TABLESAMPLE (AQP)
//   - VerdictDB-style scramble-based AQP middleware
//   - Wander Join random-walk AQP
//   - DBEst-style per-query-template models
package baselines

import (
	"fmt"
	"sort"

	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
)

// CardinalityEstimator is the interface of every cardinality baseline.
type CardinalityEstimator interface {
	Name() string
	EstimateCardinality(q query.Query) (float64, error)
}

// fkIndex is a hash index from join-column value to row indexes, the
// secondary-index stand-in both IBJS and Wander Join rely on.
type fkIndex map[float64][]int

// buildIndex indexes a column's non-NULL values.
func buildIndex(t *table.Table, col string) (fkIndex, error) {
	c := t.Column(col)
	if c == nil {
		return nil, fmt.Errorf("baselines: no column %s in %s", col, t.Meta.Name)
	}
	idx := make(fkIndex, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		if !c.IsNull(i) {
			idx[c.Data[i]] = append(idx[c.Data[i]], i)
		}
	}
	return idx, nil
}

// indexSet lazily maintains hash indexes per (table, column).
type indexSet struct {
	tables map[string]*table.Table
	idx    map[string]fkIndex
}

func newIndexSet(tables map[string]*table.Table) *indexSet {
	return &indexSet{tables: tables, idx: map[string]fkIndex{}}
}

func (s *indexSet) get(tableName, col string) (fkIndex, error) {
	key := tableName + "." + col
	if ix, ok := s.idx[key]; ok {
		return ix, nil
	}
	t, ok := s.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("baselines: unknown table %s", tableName)
	}
	ix, err := buildIndex(t, col)
	if err != nil {
		return nil, err
	}
	s.idx[key] = ix
	return ix, nil
}

// rowMatches evaluates the subset of predicates owned by one table against
// one of its rows (NULL fails, as everywhere).
func rowMatches(t *table.Table, row int, preds []query.Predicate) bool {
	for _, p := range preds {
		c := t.Column(p.Column)
		if c == nil {
			continue // predicate for another table
		}
		if c.IsNull(row) || !p.Matches(c.Data[row]) {
			return false
		}
	}
	return true
}

// predsOf returns the predicates whose column lives in the given table.
func predsOf(t *table.Table, preds []query.Predicate) []query.Predicate {
	var out []query.Predicate
	for _, p := range preds {
		if t.Column(p.Column) != nil {
			out = append(out, p)
		}
	}
	return out
}

// orientEdges orders the join edges of a query as a walk starting from
// `root`, each step recording the table already visited and the new table
// with their join columns. Used by IBJS and Wander Join.
type joinStep struct {
	fromTable, fromCol string
	toTable, toCol     string
}

func orientEdges(s *schema.Schema, tables []string, root string) ([]joinStep, error) {
	edges, err := s.JoinTree(tables)
	if err != nil {
		return nil, err
	}
	visited := map[string]bool{root: true}
	var steps []joinStep
	remaining := append([]schema.Relationship(nil), edges...)
	for len(remaining) > 0 {
		progressed := false
		for i, e := range remaining {
			switch {
			case visited[e.Many] && !visited[e.One]:
				steps = append(steps, joinStep{e.Many, e.ManyColumn, e.One, e.OneColumn})
				visited[e.One] = true
			case visited[e.One] && !visited[e.Many]:
				steps = append(steps, joinStep{e.One, e.OneColumn, e.Many, e.ManyColumn})
				visited[e.Many] = true
			default:
				continue
			}
			remaining = append(remaining[:i], remaining[i+1:]...)
			progressed = true
			break
		}
		if !progressed {
			return nil, fmt.Errorf("baselines: join edges not a connected tree from %s", root)
		}
	}
	return steps, nil
}

// chooseRoot picks a walk root: prefer a table that is never on the Many
// side within the query (the "One-most" table), else the first table.
func chooseRoot(s *schema.Schema, tables []string) string {
	inQuery := map[string]bool{}
	for _, t := range tables {
		inQuery[t] = true
	}
	many := map[string]bool{}
	for _, rel := range s.Relationships() {
		if inQuery[rel.Many] && inQuery[rel.One] {
			many[rel.Many] = true
		}
	}
	cands := append([]string(nil), tables...)
	sort.Strings(cands)
	for _, t := range cands {
		if !many[t] {
			return t
		}
	}
	return tables[0]
}
