package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/exact"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
)

// RandomSampling is the naive cardinality baseline: every table is
// Bernoulli-sampled at the same rate, the query runs exactly on the
// samples, and the count scales by rate^-k for a k-table join. Join results
// thin out quadratically (and worse) in the number of joins, giving the
// huge tail errors Table 1 reports for this baseline.
type RandomSampling struct {
	engine *exact.Engine
	rate   float64
}

// NewRandomSampling draws the per-table samples once (like maintaining a
// sample catalog).
func NewRandomSampling(s *schema.Schema, tables map[string]*table.Table, rate float64, seed int64) (*RandomSampling, error) {
	if rate <= 0 || rate > 1 {
		rate = 0.01
	}
	rng := rand.New(rand.NewSource(seed))
	sampled := make(map[string]*table.Table, len(tables))
	for name, t := range tables {
		var keep []int
		for i := 0; i < t.NumRows(); i++ {
			if rng.Float64() < rate {
				keep = append(keep, i)
			}
		}
		sampled[name] = t.Select(keep)
	}
	return &RandomSampling{engine: exact.New(s, sampled), rate: rate}, nil
}

// Name implements CardinalityEstimator.
func (r *RandomSampling) Name() string { return "RandomSampling" }

// EstimateCardinality runs the query on the samples and scales up.
func (r *RandomSampling) EstimateCardinality(q query.Query) (float64, error) {
	card, err := r.engine.Cardinality(q)
	if err != nil {
		return 0, err
	}
	scale := 1.0
	for range q.Tables {
		scale /= r.rate
	}
	return card * scale, nil
}

// TableSample is the Postgres TABLESAMPLE AQP baseline: the fact table (the
// largest table of the query) is sampled at a fixed rate, dimension tables
// are used in full, and counts/sums scale by the inverse rate. Groups with
// no sampled rows produce no result — the failure mode Figure 10 shows.
type TableSample struct {
	schema *schema.Schema
	full   map[string]*table.Table
	rate   float64
	seed   int64
	// engines caches one exact engine per fact-table choice.
	engines map[string]*exact.Engine
}

// NewTableSample prepares the sampler.
func NewTableSample(s *schema.Schema, tables map[string]*table.Table, rate float64, seed int64) *TableSample {
	if rate <= 0 || rate > 1 {
		rate = 0.01
	}
	return &TableSample{schema: s, full: tables, rate: rate, seed: seed,
		engines: map[string]*exact.Engine{}}
}

// Name identifies the baseline.
func (ts *TableSample) Name() string { return "TableSample" }

// factTable picks the largest participating table to sample.
func (ts *TableSample) factTable(tables []string) string {
	best, bestRows := tables[0], -1
	for _, tn := range tables {
		if t := ts.full[tn]; t != nil && t.NumRows() > bestRows {
			best, bestRows = tn, t.NumRows()
		}
	}
	return best
}

func (ts *TableSample) engineFor(fact string) *exact.Engine {
	if e, ok := ts.engines[fact]; ok {
		return e
	}
	rng := rand.New(rand.NewSource(ts.seed))
	mixed := make(map[string]*table.Table, len(ts.full))
	for name, t := range ts.full {
		if name != fact {
			mixed[name] = t
			continue
		}
		var keep []int
		for i := 0; i < t.NumRows(); i++ {
			if rng.Float64() < ts.rate {
				keep = append(keep, i)
			}
		}
		mixed[name] = t.Select(keep)
	}
	e := exact.New(ts.schema, mixed)
	ts.engines[fact] = e
	return e
}

// Execute answers the aggregate query from the sample. COUNT and SUM scale
// by 1/rate; AVG is scale-free. Empty samples yield an empty result
// ("no result" in the figures).
func (ts *TableSample) Execute(q query.Query) (query.Result, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, err
	}
	fact := ts.factTable(q.Tables)
	res, err := ts.engineFor(fact).Execute(q)
	if err != nil {
		return query.Result{}, err
	}
	// Count qualifying sample rows to detect "no result".
	cnt, err := ts.engineFor(fact).Cardinality(q)
	if err != nil {
		return query.Result{}, err
	}
	if cnt == 0 {
		return query.Result{}, nil
	}
	if q.Aggregate == query.Count || q.Aggregate == query.Sum {
		for i := range res.Groups {
			res.Groups[i].Value /= ts.rate
		}
	}
	return res, nil
}

// EstimateCardinality lets TableSample double as a cardinality baseline.
func (ts *TableSample) EstimateCardinality(q query.Query) (float64, error) {
	cq := q
	cq.Aggregate = query.Count
	cq.GroupBy = nil
	res, err := ts.Execute(cq)
	if err != nil {
		return 0, err
	}
	return res.Scalar(), nil
}

// SampleBasedCI computes ground-truth confidence intervals from an actual
// uniform sample, the comparison method of Figure 11: binomial for COUNT,
// CLT for AVG, and the product estimator for SUM.
type SampleBasedCI struct {
	engine *exact.Engine
	rate   float64
	n      int
}

// NewSampleBasedCI draws a uniform sample of every table at the rate that
// yields about targetRows from the largest table.
func NewSampleBasedCI(s *schema.Schema, tables map[string]*table.Table, targetRows int, seed int64) *SampleBasedCI {
	largest := 0
	for _, t := range tables {
		if t.NumRows() > largest {
			largest = t.NumRows()
		}
	}
	rate := 1.0
	if targetRows > 0 && largest > targetRows {
		rate = float64(targetRows) / float64(largest)
	}
	rng := rand.New(rand.NewSource(seed))
	sampled := make(map[string]*table.Table, len(tables))
	n := 0
	for name, t := range tables {
		var keep []int
		for i := 0; i < t.NumRows(); i++ {
			if rng.Float64() < rate {
				keep = append(keep, i)
			}
		}
		sampled[name] = t.Select(keep)
		if len(keep) > n {
			n = len(keep)
		}
	}
	return &SampleBasedCI{engine: exact.New(s, sampled), rate: rate, n: n}
}

// RelativeCILength returns (a_pred - a_lower)/a_pred at 95% confidence for
// the query's aggregate, and whether enough sample rows qualified (the
// figure excludes groups with fewer than 10 qualifying samples).
func (sb *SampleBasedCI) RelativeCILength(q query.Query) (float64, bool, error) {
	const z = 1.959963984540054
	cq := q
	cq.GroupBy = nil
	cnt, err := sb.engine.Cardinality(cq)
	if err != nil {
		return 0, false, err
	}
	if cnt < 10 {
		return 0, false, nil
	}
	switch q.Aggregate {
	case query.Count:
		// Binomial proportion over the sampled join.
		js, err := sb.engine.JoinSize(q.Tables)
		if err != nil {
			return 0, false, err
		}
		if js == 0 {
			return 0, false, nil
		}
		p := cnt / js
		sd := jsStd(p, js)
		return z * sd / p, true, nil
	case query.Avg:
		mean, sd, n, err := sb.meanStd(cq)
		if err != nil || n < 2 || mean == 0 {
			return 0, false, err
		}
		return z * sd / (mean * sqrtF(n)), true, nil
	case query.Sum:
		// Product of count and mean estimators.
		js, err := sb.engine.JoinSize(q.Tables)
		if err != nil || js == 0 {
			return 0, false, err
		}
		p := cnt / js
		mean, sd, n, err := sb.meanStd(cq)
		if err != nil || n < 2 {
			return 0, false, err
		}
		relP := jsStd(p, js) / p
		relM := sd / (mean * sqrtF(n))
		rel := z * sqrtF(relP*relP+relM*relM)
		if rel < 0 {
			rel = -rel
		}
		return rel, true, nil
	default:
		return 0, false, fmt.Errorf("baselines: unsupported aggregate %v", q.Aggregate)
	}
}

func (sb *SampleBasedCI) meanStd(q query.Query) (mean, sd, n float64, err error) {
	aq := q
	aq.Aggregate = query.Avg
	res, err := sb.engine.Execute(aq)
	if err != nil {
		return 0, 0, 0, err
	}
	mean = res.Scalar()
	cnt, err := sb.engine.Cardinality(q)
	if err != nil {
		return 0, 0, 0, err
	}
	n = cnt
	sd, err = sb.scanStd(q)
	return mean, sd, n, err
}

// scanStd computes the sample standard deviation of the aggregate column
// over the qualifying sampled rows with a direct Welford scan.
func (sb *SampleBasedCI) scanStd(q query.Query) (float64, error) {
	j, rows, err := sb.qualifyingRows(q)
	if err != nil {
		return 0, err
	}
	col := j.Column(q.AggColumn)
	if col == nil {
		return 0, fmt.Errorf("baselines: no column %s", q.AggColumn)
	}
	var n int
	var mean, m2 float64
	for _, r := range rows {
		if col.IsNull(r) {
			continue
		}
		n++
		d := col.Data[r] - mean
		mean += d / float64(n)
		m2 += d * (col.Data[r] - mean)
	}
	if n < 2 {
		return 0, nil
	}
	return sqrtF(m2 / float64(n-1)), nil
}

func (sb *SampleBasedCI) qualifyingRows(q query.Query) (*table.Table, []int, error) {
	j, err := sb.engine.Materialize(q.Tables)
	if err != nil {
		return nil, nil, err
	}
	rows, err := exact.FilterRows(j, q.Filters)
	if err != nil {
		return nil, nil, err
	}
	return j, rows, nil
}

func jsStd(p, n float64) float64 {
	v := p * (1 - p) / n
	if v < 0 {
		v = 0
	}
	return sqrtF(v)
}

func sqrtF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
