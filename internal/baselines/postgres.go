package baselines

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
)

// Postgres is a textbook System-R-style estimator modeled on Postgres'
// statistics: per-column most-common-value lists plus equi-depth
// histograms, attribute-value independence between predicates, and the
// |R|*|S| / max(ndv) rule for FK joins. It reproduces the baseline's
// characteristic behaviour: decent single-table estimates, error that
// compounds exponentially with join count.
type Postgres struct {
	Schema *schema.Schema
	tables map[string]*table.Table
	stats  map[string]*columnStats // keyed by column name (globally unique)
}

type columnStats struct {
	nonNullFrac float64
	ndv         float64
	mcv         map[float64]float64 // value -> frequency fraction (top-k)
	mcvTotal    float64             // total fraction covered by the MCV list
	bounds      []float64           // equi-depth histogram bounds (101 edges)
}

// NewPostgres builds statistics for all tables (the ANALYZE step).
func NewPostgres(s *schema.Schema, tables map[string]*table.Table) (*Postgres, error) {
	p := &Postgres{Schema: s, tables: tables, stats: map[string]*columnStats{}}
	for _, meta := range s.Tables {
		t := tables[meta.Name]
		if t == nil {
			return nil, fmt.Errorf("baselines: missing table %s", meta.Name)
		}
		for _, c := range t.Cols {
			p.stats[c.Meta.Name] = analyzeColumn(c)
		}
	}
	return p, nil
}

func analyzeColumn(c *table.Column) *columnStats {
	n := c.Len()
	st := &columnStats{}
	if n == 0 {
		return st
	}
	counts := make(map[float64]int)
	var vals []float64
	for i := 0; i < n; i++ {
		if c.IsNull(i) {
			continue
		}
		counts[c.Data[i]]++
		vals = append(vals, c.Data[i])
	}
	st.nonNullFrac = float64(len(vals)) / float64(n)
	st.ndv = float64(len(counts))
	// Top-100 MCVs.
	type vc struct {
		v float64
		c int
	}
	var list []vc
	for v, cnt := range counts {
		list = append(list, vc{v, cnt})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].c > list[j].c })
	st.mcv = map[float64]float64{}
	for i := 0; i < len(list) && i < 100; i++ {
		f := float64(list[i].c) / float64(n)
		st.mcv[list[i].v] = f
		st.mcvTotal += f
	}
	// Equi-depth histogram over all values.
	sort.Float64s(vals)
	const buckets = 100
	st.bounds = make([]float64, buckets+1)
	for b := 0; b <= buckets; b++ {
		pos := b * (len(vals) - 1) / buckets
		st.bounds[b] = vals[pos]
	}
	return st
}

// Name implements CardinalityEstimator.
func (p *Postgres) Name() string { return "Postgres" }

// EstimateCardinality multiplies per-table selectivities into the FK-join
// size estimate.
func (p *Postgres) EstimateCardinality(q query.Query) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	card, err := p.joinSize(q.Tables)
	if err != nil {
		return 0, err
	}
	for _, pred := range q.Filters {
		sel, err := p.selectivity(pred)
		if err != nil {
			return 0, err
		}
		card *= sel
	}
	if card < 1 {
		card = 1
	}
	return card, nil
}

// joinSize applies |R join S| = |R|*|S| / max(ndv(R.fk), ndv(S.pk)) over
// the query's join tree.
func (p *Postgres) joinSize(tables []string) (float64, error) {
	if len(tables) == 1 {
		t, ok := p.tables[tables[0]]
		if !ok {
			return 0, fmt.Errorf("baselines: unknown table %s", tables[0])
		}
		return float64(t.NumRows()), nil
	}
	edges, err := p.Schema.JoinTree(tables)
	if err != nil {
		return 0, err
	}
	card := 1.0
	for _, tn := range tables {
		card *= float64(p.tables[tn].NumRows())
	}
	for _, e := range edges {
		fkStats := p.stats[e.ManyColumn]
		pkStats := p.stats[e.OneColumn]
		ndv := math.Max(fkStats.ndv, pkStats.ndv)
		if ndv < 1 {
			ndv = 1
		}
		card /= ndv
	}
	return card, nil
}

// selectivity estimates one predicate with MCVs + histogram.
func (p *Postgres) selectivity(pred query.Predicate) (float64, error) {
	st := p.lookup(pred.Column)
	if st == nil {
		return 0, fmt.Errorf("baselines: no statistics for column %s", pred.Column)
	}
	switch pred.Op {
	case query.Eq:
		return st.eqSelectivity(pred.Value), nil
	case query.Ne:
		return clamp01(st.nonNullFrac - st.eqSelectivity(pred.Value)), nil
	case query.In:
		s := 0.0
		for _, v := range pred.Values {
			s += st.eqSelectivity(v)
		}
		return clamp01(s), nil
	case query.Lt, query.Le:
		return clamp01(st.rangeFraction(math.Inf(-1), pred.Value)), nil
	case query.Gt, query.Ge:
		return clamp01(st.rangeFraction(pred.Value, math.Inf(1))), nil
	default:
		return 0.33, nil // Postgres-style default
	}
}

func (p *Postgres) lookup(col string) *columnStats {
	return p.stats[col]
}

func (st *columnStats) eqSelectivity(v float64) float64 {
	if f, ok := st.mcv[v]; ok {
		return f
	}
	// Uniform share of the non-MCV remainder.
	rest := st.nonNullFrac - st.mcvTotal
	nOther := st.ndv - float64(len(st.mcv))
	if rest <= 0 || nOther <= 0 {
		return 0.0005 // tiny default for unseen values
	}
	return rest / nOther
}

// rangeFraction estimates P(lo <= X <= hi) from the equi-depth histogram.
func (st *columnStats) rangeFraction(lo, hi float64) float64 {
	if len(st.bounds) < 2 {
		return 0.33 * st.nonNullFrac
	}
	buckets := len(st.bounds) - 1
	covered := 0.0
	for b := 0; b < buckets; b++ {
		bLo, bHi := st.bounds[b], st.bounds[b+1]
		oLo, oHi := math.Max(bLo, lo), math.Min(bHi, hi)
		if oHi < oLo {
			continue
		}
		if bHi == bLo {
			covered += 1
			continue
		}
		covered += (oHi - oLo) / (bHi - bLo)
	}
	return covered / float64(buckets) * st.nonNullFrac
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
