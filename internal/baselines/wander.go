package baselines

import (
	"fmt"
	"math/rand"

	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
)

// WanderJoin is the online-aggregation random-walk estimator of Li et al.
// (SIGMOD 2016): each walk starts from a uniformly random qualifying row of
// the root table and extends across the join tree by picking one uniformly
// random matching partner per step through an index. The product of the
// fan-outs along the walk is its inverse sampling probability
// (Horvitz-Thompson weight); walks that die on a filter or an empty index
// bucket contribute zero. COUNT, SUM and AVG average the weighted
// contributions over a fixed number of walks (the stand-in for the paper's
// two-second time budget).
type WanderJoin struct {
	Schema  *schema.Schema
	tables  map[string]*table.Table
	indexes *indexSet
	// Walks per estimate.
	Walks int
	rng   *rand.Rand
}

// NewWanderJoin prepares the estimator; hash indexes build lazily, standing
// in for the secondary indexes the original requires.
func NewWanderJoin(s *schema.Schema, tables map[string]*table.Table, walks int, seed int64) *WanderJoin {
	if walks <= 0 {
		walks = 10000
	}
	return &WanderJoin{
		Schema: s, tables: tables, indexes: newIndexSet(tables),
		Walks: walks, rng: rand.New(rand.NewSource(seed)),
	}
}

// Name identifies the baseline.
func (w *WanderJoin) Name() string { return "WanderJoin" }

// walkResult is one successful walk: its HT weight, the walked rows, and
// the aggregate value found on them.
type walkResult struct {
	weight  float64
	current map[string]int
}

// walk performs one random walk; ok is false when the walk dies.
func (w *WanderJoin) walk(root string, qualifying []int, steps []joinStep, filters []query.Predicate) (walkResult, bool) {
	row := qualifying[w.rng.Intn(len(qualifying))]
	weight := float64(len(qualifying))
	current := map[string]int{root: row}
	for _, st := range steps {
		fromTable := w.tables[st.fromTable]
		fromCol := fromTable.Column(st.fromCol)
		fromRow := current[st.fromTable]
		if fromCol.IsNull(fromRow) {
			return walkResult{}, false
		}
		idx, err := w.indexes.get(st.toTable, st.toCol)
		if err != nil {
			return walkResult{}, false
		}
		partners := idx[fromCol.Data[fromRow]]
		if len(partners) == 0 {
			return walkResult{}, false
		}
		pick := partners[w.rng.Intn(len(partners))]
		toTable := w.tables[st.toTable]
		if !rowMatches(toTable, pick, predsOf(toTable, filters)) {
			return walkResult{}, false
		}
		weight *= float64(len(partners))
		current[st.toTable] = pick
	}
	return walkResult{weight: weight, current: current}, true
}

// columnValue finds the named column among the walked rows.
func (w *WanderJoin) columnValue(current map[string]int, col string) (float64, bool) {
	for tn, r := range current {
		if c := w.tables[tn].Column(col); c != nil {
			if c.IsNull(r) {
				return 0, false
			}
			return c.Data[r], true
		}
	}
	return 0, false
}

// Execute estimates the aggregate with HT-weighted random walks; group-by
// queries accumulate per group key.
func (w *WanderJoin) Execute(q query.Query) (query.Result, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, err
	}
	root := chooseRoot(w.Schema, q.Tables)
	rootTable, ok := w.tables[root]
	if !ok {
		return query.Result{}, fmt.Errorf("baselines: unknown table %s", root)
	}
	steps, err := orientEdges(w.Schema, q.Tables, root)
	if err != nil {
		return query.Result{}, err
	}
	var qualifying []int
	rootPreds := predsOf(rootTable, q.Filters)
	for i := 0; i < rootTable.NumRows(); i++ {
		if rowMatches(rootTable, i, rootPreds) {
			qualifying = append(qualifying, i)
		}
	}
	if len(qualifying) == 0 {
		return query.Result{}, nil
	}
	type acc struct{ count, sum, sumWeight float64 }
	groups := map[string]*acc{}
	keys := map[string][]float64{}
	for i := 0; i < w.Walks; i++ {
		res, alive := w.walk(root, qualifying, steps, q.Filters)
		if !alive {
			continue
		}
		key := make([]float64, len(q.GroupBy))
		bad := false
		for gi, g := range q.GroupBy {
			v, ok := w.columnValue(res.current, g)
			if !ok {
				bad = true
				break
			}
			key[gi] = v
		}
		if bad {
			continue
		}
		ks := fmt.Sprint(key)
		a, exists := groups[ks]
		if !exists {
			a = &acc{}
			groups[ks] = a
			keys[ks] = key
		}
		a.count += res.weight
		if q.Aggregate != query.Count {
			if v, ok := w.columnValue(res.current, q.AggColumn); ok {
				a.sum += res.weight * v
				a.sumWeight += res.weight
			}
		}
	}
	var out query.Result
	for ks, a := range groups {
		var v float64
		switch q.Aggregate {
		case query.Count:
			v = a.count / float64(w.Walks)
		case query.Sum:
			v = a.sum / float64(w.Walks)
		case query.Avg:
			// Normalize by the weight of walks with a non-NULL aggregate
			// value (SQL AVG ignores NULLs).
			if a.sumWeight == 0 {
				continue
			}
			v = a.sum / a.sumWeight
		}
		out.Groups = append(out.Groups, query.Group{Key: keys[ks], Value: v})
	}
	return out, nil
}

// EstimateCardinality lets Wander Join double as a cardinality estimator.
func (w *WanderJoin) EstimateCardinality(q query.Query) (float64, error) {
	cq := q
	cq.Aggregate = query.Count
	cq.GroupBy = nil
	res, err := w.Execute(cq)
	if err != nil {
		return 0, err
	}
	return res.Scalar(), nil
}
