package baselines

import (
	"math/rand"
	"time"

	"repro/internal/exact"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/table"
)

// VerdictDB mimics the scramble-based AQP middleware of Park et al.
// (SIGMOD 2018): at preparation time it builds a uniform "scramble" of
// every fact table (tables above a row threshold) plus a stratified sample
// keyed on the table's first low-cardinality attribute; at query time the
// scramble replaces the fact table and counts/sums scale by the inverse
// sampling rate. Preparation cost is the full scan + sample build, the cost
// the paper reports as hours-to-days at their scale.
type VerdictDB struct {
	schema *schema.Schema
	rate   float64
	engine *exact.Engine
	// PrepTime is the measured scramble-creation time.
	PrepTime time.Duration
	// scrambled marks which tables were replaced by scrambles.
	scrambled map[string]bool
}

// NewVerdictDB builds scrambles for every table larger than factThreshold
// rows at the given sampling rate.
func NewVerdictDB(s *schema.Schema, tables map[string]*table.Table, rate float64, factThreshold int, seed int64) *VerdictDB {
	if rate <= 0 || rate > 1 {
		rate = 0.01
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	mixed := make(map[string]*table.Table, len(tables))
	scrambled := map[string]bool{}
	for name, t := range tables {
		if t.NumRows() <= factThreshold {
			mixed[name] = t
			continue
		}
		// Uniform scramble with a stratified floor: group rows by the
		// first small-domain attribute and keep at least one row per
		// stratum, so rare groups survive (VerdictDB's verdict_tier).
		strata := map[float64]bool{}
		stratCol := firstSmallDomainColumn(t)
		var keep []int
		for i := 0; i < t.NumRows(); i++ {
			picked := rng.Float64() < rate
			if !picked && stratCol != nil && !stratCol.IsNull(i) && !strata[stratCol.Data[i]] {
				picked = true
			}
			if picked {
				keep = append(keep, i)
				if stratCol != nil && !stratCol.IsNull(i) {
					strata[stratCol.Data[i]] = true
				}
			}
		}
		mixed[name] = t.Select(keep)
		scrambled[name] = true
	}
	v := &VerdictDB{
		schema: s, rate: rate, engine: exact.New(s, mixed),
		PrepTime: time.Since(start), scrambled: scrambled,
	}
	return v
}

// firstSmallDomainColumn picks a stratification column with <= 64 distinct
// values, or nil.
func firstSmallDomainColumn(t *table.Table) *table.Column {
	for _, c := range t.Cols {
		if len(c.Meta.Name) > 2 && c.Meta.Name[:2] == "__" {
			continue
		}
		seen := map[float64]bool{}
		small := true
		for i := 0; i < t.NumRows() && small; i++ {
			if c.IsNull(i) {
				continue
			}
			seen[c.Data[i]] = true
			if len(seen) > 64 {
				small = false
			}
		}
		if small && len(seen) > 1 {
			return c
		}
	}
	return nil
}

// Name identifies the baseline.
func (v *VerdictDB) Name() string { return "VerdictDB" }

// Execute answers the query from the scrambles. COUNT/SUM scale by the
// inverse rate when the query touches a scrambled table; an empty scramble
// selection returns no result.
func (v *VerdictDB) Execute(q query.Query) (query.Result, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, err
	}
	res, err := v.engine.Execute(q)
	if err != nil {
		return query.Result{}, err
	}
	cnt, err := v.engine.Cardinality(q)
	if err != nil {
		return query.Result{}, err
	}
	if cnt == 0 {
		return query.Result{}, nil
	}
	usesScramble := false
	for _, tn := range q.Tables {
		if v.scrambled[tn] {
			usesScramble = true
		}
	}
	if usesScramble && (q.Aggregate == query.Count || q.Aggregate == query.Sum) {
		for i := range res.Groups {
			res.Groups[i].Value /= v.rate
		}
	}
	return res, nil
}
