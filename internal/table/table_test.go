package table

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/schema"
)

// paperSchema builds the Customer/Order schema from Figure 5 of the paper.
func paperSchema() *schema.Schema {
	return &schema.Schema{Tables: []*schema.Table{
		{
			Name: "customer",
			Columns: []schema.Column{
				{Name: "c_id", Kind: schema.IntKind},
				{Name: "c_age", Kind: schema.IntKind},
				{Name: "c_region", Kind: schema.CategoricalKind},
			},
			PrimaryKey: "c_id",
		},
		{
			Name: "orders",
			Columns: []schema.Column{
				{Name: "o_id", Kind: schema.IntKind},
				{Name: "o_c_id", Kind: schema.IntKind},
				{Name: "o_channel", Kind: schema.CategoricalKind},
			},
			PrimaryKey: "o_id",
			ForeignKeys: []schema.ForeignKey{
				{Column: "o_c_id", RefTable: "customer", RefColumn: "c_id"},
			},
		},
	}}
}

// paperTables builds the exact data of Figure 5a.
func paperTables(t *testing.T, s *schema.Schema) map[string]*Table {
	t.Helper()
	cust := New(s.Table("customer"))
	cRegion := cust.Column("c_region")
	cust.AppendRow(Int(1), Int(20), Value{F: float64(cRegion.Encode("EUROPE"))})
	cust.AppendRow(Int(2), Int(50), Value{F: float64(cRegion.Encode("EUROPE"))})
	cust.AppendRow(Int(3), Int(80), Value{F: float64(cRegion.Encode("ASIA"))})

	ord := New(s.Table("orders"))
	oChan := ord.Column("o_channel")
	ord.AppendRow(Int(1), Int(1), Value{F: float64(oChan.Encode("ONLINE"))})
	ord.AppendRow(Int(2), Int(1), Value{F: float64(oChan.Encode("STORE"))})
	ord.AppendRow(Int(3), Int(3), Value{F: float64(oChan.Encode("ONLINE"))})
	ord.AppendRow(Int(4), Int(3), Value{F: float64(oChan.Encode("STORE"))})
	return map[string]*Table{"customer": cust, "orders": ord}
}

func TestSchemaValidate(t *testing.T) {
	s := paperSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := paperSchema()
	bad.Tables[1].ForeignKeys[0].RefTable = "nope"
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error for dangling FK")
	}
}

func TestTupleFactorsMatchPaper(t *testing.T) {
	s := paperSchema()
	tabs := paperTables(t, s)
	rel := s.Relationships()[0]
	if rel.ID() != "customer<-orders" {
		t.Fatalf("relationship ID = %s", rel.ID())
	}
	if err := AddTupleFactor(tabs["customer"], tabs["orders"], rel); err != nil {
		t.Fatal(err)
	}
	fc := tabs["customer"].Column(TupleFactorColumn(rel))
	// Figure 5a: customer 1 has 2 orders, customer 2 has 0, customer 3 has 2.
	want := []float64{2, 0, 2}
	for i, w := range want {
		if fc.Data[i] != w {
			t.Fatalf("tuple factor[%d] = %v, want %v", i, fc.Data[i], w)
		}
	}
}

func TestFullOuterJoinMatchesFigure5b(t *testing.T) {
	s := paperSchema()
	tabs := paperTables(t, s)
	rel := s.Relationships()[0]
	if err := AddTupleFactor(tabs["customer"], tabs["orders"], rel); err != nil {
		t.Fatal(err)
	}
	spec := JoinSpec{Tables: []string{"customer", "orders"}, Edges: []schema.Relationship{rel}}
	j, err := FullOuterJoin(tabs, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5b has 5 rows: 2 orders for customer 1, the orphan customer 2,
	// 2 orders for customer 3.
	if j.NumRows() != 5 {
		t.Fatalf("full outer join rows = %d, want 5", j.NumRows())
	}
	nc := j.Column(IndicatorColumn("customer"))
	no := j.Column(IndicatorColumn("orders"))
	if nc == nil || no == nil {
		t.Fatal("missing indicator columns")
	}
	sumNC, sumNO := 0.0, 0.0
	for i := 0; i < 5; i++ {
		sumNC += nc.Data[i]
		sumNO += no.Data[i]
	}
	if sumNC != 5 { // every row has a customer
		t.Fatalf("sum N_customer = %v, want 5", sumNC)
	}
	if sumNO != 4 { // one row (customer 2) has no order
		t.Fatalf("sum N_orders = %v, want 4", sumNO)
	}
	// The orphan row must have NULL order columns.
	oChan := j.Column("o_channel")
	orphan := -1
	for i := 0; i < 5; i++ {
		if no.Data[i] == 0 {
			orphan = i
		}
	}
	if orphan < 0 || !oChan.Nul[orphan] {
		t.Fatal("orphan customer row should have NULL o_channel")
	}
	// Tuple factor column must be present in the join and be 0 only for the
	// orphan.
	fc := j.Column(TupleFactorColumn(rel))
	for i := 0; i < 5; i++ {
		want := 2.0
		if i == orphan {
			want = 0
		}
		if fc.Data[i] != want {
			t.Fatalf("F'[%d] = %v, want %v", i, fc.Data[i], want)
		}
	}
}

func TestInnerJoinCount(t *testing.T) {
	s := paperSchema()
	tabs := paperTables(t, s)
	rel := s.Relationships()[0]
	spec := JoinSpec{Tables: []string{"customer", "orders"}, Edges: []schema.Relationship{rel}}
	j, err := InnerJoin(tabs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 4 {
		t.Fatalf("inner join rows = %d, want 4 (paper: |C join O| = 4)", j.NumRows())
	}
}

func TestJoinTree(t *testing.T) {
	s := paperSchema()
	edges, err := s.JoinTree([]string{"customer", "orders"})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1 {
		t.Fatalf("join tree edges = %d, want 1", len(edges))
	}
	if _, err := s.JoinTree([]string{"customer", "unknown"}); err == nil {
		t.Fatal("expected error for unknown table")
	}
}

func TestThreeWayFullOuterJoin(t *testing.T) {
	// customer <- orders <- orderline chain.
	s := &schema.Schema{Tables: []*schema.Table{
		{Name: "c", Columns: []schema.Column{{Name: "c_id", Kind: schema.IntKind}}, PrimaryKey: "c_id"},
		{Name: "o", Columns: []schema.Column{
			{Name: "o_id", Kind: schema.IntKind}, {Name: "o_cid", Kind: schema.IntKind}},
			PrimaryKey:  "o_id",
			ForeignKeys: []schema.ForeignKey{{Column: "o_cid", RefTable: "c", RefColumn: "c_id"}}},
		{Name: "l", Columns: []schema.Column{
			{Name: "l_id", Kind: schema.IntKind}, {Name: "l_oid", Kind: schema.IntKind}},
			PrimaryKey:  "l_id",
			ForeignKeys: []schema.ForeignKey{{Column: "l_oid", RefTable: "o", RefColumn: "o_id"}}},
	}}
	c := New(s.Table("c"))
	c.AppendRow(Int(1))
	c.AppendRow(Int(2))
	o := New(s.Table("o"))
	o.AppendRow(Int(10), Int(1))
	o.AppendRow(Int(11), Int(1))
	l := New(s.Table("l"))
	l.AppendRow(Int(100), Int(10))
	l.AppendRow(Int(101), Int(10))
	l.AppendRow(Int(102), Int(11))
	tabs := map[string]*Table{"c": c, "o": o, "l": l}
	edges, err := s.JoinTree([]string{"c", "o", "l"})
	if err != nil {
		t.Fatal(err)
	}
	j, err := FullOuterJoin(tabs, JoinSpec{Tables: []string{"c", "o", "l"}, Edges: edges})
	if err != nil {
		t.Fatal(err)
	}
	// customer 1: order 10 x 2 lines + order 11 x 1 line = 3 rows;
	// customer 2: 1 padded row. Total 4.
	if j.NumRows() != 4 {
		t.Fatalf("3-way join rows = %d, want 4", j.NumRows())
	}
	inner, err := InnerJoin(tabs, JoinSpec{Tables: []string{"c", "o", "l"}, Edges: edges})
	if err != nil {
		t.Fatal(err)
	}
	if inner.NumRows() != 3 {
		t.Fatalf("3-way inner join rows = %d, want 3", inner.NumRows())
	}
}

func TestSelectAndMatrix(t *testing.T) {
	s := paperSchema()
	tabs := paperTables(t, s)
	cust := tabs["customer"]
	sub := cust.Select([]int{0, 2})
	if sub.NumRows() != 2 {
		t.Fatalf("select rows = %d, want 2", sub.NumRows())
	}
	if got := sub.Column("c_age").Data[1]; got != 80 {
		t.Fatalf("selected row 1 c_age = %v, want 80", got)
	}
	// Dictionary must be shared: decoding still works.
	r := sub.Column("c_region")
	if r.Decode(int(r.Data[0])) != "EUROPE" {
		t.Fatal("dictionary not shared after Select")
	}
	m, err := cust.Matrix([]string{"c_age", "c_region"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || len(m[0]) != 2 {
		t.Fatalf("matrix shape = %dx%d", len(m), len(m[0]))
	}
}

func TestMatrixNullIsNaN(t *testing.T) {
	meta := &schema.Table{Name: "t", Columns: []schema.Column{{Name: "x", Kind: schema.FloatKind, Nullable: true}}}
	tb := New(meta)
	tb.AppendRow(Float(1))
	tb.AppendRow(Null())
	m, err := tb.Matrix([]string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m[1][0]) {
		t.Fatalf("NULL should materialize as NaN, got %v", m[1][0])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := paperSchema()
	tabs := paperTables(t, s)
	var buf bytes.Buffer
	if err := tabs["customer"].WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	meta := paperSchema().Table("customer")
	back, err := LoadCSV(meta, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 {
		t.Fatalf("round trip rows = %d, want 3", back.NumRows())
	}
	r := back.Column("c_region")
	if r.Decode(int(r.Data[2])) != "ASIA" {
		t.Fatal("round trip lost categorical value")
	}
}

func TestCSVNull(t *testing.T) {
	meta := &schema.Table{Name: "t", Columns: []schema.Column{
		{Name: "a", Kind: schema.IntKind, Nullable: true},
		{Name: "b", Kind: schema.CategoricalKind, Nullable: true},
	}}
	in := "a,b\n1,x\n,\n3,NULL\n"
	tb, err := LoadCSV(meta, strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Cols[0].Nul[1] || !tb.Cols[1].Nul[1] {
		t.Fatal("empty fields should be NULL")
	}
	if !tb.Cols[1].Nul[2] {
		t.Fatal("literal NULL should be NULL")
	}
}

func TestCSVBadHeader(t *testing.T) {
	meta := &schema.Table{Name: "t", Columns: []schema.Column{{Name: "a", Kind: schema.IntKind}}}
	if _, err := LoadCSV(meta, strings.NewReader("zzz\n1\n")); err == nil {
		t.Fatal("expected error for unknown header column")
	}
}

func TestSampleRows(t *testing.T) {
	meta := &schema.Table{Name: "t", Columns: []schema.Column{{Name: "a", Kind: schema.IntKind}}}
	tb := New(meta)
	for i := 0; i < 100; i++ {
		tb.AppendRow(Int(i))
	}
	rng := rand.New(rand.NewSource(1))
	rows := tb.SampleRows(10, rng)
	if len(rows) != 10 {
		t.Fatalf("sample size = %d, want 10", len(rows))
	}
	seen := map[int]bool{}
	for _, r := range rows {
		if seen[r] {
			t.Fatal("sample contains duplicates")
		}
		seen[r] = true
	}
	all := tb.SampleRows(1000, rng)
	if len(all) != 100 {
		t.Fatalf("oversized sample should return all rows, got %d", len(all))
	}
}

func TestAddColumnErrors(t *testing.T) {
	meta := &schema.Table{Name: "t", Columns: []schema.Column{{Name: "a", Kind: schema.IntKind}}}
	tb := New(meta)
	tb.AppendRow(Int(1))
	short := NewColumn(schema.Column{Name: "b", Kind: schema.IntKind})
	if err := tb.AddColumn(short); err == nil {
		t.Fatal("expected length mismatch error")
	}
	dup := NewColumn(schema.Column{Name: "a", Kind: schema.IntKind})
	dup.Append(Int(2))
	if err := tb.AddColumn(dup); err == nil {
		t.Fatal("expected duplicate column error")
	}
}
