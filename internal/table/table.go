// Package table implements DeepDB's in-memory columnar storage engine:
// typed columns with NULL support and dictionary-encoded categoricals,
// hash-based inner and full outer joins along foreign keys, tuple-factor
// computation, and sampling. The exact aggregate executor built on top of it
// (package exact) is the ground-truth oracle for every experiment.
//
// Column names must be globally unique across a schema (the paper's data
// sets all use per-table prefixes such as c_region / o_channel), which lets
// joined tables simply concatenate columns without qualification.
package table

import (
	"fmt"
	"math"

	"repro/internal/schema"
)

// Value is one cell: a float64 payload (categorical columns store the
// dictionary code) plus a NULL flag.
type Value struct {
	F    float64
	Null bool
}

// Null returns the NULL value.
func Null() Value { return Value{Null: true} }

// Float wraps a float64 as a Value.
func Float(f float64) Value { return Value{F: f} }

// Int wraps an int as a Value.
func Int(i int) Value { return Value{F: float64(i)} }

// Column is a typed column vector. Categorical columns own a dictionary
// mapping codes to strings; numeric columns use Data directly.
type Column struct {
	Meta schema.Column
	Data []float64
	Nul  []bool

	dict    []string
	dictIdx map[string]int
}

// NewColumn returns an empty column with the given metadata.
func NewColumn(meta schema.Column) *Column {
	c := &Column{Meta: meta}
	if meta.Kind == schema.CategoricalKind {
		c.dictIdx = make(map[string]int)
	}
	return c
}

// Len returns the number of rows.
func (c *Column) Len() int { return len(c.Data) }

// Append adds a value to the column.
func (c *Column) Append(v Value) {
	c.Data = append(c.Data, v.F)
	c.Nul = append(c.Nul, v.Null)
}

// AppendString dictionary-encodes s and appends it. It panics on
// non-categorical columns, which indicates a programming error.
func (c *Column) AppendString(s string) {
	if c.Meta.Kind != schema.CategoricalKind {
		panic(fmt.Sprintf("table: AppendString on %s column %s", c.Meta.Kind, c.Meta.Name))
	}
	c.Append(Value{F: float64(c.Encode(s))})
}

// Encode returns the dictionary code for s, adding it when unseen.
func (c *Column) Encode(s string) int {
	if code, ok := c.dictIdx[s]; ok {
		return code
	}
	code := len(c.dict)
	c.dict = append(c.dict, s)
	c.dictIdx[s] = code
	return code
}

// Lookup returns the code for s without inserting, or -1 when absent.
func (c *Column) Lookup(s string) int {
	if c.dictIdx == nil {
		return -1
	}
	if code, ok := c.dictIdx[s]; ok {
		return code
	}
	return -1
}

// Decode returns the string for a dictionary code.
func (c *Column) Decode(code int) string {
	if code < 0 || code >= len(c.dict) {
		return ""
	}
	return c.dict[code]
}

// DictSize returns the number of distinct categorical values seen.
func (c *Column) DictSize() int { return len(c.dict) }

// Dict returns the dictionary strings indexed by code. The slice is the
// column's live dictionary, not a copy — callers must treat it as
// read-only (model persistence copies it before serializing).
func (c *Column) Dict() []string { return c.dict }

// Get returns the i-th value.
func (c *Column) Get(i int) Value { return Value{F: c.Data[i], Null: c.Nul[i]} }

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool { return c.Nul[i] }

// shareDict makes dst use the same dictionary as src. Joined and sampled
// tables share dictionaries with their sources so codes stay comparable.
func (dst *Column) shareDict(src *Column) {
	dst.dict = src.dict
	dst.dictIdx = src.dictIdx
}

// Table is a collection of equal-length columns plus its metadata.
type Table struct {
	Meta *schema.Table
	Cols []*Column
	rows int
}

// New creates an empty table for the given metadata.
func New(meta *schema.Table) *Table {
	t := &Table{Meta: meta}
	for _, cm := range meta.Columns {
		t.Cols = append(t.Cols, NewColumn(cm))
	}
	return t
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Cols {
		if c.Meta.Name == name {
			return c
		}
	}
	return nil
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Cols {
		if c.Meta.Name == name {
			return i
		}
	}
	return -1
}

// ColumnNames returns all column names in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = c.Meta.Name
	}
	return out
}

// AppendRow appends one row; vals must match the column count.
func (t *Table) AppendRow(vals ...Value) {
	if len(vals) != len(t.Cols) {
		panic(fmt.Sprintf("table: AppendRow got %d values for %d columns of %s",
			len(vals), len(t.Cols), t.Meta.Name))
	}
	for i, v := range vals {
		t.Cols[i].Append(v)
	}
	t.rows++
}

// Row materializes row i as a Value slice.
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.Cols))
	for j, c := range t.Cols {
		out[j] = c.Get(i)
	}
	return out
}

// AddColumn appends a fully-populated column; its length must equal the
// table's row count (or the table must be empty).
func (t *Table) AddColumn(c *Column) error {
	if t.rows != 0 && c.Len() != t.rows {
		return fmt.Errorf("table: column %s has %d rows, table %s has %d",
			c.Meta.Name, c.Len(), t.Meta.Name, t.rows)
	}
	if t.Column(c.Meta.Name) != nil {
		return fmt.Errorf("table: duplicate column %s in %s", c.Meta.Name, t.Meta.Name)
	}
	t.Cols = append(t.Cols, c)
	t.Meta.Columns = append(t.Meta.Columns, c.Meta)
	if t.rows == 0 {
		t.rows = c.Len()
	}
	return nil
}

// CloneData returns a copy of the table whose cell data (Data/Nul vectors)
// is private: appends and in-place cell writes on the clone leave the
// receiver untouched, which is what copy-on-write snapshot publication
// needs. Metadata and dictionaries are shared — the update path never
// extends a dictionary (rows arrive already encoded as Values) and never
// adds columns after construction, so sharing them is safe and keeps codes
// comparable across snapshots.
func (t *Table) CloneData() *Table {
	out := &Table{Meta: t.Meta, rows: t.rows, Cols: make([]*Column, len(t.Cols))}
	for i, c := range t.Cols {
		cc := &Column{Meta: c.Meta}
		cc.shareDict(c)
		cc.Data = append(make([]float64, 0, len(c.Data)+1), c.Data...)
		cc.Nul = append(make([]bool, 0, len(c.Nul)+1), c.Nul...)
		out.Cols[i] = cc
	}
	return out
}

// Select returns a new table containing the given rows (by index) of t.
// Dictionaries are shared with the source.
func (t *Table) Select(rows []int) *Table {
	meta := &schema.Table{Name: t.Meta.Name, Columns: append([]schema.Column(nil), t.Meta.Columns...),
		PrimaryKey: t.Meta.PrimaryKey, ForeignKeys: t.Meta.ForeignKeys, FDs: t.Meta.FDs}
	out := New(meta)
	for i, c := range out.Cols {
		src := t.Cols[i]
		c.shareDict(src)
		c.Data = make([]float64, len(rows))
		c.Nul = make([]bool, len(rows))
		for j, r := range rows {
			c.Data[j] = src.Data[r]
			c.Nul[j] = src.Nul[r]
		}
	}
	out.rows = len(rows)
	return out
}

// Matrix materializes the named columns as a row-major [][]float64 with NULL
// encoded as NaN. rows == nil means all rows. SPN learning consumes this.
func (t *Table) Matrix(cols []string, rows []int) ([][]float64, error) {
	srcs := make([]*Column, len(cols))
	for i, name := range cols {
		c := t.Column(name)
		if c == nil {
			return nil, fmt.Errorf("table: unknown column %s in %s", name, t.Meta.Name)
		}
		srcs[i] = c
	}
	n := t.rows
	if rows != nil {
		n = len(rows)
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		r := i
		if rows != nil {
			r = rows[i]
		}
		row := make([]float64, len(srcs))
		for j, c := range srcs {
			if c.Nul[r] {
				row[j] = math.NaN()
			} else {
				row[j] = c.Data[r]
			}
		}
		out[i] = row
	}
	return out, nil
}
