package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/schema"
)

// LoadCSV reads a table from CSV. The first record must be a header whose
// names match the metadata's columns (order may differ). Empty fields and
// the literal "NULL" load as NULL.
func LoadCSV(meta *schema.Table, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	colFor := make([]int, len(header))
	for i, h := range header {
		idx := meta.ColumnIndex(h)
		if idx < 0 {
			return nil, fmt.Errorf("table: CSV header column %q not in schema of %s", h, meta.Name)
		}
		colFor[i] = idx
	}
	t := New(meta)
	rowBuf := make([]Value, len(meta.Columns))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV line %d: %w", line, err)
		}
		for i := range rowBuf {
			rowBuf[i] = Null()
		}
		for i, field := range rec {
			ci := colFor[i]
			if field == "" || field == "NULL" {
				rowBuf[ci] = Null()
				continue
			}
			switch meta.Columns[ci].Kind {
			case schema.CategoricalKind:
				rowBuf[ci] = Value{F: float64(t.Cols[ci].Encode(field))}
			default:
				f, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("table: CSV line %d column %s: %w", line, meta.Columns[ci].Name, err)
				}
				rowBuf[ci] = Float(f)
			}
		}
		t.AppendRow(rowBuf...)
	}
	return t, nil
}

// WriteCSV writes the table as CSV with a header row. NULLs are written as
// empty fields; categoricals are decoded back to strings.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, len(t.Cols))
	for i := 0; i < t.rows; i++ {
		for j, c := range t.Cols {
			switch {
			case c.Nul[i]:
				rec[j] = ""
			case c.Meta.Kind == schema.CategoricalKind:
				rec[j] = c.Decode(int(c.Data[i]))
			case c.Meta.Kind == schema.IntKind:
				rec[j] = strconv.FormatInt(int64(c.Data[i]), 10)
			default:
				rec[j] = strconv.FormatFloat(c.Data[i], 'g', -1, 64)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
