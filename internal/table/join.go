package table

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
)

// IndicatorColumn returns the name of the join-indicator column N_T for a
// table (1 when a joined tuple contains a real row of T, 0 when the row was
// padded by the full outer join). These are the N_T columns of Section 4.1.
func IndicatorColumn(tableName string) string { return "__nt_" + tableName }

// TupleFactorColumn returns the name of the tuple-factor column F_{One<-Many}
// for a relationship (Section 4.1's correction factors).
func TupleFactorColumn(rel schema.Relationship) string { return "__fk_" + rel.ID() }

// AddTupleFactor computes, for every row of the One-side table, how many
// rows of the Many-side table reference it, and stores the counts in a new
// column F_{One<-Many} on the One-side table. Rows with no join partner get
// factor 0 (the full outer join later lifts this to an effective 1).
func AddTupleFactor(one, many *Table, rel schema.Relationship) error {
	oneCol := one.Column(rel.OneColumn)
	if oneCol == nil {
		return fmt.Errorf("table: %s lacks join column %s", one.Meta.Name, rel.OneColumn)
	}
	manyCol := many.Column(rel.ManyColumn)
	if manyCol == nil {
		return fmt.Errorf("table: %s lacks join column %s", many.Meta.Name, rel.ManyColumn)
	}
	counts := make(map[float64]int, one.NumRows())
	for i := 0; i < many.NumRows(); i++ {
		if manyCol.Nul[i] {
			continue
		}
		counts[manyCol.Data[i]]++
	}
	fc := NewColumn(schema.Column{Name: TupleFactorColumn(rel), Kind: schema.IntKind})
	for i := 0; i < one.NumRows(); i++ {
		if oneCol.Nul[i] {
			fc.Append(Int(0))
			continue
		}
		fc.Append(Int(counts[oneCol.Data[i]]))
	}
	return one.AddColumn(fc)
}

// JoinSpec identifies a multi-way join: the participating tables and the FK
// edges connecting them.
type JoinSpec struct {
	Tables []string
	Edges  []schema.Relationship
}

// FullOuterJoin materializes the full outer join of the given base tables
// along the FK edges of the spec, in the paper's Figure 5b style: the result
// contains every column of every input table plus one indicator column
// N_T per table. Input tables should already carry their tuple-factor
// columns (AddTupleFactor) so the RSPN can learn them.
//
// The join is computed by folding tables into an accumulator with a
// hash-based two-sided outer join per edge. Edges must form a tree over the
// spec's tables (schema.JoinTree guarantees this).
func FullOuterJoin(tables map[string]*Table, spec JoinSpec) (*Table, error) {
	if len(spec.Tables) == 0 {
		return nil, fmt.Errorf("table: empty join spec")
	}
	first, ok := tables[spec.Tables[0]]
	if !ok {
		return nil, fmt.Errorf("table: missing table %s", spec.Tables[0])
	}
	acc := withIndicator(first)
	joined := map[string]bool{spec.Tables[0]: true}
	remaining := append([]schema.Relationship(nil), spec.Edges...)
	for len(remaining) > 0 {
		progressed := false
		for i, rel := range remaining {
			var newTable string
			switch {
			case joined[rel.Many] && !joined[rel.One]:
				newTable = rel.One
			case joined[rel.One] && !joined[rel.Many]:
				newTable = rel.Many
			default:
				continue
			}
			nt, ok := tables[newTable]
			if !ok {
				return nil, fmt.Errorf("table: missing table %s", newTable)
			}
			var err error
			acc, err = outerJoinStep(acc, withIndicator(nt), rel)
			if err != nil {
				return nil, err
			}
			joined[newTable] = true
			remaining = append(remaining[:i], remaining[i+1:]...)
			progressed = true
			break
		}
		if !progressed {
			return nil, fmt.Errorf("table: join edges do not form a connected tree")
		}
	}
	return acc, nil
}

// withIndicator returns a shallow-ish copy of t with an N_T indicator column
// of all ones appended (real rows of t exist everywhere before joining).
func withIndicator(t *Table) *Table {
	meta := &schema.Table{Name: t.Meta.Name, Columns: append([]schema.Column(nil), t.Meta.Columns...)}
	out := &Table{Meta: meta, rows: t.rows}
	for _, c := range t.Cols {
		nc := NewColumn(c.Meta)
		nc.Data = c.Data
		nc.Nul = c.Nul
		nc.shareDict(c)
		out.Cols = append(out.Cols, nc)
	}
	ind := NewColumn(schema.Column{Name: IndicatorColumn(t.Meta.Name), Kind: schema.IntKind})
	ind.Data = make([]float64, t.rows)
	ind.Nul = make([]bool, t.rows)
	for i := range ind.Data {
		ind.Data[i] = 1
	}
	out.Cols = append(out.Cols, ind)
	out.Meta.Columns = append(out.Meta.Columns, ind.Meta)
	return out
}

// outerJoinStep full-outer-joins accumulator a with table b on the edge rel.
// Exactly one of rel's endpoints has its join column in a, the other in b.
func outerJoinStep(a, b *Table, rel schema.Relationship) (*Table, error) {
	aCol, bCol := joinColumns(a, b, rel)
	if aCol == nil || bCol == nil {
		return nil, fmt.Errorf("table: edge %s does not connect %s and %s", rel.ID(), a.Meta.Name, b.Meta.Name)
	}
	// Hash the b side.
	idx := make(map[float64][]int, b.NumRows())
	for i := 0; i < b.NumRows(); i++ {
		if bCol.Nul[i] {
			continue
		}
		idx[bCol.Data[i]] = append(idx[bCol.Data[i]], i)
	}
	matchedB := make([]bool, b.NumRows())
	var pairs [][2]int // (aRow, bRow); -1 means padded NULL side
	for i := 0; i < a.NumRows(); i++ {
		if aCol.Nul[i] {
			pairs = append(pairs, [2]int{i, -1})
			continue
		}
		rows := idx[aCol.Data[i]]
		if len(rows) == 0 {
			pairs = append(pairs, [2]int{i, -1})
			continue
		}
		for _, r := range rows {
			pairs = append(pairs, [2]int{i, r})
			matchedB[r] = true
		}
	}
	for i, m := range matchedB {
		if !m {
			pairs = append(pairs, [2]int{-1, i})
		}
	}
	return assembleJoin(a, b, pairs)
}

func joinColumns(a, b *Table, rel schema.Relationship) (aCol, bCol *Column) {
	if c := a.Column(rel.ManyColumn); c != nil && b.Column(rel.OneColumn) != nil {
		return c, b.Column(rel.OneColumn)
	}
	if c := a.Column(rel.OneColumn); c != nil && b.Column(rel.ManyColumn) != nil {
		return c, b.Column(rel.ManyColumn)
	}
	// Same column name on both sides (natural FK join where FK column name
	// equals PK column name, e.g. c_id in both customer and order).
	if rel.ManyColumn == rel.OneColumn {
		return a.Column(rel.ManyColumn), b.Column(rel.ManyColumn)
	}
	return nil, nil
}

// assembleJoin materializes the pair list into a combined table. Padded
// sides contribute NULL for every column, except indicator columns, which
// are 0 (the tuple "is not there", not "unknown"), matching Figure 5b.
func assembleJoin(a, b *Table, pairs [][2]int) (*Table, error) {
	meta := &schema.Table{Name: a.Meta.Name + "|x|" + b.Meta.Name}
	out := &Table{Meta: meta}
	appendSide := func(src *Table, side int) error {
		for _, c := range src.Cols {
			if out.Column(c.Meta.Name) != nil {
				// Shared join column name (natural join): keep a single copy
				// from the first side.
				continue
			}
			nc := NewColumn(c.Meta)
			nc.shareDict(c)
			nc.Data = make([]float64, len(pairs))
			nc.Nul = make([]bool, len(pairs))
			indicator := len(c.Meta.Name) > 5 && c.Meta.Name[:5] == "__nt_"
			for p, pair := range pairs {
				r := pair[side]
				if r < 0 {
					if indicator {
						nc.Data[p] = 0
					} else {
						nc.Nul[p] = true
					}
					continue
				}
				nc.Data[p] = c.Data[r]
				nc.Nul[p] = c.Nul[r]
			}
			out.Cols = append(out.Cols, nc)
			out.Meta.Columns = append(out.Meta.Columns, c.Meta)
		}
		return nil
	}
	if err := appendSide(a, 0); err != nil {
		return nil, err
	}
	if err := appendSide(b, 1); err != nil {
		return nil, err
	}
	out.rows = len(pairs)
	return out, nil
}

// InnerJoin materializes the inner equi-join of the base tables along the
// spec's edges. It is the ground-truth join used by the exact executor.
func InnerJoin(tables map[string]*Table, spec JoinSpec) (*Table, error) {
	full, err := FullOuterJoin(tables, spec)
	if err != nil {
		return nil, err
	}
	var keep []int
	for i := 0; i < full.NumRows(); i++ {
		all := true
		for _, tn := range spec.Tables {
			ind := full.Column(IndicatorColumn(tn))
			if ind == nil || ind.Data[i] != 1 {
				all = false
				break
			}
		}
		if all {
			keep = append(keep, i)
		}
	}
	return full.Select(keep), nil
}

// SampleRows returns k distinct row indices drawn uniformly without
// replacement (all rows when k >= NumRows).
func (t *Table) SampleRows(k int, rng *rand.Rand) []int {
	n := t.rows
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(n)
	out := perm[:k]
	return out
}
