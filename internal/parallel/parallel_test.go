package parallel

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachSequential(t *testing.T) {
	var sum int64
	if err := ForEach(10, 1, func(i int) error {
		sum += int64(i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 45 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestForEachParallelCoversAll(t *testing.T) {
	var calls int64
	seen := make([]int32, 100)
	if err := ForEach(100, 8, func(i int) error {
		atomic.AddInt64(&calls, 1)
		atomic.AddInt32(&seen[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 100 {
		t.Fatalf("calls = %d", calls)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d ran %d times", i, n)
		}
	}
}

func TestForEachFailFast(t *testing.T) {
	var after int64
	err := ForEach(1000, 4, func(i int) error {
		if i == 0 {
			return fmt.Errorf("boom")
		}
		if i > 100 {
			atomic.AddInt64(&after, 1)
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	// Early abort: the dispatcher must stop long before draining all 1000
	// indices once the failure lands (in-flight work may still finish).
	if after > 900 {
		t.Fatalf("ran %d tail indices despite early failure", after)
	}
	// Sequential fail-fast is exact.
	var n int64
	err = ForEach(10, 1, func(i int) error {
		n++
		if i == 3 {
			return fmt.Errorf("stop")
		}
		return nil
	})
	if err == nil || n != 4 {
		t.Fatalf("sequential: err=%v n=%d", err, n)
	}
}
