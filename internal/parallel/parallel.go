// Package parallel provides the bounded worker pool shared by ensemble
// construction and the query engine's group-by fan-out.
package parallel

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the first error. After an error no new indices are dispatched
// (in-flight calls run to completion). workers <= 1 runs sequentially with
// the same fail-fast behavior.
func ForEach(n, workers int, fn func(int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     = make(chan int)
		mu       sync.Mutex
		firstErr error
		failed   atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if failed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
