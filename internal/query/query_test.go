package query

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestPredicateMatches(t *testing.T) {
	cases := []struct {
		pred Predicate
		v    float64
		want bool
	}{
		{Predicate{Column: "a", Op: Eq, Value: 5}, 5, true},
		{Predicate{Column: "a", Op: Eq, Value: 5}, 6, false},
		{Predicate{Column: "a", Op: Ne, Value: 5}, 6, true},
		{Predicate{Column: "a", Op: Lt, Value: 5}, 4, true},
		{Predicate{Column: "a", Op: Lt, Value: 5}, 5, false},
		{Predicate{Column: "a", Op: Le, Value: 5}, 5, true},
		{Predicate{Column: "a", Op: Gt, Value: 5}, 6, true},
		{Predicate{Column: "a", Op: Ge, Value: 5}, 5, true},
		{Predicate{Column: "a", Op: In, Values: []float64{1, 3, 5}}, 3, true},
		{Predicate{Column: "a", Op: In, Values: []float64{1, 3, 5}}, 4, false},
	}
	for _, c := range cases {
		if got := c.pred.Matches(c.v); got != c.want {
			t.Errorf("%v matches %v = %v, want %v", c.pred, c.v, got, c.want)
		}
	}
}

func TestQueryValidate(t *testing.T) {
	good := Query{Aggregate: Count, Tables: []string{"t"}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Query{Aggregate: Count}).Validate(); err == nil {
		t.Fatal("expected error for no tables")
	}
	if err := (Query{Aggregate: Avg, Tables: []string{"t"}}).Validate(); err == nil {
		t.Fatal("expected error for AVG without column")
	}
	bad := Query{Aggregate: Count, Tables: []string{"t"},
		Filters: []Predicate{{Column: "a", Op: In}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for empty IN list")
	}
}

func TestQErrorSymmetric(t *testing.T) {
	if q := QError(10, 100); q != 10 {
		t.Fatalf("QError(10,100) = %v, want 10", q)
	}
	if q := QError(1000, 100); q != 10 {
		t.Fatalf("QError(1000,100) = %v, want 10", q)
	}
	if q := QError(100, 100); q != 1 {
		t.Fatalf("QError(100,100) = %v, want 1", q)
	}
	// Clamping: estimates below 1 are lifted to 1.
	if q := QError(0, 10); q != 10 {
		t.Fatalf("QError(0,10) = %v, want 10", q)
	}
}

func TestQErrorAlwaysAtLeastOne(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		return QError(math.Abs(a), math.Abs(b)) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeError(t *testing.T) {
	if e := RelativeError(90, 100); math.Abs(e-0.1) > 1e-12 {
		t.Fatalf("RelativeError = %v, want 0.1", e)
	}
	if e := RelativeError(0, 0); e != 0 {
		t.Fatalf("RelativeError(0,0) = %v, want 0", e)
	}
	if e := RelativeError(5, 0); e != 1 {
		t.Fatalf("RelativeError(5,0) = %v, want 1", e)
	}
}

func TestAvgRelativeErrorGroupMatching(t *testing.T) {
	truth := Result{Groups: []Group{
		{Key: []float64{1}, Value: 100},
		{Key: []float64{2}, Value: 200},
	}}
	est := Result{Groups: []Group{
		{Key: []float64{1}, Value: 110}, // 10% error
		// group 2 missing -> error 1
	}}
	got := AvgRelativeError(est, truth)
	want := (0.1 + 1.0) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AvgRelativeError = %v, want %v", got, want)
	}
}

func TestWithExtraFilterDoesNotAlias(t *testing.T) {
	q := Query{Aggregate: Count, Tables: []string{"t"},
		Filters: []Predicate{{Column: "a", Op: Eq, Value: 1}}}
	q2 := q.WithExtraFilter(Predicate{Column: "b", Op: Eq, Value: 2})
	if len(q.Filters) != 1 || len(q2.Filters) != 2 {
		t.Fatal("WithExtraFilter must not mutate the original")
	}
	q2.Filters[0].Value = 99
	if q.Filters[0].Value != 1 {
		t.Fatal("filters alias the original slice")
	}
}

func TestResultSortedAndScalar(t *testing.T) {
	r := Result{Groups: []Group{
		{Key: []float64{2, 1}, Value: 20},
		{Key: []float64{1, 5}, Value: 10},
		{Key: []float64{1, 2}, Value: 15},
	}}
	s := r.Sorted()
	if s[0].Value != 15 || s[1].Value != 10 || s[2].Value != 20 {
		t.Fatalf("Sorted order wrong: %v", s)
	}
	if (Result{}).Scalar() != 0 {
		t.Fatal("empty result scalar should be 0")
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Aggregate: Avg, AggColumn: "c_age", Tables: []string{"customer", "orders"},
		Filters: []Predicate{{Column: "c_region", Op: Eq, Value: 0},
			{Column: "c_age", Op: In, Values: []float64{20, 30}}},
		GroupBy: []string{"o_channel"}}
	s := q.String()
	for _, want := range []string{"AVG(c_age)", "customer JOIN orders", "c_region = 0", "IN [20 30]", "GROUP BY o_channel"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})())
}

func TestParseCount(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM customer WHERE c_age >= 30 AND c_age < 60", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Aggregate != Count || len(q.Tables) != 1 || q.Tables[0] != "customer" {
		t.Fatalf("parsed %+v", q)
	}
	if len(q.Filters) != 2 || q.Filters[0].Op != Ge || q.Filters[1].Op != Lt {
		t.Fatalf("filters %+v", q.Filters)
	}
}

func TestParseStringLiteral(t *testing.T) {
	resolve := func(col, lit string) (float64, error) {
		if col == "c_region" && lit == "EUROPE" {
			return 7, nil
		}
		return 0, fmt.Errorf("unknown literal")
	}
	q, err := Parse("SELECT COUNT(*) FROM customer C WHERE c_region = 'EUROPE'", resolve)
	if err != nil {
		t.Fatal(err)
	}
	if q.Filters[0].Value != 7 {
		t.Fatalf("resolved value = %v, want 7", q.Filters[0].Value)
	}
}

func TestParseJoinForms(t *testing.T) {
	for _, sql := range []string{
		"SELECT COUNT(*) FROM customer NATURAL JOIN orders",
		"SELECT COUNT(*) FROM customer JOIN orders",
		"SELECT COUNT(*) FROM customer, orders",
		"SELECT COUNT(*) FROM customer C NATURAL JOIN orders O",
	} {
		q, err := Parse(sql, nil)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if len(q.Tables) != 2 {
			t.Fatalf("%s: tables = %v", sql, q.Tables)
		}
	}
}

func TestParseAggAndGroupBy(t *testing.T) {
	q, err := Parse("SELECT AVG(c_age) FROM customer GROUP BY c_region, c_city", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Aggregate != Avg || q.AggColumn != "c_age" {
		t.Fatalf("agg %+v", q)
	}
	if len(q.GroupBy) != 2 {
		t.Fatalf("group by %v", q.GroupBy)
	}
	q2, err := Parse("SELECT SUM(lo_revenue) FROM lineorder WHERE lo_discount IN (1, 2, 3)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Aggregate != Sum || len(q2.Filters[0].Values) != 3 {
		t.Fatalf("parsed %+v", q2)
	}
}

func TestParseQualifiedColumn(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM customer C WHERE C.c_age > 5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Filters[0].Column != "c_age" {
		t.Fatalf("qualifier not stripped: %q", q.Filters[0].Column)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT MAX(x) FROM t",
		"SELECT COUNT(*) FROM",
		"SELECT COUNT(*) FROM t WHERE",
		"SELECT COUNT(*) FROM t WHERE a ~ 5",
		"SELECT COUNT(*) FROM t WHERE a = 'unterminated",
		"SELECT COUNT(*) FROM t trailing garbage (",
		"SELECT AVG() FROM t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql, nil); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
	// String literal without resolver must fail.
	if _, err := Parse("SELECT COUNT(*) FROM t WHERE a = 'x'", nil); err == nil {
		t.Error("expected error for string literal without resolver")
	}
}

// TestParsePlaceholders: ? comparison values become ordinal-numbered
// parameters that Bind substitutes positionally.
func TestParsePlaceholders(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM t WHERE a >= ? AND b = 3 AND (c < ? OR d > ?)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := q.NumParams(); n != 3 {
		t.Fatalf("NumParams = %d, want 3", n)
	}
	if q.Filters[0].Param != 1 || q.Filters[1].Param != 0 || q.Disjunction[0].Param != 2 || q.Disjunction[1].Param != 3 {
		t.Fatalf("ordinals wrong: %+v / %+v", q.Filters, q.Disjunction)
	}
	if s := q.String(); !contains(s, "a >= ?") {
		t.Fatalf("String() should render placeholders: %s", s)
	}
	bound, err := q.Bind(10, 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Filters[0].Value != 10 || bound.Disjunction[0].Value != 20 || bound.Disjunction[1].Value != 30 {
		t.Fatalf("bound values wrong: %+v / %+v", bound.Filters, bound.Disjunction)
	}
	if bound.NumParams() != 0 {
		t.Fatal("bound query still has parameters")
	}
	// Binding must not mutate the template.
	if q.Filters[0].Param != 1 || q.Filters[0].Value != 0 {
		t.Fatalf("template mutated by Bind: %+v", q.Filters[0])
	}
	if _, err := q.Bind(1, 2); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if _, err := Parse("SELECT COUNT(*) FROM t WHERE a IN (1, ?)", nil); err == nil {
		t.Fatal("placeholder inside IN must fail")
	}
}

// TestValidateParamOrdinals: hand-built queries with gapped or repeated
// ordinals are rejected.
func TestValidateParamOrdinals(t *testing.T) {
	q := Query{Tables: []string{"t"}, Filters: []Predicate{
		{Column: "a", Op: Lt, Param: 2},
	}}
	if err := q.Validate(); err == nil {
		t.Fatal("gapped ordinals must fail validation")
	}
	q.Filters = []Predicate{{Column: "a", Op: Lt, Param: 1}, {Column: "b", Op: Gt, Param: 1}}
	if err := q.Validate(); err == nil {
		t.Fatal("repeated ordinals must fail validation")
	}
}

// TestShapeKey: the key ignores values and parameter markers but keeps
// everything that picks a plan.
func TestShapeKey(t *testing.T) {
	base := Query{Aggregate: Count, Tables: []string{"a", "b"},
		Filters: []Predicate{{Column: "x", Op: Lt, Value: 1}}}
	same := base
	same.Filters = []Predicate{{Column: "x", Op: Lt, Param: 1}}
	if base.ShapeKey() != same.ShapeKey() {
		t.Fatalf("value vs placeholder changed the shape:\n%s\n%s", base.ShapeKey(), same.ShapeKey())
	}
	if !SameShape(base, same) {
		t.Fatal("SameShape disagrees with ShapeKey")
	}
	for _, diff := range []Query{
		{Aggregate: Sum, AggColumn: "x", Tables: []string{"a", "b"}, Filters: base.Filters},
		{Aggregate: Count, Tables: []string{"a"}, Filters: base.Filters},
		{Aggregate: Count, Tables: []string{"a", "b"}, Filters: []Predicate{{Column: "x", Op: Le, Value: 1}}},
		{Aggregate: Count, Tables: []string{"a", "b"}, Filters: []Predicate{{Column: "y", Op: Lt, Value: 1}}},
		{Aggregate: Count, Tables: []string{"a", "b"}, Filters: base.Filters, GroupBy: []string{"g"}},
		{Aggregate: Count, Tables: []string{"a", "b"}, OuterTables: []string{"b"}, Filters: base.Filters},
		{Aggregate: Count, Tables: []string{"a", "b"}, Filters: base.Filters,
			Disjunction: []Predicate{{Column: "z", Op: Eq, Value: 0}}},
	} {
		if base.ShapeKey() == diff.ShapeKey() {
			t.Fatalf("distinct query shares shape key: %v", diff)
		}
		if SameShape(base, diff) {
			t.Fatalf("SameShape true for distinct query: %v", diff)
		}
	}
}
