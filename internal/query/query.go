// Package query defines DeepDB's query model: aggregate queries (COUNT,
// SUM, AVG) over one or more FK-joined tables with conjunctive filter
// predicates and GROUP BY, plus the error metrics used throughout the
// paper's evaluation (q-error and relative error). The probabilistic query
// compiler (package core) and the exact executor (package exact) both
// consume this model, so ground truth and estimate are always computed from
// the same query object.
package query

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// AggType is the aggregate function of a query.
type AggType int

const (
	// Count is COUNT(*).
	Count AggType = iota
	// Sum is SUM(column).
	Sum
	// Avg is AVG(column).
	Avg
)

// String returns the SQL spelling of the aggregate.
func (a AggType) String() string {
	switch a {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("AggType(%d)", int(a))
	}
}

// Op is a comparison operator in a filter predicate.
type Op int

const (
	// Eq is =.
	Eq Op = iota
	// Ne is <> (!=).
	Ne
	// Lt is <.
	Lt
	// Le is <=.
	Le
	// Gt is >.
	Gt
	// Ge is >=.
	Ge
	// In is an IN (v1, v2, ...) membership test.
	In
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case In:
		return "IN"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Predicate is one conjunct of a filter: Column Op Value (or Values for IN).
// Values are already encoded: numeric columns use the number itself,
// categorical columns use the dictionary code of the base table that owns
// the column. SQL NULL semantics apply: a comparison with a NULL cell is
// unknown and the tuple does not qualify.
type Predicate struct {
	Column string
	Op     Op
	Value  float64
	Values []float64 // for In
	// Param marks the predicate's value as the Param-th (1-based)
	// placeholder of a prepared statement: Value is unset until Bind
	// substitutes it. 0 means the predicate carries a literal value.
	// Placeholders are not supported inside IN lists.
	Param int
}

// Matches reports whether a non-NULL cell value v satisfies the predicate.
func (p Predicate) Matches(v float64) bool {
	switch p.Op {
	case Eq:
		return v == p.Value
	case Ne:
		return v != p.Value
	case Lt:
		return v < p.Value
	case Le:
		return v <= p.Value
	case Gt:
		return v > p.Value
	case Ge:
		return v >= p.Value
	case In:
		for _, x := range p.Values {
			if v == x {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// Query is one aggregate query. Tables are joined along the schema's FK
// edges (equi-joins); with a single table no join happens. GroupBy columns
// must be categorical or discrete.
type Query struct {
	Aggregate AggType
	AggColumn string // required for Sum/Avg
	Tables    []string
	Filters   []Predicate
	GroupBy   []string
	// OuterTables lists tables joined with outer-join semantics: rows of
	// the remaining tables are kept even without a partner in these tables
	// (Section 4.2 of the paper). WHERE predicates on an outer table
	// eliminate its padded rows, matching SQL. Every entry must also
	// appear in Tables.
	OuterTables []string
	// Disjunction is an optional OR-group ANDed with Filters:
	// WHERE <Filters...> AND (d1 OR d2 OR ...). The engine compiles it
	// with the inclusion-exclusion principle (Section 4.1 mentions this
	// extension).
	Disjunction []Predicate
}

// Validate performs structural checks that do not need a schema.
func (q Query) Validate() error {
	if len(q.Tables) == 0 {
		return fmt.Errorf("query: no tables")
	}
	if q.Aggregate != Count && q.AggColumn == "" {
		return fmt.Errorf("query: %v requires an aggregate column", q.Aggregate)
	}
	for _, p := range q.Filters {
		if p.Column == "" {
			return fmt.Errorf("query: predicate with empty column")
		}
		if p.Op == In && len(p.Values) == 0 {
			return fmt.Errorf("query: IN predicate on %s with no values", p.Column)
		}
		if p.Param > 0 && p.Op == In {
			return fmt.Errorf("query: parameter placeholder in IN predicate on %s", p.Column)
		}
	}
	if len(q.Disjunction) > 8 {
		return fmt.Errorf("query: disjunction with %d terms (max 8)", len(q.Disjunction))
	}
	for _, d := range q.Disjunction {
		if d.Column == "" {
			return fmt.Errorf("query: disjunct with empty column")
		}
		if d.Param > 0 && d.Op == In {
			return fmt.Errorf("query: parameter placeholder in IN disjunct on %s", d.Column)
		}
	}
	if err := q.validateParams(); err != nil {
		return err
	}
	for _, ot := range q.OuterTables {
		found := false
		for _, t := range q.Tables {
			if t == ot {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("query: outer table %s not in table list", ot)
		}
	}
	return nil
}

// WithExtraFilter returns a copy of q with one more conjunct. Group-by
// execution expands a grouped query into per-group filtered queries.
func (q Query) WithExtraFilter(p Predicate) Query {
	c := q
	c.Filters = append(append([]Predicate(nil), q.Filters...), p)
	return c
}

// validateParams checks that the placeholder ordinals are exactly 1..n,
// each used once, so Bind can substitute positionally.
func (q Query) validateParams() error {
	n := q.NumParams()
	if n == 0 {
		return nil
	}
	seen := make([]bool, n+1)
	for _, preds := range [][]Predicate{q.Filters, q.Disjunction} {
		for _, p := range preds {
			if p.Param <= 0 {
				continue
			}
			if p.Param > n || seen[p.Param] {
				return fmt.Errorf("query: parameter ordinals must be 1..%d without repeats (got %d)", n, p.Param)
			}
			seen[p.Param] = true
		}
	}
	for i := 1; i <= n; i++ {
		if !seen[i] {
			return fmt.Errorf("query: parameter %d missing (ordinals must be 1..%d)", i, n)
		}
	}
	return nil
}

// NumParams returns the number of parameter placeholders in the query.
func (q Query) NumParams() int {
	n := 0
	for _, preds := range [][]Predicate{q.Filters, q.Disjunction} {
		for _, p := range preds {
			if p.Param > n {
				n = p.Param
			}
		}
	}
	return n
}

// Bind returns a copy of q with every parameter placeholder replaced by the
// corresponding value of params (placeholder order). The argument count
// must match NumParams exactly.
func (q Query) Bind(params ...float64) (Query, error) {
	n := q.NumParams()
	if len(params) != n {
		return Query{}, fmt.Errorf("query: %d parameters bound, statement has %d placeholders", len(params), n)
	}
	if n == 0 {
		return q, nil
	}
	c := q
	c.Filters = bindPreds(q.Filters, params)
	c.Disjunction = bindPreds(q.Disjunction, params)
	return c, nil
}

func bindPreds(preds []Predicate, params []float64) []Predicate {
	out := append([]Predicate(nil), preds...)
	for i := range out {
		if p := out[i].Param; p > 0 {
			out[i].Value = params[p-1]
			out[i].Param = 0
		}
	}
	return out
}

// ShapeKey returns a canonical rendering of the query's shape: every part
// that determines plan choice (aggregate, tables, outer tables, the columns
// and operators of filters and disjuncts, group-by columns) and nothing
// that does not (literal values, parameter bindings). Two queries with
// equal shape keys can share one compiled plan; a prepared statement and
// the equivalent literal query therefore hit the same cache entry.
func (q Query) ShapeKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v(%s)|T:%s|O:%s|F:", q.Aggregate, q.AggColumn,
		strings.Join(q.Tables, ","), strings.Join(q.OuterTables, ","))
	shapePreds(&b, q.Filters)
	b.WriteString("|D:")
	shapePreds(&b, q.Disjunction)
	fmt.Fprintf(&b, "|G:%s", strings.Join(q.GroupBy, ","))
	return b.String()
}

func shapePreds(b *strings.Builder, preds []Predicate) {
	for i, p := range preds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%s%v", p.Column, p.Op)
		if p.Op == In {
			// The value count changes the predicate's range set but not
			// the plan, so IN collapses to the bare operator.
			b.WriteString("(...)")
		}
	}
}

// SameShape reports whether two queries share a plan-compatible shape —
// the cheap structural equivalent of comparing ShapeKey strings.
func SameShape(a, b Query) bool {
	if a.Aggregate != b.Aggregate || a.AggColumn != b.AggColumn {
		return false
	}
	if !sameStrings(a.Tables, b.Tables) || !sameStrings(a.OuterTables, b.OuterTables) ||
		!sameStrings(a.GroupBy, b.GroupBy) {
		return false
	}
	return samePredShape(a.Filters, b.Filters) && samePredShape(a.Disjunction, b.Disjunction)
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func samePredShape(a, b []Predicate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Column != b[i].Column || a[i].Op != b[i].Op {
			return false
		}
	}
	return true
}

// String renders the query in SQL-ish form, useful in logs and test output.
func (q Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Aggregate == Count {
		b.WriteString("COUNT(*)")
	} else {
		fmt.Fprintf(&b, "%v(%s)", q.Aggregate, q.AggColumn)
	}
	fmt.Fprintf(&b, " FROM %s", strings.Join(q.Tables, " JOIN "))
	if len(q.Filters) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Filters {
			if i > 0 {
				b.WriteString(" AND ")
			}
			if p.Op == In {
				fmt.Fprintf(&b, "%s IN %v", p.Column, p.Values)
			} else {
				fmt.Fprintf(&b, "%s %v %s", p.Column, p.Op, p.valueString())
			}
		}
	}
	if len(q.Disjunction) > 0 {
		if len(q.Filters) > 0 {
			b.WriteString(" AND (")
		} else {
			b.WriteString(" WHERE (")
		}
		for i, p := range q.Disjunction {
			if i > 0 {
				b.WriteString(" OR ")
			}
			fmt.Fprintf(&b, "%s %v %s", p.Column, p.Op, p.valueString())
		}
		b.WriteString(")")
	}
	if len(q.GroupBy) > 0 {
		fmt.Fprintf(&b, " GROUP BY %s", strings.Join(q.GroupBy, ", "))
	}
	return b.String()
}

// valueString renders a predicate's comparison value, or ? for an unbound
// placeholder.
func (p Predicate) valueString() string {
	if p.Param > 0 {
		return "?"
	}
	return fmt.Sprintf("%v", p.Value)
}

// Group is one result row of a (possibly grouped) aggregate query. For
// ungrouped queries Key is empty. Keys are encoded values of the GroupBy
// columns in order.
type Group struct {
	Key   []float64
	Value float64
}

// Result is the outcome of executing a query: one Group per group-by
// combination present in the data (exactly one for ungrouped queries).
type Result struct {
	Groups []Group
}

// Scalar returns the single value of an ungrouped result.
func (r Result) Scalar() float64 {
	if len(r.Groups) == 0 {
		return 0
	}
	return r.Groups[0].Value
}

// Sorted returns the groups ordered by key for deterministic comparison.
func (r Result) Sorted() []Group {
	out := append([]Group(nil), r.Groups...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// keyString renders a group key for map lookup.
func keyString(key []float64) string {
	var b strings.Builder
	for _, k := range key {
		fmt.Fprintf(&b, "%g|", k)
	}
	return b.String()
}

// QError returns the q-error between an estimate and the true cardinality:
// max(est/true, true/est), following the paper's convention that both are
// first clamped to at least 1 tuple so empty results do not blow up the
// metric.
func QError(estimate, truth float64) float64 {
	if estimate < 1 {
		estimate = 1
	}
	if truth < 1 {
		truth = 1
	}
	if estimate > truth {
		return estimate / truth
	}
	return truth / estimate
}

// RelativeError returns |true - predicted| / |true|. When the true value is
// zero the error is 0 for an exact prediction and 1 otherwise (the paper's
// figures skip such degenerate groups; we keep the metric total).
func RelativeError(predicted, truth float64) float64 {
	if truth == 0 {
		if predicted == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(truth-predicted) / math.Abs(truth)
}

// AvgRelativeError matches estimated groups to true groups by key and
// averages the per-group relative errors, the metric of Figures 9 and 10.
// Groups present in the truth but missing from the estimate count as error 1
// ("no result"); spurious estimated groups are ignored, as the paper's
// relative-error definition only ranges over true groups.
func AvgRelativeError(estimate, truth Result) float64 {
	if len(truth.Groups) == 0 {
		return 0
	}
	est := make(map[string]float64, len(estimate.Groups))
	for _, g := range estimate.Groups {
		est[keyString(g.Key)] = g.Value
	}
	total := 0.0
	for _, g := range truth.Groups {
		if v, ok := est[keyString(g.Key)]; ok {
			total += RelativeError(v, g.Value)
		} else {
			total += 1
		}
	}
	return total / float64(len(truth.Groups))
}
