package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Resolver maps a string literal appearing in a predicate on the given
// column to its encoded value (the dictionary code of the owning base
// table). Numeric literals never reach the resolver.
type Resolver func(column, literal string) (float64, error)

// Parse parses the SQL subset DeepDB supports:
//
//	SELECT COUNT(*) | SUM(col) | AVG(col)
//	FROM t1 [ [NATURAL] JOIN t2 ... | t1, t2, ... ]
//	[WHERE col op literal [AND ...]]
//	[GROUP BY col [, col ...]]
//
// with op one of =, <>, !=, <, <=, >, >=, IN (...). Join conditions are
// implied by the schema's FK graph, matching the paper's equi-join-only
// query class. String literals are single-quoted and resolved through the
// supplied Resolver.
//
// A comparison value may be the placeholder ? (prepared-statement
// parameter): the resulting predicate carries its 1-based ordinal in
// Predicate.Param and Query.Bind substitutes the value later. Placeholders
// are not supported inside IN lists.
func Parse(sql string, resolve Resolver) (Query, error) {
	toks, err := tokenize(sql)
	if err != nil {
		return Query{}, err
	}
	p := &parser{toks: toks, resolve: resolve}
	return p.parse()
}

type parser struct {
	toks    []token
	pos     int
	resolve Resolver
	params  int
}

type token struct {
	kind tokenKind
	text string
}

type tokenKind int

const (
	tokWord tokenKind = iota
	tokNumber
	tokString
	tokSymbol
	tokEOF
)

func tokenize(sql string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(sql) {
		ch := sql[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' || ch == ';':
			i++
		case ch == '\'':
			j := i + 1
			for j < len(sql) && sql[j] != '\'' {
				j++
			}
			if j >= len(sql) {
				return nil, fmt.Errorf("query: unterminated string literal")
			}
			toks = append(toks, token{tokString, sql[i+1 : j]})
			i = j + 1
		case isWordStart(ch):
			j := i
			for j < len(sql) && isWordChar(sql[j]) {
				j++
			}
			toks = append(toks, token{tokWord, sql[i:j]})
			i = j
		case (ch >= '0' && ch <= '9') || (ch == '-' && i+1 < len(sql) && sql[i+1] >= '0' && sql[i+1] <= '9'):
			j := i + 1
			for j < len(sql) && (sql[j] >= '0' && sql[j] <= '9' || sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E' || sql[j] == '-' || sql[j] == '+') {
				// Only allow - and + right after an exponent marker.
				if (sql[j] == '-' || sql[j] == '+') && !(sql[j-1] == 'e' || sql[j-1] == 'E') {
					break
				}
				j++
			}
			toks = append(toks, token{tokNumber, sql[i:j]})
			i = j
		case strings.ContainsRune("<>=!(),*?", rune(ch)):
			// Two-char operators first.
			if i+1 < len(sql) {
				two := sql[i : i+2]
				if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
					toks = append(toks, token{tokSymbol, two})
					i += 2
					continue
				}
			}
			toks = append(toks, token{tokSymbol, string(ch)})
			i++
		default:
			return nil, fmt.Errorf("query: unexpected character %q", ch)
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks, nil
}

func isWordStart(ch byte) bool {
	return ch == '_' || (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
}

func isWordChar(ch byte) bool {
	return isWordStart(ch) || (ch >= '0' && ch <= '9') || ch == '.'
}

func (p *parser) peek() token  { return p.toks[p.pos] }
func (p *parser) next() token  { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) word() string { return strings.ToUpper(p.peek().text) }

func (p *parser) expectWord(w string) error {
	if p.peek().kind != tokWord || p.word() != w {
		return fmt.Errorf("query: expected %s, got %q", w, p.peek().text)
	}
	p.next()
	return nil
}

func (p *parser) expectSymbol(s string) error {
	if p.peek().kind != tokSymbol || p.peek().text != s {
		return fmt.Errorf("query: expected %q, got %q", s, p.peek().text)
	}
	p.next()
	return nil
}

func (p *parser) parse() (Query, error) {
	var q Query
	if err := p.expectWord("SELECT"); err != nil {
		return q, err
	}
	switch p.word() {
	case "COUNT":
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return q, err
		}
		if err := p.expectSymbol("*"); err != nil {
			return q, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return q, err
		}
		q.Aggregate = Count
	case "SUM", "AVG":
		if p.word() == "SUM" {
			q.Aggregate = Sum
		} else {
			q.Aggregate = Avg
		}
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return q, err
		}
		if p.peek().kind != tokWord {
			return q, fmt.Errorf("query: expected column in aggregate, got %q", p.peek().text)
		}
		q.AggColumn = p.next().text
		if err := p.expectSymbol(")"); err != nil {
			return q, err
		}
	default:
		return q, fmt.Errorf("query: unsupported aggregate %q", p.peek().text)
	}
	if err := p.expectWord("FROM"); err != nil {
		return q, err
	}
	// Table list: t1 [alias] (JOIN|NATURAL JOIN|,) t2 [alias] ...
	for {
		if p.peek().kind != tokWord {
			return q, fmt.Errorf("query: expected table name, got %q", p.peek().text)
		}
		q.Tables = append(q.Tables, p.next().text)
		// Skip an optional single-word alias.
		if p.peek().kind == tokWord {
			switch p.word() {
			case "JOIN", "NATURAL", "WHERE", "GROUP":
			default:
				p.next()
			}
		}
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.next()
			continue
		}
		if p.peek().kind == tokWord && p.word() == "NATURAL" {
			p.next()
		}
		if p.peek().kind == tokWord && p.word() == "JOIN" {
			p.next()
			continue
		}
		break
	}
	if p.peek().kind == tokWord && p.word() == "WHERE" {
		p.next()
		for {
			if p.peek().kind == tokSymbol && p.peek().text == "(" {
				// Parenthesized OR-group: (p1 OR p2 OR ...).
				if len(q.Disjunction) > 0 {
					return q, fmt.Errorf("query: only one OR-group supported")
				}
				p.next()
				for {
					pred, err := p.predicate()
					if err != nil {
						return q, err
					}
					q.Disjunction = append(q.Disjunction, pred)
					if p.peek().kind == tokWord && p.word() == "OR" {
						p.next()
						continue
					}
					break
				}
				if err := p.expectSymbol(")"); err != nil {
					return q, err
				}
			} else {
				pred, err := p.predicate()
				if err != nil {
					return q, err
				}
				q.Filters = append(q.Filters, pred)
			}
			if p.peek().kind == tokWord && p.word() == "AND" {
				p.next()
				continue
			}
			break
		}
	}
	if p.peek().kind == tokWord && p.word() == "GROUP" {
		p.next()
		if err := p.expectWord("BY"); err != nil {
			return q, err
		}
		for {
			if p.peek().kind != tokWord {
				return q, fmt.Errorf("query: expected group-by column, got %q", p.peek().text)
			}
			q.GroupBy = append(q.GroupBy, p.next().text)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if p.peek().kind != tokEOF {
		return q, fmt.Errorf("query: trailing input at %q", p.peek().text)
	}
	return q, q.Validate()
}

func (p *parser) predicate() (Predicate, error) {
	var pred Predicate
	if p.peek().kind != tokWord {
		return pred, fmt.Errorf("query: expected column, got %q", p.peek().text)
	}
	pred.Column = stripQualifier(p.next().text)
	if p.peek().kind == tokWord && p.word() == "IN" {
		p.next()
		pred.Op = In
		if err := p.expectSymbol("("); err != nil {
			return pred, err
		}
		for {
			if p.peek().kind == tokSymbol && p.peek().text == "?" {
				return pred, fmt.Errorf("query: parameter placeholder not supported in IN lists")
			}
			v, err := p.literal(pred.Column)
			if err != nil {
				return pred, err
			}
			pred.Values = append(pred.Values, v)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
		return pred, p.expectSymbol(")")
	}
	if p.peek().kind != tokSymbol {
		return pred, fmt.Errorf("query: expected operator, got %q", p.peek().text)
	}
	switch p.next().text {
	case "=":
		pred.Op = Eq
	case "<>", "!=":
		pred.Op = Ne
	case "<":
		pred.Op = Lt
	case "<=":
		pred.Op = Le
	case ">":
		pred.Op = Gt
	case ">=":
		pred.Op = Ge
	default:
		return pred, fmt.Errorf("query: unsupported operator")
	}
	if p.peek().kind == tokSymbol && p.peek().text == "?" {
		p.next()
		p.params++
		pred.Param = p.params
		return pred, nil
	}
	v, err := p.literal(pred.Column)
	if err != nil {
		return pred, err
	}
	pred.Value = v
	return pred, nil
}

func (p *parser) literal(column string) (float64, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		return strconv.ParseFloat(t.text, 64)
	case tokString:
		if p.resolve == nil {
			return 0, fmt.Errorf("query: string literal %q but no resolver provided", t.text)
		}
		return p.resolve(column, t.text)
	default:
		return 0, fmt.Errorf("query: expected literal, got %q", t.text)
	}
}

// stripQualifier removes a leading "alias." from a column reference; column
// names are globally unique in DeepDB schemas so the qualifier is noise.
func stripQualifier(col string) string {
	if i := strings.LastIndexByte(col, '.'); i >= 0 {
		return col[i+1:]
	}
	return col
}
