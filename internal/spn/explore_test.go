package spn

import (
	"math"
	"testing"
)

func TestClustersOnFigure3SPN(t *testing.T) {
	s := figure3SPN()
	clusters := s.Clusters()
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	// Ordered by weight: 0.7 then 0.3.
	if math.Abs(clusters[0].Weight-0.7) > 1e-12 || math.Abs(clusters[1].Weight-0.3) > 1e-12 {
		t.Fatalf("weights = %v, %v", clusters[0].Weight, clusters[1].Weight)
	}
	// The heavy cluster is dominated by ASIA (region code 1 at 90%).
	var region ColumnSummary
	for _, c := range clusters[0].Columns {
		if c.Name == "c_region" {
			region = c
		}
	}
	if region.TopValue != 1 || math.Abs(region.TopShare-0.9) > 1e-12 {
		t.Fatalf("heavy cluster region top = %v @ %v, want ASIA(1) @ 0.9",
			region.TopValue, region.TopShare)
	}
}

func TestClustersRecoverPlantedStructure(t *testing.T) {
	data := clusteredData(4000, 51)
	s, err := Learn(data, []string{"c_region", "c_age"}, DefaultLearnConfig())
	if err != nil {
		t.Fatal(err)
	}
	clusters := s.Clusters()
	if len(clusters) < 2 {
		t.Skip("learner found a single cluster on this seed")
	}
	// Weights sum to 1 and the split should be near the planted 70/30.
	total := 0.0
	for _, c := range clusters {
		total += c.Weight
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("weights sum to %v", total)
	}
	// The two biggest clusters should have clearly different mean ages
	// (planted: ~30 vs ~77).
	age := func(cs ClusterSummary) float64 {
		for _, c := range cs.Columns {
			if c.Name == "c_age" {
				return c.Mean
			}
		}
		return 0
	}
	if math.Abs(age(clusters[0])-age(clusters[1])) < 20 {
		t.Fatalf("cluster mean ages %v vs %v not separated",
			age(clusters[0]), age(clusters[1]))
	}
	// Each cluster's most distinctive attribute comes first.
	for _, cs := range clusters {
		for i := 1; i < len(cs.Columns); i++ {
			if cs.Columns[i-1].Distinctive < cs.Columns[i].Distinctive {
				t.Fatal("columns not sorted by distinctiveness")
			}
		}
	}
}

func TestClustersSingleRoot(t *testing.T) {
	// A product-root model yields one full-population cluster.
	data := [][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
	s, err := LearnExact(data, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	// Exact learner builds a sum root here, so use a single-row model.
	one, err := LearnExact([][]float64{{1, 10}}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	clusters := one.Clusters()
	if len(clusters) != 1 || clusters[0].Weight != 1 {
		t.Fatalf("single-root clusters = %+v", clusters)
	}
	_ = s
}

func TestClustersHandleNulls(t *testing.T) {
	data := make([][]float64, 100)
	for i := range data {
		v := float64(i % 5)
		w := math.NaN()
		if i%2 == 0 {
			w = v * 10
		}
		data[i] = []float64{v, w}
	}
	s, err := LearnExact(data, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	clusters := s.Clusters()
	totalNull := 0.0
	for _, cs := range clusters {
		for _, c := range cs.Columns {
			if c.Name == "b" {
				totalNull += cs.Weight * c.NullFrac
			}
		}
	}
	if math.Abs(totalNull-0.5) > 0.05 {
		t.Fatalf("aggregate NULL fraction %v, want ~0.5", totalNull)
	}
}
