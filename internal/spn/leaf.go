// Package spn implements Sum-Product Networks: tree-structured deep
// probabilistic models whose internal nodes are sums (row clusters) and
// products (independent column groups) and whose leaves model single
// attributes. Learning follows the MSPN recipe the paper builds on
// (Molina et al., AAAI 2018): RDC-based independence tests for column
// splits and KMeans for row clusters. Inference computes arbitrary
// products of per-column moments restricted by range predicates in one
// bottom-up pass, which is exactly what DeepDB's probabilistic query
// compilation needs.
//
// The leaf representation follows Section 3.2 of the DeepDB paper: every
// distinct value and its frequency is stored exactly, with NULL as a
// dedicated value; when the number of distinct values exceeds a limit the
// leaf switches to equi-width bins that carry enough per-bin aggregates to
// answer all supported moments.
package spn

import (
	"math"
	"sort"
)

// Fn selects the per-column function whose expectation a query needs.
type Fn int

const (
	// FnOne is the constant 1 (probabilities / indicator expectations).
	FnOne Fn = iota
	// FnIdent is f(x) = x (plain expectations, SUM/AVG numerators).
	FnIdent
	// FnSquare is f(x) = x^2 (Koenig-Huygens variance terms).
	FnSquare
	// FnInv is f(x) = 1/max(x, 1). The clamp implements both the paper's
	// "F' is at least 1" invariant on full-outer-join tuple factors and the
	// outer-join rule that zero factors act as one.
	FnInv
	// FnInvSquare is f(x) = 1/max(x, 1)^2 (variance of factor-normalized
	// aggregates).
	FnInvSquare
	// FnMax1 is f(x) = max(x, 1): the outer-join tuple-factor rule of
	// Section 4.2 ("tuple factors with value zero have to be handled as
	// value one").
	FnMax1
)

// apply evaluates the function at a non-NULL value.
func (f Fn) apply(x float64) float64 {
	switch f {
	case FnOne:
		return 1
	case FnIdent:
		return x
	case FnSquare:
		return x * x
	case FnInv:
		if x < 1 {
			x = 1
		}
		return 1 / x
	case FnInvSquare:
		if x < 1 {
			x = 1
		}
		return 1 / (x * x)
	case FnMax1:
		if x < 1 {
			return 1
		}
		return x
	default:
		return 0
	}
}

// Range is a half-open-configurable interval constraint on a column value.
type Range struct {
	Lo, Hi         float64
	LoIncl, HiIncl bool
}

// contains reports whether v lies in the range.
func (r Range) contains(v float64) bool {
	if v < r.Lo || (v == r.Lo && !r.LoIncl) {
		return false
	}
	if v > r.Hi || (v == r.Hi && !r.HiIncl) {
		return false
	}
	return true
}

// FullRange covers every non-NULL value.
func FullRange() Range {
	return Range{Lo: math.Inf(-1), Hi: math.Inf(1), LoIncl: true, HiIncl: true}
}

// PointRange matches exactly v.
func PointRange(v float64) Range {
	return Range{Lo: v, Hi: v, LoIncl: true, HiIncl: true}
}

// ColQuery is the per-column part of an inference request: the expectation
// E[Fn(X) * 1(X in Ranges)] with NULL contributing only when the column is
// fully unconstrained (Fn == FnOne, no ranges, IncludeNull).
type ColQuery struct {
	Col    int // scope column index
	Fn     Fn
	Ranges []Range // nil means unconstrained; multiple ranges are a union
	// ExcludeNull forces NULL values to contribute zero even without
	// ranges. Used for "X IS NOT NULL" denominators of AVG queries.
	ExcludeNull bool
}

// constrained reports whether the query restricts the column at all.
func (q ColQuery) constrained() bool {
	return q.Fn != FnOne || len(q.Ranges) > 0 || q.ExcludeNull
}

// Leaf models a single attribute's distribution. Exact mode stores sorted
// distinct values with frequencies; binned mode stores equi-width bins with
// the aggregates needed for every supported Fn.
type Leaf struct {
	Col  int    // scope column index this leaf models
	Name string // column name, for diagnostics

	// Exact mode.
	Vals []float64
	Freq []float64

	// Binned mode.
	Binned bool
	Edges  []float64 // len(BinW)+1 ascending bin edges, last bin inclusive
	BinW   []float64
	BinSum []float64
	BinSq  []float64
	BinInv []float64 // sum of 1/max(v,1)
	BinIn2 []float64 // sum of 1/max(v,1)^2

	NullW float64
	Total float64 // NullW + all value/bin weights
}

// NewLeaf builds a leaf from raw column data (NaN encodes NULL) using the
// given weights (nil means weight 1 per row). maxDistinct bounds the exact
// mode; beyond it the leaf switches to `bins` equi-width bins.
func NewLeaf(col int, name string, data []float64, maxDistinct, bins int) *Leaf {
	l := &Leaf{Col: col, Name: name}
	counts := make(map[float64]float64)
	var min, max float64
	first := true
	for _, v := range data {
		if math.IsNaN(v) {
			l.NullW++
			l.Total++
			continue
		}
		counts[v]++
		l.Total++
		if first || v < min {
			min = v
		}
		if first || v > max {
			max = v
		}
		first = false
	}
	if len(counts) <= maxDistinct {
		l.Vals = make([]float64, 0, len(counts))
		for v := range counts {
			l.Vals = append(l.Vals, v)
		}
		sort.Float64s(l.Vals)
		l.Freq = make([]float64, len(l.Vals))
		for i, v := range l.Vals {
			l.Freq[i] = counts[v]
		}
		return l
	}
	// Binned mode.
	if bins < 2 {
		bins = 64
	}
	l.Binned = true
	if max == min {
		max = min + 1
	}
	l.Edges = make([]float64, bins+1)
	width := (max - min) / float64(bins)
	for i := range l.Edges {
		l.Edges[i] = min + float64(i)*width
	}
	l.Edges[bins] = max
	l.BinW = make([]float64, bins)
	l.BinSum = make([]float64, bins)
	l.BinSq = make([]float64, bins)
	l.BinInv = make([]float64, bins)
	l.BinIn2 = make([]float64, bins)
	// Accumulate in sorted value order: map iteration order would make the
	// floating-point bin sums differ run to run, and with them every
	// estimate derived from a binned leaf.
	vals := make([]float64, 0, len(counts))
	for v := range counts {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	for _, v := range vals {
		w := counts[v]
		b := l.binOf(v)
		l.BinW[b] += w
		l.BinSum[b] += w * v
		l.BinSq[b] += w * v * v
		l.BinInv[b] += w * FnInv.apply(v)
		l.BinIn2[b] += w * FnInvSquare.apply(v)
	}
	return l
}

// binOf returns the bin index of value v, clamping to the edge bins.
func (l *Leaf) binOf(v float64) int {
	n := len(l.BinW)
	if v <= l.Edges[0] {
		return 0
	}
	if v >= l.Edges[n] {
		return n - 1
	}
	// Binary search: first edge > v, minus one.
	idx := sort.SearchFloat64s(l.Edges, v)
	if idx > 0 && l.Edges[idx] != v {
		idx--
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Moment returns E[Fn(X) * 1(X in ranges)] under the leaf distribution,
// where the expectation is over all mass including NULL (NULL contributes
// zero unless the query is fully unconstrained, in which case the result is
// exactly 1 for FnOne).
func (l *Leaf) Moment(q ColQuery) float64 { return l.moment(&q) }

// moment is Moment without the ColQuery copy — the batch evaluator calls
// it once per (leaf, request) pair.
func (l *Leaf) moment(q *ColQuery) float64 {
	if l.Total == 0 {
		return 0
	}
	if !q.constrained() {
		return 1
	}
	acc := 0.0
	if l.Binned {
		ranges := q.Ranges
		if ranges == nil {
			ranges = []Range{FullRange()}
		}
		for _, r := range ranges {
			acc += l.binnedMass(r, q.Fn)
		}
	} else {
		ranges := q.Ranges
		if ranges == nil {
			ranges = []Range{FullRange()}
		}
		for _, r := range ranges {
			acc += l.exactMass(r, q.Fn)
		}
	}
	// NULL contributes only to an unconstrained FnOne query, handled above.
	return acc / l.Total
}

func (l *Leaf) exactMass(r Range, fn Fn) float64 {
	// Locate the first value >= Lo (or > Lo when exclusive).
	var start int
	if r.LoIncl {
		start = searchGE(l.Vals, r.Lo)
	} else {
		start = searchGT(l.Vals, r.Lo)
	}
	acc := 0.0
	for i := start; i < len(l.Vals); i++ {
		v := l.Vals[i]
		if v > r.Hi || (v == r.Hi && !r.HiIncl) {
			break
		}
		acc += l.Freq[i] * fn.apply(v)
	}
	return acc
}

// binnedMass integrates fn over the part of each bin covered by r, assuming
// values are uniformly spread inside a bin (the fraction of overlap scales
// every per-bin aggregate linearly). Only bins overlapping r are visited;
// the skipped bins contributed exactly zero, so the bounded loop sums the
// same terms in the same order.
//
// The two boundary bins take the general partial-overlap path
// (binBoundaryMass); every strictly interior bin is fully covered, so its
// overlap fraction is exactly 1.0 and frac*agg == agg bit for bit — those
// bins run through the unrolled kernels over the contiguous aggregate
// rows. The additions happen in the same ascending bin order as the
// scalar reference loop, so the result is bitwise identical.
func (l *Leaf) binnedMass(r Range, fn Fn) float64 {
	if math.IsNaN(r.Lo) || math.IsNaN(r.Hi) {
		// A NaN bound is an invalid binding; propagate NaN so the root
		// check reports a non-finite result (as the unbounded loop did)
		// instead of silently returning zero mass.
		return math.NaN()
	}
	n := len(l.BinW)
	// A bin [Edges[b], Edges[b+1]] overlaps iff Edges[b+1] >= r.Lo and
	// Edges[b] <= r.Hi.
	start := searchGE(l.Edges, r.Lo) - 1
	if start < 0 {
		start = 0
	}
	end := searchGT(l.Edges, r.Hi) - 1
	if end > n-1 {
		end = n - 1
	}
	if end < start {
		return 0
	}
	acc := l.binBoundaryMass(start, r, fn, 0)
	if end == start {
		return acc
	}
	if lo, hi := start+1, end; lo < hi {
		switch fn {
		case FnOne:
			acc = sumKernel(l.BinW[lo:hi], acc)
		case FnIdent:
			acc = sumKernel(l.BinSum[lo:hi], acc)
		case FnSquare:
			acc = sumKernel(l.BinSq[lo:hi], acc)
		case FnInv:
			acc = sumKernel(l.BinInv[lo:hi], acc)
		case FnInvSquare:
			acc = sumKernel(l.BinIn2[lo:hi], acc)
		case FnMax1:
			acc = sumMax1Kernel(l.BinSum[lo:hi], l.BinW[lo:hi], acc)
		}
	}
	return l.binBoundaryMass(end, r, fn, acc)
}

// binBoundaryMass adds bin b's partial-overlap contribution to acc — the
// scalar reference computation, kept for the (at most two) bins a range
// only partially covers. Skipped (empty or point) overlaps leave acc
// untouched, exactly like the reference loop's continue.
func (l *Leaf) binBoundaryMass(b int, r Range, fn Fn, acc float64) float64 {
	lo, hi := l.Edges[b], l.Edges[b+1]
	overlapLo := math.Max(lo, r.Lo)
	overlapHi := math.Min(hi, r.Hi)
	if overlapHi < overlapLo {
		return acc
	}
	width := hi - lo
	var frac float64
	if width <= 0 {
		frac = 1
	} else {
		frac = (overlapHi - overlapLo) / width
	}
	if frac <= 0 {
		// Point overlap at a shared edge: only counts when the range is
		// a point query matching the edge; approximate as zero mass for
		// binned leaves (consistent with a continuous distribution).
		return acc
	}
	var agg float64
	switch fn {
	case FnOne:
		agg = l.BinW[b]
	case FnIdent:
		agg = l.BinSum[b]
	case FnSquare:
		agg = l.BinSq[b]
	case FnInv:
		agg = l.BinInv[b]
	case FnInvSquare:
		agg = l.BinIn2[b]
	case FnMax1:
		// Values below 1 clamp to 1; per-bin the sum is bounded below
		// by the bin weight.
		agg = l.BinSum[b]
		if agg < l.BinW[b] {
			agg = l.BinW[b]
		}
	}
	return acc + frac*agg
}

// Add updates the leaf with one value (NaN = NULL) and weight w (+1 insert,
// -1 delete). Exact-mode leaves insert unseen values in sorted position;
// binned leaves update the covering bin (values outside the edge range are
// clamped into the boundary bins, keeping the structure fixed as Section
// 5.2 prescribes).
func (l *Leaf) Add(v float64, w float64) {
	l.Total += w
	if l.Total < 0 {
		l.Total = 0
	}
	if math.IsNaN(v) {
		l.NullW += w
		if l.NullW < 0 {
			l.NullW = 0
		}
		return
	}
	if l.Binned {
		b := l.binOf(v)
		l.BinW[b] += w
		l.BinSum[b] += w * v
		l.BinSq[b] += w * v * v
		l.BinInv[b] += w * FnInv.apply(v)
		l.BinIn2[b] += w * FnInvSquare.apply(v)
		if l.BinW[b] < 0 {
			l.BinW[b], l.BinSum[b], l.BinSq[b], l.BinInv[b], l.BinIn2[b] = 0, 0, 0, 0, 0
		}
		return
	}
	idx := sort.SearchFloat64s(l.Vals, v)
	if idx < len(l.Vals) && l.Vals[idx] == v {
		l.Freq[idx] += w
		if l.Freq[idx] < 0 {
			l.Freq[idx] = 0
		}
		return
	}
	if w <= 0 {
		return // deleting a value the leaf never saw: ignore
	}
	l.Vals = append(l.Vals, 0)
	copy(l.Vals[idx+1:], l.Vals[idx:])
	l.Vals[idx] = v
	l.Freq = append(l.Freq, 0)
	copy(l.Freq[idx+1:], l.Freq[idx:])
	l.Freq[idx] = w
}

// DistinctValues returns the leaf's stored values (bin midpoints in binned
// mode). Classification uses them as MPE candidates.
func (l *Leaf) DistinctValues() []float64 {
	if !l.Binned {
		return append([]float64(nil), l.Vals...)
	}
	out := make([]float64, len(l.BinW))
	for b := range l.BinW {
		if l.BinW[b] > 0 {
			out[b] = l.BinSum[b] / l.BinW[b]
		} else {
			out[b] = (l.Edges[b] + l.Edges[b+1]) / 2
		}
	}
	return out
}
