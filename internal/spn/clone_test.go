package spn

import (
	"math/rand"
	"testing"
)

// learnedSPN builds a deterministic learned SPN (exact and binned leaves).
func learnedSPN(t *testing.T, seed int64) *SPN {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, 600)
	for i := range data {
		data[i] = []float64{float64(i % 5), float64(rng.Intn(40)), rng.Float64() * 10}
	}
	s, err := Learn(data, []string{"x", "y", "z"}, DefaultLearnConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomMutations(rng *rand.Rand, n int) []Mutation {
	muts := make([]Mutation, n)
	for i := range muts {
		muts[i] = Mutation{
			Tuple:  []float64{float64(i % 5), float64(rng.Intn(40)), rng.Float64() * 10},
			Delete: i%3 == 0,
		}
	}
	return muts
}

func evalProbes(t *testing.T, s *SPN, seed int64) []float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, 16)
	for i := range reqs {
		reqs[i] = randomRequest(rng, 3)
	}
	out := make([]float64, len(reqs))
	if err := s.EvaluateBatch(reqs, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestApplyBatchMatchesPerTuple: ApplyBatch (one weight re-derivation at
// the end) must leave the model bit-identical to per-tuple Insert/Delete.
func TestApplyBatchMatchesPerTuple(t *testing.T) {
	one, bat := learnedSPN(t, 11), learnedSPN(t, 11)
	muts := randomMutations(rand.New(rand.NewSource(12)), 60)
	for _, m := range muts {
		var err error
		if m.Delete {
			err = one.Delete(m.Tuple)
		} else {
			err = one.Insert(m.Tuple)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := bat.ApplyBatch(muts); err != nil {
		t.Fatal(err)
	}
	if one.RowCount != bat.RowCount {
		t.Fatalf("RowCount %v != %v", one.RowCount, bat.RowCount)
	}
	a, b := evalProbes(t, one, 13), evalProbes(t, bat, 13)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d: per-tuple %v != batched %v", i, a[i], b[i])
		}
	}
	// The batched model's flat form must also still match its tree walk.
	rng := rand.New(rand.NewSource(14))
	reqs := make([]Request, 12)
	for i := range reqs {
		reqs[i] = randomRequest(rng, 3)
	}
	assertBatchMatchesTree(t, bat, reqs, "after ApplyBatch")
}

// TestCloneIsolation: mutating a clone leaves the original — tree, leaves
// and compiled evaluator — bit-for-bit untouched, and the clone starts
// bit-identical to its source.
func TestCloneIsolation(t *testing.T) {
	s := learnedSPN(t, 21)
	before := evalProbes(t, s, 22)
	c := s.Clone()
	for i, v := range evalProbes(t, c, 22) {
		if v != before[i] {
			t.Fatalf("probe %d: clone differs from source before mutation", i)
		}
	}
	if err := c.ApplyBatch(randomMutations(rand.New(rand.NewSource(23)), 80)); err != nil {
		t.Fatal(err)
	}
	after := evalProbes(t, s, 22)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("probe %d: source drifted after clone mutation: %v != %v", i, before[i], after[i])
		}
	}
	// And the mutated clone stays internally consistent (flat == tree).
	rng := rand.New(rand.NewSource(24))
	reqs := make([]Request, 12)
	for i := range reqs {
		reqs[i] = randomRequest(rng, 3)
	}
	assertBatchMatchesTree(t, c, reqs, "mutated clone")
}

// TestCloneHandBuilt: cloning an uncompiled hand-built SPN keeps it on the
// tree-walk path (no flat evaluator invented out of thin air).
func TestCloneHandBuilt(t *testing.T) {
	s := figure3SPN()
	c := s.Clone()
	if c.Compiled() != nil {
		t.Fatal("clone of uncompiled SPN grew a flat evaluator")
	}
	want, err := s.Evaluate(Request{Cols: []ColQuery{{Col: 0, Ranges: []Range{PointRange(1)}}}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Evaluate(Request{Cols: []ColQuery{{Col: 0, Ranges: []Range{PointRange(1)}}}})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("clone evaluates %v, source %v", got, want)
	}
}
