package spn

// kernel_test.go pins the unrolled binned-leaf kernels and the
// specialized evaluator paths (singleton, one-word, uniform-mask,
// multi-word) to their scalar references, bit for bit: a verbatim copy of
// the pre-kernel binnedMass loop is the oracle for leaf moments, and the
// tree walk is the oracle for whole-model evaluation. It also pins the
// slab aliasing invariant: in-place leaf updates must be visible to the
// compiled form's kernels without a recompile.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// scalarBinnedMass is the pre-kernel reference loop, kept verbatim: every
// overlapping bin takes the general partial-overlap path.
func scalarBinnedMass(l *Leaf, r Range, fn Fn) float64 {
	if math.IsNaN(r.Lo) || math.IsNaN(r.Hi) {
		return math.NaN()
	}
	acc := 0.0
	n := len(l.BinW)
	start := searchGE(l.Edges, r.Lo) - 1
	if start < 0 {
		start = 0
	}
	end := searchGT(l.Edges, r.Hi) - 1
	if end > n-1 {
		end = n - 1
	}
	for b := start; b <= end; b++ {
		lo, hi := l.Edges[b], l.Edges[b+1]
		overlapLo := math.Max(lo, r.Lo)
		overlapHi := math.Min(hi, r.Hi)
		if overlapHi < overlapLo {
			continue
		}
		width := hi - lo
		var frac float64
		if width <= 0 {
			frac = 1
		} else {
			frac = (overlapHi - overlapLo) / width
		}
		if frac <= 0 {
			continue
		}
		var agg float64
		switch fn {
		case FnOne:
			agg = l.BinW[b]
		case FnIdent:
			agg = l.BinSum[b]
		case FnSquare:
			agg = l.BinSq[b]
		case FnInv:
			agg = l.BinInv[b]
		case FnInvSquare:
			agg = l.BinIn2[b]
		case FnMax1:
			agg = l.BinSum[b]
			if agg < l.BinW[b] {
				agg = l.BinW[b]
			}
		}
		acc += frac * agg
	}
	return acc
}

// randomBinnedLeaf builds a binned leaf with enough bins that ranges cover
// long interior runs (the kernels' unrolled hot path).
func randomBinnedLeaf(rng *rand.Rand, bins int) *Leaf {
	n := 200 + rng.Intn(800)
	data := make([]float64, n)
	for i := range data {
		switch rng.Intn(12) {
		case 0:
			data[i] = math.NaN()
		case 1:
			data[i] = -rng.Float64() * 100 // negatives exercise FnInv clamps
		default:
			data[i] = rng.Float64() * 1000
		}
	}
	return NewLeaf(0, "k", data, 2, bins)
}

// kernelTestRanges yields ranges that hit every kernel regime: wide spans
// with many interior bins, single-bin and two-bin overlaps, point ranges
// on and off bin edges, empty and NaN-bounded ranges.
func kernelTestRanges(rng *rand.Rand, l *Leaf) []Range {
	lo, hi := l.Edges[0], l.Edges[len(l.Edges)-1]
	span := hi - lo
	out := []Range{
		FullRange(),
		{Lo: lo, Hi: hi, LoIncl: true, HiIncl: true},
		{Lo: lo - 10, Hi: hi + 10, LoIncl: true, HiIncl: true},
		{Lo: 1, Hi: 0},             // contradictory
		PointRange(l.Edges[1]),     // point on an interior edge
		PointRange(lo + span*0.37), // point inside a bin
		{Lo: math.NaN(), Hi: hi, LoIncl: true, HiIncl: true},
		{Lo: lo, Hi: math.NaN(), LoIncl: true, HiIncl: true},
		{Lo: math.Inf(-1), Hi: lo + span*0.5, LoIncl: true, HiIncl: false},
		{Lo: lo + span*0.5, Hi: math.Inf(1), LoIncl: false, HiIncl: true},
	}
	for i := 0; i < 40; i++ {
		a := lo + rng.Float64()*span*1.2 - span*0.1
		b := a + rng.Float64()*span
		out = append(out, Range{Lo: a, Hi: b, LoIncl: rng.Intn(2) == 0, HiIncl: rng.Intn(2) == 0})
	}
	return out
}

func TestBinnedKernelsMatchScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		bins := []int{2, 3, 4, 5, 8, 17, 64, 128, 256}[trial%9]
		l := randomBinnedLeaf(rng, bins)
		for _, r := range kernelTestRanges(rng, l) {
			for _, fn := range allFns {
				want := scalarBinnedMass(l, r, fn)
				got := l.binnedMass(r, fn)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("trial %d bins=%d fn=%d range=%+v: kernel %v != scalar %v",
						trial, bins, fn, r, got, want)
				}
			}
		}
	}
}

// TestCompiledMatchesTreeWideScope drives models with more than 64
// columns through the multi-word (bottomUpGeneric) sweep.
func TestCompiledMatchesTreeWideScope(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		numCols := 65 + rng.Intn(80)
		s := randomSPN(rng, numCols)
		batch := 1 + rng.Intn(6)
		reqs := make([]Request, batch)
		for i := range reqs {
			reqs[i] = randomRequest(rng, numCols)
		}
		assertBatchMatchesTree(t, s, reqs, fmt.Sprintf("wide trial %d", trial))
	}
}

// TestCompiledMatchesTreeUniformBatch builds GROUP-BY-shaped batches —
// every request constrains the same column set, differing only in one
// point range — which is exactly the uniform-mask product specialization.
func TestCompiledMatchesTreeUniformBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 60; trial++ {
		numCols := 2 + rng.Intn(5)
		s := randomSPN(rng, numCols)
		shared := randomRequest(rng, numCols)
		if len(shared.Cols) == 0 {
			shared.Cols = []ColQuery{{Col: 0, Fn: FnOne, Ranges: []Range{FullRange()}}}
		}
		batch := 2 + rng.Intn(14)
		reqs := make([]Request, batch)
		for i := range reqs {
			cols := append([]ColQuery(nil), shared.Cols...)
			cols[rng.Intn(len(cols))%len(cols)] = ColQuery{
				Col:    shared.Cols[0].Col,
				Fn:     FnOne,
				Ranges: []Range{PointRange(float64(i % 7))},
			}
			// Re-unique the columns: keep the first occurrence of each.
			uniq := cols[:0]
			seen := map[int]bool{}
			for _, cq := range cols {
				if seen[cq.Col] {
					continue
				}
				seen[cq.Col] = true
				uniq = append(uniq, cq)
			}
			reqs[i] = Request{Cols: append([]ColQuery(nil), uniq...)}
		}
		assertBatchMatchesTree(t, s, reqs, fmt.Sprintf("uniform trial %d", trial))
	}
}

// TestSlabAliasingAfterUpdates pins the structure-of-arrays invariant:
// Leaf.Add mutates slab memory in place, so after inserts and deletes on
// binned leaves the compiled kernels and the tree walk must still agree
// bit for bit without a recompile.
func TestSlabAliasingAfterUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	data := make([][]float64, 1500)
	for i := range data {
		data[i] = []float64{float64(i % 5), rng.Float64() * 5000, rng.NormFloat64() * 50}
	}
	cfg := DefaultLearnConfig()
	cfg.MaxDistinct = 16 // force binned leaves on the wide columns
	cfg.Bins = 32
	s, err := Learn(data, []string{"x", "y", "z"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Compiled()
	if c == nil || len(c.binW) == 0 {
		t.Fatal("expected binned-leaf slabs in the compiled form")
	}
	// Every binned leaf's slices must be views into the compiled slabs.
	for i, lf := range c.leaf {
		if lf == nil || !lf.Binned {
			continue
		}
		off := c.leafOff[i]
		if off < 0 {
			t.Fatalf("node %d: binned leaf without slab offset", i)
		}
		if &lf.BinW[0] != &c.binW[off] || &lf.BinSum[0] != &c.binSum[off] {
			t.Fatalf("node %d: leaf bins are not slab views", i)
		}
	}
	for step := 0; step < 120; step++ {
		tuple := []float64{float64(step % 5), rng.Float64() * 6000, rng.NormFloat64() * 50}
		if step%4 == 0 {
			if err := s.Delete(tuple); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := s.Insert(tuple); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Compiled() != c {
		t.Fatal("updates must not rebuild the compiled form")
	}
	reqs := make([]Request, 24)
	for i := range reqs {
		reqs[i] = randomRequest(rng, 3)
	}
	assertBatchMatchesTree(t, s, reqs, "after binned updates")
}
