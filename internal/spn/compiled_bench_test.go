package spn

// Micro-benchmarks comparing the reference tree walk against the compiled
// flat evaluator, single-request and batched. scripts/bench.sh runs these
// and emits BENCH_spn.json.

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

var (
	benchOnce sync.Once
	benchSPN  *SPN
	benchReqs []Request
)

func benchFixture(b *testing.B) (*SPN, []Request) {
	b.Helper()
	benchOnce.Do(func() {
		rng := rand.New(rand.NewSource(42))
		data := make([][]float64, 20000)
		for i := range data {
			row := make([]float64, 6)
			row[0] = float64(i % 9)              // small categorical
			row[1] = float64(rng.Intn(5000))     // high-cardinality -> binned
			row[2] = rng.NormFloat64() * 100     // continuous
			row[3] = float64(rng.Intn(50))       // medium categorical
			row[4] = math.Abs(rng.NormFloat64()) // factor-like
			if rng.Intn(12) == 0 {
				row[5] = math.NaN()
			} else {
				row[5] = float64(rng.Intn(20))
			}
			data[i] = row
		}
		cfg := DefaultLearnConfig()
		cfg.MaxDistinct = 256
		var err error
		benchSPN, err = Learn(data, []string{"a", "b", "c", "d", "e", "f"}, cfg)
		if err != nil {
			panic(err)
		}
		// A mix of the request shapes query plans emit: probabilities,
		// filtered expectations, squared moments, inverse factors.
		fns := []Fn{FnOne, FnIdent, FnSquare, FnInv}
		for i := 0; i < 64; i++ {
			req := Request{Cols: []ColQuery{
				{Col: 0, Fn: FnOne, Ranges: []Range{PointRange(float64(i % 9))}},
				{Col: 1, Fn: fns[i%len(fns)], Ranges: []Range{{Lo: 0, Hi: float64(500 + i*50), LoIncl: true, HiIncl: true}}},
				{Col: 2, Fn: FnOne, Ranges: []Range{{Lo: -50, Hi: 50, LoIncl: true, HiIncl: false}}},
			}}
			if i%3 == 0 {
				req.Cols = append(req.Cols, ColQuery{Col: 5, Fn: FnOne, ExcludeNull: true})
			}
			benchReqs = append(benchReqs, req)
		}
	})
	return benchSPN, benchReqs
}

// BenchmarkSPNEvalTree: the reference pointer-chasing tree walk, one
// request per traversal (allocates a column map per call).
func BenchmarkSPNEvalTree(b *testing.B) {
	s, reqs := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Evaluate(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSPNEvalFlat: the compiled flat evaluator with a single-request
// batch — same work per request, no recursion, no maps, pooled scratch.
func BenchmarkSPNEvalFlat(b *testing.B) {
	s, reqs := benchFixture(b)
	out := make([]float64, 1)
	one := make([]Request, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		one[0] = reqs[i%len(reqs)]
		if err := s.EvaluateBatch(one, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSPNEvalFlatBatch16: sixteen requests sharing one pass over the
// flat arrays — the shape a GROUP BY or ExecBatch execution produces. One
// op answers 16 requests; compare ns/op divided by 16 against the
// single-request benchmarks.
func BenchmarkSPNEvalFlatBatch16(b *testing.B) {
	s, reqs := benchFixture(b)
	const batch = 16
	out := make([]float64, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * batch) % (len(reqs) - batch + 1)
		if err := s.EvaluateBatch(reqs[lo:lo+batch], out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(batch, "requests/op")
}

// BenchmarkSPNEvalTreeBatch16: the same sixteen requests through the tree
// walk — the pre-batching cost of that workload.
func BenchmarkSPNEvalTreeBatch16(b *testing.B) {
	s, reqs := benchFixture(b)
	const batch = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * batch) % (len(reqs) - batch + 1)
		for _, req := range reqs[lo : lo+batch] {
			if _, err := s.Evaluate(req); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(batch, "requests/op")
}

// groupedRequests builds the request shape a GROUP BY execution emits:
// every request shares the query's filter constraints and differs only in
// the group key's point range — the pattern the batch evaluator's
// moment-sharing exploits.
func groupedRequests(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Cols: []ColQuery{
			{Col: 0, Fn: FnOne, Ranges: []Range{PointRange(float64(i % 9))}},
			{Col: 1, Fn: FnOne, Ranges: []Range{{Lo: 0, Hi: 2500, LoIncl: true, HiIncl: true}}},
			{Col: 2, Fn: FnOne, Ranges: []Range{{Lo: -50, Hi: 50, LoIncl: true, HiIncl: false}}},
		}}
	}
	return reqs
}

// BenchmarkSPNEvalFlatGrouped16: sixteen group-key requests in one batched
// pass — shared constraints are evaluated once per leaf, not once per key.
func BenchmarkSPNEvalFlatGrouped16(b *testing.B) {
	s, _ := benchFixture(b)
	reqs := groupedRequests(16)
	out := make([]float64, len(reqs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.EvaluateBatch(reqs, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reqs)), "requests/op")
}

// BenchmarkSPNEvalTreeGrouped16: the same sixteen group-key requests as
// independent tree walks — one full evaluation per key.
func BenchmarkSPNEvalTreeGrouped16(b *testing.B) {
	s, _ := benchFixture(b)
	reqs := groupedRequests(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, req := range reqs {
			if _, err := s.Evaluate(req); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(reqs)), "requests/op")
}
