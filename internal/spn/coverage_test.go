package spn

import (
	"math"
	"strings"
	"testing"
)

func TestRangeContains(t *testing.T) {
	r := Range{Lo: 1, Hi: 5, LoIncl: true, HiIncl: false}
	cases := []struct {
		v    float64
		want bool
	}{{0, false}, {1, true}, {3, true}, {5, false}, {6, false}}
	for _, c := range cases {
		if got := r.contains(c.v); got != c.want {
			t.Errorf("contains(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	excl := Range{Lo: 1, Hi: 5, LoIncl: false, HiIncl: true}
	if excl.contains(1) || !excl.contains(5) {
		t.Fatal("exclusive/inclusive endpoints wrong")
	}
}

func TestNodeStringRendering(t *testing.T) {
	s := figure3SPN()
	out := s.Root.String()
	if !strings.Contains(out, "+(") || !strings.Contains(out, "x(") ||
		!strings.Contains(out, "c_region") {
		t.Fatalf("tree rendering = %q", out)
	}
	if k := Kind(42).String(); !strings.Contains(k, "42") {
		t.Fatal("unknown kind should render its number")
	}
}

func TestNodeWeight(t *testing.T) {
	s := figure3SPN()
	if w := s.Root.Weight(0); math.Abs(w-0.3) > 1e-12 {
		t.Fatalf("weight 0 = %v, want 0.3", w)
	}
	if w := s.Root.Weight(1); math.Abs(w-0.7) > 1e-12 {
		t.Fatalf("weight 1 = %v, want 0.7", w)
	}
	// Zero-count sum node: uniform weights.
	n := &Node{Kind: SumKind, Children: []*Node{{}, {}}, ChildCounts: []float64{0, 0}}
	if w := n.Weight(0); w != 0.5 {
		t.Fatalf("uniform fallback weight = %v", w)
	}
}

func TestLeafAddBinned(t *testing.T) {
	// Force a binned leaf and update it.
	data := make([]float64, 200)
	for i := range data {
		data[i] = float64(i)
	}
	l := NewLeaf(0, "x", data, 50, 10)
	if !l.Binned {
		t.Fatal("leaf should be binned")
	}
	before := l.Moment(ColQuery{Fn: FnIdent})
	// Insert many large values: the mean must rise.
	for i := 0; i < 100; i++ {
		l.Add(199, 1)
	}
	after := l.Moment(ColQuery{Fn: FnIdent})
	if after <= before {
		t.Fatalf("binned mean should rise: %v -> %v", before, after)
	}
	// Out-of-range values clamp into edge bins without panicking.
	l.Add(1e9, 1)
	l.Add(-1e9, 1)
	// Delete below zero clamps.
	for i := 0; i < 1000; i++ {
		l.Add(0.5, -1)
	}
	if l.BinW[0] < 0 {
		t.Fatal("bin weight went negative")
	}
	// NULL deletion clamps too.
	l.Add(math.NaN(), -1)
	if l.NullW < 0 {
		t.Fatal("null weight went negative")
	}
}

func TestLeafDeleteUnseenValueIgnored(t *testing.T) {
	l := NewLeaf(0, "x", []float64{1, 2}, 10, 4)
	l.Add(99, -1) // never seen: ignored (total still adjusts)
	if len(l.Vals) != 2 {
		t.Fatalf("unseen delete should not add a value: %v", l.Vals)
	}
}

func TestLeafDistinctValuesBinned(t *testing.T) {
	data := make([]float64, 300)
	for i := range data {
		data[i] = float64(i % 100)
	}
	l := NewLeaf(0, "x", data, 20, 8)
	vals := l.DistinctValues()
	if len(vals) != 8 {
		t.Fatalf("binned distinct values = %d, want one per bin", len(vals))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Fatal("bin representatives not increasing")
		}
	}
}

func TestFnMax1(t *testing.T) {
	l := NewLeaf(0, "f", []float64{0, 1, 3}, 10, 4)
	// E[max(f,1)] = (1 + 1 + 3)/3.
	want := 5.0 / 3
	if got := l.Moment(ColQuery{Fn: FnMax1}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("E[max(f,1)] = %v, want %v", got, want)
	}
	// Binned variant: clamped below by bin weight.
	data := make([]float64, 300)
	for i := range data {
		data[i] = float64(i%3) - 1 // -1, 0, 1
	}
	lb := NewLeaf(0, "f", data, 2, 4)
	if !lb.Binned {
		t.Fatal("expected binned leaf")
	}
	got := lb.Moment(ColQuery{Fn: FnMax1})
	if got < 1-1e-9 {
		t.Fatalf("binned E[max(f,1)] = %v, must be >= 1", got)
	}
}

func TestNearestChildFallback(t *testing.T) {
	// Sum node without routing metadata: falls back to the heaviest child.
	n := &Node{Kind: SumKind,
		Scope:       []int{0},
		Children:    []*Node{leafNode(0, 1), leafNode(0, 2)},
		ChildCounts: []float64{1, 9},
	}
	if got := nearestChild(n, []float64{5}); got != 1 {
		t.Fatalf("fallback routing = %d, want heaviest child 1", got)
	}
}

func leafNode(col int, v float64) *Node {
	return &Node{Kind: LeafKind, Scope: []int{col},
		Leaf: &Leaf{Col: col, Vals: []float64{v}, Freq: []float64{1}, Total: 1}}
}

func TestLearnExactDuplicateRows(t *testing.T) {
	data := [][]float64{{1, 2}, {1, 2}, {3, 4}}
	s, err := LearnExact(data, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Probability([]ColQuery{
		{Col: 0, Ranges: []Range{PointRange(1)}},
		{Col: 1, Ranges: []Range{PointRange(2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-2.0/3) > 1e-12 {
		t.Fatalf("P(dup row) = %v, want 2/3", p)
	}
	// Exact models must be updatable (centroids present).
	if err := s.Insert([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	p2, _ := s.Probability([]ColQuery{
		{Col: 0, Ranges: []Range{PointRange(1)}},
		{Col: 1, Ranges: []Range{PointRange(2)}},
	})
	if p2 <= p-1e-12 {
		t.Fatalf("probability should not fall after inserting the row: %v -> %v", p, p2)
	}
}

func TestLearnExactErrors(t *testing.T) {
	if _, err := LearnExact(nil, []string{"a"}); err == nil {
		t.Fatal("expected error for empty data")
	}
	if _, err := LearnExact([][]float64{{1}}, []string{"a", "b"}); err == nil {
		t.Fatal("expected error for column mismatch")
	}
}
