package spn

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/stats"
)

// LearnConfig holds the structure-learning hyperparameters. The defaults
// match the paper's Section 6 setup: RDC threshold 0.3 and a minimum
// instance slice of 1% of the input rows.
type LearnConfig struct {
	// RDCThreshold: column pairs with RDC above it are considered
	// dependent and stay in the same product-node child.
	RDCThreshold float64
	// MinInstanceFrac is the minimum row-cluster size as a fraction of the
	// input; below it the learner stops splitting rows and factorizes.
	MinInstanceFrac float64
	// KMeansClusters is the fan-out of sum nodes.
	KMeansClusters int
	// MaxDistinct is the exact-leaf limit before binning (Section 3.2).
	MaxDistinct int
	// Bins is the bin count for binned leaves.
	Bins int
	// RDCSample caps the rows used per pairwise RDC test.
	RDCSample int
	// Seed makes learning deterministic.
	Seed int64
}

// DefaultLearnConfig mirrors the paper's hyperparameters.
func DefaultLearnConfig() LearnConfig {
	return LearnConfig{
		RDCThreshold:    0.3,
		MinInstanceFrac: 0.01,
		KMeansClusters:  2,
		MaxDistinct:     1024,
		Bins:            64,
		RDCSample:       1500,
		Seed:            1,
	}
}

// SPN is a learned sum-product network over named columns.
type SPN struct {
	Root     *Node
	Columns  []string // column names by scope index
	RowCount float64  // training rows (updated by Insert/Delete)
	Config   LearnConfig

	// flat is the compiled structure-of-arrays evaluator (compiled.go),
	// built by Refresh at the end of learning and after deserialization,
	// and rebuilt by Insert/Delete. Unexported so gob skips it. nil for
	// hand-built trees; EvaluateBatch then falls back to the tree walk.
	flat *Compiled
	// colIdx caches name -> scope index (built by Refresh; nil falls back
	// to a linear scan).
	colIdx map[string]int
	// batching suppresses the per-mutation flat-weight refresh between
	// BeginBatch and EndBatch (update.go), so a batch recompiles once.
	batching bool
}

// ColumnIndex returns the scope index of the named column, or -1.
func (s *SPN) ColumnIndex(name string) int {
	if s.colIdx != nil {
		if i, ok := s.colIdx[name]; ok {
			return i
		}
		return -1
	}
	for i, c := range s.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Learn builds an SPN over the data matrix (rows x columns, NaN = NULL).
func Learn(data [][]float64, columns []string, cfg LearnConfig) (*SPN, error) {
	return LearnContext(context.Background(), data, columns, cfg)
}

// LearnContext is Learn with cancellation: the recursive structure-learning
// loop checks ctx at every node split and aborts with ctx.Err() once the
// context is done, so a caller can bound the cost of learning a large RSPN.
func LearnContext(ctx context.Context, data [][]float64, columns []string, cfg LearnConfig) (*SPN, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("spn: no training rows")
	}
	if len(columns) == 0 || len(data[0]) != len(columns) {
		return nil, fmt.Errorf("spn: %d columns named, rows have %d", len(columns), len(data[0]))
	}
	if cfg.RDCThreshold == 0 && cfg.MinInstanceFrac == 0 {
		cfg = DefaultLearnConfig()
	}
	if cfg.KMeansClusters < 2 {
		cfg.KMeansClusters = 2
	}
	if cfg.MaxDistinct <= 0 {
		cfg.MaxDistinct = 1024
	}
	if cfg.Bins <= 0 {
		cfg.Bins = 64
	}
	if cfg.RDCSample <= 0 {
		cfg.RDCSample = 1500
	}
	l := &learner{
		ctx:     ctx,
		data:    data,
		columns: columns,
		cfg:     cfg,
		minRows: int(math.Max(1, cfg.MinInstanceFrac*float64(len(data)))),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	rows := make([]int, len(data))
	for i := range rows {
		rows[i] = i
	}
	scope := make([]int, len(columns))
	for i := range scope {
		scope[i] = i
	}
	root := l.build(rows, scope, true)
	if l.err != nil {
		return nil, l.err
	}
	spn := &SPN{Root: root, Columns: columns, RowCount: float64(len(data)), Config: cfg}
	if err := root.Validate(); err != nil {
		return nil, err
	}
	spn.Refresh()
	return spn, nil
}

// LearnExact builds a memorizing SPN: a sum node with one child per
// distinct row, each child a product of point-mass leaves. The resulting
// model represents the empirical joint distribution exactly, which is what
// the paper's worked examples (Figures 3-5) assume. It is intended for
// small tables; the node count grows linearly with distinct rows.
//
//deepdb:nocancel documented for small worked-example tables; loops are linear in a deliberately small input
func LearnExact(data [][]float64, columns []string) (*SPN, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("spn: no training rows")
	}
	if len(columns) == 0 || len(data[0]) != len(columns) {
		return nil, fmt.Errorf("spn: %d columns named, rows have %d", len(columns), len(data[0]))
	}
	scope := make([]int, len(columns))
	for i := range scope {
		scope[i] = i
	}
	// Deduplicate rows, preserving first-seen order for determinism.
	type group struct {
		row   []float64
		count float64
	}
	var groups []*group
	index := map[string]*group{}
	for _, row := range data {
		key := fmt.Sprint(row)
		if g, ok := index[key]; ok {
			g.count++
			continue
		}
		g := &group{row: row, count: 1}
		index[key] = g
		groups = append(groups, g)
	}
	if len(groups) == 1 {
		root := exactRowNode(groups[0].row, columns, scope)
		s := &SPN{Root: root, Columns: columns, RowCount: float64(len(data))}
		s.Refresh()
		return s, nil
	}
	root := &Node{Kind: SumKind, Scope: scope}
	mins := make([]float64, len(columns))
	maxs := make([]float64, len(columns))
	for j := range columns {
		mins[j], maxs[j] = math.Inf(1), math.Inf(-1)
		for _, g := range groups {
			v := g.row[j]
			if math.IsNaN(v) {
				continue
			}
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
		if math.IsInf(mins[j], 1) {
			mins[j], maxs[j] = 0, 1
		}
		if maxs[j] == mins[j] {
			maxs[j] = mins[j] + 1
		}
	}
	root.NormMin, root.NormMax = mins, maxs
	for _, g := range groups {
		root.Children = append(root.Children, exactRowNode(g.row, columns, scope))
		root.ChildCounts = append(root.ChildCounts, g.count)
		centroid := make([]float64, len(columns))
		for j := range columns {
			centroid[j] = NormalizeValue(g.row[j], mins[j], maxs[j])
		}
		root.Centroids = append(root.Centroids, centroid)
	}
	spn := &SPN{Root: root, Columns: columns, RowCount: float64(len(data))}
	if err := root.Validate(); err != nil {
		return nil, err
	}
	spn.Refresh()
	return spn, nil
}

// exactRowNode builds the product-of-point-leaves node for one row.
func exactRowNode(row []float64, columns []string, scope []int) *Node {
	if len(scope) == 1 {
		return exactLeaf(row[scope[0]], scope[0], columns[scope[0]])
	}
	children := make([]*Node, len(scope))
	for i, c := range scope {
		children[i] = exactLeaf(row[c], c, columns[c])
	}
	return &Node{Kind: ProductKind, Scope: append([]int(nil), scope...), Children: children}
}

func exactLeaf(v float64, col int, name string) *Node {
	l := &Leaf{Col: col, Name: name, Total: 1}
	if math.IsNaN(v) {
		l.NullW = 1
	} else {
		l.Vals = []float64{v}
		l.Freq = []float64{1}
	}
	return &Node{Kind: LeafKind, Scope: []int{col}, Leaf: l}
}

type learner struct {
	ctx     context.Context
	data    [][]float64
	columns []string
	cfg     LearnConfig
	minRows int
	rng     *rand.Rand
	// err records a context cancellation observed during recursion; the
	// learner then unwinds by factorizing every remaining branch cheaply.
	err error
}

// build recursively grows the SPN over the given rows and scope.
// tryRowSplit alternates split direction the way the MSPN learner does:
// after a failed or performed column split we attempt row clustering next.
func (l *learner) build(rows []int, scope []int, tryColsFirst bool) *Node {
	if l.err == nil && l.ctx != nil {
		select {
		case <-l.ctx.Done():
			l.err = l.ctx.Err()
		default:
		}
	}
	if l.err != nil {
		// Cancelled: produce a structurally valid placeholder so recursion
		// unwinds fast; the caller discards the model and returns l.err.
		return l.factorizeAll(rows, scope)
	}
	if len(scope) == 1 {
		return l.leaf(rows, scope[0])
	}
	if len(rows) <= l.minRows || len(rows) < 2*l.cfg.KMeansClusters {
		// Too few rows to cluster: naive factorization into leaves.
		return l.factorizeAll(rows, scope)
	}
	if tryColsFirst {
		if comps := l.independentComponents(rows, scope); len(comps) > 1 {
			return l.product(rows, scope, comps)
		}
		return l.sumSplit(rows, scope)
	}
	node := l.sumSplit(rows, scope)
	return node
}

// leaf builds a leaf node for one column over the given rows.
func (l *learner) leaf(rows []int, col int) *Node {
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = l.data[r][col]
	}
	lf := NewLeaf(col, l.columns[col], vals, l.cfg.MaxDistinct, l.cfg.Bins)
	return &Node{Kind: LeafKind, Scope: []int{col}, Leaf: lf}
}

// factorizeAll returns a product of single-column leaves (or one leaf).
func (l *learner) factorizeAll(rows []int, scope []int) *Node {
	if len(scope) == 1 {
		return l.leaf(rows, scope[0])
	}
	var children []*Node
	for _, c := range scope {
		children = append(children, l.leaf(rows, c))
	}
	return &Node{Kind: ProductKind, Scope: append([]int(nil), scope...), Children: children}
}

// independentComponents groups the scope columns into connected components
// of the dependency graph whose edges are RDC > threshold. One component
// means no product split is possible.
func (l *learner) independentComponents(rows []int, scope []int) [][]int {
	k := len(scope)
	sample := rows
	if len(sample) > l.cfg.RDCSample {
		idx := l.rng.Perm(len(rows))[:l.cfg.RDCSample]
		sample = make([]int, l.cfg.RDCSample)
		for i, j := range idx {
			sample[i] = rows[j]
		}
	}
	cols := make([][]float64, k)
	for i, c := range scope {
		v := make([]float64, len(sample))
		for j, r := range sample {
			x := l.data[r][c]
			if math.IsNaN(x) {
				// NULL as a dedicated low sentinel for the rank transform.
				x = math.Inf(-1)
			}
			v[j] = x
		}
		cols[i] = v
	}
	// Union-find over RDC edges.
	parent := make([]int, k)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	rdcCfg := stats.RDCConfig{K: 10, Scale: 1.0 / 6.0, Seed: l.cfg.Seed}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if find(i) == find(j) {
				continue
			}
			if stats.RDC(cols[i], cols[j], rdcCfg) > l.cfg.RDCThreshold {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := map[int][]int{}
	for i := 0; i < k; i++ {
		root := find(i)
		groups[root] = append(groups[root], scope[i])
	}
	comps := make([][]int, 0, len(groups))
	//deepdb:orderinvariant comps is fully re-sorted below; groups partition scope so first elements are unique sort keys
	for _, g := range groups {
		sort.Ints(g)
		comps = append(comps, g)
	}
	sort.Slice(comps, func(a, b int) bool { return comps[a][0] < comps[b][0] })
	return comps
}

// product builds a product node over the independent column components.
func (l *learner) product(rows []int, scope []int, comps [][]int) *Node {
	var children []*Node
	for _, comp := range comps {
		if len(comp) == 1 {
			children = append(children, l.leaf(rows, comp[0]))
			continue
		}
		children = append(children, l.build(rows, comp, false))
	}
	return &Node{Kind: ProductKind, Scope: append([]int(nil), scope...), Children: children}
}

// sumSplit clusters the rows with KMeans and builds a sum node. When
// clustering degenerates (all rows in one cluster) it falls back to naive
// factorization so recursion always terminates.
func (l *learner) sumSplit(rows []int, scope []int) *Node {
	points, normMin, normMax := l.normalizedPoints(rows, scope)
	res := stats.KMeans(points, l.cfg.KMeansClusters, 30, l.rng)
	clusters := make([][]int, len(res.Centroids))
	for i, a := range res.Assignments {
		clusters[a] = append(clusters[a], rows[i])
	}
	var nonEmpty [][]int
	var centroids [][]float64
	for c, rs := range clusters {
		if len(rs) > 0 {
			nonEmpty = append(nonEmpty, rs)
			centroids = append(centroids, res.Centroids[c])
		}
	}
	if len(nonEmpty) < 2 {
		return l.factorizeAll(rows, scope)
	}
	node := &Node{
		Kind:      SumKind,
		Scope:     append([]int(nil), scope...),
		Centroids: centroids,
		NormMin:   normMin,
		NormMax:   normMax,
	}
	for _, rs := range nonEmpty {
		node.ChildCounts = append(node.ChildCounts, float64(len(rs)))
		node.Children = append(node.Children, l.build(rs, scope, true))
	}
	return node
}

// normalizedPoints scales each scope column to [0,1] and maps NULL to the
// sentinel -0.5 so NULLs cluster together, returning the per-column min/max
// used (kept on the sum node for routing updates).
func (l *learner) normalizedPoints(rows []int, scope []int) (points [][]float64, mins, maxs []float64) {
	k := len(scope)
	mins = make([]float64, k)
	maxs = make([]float64, k)
	for i := range mins {
		mins[i] = math.Inf(1)
		maxs[i] = math.Inf(-1)
	}
	for _, r := range rows {
		for i, c := range scope {
			v := l.data[r][c]
			if math.IsNaN(v) {
				continue
			}
			if v < mins[i] {
				mins[i] = v
			}
			if v > maxs[i] {
				maxs[i] = v
			}
		}
	}
	for i := range mins {
		if math.IsInf(mins[i], 1) { // all NULL
			mins[i], maxs[i] = 0, 1
		}
		if maxs[i] == mins[i] {
			maxs[i] = mins[i] + 1
		}
	}
	points = make([][]float64, len(rows))
	for j, r := range rows {
		p := make([]float64, k)
		for i, c := range scope {
			p[i] = NormalizeValue(l.data[r][c], mins[i], maxs[i])
		}
		points[j] = p
	}
	return points, mins, maxs
}

// NormalizeValue maps v into [0,1] given column min/max, with NULL (NaN)
// mapped to the sentinel -0.5. Shared with the update path so routing uses
// the same geometry as learning.
func NormalizeValue(v, min, max float64) float64 {
	if math.IsNaN(v) {
		return -0.5
	}
	if max == min {
		return 0
	}
	return (v - min) / (max - min)
}
