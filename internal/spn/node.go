package spn

import (
	"fmt"
	"strings"
)

// Kind discriminates the node types of an SPN.
type Kind int

const (
	// SumKind nodes mix their children (row clusters).
	SumKind Kind = iota
	// ProductKind nodes factor independent column groups.
	ProductKind
	// LeafKind nodes model a single attribute.
	LeafKind
)

// String returns a short node-kind label.
func (k Kind) String() string {
	switch k {
	case SumKind:
		return "+"
	case ProductKind:
		return "x"
	case LeafKind:
		return "leaf"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is one node of a tree-structured SPN. All fields are exported so the
// tree can be gob-serialized for model persistence.
type Node struct {
	Kind  Kind
	Scope []int // column indices this node models, ascending

	// Sum nodes: Children share the node's scope. ChildCounts holds the
	// number of training rows per child; weights derive from it so that
	// incremental updates (Algorithm 1) only touch counts. Centroids are
	// the KMeans cluster centers in normalized coordinates over Scope,
	// used to route inserted/deleted tuples; Norm holds the per-scope-
	// column (min, max) used for that normalization.
	Children    []*Node
	ChildCounts []float64
	Centroids   [][]float64
	NormMin     []float64
	NormMax     []float64

	// Leaf nodes.
	Leaf *Leaf

	// total caches the sum of ChildCounts so sum-node evaluation does not
	// re-add the counts on every visit. Unexported: gob skips it, so
	// deserialized trees start invalid and callers re-derive it with
	// RefreshTotals. When invalid, readers recompute without storing — the
	// query path runs concurrently and must never write shared state.
	total   float64
	totalOK bool
}

// Weight returns the mixing weight of child i (count fraction).
func (n *Node) Weight(i int) float64 {
	total := n.childTotal()
	if total == 0 {
		return 1 / float64(len(n.Children))
	}
	return n.ChildCounts[i] / total
}

// childTotal returns the (cached) sum of ChildCounts. The summation order
// matches the pre-cache per-visit loop, so cached and recomputed totals are
// bit-identical.
func (n *Node) childTotal() float64 {
	if n.totalOK {
		return n.total
	}
	total := 0.0
	for _, c := range n.ChildCounts {
		total += c
	}
	return total
}

// refreshTotal recomputes and caches the ChildCounts sum. Only the write
// path (learning, updates, deserialization) may call it.
func (n *Node) refreshTotal() {
	total := 0.0
	for _, c := range n.ChildCounts {
		total += c
	}
	n.total, n.totalOK = total, true
}

// RefreshTotals caches the count total of every sum node in the subtree.
// Required after deserializing a tree (gob skips the unexported cache) or
// mutating ChildCounts directly.
func (n *Node) RefreshTotals() {
	if n == nil {
		return
	}
	if n.Kind == SumKind {
		n.refreshTotal()
	}
	for _, c := range n.Children {
		c.RefreshTotals()
	}
}

// NumNodes returns the total node count of the subtree.
func (n *Node) NumNodes() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.NumNodes()
	}
	return total
}

// Depth returns the height of the subtree (a leaf has depth 1).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// NumLeaves counts leaf nodes in the subtree.
func (n *Node) NumLeaves() int {
	if n == nil {
		return 0
	}
	if n.Kind == LeafKind {
		return 1
	}
	total := 0
	for _, c := range n.Children {
		total += c.NumLeaves()
	}
	return total
}

// Validate checks SPN structural invariants: sum children share the
// parent's scope, product children partition it, leaves have singleton
// scope matching their Leaf column.
//
//deepdb:nocancel structural check over the learned model, sized by node count rather than rows
func (n *Node) Validate() error {
	switch n.Kind {
	case LeafKind:
		if n.Leaf == nil {
			return fmt.Errorf("spn: leaf node without distribution")
		}
		if len(n.Scope) != 1 || n.Scope[0] != n.Leaf.Col {
			return fmt.Errorf("spn: leaf scope %v does not match column %d", n.Scope, n.Leaf.Col)
		}
		return nil
	case SumKind:
		if len(n.Children) == 0 {
			return fmt.Errorf("spn: sum node without children")
		}
		if len(n.ChildCounts) != len(n.Children) {
			return fmt.Errorf("spn: sum node has %d children but %d counts", len(n.Children), len(n.ChildCounts))
		}
		for _, c := range n.Children {
			if !sameScope(n.Scope, c.Scope) {
				return fmt.Errorf("spn: sum child scope %v != parent scope %v", c.Scope, n.Scope)
			}
			if err := c.Validate(); err != nil {
				return err
			}
		}
		return nil
	case ProductKind:
		if len(n.Children) < 2 {
			return fmt.Errorf("spn: product node with %d children", len(n.Children))
		}
		seen := map[int]bool{}
		total := 0
		for _, c := range n.Children {
			for _, s := range c.Scope {
				if seen[s] {
					return fmt.Errorf("spn: product children overlap on column %d", s)
				}
				seen[s] = true
				total++
			}
			if err := c.Validate(); err != nil {
				return err
			}
		}
		if total != len(n.Scope) {
			return fmt.Errorf("spn: product children cover %d of %d scope columns", total, len(n.Scope))
		}
		for _, s := range n.Scope {
			if !seen[s] {
				return fmt.Errorf("spn: product children miss scope column %d", s)
			}
		}
		return nil
	default:
		return fmt.Errorf("spn: unknown node kind %v", n.Kind)
	}
}

func sameScope(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the tree structure for debugging, e.g. "+(x(age, region), ...)".
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	switch n.Kind {
	case LeafKind:
		b.WriteString(n.Leaf.Name)
	default:
		b.WriteString(n.Kind.String())
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			c.render(b)
		}
		b.WriteByte(')')
	}
}
