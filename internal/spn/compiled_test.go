package spn

// compiled_test.go asserts the flattened evaluator is a drop-in for the
// reference tree walk: over randomly generated SPN structures and randomly
// generated requests spanning every Fn kind, multi-range unions,
// ExcludeNull and unconstrained columns, EvaluateBatch must return values
// bit-identical to Evaluate — and keep doing so after Insert/Delete
// rebuild the flat form.

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// randomLeaf builds an exact or binned leaf over random values, with
// optional NULL mass and occasional zero-total degenerate leaves.
func randomLeaf(rng *rand.Rand, col int) *Leaf {
	n := 1 + rng.Intn(40)
	data := make([]float64, n)
	for i := range data {
		switch rng.Intn(10) {
		case 0:
			data[i] = math.NaN() // NULL
		case 1:
			data[i] = -float64(rng.Intn(50)) // negative values exercise FnInv clamps
		default:
			data[i] = float64(rng.Intn(30))
		}
	}
	maxDistinct := 1024
	if rng.Intn(3) == 0 {
		maxDistinct = 2 // force binned mode regularly
	}
	return NewLeaf(col, fmt.Sprintf("c%d", col), data, maxDistinct, 4+rng.Intn(8))
}

// randomTree builds a structurally valid subtree over the scope columns.
func randomTree(rng *rand.Rand, scope []int, depth int) *Node {
	if len(scope) == 1 {
		leafNode := &Node{Kind: LeafKind, Scope: []int{scope[0]}, Leaf: randomLeaf(rng, scope[0])}
		if depth <= 0 || rng.Intn(3) > 0 {
			return leafNode
		}
		// Sum over single-column children.
		k := 2 + rng.Intn(2)
		n := &Node{Kind: SumKind, Scope: []int{scope[0]}}
		for i := 0; i < k; i++ {
			n.Children = append(n.Children, randomTree(rng, scope, depth-1))
			n.ChildCounts = append(n.ChildCounts, float64(rng.Intn(20))) // zeros included
		}
		return n
	}
	if depth <= 0 || rng.Intn(4) == 0 {
		// Product of single-column leaves.
		n := &Node{Kind: ProductKind, Scope: append([]int(nil), scope...)}
		for _, c := range scope {
			n.Children = append(n.Children, randomTree(rng, []int{c}, 0))
		}
		return n
	}
	if rng.Intn(2) == 0 {
		// Sum node: children share the scope.
		k := 2 + rng.Intn(3)
		n := &Node{Kind: SumKind, Scope: append([]int(nil), scope...)}
		for i := 0; i < k; i++ {
			n.Children = append(n.Children, randomTree(rng, scope, depth-1))
			n.ChildCounts = append(n.ChildCounts, float64(rng.Intn(20)))
		}
		return n
	}
	// Product node: partition the scope into 2+ parts.
	cut := 1 + rng.Intn(len(scope)-1)
	n := &Node{Kind: ProductKind, Scope: append([]int(nil), scope...)}
	n.Children = append(n.Children,
		randomTree(rng, scope[:cut], depth-1),
		randomTree(rng, scope[cut:], depth-1))
	return n
}

func randomSPN(rng *rand.Rand, numCols int) *SPN {
	scope := make([]int, numCols)
	cols := make([]string, numCols)
	for i := range scope {
		scope[i] = i
		cols[i] = fmt.Sprintf("c%d", i)
	}
	s := &SPN{Root: randomTree(rng, scope, 3), Columns: cols, RowCount: 100}
	if err := s.Root.Validate(); err != nil {
		panic(err)
	}
	s.Refresh()
	return s
}

var allFns = []Fn{FnOne, FnIdent, FnSquare, FnInv, FnInvSquare, FnMax1}

func randomRange(rng *rand.Rand) Range {
	switch rng.Intn(5) {
	case 0:
		return PointRange(float64(rng.Intn(30)))
	case 1:
		return FullRange()
	case 2:
		return Range{Lo: 1, Hi: 0} // contradictory (probability zero)
	default:
		lo := float64(rng.Intn(30)) - 10
		hi := lo + float64(rng.Intn(20))
		return Range{Lo: lo, Hi: hi, LoIncl: rng.Intn(2) == 0, HiIncl: rng.Intn(2) == 0}
	}
}

func randomRequest(rng *rand.Rand, numCols int) Request {
	var req Request
	for c := 0; c < numCols; c++ {
		if rng.Intn(2) == 0 {
			continue // column unconstrained
		}
		cq := ColQuery{
			Col:         c,
			Fn:          allFns[rng.Intn(len(allFns))],
			ExcludeNull: rng.Intn(4) == 0,
		}
		for i, k := 0, rng.Intn(3); i < k; i++ {
			cq.Ranges = append(cq.Ranges, randomRange(rng))
		}
		req.Cols = append(req.Cols, cq)
	}
	return req
}

// assertBatchMatchesTree evaluates reqs through both paths and requires
// bit-identical values.
func assertBatchMatchesTree(t *testing.T, s *SPN, reqs []Request, label string) {
	t.Helper()
	want := make([]float64, len(reqs))
	for i, req := range reqs {
		v, err := s.Evaluate(req)
		if err != nil {
			t.Fatalf("%s: tree Evaluate: %v", label, err)
		}
		want[i] = v
	}
	got := make([]float64, len(reqs))
	if s.Compiled() == nil {
		t.Fatalf("%s: SPN has no compiled form", label)
	}
	if err := s.Compiled().EvaluateBatch(reqs, got); err != nil {
		t.Fatalf("%s: EvaluateBatch: %v", label, err)
	}
	for i := range reqs {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: request %d: flat %v != tree %v (reqs=%+v)", label, i, got[i], want[i], reqs[i])
		}
	}
}

func TestCompiledMatchesTreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		numCols := 1 + rng.Intn(6)
		s := randomSPN(rng, numCols)
		batch := 1 + rng.Intn(8)
		reqs := make([]Request, batch)
		for i := range reqs {
			reqs[i] = randomRequest(rng, numCols)
		}
		assertBatchMatchesTree(t, s, reqs, fmt.Sprintf("trial %d", trial))
	}
}

func TestCompiledMatchesTreeLearned(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([][]float64, 3000)
	for i := range data {
		row := make([]float64, 4)
		row[0] = float64(i % 7)
		row[1] = float64(rng.Intn(2000)) // > MaxDistinct when binning forced
		row[2] = rng.NormFloat64() * 10
		if rng.Intn(10) == 0 {
			row[3] = math.NaN()
		} else {
			row[3] = float64(rng.Intn(5))
		}
		data[i] = row
	}
	cfg := DefaultLearnConfig()
	cfg.MaxDistinct = 64
	cfg.Bins = 16
	s, err := Learn(data, []string{"a", "b", "c", "d"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]Request, 32)
	for i := range reqs {
		reqs[i] = randomRequest(rng, 4)
	}
	assertBatchMatchesTree(t, s, reqs, "learned")
}

// TestCompiledErrorsMatchTree checks the validation errors of the batch
// path mirror the tree walk's.
func TestCompiledErrorsMatchTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomSPN(rng, 3)
	out := make([]float64, 1)
	if err := s.EvaluateBatch([]Request{{Cols: []ColQuery{{Col: 9}}}}, out); err == nil {
		t.Fatal("expected out-of-range column error")
	}
	if err := s.EvaluateBatch([]Request{{Cols: []ColQuery{{Col: 0}, {Col: 0}}}}, out); err == nil {
		t.Fatal("expected duplicate column error")
	}
	if err := s.EvaluateBatch([]Request{{}, {}}, out); err == nil {
		t.Fatal("expected short result buffer error")
	}
}

// TestCompiledRebuildAfterUpdate verifies the flat form rebuilt by
// Insert/Delete stays bit-identical to the tree walk, and matches a from-
// scratch Refresh.
func TestCompiledRebuildAfterUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([][]float64, 500)
	for i := range data {
		data[i] = []float64{float64(i % 5), float64(rng.Intn(40)), rng.Float64() * 10}
	}
	s, err := Learn(data, []string{"x", "y", "z"}, DefaultLearnConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tuple := []float64{float64(i % 5), float64(rng.Intn(40)), rng.Float64() * 10}
		if i%3 == 0 {
			if err := s.Delete(tuple); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := s.Insert(tuple); err != nil {
				t.Fatal(err)
			}
		}
	}
	reqs := make([]Request, 24)
	for i := range reqs {
		reqs[i] = randomRequest(rng, 3)
	}
	assertBatchMatchesTree(t, s, reqs, "after updates")

	// A from-scratch rebuild must agree with the incremental one.
	got := make([]float64, len(reqs))
	if err := s.Compiled().EvaluateBatch(reqs, got); err != nil {
		t.Fatal(err)
	}
	s.Refresh()
	fresh := make([]float64, len(reqs))
	if err := s.Compiled().EvaluateBatch(reqs, fresh); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(fresh[i]) {
			t.Fatalf("request %d: rebuilt %v != fresh %v", i, got[i], fresh[i])
		}
	}
}

// TestCompiledConcurrent exercises the pooled scratch buffers from many
// goroutines (meaningful under -race).
func TestCompiledConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := randomSPN(rng, 5)
	reqSets := make([][]Request, 8)
	wants := make([][]float64, len(reqSets))
	for i := range reqSets {
		reqs := make([]Request, 1+rng.Intn(6))
		for j := range reqs {
			reqs[j] = randomRequest(rng, 5)
		}
		reqSets[i] = reqs
		want := make([]float64, len(reqs))
		for j, req := range reqs {
			v, err := s.Evaluate(req)
			if err != nil {
				t.Fatal(err)
			}
			want[j] = v
		}
		wants[i] = want
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				i := (g + iter) % len(reqSets)
				out := make([]float64, len(reqSets[i]))
				if err := s.EvaluateBatch(reqSets[i], out); err != nil {
					t.Error(err)
					return
				}
				for j := range out {
					if math.Float64bits(out[j]) != math.Float64bits(wants[i][j]) {
						t.Errorf("goroutine %d set %d req %d: %v != %v", g, i, j, out[j], wants[i][j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestUncompiledFallback: a hand-built SPN that was never Refreshed must
// answer EvaluateBatch through the tree walk.
func TestUncompiledFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := randomSPN(rng, 3)
	s.flat = nil
	req := randomRequest(rng, 3)
	want, err := s.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 1)
	if err := s.EvaluateBatch([]Request{req}, out); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(out[0]) != math.Float64bits(want) {
		t.Fatalf("fallback %v != tree %v", out[0], want)
	}
}
