package spn

import (
	"fmt"
	"math"
	"sort"
)

// Request is a full inference request: the expectation of a product of
// per-column functions under the SPN's joint distribution,
//
//	E[ prod_i Fn_i(X_i) * 1(X_i in Ranges_i) ]
//
// Columns absent from the request are unconstrained (factor 1). This single
// primitive expresses every quantity DeepDB's query compiler needs:
// probabilities, filtered expectations, squared moments, and tuple-factor
// normalizations.
type Request struct {
	Cols []ColQuery
}

// Evaluate computes the request bottom-up: leaves return per-column
// moments, product nodes multiply independent factors, sum nodes mix
// children by weight.
func (s *SPN) Evaluate(req Request) (float64, error) {
	byCol := make(map[int]ColQuery, len(req.Cols))
	for _, cq := range req.Cols {
		if cq.Col < 0 || cq.Col >= len(s.Columns) {
			return 0, fmt.Errorf("spn: column index %d out of range", cq.Col)
		}
		if _, dup := byCol[cq.Col]; dup {
			return 0, fmt.Errorf("spn: duplicate column %d in request", cq.Col)
		}
		byCol[cq.Col] = cq
	}
	v := evalNode(s.Root, byCol)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("spn: non-finite inference result")
	}
	return v, nil
}

func evalNode(n *Node, byCol map[int]ColQuery) float64 {
	switch n.Kind {
	case LeafKind:
		cq, ok := byCol[n.Leaf.Col]
		if !ok {
			return 1
		}
		return n.Leaf.Moment(cq)
	case ProductKind:
		acc := 1.0
		for _, c := range n.Children {
			if !scopeTouches(c.Scope, byCol) {
				continue
			}
			acc *= evalNode(c, byCol)
			if acc == 0 {
				return 0
			}
		}
		return acc
	case SumKind:
		total := n.childTotal()
		if total == 0 {
			return 0
		}
		acc := 0.0
		for i, c := range n.Children {
			w := n.ChildCounts[i] / total
			if w == 0 {
				continue
			}
			acc += w * evalNode(c, byCol)
		}
		return acc
	default:
		return 0
	}
}

func scopeTouches(scope []int, byCol map[int]ColQuery) bool {
	for _, s := range scope {
		if _, ok := byCol[s]; ok {
			return true
		}
	}
	return false
}

// Probability returns P(all range constraints hold), i.e. the request with
// every Fn forced to FnOne.
func (s *SPN) Probability(cols []ColQuery) (float64, error) {
	req := Request{Cols: make([]ColQuery, len(cols))}
	for i, c := range cols {
		c.Fn = FnOne
		req.Cols[i] = c
	}
	return s.Evaluate(req)
}

// MostProbableValue returns the candidate value of the target column with
// the highest joint probability given the evidence constraints. For
// discrete targets this is exact MPE over the target variable; DeepDB's
// classification task uses it (Section 4.3).
func (s *SPN) MostProbableValue(target int, candidates []float64, evidence []ColQuery) (float64, error) {
	if len(candidates) == 0 {
		return 0, fmt.Errorf("spn: no candidate values for column %d", target)
	}
	// Build the request once — evidence plus one target entry whose point
	// range is overwritten per candidate — instead of re-copying the
	// evidence slice for every candidate value.
	cols := make([]ColQuery, len(evidence)+1)
	for i, c := range evidence {
		c.Fn = FnOne
		cols[i] = c
	}
	targetRange := []Range{PointRange(candidates[0])}
	cols[len(cols)-1] = ColQuery{Col: target, Fn: FnOne, Ranges: targetRange}
	req := Request{Cols: cols}
	best, bestP := candidates[0], -1.0
	for _, cand := range candidates {
		targetRange[0] = PointRange(cand)
		p, err := s.Evaluate(req)
		if err != nil {
			return 0, err
		}
		if p > bestP {
			best, bestP = cand, p
		}
	}
	return best, nil
}

// LeafValues returns the union of distinct values stored in all leaves of
// the given column, in ascending order, used as MPE candidates for
// classification. The order matters: MPE argmax ties break toward the
// first candidate, so an unsorted union would make predictions vary
// run to run.
func (s *SPN) LeafValues(col int) []float64 {
	seen := map[float64]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Kind == LeafKind {
			if n.Leaf.Col == col {
				for _, v := range n.Leaf.DistinctValues() {
					seen[v] = true
				}
			}
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(s.Root)
	out := make([]float64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}
