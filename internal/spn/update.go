package spn

import (
	"fmt"

	"repro/internal/stats"
)

// Insert absorbs one tuple into the SPN without retraining, implementing
// Algorithm 1 of the paper: the tuple recursively traverses the tree; at
// sum nodes the nearest KMeans cluster's weight is increased and the tuple
// descends into it, at product nodes the tuple is split by scope, at leaves
// the value distribution is updated. The tree structure never changes.
// tuple must be indexed by scope column (full row, NaN = NULL).
func (s *SPN) Insert(tuple []float64) error {
	if len(tuple) != len(s.Columns) {
		return fmt.Errorf("spn: tuple has %d values, model has %d columns", len(tuple), len(s.Columns))
	}
	updateTuple(s.Root, tuple, 1)
	s.RowCount++
	s.recompile()
	return nil
}

// Delete removes one tuple from the SPN (weight -1 along its routing path).
func (s *SPN) Delete(tuple []float64) error {
	if len(tuple) != len(s.Columns) {
		return fmt.Errorf("spn: tuple has %d values, model has %d columns", len(tuple), len(s.Columns))
	}
	updateTuple(s.Root, tuple, -1)
	if s.RowCount > 0 {
		s.RowCount--
	}
	s.recompile()
	return nil
}

// Mutation is one tuple-level change for ApplyBatch: the tuple routed
// through the tree and whether it is removed (Delete) or absorbed.
type Mutation struct {
	Tuple  []float64
	Delete bool
}

// ApplyBatch applies a sequence of inserts and deletes in order, rebuilding
// the derived mixing weights of the flat evaluator once at the end instead
// of once per tuple. A malformed mutation (wrong tuple arity) is reported —
// first error wins — but does not stop the rest of the batch, mirroring
// ensemble.Apply: the final model state is bit-identical to pushing the
// same mutations through Insert/Delete one call at a time.
func (s *SPN) ApplyBatch(muts []Mutation) error {
	s.BeginBatch()
	defer s.EndBatch()
	var first error
	for i := range muts {
		var err error
		if muts[i].Delete {
			err = s.Delete(muts[i].Tuple)
		} else {
			err = s.Insert(muts[i].Tuple)
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// BeginBatch suspends the per-mutation refresh of the flat evaluator's
// derived weights until EndBatch, so a batch of Insert/Delete calls pays
// the re-derivation once. While a batch is open the flat evaluator is
// stale; the SPN must not serve queries until EndBatch ran (the serving
// path only ever sees published, fully-recompiled snapshots).
func (s *SPN) BeginBatch() { s.batching = true }

// EndBatch closes a BeginBatch window and re-derives the flat evaluator's
// weights once for all mutations applied inside it.
func (s *SPN) EndBatch() {
	s.batching = false
	s.recompile()
}

// recompile refreshes the flat evaluator after an update changed mixing
// weights (leaf distributions are shared by pointer and need nothing).
// The tree structure never changes, so this is an in-place,
// allocation-free weight re-derivation rather than a rebuild; hand-built
// SPNs that were never compiled stay on the tree path, and inside a
// BeginBatch/EndBatch window the re-derivation is deferred to EndBatch.
// Updates run on the write path (the facade mutates only unpublished
// copy-on-write clones), so the mutation never races a reader.
func (s *SPN) recompile() {
	if s.batching {
		return
	}
	if s.flat != nil {
		s.flat.refreshWeights()
	}
}

// updateTuple is Algorithm 1 with a weight parameter so insert (+1) and
// delete (-1) share the traversal.
func updateTuple(n *Node, tuple []float64, w float64) {
	switch n.Kind {
	case LeafKind:
		n.Leaf.Add(tuple[n.Leaf.Col], w)
	case SumKind:
		nearest := nearestChild(n, tuple)
		n.ChildCounts[nearest] += w
		if n.ChildCounts[nearest] < 0 {
			n.ChildCounts[nearest] = 0
		}
		// Recompute (not increment) the cached total so it stays
		// bit-identical to a fresh summation of the counts.
		n.refreshTotal()
		updateTuple(n.Children[nearest], tuple, w)
	case ProductKind:
		// Product nodes split the column set: each child receives the
		// tuple projected onto its scope (the full tuple is passed; leaves
		// index it by their own column).
		for _, c := range n.Children {
			updateTuple(c, tuple, w)
		}
	}
}

// nearestChild routes the tuple to the closest KMeans centroid using the
// normalization recorded at learning time (Algorithm 1, line 5).
func nearestChild(n *Node, tuple []float64) int {
	if len(n.Centroids) != len(n.Children) || len(n.NormMin) != len(n.Scope) {
		// Sum node without routing metadata (e.g. deserialized from an
		// older model): fall back to the heaviest child.
		best, bestC := 0, -1.0
		for i, c := range n.ChildCounts {
			if c > bestC {
				best, bestC = i, c
			}
		}
		return best
	}
	point := make([]float64, len(n.Scope))
	for i, col := range n.Scope {
		point[i] = NormalizeValue(tuple[col], n.NormMin[i], n.NormMax[i])
	}
	return stats.NearestCentroid(point, n.Centroids)
}
