package spn

import (
	"math"
	"sort"
)

// Cluster exploration (Section 8 of the paper suggests it as future work:
// "SPNs naturally provide a notion of correlated clusters that can also be
// used for suggesting interesting patterns in data exploration"). The
// top-level sum node's children are row clusters found during learning;
// describing each cluster by its weight and per-column summary surfaces
// the dominant patterns of the data set without any query.

// ClusterSummary describes one top-level row cluster.
type ClusterSummary struct {
	// Weight is the cluster's share of the population.
	Weight float64
	// Columns summarizes each attribute within the cluster.
	Columns []ColumnSummary
}

// ColumnSummary is one attribute's behaviour within a cluster.
type ColumnSummary struct {
	Name string
	// Mean of the attribute within the cluster (non-NULL values).
	Mean float64
	// NullFrac is the NULL share within the cluster.
	NullFrac float64
	// TopValue is the most frequent value and TopShare its share of the
	// cluster's non-NULL mass (0 when the leaf is binned).
	TopValue float64
	TopShare float64
	// Distinctive is |cluster mean - global mean| / global std: how much
	// this cluster deviates from the population on this attribute.
	Distinctive float64
}

// Clusters summarizes the SPN's top-level row clusters, ordered by weight.
// A model whose root is not a sum node (no row split found) yields a
// single cluster covering everything.
//
//deepdb:nocancel walks the learned model structure, whose node count learning caps; no row data touched
func (s *SPN) Clusters() []ClusterSummary {
	globalMean := make([]float64, len(s.Columns))
	globalStd := make([]float64, len(s.Columns))
	for col := range s.Columns {
		m, sq, _ := subtreeMoments(s.Root, col)
		globalMean[col] = m
		v := sq - m*m
		if v < 0 {
			v = 0
		}
		globalStd[col] = math.Sqrt(v)
	}
	root := s.Root
	// A product root means the learner split columns first; descend into
	// its widest sum child so exploration still surfaces row structure.
	if root.Kind == ProductKind {
		var widest *Node
		for _, c := range root.Children {
			if c.Kind == SumKind && (widest == nil || len(c.Scope) > len(widest.Scope)) {
				widest = c
			}
		}
		if widest != nil {
			root = widest
		}
	}
	var children []*Node
	var weights []float64
	if root.Kind == SumKind {
		total := 0.0
		for _, c := range root.ChildCounts {
			total += c
		}
		for i, c := range root.Children {
			children = append(children, c)
			w := 1.0 / float64(len(root.Children))
			if total > 0 {
				w = root.ChildCounts[i] / total
			}
			weights = append(weights, w)
		}
	} else {
		children = []*Node{root}
		weights = []float64{1}
	}
	out := make([]ClusterSummary, 0, len(children))
	for i, child := range children {
		cs := ClusterSummary{Weight: weights[i]}
		inScope := map[int]bool{}
		for _, c := range child.Scope {
			inScope[c] = true
		}
		for col, name := range s.Columns {
			if !inScope[col] {
				continue
			}
			mean, _, nullFrac := subtreeMoments(child, col)
			top, share := subtreeTopValue(child, col)
			dist := 0.0
			if globalStd[col] > 0 {
				dist = math.Abs(mean-globalMean[col]) / globalStd[col]
			}
			cs.Columns = append(cs.Columns, ColumnSummary{
				Name: name, Mean: mean, NullFrac: nullFrac,
				TopValue: top, TopShare: share, Distinctive: dist,
			})
		}
		// Most distinctive attributes first.
		sort.SliceStable(cs.Columns, func(a, b int) bool {
			return cs.Columns[a].Distinctive > cs.Columns[b].Distinctive
		})
		out = append(out, cs)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Weight > out[b].Weight })
	return out
}

// subtreeMoments returns (mean, mean of squares, NULL fraction) of one
// column under the subtree's distribution.
func subtreeMoments(n *Node, col int) (mean, meanSq, nullFrac float64) {
	switch n.Kind {
	case LeafKind:
		if n.Leaf.Col != col {
			return 0, 0, 0
		}
		l := n.Leaf
		if l.Total == 0 {
			return 0, 0, 0
		}
		nonNull := l.Total - l.NullW
		if nonNull <= 0 {
			return 0, 0, 1
		}
		m := l.Moment(ColQuery{Fn: FnIdent}) * l.Total / nonNull
		sq := l.Moment(ColQuery{Fn: FnSquare}) * l.Total / nonNull
		return m, sq, l.NullW / l.Total
	case ProductKind:
		for _, c := range n.Children {
			for _, s := range c.Scope {
				if s == col {
					return subtreeMoments(c, col)
				}
			}
		}
		return 0, 0, 0
	case SumKind:
		total := 0.0
		for _, c := range n.ChildCounts {
			total += c
		}
		if total == 0 {
			return 0, 0, 0
		}
		for i, c := range n.Children {
			w := n.ChildCounts[i] / total
			m, sq, nf := subtreeMoments(c, col)
			mean += w * m
			meanSq += w * sq
			nullFrac += w * nf
		}
		return mean, meanSq, nullFrac
	default:
		return 0, 0, 0
	}
}

// subtreeTopValue finds the most probable single value of a column under
// the subtree (0, 0 for binned leaves, where point masses are meaningless).
func subtreeTopValue(n *Node, col int) (value, share float64) {
	probs := map[float64]float64{}
	var walk func(n *Node, w float64)
	walk = func(n *Node, w float64) {
		switch n.Kind {
		case LeafKind:
			if n.Leaf.Col != col || n.Leaf.Binned || n.Leaf.Total == 0 {
				return
			}
			nonNull := n.Leaf.Total - n.Leaf.NullW
			if nonNull <= 0 {
				return
			}
			for i, v := range n.Leaf.Vals {
				probs[v] += w * n.Leaf.Freq[i] / nonNull
			}
		case ProductKind:
			for _, c := range n.Children {
				for _, s := range c.Scope {
					if s == col {
						walk(c, w)
						return
					}
				}
			}
		case SumKind:
			total := 0.0
			for _, c := range n.ChildCounts {
				total += c
			}
			if total == 0 {
				return
			}
			for i, c := range n.Children {
				walk(c, w*n.ChildCounts[i]/total)
			}
		}
	}
	walk(n, 1)
	// Scan candidates in ascending value order so a probability tie always
	// resolves to the smallest value instead of whichever the map yields
	// first.
	vals := make([]float64, 0, len(probs))
	for v := range probs {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	best, bestP := 0.0, 0.0
	for _, v := range vals {
		if p := probs[v]; p > bestP {
			best, bestP = v, p
		}
	}
	return best, bestP
}
