package spn

// clone.go implements deep copying of the mutable model state, the
// building block of copy-on-write snapshot publication: the serving path
// reads immutable published SPNs while the update path mutates a private
// clone and publishes it atomically. Only state that Insert/Delete can
// touch is copied — sum-node child counts, leaf value/bin arrays, the
// cached totals and the row count; structural metadata that updates never
// change (scopes, centroids, normalization bounds, bin edges, column
// names) is shared by pointer with the source.

// Clone returns a deep copy of the SPN that shares no mutable state with
// the receiver: applying Insert/Delete/ApplyBatch to the clone leaves the
// original — including its compiled flat evaluator — bit-for-bit
// untouched. The clone carries its own freshly compiled flat evaluator
// (when the source had one), so it is immediately servable.
func (s *SPN) Clone() *SPN {
	out := &SPN{
		Root:     s.Root.clone(),
		Columns:  s.Columns,
		RowCount: s.RowCount,
		Config:   s.Config,
		colIdx:   s.colIdx,
	}
	if s.flat != nil {
		// compileTree derives the weights exactly like refreshWeights does
		// (same counts, same summation order), so the clone's evaluator is
		// bit-identical to the source's.
		out.flat = compileTree(out.Root, len(out.Columns))
	}
	return out
}

// clone deep-copies the mutable per-node state and recurses.
func (n *Node) clone() *Node {
	if n == nil {
		return nil
	}
	out := &Node{
		Kind:      n.Kind,
		Scope:     n.Scope,
		Centroids: n.Centroids,
		NormMin:   n.NormMin,
		NormMax:   n.NormMax,
		total:     n.total,
		totalOK:   n.totalOK,
	}
	if n.ChildCounts != nil {
		out.ChildCounts = append([]float64(nil), n.ChildCounts...)
	}
	if n.Children != nil {
		out.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			out.Children[i] = c.clone()
		}
	}
	if n.Leaf != nil {
		out.Leaf = n.Leaf.clone()
	}
	return out
}

// clone deep-copies the leaf's mutable distribution state. Bin edges are
// fixed at learning time (Section 5.2 keeps the structure constant under
// updates) and stay shared.
func (l *Leaf) clone() *Leaf {
	out := &Leaf{
		Col:    l.Col,
		Name:   l.Name,
		Binned: l.Binned,
		Edges:  l.Edges,
		NullW:  l.NullW,
		Total:  l.Total,
	}
	out.Vals = append([]float64(nil), l.Vals...)
	out.Freq = append([]float64(nil), l.Freq...)
	out.BinW = append([]float64(nil), l.BinW...)
	out.BinSum = append([]float64(nil), l.BinSum...)
	out.BinSq = append([]float64(nil), l.BinSq...)
	out.BinInv = append([]float64(nil), l.BinInv...)
	out.BinIn2 = append([]float64(nil), l.BinIn2...)
	return out
}
