package spn

import (
	"reflect"
	"sort"
	"testing"
)

// Map iteration order is randomized per run, so these tests repeat each
// operation many times within one process: before the sorting fixes the
// results below differed between iterations with high probability.

// TestLeafValuesDeterministic pins the fix for MPE candidate ordering:
// LeafValues collects a distinct-value union in a map, and its result is
// consumed as the candidate list for classification argmax, where a
// probability tie breaks toward the earlier candidate. The union must
// come back sorted — identical bytes on every call.
func TestLeafValuesDeterministic(t *testing.T) {
	data := [][]float64{
		{5, 1}, {3, 1}, {9, 2}, {1, 2}, {7, 3},
		{2, 3}, {8, 4}, {4, 4}, {6, 5}, {0, 5},
	}
	s, err := LearnExact(data, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	first := s.LeafValues(0)
	if !sort.Float64sAreSorted(first) {
		t.Fatalf("LeafValues not sorted: %v", first)
	}
	if len(first) != 10 {
		t.Fatalf("LeafValues = %v, want 10 distinct values", first)
	}
	for i := 0; i < 50; i++ {
		if got := s.LeafValues(0); !reflect.DeepEqual(got, first) {
			t.Fatalf("LeafValues unstable: run %d got %v, first run %v", i, got, first)
		}
	}
}

// TestSubtreeTopValueTieDeterministic pins the cluster-exploration argmax:
// with two equally frequent values the reported top value must be the
// smaller one on every call, not whichever the probability map yields
// first.
func TestSubtreeTopValueTieDeterministic(t *testing.T) {
	s, err := LearnExact([][]float64{{4, 0}, {2, 0}}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		v, share := subtreeTopValue(s.Root, 0)
		if v != 2 {
			t.Fatalf("run %d: top value = %v (share %v), want the smaller tied value 2", i, v, share)
		}
	}
}
