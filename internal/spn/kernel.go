package spn

// kernel.go holds the bounds-check-free inner kernels of the binned-leaf
// moment computation. The per-bin aggregates of every binned leaf live in
// contiguous structure-of-arrays slabs owned by the compiled form (one
// backing array per moment order, see compileTree), so the kernels below
// run over dense float64 rows with no pointer chasing.
//
// Bitwise contract: every kernel accumulates into a SINGLE accumulator in
// ascending index order — the same floating-point additions in the same
// order as the scalar reference loop it replaces. The 4-way unrolling only
// removes loop and bounds-check overhead; it never reassociates the sum.

// searchGE returns the smallest index i with a[i] >= x, or len(a).
// Identical to sort.SearchFloat64s(a, x) (same predicate, same probe
// sequence semantics), hand-rolled to avoid the closure call per probe.
func searchGE(a []float64, x float64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] >= x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// searchGT returns the smallest index i with a[i] > x, or len(a) —
// sort.Search(len(a), func(i int) bool { return a[i] > x }) without the
// closure.
func searchGT(a []float64, x float64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// sumKernel adds every element of a to acc in ascending order and returns
// the result. Used for the fully-covered interior bins of a range, whose
// overlap fraction is exactly 1.0 (frac*agg == agg bit for bit).
func sumKernel(a []float64, acc float64) float64 {
	i := 0
	for ; i+4 <= len(a); i += 4 {
		acc += a[i]
		acc += a[i+1]
		acc += a[i+2]
		acc += a[i+3]
	}
	for ; i < len(a); i++ {
		acc += a[i]
	}
	return acc
}

// sumMax1Kernel adds max(s[i], w[i]) for every index to acc in ascending
// order — the FnMax1 per-bin aggregate (a bin's sum clamped below by its
// weight), with the same comparison the scalar reference uses.
func sumMax1Kernel(s, w []float64, acc float64) float64 {
	if len(w) < len(s) {
		return acc // unreachable: slabs are parallel
	}
	i := 0
	for ; i+4 <= len(s); i += 4 {
		v0, v1, v2, v3 := s[i], s[i+1], s[i+2], s[i+3]
		if v0 < w[i] {
			v0 = w[i]
		}
		acc += v0
		if v1 < w[i+1] {
			v1 = w[i+1]
		}
		acc += v1
		if v2 < w[i+2] {
			v2 = w[i+2]
		}
		acc += v2
		if v3 < w[i+3] {
			v3 = w[i+3]
		}
		acc += v3
	}
	for ; i < len(s); i++ {
		v := s[i]
		if v < w[i] {
			v = w[i]
		}
		acc += v
	}
	return acc
}
