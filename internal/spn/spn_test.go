package spn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// ---- Leaf tests ----

func TestLeafExactMoments(t *testing.T) {
	// Values: 10 x3, 20 x1, NULL x1. Total weight 5.
	data := []float64{10, 10, 10, 20, math.NaN()}
	l := NewLeaf(0, "x", data, 100, 8)
	if l.Total != 5 || l.NullW != 1 {
		t.Fatalf("total=%v nullw=%v", l.Total, l.NullW)
	}
	// P(x = 10) = 3/5.
	if p := l.Moment(ColQuery{Fn: FnOne, Ranges: []Range{PointRange(10)}}); math.Abs(p-0.6) > 1e-12 {
		t.Fatalf("P(x=10) = %v, want 0.6", p)
	}
	// E(x * 1(all non-null)) = (30+20)/5 = 10.
	if e := l.Moment(ColQuery{Fn: FnIdent}); math.Abs(e-10) > 1e-12 {
		t.Fatalf("E(x) = %v, want 10", e)
	}
	// E(x^2) = (300+400)/5 = 140.
	if e := l.Moment(ColQuery{Fn: FnSquare}); math.Abs(e-140) > 1e-12 {
		t.Fatalf("E(x^2) = %v, want 140", e)
	}
	// P(not null) = 4/5.
	if p := l.Moment(ColQuery{Fn: FnOne, ExcludeNull: true}); math.Abs(p-0.8) > 1e-12 {
		t.Fatalf("P(not null) = %v, want 0.8", p)
	}
	// Unconstrained FnOne = exactly 1 (NULL included).
	if p := l.Moment(ColQuery{Fn: FnOne}); p != 1 {
		t.Fatalf("unconstrained = %v, want 1", p)
	}
}

func TestLeafRangeSemantics(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	l := NewLeaf(0, "x", data, 100, 8)
	cases := []struct {
		r    Range
		want float64
	}{
		{Range{Lo: 2, Hi: 4, LoIncl: true, HiIncl: true}, 0.6},
		{Range{Lo: 2, Hi: 4, LoIncl: false, HiIncl: true}, 0.4},
		{Range{Lo: 2, Hi: 4, LoIncl: true, HiIncl: false}, 0.4},
		{Range{Lo: 2, Hi: 4, LoIncl: false, HiIncl: false}, 0.2},
		{Range{Lo: math.Inf(-1), Hi: 3, LoIncl: true, HiIncl: false}, 0.4},
	}
	for _, c := range cases {
		if p := l.Moment(ColQuery{Fn: FnOne, Ranges: []Range{c.r}}); math.Abs(p-c.want) > 1e-12 {
			t.Errorf("range %+v: p = %v, want %v", c.r, p, c.want)
		}
	}
	// Union of ranges (IN-style).
	p := l.Moment(ColQuery{Fn: FnOne, Ranges: []Range{PointRange(1), PointRange(5)}})
	if math.Abs(p-0.4) > 1e-12 {
		t.Fatalf("IN(1,5) = %v, want 0.4", p)
	}
}

func TestLeafInverseClamp(t *testing.T) {
	// Tuple factors: values 0, 1, 2, 4. FnInv clamps 0 to 1.
	data := []float64{0, 1, 2, 4}
	l := NewLeaf(0, "f", data, 100, 8)
	want := (1.0 + 1.0 + 0.5 + 0.25) / 4
	if e := l.Moment(ColQuery{Fn: FnInv}); math.Abs(e-want) > 1e-12 {
		t.Fatalf("E(1/max(f,1)) = %v, want %v", e, want)
	}
	want2 := (1.0 + 1.0 + 0.25 + 0.0625) / 4
	if e := l.Moment(ColQuery{Fn: FnInvSquare}); math.Abs(e-want2) > 1e-12 {
		t.Fatalf("E(1/max(f,1)^2) = %v, want %v", e, want2)
	}
}

func TestLeafBinnedMode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64() * 100
	}
	l := NewLeaf(0, "x", data, 32, 64) // force binning
	if !l.Binned {
		t.Fatal("leaf should be binned")
	}
	// P(x < 50) should be about 0.5.
	p := l.Moment(ColQuery{Fn: FnOne, Ranges: []Range{{Lo: math.Inf(-1), Hi: 50, LoIncl: true, HiIncl: false}}})
	if math.Abs(p-0.5) > 0.05 {
		t.Fatalf("P(x<50) = %v, want ~0.5", p)
	}
	// E(x) should be about 50.
	if e := l.Moment(ColQuery{Fn: FnIdent}); math.Abs(e-50) > 2 {
		t.Fatalf("E(x) = %v, want ~50", e)
	}
	// E(x^2) of U(0,100) is 10000/3.
	if e := l.Moment(ColQuery{Fn: FnSquare}); math.Abs(e-10000.0/3)/(10000.0/3) > 0.05 {
		t.Fatalf("E(x^2) = %v, want ~3333", e)
	}
}

func TestLeafUpdate(t *testing.T) {
	l := NewLeaf(0, "x", []float64{1, 2, 3}, 100, 8)
	l.Add(2, 1) // second 2
	if p := l.Moment(ColQuery{Fn: FnOne, Ranges: []Range{PointRange(2)}}); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("P(x=2) after insert = %v, want 0.5", p)
	}
	l.Add(7, 1) // unseen value inserted in order
	if p := l.Moment(ColQuery{Fn: FnOne, Ranges: []Range{PointRange(7)}}); math.Abs(p-0.2) > 1e-12 {
		t.Fatalf("P(x=7) = %v, want 0.2", p)
	}
	for i := 1; i < len(l.Vals); i++ {
		if l.Vals[i-1] >= l.Vals[i] {
			t.Fatal("values not sorted after insert")
		}
	}
	l.Add(7, -1) // delete it again
	if p := l.Moment(ColQuery{Fn: FnOne, Ranges: []Range{PointRange(7)}}); p != 0 {
		t.Fatalf("P(x=7) after delete = %v, want 0", p)
	}
	l.Add(math.NaN(), 1) // NULL insert
	if l.NullW != 1 {
		t.Fatalf("null weight = %v, want 1", l.NullW)
	}
}

// ---- Hand-built SPN matching Figure 3c/3d of the paper ----

// figure3SPN builds the exact SPN of Figure 3c: sum node with weights
// 0.3/0.7 over two product nodes; each product has a region leaf and an age
// leaf. Region codes: EU=0, ASIA=1.
func figure3SPN() *SPN {
	regionLeft := &Leaf{Col: 0, Name: "c_region", Vals: []float64{0, 1}, Freq: []float64{80, 20}, Total: 100}
	// Age left: 15% younger than 30 -> 15 at age 25, 85 at age 70.
	ageLeft := &Leaf{Col: 1, Name: "c_age", Vals: []float64{25, 70}, Freq: []float64{15, 85}, Total: 100}
	regionRight := &Leaf{Col: 0, Name: "c_region", Vals: []float64{0, 1}, Freq: []float64{10, 90}, Total: 100}
	ageRight := &Leaf{Col: 1, Name: "c_age", Vals: []float64{25, 70}, Freq: []float64{20, 80}, Total: 100}
	mk := func(r, a *Leaf) *Node {
		return &Node{Kind: ProductKind, Scope: []int{0, 1}, Children: []*Node{
			{Kind: LeafKind, Scope: []int{0}, Leaf: r},
			{Kind: LeafKind, Scope: []int{1}, Leaf: a},
		}}
	}
	root := &Node{
		Kind:        SumKind,
		Scope:       []int{0, 1},
		Children:    []*Node{mk(regionLeft, ageLeft), mk(regionRight, ageRight)},
		ChildCounts: []float64{300, 700},
	}
	return &SPN{Root: root, Columns: []string{"c_region", "c_age"}, RowCount: 1000}
}

func TestFigure3dProbability(t *testing.T) {
	s := figure3SPN()
	if err := s.Root.Validate(); err != nil {
		t.Fatal(err)
	}
	// P(region=EU, age<30) = 0.3*(0.8*0.15) + 0.7*(0.1*0.2) = 0.036+0.014 = 0.05.
	p, err := s.Probability([]ColQuery{
		{Col: 0, Ranges: []Range{PointRange(0)}},
		{Col: 1, Ranges: []Range{{Lo: math.Inf(-1), Hi: 30, LoIncl: true, HiIncl: false}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.05) > 1e-12 {
		t.Fatalf("P = %v, want 0.05 (paper Figure 3d)", p)
	}
	// Times 1000 rows -> 50 European customers younger than 30.
	if est := p * s.RowCount; math.Abs(est-50) > 1e-9 {
		t.Fatalf("estimate = %v, want 50", est)
	}
}

func TestFigure4ConditionalExpectation(t *testing.T) {
	s := figure3SPN()
	// Figure 4a: E(age * 1(region=EU)).
	// Left cluster: E(age)=0.15*25+0.85*70=63.25; weighted: 0.8*63.25=50.6
	// Right cluster: E(age)=0.2*25+0.8*70=61; weighted: 0.1*61=6.1
	// Total: 0.3*50.6 + 0.7*6.1 = 15.18 + 4.27 = 19.45
	num, err := s.Evaluate(Request{Cols: []ColQuery{
		{Col: 0, Fn: FnOne, Ranges: []Range{PointRange(0)}},
		{Col: 1, Fn: FnIdent},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(num-19.45) > 1e-9 {
		t.Fatalf("E(age*1_EU) = %v, want 19.45", num)
	}
	// Figure 4b: P(region=EU) = 0.3*0.8 + 0.7*0.1 = 0.31.
	den, err := s.Probability([]ColQuery{{Col: 0, Ranges: []Range{PointRange(0)}}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(den-0.31) > 1e-12 {
		t.Fatalf("P(EU) = %v, want 0.31", den)
	}
	// Conditional expectation: the ratio.
	if e := num / den; math.Abs(e-62.741935) > 1e-5 {
		t.Fatalf("E(age|EU) = %v", e)
	}
}

// ---- Learning tests ----

// clusteredData generates the Figure 3a-style table: 30% older Europeans,
// 70% younger Asians. Region: EU=0, ASIA=1.
func clusteredData(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, n)
	for i := range data {
		if i < n*3/10 {
			age := 55 + rng.Float64()*45 // 55..100
			region := 0.0
			if rng.Float64() < 0.1 {
				region = 1
			}
			data[i] = []float64{region, math.Floor(age)}
		} else {
			age := 18 + rng.Float64()*25 // 18..43
			region := 1.0
			if rng.Float64() < 0.1 {
				region = 0
			}
			data[i] = []float64{region, math.Floor(age)}
		}
	}
	rng.Shuffle(n, func(i, j int) { data[i], data[j] = data[j], data[i] })
	return data
}

func TestLearnRecoversJointDistribution(t *testing.T) {
	data := clusteredData(5000, 42)
	s, err := Learn(data, []string{"c_region", "c_age"}, DefaultLearnConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Root.Validate(); err != nil {
		t.Fatal(err)
	}
	// Ground truth from the data itself.
	countTrue := 0
	for _, row := range data {
		if row[0] == 0 && row[1] < 30 {
			countTrue++
		}
	}
	p, err := s.Probability([]ColQuery{
		{Col: 0, Ranges: []Range{PointRange(0)}},
		{Col: 1, Ranges: []Range{{Lo: math.Inf(-1), Hi: 30, LoIncl: true, HiIncl: false}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	est := p * float64(len(data))
	if relErr := math.Abs(est-float64(countTrue)) / math.Max(1, float64(countTrue)); relErr > 0.25 {
		t.Fatalf("estimate %v vs true %v: rel err %v too high", est, countTrue, relErr)
	}
}

func TestLearnConditionalExpectation(t *testing.T) {
	data := clusteredData(5000, 7)
	s, err := Learn(data, []string{"c_region", "c_age"}, DefaultLearnConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sumTrue, nTrue float64
	for _, row := range data {
		if row[0] == 0 {
			sumTrue += row[1]
			nTrue++
		}
	}
	avgTrue := sumTrue / nTrue
	num, err := s.Evaluate(Request{Cols: []ColQuery{
		{Col: 0, Fn: FnOne, Ranges: []Range{PointRange(0)}},
		{Col: 1, Fn: FnIdent},
	}})
	if err != nil {
		t.Fatal(err)
	}
	den, err := s.Probability([]ColQuery{{Col: 0, Ranges: []Range{PointRange(0)}}})
	if err != nil {
		t.Fatal(err)
	}
	avgEst := num / den
	if math.Abs(avgEst-avgTrue)/avgTrue > 0.1 {
		t.Fatalf("AVG estimate %v vs true %v", avgEst, avgTrue)
	}
}

func TestLearnIndependentColumnsYieldProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 3000
	data := make([][]float64, n)
	for i := range data {
		data[i] = []float64{math.Floor(rng.Float64() * 10), math.Floor(rng.Float64() * 10)}
	}
	s, err := Learn(data, []string{"a", "b"}, DefaultLearnConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Independent columns should produce a product split at (or near) the
	// root rather than deep sum chains.
	if s.Root.Kind != ProductKind {
		t.Fatalf("root kind = %v, want product for independent columns", s.Root.Kind)
	}
}

func TestLearnHandlesNulls(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 2000
	data := make([][]float64, n)
	for i := range data {
		v := math.Floor(rng.Float64() * 5)
		w := v*10 + math.Floor(rng.Float64()*3)
		if rng.Float64() < 0.2 {
			w = math.NaN()
		}
		data[i] = []float64{v, w}
	}
	s, err := Learn(data, []string{"a", "b"}, DefaultLearnConfig())
	if err != nil {
		t.Fatal(err)
	}
	// P(b not null) should be about 0.8.
	idx := s.ColumnIndex("b")
	p, err := s.Probability([]ColQuery{{Col: idx, ExcludeNull: true}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.8) > 0.05 {
		t.Fatalf("P(b not null) = %v, want ~0.8", p)
	}
}

func TestLearnErrors(t *testing.T) {
	if _, err := Learn(nil, []string{"a"}, DefaultLearnConfig()); err == nil {
		t.Fatal("expected error for empty data")
	}
	if _, err := Learn([][]float64{{1, 2}}, []string{"a"}, DefaultLearnConfig()); err == nil {
		t.Fatal("expected error for column count mismatch")
	}
}

func TestLearnSingleColumn(t *testing.T) {
	data := [][]float64{{1}, {2}, {3}, {1}}
	s, err := Learn(data, []string{"x"}, DefaultLearnConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Probability([]ColQuery{{Col: 0, Ranges: []Range{PointRange(1)}}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("P(x=1) = %v, want 0.5", p)
	}
}

// ---- Probability invariants (property-based) ----

func TestProbabilityInvariants(t *testing.T) {
	data := clusteredData(2000, 13)
	s, err := Learn(data, []string{"c_region", "c_age"}, DefaultLearnConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(loRaw, width float64) bool {
		lo := math.Mod(math.Abs(loRaw), 100)
		hi := lo + math.Mod(math.Abs(width), 100)
		p, err := s.Probability([]ColQuery{{Col: 1, Ranges: []Range{{Lo: lo, Hi: hi, LoIncl: true, HiIncl: true}}}})
		if err != nil {
			return false
		}
		if p < -1e-9 || p > 1+1e-9 {
			return false
		}
		// Monotonicity: widening the range cannot lower the probability.
		p2, err := s.Probability([]ColQuery{{Col: 1, Ranges: []Range{{Lo: lo - 1, Hi: hi + 1, LoIncl: true, HiIncl: true}}}})
		if err != nil {
			return false
		}
		return p2 >= p-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalProbabilityIsOne(t *testing.T) {
	data := clusteredData(2000, 17)
	s, err := Learn(data, []string{"c_region", "c_age"}, DefaultLearnConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Probability([]ColQuery{
		{Col: 0, Ranges: []Range{FullRange()}},
		{Col: 1, Ranges: []Range{FullRange()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// No NULLs in this data set, so the full range covers everything.
	if math.Abs(p-1) > 1e-9 {
		t.Fatalf("total probability = %v, want 1", p)
	}
}

// ---- Update tests ----

func TestInsertShiftsDistribution(t *testing.T) {
	data := clusteredData(2000, 23)
	s, err := Learn(data, []string{"c_region", "c_age"}, DefaultLearnConfig())
	if err != nil {
		t.Fatal(err)
	}
	evalP := func() float64 {
		p, err := s.Probability([]ColQuery{
			{Col: 0, Ranges: []Range{PointRange(0)}},
			{Col: 1, Ranges: []Range{{Lo: math.Inf(-1), Hi: 30, LoIncl: true, HiIncl: false}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	before := evalP()
	// Insert 500 young European customers (the paper's motivating update).
	for i := 0; i < 500; i++ {
		if err := s.Insert([]float64{0, 22}); err != nil {
			t.Fatal(err)
		}
	}
	after := evalP()
	if after <= before {
		t.Fatalf("P should rise after inserts: before=%v after=%v", before, after)
	}
	if s.RowCount != 2500 {
		t.Fatalf("row count = %v, want 2500", s.RowCount)
	}
	// The estimated count of young Europeans should have grown by roughly
	// the 500 inserted tuples.
	growth := after*s.RowCount - before*2000
	if growth < 350 || growth > 650 {
		t.Fatalf("estimated growth = %v, want ~500", growth)
	}
}

func TestInsertThenDeleteRestores(t *testing.T) {
	data := clusteredData(1000, 29)
	s, err := Learn(data, []string{"c_region", "c_age"}, DefaultLearnConfig())
	if err != nil {
		t.Fatal(err)
	}
	probe := []ColQuery{{Col: 1, Ranges: []Range{{Lo: 0, Hi: 40, LoIncl: true, HiIncl: true}}}}
	before, _ := s.Probability(probe)
	tuple := []float64{1, 33}
	if err := s.Insert(tuple); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(tuple); err != nil {
		t.Fatal(err)
	}
	after, _ := s.Probability(probe)
	if math.Abs(before-after) > 1e-9 {
		t.Fatalf("insert+delete should restore: before=%v after=%v", before, after)
	}
	if s.RowCount != 1000 {
		t.Fatalf("row count = %v, want 1000", s.RowCount)
	}
}

func TestInsertDimensionMismatch(t *testing.T) {
	s := figure3SPN()
	if err := s.Insert([]float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := s.Delete([]float64{1, 2, 3}); err == nil {
		t.Fatal("expected dimension error")
	}
}

// ---- MPE / classification ----

func TestMostProbableValue(t *testing.T) {
	s := figure3SPN()
	// Given age < 30, the most probable region: P(EU, young)=0.05,
	// P(ASIA, young) = 0.3*0.2*0.15 + 0.7*0.9*0.2 = 0.009+0.126 = 0.135.
	evidence := []ColQuery{{Col: 1, Ranges: []Range{{Lo: math.Inf(-1), Hi: 30, LoIncl: true, HiIncl: false}}}}
	v, err := s.MostProbableValue(0, []float64{0, 1}, evidence)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("MPE region for young = %v, want ASIA(1)", v)
	}
	// Given region = EU, the most probable age bucket is the old one:
	// P(EU, age>=55) = 0.3*0.8*0.85 + 0.7*0.1*0.8 = 0.26 versus
	// P(EU, age<30)  = 0.05 (Figure 3d).
	evidence = []ColQuery{{Col: 0, Ranges: []Range{PointRange(0)}}}
	v, err = s.MostProbableValue(1, []float64{25, 70}, evidence)
	if err != nil {
		t.Fatal(err)
	}
	if v != 70 {
		t.Fatalf("MPE age for EU = %v, want 70", v)
	}
}

func TestLeafValues(t *testing.T) {
	s := figure3SPN()
	vals := s.LeafValues(0)
	if len(vals) != 2 {
		t.Fatalf("leaf values = %v, want 2 distinct regions", vals)
	}
}

// ---- Serialization ----

func TestSerializationRoundTrip(t *testing.T) {
	data := clusteredData(1000, 31)
	s, err := Learn(data, []string{"c_region", "c_age"}, DefaultLearnConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	probe := []ColQuery{
		{Col: 0, Ranges: []Range{PointRange(0)}},
		{Col: 1, Ranges: []Range{{Lo: 0, Hi: 50, LoIncl: true, HiIncl: true}}},
	}
	p1, _ := s.Probability(probe)
	p2, _ := s2.Probability(probe)
	if p1 != p2 {
		t.Fatalf("round trip changed inference: %v vs %v", p1, p2)
	}
	if s2.RowCount != s.RowCount || len(s2.Columns) != len(s.Columns) {
		t.Fatal("round trip lost metadata")
	}
	// Updates must still work after round trip (centroids preserved).
	if err := s2.Insert([]float64{0, 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	s := figure3SPN()
	b, err := s.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if s2.RowCount != 1000 {
		t.Fatalf("row count = %v", s2.RowCount)
	}
}

// ---- Structural metrics ----

func TestNodeMetrics(t *testing.T) {
	s := figure3SPN()
	if n := s.Root.NumNodes(); n != 7 {
		t.Fatalf("NumNodes = %d, want 7", n)
	}
	if d := s.Root.Depth(); d != 3 {
		t.Fatalf("Depth = %d, want 3", d)
	}
	if l := s.Root.NumLeaves(); l != 4 {
		t.Fatalf("NumLeaves = %d, want 4", l)
	}
}

func TestValidateCatchesBrokenScopes(t *testing.T) {
	s := figure3SPN()
	s.Root.Children[0].Scope = []int{0} // break product scope
	if err := s.Root.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestEvaluateErrors(t *testing.T) {
	s := figure3SPN()
	if _, err := s.Evaluate(Request{Cols: []ColQuery{{Col: 5}}}); err == nil {
		t.Fatal("expected out-of-range column error")
	}
	if _, err := s.Evaluate(Request{Cols: []ColQuery{{Col: 0}, {Col: 0}}}); err == nil {
		t.Fatal("expected duplicate column error")
	}
}
