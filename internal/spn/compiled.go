package spn

// compiled.go implements the flattened SPN evaluator. The learned tree is
// lowered once into a postorder structure-of-arrays form — node kinds,
// child index ranges, normalized sum weights, leaf references and scope
// bitsets in contiguous arrays — and batches of inference requests are
// answered in a single recursion-free pass over those arrays. Compared to
// the reference tree walk (infer.go) this removes the per-call column map,
// the per-visit weight renormalization, the pointer chasing and the
// scope-overlap map probes; requests in a batch additionally share the
// node walk, so evaluating the many expectations a query plan emits (per
// group key, per Theorem-2 branch, per inclusion-exclusion term, per
// prepared-statement binding) costs one pass instead of one traversal
// each. Results are bit-identical to Evaluate's tree walk: the flat form
// performs the same floating-point operations in the same order.

import (
	"fmt"
	"math"
	"sync"
)

// Compiled is the flattened, evaluation-optimized form of an SPN tree.
// Nodes are stored in postorder (children strictly before parents), so a
// single forward loop evaluates bottom-up. A Compiled is read-only during
// evaluation and safe for concurrent EvaluateBatch calls. Updates never
// change the tree structure, and leaf distributions are shared by pointer
// with the tree, so SPN.Insert/Delete only re-derive the normalized
// mixing weights in place (refreshWeights) on the model's write path.
type Compiled struct {
	numCols int
	words   int // scope bitset words per node

	kind     []Kind
	childOff []int32 // children of node i: childIdx[childOff[i]:childOff[i+1]]
	childIdx []int32
	// weight is parallel to childIdx: for sum nodes the normalized mixing
	// weight (the same cnt/total division the tree walk performs, so the
	// two paths agree bit for bit); unused (zero) for product nodes.
	weight []float64
	// counts is parallel to nodes: for sum nodes the node's live
	// ChildCounts slice (mutated in place by updates, never reallocated),
	// from which refreshWeights re-derives weight; nil otherwise.
	counts  [][]float64
	leaf    []*Leaf // parallel to nodes; nil for internal nodes
	leafCol []int32 // parallel to nodes; -1 for internal nodes
	scope   []uint64
	root    int32

	// Binned-leaf moment slabs: one contiguous backing array per moment
	// order, shared by every binned leaf of the model. Each binned leaf's
	// Bin* slices are re-pointed at compile time to views into these slabs
	// (leafOff[i] is node i's base offset, -1 for non-binned nodes), so
	// the tree walk, in-place updates (Leaf.Add) and the flat evaluator's
	// kernels all read and write the same memory — no copy can go stale.
	binW, binSum, binSq, binInv, binIn2 []float64
	leafOff                             []int32
}

// compileTree flattens a (validated) SPN tree over numCols columns.
func compileTree(root *Node, numCols int) *Compiled {
	n := root.NumNodes()
	c := &Compiled{
		numCols:  numCols,
		words:    (numCols + 63) / 64,
		kind:     make([]Kind, 0, n),
		childOff: make([]int32, 0, n+1),
		leaf:     make([]*Leaf, 0, n),
		leafCol:  make([]int32, 0, n),
	}
	c.scope = make([]uint64, 0, n*c.words)
	c.root = c.flatten(root)
	c.childOff = append(c.childOff, int32(len(c.childIdx)))
	c.buildSlabs()
	return c
}

// buildSlabs gathers every binned leaf's per-bin aggregates into the
// contiguous structure-of-arrays slabs and re-points the leaves' slices at
// slab views. Updates never resize a binned leaf's arrays (the structure
// is fixed, Section 5.2), so the views stay valid for the model's life;
// Leaf.clone copies bin data into fresh arrays and SPN.Clone recompiles,
// so clones get their own slabs.
func (c *Compiled) buildSlabs() {
	total := 0
	for _, lf := range c.leaf {
		if lf != nil && lf.Binned {
			total += len(lf.BinW)
		}
	}
	c.leafOff = make([]int32, len(c.leaf))
	for i := range c.leafOff {
		c.leafOff[i] = -1
	}
	if total == 0 {
		return
	}
	c.binW = make([]float64, 0, total)
	c.binSum = make([]float64, 0, total)
	c.binSq = make([]float64, 0, total)
	c.binInv = make([]float64, 0, total)
	c.binIn2 = make([]float64, 0, total)
	seen := make(map[*Leaf]int32, len(c.leaf))
	for i, lf := range c.leaf {
		if lf == nil || !lf.Binned {
			continue
		}
		// A hand-built tree may reference one leaf from several nodes;
		// slab it once so every view aliases the same region.
		if off, ok := seen[lf]; ok {
			c.leafOff[i] = off
			continue
		}
		off := int32(len(c.binW))
		end := int(off) + len(lf.BinW)
		c.binW = append(c.binW, lf.BinW...)
		c.binSum = append(c.binSum, lf.BinSum...)
		c.binSq = append(c.binSq, lf.BinSq...)
		c.binInv = append(c.binInv, lf.BinInv...)
		c.binIn2 = append(c.binIn2, lf.BinIn2...)
		// Full-slice-capped views: an (impossible) append on a leaf slice
		// could never clobber the next leaf's bins.
		lf.BinW = c.binW[off:end:end]
		lf.BinSum = c.binSum[off:end:end]
		lf.BinSq = c.binSq[off:end:end]
		lf.BinInv = c.binInv[off:end:end]
		lf.BinIn2 = c.binIn2[off:end:end]
		c.leafOff[i] = off
		seen[lf] = off
	}
}

// flatten emits the subtree in postorder and returns the node's index.
// Child index lists land contiguously in childIdx because every node
// appends its (already-emitted) children exactly when it is emitted.
func (c *Compiled) flatten(n *Node) int32 {
	kids := make([]int32, len(n.Children))
	for i, ch := range n.Children {
		kids[i] = c.flatten(ch)
	}
	idx := int32(len(c.kind))
	c.kind = append(c.kind, n.Kind)
	c.childOff = append(c.childOff, int32(len(c.childIdx)))
	c.childIdx = append(c.childIdx, kids...)
	switch n.Kind {
	case SumKind:
		total := n.childTotal()
		for _, cnt := range n.ChildCounts {
			w := 0.0
			if total != 0 {
				w = cnt / total
			}
			c.weight = append(c.weight, w)
		}
		c.counts = append(c.counts, n.ChildCounts)
	default:
		for range kids {
			c.weight = append(c.weight, 0)
		}
		c.counts = append(c.counts, nil)
	}
	if n.Kind == LeafKind {
		c.leaf = append(c.leaf, n.Leaf)
		c.leafCol = append(c.leafCol, int32(n.Leaf.Col))
	} else {
		c.leaf = append(c.leaf, nil)
		c.leafCol = append(c.leafCol, -1)
	}
	mask := make([]uint64, c.words)
	for _, s := range n.Scope {
		if s >= 0 && s < c.numCols {
			mask[s>>6] |= 1 << (uint(s) & 63)
		}
	}
	c.scope = append(c.scope, mask...)
	return idx
}

// NumNodes returns the flattened node count.
func (c *Compiled) NumNodes() int { return len(c.kind) }

// refreshWeights re-derives every sum node's normalized weights from its
// live ChildCounts — a pure, allocation-free arithmetic pass, called on
// the write path after an update changed counts. The total is summed in
// child order, matching childTotal and the tree walk bit for bit.
func (c *Compiled) refreshWeights() {
	for i, counts := range c.counts {
		if counts == nil {
			continue
		}
		total := 0.0
		for _, cnt := range counts {
			total += cnt
		}
		off := int(c.childOff[i])
		for k, cnt := range counts {
			w := 0.0
			if total != 0 {
				w = cnt / total
			}
			c.weight[off+k] = w
		}
	}
}

// evalScratch holds the pooled per-call buffers of EvaluateBatch, so a
// steady-state batch evaluation allocates nothing.
type evalScratch struct {
	colRef []int32
	masks  []uint64
	union  []uint64
	active []bool
	vals   []float64
	kept   []int32 // product-node child list under a uniform batch mask
}

var scratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

// grow resizes a pooled scratch slice to n elements, reallocating only
// when capacity is insufficient. Contents are unspecified.
func grow[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	}
	*s = (*s)[:n]
	return *s
}

// sameColQuery reports whether two column queries are identical (same
// function, null handling and ranges), so one moment value serves both.
// Shared range slices (derived variance requests alias the full request's)
// hit the pointer fast path.
func sameColQuery(a, b *ColQuery) bool {
	if a.Fn != b.Fn || a.ExcludeNull != b.ExcludeNull || len(a.Ranges) != len(b.Ranges) {
		return false
	}
	if len(a.Ranges) == 0 {
		return true
	}
	if &a.Ranges[0] == &b.Ranges[0] {
		return true
	}
	for i := range a.Ranges {
		if a.Ranges[i] != b.Ranges[i] {
			return false
		}
	}
	return true
}

func maskIntersects(a, b []uint64) bool {
	for k := range a {
		if a[k]&b[k] != 0 {
			return true
		}
	}
	return false
}

// EvaluateBatch evaluates len(reqs) inference requests in one pass over
// the flat arrays, writing request i's value into out[i]. The pass has
// three phases: request validation (duplicate/range checks, per-request
// column bitsets), a top-down sweep marking the nodes any request can
// reach (subtrees outside the batch's union scope — or behind a
// zero-weight sum child — are skipped wholesale), and one bottom-up sweep
// computing all requests' values per active node. Per-request skipping at
// product nodes mirrors the tree walk's scopeTouches check exactly.
//
//deepdb:nocancel tight compiled kernel over one bounded batch; cancellation belongs between batches at the caller
func (c *Compiled) EvaluateBatch(reqs []Request, out []float64) error {
	nb := len(reqs)
	if nb == 0 {
		return nil
	}
	if len(out) < nb {
		return fmt.Errorf("spn: result buffer holds %d values for %d requests", len(out), nb)
	}
	if nb == 1 {
		// Singleton batches skip the per-request phase loops entirely.
		return c.evalSingle(&reqs[0], out)
	}
	n := len(c.kind)
	w := c.words
	sc := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(sc)

	// colRef[col*nb + b] indexes the ColQuery of request b constraining
	// col (-1 when unconstrained) — the dense, allocation-free image of
	// the tree walk's map[int]ColQuery.
	colRef := grow(&sc.colRef, c.numCols*nb)
	for i := range colRef {
		colRef[i] = -1
	}
	masks := grow(&sc.masks, nb*w)
	for i := range masks {
		masks[i] = 0
	}
	union := grow(&sc.union, w)
	for i := range union {
		union[i] = 0
	}
	for b := range reqs {
		for j := range reqs[b].Cols {
			col := reqs[b].Cols[j].Col
			if col < 0 || col >= c.numCols {
				return fmt.Errorf("spn: column index %d out of range", col)
			}
			slot := col*nb + b
			if colRef[slot] >= 0 {
				return fmt.Errorf("spn: duplicate column %d in request", col)
			}
			colRef[slot] = int32(j)
			masks[b*w+(col>>6)] |= 1 << (uint(col) & 63)
		}
	}
	for b := 0; b < nb; b++ {
		for k := 0; k < w; k++ {
			union[k] |= masks[b*w+k]
		}
	}

	// Top-down reachability: in postorder, iterating from the end visits
	// every parent before its children.
	active := grow(&sc.active, n)
	for i := range active {
		active[i] = false
	}
	active[c.root] = true
	for i := n - 1; i >= 0; i-- {
		if !active[i] {
			continue
		}
		lo, hi := c.childOff[i], c.childOff[i+1]
		switch c.kind[i] {
		case ProductKind:
			for k := lo; k < hi; k++ {
				ci := c.childIdx[k]
				if maskIntersects(c.scope[int(ci)*w:int(ci)*w+w], union) {
					active[ci] = true
				}
			}
		case SumKind:
			for k := lo; k < hi; k++ {
				if c.weight[k] != 0 {
					active[c.childIdx[k]] = true
				}
			}
		}
	}

	// Bottom-up evaluation; vals[i*nb+b] is node i's value for request b.
	// The word count and batch-mask shape pick the kernel: one-word scope
	// bitsets (<= 64 columns, the common case) drop the per-child slice
	// construction, and a batch whose requests all constrain the same
	// column set (every plan batch: bindings differ in values, not shape)
	// resolves each product node's reachable-child list once instead of
	// once per request. All variants perform the same multiplications and
	// additions in the same order, so results stay bitwise identical.
	vals := grow(&sc.vals, n*nb)
	if w == 1 {
		uniform := true
		for b := 1; b < nb; b++ {
			if masks[b] != masks[0] {
				uniform = false
				break
			}
		}
		c.bottomUpOneWord(reqs, colRef, masks, union[0], active, vals, uniform, sc)
	} else {
		c.bottomUpGeneric(reqs, colRef, masks, union, active, vals)
	}

	rootBase := int(c.root) * nb
	for b := 0; b < nb; b++ {
		v := vals[rootBase+b]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("spn: non-finite inference result")
		}
		out[b] = v
	}
	return nil
}

// bottomUpGeneric is the reference bottom-up sweep for models with more
// than 64 columns (multi-word scope bitsets).
func (c *Compiled) bottomUpGeneric(reqs []Request, colRef []int32, masks, union []uint64, active []bool, vals []float64) {
	nb := len(reqs)
	w := c.words
	n := len(c.kind)
	for i := 0; i < n; i++ {
		if !active[i] {
			continue
		}
		base := i * nb
		lo, hi := c.childOff[i], c.childOff[i+1]
		switch c.kind[i] {
		case LeafKind:
			col := int(c.leafCol[i])
			row := vals[base : base+nb]
			if union[col>>6]&(1<<(uint(col)&63)) == 0 {
				// No request constrains this column: every value is 1.
				for b := range row {
					row[b] = 1
				}
				continue
			}
			lf := c.leaf[i]
			colBase := col * nb
			// Adjacent requests in a plan batch frequently constrain a
			// column identically (GROUP BY bindings share every filter but
			// the group key; variance requests share every range): reuse
			// the previous moment when the column query is equal.
			var prevQ *ColQuery
			var prevV float64
			for b := 0; b < nb; b++ {
				if ref := colRef[colBase+b]; ref >= 0 {
					q := &reqs[b].Cols[ref]
					if prevQ == nil || !sameColQuery(prevQ, q) {
						prevQ, prevV = q, lf.moment(q)
					}
					row[b] = prevV
				} else {
					row[b] = 1
				}
			}
		case ProductKind:
			for b := 0; b < nb; b++ {
				m := masks[b*w : b*w+w]
				acc := 1.0
				for k := lo; k < hi; k++ {
					ci := int(c.childIdx[k])
					if !maskIntersects(c.scope[ci*w:ci*w+w], m) {
						continue
					}
					acc *= vals[ci*nb+b]
					if acc == 0 {
						break
					}
				}
				vals[base+b] = acc
			}
		case SumKind:
			c.sumRow(vals, base, nb, lo, hi)
		}
	}
}

// bottomUpOneWord is the bottom-up sweep specialized for single-word scope
// bitsets; with a uniform batch mask it additionally resolves product
// nodes' reachable children once per node (sc.kept) instead of per
// request.
func (c *Compiled) bottomUpOneWord(reqs []Request, colRef []int32, masks []uint64, union uint64, active []bool, vals []float64, uniform bool, sc *evalScratch) {
	nb := len(reqs)
	n := len(c.kind)
	for i := 0; i < n; i++ {
		if !active[i] {
			continue
		}
		base := i * nb
		lo, hi := c.childOff[i], c.childOff[i+1]
		switch c.kind[i] {
		case LeafKind:
			col := int(c.leafCol[i])
			row := vals[base : base+nb]
			if union&(1<<(uint(col)&63)) == 0 {
				for b := range row {
					row[b] = 1
				}
				continue
			}
			lf := c.leaf[i]
			colBase := col * nb
			var prevQ *ColQuery
			var prevV float64
			for b := 0; b < nb; b++ {
				if ref := colRef[colBase+b]; ref >= 0 {
					q := &reqs[b].Cols[ref]
					if prevQ == nil || !sameColQuery(prevQ, q) {
						prevQ, prevV = q, lf.moment(q)
					}
					row[b] = prevV
				} else {
					row[b] = 1
				}
			}
		case ProductKind:
			if uniform {
				// One shared mask: the per-request scope checks collapse
				// into one reachable-child list. Each request still
				// multiplies the same children in the same order (with the
				// same zero short-circuit), so values are unchanged.
				kept := sc.kept[:0]
				for k := lo; k < hi; k++ {
					ci := c.childIdx[k]
					if c.scope[ci]&masks[0] != 0 {
						kept = append(kept, ci)
					}
				}
				sc.kept = kept
				for b := 0; b < nb; b++ {
					acc := 1.0
					for _, ci := range kept {
						acc *= vals[int(ci)*nb+b]
						if acc == 0 {
							break
						}
					}
					vals[base+b] = acc
				}
				continue
			}
			for b := 0; b < nb; b++ {
				mb := masks[b]
				acc := 1.0
				for k := lo; k < hi; k++ {
					ci := int(c.childIdx[k])
					if c.scope[ci]&mb == 0 {
						continue
					}
					acc *= vals[ci*nb+b]
					if acc == 0 {
						break
					}
				}
				vals[base+b] = acc
			}
		case SumKind:
			c.sumRow(vals, base, nb, lo, hi)
		}
	}
}

// sumRow computes one sum node's value row: row[b] accumulates
// weight[k]*child_k[b] over children in ascending k. Walking children in
// the outer loop streams each child's contiguous value row (instead of
// striding across rows per request); per request the additions still
// happen in ascending child order, so the sums are bitwise identical to
// the request-outer formulation.
func (c *Compiled) sumRow(vals []float64, base, nb int, lo, hi int32) {
	row := vals[base : base+nb]
	for b := range row {
		row[b] = 0
	}
	for k := lo; k < hi; k++ {
		wt := c.weight[k]
		if wt == 0 {
			continue
		}
		cb := int(c.childIdx[k]) * nb
		child := vals[cb : cb+nb]
		for b := range row {
			row[b] += wt * child[b]
		}
	}
}

// evalSingle answers one request without the batched phase loops: a dense
// column-reference row, one scope mask, and scalar node values. It
// performs the same operations in the same order as a one-request batch
// (and therefore as the tree walk), so results are bitwise identical.
func (c *Compiled) evalSingle(req *Request, out []float64) error {
	n := len(c.kind)
	w := c.words
	sc := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(sc)

	colRef := grow(&sc.colRef, c.numCols)
	for i := range colRef {
		colRef[i] = -1
	}
	mask := grow(&sc.masks, w)
	for i := range mask {
		mask[i] = 0
	}
	for j := range req.Cols {
		col := req.Cols[j].Col
		if col < 0 || col >= c.numCols {
			return fmt.Errorf("spn: column index %d out of range", col)
		}
		if colRef[col] >= 0 {
			return fmt.Errorf("spn: duplicate column %d in request", col)
		}
		colRef[col] = int32(j)
		mask[col>>6] |= 1 << (uint(col) & 63)
	}

	active := grow(&sc.active, n)
	for i := range active {
		active[i] = false
	}
	active[c.root] = true
	for i := n - 1; i >= 0; i-- {
		if !active[i] {
			continue
		}
		lo, hi := c.childOff[i], c.childOff[i+1]
		switch c.kind[i] {
		case ProductKind:
			for k := lo; k < hi; k++ {
				ci := c.childIdx[k]
				if maskIntersects(c.scope[int(ci)*w:int(ci)*w+w], mask) {
					active[ci] = true
				}
			}
		case SumKind:
			for k := lo; k < hi; k++ {
				if c.weight[k] != 0 {
					active[c.childIdx[k]] = true
				}
			}
		}
	}

	vals := grow(&sc.vals, n)
	for i := 0; i < n; i++ {
		if !active[i] {
			continue
		}
		lo, hi := c.childOff[i], c.childOff[i+1]
		switch c.kind[i] {
		case LeafKind:
			if ref := colRef[c.leafCol[i]]; ref >= 0 {
				vals[i] = c.leaf[i].moment(&req.Cols[ref])
			} else {
				vals[i] = 1
			}
		case ProductKind:
			acc := 1.0
			for k := lo; k < hi; k++ {
				ci := int(c.childIdx[k])
				if !maskIntersects(c.scope[ci*w:ci*w+w], mask) {
					continue
				}
				acc *= vals[ci]
				if acc == 0 {
					break
				}
			}
			vals[i] = acc
		case SumKind:
			acc := 0.0
			for k := lo; k < hi; k++ {
				wt := c.weight[k]
				if wt == 0 {
					continue
				}
				acc += wt * vals[int(c.childIdx[k])]
			}
			vals[i] = acc
		}
	}

	v := vals[c.root]
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("spn: non-finite inference result")
	}
	out[0] = v
	return nil
}

// Refresh rebuilds the SPN's derived evaluation state: the cached sum-node
// count totals and the compiled flat evaluator. Learning and
// deserialization call it; call it manually after building or mutating a
// tree by hand if the batch path should use the flat evaluator.
func (s *SPN) Refresh() {
	s.Root.RefreshTotals()
	s.flat = compileTree(s.Root, len(s.Columns))
	s.colIdx = make(map[string]int, len(s.Columns))
	for i, c := range s.Columns {
		s.colIdx[c] = i
	}
}

// Compiled returns the flat evaluator, or nil for a hand-built SPN that
// was never Refreshed (the batch path then falls back to the tree walk).
func (s *SPN) Compiled() *Compiled { return s.flat }

// EvaluateBatch evaluates many requests in one pass over the compiled
// flat form, writing request i's value into out[i]. Results are
// bit-identical to per-request Evaluate; when the SPN was never compiled
// it falls back to exactly that.
func (s *SPN) EvaluateBatch(reqs []Request, out []float64) error {
	if len(out) < len(reqs) {
		return fmt.Errorf("spn: result buffer holds %d values for %d requests", len(out), len(reqs))
	}
	if s.flat != nil {
		return s.flat.EvaluateBatch(reqs, out)
	}
	for i := range reqs {
		v, err := s.Evaluate(reqs[i])
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}
