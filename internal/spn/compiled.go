package spn

// compiled.go implements the flattened SPN evaluator. The learned tree is
// lowered once into a postorder structure-of-arrays form — node kinds,
// child index ranges, normalized sum weights, leaf references and scope
// bitsets in contiguous arrays — and batches of inference requests are
// answered in a single recursion-free pass over those arrays. Compared to
// the reference tree walk (infer.go) this removes the per-call column map,
// the per-visit weight renormalization, the pointer chasing and the
// scope-overlap map probes; requests in a batch additionally share the
// node walk, so evaluating the many expectations a query plan emits (per
// group key, per Theorem-2 branch, per inclusion-exclusion term, per
// prepared-statement binding) costs one pass instead of one traversal
// each. Results are bit-identical to Evaluate's tree walk: the flat form
// performs the same floating-point operations in the same order.

import (
	"fmt"
	"math"
	"sync"
)

// Compiled is the flattened, evaluation-optimized form of an SPN tree.
// Nodes are stored in postorder (children strictly before parents), so a
// single forward loop evaluates bottom-up. A Compiled is read-only during
// evaluation and safe for concurrent EvaluateBatch calls. Updates never
// change the tree structure, and leaf distributions are shared by pointer
// with the tree, so SPN.Insert/Delete only re-derive the normalized
// mixing weights in place (refreshWeights) on the model's write path.
type Compiled struct {
	numCols int
	words   int // scope bitset words per node

	kind     []Kind
	childOff []int32 // children of node i: childIdx[childOff[i]:childOff[i+1]]
	childIdx []int32
	// weight is parallel to childIdx: for sum nodes the normalized mixing
	// weight (the same cnt/total division the tree walk performs, so the
	// two paths agree bit for bit); unused (zero) for product nodes.
	weight []float64
	// counts is parallel to nodes: for sum nodes the node's live
	// ChildCounts slice (mutated in place by updates, never reallocated),
	// from which refreshWeights re-derives weight; nil otherwise.
	counts  [][]float64
	leaf    []*Leaf // parallel to nodes; nil for internal nodes
	leafCol []int32 // parallel to nodes; -1 for internal nodes
	scope   []uint64
	root    int32
}

// compileTree flattens a (validated) SPN tree over numCols columns.
func compileTree(root *Node, numCols int) *Compiled {
	n := root.NumNodes()
	c := &Compiled{
		numCols:  numCols,
		words:    (numCols + 63) / 64,
		kind:     make([]Kind, 0, n),
		childOff: make([]int32, 0, n+1),
		leaf:     make([]*Leaf, 0, n),
		leafCol:  make([]int32, 0, n),
	}
	c.scope = make([]uint64, 0, n*c.words)
	c.root = c.flatten(root)
	c.childOff = append(c.childOff, int32(len(c.childIdx)))
	return c
}

// flatten emits the subtree in postorder and returns the node's index.
// Child index lists land contiguously in childIdx because every node
// appends its (already-emitted) children exactly when it is emitted.
func (c *Compiled) flatten(n *Node) int32 {
	kids := make([]int32, len(n.Children))
	for i, ch := range n.Children {
		kids[i] = c.flatten(ch)
	}
	idx := int32(len(c.kind))
	c.kind = append(c.kind, n.Kind)
	c.childOff = append(c.childOff, int32(len(c.childIdx)))
	c.childIdx = append(c.childIdx, kids...)
	switch n.Kind {
	case SumKind:
		total := n.childTotal()
		for _, cnt := range n.ChildCounts {
			w := 0.0
			if total != 0 {
				w = cnt / total
			}
			c.weight = append(c.weight, w)
		}
		c.counts = append(c.counts, n.ChildCounts)
	default:
		for range kids {
			c.weight = append(c.weight, 0)
		}
		c.counts = append(c.counts, nil)
	}
	if n.Kind == LeafKind {
		c.leaf = append(c.leaf, n.Leaf)
		c.leafCol = append(c.leafCol, int32(n.Leaf.Col))
	} else {
		c.leaf = append(c.leaf, nil)
		c.leafCol = append(c.leafCol, -1)
	}
	mask := make([]uint64, c.words)
	for _, s := range n.Scope {
		if s >= 0 && s < c.numCols {
			mask[s>>6] |= 1 << (uint(s) & 63)
		}
	}
	c.scope = append(c.scope, mask...)
	return idx
}

// NumNodes returns the flattened node count.
func (c *Compiled) NumNodes() int { return len(c.kind) }

// refreshWeights re-derives every sum node's normalized weights from its
// live ChildCounts — a pure, allocation-free arithmetic pass, called on
// the write path after an update changed counts. The total is summed in
// child order, matching childTotal and the tree walk bit for bit.
func (c *Compiled) refreshWeights() {
	for i, counts := range c.counts {
		if counts == nil {
			continue
		}
		total := 0.0
		for _, cnt := range counts {
			total += cnt
		}
		off := int(c.childOff[i])
		for k, cnt := range counts {
			w := 0.0
			if total != 0 {
				w = cnt / total
			}
			c.weight[off+k] = w
		}
	}
}

// evalScratch holds the pooled per-call buffers of EvaluateBatch, so a
// steady-state batch evaluation allocates nothing.
type evalScratch struct {
	colRef []int32
	masks  []uint64
	union  []uint64
	active []bool
	vals   []float64
}

var scratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

// grow resizes a pooled scratch slice to n elements, reallocating only
// when capacity is insufficient. Contents are unspecified.
func grow[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	}
	*s = (*s)[:n]
	return *s
}

// sameColQuery reports whether two column queries are identical (same
// function, null handling and ranges), so one moment value serves both.
// Shared range slices (derived variance requests alias the full request's)
// hit the pointer fast path.
func sameColQuery(a, b *ColQuery) bool {
	if a.Fn != b.Fn || a.ExcludeNull != b.ExcludeNull || len(a.Ranges) != len(b.Ranges) {
		return false
	}
	if len(a.Ranges) == 0 {
		return true
	}
	if &a.Ranges[0] == &b.Ranges[0] {
		return true
	}
	for i := range a.Ranges {
		if a.Ranges[i] != b.Ranges[i] {
			return false
		}
	}
	return true
}

func maskIntersects(a, b []uint64) bool {
	for k := range a {
		if a[k]&b[k] != 0 {
			return true
		}
	}
	return false
}

// EvaluateBatch evaluates len(reqs) inference requests in one pass over
// the flat arrays, writing request i's value into out[i]. The pass has
// three phases: request validation (duplicate/range checks, per-request
// column bitsets), a top-down sweep marking the nodes any request can
// reach (subtrees outside the batch's union scope — or behind a
// zero-weight sum child — are skipped wholesale), and one bottom-up sweep
// computing all requests' values per active node. Per-request skipping at
// product nodes mirrors the tree walk's scopeTouches check exactly.
//
//deepdb:nocancel tight compiled kernel over one bounded batch; cancellation belongs between batches at the caller
func (c *Compiled) EvaluateBatch(reqs []Request, out []float64) error {
	nb := len(reqs)
	if nb == 0 {
		return nil
	}
	if len(out) < nb {
		return fmt.Errorf("spn: result buffer holds %d values for %d requests", len(out), nb)
	}
	n := len(c.kind)
	w := c.words
	sc := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(sc)

	// colRef[col*nb + b] indexes the ColQuery of request b constraining
	// col (-1 when unconstrained) — the dense, allocation-free image of
	// the tree walk's map[int]ColQuery.
	colRef := grow(&sc.colRef, c.numCols*nb)
	for i := range colRef {
		colRef[i] = -1
	}
	masks := grow(&sc.masks, nb*w)
	for i := range masks {
		masks[i] = 0
	}
	union := grow(&sc.union, w)
	for i := range union {
		union[i] = 0
	}
	for b := range reqs {
		for j := range reqs[b].Cols {
			col := reqs[b].Cols[j].Col
			if col < 0 || col >= c.numCols {
				return fmt.Errorf("spn: column index %d out of range", col)
			}
			slot := col*nb + b
			if colRef[slot] >= 0 {
				return fmt.Errorf("spn: duplicate column %d in request", col)
			}
			colRef[slot] = int32(j)
			masks[b*w+(col>>6)] |= 1 << (uint(col) & 63)
		}
	}
	for b := 0; b < nb; b++ {
		for k := 0; k < w; k++ {
			union[k] |= masks[b*w+k]
		}
	}

	// Top-down reachability: in postorder, iterating from the end visits
	// every parent before its children.
	active := grow(&sc.active, n)
	for i := range active {
		active[i] = false
	}
	active[c.root] = true
	for i := n - 1; i >= 0; i-- {
		if !active[i] {
			continue
		}
		lo, hi := c.childOff[i], c.childOff[i+1]
		switch c.kind[i] {
		case ProductKind:
			for k := lo; k < hi; k++ {
				ci := c.childIdx[k]
				if maskIntersects(c.scope[int(ci)*w:int(ci)*w+w], union) {
					active[ci] = true
				}
			}
		case SumKind:
			for k := lo; k < hi; k++ {
				if c.weight[k] != 0 {
					active[c.childIdx[k]] = true
				}
			}
		}
	}

	// Bottom-up evaluation; vals[i*nb+b] is node i's value for request b.
	vals := grow(&sc.vals, n*nb)
	for i := 0; i < n; i++ {
		if !active[i] {
			continue
		}
		base := i * nb
		lo, hi := c.childOff[i], c.childOff[i+1]
		switch c.kind[i] {
		case LeafKind:
			lf := c.leaf[i]
			colBase := int(c.leafCol[i]) * nb
			// Adjacent requests in a plan batch frequently constrain a
			// column identically (GROUP BY bindings share every filter but
			// the group key; variance requests share every range): reuse
			// the previous moment when the column query is equal.
			var prevQ *ColQuery
			var prevV float64
			for b := 0; b < nb; b++ {
				if ref := colRef[colBase+b]; ref >= 0 {
					q := &reqs[b].Cols[ref]
					if prevQ == nil || !sameColQuery(prevQ, q) {
						prevQ, prevV = q, lf.moment(q)
					}
					vals[base+b] = prevV
				} else {
					vals[base+b] = 1
				}
			}
		case ProductKind:
			for b := 0; b < nb; b++ {
				m := masks[b*w : b*w+w]
				acc := 1.0
				for k := lo; k < hi; k++ {
					ci := int(c.childIdx[k])
					if !maskIntersects(c.scope[ci*w:ci*w+w], m) {
						continue
					}
					acc *= vals[ci*nb+b]
					if acc == 0 {
						break
					}
				}
				vals[base+b] = acc
			}
		case SumKind:
			for b := 0; b < nb; b++ {
				acc := 0.0
				for k := lo; k < hi; k++ {
					wt := c.weight[k]
					if wt == 0 {
						continue
					}
					acc += wt * vals[int(c.childIdx[k])*nb+b]
				}
				vals[base+b] = acc
			}
		}
	}

	rootBase := int(c.root) * nb
	for b := 0; b < nb; b++ {
		v := vals[rootBase+b]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("spn: non-finite inference result")
		}
		out[b] = v
	}
	return nil
}

// Refresh rebuilds the SPN's derived evaluation state: the cached sum-node
// count totals and the compiled flat evaluator. Learning and
// deserialization call it; call it manually after building or mutating a
// tree by hand if the batch path should use the flat evaluator.
func (s *SPN) Refresh() {
	s.Root.RefreshTotals()
	s.flat = compileTree(s.Root, len(s.Columns))
	s.colIdx = make(map[string]int, len(s.Columns))
	for i, c := range s.Columns {
		s.colIdx[c] = i
	}
}

// Compiled returns the flat evaluator, or nil for a hand-built SPN that
// was never Refreshed (the batch path then falls back to the tree walk).
func (s *SPN) Compiled() *Compiled { return s.flat }

// EvaluateBatch evaluates many requests in one pass over the compiled
// flat form, writing request i's value into out[i]. Results are
// bit-identical to per-request Evaluate; when the SPN was never compiled
// it falls back to exactly that.
func (s *SPN) EvaluateBatch(reqs []Request, out []float64) error {
	if len(out) < len(reqs) {
		return fmt.Errorf("spn: result buffer holds %d values for %d requests", len(out), len(reqs))
	}
	if s.flat != nil {
		return s.flat.EvaluateBatch(reqs, out)
	}
	for i := range reqs {
		v, err := s.Evaluate(reqs[i])
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}
