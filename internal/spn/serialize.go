package spn

import (
	"bytes"
	"encoding/gob"
	"io"
)

// Save writes the SPN to w in gob format. Models are plain trees of
// exported fields, so gob round-trips them exactly.
func (s *SPN) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(s)
}

// Load reads an SPN previously written with Save.
func Load(r io.Reader) (*SPN, error) {
	var s SPN
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	if err := s.Root.Validate(); err != nil {
		return nil, err
	}
	// gob skips the unexported evaluation caches; rebuild them.
	s.Refresh()
	return &s, nil
}

// Bytes serializes the SPN to a byte slice (persistence of ensembles).
func (s *SPN) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FromBytes deserializes an SPN produced by Bytes.
func FromBytes(b []byte) (*SPN, error) {
	return Load(bytes.NewReader(b))
}
