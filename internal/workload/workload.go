// Package workload defines the query sets of the paper's evaluation: a
// JOB-light-style benchmark over the IMDb schema, the synthetic
// larger-join query generator behind Figures 1, 7 and 8, the Flights AQP
// queries F1.1-F5.2, and the Star Schema Benchmark queries S1.1-S4.3.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/query"
	"repro/internal/table"
)

// Named pairs a query with its benchmark label (e.g. "S1.1").
type Named struct {
	Label string
	Query query.Query
}

// imdbStarTables are the JOB-light fact-table neighbors of title.
var imdbStarTables = []string{
	"movie_companies", "cast_info", "movie_info", "movie_info_idx", "movie_keyword",
}

// imdbPredCols maps each IMDb table to its filterable columns and whether
// the domain is categorical-small (equality/IN) or numeric (ranges).
type predCol struct {
	col     string
	numeric bool
}

var imdbPreds = map[string][]predCol{
	"title":           {{"t_kind_id", false}, {"t_production_year", true}},
	"movie_companies": {{"mc_company_type_id", false}, {"mc_company_id", true}},
	"cast_info":       {{"ci_role_id", false}},
	"movie_info":      {{"mi_info_type_id", false}},
	"movie_info_idx":  {{"mix_info_type_id", false}},
	"movie_keyword":   {{"mk_keyword_id", true}},
}

// JOBLight generates the 70-query JOB-light-style benchmark: star joins of
// title with 1-4 referencing tables (2-5 tables total) and 1-4 predicates,
// with constants drawn from the live data so queries are rarely empty.
func JOBLight(tables map[string]*table.Table, seed int64) []Named {
	rng := rand.New(rand.NewSource(seed))
	var out []Named
	for i := 0; i < 70; i++ {
		nJoin := 1 + rng.Intn(4) // referencing tables joined to title
		qt := []string{"title"}
		for _, t := range pick(rng, imdbStarTables, nJoin) {
			qt = append(qt, t)
		}
		nPred := 1 + rng.Intn(4)
		q := query.Query{Aggregate: query.Count, Tables: qt,
			Filters: imdbFilters(rng, tables, qt, nPred)}
		out = append(out, Named{Label: fmt.Sprintf("JOB-light-%02d", i+1), Query: q})
	}
	return out
}

// SyntheticIMDb generates n queries with joins of the given table counts
// (e.g. 4..6) and 1..5 predicates, the workload of Figures 1, 7 and 8.
func SyntheticIMDb(tables map[string]*table.Table, n int, minTables, maxTables int, seed int64) []Named {
	rng := rand.New(rand.NewSource(seed))
	var out []Named
	for i := 0; i < n; i++ {
		total := minTables + rng.Intn(maxTables-minTables+1)
		nPred := 1 + rng.Intn(5)
		out = append(out, Named{
			Label: fmt.Sprintf("synth-%d-%d", total, nPred),
			Query: synthQuery(rng, tables, total, nPred),
		})
	}
	return out
}

// SyntheticIMDbGrid generates per-(tables, predicates) query sets for the
// Figure 7 grid: join sizes 4-6 x predicate counts 1-5, n queries per cell.
func SyntheticIMDbGrid(tables map[string]*table.Table, nPerCell int, seed int64) map[string][]Named {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string][]Named)
	for nt := 4; nt <= 6; nt++ {
		for np := 1; np <= 5; np++ {
			key := fmt.Sprintf("%d-%d", nt, np)
			var qs []Named
			for i := 0; i < nPerCell; i++ {
				qs = append(qs, Named{
					Label: fmt.Sprintf("grid-%s-%d", key, i),
					Query: synthQuery(rng, tables, nt, np),
				})
			}
			out[key] = qs
		}
	}
	return out
}

// synthQuery builds one star-join query with `total` tables and nPred
// predicates.
func synthQuery(rng *rand.Rand, tables map[string]*table.Table, total, nPred int) query.Query {
	if total < 2 {
		total = 2
	}
	if total > 6 {
		total = 6
	}
	qt := []string{"title"}
	for _, t := range pick(rng, imdbStarTables, total-1) {
		qt = append(qt, t)
	}
	return query.Query{Aggregate: query.Count, Tables: qt,
		Filters: imdbFilters(rng, tables, qt, nPred)}
}

// imdbFilters draws nPred predicates over the query's tables, anchoring
// constants at values of randomly chosen rows.
func imdbFilters(rng *rand.Rand, tables map[string]*table.Table, queryTables []string, nPred int) []query.Predicate {
	// Collect the candidate columns of the participating tables.
	var cands []predCol
	var owners []string
	for _, tn := range queryTables {
		for _, pc := range imdbPreds[tn] {
			cands = append(cands, pc)
			owners = append(owners, tn)
		}
	}
	var out []query.Predicate
	used := map[string]bool{}
	for len(out) < nPred && len(used) < len(cands) {
		i := rng.Intn(len(cands))
		pc := cands[i]
		if used[pc.col] {
			continue
		}
		used[pc.col] = true
		t := tables[owners[i]]
		col := t.Column(pc.col)
		// Anchor at a random non-NULL row value.
		var v float64
		found := false
		for try := 0; try < 20; try++ {
			r := rng.Intn(t.NumRows())
			if !col.IsNull(r) {
				v = col.Data[r]
				found = true
				break
			}
		}
		if !found {
			continue
		}
		if pc.numeric {
			switch rng.Intn(3) {
			case 0:
				out = append(out, query.Predicate{Column: pc.col, Op: query.Le, Value: v})
			case 1:
				out = append(out, query.Predicate{Column: pc.col, Op: query.Ge, Value: v})
			default:
				out = append(out, query.Predicate{Column: pc.col, Op: query.Gt, Value: v - 1})
			}
		} else {
			if rng.Float64() < 0.25 {
				// IN with 2-3 values.
				vals := []float64{v}
				for len(vals) < 2+rng.Intn(2) {
					r := rng.Intn(t.NumRows())
					if !col.IsNull(r) {
						vals = append(vals, col.Data[r])
					}
				}
				out = append(out, query.Predicate{Column: pc.col, Op: query.In, Values: dedup(vals)})
			} else {
				out = append(out, query.Predicate{Column: pc.col, Op: query.Eq, Value: v})
			}
		}
	}
	return out
}

func dedup(vs []float64) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// pick draws k distinct elements from xs.
func pick(rng *rand.Rand, xs []string, k int) []string {
	if k > len(xs) {
		k = len(xs)
	}
	perm := rng.Perm(len(xs))
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = xs[perm[i]]
	}
	return out
}

// FlightsQueries returns the F1.1-F5.2 query set: COUNT/AVG/SUM with
// selectivities from ~5% down to ~0.01% and a variety of group-bys,
// mirroring the structure described in Section 6.2.
func FlightsQueries() []Named {
	f := "flights"
	return []Named{
		{"F1.1", query.Query{Aggregate: query.Count, Tables: []string{f},
			Filters: []query.Predicate{{Column: "f_carrier", Op: query.Eq, Value: 1}}}},
		{"F1.2", query.Query{Aggregate: query.Count, Tables: []string{f},
			Filters: []query.Predicate{
				{Column: "f_carrier", Op: query.Eq, Value: 2},
				{Column: "f_dep_delay", Op: query.Gt, Value: 30}}}},
		{"F2.1", query.Query{Aggregate: query.Avg, AggColumn: "f_arr_delay", Tables: []string{f},
			Filters: []query.Predicate{{Column: "f_month", Op: query.Eq, Value: 12}}}},
		{"F2.2", query.Query{Aggregate: query.Avg, AggColumn: "f_arr_delay", Tables: []string{f},
			Filters: []query.Predicate{
				{Column: "f_origin", Op: query.Eq, Value: 1},
				{Column: "f_dep_delay", Op: query.Gt, Value: 15}}}},
		{"F2.3", query.Query{Aggregate: query.Avg, AggColumn: "f_dep_delay", Tables: []string{f},
			Filters: []query.Predicate{
				{Column: "f_carrier", Op: query.Eq, Value: 3},
				{Column: "f_month", Op: query.In, Values: []float64{6, 7}}}}},
		{"F3.1", query.Query{Aggregate: query.Count, Tables: []string{f},
			GroupBy: []string{"f_day_of_week"},
			Filters: []query.Predicate{{Column: "f_dep_delay", Op: query.Gt, Value: 60}}}},
		{"F3.2", query.Query{Aggregate: query.Avg, AggColumn: "f_taxi_out", Tables: []string{f},
			GroupBy: []string{"f_month"},
			Filters: []query.Predicate{{Column: "f_origin", Op: query.Le, Value: 3}}}},
		{"F3.3", query.Query{Aggregate: query.Sum, AggColumn: "f_distance", Tables: []string{f},
			GroupBy: []string{"f_carrier"},
			Filters: []query.Predicate{{Column: "f_dep_delay", Op: query.Gt, Value: 45}}}},
		{"F4.1", query.Query{Aggregate: query.Avg, AggColumn: "f_arr_delay", Tables: []string{f},
			Filters: []query.Predicate{
				{Column: "f_carrier", Op: query.Eq, Value: 7},
				{Column: "f_month", Op: query.Eq, Value: 1},
				{Column: "f_dep_delay", Op: query.Gt, Value: 20}}}},
		{"F4.2", query.Query{Aggregate: query.Count, Tables: []string{f},
			Filters: []query.Predicate{
				{Column: "f_origin", Op: query.Eq, Value: 2},
				{Column: "f_dest", Op: query.Eq, Value: 1},
				{Column: "f_dep_delay", Op: query.Gt, Value: 10}}}},
		{"F5.1", query.Query{Aggregate: query.Sum, AggColumn: "f_air_time", Tables: []string{f},
			Filters: []query.Predicate{
				{Column: "f_carrier", Op: query.Eq, Value: 9},
				{Column: "f_distance", Op: query.Gt, Value: 2000}}}},
		{"F5.2", query.Query{Aggregate: query.Sum, AggColumn: "f_arr_delay", Tables: []string{f},
			Filters: []query.Predicate{
				{Column: "f_carrier", Op: query.Eq, Value: 11},
				{Column: "f_dep_delay", Op: query.Gt, Value: 30}}}},
	}
}

// SSBQueries returns the S1.1-S4.3 query set. Derived-measure aggregates of
// the official benchmark (extendedprice*discount, revenue-supplycost) map
// to the materialized lo_revenue / lo_profit columns — the substitution is
// documented in EXPERIMENTS.md.
func SSBQueries() []Named {
	lo := "lineorder"
	return []Named{
		{"S1.1", query.Query{Aggregate: query.Sum, AggColumn: "lo_revenue",
			Tables: []string{lo, "dates"},
			Filters: []query.Predicate{
				{Column: "d_year", Op: query.Eq, Value: 1993},
				{Column: "lo_discount", Op: query.Ge, Value: 1},
				{Column: "lo_discount", Op: query.Le, Value: 3},
				{Column: "lo_quantity", Op: query.Lt, Value: 25}}}},
		{"S1.2", query.Query{Aggregate: query.Sum, AggColumn: "lo_revenue",
			Tables: []string{lo, "dates"},
			Filters: []query.Predicate{
				{Column: "d_yearmonthnum", Op: query.Eq, Value: 199401},
				{Column: "lo_discount", Op: query.Ge, Value: 4},
				{Column: "lo_discount", Op: query.Le, Value: 6},
				{Column: "lo_quantity", Op: query.Ge, Value: 26},
				{Column: "lo_quantity", Op: query.Le, Value: 35}}}},
		{"S1.3", query.Query{Aggregate: query.Sum, AggColumn: "lo_revenue",
			Tables: []string{lo, "dates"},
			Filters: []query.Predicate{
				{Column: "d_weeknuminyear", Op: query.Eq, Value: 6},
				{Column: "d_year", Op: query.Eq, Value: 1994},
				{Column: "lo_discount", Op: query.Ge, Value: 5},
				{Column: "lo_discount", Op: query.Le, Value: 7},
				{Column: "lo_quantity", Op: query.Ge, Value: 26},
				{Column: "lo_quantity", Op: query.Le, Value: 35}}}},
		{"S2.1", query.Query{Aggregate: query.Sum, AggColumn: "lo_revenue",
			Tables:  []string{lo, "dates", "part", "supplier"},
			GroupBy: []string{"d_year"},
			Filters: []query.Predicate{
				{Column: "p_category", Op: query.Eq, Value: 12},
				{Column: "s_region", Op: query.Eq, Value: 1}}}},
		{"S2.2", query.Query{Aggregate: query.Sum, AggColumn: "lo_revenue",
			Tables:  []string{lo, "dates", "part", "supplier"},
			GroupBy: []string{"d_year"},
			Filters: []query.Predicate{
				{Column: "p_brand1", Op: query.Ge, Value: 2221},
				{Column: "p_brand1", Op: query.Le, Value: 2228},
				{Column: "s_region", Op: query.Eq, Value: 2}}}},
		{"S2.3", query.Query{Aggregate: query.Sum, AggColumn: "lo_revenue",
			Tables:  []string{lo, "dates", "part", "supplier"},
			GroupBy: []string{"d_year"},
			Filters: []query.Predicate{
				{Column: "p_brand1", Op: query.Eq, Value: 2239},
				{Column: "s_region", Op: query.Eq, Value: 3}}}},
		{"S3.1", query.Query{Aggregate: query.Sum, AggColumn: "lo_revenue",
			Tables:  []string{lo, "dates", "customer", "supplier"},
			GroupBy: []string{"d_year"},
			Filters: []query.Predicate{
				{Column: "c_region", Op: query.Eq, Value: 2},
				{Column: "s_region", Op: query.Eq, Value: 2},
				{Column: "d_year", Op: query.Ge, Value: 1992},
				{Column: "d_year", Op: query.Le, Value: 1997}}}},
		{"S3.2", query.Query{Aggregate: query.Sum, AggColumn: "lo_revenue",
			Tables:  []string{lo, "dates", "customer", "supplier"},
			GroupBy: []string{"d_year"},
			Filters: []query.Predicate{
				{Column: "c_nation", Op: query.Eq, Value: 12},
				{Column: "s_nation", Op: query.Eq, Value: 12},
				{Column: "d_year", Op: query.Ge, Value: 1992},
				{Column: "d_year", Op: query.Le, Value: 1997}}}},
		{"S3.3", query.Query{Aggregate: query.Sum, AggColumn: "lo_revenue",
			Tables:  []string{lo, "dates", "customer", "supplier"},
			GroupBy: []string{"d_year"},
			Filters: []query.Predicate{
				{Column: "c_city", Op: query.In, Values: []float64{121, 125}},
				{Column: "s_city", Op: query.In, Values: []float64{121, 125}},
				{Column: "d_year", Op: query.Ge, Value: 1992},
				{Column: "d_year", Op: query.Le, Value: 1997}}}},
		{"S3.4", query.Query{Aggregate: query.Sum, AggColumn: "lo_revenue",
			Tables:  []string{lo, "dates", "customer", "supplier"},
			GroupBy: []string{"d_year"},
			Filters: []query.Predicate{
				{Column: "c_city", Op: query.In, Values: []float64{121, 125}},
				{Column: "s_city", Op: query.In, Values: []float64{121, 125}},
				{Column: "d_yearmonthnum", Op: query.Eq, Value: 199712}}}},
		{"S4.1", query.Query{Aggregate: query.Sum, AggColumn: "lo_profit",
			Tables:  []string{lo, "dates", "customer", "supplier", "part"},
			GroupBy: []string{"d_year"},
			Filters: []query.Predicate{
				{Column: "c_region", Op: query.Eq, Value: 1},
				{Column: "s_region", Op: query.Eq, Value: 1},
				{Column: "p_mfgr", Op: query.In, Values: []float64{1, 2}}}}},
		{"S4.2", query.Query{Aggregate: query.Sum, AggColumn: "lo_profit",
			Tables:  []string{lo, "dates", "customer", "supplier", "part"},
			GroupBy: []string{"d_year", "p_category"},
			Filters: []query.Predicate{
				{Column: "c_region", Op: query.Eq, Value: 1},
				{Column: "s_region", Op: query.Eq, Value: 1},
				{Column: "d_year", Op: query.In, Values: []float64{1997, 1998}},
				{Column: "p_mfgr", Op: query.In, Values: []float64{1, 2}}}}},
		{"S4.3", query.Query{Aggregate: query.Sum, AggColumn: "lo_profit",
			Tables:  []string{lo, "dates", "supplier", "part"},
			GroupBy: []string{"d_year", "p_brand1"},
			Filters: []query.Predicate{
				{Column: "s_nation", Op: query.Eq, Value: 7},
				{Column: "d_year", Op: query.In, Values: []float64{1997, 1998}},
				{Column: "p_category", Op: query.Eq, Value: 14}}}},
	}
}
