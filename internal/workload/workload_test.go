package workload

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/exact"
	"repro/internal/query"
)

func TestJOBLightWellFormed(t *testing.T) {
	s, tabs := datagen.IMDb(datagen.IMDbConfig{Titles: 500, Seed: 1})
	oracle := exact.New(s, tabs)
	qs := JOBLight(tabs, 7)
	if len(qs) != 70 {
		t.Fatalf("JOB-light has %d queries, want 70", len(qs))
	}
	nonEmpty := 0
	for _, n := range qs {
		if err := n.Query.Validate(); err != nil {
			t.Fatalf("%s: %v", n.Label, err)
		}
		if n.Query.Tables[0] != "title" {
			t.Fatalf("%s: star queries must include title first", n.Label)
		}
		if len(n.Query.Tables) < 2 || len(n.Query.Tables) > 5 {
			t.Fatalf("%s: %d tables out of JOB-light range", n.Label, len(n.Query.Tables))
		}
		if len(n.Query.Filters) < 1 || len(n.Query.Filters) > 4 {
			t.Fatalf("%s: %d predicates out of range", n.Label, len(n.Query.Filters))
		}
		// Ground truth must be computable.
		card, err := oracle.Cardinality(n.Query)
		if err != nil {
			t.Fatalf("%s: %v", n.Label, err)
		}
		if card > 0 {
			nonEmpty++
		}
	}
	// Anchored constants should keep most queries non-empty.
	if nonEmpty < 50 {
		t.Fatalf("only %d/70 queries non-empty", nonEmpty)
	}
}

func TestJOBLightDeterministic(t *testing.T) {
	_, tabs := datagen.IMDb(datagen.IMDbConfig{Titles: 300, Seed: 1})
	a := JOBLight(tabs, 5)
	b := JOBLight(tabs, 5)
	for i := range a {
		if a[i].Query.String() != b[i].Query.String() {
			t.Fatal("same seed must give the same workload")
		}
	}
}

func TestSyntheticIMDbRanges(t *testing.T) {
	_, tabs := datagen.IMDb(datagen.IMDbConfig{Titles: 300, Seed: 2})
	qs := SyntheticIMDb(tabs, 50, 4, 6, 9)
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, n := range qs {
		if len(n.Query.Tables) < 4 || len(n.Query.Tables) > 6 {
			t.Fatalf("%s: %d tables", n.Label, len(n.Query.Tables))
		}
		if len(n.Query.Filters) < 1 || len(n.Query.Filters) > 5 {
			t.Fatalf("%s: %d predicates", n.Label, len(n.Query.Filters))
		}
	}
}

func TestSyntheticIMDbGrid(t *testing.T) {
	_, tabs := datagen.IMDb(datagen.IMDbConfig{Titles: 300, Seed: 3})
	grid := SyntheticIMDbGrid(tabs, 3, 11)
	if len(grid) != 15 {
		t.Fatalf("grid cells = %d, want 15", len(grid))
	}
	for key, qs := range grid {
		if len(qs) != 3 {
			t.Fatalf("cell %s has %d queries", key, len(qs))
		}
	}
	// Cell 6-5 must have 6 tables and 5 predicates... predicates can be
	// fewer only when columns run out, which cannot happen with 6 tables.
	for _, n := range grid["6-5"] {
		if len(n.Query.Tables) != 6 {
			t.Fatalf("cell 6-5 query has %d tables", len(n.Query.Tables))
		}
		if len(n.Query.Filters) != 5 {
			t.Fatalf("cell 6-5 query has %d filters", len(n.Query.Filters))
		}
	}
}

func TestFlightsQueriesExecutable(t *testing.T) {
	s, tabs := datagen.Flights(datagen.FlightsConfig{Rows: 5000, Seed: 1})
	oracle := exact.New(s, tabs)
	qs := FlightsQueries()
	if len(qs) != 12 {
		t.Fatalf("flights query set has %d queries, want 12 (F1.1-F5.2)", len(qs))
	}
	for _, n := range qs {
		if err := n.Query.Validate(); err != nil {
			t.Fatalf("%s: %v", n.Label, err)
		}
		if _, err := oracle.Execute(n.Query); err != nil {
			t.Fatalf("%s: %v", n.Label, err)
		}
	}
}

func TestFlightsSelectivitySpread(t *testing.T) {
	s, tabs := datagen.Flights(datagen.FlightsConfig{Rows: 50000, Seed: 2})
	oracle := exact.New(s, tabs)
	total := float64(tabs["flights"].NumRows())
	var sels []float64
	for _, n := range FlightsQueries() {
		card, err := oracle.Cardinality(n.Query)
		if err != nil {
			t.Fatal(err)
		}
		sels = append(sels, card/total)
	}
	// The set must span selective and non-selective queries (paper: 5%
	// down to 0.01%).
	minSel, maxSel := sels[0], sels[0]
	for _, s := range sels {
		if s < minSel {
			minSel = s
		}
		if s > maxSel {
			maxSel = s
		}
	}
	if maxSel < 0.02 {
		t.Fatalf("max selectivity %v too low", maxSel)
	}
	if minSel > 0.005 {
		t.Fatalf("min selectivity %v too high", minSel)
	}
}

func TestSSBQueriesExecutable(t *testing.T) {
	s, tabs := datagen.SSB(datagen.SSBConfig{ScaleFactor: 0.002, Seed: 1})
	oracle := exact.New(s, tabs)
	qs := SSBQueries()
	if len(qs) != 13 {
		t.Fatalf("SSB query set has %d queries, want 13 (S1.1-S4.3)", len(qs))
	}
	for _, n := range qs {
		if err := n.Query.Validate(); err != nil {
			t.Fatalf("%s: %v", n.Label, err)
		}
		if _, err := oracle.Execute(n.Query); err != nil {
			t.Fatalf("%s: %v", n.Label, err)
		}
	}
}

func TestSSBQueryShapes(t *testing.T) {
	byLabel := map[string]query.Query{}
	for _, n := range SSBQueries() {
		byLabel[n.Label] = n.Query
	}
	// Flight 1 queries join lineorder with dates only.
	if len(byLabel["S1.1"].Tables) != 2 {
		t.Fatalf("S1.1 tables = %v", byLabel["S1.1"].Tables)
	}
	// S4.x aggregate profit.
	if byLabel["S4.1"].AggColumn != "lo_profit" {
		t.Fatalf("S4.1 aggregates %s", byLabel["S4.1"].AggColumn)
	}
	// S4.2 groups by year and category.
	if len(byLabel["S4.2"].GroupBy) != 2 {
		t.Fatalf("S4.2 group-by = %v", byLabel["S4.2"].GroupBy)
	}
	// All are SUM queries (the official benchmark's aggregate).
	for label, q := range byLabel {
		if q.Aggregate != query.Sum {
			t.Fatalf("%s aggregate = %v, want SUM", label, q.Aggregate)
		}
	}
}
