// Package load turns `go list -export` output into parsed, type-checked
// packages for the analyzers — a small stand-in for golang.org/x/tools'
// go/packages, built only on the standard library. Type information for
// imports (both standard-library and this module's own packages) comes from
// the compiler's export data, produced as a side effect of `go list
// -export`, so no source outside the analyzed packages is ever re-parsed.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	// Files are the package's non-test source files, parsed with comments.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems (the package is still
	// returned; callers decide whether to analyze it anyway).
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Packages loads the packages matching the patterns (plus type information
// for their dependencies) and returns them sorted by import path.
func Packages(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, t.ImportPath, t.Dir, t.GoFiles, importerFor(gc, t.ImportMap))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Exports resolves the given import paths (and their dependencies) to
// compiler export-data files via `go list -export`. Used to type-check
// fixture packages that import real module or standard-library packages.
func Exports(paths ...string) (map[string]string, error) {
	exports := map[string]string{}
	if len(paths) == 0 {
		return exports, nil
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// FromDir parses and type-checks every .go file in dir as a package with
// the given import path, resolving imports through the export map (see
// Exports). This is how the analysistest harness loads testdata fixture
// packages, which live outside the module proper but may import real
// packages.
func FromDir(dir, importPath string, exports map[string]string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	sort.Strings(goFiles)
	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return check(fset, importPath, dir, goFiles, importerFor(gc, nil))
}

// importerFor wraps the shared export-data importer with a package's import
// map (vendoring/test renames; usually empty here).
func importerFor(gc types.Importer, importMap map[string]string) types.Importer {
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// check parses and type-checks one package's files.
func check(fset *token.FileSet, importPath, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	pkg := &Package{ImportPath: importPath, Dir: dir, Fset: fset}
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = NewInfo()
	// Type-check under the package's true path so scoped analyzers match.
	tpkg, _ := conf.Check(importPath, fset, pkg.Files, pkg.Info) // errors collected via conf.Error
	pkg.Types = tpkg
	return pkg, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// IsTestFile reports whether the file's name marks it as a test file.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}
