// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, just large enough to host this
// repository's invariant checkers (cmd/deepdb-lint). The build environment
// deliberately has no module dependencies, so the real framework cannot be
// vendored; the subset here keeps the same shape (Analyzer / Pass /
// Diagnostic, a loader, an analysistest-style harness) so the analyzers
// could be ported to x/tools mechanically if a dependency ever becomes
// acceptable.
//
// # Suppression directives
//
// Findings are suppressed site-by-site with a justified directive comment —
// the grammar is
//
//	//deepdb:<directive> <justification>
//
// written flush against the code (no space after //, like //go:build), on
// the flagged line or on its own line directly above it. The justification
// is mandatory: a bare directive does not suppress and is itself flagged by
// the directive analyzer. Each analyzer documents the directive name it
// honors (orderinvariant, snapshotsafe, walordered, nocancel).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one invariant checker: a named unit of analysis run over a
// single type-checked package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and reports.
	Name string
	// Doc is the one-paragraph description `deepdb-lint help` prints.
	Doc string
	// Scope restricts the analyzer to specific package import paths (the
	// invariants it enforces are properties of specific packages, not of Go
	// code in general). A nil Scope means every package. Test-binary
	// variants ("pkg [pkg.test]") are normalized before matching.
	Scope map[string]bool
	// Run performs the analysis and reports findings through the pass.
	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer covers the given package path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if a.Scope == nil {
		return true
	}
	return a.Scope[NormPath(pkgPath)]
}

// NormPath strips the " [pkg.test]" suffix `go vet` appends to the
// in-package test variant, so scoped analyzers treat it like the base
// package.
func NormPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// A Pass carries one package's parsed and type-checked state to an
// analyzer's Run function, plus the Report sink for findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test source files. Test files are
	// excluded everywhere: the invariants govern production code, and test
	// code routinely does things (unsorted map ranges in assertions, say)
	// that are fine there.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Directives indexes every //deepdb: comment in Files by position.
	Directives *Directives
	Report     func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Suppressed reports whether a well-formed (justified) directive with the
// given name covers pos — same line, or the line directly above.
func (p *Pass) Suppressed(pos token.Pos, directive string) bool {
	d := p.Directives.At(p.Fset, pos, directive)
	return d != nil && d.Justification != ""
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// DirectiveNames is the set of valid //deepdb: directive names; the
// directive analyzer rejects everything else as a likely typo.
var DirectiveNames = map[string]bool{
	"orderinvariant": true, // detmap: map iteration order provably cannot reach output
	"snapshotsafe":   true, // snapdiscipline: snapshot access proven safe by other means
	"walordered":     true, // walorder: WAL append/enqueue ordering established elsewhere
	"nocancel":       true, // ctxloop: loop bounds are metadata-sized, not data-sized
	"hardtimeout":    true, // hardtimeout: an inline duration literal is deliberate here
}

// A Directive is one parsed //deepdb:<name> <justification> comment.
type Directive struct {
	Pos           token.Pos
	Name          string
	Justification string
}

// Directives indexes the //deepdb: comments of a package by file and line.
type Directives struct {
	byLine map[string]map[int][]*Directive // filename -> line -> directives
	all    []*Directive
}

// ParseDirectives extracts every //deepdb: comment from the files. Comments
// must be parsed (parser.ParseComments).
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{byLine: map[string]map[int][]*Directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//deepdb:")
				if !ok {
					continue
				}
				name, just, _ := strings.Cut(text, " ")
				dir := &Directive{
					Pos:           c.Pos(),
					Name:          name,
					Justification: strings.TrimSpace(just),
				}
				pos := fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*Directive{}
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], dir)
				d.all = append(d.all, dir)
			}
		}
	}
	return d
}

// At returns a directive with the given name covering pos — on the same
// line, or alone on the line directly above — or nil.
func (d *Directives) At(fset *token.FileSet, pos token.Pos, name string) *Directive {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, dir := range d.byLine[p.Filename][line] {
			if dir.Name == name {
				return dir
			}
		}
	}
	return nil
}

// All returns every parsed directive in deterministic (position) order.
func (d *Directives) All() []*Directive {
	out := append([]*Directive(nil), d.all...)
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// ---- shared type matchers ----

// NamedType reports whether t (after stripping pointers and generic
// instantiation) is the named type pkgSuffix.name — e.g.
// ("internal/pipeline", "Pipeline"). Matching by path suffix keeps the
// analyzers applicable to their testdata fixtures, which import the real
// packages.
func NamedType(t types.Type, pkgSuffix, name string) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// MethodCall decomposes call as a method invocation, returning the receiver
// expression and method name ("" if not a selector call).
func MethodCall(call *ast.CallExpr) (recv ast.Expr, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	return sel.X, sel.Sel.Name
}
