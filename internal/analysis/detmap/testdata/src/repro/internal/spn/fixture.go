// Package spn is a detmap fixture: map ranges in a determinism-critical
// package, in every shape the analyzer must flag, allow, or honor a
// suppression for.
package spn

import (
	"sort"
)

// FloatSumBug is the PR 1 bug shape: a float sum accumulated in map
// iteration order. Addition is not associative in floating point, so the
// result differs run to run.
func FloatSumBug(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want `range over map m has nondeterministic order`
		sum += v
	}
	return sum
}

// KeyedOutput appends keys without sorting: output order is random.
func KeyedOutput(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map m has nondeterministic order`
		out = append(out, k+"!")
	}
	return out
}

// SortedIdiom is the canonical collect-then-sort loop: allowed.
func SortedIdiom(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// holder exercises the selector-destination variant of the idiom.
type holder struct {
	Vals []float64
}

// SortedSelectorIdiom collects into a struct field and sorts it: allowed.
func SortedSelectorIdiom(m map[float64]int) holder {
	var h holder
	for v := range m {
		h.Vals = append(h.Vals, v)
	}
	sort.Float64s(h.Vals)
	return h
}

// SortedOtherSlice sorts a different slice than the one collected into;
// the idiom must not match.
func SortedOtherSlice(m map[string]int) []string {
	var keys, other []string
	for k := range m { // want `range over map m has nondeterministic order`
		keys = append(keys, k)
	}
	sort.Strings(other)
	return keys
}

// NeverSorted collects keys but never sorts them.
func NeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m has nondeterministic order`
		keys = append(keys, k)
	}
	return keys
}

// Suppressed carries a justified directive: allowed.
func Suppressed(m map[string]int) int {
	n := 0
	//deepdb:orderinvariant counting map entries is order-free
	for range m {
		n++
	}
	return n
}

// BareDirective is a directive without a justification: it does not
// suppress (the directive analyzer flags the comment itself separately).
func BareDirective(m map[string]int) int {
	n := 0
	//deepdb:orderinvariant
	for range m { // want `range over map m has nondeterministic order`
		n++
	}
	return n
}

// SliceRange ranges over a slice: never flagged.
func SliceRange(s []int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}
