// Package detmap flags `for … range` over maps in determinism-critical
// packages. PR 1 traced run-to-run model divergence to floating-point sums
// accumulated in Go's randomized map iteration order; learned models are
// only trustworthy if their bytes are reproducible, so any map iteration on
// a path that can reach model or estimate bytes must either sort its keys
// first or carry a reviewed justification.
//
// Allowed without annotation is exactly the canonical sorted-iteration
// idiom: a range whose body only collects the keys into a slice that is
// later (in the same function) passed to a sort.* / slices.Sort* call.
// Every other map range needs
//
//	//deepdb:orderinvariant <why iteration order cannot reach any output>
//
// on the range line or the line above.
package detmap

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc: "flags map iteration in determinism-critical packages unless the keys " +
		"are sorted first or the site carries //deepdb:orderinvariant <reason>",
	Scope: map[string]bool{
		"repro/internal/spn":      true,
		"repro/internal/rspn":     true,
		"repro/internal/ensemble": true,
		"repro/internal/core":     true,
		"repro/internal/drift":    true,
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFunc(pass, fn.Body)
			return true
		})
	}
	return nil
}

// checkFunc examines every map range lexically inside body (including ones
// in nested function literals: the sorted-keys idiom search stays within
// the innermost body that contains both the loop and the sort call — body
// is the widest scope we search).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Suppressed(rs.For, "orderinvariant") {
			return true
		}
		if sortedKeysIdiom(pass, rs, body) {
			return true
		}
		pass.Reportf(rs.For, "range over map %s has nondeterministic order in a determinism-critical package; sort the keys first or annotate //deepdb:orderinvariant <reason>", render(rs.X))
		return true
	})
}

// sortedKeysIdiom reports whether rs is the key-collection half of the
// sorted-iteration idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys) // or sort.Ints/Float64s/Slice/SliceStable, slices.Sort*
//
// with the sort call appearing after the loop in the same enclosing body.
func sortedKeysIdiom(pass *analysis.Pass, rs *ast.RangeStmt, scope *ast.BlockStmt) bool {
	// The value variable must be unused (blank or absent): a body that sees
	// values can do order-dependent work the idiom check cannot vet.
	if rs.Value != nil {
		if id, ok := rs.Value.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	keyObj := pass.TypesInfo.Defs[key]
	if keyObj == nil {
		keyObj = pass.TypesInfo.Uses[key]
	}
	if keyObj == nil || len(rs.Body.List) != 1 {
		return false
	}
	// Body must be exactly `s = append(s, k)`.
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dstRoot, dstPath, ok := pathOf(pass, as.Lhs[0])
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if root, path, ok := pathOf(pass, call.Args[0]); !ok || root != dstRoot || path != dstPath {
		return false
	}
	arg1, ok := call.Args[1].(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(arg1) != keyObj {
		return false
	}
	// A sort of the collected slice must follow the loop.
	sorted := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		if root, path, ok := pathOf(pass, call.Args[0]); ok && root == dstRoot && path == dstPath {
			sorted = true
		}
		return true
	})
	return sorted
}

// pathOf resolves an identifier or a field-selector chain rooted in an
// identifier (x, x.F, x.F.G) to its root object and rendered path, so the
// idiom check can match destinations like `l.Vals` as well as plain
// locals. Chains through calls or indexing are rejected: re-evaluating
// them may not denote the same slice.
func pathOf(pass *analysis.Pass, e ast.Expr) (types.Object, string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(e)
		if obj == nil {
			return nil, "", false
		}
		return obj, e.Name, true
	case *ast.SelectorExpr:
		root, path, ok := pathOf(pass, e.X)
		if !ok {
			return nil, "", false
		}
		return root, path + "." + e.Sel.Name, true
	}
	return nil, "", false
}

// isSortCall matches sort.Strings/Ints/Float64s/Slice/SliceStable and
// slices.Sort/SortFunc/SortStableFunc.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.ObjectOf(pkgID).(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "sort":
		switch sel.Sel.Name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable":
			return true
		}
	case "slices":
		switch sel.Sel.Name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// render prints a short source form of the ranged expression for the
// diagnostic (identifier chains only; anything else becomes "expression").
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return render(e.Fun) + "(…)"
	case *ast.IndexExpr:
		return render(e.X) + "[…]"
	}
	return "expression"
}
