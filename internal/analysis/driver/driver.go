// Package driver runs a set of analyzers over loaded packages and collects
// their findings — the engine behind both cmd/deepdb-lint invocation modes.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// A Finding is one diagnostic, resolved to a printable position.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Run analyzes every package with every in-scope analyzer and returns the
// findings sorted by position. Analyzer errors (not findings) are returned
// as err.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		var files []*ast.File
		for _, f := range pkg.Files {
			if !load.IsTestFile(pkg.Fset, f) {
				files = append(files, f)
			}
		}
		if len(files) == 0 {
			continue
		}
		dirs := analysis.ParseDirectives(pkg.Fset, files)
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				Directives: dirs,
				Report: func(d analysis.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					out = append(out, Finding{
						Analyzer: a.Name,
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  d.Message,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
