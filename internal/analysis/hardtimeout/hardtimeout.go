// Package hardtimeout flags hard-coded time budgets on the failure-handling
// paths (PR 9). A literal duration at a timeout sink — `time.Sleep(250 *
// time.Millisecond)`, `context.WithTimeout(ctx, 10*time.Second)`, an
// `http.Client{Timeout: …}` literal — is a magic number that silently caps
// how long a retry, probe or shutdown may take, and it is exactly the class
// of bug satellite 1 of this PR fixed (a client-wide 10s Timeout that
// overrode every caller's context deadline). Time budgets must instead be
// named: a documented package constant or a configuration field, so the
// value has one home, a rationale, and an override path. Sites where a
// literal is genuinely right carry a reviewed justification:
//
//	//deepdb:hardtimeout <why this literal needs no name>
//
// on the flagged line or directly above it. Only production code in the
// hardened packages is checked (test files are excluded by the framework,
// and internal/fault — whose whole job is configuring delays — is out of
// scope). Named constants pass by construction: the analyzer looks for
// numeric basic literals inside the sink argument, so `shutdownTimeout`
// passes while `10 * time.Second` does not.
package hardtimeout

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hardtimeout",
	Doc: "flags literal durations at timeout sinks (time.Sleep, time.After, " +
		"context.WithTimeout, http.Client.Timeout) that are neither named " +
		"constants nor annotated //deepdb:hardtimeout <reason>",
	Scope: map[string]bool{
		"repro/internal/shard":    true,
		"repro/internal/wal":      true,
		"repro/internal/pipeline": true,
		"repro/deepdb":            true,
		"repro/cmd/deepdb":        true,
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				name, arg := sinkArg(pass, n)
				if name == "" || !hasNumericLiteral(arg) {
					return true
				}
				if pass.Suppressed(n.Pos(), "hardtimeout") {
					return true
				}
				pass.Reportf(n.Pos(), "hard-coded duration in %s: lift it into a named, documented constant or config field, or annotate //deepdb:hardtimeout <reason>", name)
			case *ast.CompositeLit:
				if !analysis.NamedType(pass.TypesInfo.TypeOf(n), "net/http", "Client") {
					return true
				}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || key.Name != "Timeout" || !hasNumericLiteral(kv.Value) {
						continue
					}
					if pass.Suppressed(kv.Pos(), "hardtimeout") {
						continue
					}
					pass.Reportf(kv.Pos(), "hard-coded duration in http.Client.Timeout: lift it into a named, documented constant or config field, or annotate //deepdb:hardtimeout <reason>")
				}
			}
			return true
		})
	}
	return nil
}

// sinkArg recognizes the timeout sinks and returns the sink's display name
// plus the duration argument to inspect ("" / nil if call is not a sink).
func sinkArg(pass *analysis.Pass, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", nil
	}
	switch fn.Pkg().Path() {
	case "time":
		if (fn.Name() == "Sleep" || fn.Name() == "After") && len(call.Args) == 1 {
			return "time." + fn.Name(), call.Args[0]
		}
	case "context":
		if fn.Name() == "WithTimeout" && len(call.Args) == 2 {
			return "context.WithTimeout", call.Args[1]
		}
	}
	return "", nil
}

// hasNumericLiteral reports whether the expression contains an integer or
// float basic literal anywhere in its subtree — `10 * time.Second` and
// `time.Duration(1e9)` do, `shutdownTimeout` and `cfg.probeInterval` do
// not. This is the named-vs-magic test: a numeric literal reaching a sink
// means the budget was written inline rather than given a name.
func hasNumericLiteral(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := n.(*ast.BasicLit); ok && (lit.Kind == token.INT || lit.Kind == token.FLOAT) {
			found = true
			return false
		}
		return true
	})
	return found
}
