package hardtimeout_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hardtimeout"
)

func TestHardtimeout(t *testing.T) {
	analysistest.Run(t, "testdata", hardtimeout.Analyzer, "repro/internal/shard")
}
