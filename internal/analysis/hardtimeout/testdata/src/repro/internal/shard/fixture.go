// Package shard is a hardtimeout fixture: literal durations at the timeout
// sinks, named constants that pass, and justified suppressions.
package shard

import (
	"context"
	"net/http"
	"time"
)

// retryBackoff is the named home for the fixture's retry pause.
const retryBackoff = 25 * time.Millisecond

// LiteralSleep writes the backoff inline: flagged.
func LiteralSleep() {
	time.Sleep(250 * time.Millisecond) // want `hard-coded duration in time.Sleep`
}

// NamedSleep pauses for a named constant: allowed.
func NamedSleep() {
	time.Sleep(retryBackoff)
}

// VariableSleep pauses for a computed duration: allowed (no literal).
func VariableSleep(d time.Duration) {
	time.Sleep(d)
}

// LiteralAfter arms a timer with an inline duration: flagged.
func LiteralAfter() <-chan time.Time {
	return time.After(5 * time.Second) // want `hard-coded duration in time.After`
}

// NamedAfter arms a timer from a parameter: allowed.
func NamedAfter(d time.Duration) <-chan time.Time {
	return time.After(d)
}

// LiteralCtxTimeout caps the context with an inline budget: flagged.
func LiteralCtxTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, 10*time.Second) // want `hard-coded duration in context.WithTimeout`
}

// NamedCtxTimeout caps the context with a named budget: allowed.
func NamedCtxTimeout(ctx context.Context, budget time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, budget)
}

// LiteralClientTimeout bakes a wall-clock cap into the client — the exact
// bug class this analyzer exists for: flagged.
func LiteralClientTimeout() *http.Client {
	return &http.Client{
		Timeout: 10 * time.Second, // want `hard-coded duration in http.Client.Timeout`
	}
}

// UncappedClient leaves Timeout to per-request contexts: allowed.
func UncappedClient() *http.Client {
	return &http.Client{Transport: http.DefaultTransport}
}

// NamedClientTimeout uses the named constant: allowed.
func NamedClientTimeout() *http.Client {
	return &http.Client{Timeout: retryBackoff}
}

// Suppressed carries a reviewed justification: allowed.
func Suppressed() {
	//deepdb:hardtimeout fixture literal kept inline to exercise suppression
	time.Sleep(1 * time.Millisecond)
}

// ConversionLiteral hides the magic number inside a conversion — still a
// numeric literal reaching the sink: flagged.
func ConversionLiteral() {
	time.Sleep(time.Duration(1e9)) // want `hard-coded duration in time.Sleep`
}
