// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against `// want` expectations, mirroring (a useful
// subset of) golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<import-path>/ and are type-checked
// under that import path, so scoped analyzers see the paths they expect in
// production. Fixture files may import real packages of this module and
// the standard library; their export data is resolved with `go list
// -export`.
//
// Expectations are comments on the line a diagnostic is reported at:
//
//	for k := range m { // want `range over map`
//
// Each backquoted or double-quoted string after `want` is a regular
// expression that must match one diagnostic on that line; diagnostics and
// expectations must match one-to-one per line.
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Run loads the fixture package at <testdata>/src/<importPath>, runs the
// analyzer over it, and reports any mismatch between diagnostics and
// `// want` expectations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(importPath))

	pkg, err := loadFixture(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", importPath, terr)
	}
	if len(pkg.TypeErrors) > 0 {
		t.FailNow()
	}

	wants := parseWants(t, pkg.Fset, pkg.Files)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		Directives: analysis.ParseDirectives(pkg.Fset, pkg.Files),
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	// Match diagnostics against expectations line by line.
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		key := lineKey{filepath.Base(p.Filename), p.Line}
		ws := wants[key]
		matched := false
		for i, w := range ws {
			if !w.used && w.re.MatchString(d.Message) {
				ws[i].used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", key.file, key.line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// loadFixture type-checks the fixture directory under importPath, first
// resolving export data for everything the fixture imports.
func loadFixture(dir, importPath string) (*load.Package, error) {
	// A cheap pre-parse discovers the imports so `go list` can produce
	// their export data before the real type-check.
	pre, err := load.FromDir(dir, importPath, nil)
	if err != nil && pre == nil {
		return nil, err
	}
	seen := map[string]bool{}
	var imports []string
	for _, f := range pre.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path == "unsafe" || seen[path] {
				continue
			}
			seen[path] = true
			imports = append(imports, path)
		}
	}
	sort.Strings(imports)
	exports, err := load.Exports(imports...)
	if err != nil {
		return nil, err
	}
	return load.FromDir(dir, importPath, exports)
}

// wantRE extracts the quoted expectations from a `// want …` comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants collects the `// want` expectations of every file, keyed by
// (basename, line).
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[lineKey][]want {
	t.Helper()
	wants := map[lineKey][]want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Both comment forms carry expectations; the block form
				// lets a want share a line with a //-comment under test.
				text := c.Text
				if cut, ok := strings.CutPrefix(text, "/*"); ok {
					text = strings.TrimSuffix(cut, "*/")
				} else {
					text = strings.TrimPrefix(text, "//")
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				key := lineKey{filepath.Base(p.Filename), p.Line}
				quoted := wantRE.FindAllString(rest, -1)
				if len(quoted) == 0 {
					t.Errorf("%s:%d: malformed want comment: %s", key.file, key.line, c.Text)
					continue
				}
				for _, q := range quoted {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Errorf("%s:%d: bad want pattern %s: %v", key.file, key.line, q, err)
							continue
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", key.file, key.line, pat, err)
						continue
					}
					wants[key] = append(wants[key], want{re: re})
				}
			}
		}
	}
	return wants
}
