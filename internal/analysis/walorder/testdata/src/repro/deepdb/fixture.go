// Package deepdb is a walorder fixture: WAL append / pipeline enqueue
// orderings in every shape the analyzer must flag, allow, or honor a
// suppression for. It imports the real wal and pipeline packages so the
// receiver types match production exactly.
package deepdb

import (
	"sync"

	"repro/internal/pipeline"
	"repro/internal/wal"
)

type mutation struct{ n int }

// DB mirrors the facade's relevant fields.
type DB struct {
	walMu sync.Mutex
	wal   *wal.Log
	pipe  *pipeline.Pipeline[mutation]
}

// GoodOrdered is the production pattern: append under walMu, then enqueue
// in the same critical section.
func (db *DB) GoodOrdered(payload []byte, m mutation) error {
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if _, err := db.wal.Append(payload); err != nil {
		return err
	}
	return db.pipe.Enqueue(m)
}

// GoodNoWAL enqueues on the wal == nil fast path: no ordering needed.
func (db *DB) GoodNoWAL(m mutation) error {
	if db.wal == nil {
		return db.pipe.Enqueue(m)
	}
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if _, err := db.wal.Append(nil); err != nil {
		return err
	}
	return db.pipe.Enqueue(m)
}

// BadAppendUnlocked appends outside the critical section.
func (db *DB) BadAppendUnlocked(payload []byte) error {
	_, err := db.wal.Append(payload) // want `WAL append outside the walMu critical section`
	return err
}

// BadEnqueueFirst enqueues before anything was appended under the lock.
func (db *DB) BadEnqueueFirst(payload []byte, m mutation) error {
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if err := db.pipe.Enqueue(m); err != nil { // want `pipeline enqueue not dominated by a WAL append`
		return err
	}
	_, err := db.wal.Append(payload)
	return err
}

// BadEnqueueNoLock enqueues with no lock and no nil check at all.
func (db *DB) BadEnqueueNoLock(m mutation) error {
	return db.pipe.Enqueue(m) // want `pipeline enqueue not dominated by a WAL append`
}

// BadUnlockBetween releases walMu between append and enqueue: another
// writer can interleave, so the append no longer dominates.
func (db *DB) BadUnlockBetween(payload []byte, m mutation) error {
	db.walMu.Lock()
	if _, err := db.wal.Append(payload); err != nil {
		db.walMu.Unlock()
		return err
	}
	db.walMu.Unlock()
	db.walMu.Lock()
	defer db.walMu.Unlock()
	return db.pipe.Enqueue(m) // want `pipeline enqueue not dominated by a WAL append`
}

// SuppressedReplay is the reviewed recovery exception: replay enqueues
// directly because the WAL is the source, not the destination.
func (db *DB) SuppressedReplay(m mutation) error {
	//deepdb:walordered recovery replays from the log itself; ordering is the log order
	return db.pipe.Enqueue(m)
}

// GoodNonNilBranch shows the complementary nil refinement: inside the
// != nil branch an unordered enqueue is still flagged.
func (db *DB) GoodNonNilBranch(m mutation) error {
	if db.wal != nil {
		return db.pipe.Enqueue(m) // want `pipeline enqueue not dominated by a WAL append`
	}
	return db.pipe.Enqueue(m)
}
